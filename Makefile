# Convenience targets; the repository needs only the Go toolchain.

GO ?= go

.PHONY: build test race fuzz verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/isa

# verify is the full CI gate: build, vet, race-enabled tests, fuzz seeds.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz

clean:
	$(GO) clean ./...
