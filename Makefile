# Convenience targets; the repository needs only the Go toolchain.

GO ?= go

.PHONY: build test test-short race race-serve fuzz fuzz-diff verify clean bench bench-gate bench-smoke obs-smoke serve-smoke chaos-smoke cluster-smoke bench-cluster trace-smoke policy-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-short is the fast lane: skips the heavy experiment sweeps,
# differential grids and real-simulation service tests (seconds, not
# minutes) — the first thing to run while iterating.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# race-serve shakes the serving layer's concurrency machinery
# (single-flight, bounded queue, dispatcher batching, LRU), the cluster
# transport under it, and the pool and metrics with the race detector.
race-serve:
	$(GO) test -race ./internal/serve/ ./internal/cluster/ ./internal/sched/ ./internal/obs/

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/isa

# fuzz-diff is the cross-engine differential fuzzer (internal/progen):
# seeded random programs must produce bit-identical architectural state
# on the functional interpreter, the in-order core and the out-of-order
# core, across all three informing schemes.
fuzz-diff:
	$(GO) test -run=^$$ -fuzz=FuzzCrossEngine -fuzztime=10s ./internal/progen

# bench regenerates the committed hot-path report (EXPERIMENTS.md "Hot-path
# benchmarks"): ns/inst, allocs/inst and cells/sec for the per-instruction
# pipeline, with speedups against the committed pre-optimization baseline.
bench:
	$(GO) run ./cmd/hotpathbench -label optimized -repeat 5 \
		-baseline BENCH_hotpath_baseline.json -out BENCH_hotpath.json

# bench-gate is the CI perf regression check: re-measure and fail if a
# watched cell (ooo_cell) regressed more than 10% against the committed
# BENCH_hotpath.json.
bench-gate:
	$(GO) run ./cmd/hotpathbench -label gate -repeat 3 -out /tmp/bench_gate.json
	$(GO) run ./cmd/benchdiff -committed BENCH_hotpath.json -fresh /tmp/bench_gate.json

# bench-smoke checks the parallel runner end to end: the -j sweep must be
# byte-identical to the sequential path. (No `time` prefix: make runs
# recipes under /bin/sh, where `time` is not a builtin on dash systems;
# the CI workflow, which runs under bash, still times the two runs.)
bench-smoke:
	$(GO) build -o /tmp/handlerbench ./cmd/handlerbench
	/tmp/handlerbench -experiment fig3 -j 1 > /tmp/fig3_j1.txt
	/tmp/handlerbench -experiment fig3 > /tmp/fig3_jN.txt
	cmp /tmp/fig3_j1.txt /tmp/fig3_jN.txt

# obs-smoke checks observability end to end (EXPERIMENTS.md
# "Observability"): a sweep with metrics and 1-in-64 trace sampling must
# leave the stdout tables byte-identical to a plain run, emit schema-valid
# JSONL (cmd/tracecheck), and print a metrics registry on stderr.
obs-smoke:
	$(GO) build -o /tmp/handlerbench ./cmd/handlerbench
	$(GO) build -o /tmp/tracecheck ./cmd/tracecheck
	/tmp/handlerbench -experiment fig3 -j 1 > /tmp/fig3_plain.txt
	/tmp/handlerbench -experiment fig3 -j 1 -metrics \
		-trace-out /tmp/fig3_trace.jsonl -trace-sample 64 \
		> /tmp/fig3_obs.txt 2> /tmp/fig3_metrics.txt
	cmp /tmp/fig3_plain.txt /tmp/fig3_obs.txt
	/tmp/tracecheck /tmp/fig3_trace.jsonl
	grep -q '"sim_instrs"' /tmp/fig3_metrics.txt

# serve-smoke exercises informd end to end (EXPERIMENTS.md "Simulation as
# a service") without leaving the test harness: the examples smoke test
# builds the daemon, starts it on an ephemeral port, round-trips one
# request and shuts it down with SIGTERM.
serve-smoke:
	$(GO) test -run TestInformdSmoke -v .

# chaos-smoke is the robustness lane (DESIGN.md §13): the serving layer
# under injected filesystem faults (degrade to RAM-only, quarantine +
# recompute), tenant admission control, the cache↔store interleaving
# under the race detector, and the operator-level warm restart (build the
# daemon, populate the store, SIGTERM, restart, prove sim_instrs delta 0).
chaos-smoke:
	$(GO) test -race -run 'TestStore|TestTenant|TestWeightedFair|TestOverloadRetryAfter|TestReadyz|TestCacheStoreRace|TestFSInjector' ./internal/serve/ ./internal/store/ ./internal/faults/
	$(GO) test -run TestInformdWarmRestart -v .

# cluster-smoke is the distributed-informd acceptance lane (DESIGN.md
# §15): three in-process nodes serve the 18-cell golden grid scattered/
# gathered byte-identically to the sequential reference; the repeated
# grid against a non-owner node resolves all-cached with a cluster-wide
# sim_instrs delta of exactly 0; a peer dying mid-workload degrades to
# local compute with identical results. The routing/forwarding machinery
# also runs under the race detector.
cluster-smoke:
	$(GO) test -race -short -run 'TestOwnership|TestForward|TestNewValidates|TestNon200|TestCluster|TestReadyzSubsystem' ./internal/cluster/ ./internal/serve/
	$(GO) test -run 'TestClusterGoldenGrid|TestClusterExperimentScatterGather' -v ./internal/serve/

# trace-smoke is the closed-loop trace lane (DESIGN.md §16): record a
# full schema-v2 trace and the run statistics with informsim, validate
# the trace format, replay it through the same geometry with no ISA
# program, and demand exact (delta-0) reconciliation of every per-level
# reference and miss counter. Repeated for both machine geometries, plus
# a -j sweep parity check on the geometry-sensitivity table.
trace-smoke:
	$(GO) build -o /tmp/informsim ./cmd/informsim
	$(GO) build -o /tmp/tracecheck ./cmd/tracecheck
	$(GO) build -o /tmp/tracereplay ./cmd/tracereplay
	/tmp/informsim -machine ooo -scheme trap-branch -trace-out /tmp/smoke_ooo.jsonl -trace-sample 1 \
		-stats-out /tmp/smoke_ooo.json cmd/tracereplay/testdata/smoke.s > /dev/null
	/tmp/tracecheck /tmp/smoke_ooo.jsonl
	/tmp/tracereplay -machine ooo -expect /tmp/smoke_ooo.json /tmp/smoke_ooo.jsonl
	/tmp/informsim -machine inorder -scheme condcode -trace-out /tmp/smoke_io.jsonl -trace-sample 1 \
		-stats-out /tmp/smoke_io.json cmd/tracereplay/testdata/smoke.s > /dev/null
	/tmp/tracecheck /tmp/smoke_io.jsonl
	/tmp/tracereplay -machine inorder -expect /tmp/smoke_io.json /tmp/smoke_io.jsonl
	/tmp/tracereplay -sweep -j 1 /tmp/smoke_ooo.jsonl > /tmp/smoke_sweep_j1.txt
	/tmp/tracereplay -sweep -j 4 /tmp/smoke_ooo.jsonl > /tmp/smoke_sweep_jN.txt
	cmp /tmp/smoke_sweep_j1.txt /tmp/smoke_sweep_jN.txt

# policy-smoke is the replacement-policy acceptance lane (DESIGN.md §17):
# `-policy lru` must be byte-identical to the default tables (LRU is the
# canonical empty policy, so naming it must change nothing), a non-LRU
# sweep must actually move the numbers (brrip: su2cor's streaming cells
# are srrip-neutral but not brrip-neutral, so this proves the dimension
# is live, not plumbed-and-ignored), the §6 prefetch case study must
# render its
# taxonomy table, and the policy-differential battery, the
# policy×taxonomy golden grid and the /v1/explain round trip must hold.
policy-smoke:
	$(GO) build -o /tmp/handlerbench ./cmd/handlerbench
	/tmp/handlerbench -experiment fig3 > /tmp/fig3_default.txt
	/tmp/handlerbench -experiment fig3 -policy lru > /tmp/fig3_lru.txt
	cmp /tmp/fig3_default.txt /tmp/fig3_lru.txt
	/tmp/handlerbench -experiment fig3 -policy brrip > /tmp/fig3_brrip.txt
	! cmp -s /tmp/fig3_default.txt /tmp/fig3_brrip.txt
	/tmp/handlerbench -experiment prefetch > /tmp/prefetch.txt
	grep -q 'Miss taxonomy under prefetch handlers' /tmp/prefetch.txt
	$(GO) test -run 'TestPolicy|TestRRIPNotInclusive|TestTaxonomy' ./internal/mem/
	$(GO) test -run 'TestPolicyGolden|TestPolicyArchitecturalNeutrality' ./internal/core/
	$(GO) test -run 'TestExplain' ./internal/serve/

# bench-cluster regenerates the committed cluster-scaling report
# (EXPERIMENTS.md "Cluster scaling"): 1-node vs 3-node in-process
# throughput on a duplicate-free workload, cold and warm.
bench-cluster:
	$(GO) run ./cmd/clusterbench -nodes 1,3 -cells 60 -out BENCH_cluster.json

# verify is the full CI gate: build, vet, race-enabled tests, fuzz seeds.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz
	$(MAKE) fuzz-diff
	$(MAKE) bench-smoke
	$(MAKE) obs-smoke
	$(MAKE) trace-smoke
	$(MAKE) policy-smoke

clean:
	$(GO) clean ./...
