# Convenience targets; the repository needs only the Go toolchain.

GO ?= go

.PHONY: build test race fuzz verify clean bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/isa

# bench-smoke checks the parallel runner end to end: the -j sweep must be
# byte-identical to the sequential path (and its wall-clock is the sweep
# regression signal in CI logs).
bench-smoke:
	$(GO) build -o /tmp/handlerbench ./cmd/handlerbench
	time /tmp/handlerbench -experiment fig3 -j 1 > /tmp/fig3_j1.txt
	time /tmp/handlerbench -experiment fig3 > /tmp/fig3_jN.txt
	cmp /tmp/fig3_j1.txt /tmp/fig3_jN.txt

# verify is the full CI gate: build, vet, race-enabled tests, fuzz seeds.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz
	$(MAKE) bench-smoke

clean:
	$(GO) clean ./...
