# Convenience targets; the repository needs only the Go toolchain.

GO ?= go

.PHONY: build test race fuzz verify clean bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/isa

# bench regenerates the committed hot-path report (EXPERIMENTS.md "Hot-path
# benchmarks"): ns/inst, allocs/inst and cells/sec for the per-instruction
# pipeline, with speedups against the committed pre-optimization baseline.
bench:
	$(GO) run ./cmd/hotpathbench -label optimized -repeat 5 \
		-baseline BENCH_hotpath_baseline.json -out BENCH_hotpath.json

# bench-smoke checks the parallel runner end to end: the -j sweep must be
# byte-identical to the sequential path (and its wall-clock is the sweep
# regression signal in CI logs).
bench-smoke:
	$(GO) build -o /tmp/handlerbench ./cmd/handlerbench
	time /tmp/handlerbench -experiment fig3 -j 1 > /tmp/fig3_j1.txt
	time /tmp/handlerbench -experiment fig3 > /tmp/fig3_jN.txt
	cmp /tmp/fig3_j1.txt /tmp/fig3_jN.txt

# verify is the full CI gate: build, vet, race-enabled tests, fuzz seeds.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz
	$(MAKE) bench-smoke

clean:
	$(GO) clean ./...
