// Package informing's root benchmarks regenerate every table and figure of
// "Informing Memory Operations" (ISCA 1996) at reduced scale, one
// testing.B benchmark per experiment (see DESIGN.md §4 for the index), plus
// the ablation studies DESIGN.md calls out. Custom metrics report the
// paper-relevant quantities (normalised overheads, speedups) alongside
// wall-clock simulation cost:
//
//	go test -bench=. -benchmem
//
// Full-size reproductions are produced by cmd/handlerbench and
// cmd/coherencebench.
package informing

import (
	"fmt"
	"testing"

	"informing/internal/coherence"
	"informing/internal/core"
	"informing/internal/experiments"
	"informing/internal/multi"
	"informing/internal/sched"
	"informing/internal/workload"
)

// mustBench resolves a benchmark by name, failing the benchmark on
// unknown names instead of silently measuring a zero-value kernel.
func mustBench(b *testing.B, name string) workload.Benchmark {
	b.Helper()
	bm, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	return bm
}

func mustRun(b *testing.B, cfg core.Config, bm workload.Benchmark, plan workload.Plan) float64 {
	b.Helper()
	prog, err := workload.Build(bm, plan, 1)
	if err != nil {
		b.Fatal(err)
	}
	run, err := cfg.WithMaxInsts(100_000_000).Run(prog)
	if err != nil {
		b.Fatal(err)
	}
	return float64(run.Cycles)
}

func benchOverhead(b *testing.B, machine func(core.Scheme) core.Config, bench string, plan func() workload.Plan) {
	bm := mustBench(b, bench)
	var overhead float64
	for i := 0; i < b.N; i++ {
		base := mustRun(b, machine(core.Off), bm, workload.NewPlanNone())
		inst := mustRun(b, machine(core.TrapBranch), bm, plan())
		overhead = inst / base
	}
	b.ReportMetric(overhead, "normtime")
}

// --- E1: Figure 2 ------------------------------------------------------

func BenchmarkFig2OutOfOrderS1(b *testing.B) {
	benchOverhead(b, core.R10000, "compress", func() workload.Plan { return workload.NewPlanSingle(1) })
}

func BenchmarkFig2OutOfOrderU10(b *testing.B) {
	benchOverhead(b, core.R10000, "compress", func() workload.Plan { return workload.NewPlanUnique(10) })
}

func BenchmarkFig2InOrderS1(b *testing.B) {
	benchOverhead(b, core.Alpha21164, "tomcatv", func() workload.Plan { return workload.NewPlanSingle(1) })
}

func BenchmarkFig2InOrderS10(b *testing.B) {
	benchOverhead(b, core.Alpha21164, "tomcatv", func() workload.Plan { return workload.NewPlanSingle(10) })
}

// BenchmarkFig2FullSweep regenerates the whole figure (13 benchmarks x 5
// plans x 2 machines); heavy, so it reports the mean S1 overhead. The
// j=1 / j=GOMAXPROCS sub-benchmarks make the parallel runner's wall-clock
// win (and any regression in it) visible in ordinary bench output.
func BenchmarkFig2FullSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("full sweep is heavy")
	}
	for _, workers := range []int{1, 0} {
		workers := workers
		b.Run(fmt.Sprintf("j=%d", sched.Workers(workers)), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				opt := experiments.DefaultOptions()
				opt.Workers = workers
				res, err := experiments.Figure2(opt)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				var n int
				for _, r := range res {
					if r.Plan == "S1" {
						sum += r.Norm.Total()
						n++
					}
				}
				mean = sum / float64(n)
			}
			b.ReportMetric(mean, "meanS1normtime")
		})
	}
}

// --- E2: Figure 3 ------------------------------------------------------

func BenchmarkFig3Su2corInOrderS10(b *testing.B) {
	benchOverhead(b, core.Alpha21164, "su2cor", func() workload.Plan { return workload.NewPlanSingle(10) })
}

func BenchmarkFig3Su2corOutOfOrderS10(b *testing.B) {
	benchOverhead(b, core.R10000, "su2cor", func() workload.Plan { return workload.NewPlanSingle(10) })
}

// --- E3: 100-instruction handlers ---------------------------------------

func BenchmarkH100Compress(b *testing.B) {
	benchOverhead(b, core.R10000, "compress", func() workload.Plan { return workload.NewPlanSingle(100) })
}

func BenchmarkH100Ora(b *testing.B) {
	benchOverhead(b, core.R10000, "ora", func() workload.Plan { return workload.NewPlanSingle(100) })
}

// --- E4: trap-as-branch vs trap-as-exception ----------------------------

func BenchmarkTrapModeCompress(b *testing.B) {
	bm := mustBench(b, "compress")
	var ratio float64
	for i := 0; i < b.N; i++ {
		br := mustRun(b, core.R10000(core.TrapBranch), bm, workload.NewPlanSingle(10))
		ex := mustRun(b, core.R10000(core.TrapException), bm, workload.NewPlanSingle(10))
		ratio = ex / br
	}
	b.ReportMetric(ratio, "exc/branch")
}

// --- E5: Figure 4 (coherence case study) --------------------------------

func BenchmarkFig4(b *testing.B) {
	cfg := multi.DefaultConfig()
	var refSlow, eccSlow float64
	for i := 0; i < b.N; i++ {
		_, speedup, err := coherence.Figure4(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		refSlow = speedup["reference-checking"]
		eccSlow = speedup["ecc-fault"]
	}
	b.ReportMetric(100*refSlow, "refcheck-%slower")
	b.ReportMetric(100*eccSlow, "ecc-%slower")
}

func BenchmarkFig4SingleApp(b *testing.B) {
	cfg := multi.DefaultConfig()
	app := coherence.Water(cfg.Processors)
	pol := coherence.Schemes()[2] // informing
	for i := 0; i < b.N; i++ {
		if _, err := multi.Simulate(app, pol, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: §3.3 speculative-fill invalidation ------------------------------

func BenchmarkSpecInvalidate(b *testing.B) {
	bm := mustBench(b, "alvinn")
	prog, err := workload.Build(bm, workload.NewPlanSingle(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	var invals float64
	for i := 0; i < b.N; i++ {
		cfg := core.R10000(core.TrapBranch)
		cfg.OOO.ExtendMSHRLifetime = true
		cfg.OOO.SpecInjectEvery = 32
		cfg.OOO.SpecInjectStride = 8192
		run, err := cfg.WithMaxInsts(100_000_000).Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		invals = float64(run.SpecInvalidates)
		if run.MSHRPeak > 8 {
			b.Fatalf("MSHR peak %d exceeds 8 (paper: eight sufficed)", run.MSHRPeak)
		}
	}
	b.ReportMetric(invals, "invalidations")
}

// BenchmarkCountersVsInforming reproduces the §1 motivation: the cost of
// counter-based per-reference monitoring relative to the informing trap.
func BenchmarkCountersVsInforming(b *testing.B) {
	bm := mustBench(b, "alvinn")
	var ratio float64
	for i := 0; i < b.N; i++ {
		cnt := mustRun(b, core.R10000(core.Off), bm, workload.NewPlanCounter())
		trap := mustRun(b, core.R10000(core.TrapBranch), bm, workload.NewPlanSingle(1))
		ratio = cnt / trap
	}
	b.ReportMetric(ratio, "counter/informing")
}

// --- Ablations (DESIGN.md §4) --------------------------------------------

// BenchmarkAblationShadowStates quantifies the §3.2 hardware question: how
// much performance the extra branch shadow state buys when informing
// references consume it.
func BenchmarkAblationShadowStates(b *testing.B) {
	bm := mustBench(b, "compress")
	prog, err := workload.Build(bm, workload.NewPlanSingle(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	run := func(shadow int) float64 {
		cfg := core.R10000(core.TrapBranch)
		cfg.OOO.ShadowStates = shadow
		r, err := cfg.WithMaxInsts(100_000_000).Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		return float64(r.Cycles)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = run(4) / run(12) // R10000-like 4 vs the paper's ~3x provisioning
	}
	b.ReportMetric(ratio, "4vs12shadow")
}

// BenchmarkAblationMSHRs sweeps the lockup-free cache depth.
func BenchmarkAblationMSHRs(b *testing.B) {
	bm := mustBench(b, "swm256")
	prog, err := workload.Build(bm, workload.NewPlanNone(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := core.R10000(core.Off)
				cfg.OOO.Timing.MSHRs = n
				r, err := cfg.WithMaxInsts(100_000_000).Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkAblationROB sweeps the reorder-buffer size on a miss-heavy
// workload.
func BenchmarkAblationROB(b *testing.B) {
	bm := mustBench(b, "mdljsp2")
	prog, err := workload.Build(bm, workload.NewPlanNone(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 32, 64} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := core.R10000(core.Off)
				cfg.OOO.ROBSize = n
				r, err := cfg.WithMaxInsts(100_000_000).Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall second) — the engineering figure of merit.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bm := mustBench(b, "espresso")
	prog, err := workload.Build(bm, workload.NewPlanNone(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		cfg  core.Config
	}{
		{"ooo", core.R10000(core.Off)},
		{"inorder", core.Alpha21164(core.Off)},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				r, err := m.cfg.WithMaxInsts(100_000_000).Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				insts = r.DynInsts
			}
			b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "siminsts/s")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
