// Command benchdiff compares a freshly measured hotpathbench report
// against the committed one and fails (exit 1) when a watched
// measurement regressed beyond its allowed threshold. It is the CI perf
// gate for the block-compiled kernel (DESIGN.md §14): the committed
// BENCH_hotpath.json is the floor, and a ns/inst increase beyond a
// measurement's threshold breaks the build.
//
//	go run ./cmd/hotpathbench -repeat 3 -out /tmp/bench.json
//	go run ./cmd/benchdiff -committed BENCH_hotpath.json -fresh /tmp/bench.json
//
// By default every measurement present in BOTH reports is gated
// ("-measurements all"), each under its own threshold: full-cell
// measurements (ooo_cell, fig2_cell, ...) are stable at -threshold
// (default 10%), while the sub-20ns/op microbenchmarks (interp_run,
// cache_mix, dataMem_walk) swing with code layout alone and carry wider
// built-in bounds (see cellThresholds). An explicit comma-separated
// -measurements list gates exactly those names and fails if any is
// missing from either report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// result mirrors the hotpathbench Result fields benchdiff reads.
type result struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// report mirrors the hotpathbench Report envelope.
type report struct {
	Label   string            `json:"label"`
	Results map[string]result `json:"results"`
}

// cellThresholds widens the gate for measurements whose per-op time is
// small enough that code layout and branch-predictor state move them by
// double-digit percentages with no semantic change. EXPERIMENTS.md
// ("Hot-path kernel") records the observed swing behind each bound; the
// full-cell measurements keep the flag default.
var cellThresholds = map[string]float64{
	"interp_run":   0.25, // ~19.7 ns/op raw decode loop; ±2% run-to-run, layout-sensitive
	"cache_mix":    0.30, // ~20 ns/op cache probe microbenchmark
	"dataMem_walk": 0.30, // ~4.7 ns/op pointer walk; single-ns shifts are >20%

	// The _noblock lanes run the interpreted fallback purely to quantify
	// the block kernel's speedup; they are not a served path, and the
	// interpreter's dispatch loop swings harder with layout than the
	// compiled blocks do.
	"ooo_cell_noblock":     0.20,
	"inorder_cell_noblock": 0.20,
}

func load(path string) (report, error) {
	var rep report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no results", path)
	}
	return rep, nil
}

// watchList resolves the -measurements flag: "all" selects every name
// present in both reports (sorted, so output and failures are
// deterministic); an explicit list passes through verbatim.
func watchList(spec string, ref, cur report) []string {
	if strings.TrimSpace(spec) == "all" {
		var names []string
		for name := range ref.Results {
			if _, ok := cur.Results[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		return names
	}
	var names []string
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// thresholdFor picks a measurement's regression bound: the built-in
// per-cell noise table, else the flag default.
func thresholdFor(name string, base float64) float64 {
	if th, ok := cellThresholds[name]; ok && th > base {
		return th
	}
	return base
}

// gate compares the named measurements and reports whether any regressed
// beyond its threshold (or is missing). One line per measurement goes to
// out; diagnostics go to errOut.
func gate(ref, cur report, names []string, base float64, out, errOut io.Writer) (failed bool) {
	for _, name := range names {
		refR, ok := ref.Results[name]
		if !ok || refR.NsPerOp <= 0 {
			fmt.Fprintf(errOut, "benchdiff: %s missing from committed report\n", name)
			failed = true
			continue
		}
		curR, ok := cur.Results[name]
		if !ok || curR.NsPerOp <= 0 {
			fmt.Fprintf(errOut, "benchdiff: %s missing from fresh report\n", name)
			failed = true
			continue
		}
		th := thresholdFor(name, base)
		delta := curR.NsPerOp/refR.NsPerOp - 1
		status := "ok"
		if delta > th {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(out, "%-20s committed %9.2f ns/op  fresh %9.2f ns/op  %+6.1f%% (limit %+.0f%%)  %s\n",
			name, refR.NsPerOp, curR.NsPerOp, delta*100, th*100, status)
	}
	return failed
}

func main() {
	var (
		committed    = flag.String("committed", "BENCH_hotpath.json", "committed reference report")
		fresh        = flag.String("fresh", "", "freshly measured report (required)")
		measurements = flag.String("measurements", "all", `measurements to gate: "all" = every one present in both reports, or a comma-separated list`)
		threshold    = flag.Float64("threshold", 0.10, "default maximum ns/op regression fraction (noisy microbenchmarks carry wider built-in bounds)")
	)
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		os.Exit(2)
	}

	ref, err := load(*committed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := watchList(*measurements, ref, cur)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no measurements to gate")
		os.Exit(2)
	}
	if gate(ref, cur, names, *threshold, os.Stdout, os.Stderr) {
		fmt.Fprintln(os.Stderr, "benchdiff: regression beyond a measurement's threshold (or missing measurement)")
		os.Exit(1)
	}
}
