// Command benchdiff compares a freshly measured hotpathbench report
// against the committed one and fails (exit 1) when a watched
// measurement regressed beyond the allowed threshold. It is the CI perf
// gate for the block-compiled kernel (DESIGN.md §14): the committed
// BENCH_hotpath.json is the floor, and a ns/inst increase of more than
// -threshold on any watched measurement breaks the build.
//
//	go run ./cmd/hotpathbench -repeat 3 -out /tmp/bench.json
//	go run ./cmd/benchdiff -committed BENCH_hotpath.json -fresh /tmp/bench.json
//
// By default only ooo_cell is gated — it is the measurement the block
// kernel accelerates and the least noisy full-cell number. Additional
// measurements can be watched with -measurements (comma-separated);
// they must exist in both reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// result mirrors the hotpathbench Result fields benchdiff reads.
type result struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// report mirrors the hotpathbench Report envelope.
type report struct {
	Label   string            `json:"label"`
	Results map[string]result `json:"results"`
}

func load(path string) (report, error) {
	var rep report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no results", path)
	}
	return rep, nil
}

func main() {
	var (
		committed    = flag.String("committed", "BENCH_hotpath.json", "committed reference report")
		fresh        = flag.String("fresh", "", "freshly measured report (required)")
		measurements = flag.String("measurements", "ooo_cell", "comma-separated measurements to gate")
		threshold    = flag.Float64("threshold", 0.10, "maximum allowed ns/op regression fraction")
	)
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		os.Exit(2)
	}

	ref, err := load(*committed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, name := range strings.Split(*measurements, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		refR, ok := ref.Results[name]
		if !ok || refR.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %s missing from committed report %s\n", name, *committed)
			failed = true
			continue
		}
		curR, ok := cur.Results[name]
		if !ok || curR.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %s missing from fresh report %s\n", name, *fresh)
			failed = true
			continue
		}
		delta := curR.NsPerOp/refR.NsPerOp - 1
		status := "ok"
		if delta > *threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-20s committed %9.2f ns/op  fresh %9.2f ns/op  %+6.1f%%  %s\n",
			name, refR.NsPerOp, curR.NsPerOp, delta*100, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.0f%% (or missing measurement)\n", *threshold*100)
		os.Exit(1)
	}
}
