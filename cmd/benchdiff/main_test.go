package main

import (
	"bytes"
	"reflect"
	"testing"
)

func rep(cells map[string]float64) report {
	r := report{Results: map[string]result{}}
	for name, ns := range cells {
		r.Results[name] = result{NsPerOp: ns}
	}
	return r
}

func TestWatchListAllIsSortedIntersection(t *testing.T) {
	ref := rep(map[string]float64{"ooo_cell": 100, "interp_run": 20, "old_only": 5})
	cur := rep(map[string]float64{"ooo_cell": 100, "interp_run": 20, "new_only": 5})
	got := watchList("all", ref, cur)
	want := []string{"interp_run", "ooo_cell"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("watchList(all) = %v, want %v", got, want)
	}
}

func TestWatchListExplicitPassesThrough(t *testing.T) {
	got := watchList(" ooo_cell, missing ", report{}, report{})
	want := []string{"ooo_cell", "missing"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("watchList = %v, want %v", got, want)
	}
}

func TestGatePerCellThresholds(t *testing.T) {
	ref := rep(map[string]float64{"ooo_cell": 100, "interp_run": 20})
	// ooo_cell +15% breaks its 10% bound; interp_run +15% sits inside its
	// widened 25% noise bound.
	cur := rep(map[string]float64{"ooo_cell": 115, "interp_run": 23})
	var out, errOut bytes.Buffer
	if !gate(ref, cur, []string{"ooo_cell", "interp_run"}, 0.10, &out, &errOut) {
		t.Fatalf("gate passed a 15%% ooo_cell regression:\n%s", out.String())
	}
	s := out.String()
	if !bytes.Contains(out.Bytes(), []byte("REGRESSION")) {
		t.Errorf("output lacks a REGRESSION line:\n%s", s)
	}

	// The same +15% on interp_run alone passes.
	out.Reset()
	if gate(ref, cur, []string{"interp_run"}, 0.10, &out, &errOut) {
		t.Fatalf("gate failed interp_run +15%% despite its 25%% noise bound:\n%s", out.String())
	}
}

func TestGateImprovementPasses(t *testing.T) {
	ref := rep(map[string]float64{"ooo_cell": 100})
	cur := rep(map[string]float64{"ooo_cell": 80})
	var out, errOut bytes.Buffer
	if gate(ref, cur, []string{"ooo_cell"}, 0.10, &out, &errOut) {
		t.Fatalf("gate failed an improvement:\n%s", out.String())
	}
}

func TestGateMissingMeasurementFails(t *testing.T) {
	ref := rep(map[string]float64{"ooo_cell": 100})
	cur := rep(map[string]float64{"ooo_cell": 100})
	var out, errOut bytes.Buffer
	if !gate(ref, cur, []string{"ooo_cell", "ghost"}, 0.10, &out, &errOut) {
		t.Fatal("gate passed with an explicitly watched measurement missing")
	}
	if !bytes.Contains(errOut.Bytes(), []byte("ghost missing")) {
		t.Errorf("diagnostics lack the missing name:\n%s", errOut.String())
	}
}

func TestThresholdForNeverNarrowsBelowFlag(t *testing.T) {
	// A generous -threshold must not be narrowed by the noise table.
	if th := thresholdFor("interp_run", 0.50); th != 0.50 {
		t.Errorf("thresholdFor(interp_run, 0.50) = %v, want 0.50", th)
	}
	if th := thresholdFor("interp_run", 0.10); th != 0.25 {
		t.Errorf("thresholdFor(interp_run, 0.10) = %v, want 0.25", th)
	}
	if th := thresholdFor("ooo_cell", 0.10); th != 0.10 {
		t.Errorf("thresholdFor(ooo_cell, 0.10) = %v, want 0.10", th)
	}
}
