// Command clusterbench measures informd cluster serving throughput: it
// boots N in-process nodes (real HTTP listeners, rendezvous routing,
// forwarding — the same path `informd -peers` runs, minus the network
// between machines), pushes a duplicate-free cell workload through one
// ingress node, and reports cells/sec cold (every cell simulated
// somewhere) and warm (the identical batch repeated against a DIFFERENT
// node, so every cell resolves through the cluster-wide cache).
//
//	go run ./cmd/clusterbench -nodes 1,3 -cells 60 -out BENCH_cluster.json
//
// Read the numbers with the machine in mind: on a single-core host the
// in-process "cluster" shares that core, so cold throughput cannot
// exceed the 1-node figure — the cold delta IS the forwarding overhead,
// and scaling beyond it needs real cores behind each node
// (EXPERIMENTS.md "Cluster scaling").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"informing/internal/cluster"
	"informing/internal/serve"
)

// node is one in-process informd: a Server behind a real listener whose
// handler is bound after every peer URL is known.
type node struct {
	srv *serve.Server
	ts  *httptest.Server
}

func bootCluster(size int) ([]*node, error) {
	nodes := make([]*node, size)
	urls := make([]string, size)
	for i := range nodes {
		n := &node{}
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.srv.Handler().ServeHTTP(w, r)
		}))
		nodes[i] = n
		urls[i] = n.ts.URL
	}
	for i, n := range nodes {
		cfg := serve.Config{Logf: func(string, ...any) {}}
		if size > 1 {
			cl, err := cluster.New(cluster.Config{
				Self:    urls[i],
				Peers:   urls,
				Version: serve.CodeVersion,
				Secret:  "clusterbench-in-process",
				Logf:    func(string, ...any) {},
			})
			if err != nil {
				return nil, err
			}
			cfg.Cluster = cl
		}
		n.srv = serve.New(cfg)
	}
	return nodes, nil
}

func (n *node) close() {
	n.ts.Close()
	n.srv.Close()
}

// workload builds count duplicate-free cells: one real benchmark cell
// per distinct MaxInsts budget, every budget above the cell's natural
// instruction count so each cell simulates the same full workload while
// fingerprinting uniquely. Duplicate-free is the honest scaling case —
// duplicates would let the cache absorb work and flatter the cluster.
func workload(count int) []serve.Request {
	cells := make([]serve.Request, count)
	for i := range cells {
		cells[i] = serve.Request{
			Kind:      serve.KindCell,
			Benchmark: "compress",
			Plan:      "N",
			Machine:   serve.MachineOOO,
			MaxInsts:  2_000_000 + uint64(i),
		}
	}
	return cells
}

func postBatch(url string, cells []serve.Request) (time.Duration, error) {
	body, err := json.Marshal(serve.SimulateRequest{Cells: cells})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var sr serve.SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	for i, cr := range sr.Results {
		if cr.Error != nil {
			return 0, fmt.Errorf("cell %d: %s", i, cr.Error.Message)
		}
	}
	return time.Since(start), nil
}

// configResult is one cluster size's measurements.
type configResult struct {
	Nodes           int     `json:"nodes"`
	ColdSecs        float64 `json:"cold_secs"`
	ColdCellsPerSec float64 `json:"cold_cells_per_sec"`
	WarmSecs        float64 `json:"warm_secs"`
	WarmCellsPerSec float64 `json:"warm_cells_per_sec"`
	Forwarded       uint64  `json:"forwarded_cells"`
}

type reportFile struct {
	Label      string                  `json:"label"`
	Go         string                  `json:"go"`
	GoMaxProcs int                     `json:"gomaxprocs"`
	Cells      int                     `json:"cells"`
	Note       string                  `json:"note"`
	Configs    map[string]configResult `json:"configs"`
}

func run(sizes []int, count int) (reportFile, error) {
	rep := reportFile{
		Label:      "cluster-scaling",
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Cells:      count,
		Note: "in-process nodes share this host's cores: cold throughput is bounded by " +
			"the 1-node figure and the delta is forwarding overhead; real scaling needs " +
			"one machine per node",
		Configs: map[string]configResult{},
	}
	cells := workload(count)
	for _, size := range sizes {
		nodes, err := bootCluster(size)
		if err != nil {
			return rep, err
		}
		cold, err := postBatch(nodes[0].ts.URL, cells)
		if err != nil {
			return rep, fmt.Errorf("%d-node cold batch: %w", size, err)
		}
		warmIngress := nodes[0]
		if size > 1 {
			warmIngress = nodes[1] // repeat against a non-owner/non-ingress node
		}
		warm, err := postBatch(warmIngress.ts.URL, cells)
		if err != nil {
			return rep, fmt.Errorf("%d-node warm batch: %w", size, err)
		}
		var forwarded uint64
		for _, n := range nodes {
			forwarded += n.srv.Sim().Reg.Counter(serve.MetricForwarded).Load()
		}
		rep.Configs[fmt.Sprintf("%d-node", size)] = configResult{
			Nodes:           size,
			ColdSecs:        cold.Seconds(),
			ColdCellsPerSec: float64(count) / cold.Seconds(),
			WarmSecs:        warm.Seconds(),
			WarmCellsPerSec: float64(count) / warm.Seconds(),
			Forwarded:       forwarded,
		}
		for _, n := range nodes {
			n.close()
		}
	}
	return rep, nil
}

func main() {
	var (
		nodesSpec = flag.String("nodes", "1,3", "comma-separated cluster sizes to measure")
		count     = flag.Int("cells", 60, "duplicate-free cells per batch")
		out       = flag.String("out", "", "write the JSON report here (empty = stdout only)")
	)
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*nodesSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "clusterbench: bad -nodes entry %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	rep, err := run(sizes, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
		os.Exit(1)
	}
	for _, size := range sizes {
		c := rep.Configs[fmt.Sprintf("%d-node", size)]
		fmt.Printf("%d-node: cold %6.1f cells/s (%.2fs)  warm %8.1f cells/s (%.3fs)  forwarded %d\n",
			size, c.ColdCellsPerSec, c.ColdSecs, c.WarmCellsPerSec, c.WarmSecs, c.Forwarded)
	}
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("clusterbench: wrote %s\n", *out)
	}
}
