// Command coherencebench regenerates Figure 4 of "Informing Memory
// Operations" (ISCA 1996): cache coherence with fine-grained access
// control on a simulated 16-processor machine, comparing
// reference-checking (Blizzard-S-like), ECC-fault (Blizzard-E-like) and
// informing-memory-operation access control with the Table 2 parameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"informing/internal/coherence"
	"informing/internal/govern"
	"informing/internal/multi"
	"informing/internal/obs"
	"informing/internal/prof"
)

func main() {
	var (
		procs  = flag.Int("procs", 16, "number of processors")
		msgLat = flag.Int64("msglat", 900, "one-way message latency (cycles)")
		l1kb   = flag.Int("l1kb", 16, "per-processor L1 size (KB)")
		detail = flag.Bool("detail", false, "print per-scheme cycle breakdowns")
		sweep  = flag.Bool("sweep", false, "run the §4.3.2 sensitivity sweep as well")
		jobs   = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count (1 = sequential)")
	)
	pf := prof.Register()
	of := obs.RegisterFlags()
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "coherencebench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	sess, err := of.Start(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coherencebench: %v\n", err)
		prof.StopThenExit(stopProf, 1)
	}
	defer sess.Close()

	cfg := multi.DefaultConfig()
	cfg.Processors = *procs
	cfg.MsgLatency = *msgLat
	cfg.L1.SizeBytes = *l1kb << 10
	// The multi engine has no per-instruction trace, but its reference,
	// level, protocol-action and cycle metrics aggregate across the sweep.
	cfg.Obs = sess.Sim

	// Ctrl-C (or SIGTERM) cancels the simulation at the next governor
	// poll; the applications completed by then are still printed.
	ctx, stop := govern.SignalContext(nil)
	defer stop()
	cfg.Govern.Ctx = ctx

	rows, speedup, err := coherence.Figure4(cfg, *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coherencebench: %v\n", err)
		if snap, ok := govern.SnapshotIn(err); ok {
			fmt.Fprintf(os.Stderr, "coherencebench: aborted at %v\n", snap)
		}
		if len(rows) > 0 {
			fmt.Printf("--- partial results (%d of %d applications completed before abort) ---\n",
				len(rows), len(coherence.Apps(cfg.Processors)))
			fmt.Print(coherence.FormatFigure4Detail(rows))
		}
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "coherencebench: %v\n", err)
		}
		prof.StopThenExit(stopProf, 1)
	}
	fmt.Print(coherence.FormatFigure4(rows, speedup))
	if *detail {
		fmt.Println()
		fmt.Print(coherence.FormatFigure4Detail(rows))
	}
	if *sweep {
		points, err := coherence.Sensitivity(cfg,
			[]int64{300, 900, 1800}, []int{4, 16, 64}, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coherencebench: %v\n", err)
			if err := sess.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "coherencebench: %v\n", err)
			}
			prof.StopThenExit(stopProf, 1)
		}
		fmt.Println()
		fmt.Print(coherence.FormatSensitivity(points))
	}
}
