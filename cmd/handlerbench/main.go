// Command handlerbench regenerates the generic-miss-handler experiments of
// §4.2 of "Informing Memory Operations" (ISCA 1996):
//
//	handlerbench -experiment fig2      Figure 2 (13 benchmarks, 1/10-instr handlers)
//	handlerbench -experiment fig3      Figure 3 (su2cor)
//	handlerbench -experiment h100      100-instruction handlers (§4.2.2 text)
//	handlerbench -experiment trapmode  trap-as-branch vs trap-as-exception
//	handlerbench -experiment condcode  explicit condition-code checks vs traps
//	handlerbench -experiment sampling  sampled 100-instruction handlers
//	handlerbench -experiment counters  §1 strawman: serializing miss counters
//	handlerbench -experiment all       everything above
//
// handlerbench -list describes the benchmark suite.
//
// Use -scale to grow/shrink the workloads, -raw for per-run statistics,
// and -j to bound the worker pool that shards the sweep's independent
// (benchmark, machine, plan) cells (default: GOMAXPROCS; -j 1 is the
// sequential reference path and produces byte-identical tables).
// -cpuprofile/-memprofile write pprof profiles of the sweep (the hot-path
// optimisation workflow of EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"informing/internal/experiments"
	"informing/internal/govern"
	"informing/internal/obs"
	"informing/internal/prof"
	"informing/internal/workload"
)

// sess is the observability session; the error exit path routes through it
// so aborted sweeps still flush the trace sink and print metrics.
var sess *obs.Session

func main() {
	var (
		exp   = flag.String("experiment", "all", "fig2|fig3|h100|trapmode|condcode|sampling|counters|all")
		scale = flag.Int64("scale", 1, "workload iteration multiplier")
		raw   = flag.Bool("raw", false, "also print raw per-run statistics")
		list  = flag.Bool("list", false, "describe the benchmark suite and exit")
		jobs  = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count (1 = sequential)")
	)
	pf := prof.Register()
	of := obs.RegisterFlags()
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if sess, err = of.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
		prof.StopThenExit(stopProf, 1)
	}
	defer sess.Close()

	if *list {
		fmt.Println("SPEC92 stand-in suite (see DESIGN.md for the substitution argument):")
		for _, bm := range workload.All() {
			fmt.Printf("  %-10s %-4s %s\n", bm.Name, bm.Class, bm.About)
		}
		return
	}

	// Ctrl-C (or SIGTERM) cancels the sweep at the next governor poll;
	// whatever results completed by then are still printed.
	ctx, stop := govern.SignalContext(nil)
	defer stop()

	opt := experiments.DefaultOptions()
	opt.Scale = *scale
	opt.Ctx = ctx
	opt.Workers = *jobs
	// The obs sinks are goroutine-safe, so one session serves the whole
	// worker pool; metrics aggregate across all cells of the sweep.
	opt.Obs = sess.Sim
	opt.Trace = sess.Trace()
	opt.TraceEvery = sess.TraceEvery()

	// partial prints the results an interrupted experiment completed
	// before returning its error.
	partial := func(res []experiments.Result, err error) error {
		if len(res) > 0 {
			fmt.Printf("--- partial results (%d runs completed before abort) ---\n", len(res))
			fmt.Print(experiments.FormatRuns(res))
		}
		return err
	}

	run := func(name string) error {
		switch name {
		case "fig2":
			res, err := experiments.Figure2(opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Print(experiments.FormatFigure(
				"Figure 2: performance of generic miss handlers (1 and 10 instructions)", res))
			fmt.Println()
			fmt.Print(experiments.FormatOverheadSummary(res))
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		case "fig3":
			res, err := experiments.Figure3(opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Print(experiments.FormatFigure(
				"Figure 3: su2cor with generic miss handlers", res))
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		case "h100":
			res, err := experiments.H100(opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Print(experiments.FormatFigure(
				"100-instruction handlers (paper: compress ~6x, su2cor ~7x, ora ~2%)", res))
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		case "trapmode":
			ratios, res, err := experiments.TrapModeComparison(opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Println("Trap handling on the out-of-order machine: exception vs branch")
			fmt.Println("(paper §4.2.2: exceptions cost compress +9% with 1-instr and +7% with 10-instr handlers)")
			for _, k := range []string{"S1", "S10"} {
				fmt.Printf("  compress %-4s exception/branch execution-time ratio: %.3f (%+.1f%%)\n",
					k, ratios[k], 100*(ratios[k]-1))
			}
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		case "condcode":
			res, err := experiments.HandlerOverhead(workload.Fig2Set(), experiments.CondCodePlans(), opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Print(experiments.FormatFigure(
				"Condition-code checks (CC) vs unique-handler traps (U)", res))
			fmt.Println()
			fmt.Print(experiments.FormatOverheadSummary(res))
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		case "counters":
			bms, err := benchSet("compress", "espresso", "alvinn", "tomcatv")
			if err != nil {
				return err
			}
			res, err := experiments.HandlerOverhead(bms, experiments.MotivationPlans(), opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Print(experiments.FormatFigure(
				"§1 motivation: serializing miss counters (CNT) vs informing mechanisms", res))
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		case "sampling":
			bms, err := benchSet("compress", "su2cor", "tomcatv")
			if err != nil {
				return err
			}
			res, err := experiments.HandlerOverhead(bms, experiments.SamplingPlans(), opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Print(experiments.FormatFigure(
				"Sampled 100-instruction handlers (§4.2.2 mitigation)", res))
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	runAll(run, *exp, stopProf)
}

// benchSet resolves benchmark names, erroring on unknown ones instead of
// silently simulating zero-value benchmarks.
func benchSet(names ...string) ([]workload.Benchmark, error) {
	var bms []workload.Benchmark
	for _, name := range names {
		bm, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		bms = append(bms, bm)
	}
	return bms, nil
}

func runAll(run func(string) error, exp string, stopProf func()) {
	names := []string{exp}
	if exp == "all" {
		names = []string{"fig2", "fig3", "h100", "trapmode", "condcode", "sampling", "counters"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
			if snap, ok := govern.SnapshotIn(err); ok {
				fmt.Fprintf(os.Stderr, "handlerbench: aborted at %v\n", snap)
			}
			// prof.StopThenExit calls os.Exit (skipping defers), so the
			// abort path must flush the trace sink itself — losing the
			// buffered tail here was the bug this layer fixes.
			if err := sess.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
			}
			prof.StopThenExit(stopProf, 1)
		}
	}
}
