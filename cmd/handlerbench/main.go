// Command handlerbench regenerates the generic-miss-handler experiments of
// §4.2 of "Informing Memory Operations" (ISCA 1996):
//
//	handlerbench -experiment fig2      Figure 2 (13 benchmarks, 1/10-instr handlers)
//	handlerbench -experiment fig3      Figure 3 (su2cor)
//	handlerbench -experiment h100      100-instruction handlers (§4.2.2 text)
//	handlerbench -experiment trapmode  trap-as-branch vs trap-as-exception
//	handlerbench -experiment condcode  explicit condition-code checks vs traps
//	handlerbench -experiment sampling  sampled 100-instruction handlers
//	handlerbench -experiment counters  §1 strawman: serializing miss counters
//	handlerbench -experiment prefetch  §6 case study: stride prefetching as a miss handler
//	handlerbench -experiment all       everything above
//
// handlerbench -list describes the benchmark suite.
//
// Use -scale to grow/shrink the workloads, -raw for per-run statistics,
// -policy to select the data-hierarchy replacement policy (lru, srrip,
// brrip, trrip — the tables then measure that policy's cells, with the
// miss taxonomy attributing every miss to its cause), and -j to bound
// the worker pool that shards the sweep's independent
// (benchmark, machine, plan) cells (default: GOMAXPROCS; -j 1 is the
// sequential reference path and produces byte-identical tables).
// -cpuprofile/-memprofile write pprof profiles of the sweep (the hot-path
// optimisation workflow of EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"informing/internal/experiments"
	"informing/internal/govern"
	"informing/internal/obs"
	"informing/internal/prof"
	"informing/internal/workload"
)

// sess is the observability session; the error exit path routes through it
// so aborted sweeps still flush the trace sink and print metrics.
var sess *obs.Session

func main() {
	var (
		exp    = flag.String("experiment", "all", "fig2|fig3|h100|trapmode|condcode|sampling|counters|prefetch|all")
		scale  = flag.Int64("scale", 1, "workload iteration multiplier")
		policy = flag.String("policy", "", "data-hierarchy replacement policy (lru|srrip|brrip|trrip; empty = lru)")
		raw    = flag.Bool("raw", false, "also print raw per-run statistics")
		list   = flag.Bool("list", false, "describe the benchmark suite and exit")
		jobs   = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count (1 = sequential)")
	)
	pf := prof.Register()
	of := obs.RegisterFlags()
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if sess, err = of.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
		prof.StopThenExit(stopProf, 1)
	}
	defer sess.Close()

	if *list {
		fmt.Println("SPEC92 stand-in suite (see DESIGN.md for the substitution argument):")
		for _, bm := range workload.All() {
			fmt.Printf("  %-10s %-4s %s\n", bm.Name, bm.Class, bm.About)
		}
		return
	}

	// Ctrl-C (or SIGTERM) cancels the sweep at the next governor poll;
	// whatever results completed by then are still printed.
	ctx, stop := govern.SignalContext(nil)
	defer stop()

	opt := experiments.DefaultOptions()
	opt.Scale = *scale
	opt.Policy = *policy
	opt.Ctx = ctx
	opt.Workers = *jobs
	// The obs sinks are goroutine-safe, so one session serves the whole
	// worker pool; metrics aggregate across all cells of the sweep.
	opt.Obs = sess.Sim
	opt.Trace = sess.Trace()
	opt.TraceEvery = sess.TraceEvery()

	// partial prints the results an interrupted experiment completed
	// before returning its error.
	partial := func(res []experiments.Result, err error) error {
		if len(res) > 0 {
			fmt.Printf("--- partial results (%d runs completed before abort) ---\n", len(res))
			fmt.Print(experiments.FormatRuns(res))
		}
		return err
	}

	// The table-shaped experiments come from experiments.Named — the same
	// definitions informd serves, so the CLI tables and the served tables
	// cannot drift apart. trapmode is the one ratio-shaped exception.
	run := func(name string) error {
		if name == "trapmode" {
			ratios, res, err := experiments.TrapModeComparison(opt)
			if err != nil {
				return partial(res, err)
			}
			fmt.Println("Trap handling on the out-of-order machine: exception vs branch")
			fmt.Println("(paper §4.2.2: exceptions cost compress +9% with 1-instr and +7% with 10-instr handlers)")
			for _, k := range []string{"S1", "S10"} {
				fmt.Printf("  compress %-4s exception/branch execution-time ratio: %.3f (%+.1f%%)\n",
					k, ratios[k], 100*(ratios[k]-1))
			}
			if *raw {
				fmt.Print(experiments.FormatRuns(res))
			}
			fmt.Println()
			return nil
		}
		ne, err := experiments.Named(name)
		if err != nil {
			return fmt.Errorf("unknown experiment %q", name)
		}
		o := opt
		o.Baseline = ne.Baseline
		res, err := experiments.HandlerOverhead(ne.Benchmarks, ne.Specs, o)
		if err != nil {
			return partial(res, err)
		}
		fmt.Print(experiments.FormatFigure(ne.Title, res))
		if ne.Summary {
			fmt.Println()
			fmt.Print(experiments.FormatOverheadSummary(res))
		}
		if name == "prefetch" {
			// The case study's payload is the taxonomy shift, not the
			// overhead bars: show where the misses went.
			fmt.Println()
			fmt.Print(experiments.FormatTaxonomy("Miss taxonomy under prefetch handlers", res))
		}
		if *raw {
			fmt.Print(experiments.FormatRuns(res))
		}
		fmt.Println()
		return nil
	}

	runAll(run, *exp, stopProf)
}

func runAll(run func(string) error, exp string, stopProf func()) {
	names := []string{exp}
	if exp == "all" {
		names = []string{"fig2", "fig3", "h100", "trapmode", "condcode", "sampling", "counters", "prefetch"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
			if snap, ok := govern.SnapshotIn(err); ok {
				fmt.Fprintf(os.Stderr, "handlerbench: aborted at %v\n", snap)
			}
			// prof.StopThenExit calls os.Exit (skipping defers), so the
			// abort path must flush the trace sink itself — losing the
			// buffered tail here was the bug this layer fixes.
			if err := sess.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "handlerbench: %v\n", err)
			}
			prof.StopThenExit(stopProf, 1)
		}
	}
}
