// Command hotpathbench measures the per-instruction hot path of the
// single-cell simulation pipeline and records the numbers in a JSON
// report (BENCH_hotpath.json at the repository root). It is the
// regression baseline for perf work: run it before and after an
// optimisation and compare ns/inst, allocs/inst and cells/sec.
//
//	hotpathbench -out BENCH_hotpath.json -label optimized \
//	             -baseline BENCH_hotpath_baseline.json
//
// The -baseline flag embeds a previously recorded report (typically one
// captured at the pre-optimisation commit) under "baseline" and computes
// per-measurement speedups. The committed BENCH_hotpath_baseline.json
// holds the pre-optimisation reference measurements; `make bench`
// regenerates BENCH_hotpath.json against it.
//
// Measurements:
//
//	cache_mix     mem.Hierarchy.ProbeData on a sequential/strided/hot-set
//	              access mix (the memoization target), ns per reference
//	dataMem_walk  isa.DataMem Load/Store walk, ns per access
//	interp_run    functional interp.Machine over a full workload with the
//	              real two-level probe, ns and allocs per instruction
//	ooo_cell      one out-of-order timing cell (compress, S1, trap-branch)
//	inorder_cell  one in-order timing cell (tomcatv, S1, trap-branch)
//	fig2_cell     one Figure-2 sweep cell: baseline (off/N) plus
//	              instrumented (trap-branch/S1) run, reported as cells/sec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"informing/internal/core"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/obs"
	"informing/internal/prof"
	"informing/internal/workload"
)

// sess is the observability session. Measuring a timing cell with
// `-metrics` (and optionally `-trace-out`/`-trace-sample`) quantifies the
// enabled-path overhead against a plain run — the workflow that enforces
// the DESIGN.md §11 budget.
var sess *obs.Session

// Result is one measurement in the report.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Ops         uint64  `json:"ops"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
}

// Report is the serialised form of one hotpathbench invocation.
type Report struct {
	Label   string            `json:"label"`
	Go      string            `json:"go"`
	Results map[string]Result `json:"results"`

	// Baseline, when present, is the pre-optimisation report this run is
	// compared against; Speedup is baseline ns_per_op / this ns_per_op.
	Baseline *Report            `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "-", "output file (- = stdout)")
		label    = flag.String("label", "current", "report label")
		baseline = flag.String("baseline", "", "embed this previously recorded report as the baseline")
		repeat   = flag.Int("repeat", 3, "repetitions per measurement (best-of)")
	)
	pf := prof.Register()
	of := obs.RegisterFlags()
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotpathbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if sess, err = of.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hotpathbench: %v\n", err)
		prof.StopThenExit(stopProf, 1)
	}
	defer sess.Close()

	rep := Report{Label: *label, Go: runtime.Version(), Results: map[string]Result{}}

	measure := func(name string, fn func() (ops uint64, err error)) {
		best := Result{NsPerOp: -1}
		for i := 0; i < *repeat; i++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			ops, err := fn()
			el := time.Since(t0)
			runtime.ReadMemStats(&m1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hotpathbench: %s: %v\n", name, err)
				sess.CloseThenExit(1)
			}
			r := Result{
				NsPerOp:     float64(el.Nanoseconds()) / float64(ops),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
				Ops:         ops,
				CellsPerSec: 1 / el.Seconds(),
			}
			if best.NsPerOp < 0 || r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		rep.Results[name] = best
		fmt.Fprintf(os.Stderr, "%-13s %10.2f ns/op %8.4f allocs/op (%d ops)\n",
			name, best.NsPerOp, best.AllocsPerOp, best.Ops)
	}

	measure("cache_mix", benchCacheMix)
	measure("dataMem_walk", benchDataMemWalk)
	measure("interp_run", benchInterpRun)
	measure("ooo_cell", func() (uint64, error) { return benchCell(core.R10000(core.TrapBranch), "compress") })
	measure("inorder_cell", func() (uint64, error) { return benchCell(core.Alpha21164(core.TrapBranch), "tomcatv") })
	// The same cells on the per-instruction front end (DESIGN.md §14):
	// the difference against ooo_cell/inorder_cell is the block kernel's
	// contribution in isolation.
	measure("ooo_cell_noblock", func() (uint64, error) {
		return benchCell(core.R10000(core.TrapBranch).WithBlockKernel(false), "compress")
	})
	measure("inorder_cell_noblock", func() (uint64, error) {
		return benchCell(core.Alpha21164(core.TrapBranch).WithBlockKernel(false), "tomcatv")
	})
	measure("fig2_cell", benchFig2Cell)

	if *baseline != "" {
		b, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotpathbench: %v\n", err)
			sess.CloseThenExit(1)
		}
		var base Report
		if err := json.Unmarshal(b, &base); err != nil {
			fmt.Fprintf(os.Stderr, "hotpathbench: baseline: %v\n", err)
			sess.CloseThenExit(1)
		}
		base.Baseline, base.Speedup = nil, nil // never nest
		rep.Baseline = &base
		rep.Speedup = map[string]float64{}
		for name, r := range rep.Results {
			if br, ok := base.Results[name]; ok && r.NsPerOp > 0 {
				rep.Speedup[name] = br.NsPerOp / r.NsPerOp
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotpathbench: %v\n", err)
		sess.CloseThenExit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hotpathbench: %v\n", err)
		sess.CloseThenExit(1)
	}
}

// benchCacheMix drives the two-level hierarchy with the reference patterns
// the memo fast path targets: long sequential walks (same line re-hit 4x),
// an 8-byte strided sweep, and a seeded hot-set random mix.
func benchCacheMix() (uint64, error) {
	hier, err := mem.NewHierarchy(mem.HierConfig{
		L1: mem.CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
		L2: mem.CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Assoc: 2},
	})
	if err != nil {
		return 0, err
	}
	const n = 2_000_000
	lcg := uint64(1)
	for i := uint64(0); i < n; i++ {
		var addr uint64
		switch i & 3 {
		case 0, 1: // sequential word walk over 64 KB
			addr = (i * 8) & (64<<10 - 1)
		case 2: // strided sweep, one word per line over 256 KB
			addr = (i * 32) & (256<<10 - 1)
		default: // hot-set random over 16 KB
			lcg = lcg*6364136223846793005 + 1442695040888963407
			addr = (lcg >> 33) & (16<<10 - 1)
		}
		hier.ProbeData(addr, i&7 == 0)
	}
	return n, nil
}

// benchDataMemWalk exercises isa.DataMem with the dominant
// sequential/strided patterns of the workload generators.
func benchDataMemWalk() (uint64, error) {
	var m isa.DataMem
	const n = 2_000_000
	sum := uint64(0)
	for i := uint64(0); i < n; i++ {
		addr := (i * 8) & (1<<20 - 1) // sequential over 1 MB
		if i&3 == 3 {
			addr = (i * 4096) & (1<<24 - 1) // page-hopping store
		}
		if i&1 == 0 {
			m.Store(addr, i)
		} else {
			sum += m.Load(addr)
		}
	}
	_ = sum
	return n, nil
}

// benchInterpRun runs the functional machine over a full workload with the
// real two-level probe attached — the untimed hot loop shared by both
// timing cores.
func benchInterpRun() (uint64, error) {
	bm, ok := workload.ByName("espresso")
	if !ok {
		return 0, fmt.Errorf("unknown benchmark espresso")
	}
	prog, err := workload.Build(bm, workload.NewPlanNone(), 1)
	if err != nil {
		return 0, err
	}
	hier, err := mem.NewHierarchy(mem.HierConfig{
		L1: mem.CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
		L2: mem.CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Assoc: 2},
	})
	if err != nil {
		return 0, err
	}
	m := interp.New(prog, interp.ModeOff, hier.ProbeData)
	if err := m.Run(100_000_000); err != nil {
		return 0, err
	}
	return m.Seq, nil
}

// withObs applies the session's observability (if any) to a cell config,
// so the enabled-path cost shows up in the measured ns/inst.
func withObs(cfg core.Config) core.Config {
	cfg = cfg.WithObs(sess.Sim)
	if tr := sess.Trace(); tr != nil {
		cfg = cfg.WithTrace(tr).WithTraceEvery(sess.TraceEvery())
	}
	return cfg
}

// benchCell runs one full timing cell and reports dynamic instructions.
func benchCell(cfg core.Config, bench string) (uint64, error) {
	bm, ok := workload.ByName(bench)
	if !ok {
		return 0, fmt.Errorf("unknown benchmark %s", bench)
	}
	prog, err := workload.Build(bm, workload.NewPlanSingle(1), 1)
	if err != nil {
		return 0, err
	}
	run, err := withObs(cfg).WithMaxInsts(100_000_000).Run(prog)
	if err != nil {
		return 0, err
	}
	return run.DynInsts, nil
}

// benchFig2Cell reproduces one cell of the Figure-2 sweep: the
// uninstrumented baseline run plus the instrumented run whose overhead the
// figure normalises against it.
func benchFig2Cell() (uint64, error) {
	bm, ok := workload.ByName("compress")
	if !ok {
		return 0, fmt.Errorf("unknown benchmark compress")
	}
	base, err := workload.Build(bm, workload.NewPlanNone(), 1)
	if err != nil {
		return 0, err
	}
	inst, err := workload.Build(bm, workload.NewPlanSingle(1), 1)
	if err != nil {
		return 0, err
	}
	r1, err := withObs(core.R10000(core.Off)).WithMaxInsts(100_000_000).Run(base)
	if err != nil {
		return 0, err
	}
	r2, err := withObs(core.R10000(core.TrapBranch)).WithMaxInsts(100_000_000).Run(inst)
	if err != nil {
		return 0, err
	}
	return r1.DynInsts + r2.DynInsts, nil
}
