// Command informd serves the paper's simulations over HTTP: a
// long-running daemon that validates, batches and caches simulation
// requests (see internal/serve and EXPERIMENTS.md "Simulation as a
// service").
//
//	informd -listen 127.0.0.1:8372
//
// Endpoints:
//
//	POST /v1/simulate     batch of cells: handler-overhead cells, Figure 4
//	                      coherence points, or assembler programs
//	POST /v1/experiment   a named §4.2 experiment (fig2, fig3, h100,
//	                      condcode, sampling, counters) or a custom
//	                      benchmarks × plans grid; returns the CLI tables
//	GET  /metrics         serve_* and sim_* metrics (internal/obs registry)
//	GET  /healthz         liveness, code version, cache occupancy
//
// Identical requests are served from a fingerprint-keyed LRU cache;
// distinct concurrent requests are batched onto one worker pool. When the
// bounded queue fills, POST /v1/simulate responds 429 (backpressure) —
// clients should retry after a short delay. SIGINT/SIGTERM drains
// gracefully: new work is rejected with 503, in-flight simulations finish
// (up to -drain-timeout, then their run governors abort them).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"informing/internal/govern"
	"informing/internal/serve"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8372", "listen address (\":0\" picks an ephemeral port)")
		jobs         = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count")
		queueSize    = flag.Int("queue", 0, "bounded queue size; overflow returns 429 (0 = default 256)")
		maxBatch     = flag.Int("max-batch", 0, "max cells per dispatcher batch (0 = default 32)")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = default 4096)")
		maxCells     = flag.Int("max-cells", 0, "max cells per /v1/simulate request (0 = default 64)")
		maxExpCells  = flag.Int("max-exp-cells", 0, "max grid cells per /v1/experiment request (0 = default 1024)")
		maxInstsCap  = flag.Uint64("maxinsts-cap", 0, "reject requests budgeted above this (0 = 1e9)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget before in-flight runs are aborted")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:            *jobs,
		QueueSize:          *queueSize,
		MaxBatch:           *maxBatch,
		CacheEntries:       *cacheSize,
		MaxCellsPerRequest: *maxCells,
		MaxExperimentCells: *maxExpCells,
		MaxInstsCap:        *maxInstsCap,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "informd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	// The listening line goes to stdout (and is the last thing printed
	// before serving) so scripts and the smoke test can scrape the bound
	// address when ":0" picked an ephemeral port.
	fmt.Printf("informd: listening on http://%s (workers=%d, code=%s)\n",
		ln.Addr(), *jobs, serve.CodeVersion)

	ctx, stopSignals := govern.SignalContext(nil)
	defer stopSignals()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "informd: %v\n", err)
		srv.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: reject new simulation work, let the HTTP layer
	// finish in-flight requests within the budget, then abort whatever is
	// left through the run governors.
	fmt.Println("informd: draining (signal received)")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "informd: shutdown: %v\n", err)
	}
	srv.Close()
	fmt.Println("informd: stopped")
}
