// Command informd serves the paper's simulations over HTTP: a
// long-running daemon that validates, batches and caches simulation
// requests (see internal/serve and EXPERIMENTS.md "Simulation as a
// service").
//
//	informd -listen 127.0.0.1:8372
//
// Endpoints:
//
//	POST /v1/simulate     batch of cells: handler-overhead cells, Figure 4
//	                      coherence points, or assembler programs; cells
//	                      accept a "policy" field selecting the replacement
//	                      policy (lru, srrip, brrip, trrip)
//	POST /v1/explain      the same cells, answered with the per-level miss
//	                      taxonomy (compulsory/capacity/conflict/coherence
//	                      counts and fractions) instead of timing
//	POST /v1/experiment   a named §4.2 experiment (fig2, fig3, h100,
//	                      condcode, sampling, counters, prefetch) or a
//	                      custom benchmarks × plans grid; returns the CLI
//	                      tables
//	GET  /metrics         serve_* and sim_* metrics (internal/obs registry)
//	GET  /healthz         liveness, code version, cache/store state
//	GET  /readyz          readiness (store recovered, dispatcher running)
//
// Identical requests are served from a fingerprint-keyed LRU cache, backed
// by an optional durable on-disk store (-store-dir) so a restarted daemon
// starts warm; distinct concurrent requests are batched onto one worker
// pool. Requests may carry an API key (X-API-Key or Authorization: Bearer)
// mapped to a tenant by -tenants-file for per-tenant rate limits and
// weighted-fair scheduling. When the bounded queue fills, POST /v1/simulate
// responds 429 (backpressure) with a computed Retry-After. SIGINT/SIGTERM
// drains gracefully: new work is rejected with 503, in-flight simulations
// finish (up to -drain-timeout, then their run governors abort them).
//
// With -self and -peers the daemon joins a static cluster: request
// fingerprints are rendezvous-hashed to an owner node and non-owned
// requests are forwarded there, making the cache and single-flight
// cluster-wide (README "Operating an informd cluster", DESIGN.md §15).
// Cluster mode requires a shared secret (-cluster-secret or the
// INFORMD_CLUSTER_SECRET env var): forwarded peer hops skip API-key
// auth and tenant admission — both already performed at the ingress
// node — so every hop must prove it comes from a cluster member, and a
// node refuses forged forwarded headers (403) without it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"informing/internal/cluster"
	"informing/internal/govern"
	"informing/internal/serve"
	"informing/internal/store"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8372", "listen address (\":0\" picks an ephemeral port)")
		jobs         = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count")
		queueSize    = flag.Int("queue", 0, "bounded queue size; overflow returns 429 (0 = default 256)")
		maxBatch     = flag.Int("max-batch", 0, "max cells per dispatcher batch (0 = default 32)")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = default 4096)")
		maxCells     = flag.Int("max-cells", 0, "max cells per /v1/simulate request (0 = default 64)")
		maxExpCells  = flag.Int("max-exp-cells", 0, "max grid cells per /v1/experiment request (0 = default 1024)")
		maxInstsCap  = flag.Uint64("maxinsts-cap", 0, "reject requests budgeted above this (0 = 1e9)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget before in-flight runs are aborted")
		storeDir     = flag.String("store-dir", "", "durable result store directory (empty = RAM-only)")
		storeMax     = flag.Int64("store-max-bytes", 0, "durable store size bound in bytes (0 = default 256 MiB)")
		tenantsFile  = flag.String("tenants-file", "", "JSON tenant keyfile for per-tenant admission control (empty = anonymous only, unlimited)")
		selfURL      = flag.String("self", "", "this node's base URL as peers reach it (cluster mode; must appear in -peers)")
		peersList    = flag.String("peers", "", "comma-separated base URLs of every cluster node, this one included (empty = single node)")
		clusterKey   = flag.String("cluster-secret", "", "shared secret authenticating forwarded peer hops (cluster mode; prefer the INFORMD_CLUSTER_SECRET env var to keep it out of process listings)")
		fwdTimeout   = flag.Duration("forward-timeout", 0, "bound on one forwarded peer request, handshake included (0 = default 120s)")
		peerConns    = flag.Int("peer-conns", 0, "max pooled connections per peer (0 = default 8)")
	)
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, Version: serve.CodeVersion, MaxBytes: *storeMax})
		if err != nil {
			fmt.Fprintf(os.Stderr, "informd: store: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("informd: store open at %s (%d entries, %d bytes)\n", *storeDir, st.Len(), st.Bytes())
	}

	var tenants *serve.TenantSet
	if *tenantsFile != "" {
		var err error
		tenants, err = serve.LoadTenantsFile(*tenantsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "informd: %v\n", err)
			os.Exit(1)
		}
	}

	var cl *cluster.Cluster
	if *peersList != "" {
		if *selfURL == "" {
			fmt.Fprintln(os.Stderr, "informd: -peers requires -self (this node's URL as peers reach it)")
			os.Exit(1)
		}
		secret := *clusterKey
		if secret == "" {
			secret = os.Getenv("INFORMD_CLUSTER_SECRET")
		}
		peers := strings.Split(*peersList, ",")
		if len(peers) > 1 && secret == "" {
			fmt.Fprintln(os.Stderr, "informd: cluster mode requires a shared secret (-cluster-secret or INFORMD_CLUSTER_SECRET): forwarded peer hops bypass API-key auth and must be authenticated")
			os.Exit(1)
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:            *selfURL,
			Peers:           peers,
			Version:         serve.CodeVersion,
			Secret:          secret,
			MaxConnsPerPeer: *peerConns,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "informd: cluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("informd: cluster member %s of %d nodes\n", cl.Self(), len(cl.Peers()))
	}

	srv := serve.New(serve.Config{
		Workers:            *jobs,
		QueueSize:          *queueSize,
		MaxBatch:           *maxBatch,
		CacheEntries:       *cacheSize,
		MaxCellsPerRequest: *maxCells,
		MaxExperimentCells: *maxExpCells,
		MaxInstsCap:        *maxInstsCap,
		Cluster:            cl,
		ForwardTimeout:     *fwdTimeout,
		Store:              st,
		Tenants:            tenants,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "informd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	// The listening line goes to stdout (and is the last thing printed
	// before serving) so scripts and the smoke test can scrape the bound
	// address when ":0" picked an ephemeral port.
	fmt.Printf("informd: listening on http://%s (workers=%d, code=%s)\n",
		ln.Addr(), *jobs, serve.CodeVersion)

	ctx, stopSignals := govern.SignalContext(nil)
	defer stopSignals()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "informd: %v\n", err)
		srv.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: reject new simulation work, let the HTTP layer
	// finish in-flight requests within the budget, then abort whatever is
	// left through the run governors.
	fmt.Println("informd: draining (signal received)")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "informd: shutdown: %v\n", err)
	}
	srv.Close()
	fmt.Println("informd: stopped")
}
