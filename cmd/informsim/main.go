// Command informsim assembles and runs a program on either of the paper's
// machine models with any informing scheme:
//
//	informsim -machine ooo -scheme trap-branch prog.s
//	informsim -machine inorder -scheme condcode -dis prog.s
//
// The assembler syntax is documented in internal/asm (see Assemble).
// Statistics — cycles, IPC, the graduation-slot breakdown, miss and trap
// counts — are printed on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"informing/internal/asm"
	"informing/internal/core"
	"informing/internal/govern"
	"informing/internal/obs"
	"informing/internal/stats"
)

// sess is the observability session; fail routes through it so error exits
// still flush the trace sink and print collected metrics.
var sess *obs.Session

func main() {
	var (
		machine = flag.String("machine", "ooo", "machine model: ooo|inorder")
		scheme  = flag.String("scheme", "off", "informing scheme: off|condcode|trap-branch|trap-exception")
		policy  = flag.String("policy", "", "data-hierarchy replacement policy: lru|srrip|brrip|trrip (empty = lru)")
		maxInst = flag.Uint64("maxinsts", 100_000_000, "dynamic instruction limit")
		dis     = flag.Bool("dis", false, "print the disassembled program before running")
		dump    = flag.Bool("dump", false, "print round-trippable assembler text and exit")
		trace   = flag.Int("trace", 0, "print pipeline timing for the first N instructions")
		statsTo = flag.String("stats-out", "", "write the run statistics as JSON to this file (tracereplay -expect consumes it)")
	)
	of := obs.RegisterFlags()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: informsim [flags] prog.s")
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if sess, err = of.Start(os.Stderr); err != nil {
		fail(err)
	}
	defer sess.Close()

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fail(fmt.Errorf("assemble %s: %w", flag.Arg(0), err))
	}
	if *dump {
		fmt.Print(asm.Disassemble(prog))
		return
	}
	if *dis {
		for k, in := range prog.Text {
			fmt.Printf("%#08x:  %v\n", prog.PCOf(k), in)
		}
		fmt.Println()
	}

	var s core.Scheme
	switch *scheme {
	case "off":
		s = core.Off
	case "condcode":
		s = core.CondCode
	case "trap-branch":
		s = core.TrapBranch
	case "trap-exception":
		s = core.TrapException
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}

	var cfg core.Config
	switch *machine {
	case "ooo":
		cfg = core.R10000(s)
	case "inorder":
		cfg = core.Alpha21164(s)
	default:
		fail(fmt.Errorf("unknown machine %q", *machine))
	}

	cfg = cfg.WithPolicy(*policy).WithMaxInsts(*maxInst).WithObs(sess.Sim)
	var printTrace func(stats.TraceEvent)
	if *trace > 0 {
		n := 0
		fmt.Printf("%-6s %-10s %-8s %-8s %-8s %-8s %-5s %s\n",
			"seq", "pc", "fetch", "issue", "compl", "grad", "mem", "instruction")
		printTrace = func(ev stats.TraceEvent) {
			if n >= *trace {
				return
			}
			n++
			lvl := "-"
			if ev.MemLevel > 0 {
				lvl = fmt.Sprintf("L%d", ev.MemLevel)
				if ev.MemLevel == 3 {
					lvl = "mem"
				}
			}
			mark := ""
			if ev.Trap {
				mark = "  <trap>"
			}
			fmt.Printf("%-6d %-#10x %-8d %-8d %-8d %-8d %-5s %s%s\n",
				ev.Seq, ev.PC, ev.Fetch, ev.Issue, ev.Complete, ev.Graduate, lvl, ev.Disasm, mark)
		}
	}
	// Compose the human-readable -trace printer with the session's JSONL
	// sink; when -trace-out is active its -trace-sample interval applies to
	// both consumers (sampling happens at the source, in the engine).
	switch sink := sess.Trace(); {
	case printTrace != nil && sink != nil:
		cfg = cfg.WithTrace(func(ev stats.TraceEvent) { printTrace(ev); sink(ev) }).
			WithTraceEvery(sess.TraceEvery())
	case sink != nil:
		cfg = cfg.WithTrace(sink).WithTraceEvery(sess.TraceEvery())
	case printTrace != nil:
		cfg = cfg.WithTrace(printTrace)
	}
	// Ctrl-C (or SIGTERM) cancels the simulation at the next governor
	// poll; the partial statistics accumulated so far are still printed.
	ctx, stop := govern.SignalContext(nil)
	defer stop()
	cfg = cfg.WithContext(ctx)

	run, err := cfg.Run(prog)
	if *trace > 0 {
		fmt.Println()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "informsim: %v\n", err)
		if snap, ok := govern.SnapshotIn(err); ok {
			fmt.Fprintf(os.Stderr, "informsim: aborted at %v\n", snap)
			fmt.Println("--- partial report (run aborted) ---")
			report(cfg, snap.Partial)
		}
		// Aborts must still flush the partial JSONL trace and report the
		// metrics collected so far.
		sess.CloseThenExit(1)
	}
	if *statsTo != "" {
		if err := writeStats(*statsTo, run); err != nil {
			fail(err)
		}
	}
	report(cfg, run)
}

// writeStats dumps the run counters as JSON. Every field of stats.Run is
// integral, so the file round-trips exactly — cmd/tracereplay's -expect
// reconciliation depends on that.
func writeStats(path string, run stats.Run) error {
	b, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func report(cfg core.Config, run stats.Run) {
	busy, other, cache := run.Fractions()
	fmt.Printf("machine:            %v (%v scheme)\n", cfg.Machine, cfg.Scheme)
	fmt.Printf("cycles:             %d\n", run.Cycles)
	fmt.Printf("instructions:       %d (IPC %.2f)\n", run.Instrs, run.IPC())
	fmt.Printf("memory references:  %d (L1 miss %.2f%%, L2 miss %d)\n",
		run.MemRefs, 100*run.L1MissRate(), run.L2Misses)
	fmt.Printf("L1 miss taxonomy:   %v\n", run.L1Tax)
	fmt.Printf("L2 miss taxonomy:   %v\n", run.L2Tax)
	fmt.Printf("icache misses:      %d\n", run.IMisses)
	fmt.Printf("informing traps:    %d (handler instructions %d)\n", run.Traps, run.HandlerInsts)
	fmt.Printf("bmiss taken:        %d\n", run.BmissTaken)
	fmt.Printf("branch accuracy:    %.2f%% (%d lookups)\n",
		100*(1-safeDiv(run.BranchMispredicts, run.BranchLookups)), run.BranchLookups)
	fmt.Printf("graduation slots:   busy %.1f%%  other %.1f%%  cache %.1f%%\n",
		100*busy, 100*other, 100*cache)
	fmt.Printf("MSHR:               peak %d, merges %d, full stalls %d\n",
		run.MSHRPeak, run.MSHRMerges, run.MSHRFullStalls)
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "informsim: %v\n", err)
	if sess != nil {
		sess.CloseThenExit(1)
	}
	os.Exit(1)
}
