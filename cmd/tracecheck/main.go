// Command tracecheck validates a JSONL pipeline trace produced with
// -trace-out (see internal/obs and the EXPERIMENTS.md observability
// section): every line must parse against the stable schema, carry the
// required fields, and respect the per-instruction stage ordering
// fetch ≤ issue ≤ complete. It is the CI gate for the trace format —
// partial traces flushed by aborted runs must pass it too.
//
//	tracecheck trace.jsonl        validate a file
//	tracecheck -                  validate stdin
//
// Exit status 0 with a one-line summary when the trace is valid; 1 with
// the offending line otherwise. Sequence numbers may reset mid-file:
// experiment sweeps concatenate the traces of many independent runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// traceLine mirrors the JSONL schema written by obs.JSONLSink. Pointer
// fields distinguish "absent" from zero so required-field checks work.
type traceLine struct {
	Seq      *uint64 `json:"seq"`
	PC       *string `json:"pc"`
	Disasm   *string `json:"disasm"`
	Fetch    *int64  `json:"fetch"`
	Issue    *int64  `json:"issue"`
	Complete *int64  `json:"complete"`
	Graduate *int64  `json:"graduate"`
	Level    *int    `json:"level"`
	Trap     *bool   `json:"trap"`
}

func main() {
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-q] trace.jsonl|-")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}

	lines, traps, err := validate(in)
	if err != nil {
		fail("%s: %v", name, err)
	}
	if !*quiet {
		fmt.Printf("tracecheck: %s: %d events ok (%d traps)\n", name, lines, traps)
	}
}

// validate checks every line of the trace, returning the event and trap
// counts or the first violation found.
func validate(in io.Reader) (lines, traps uint64, err error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return lines, traps, fmt.Errorf("line %d: empty line", n)
		}
		dec := json.NewDecoder(strings.NewReader(sc.Text()))
		dec.DisallowUnknownFields()
		var ev traceLine
		if err := dec.Decode(&ev); err != nil {
			return lines, traps, fmt.Errorf("line %d: %v", n, err)
		}
		switch {
		case ev.Seq == nil, ev.PC == nil, ev.Disasm == nil, ev.Fetch == nil,
			ev.Issue == nil, ev.Complete == nil, ev.Graduate == nil,
			ev.Level == nil, ev.Trap == nil:
			return lines, traps, fmt.Errorf("line %d: missing required field", n)
		case !strings.HasPrefix(*ev.PC, "0x"):
			return lines, traps, fmt.Errorf("line %d: pc %q not hexadecimal", n, *ev.PC)
		case *ev.Disasm == "":
			return lines, traps, fmt.Errorf("line %d: empty disasm", n)
		case *ev.Level < 0 || *ev.Level > 3:
			return lines, traps, fmt.Errorf("line %d: memory level %d out of range", n, *ev.Level)
		case *ev.Issue < *ev.Fetch:
			return lines, traps, fmt.Errorf("line %d: issued (%d) before fetch (%d)", n, *ev.Issue, *ev.Fetch)
		case *ev.Complete < *ev.Issue:
			return lines, traps, fmt.Errorf("line %d: completed (%d) before issue (%d)", n, *ev.Complete, *ev.Issue)
		case *ev.Trap && *ev.Level <= 1:
			return lines, traps, fmt.Errorf("line %d: trap on level %d (traps require a miss)", n, *ev.Level)
		}
		lines++
		if *ev.Trap {
			traps++
		}
	}
	if err := sc.Err(); err != nil {
		return lines, traps, err
	}
	return lines, traps, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
