// Command tracecheck validates a JSONL pipeline trace produced with
// -trace-out (see internal/obs and the EXPERIMENTS.md observability
// section): every line must parse against the stable schema, carry the
// required fields, and respect the per-instruction stage ordering
// fetch ≤ issue ≤ complete ≤ graduate. It is the CI gate for the trace
// format — partial traces flushed by aborted runs must pass it too.
//
//	tracecheck trace.jsonl        validate a file
//	tracecheck -                  validate stdin
//
// Exit status 0 with a one-line summary when the trace is valid; 1 with
// the offending line otherwise. Sequence numbers may reset mid-file
// (experiment sweeps concatenate the traces of many independent runs)
// and sampled (-trace-sample N) traces are fine here: seq continuity is
// a replay-time concern (internal/trace.Reader), not a format one.
//
// Validation is the shared internal/trace line parser — strict,
// allocation-free, and differentially pinned against encoding/json — so
// multi-GB traces validate without per-line garbage. Schema-v2 traces
// (addr/kind/tid on memory events) and v1 traces both pass.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"informing/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-q] trace.jsonl|-")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}

	lines, traps, err := validate(in)
	if err != nil {
		fail("%s: %v", name, err)
	}
	if !*quiet {
		fmt.Printf("tracecheck: %s: %d events ok (%d traps)\n", name, lines, traps)
	}
}

// validate checks every line of the trace, returning the event and trap
// counts or the first violation found. One scanner buffer and one Event
// are reused across all lines (the historical implementation built a
// fresh json.Decoder per line and converted every line to a string
// twice; TestValidateAllocationBounded pins the fix).
func validate(in io.Reader) (lines, traps uint64, err error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var ev trace.Event
	n := 0
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return lines, traps, fmt.Errorf("line %d: empty line", n)
		}
		if err := trace.ParseLine(raw, &ev); err != nil {
			return lines, traps, fmt.Errorf("line %d: %v", n, err)
		}
		if err := ev.Validate(); err != nil {
			return lines, traps, fmt.Errorf("line %d: %v", n, err)
		}
		lines++
		if ev.Trap {
			traps++
		}
	}
	if err := sc.Err(); err != nil {
		return lines, traps, err
	}
	return lines, traps, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
