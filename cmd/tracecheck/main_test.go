package main

import (
	"strings"
	"testing"
)

const goodLine = `{"seq":1,"pc":"0x1000","disasm":"ld r1, 0(r2)","fetch":0,"issue":1,"complete":3,"graduate":4,"level":1,"trap":false}`

func TestValidateAccepts(t *testing.T) {
	in := goodLine + "\n" +
		`{"seq":2,"pc":"0x1004","disasm":"add r1, r1, r2","fetch":1,"issue":2,"complete":3,"graduate":5,"level":0,"trap":false}` + "\n" +
		`{"seq":1,"pc":"0x1000","disasm":"ld r1, 0(r2)","fetch":0,"issue":1,"complete":60,"graduate":61,"level":3,"trap":true}` + "\n"
	lines, traps, err := validate(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Seq resets between runs are fine (concatenated sweep traces).
	if lines != 3 || traps != 1 {
		t.Errorf("(lines, traps) = (%d, %d), want (3, 1)", lines, traps)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"torn line":       goodLine[:40],
		"missing field":   `{"seq":1,"pc":"0x1000","disasm":"nop","fetch":0,"issue":1,"complete":2,"graduate":3,"level":0}`,
		"unknown field":   strings.Replace(goodLine, `"seq"`, `"sequence"`, 1),
		"non-hex pc":      strings.Replace(goodLine, `"0x1000"`, `"4096"`, 1),
		"empty disasm":    strings.Replace(goodLine, `"ld r1, 0(r2)"`, `""`, 1),
		"bad level":       strings.Replace(goodLine, `"level":1`, `"level":7`, 1),
		"issue<fetch":     strings.Replace(goodLine, `"fetch":0`, `"fetch":2`, 1),
		"complete<issue":  strings.Replace(goodLine, `"complete":3`, `"complete":0`, 1),
		"trap on L1 hit":  strings.Replace(goodLine, `"trap":false`, `"trap":true`, 1),
		"empty mid-trace": goodLine + "\n\n" + goodLine,
	}
	for name, in := range cases {
		if _, _, err := validate(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
