package main

import (
	"strings"
	"testing"
)

const goodLine = `{"seq":1,"pc":"0x1000","disasm":"ld r1, 0(r2)","fetch":0,"issue":1,"complete":3,"graduate":4,"level":1,"trap":false}`

// A schema-v2 line: memory events may carry addr/kind (and tid on
// multiprocessor traces).
const goodV2Line = `{"seq":2,"pc":"0x1004","disasm":"st r3, 8(r4)","fetch":1,"issue":2,"complete":5,"graduate":6,"level":2,"addr":"0x20c0","kind":"store","tid":1,"trap":false}`

func TestValidateAccepts(t *testing.T) {
	in := goodLine + "\n" +
		`{"seq":2,"pc":"0x1004","disasm":"add r1, r1, r2","fetch":1,"issue":2,"complete":3,"graduate":5,"level":0,"trap":false}` + "\n" +
		`{"seq":1,"pc":"0x1000","disasm":"ld r1, 0(r2)","fetch":0,"issue":1,"complete":60,"graduate":61,"level":3,"trap":true}` + "\n" +
		goodV2Line + "\n"
	lines, traps, err := validate(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Seq resets between runs are fine (concatenated sweep traces).
	if lines != 4 || traps != 1 {
		t.Errorf("(lines, traps) = (%d, %d), want (4, 1)", lines, traps)
	}
}

// Sampled traces (seq gaps from -trace-sample N) are valid at the format
// level — ci.yml checks a 1-in-64 trace. Refusing them is the replayer's
// job, not tracecheck's.
func TestValidateAcceptsSampledTrace(t *testing.T) {
	in := strings.Replace(goodLine, `"seq":1`, `"seq":63`, 1) + "\n" +
		strings.Replace(goodLine, `"seq":1`, `"seq":127`, 1) + "\n"
	lines, _, err := validate(strings.NewReader(in))
	if err != nil || lines != 2 {
		t.Errorf("sampled trace rejected: lines=%d err=%v", lines, err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"torn line":       goodLine[:40],
		"missing field":   `{"seq":1,"pc":"0x1000","disasm":"nop","fetch":0,"issue":1,"complete":2,"graduate":3,"level":0}`,
		"unknown field":   strings.Replace(goodLine, `"seq"`, `"sequence"`, 1),
		"non-hex pc":      strings.Replace(goodLine, `"0x1000"`, `"4096"`, 1),
		"empty disasm":    strings.Replace(goodLine, `"ld r1, 0(r2)"`, `""`, 1),
		"bad level":       strings.Replace(goodLine, `"level":1`, `"level":7`, 1),
		"issue<fetch":     strings.Replace(goodLine, `"fetch":0`, `"fetch":2`, 1),
		"complete<issue":  strings.Replace(goodLine, `"complete":3`, `"complete":0`, 1),
		"trap on L1 hit":  strings.Replace(goodLine, `"trap":false`, `"trap":true`, 1),
		"empty mid-trace": goodLine + "\n\n" + goodLine,

		// The satellite bugfix: graduate < complete used to pass silently.
		// Both cores graduate strictly after completion and never emit a
		// zero sentinel, so these are always corruption.
		"graduate<complete": strings.Replace(goodLine, `"graduate":4`, `"graduate":2`, 1),
		"graduate zero":     strings.Replace(goodLine, `"graduate":4`, `"graduate":0`, 1),

		// Schema-v2 pairing violations.
		"addr without kind":  strings.Replace(goodV2Line, `,"kind":"store"`, ``, 1),
		"kind without addr":  strings.Replace(goodV2Line, `,"addr":"0x20c0"`, ``, 1),
		"bad kind":           strings.Replace(goodV2Line, `"store"`, `"move"`, 1),
		"non-hex addr":       strings.Replace(goodV2Line, `"0x20c0"`, `"8384"`, 1),
		"addr on non-memory": strings.Replace(goodV2Line, `"level":2`, `"level":0`, 1),
	}
	for name, in := range cases {
		if _, _, err := validate(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// The graduate check must point at the offending line, not just fail.
func TestValidateReportsLineNumber(t *testing.T) {
	in := goodLine + "\n" + strings.Replace(goodLine, `"graduate":4`, `"graduate":1`, 1) + "\n"
	_, _, err := validate(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want a line-2 graduate violation", err)
	}
}

// TestValidateAllocationBounded pins the satellite allocation fix: the
// old validate built a string and a json.Decoder per line (5+ allocations
// each); the shared trace.ParseLine path reuses one buffer and one Event,
// so validating N lines costs O(1) allocations, not O(N).
func TestValidateAllocationBounded(t *testing.T) {
	var sb strings.Builder
	const n = 10000
	for i := 0; i < n; i++ {
		sb.WriteString(goodV2Line)
		sb.WriteByte('\n')
	}
	in := sb.String()
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := validate(strings.NewReader(in)); err != nil {
			t.Fatal(err)
		}
	})
	// One scanner buffer plus a handful of fixed allocations. The old
	// implementation measured ~6 allocations per line (~60000 here).
	if allocs > 20 {
		t.Errorf("validate(%d lines) = %v allocations; per-line allocation is back", n, allocs)
	}
}
