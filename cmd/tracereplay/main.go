// Command tracereplay replays a recorded schema-v2 JSONL pipeline trace
// (informsim -trace-out, or GET from a served batch) through the cache
// hierarchy of either machine model — no ISA program, no timing cores;
// just the memory behavior the trace carries (DESIGN.md §16):
//
//	tracereplay trace.jsonl                    replay through the ooo geometry
//	tracereplay -machine inorder trace.jsonl   ... the in-order geometry
//	tracereplay -expect stats.json trace.jsonl closed-loop reconciliation
//	tracereplay -sweep -j 4 trace.jsonl        cache-geometry sensitivity sweep
//
// With -expect, the replayed per-level reference and miss counters must
// match the recording run's statistics (informsim -stats-out) exactly;
// any delta exits non-zero — this is the trace-integrity gate CI's
// trace-smoke lane runs. With -sweep, the trace is loaded once and
// replayed through the default geometry variants (internal/experiments
// TraceGeometries) on a -j worker pool.
//
// Sampled traces (-trace-sample N recordings) are refused unless
// -allow-sampled is given: a gapped trace cannot reconcile and silently
// under-counts misses. Concatenated traces replay as independent
// segments, each from cold caches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"informing/internal/core"
	"informing/internal/experiments"
	"informing/internal/govern"
	"informing/internal/sched"
	"informing/internal/stats"
	"informing/internal/trace"
)

func main() {
	var (
		machine      = flag.String("machine", "ooo", "replay geometry: ooo|inorder (the recording machine)")
		allowSampled = flag.Bool("allow-sampled", false, "admit traces with seq gaps (no exact reconciliation)")
		expect       = flag.String("expect", "", "stats.Run JSON (informsim -stats-out) to reconcile against; any delta exits 1")
		maxRefs      = flag.Uint64("maxrefs", 0, "memory-reference budget (0 = unlimited)")
		sweep        = flag.Bool("sweep", false, "replay through the default cache-geometry sweep instead of one geometry")
		workers      = flag.Int("j", 1, "sweep worker count (<= 0 selects GOMAXPROCS)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracereplay [flags] trace.jsonl|-")
		flag.Usage()
		os.Exit(2)
	}

	var cfg core.Config
	switch *machine {
	case "ooo":
		cfg = core.R10000(core.Off)
	case "inorder":
		cfg = core.Alpha21164(core.Off)
	default:
		fail(fmt.Errorf("unknown machine %q (want ooo or inorder)", *machine))
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}

	ctx, stop := govern.SignalContext(nil)
	defer stop()
	rcfg := trace.ReaderConfig{AllowSampled: *allowSampled}

	if *sweep {
		d, err := trace.Load(in, rcfg)
		if err != nil {
			fail(err)
		}
		res, err := experiments.TraceSweep(d, experiments.TraceGeometries(cfg.HierConfig()),
			experiments.Options{Ctx: ctx, Workers: sched.Workers(*workers)})
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatTraceSweep(fmt.Sprintf("trace sweep: %s (%s base geometry)", name, *machine), res))
		return
	}

	res, err := trace.Replay(in, trace.ReplayConfig{
		Hier: cfg.HierConfig(), Reader: rcfg, Ctx: ctx, MaxRefs: *maxRefs,
	})
	if err != nil {
		fail(err)
	}
	report(name, *machine, res)

	if *expect != "" {
		b, err := os.ReadFile(*expect)
		if err != nil {
			fail(err)
		}
		var run stats.Run
		if err := json.Unmarshal(b, &run); err != nil {
			fail(fmt.Errorf("%s: %w", *expect, err))
		}
		if err := res.Reconcile(run); err != nil {
			fail(err)
		}
		fmt.Printf("reconciled exactly against %s\n", *expect)
	}
}

func report(name, machine string, res *trace.ReplayResult) {
	t := res.Total
	fmt.Printf("trace:              %s (%s geometry, %d segment(s))\n", name, machine, len(res.Segments))
	fmt.Printf("events:             %d\n", t.Events)
	fmt.Printf("memory references:  %d (%d loads, %d stores)\n", t.Refs, t.Loads, t.Stores)
	fmt.Printf("L1 misses:          %d", t.L1Misses)
	if t.Refs > 0 {
		fmt.Printf(" (%.2f%%)", 100*float64(t.L1Misses)/float64(t.Refs))
	}
	fmt.Println()
	fmt.Printf("L2 misses:          %d\n", t.L2Misses)
	fmt.Printf("level mismatches:   %d\n", t.LevelMismatches)
	if t.Tids > 1 || t.Invalidations > 0 {
		fmt.Printf("threads:            %d (%d coherence invalidations)\n", t.Tids, t.Invalidations)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracereplay: %v\n", err)
	os.Exit(1)
}
