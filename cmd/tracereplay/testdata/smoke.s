# Trace-smoke workload: two strided passes over a 16 KB buffer with
# informing loads and a counting miss handler, plus a store pass. Small
# enough that recording a full (-trace-sample 1) trace takes well under a
# second, but misses in both L1 and L2 so the closed-loop reconciliation
# (tracereplay -expect) checks every counter the replay derives.

.data buf 16384

	j start

handler:
	addi r20, r20, 1
	rfmh

start:
	mtmhar handler
	la r1, buf

# Pass 1: load every word.
	li r2, 2048
	la r3, buf
loop1:
	ld.i r4, 0(r3)
	add r5, r5, r4
	addi r3, r3, 8
	addi r2, r2, -1
	bne r2, r0, loop1

# Pass 2: store every other word (write hits and misses).
	li r2, 1024
	la r3, buf
loop2:
	st.i r5, 0(r3)
	addi r3, r3, 16
	addi r2, r2, -1
	bne r2, r0, loop2

# Pass 3: reload every fourth word, prefetching one line ahead.
	li r2, 512
	la r3, buf
loop3:
	prefetch 64(r3)
	ld.i r4, 0(r3)
	addi r3, r3, 32
	addi r2, r2, -1
	bne r2, r0, loop3

	mfcnt r21
	halt
