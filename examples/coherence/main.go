// Coherence is a compact version of the paper's §4.3 case study: enforcing
// cache coherence with fine-grained access control on a small simulated
// multiprocessor, comparing per-reference checking (Blizzard-S-like), ECC
// faults (Blizzard-E-like) and informing memory operations.
//
// It runs the migratory "water" workload on four processors and shows how
// each scheme's detection cost composes with the shared protocol cost, and
// how the informing scheme's advantage grows with the primary cache size
// (the trend the paper reports in §4.3.2).
//
//	go run ./examples/coherence
package main

import (
	"fmt"
	"log"

	"informing/internal/coherence"
	"informing/internal/multi"
)

func main() {
	cfg := multi.DefaultConfig()
	cfg.Processors = 4
	app := coherence.Water(cfg.Processors)

	fmt.Printf("water on %d processors (migratory sharing):\n\n", cfg.Processors)
	fmt.Printf("%-20s %-12s %-12s %-12s %-10s\n",
		"scheme", "cycles", "detect", "protocol", "actions")
	var informingCycles int64
	for _, pol := range coherence.Schemes() {
		r, err := multi.Simulate(app, pol, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if pol.Name() == "informing" {
			informingCycles = r.Cycles
		}
		fmt.Printf("%-20s %-12d %-12d %-12d %-10d\n",
			pol.Name(), r.Cycles, r.DetectCycles, r.ProtocolCycles, r.CoherenceActions)
	}
	if informingCycles == 0 {
		log.Fatal("informing scheme missing")
	}

	fmt.Println("\nsensitivity: informing's edge vs reference-checking as the L1 grows")
	fmt.Println("(paper §4.3.2: larger primary caches improve the informing scheme's relative performance)")
	for _, kb := range []int{4, 16, 64} {
		c := cfg
		c.L1.SizeBytes = kb << 10
		var ref, inf int64
		for _, pol := range coherence.Schemes() {
			r, err := multi.Simulate(app, pol, c)
			if err != nil {
				log.Fatal(err)
			}
			switch pol.Name() {
			case "reference-checking":
				ref = r.Cycles
			case "informing":
				inf = r.Cycles
			}
		}
		fmt.Printf("  L1 %3d KB: reference-checking/informing = %.3f\n",
			kb, float64(ref)/float64(inf))
	}
}
