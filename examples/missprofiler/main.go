// Missprofiler reproduces the paper's §4.1.1 performance-monitoring tool:
// a single ~10-instruction miss handler that uses the branch-and-link
// return address (read from the MHRR) to index a hash table in the
// program's own memory, giving precise per-static-reference miss counts
// with no external instrumentation.
//
// The profiled kernel has three reference sites with very different
// behaviour — a streaming sweep, a cache-resident table, and a
// pointer-chase — and the tool's output separates them cleanly.
//
//	go run ./examples/missprofiler
package main

import (
	"fmt"
	"log"

	"informing/internal/asm"
	"informing/internal/core"
	"informing/internal/isa"
)

const tblEntries = 2048 // profile hash table (16 KB)

func main() {
	b := asm.NewBuilder()
	stream := b.Alloc("stream", 256<<10) // streaming: misses every line
	resident := b.Alloc("resident", 2<<10)
	nodes := 4096
	chase := b.Alloc("chase", uint64(nodes*16)) // pointer chase, 64 KB
	for i := 0; i < nodes; i++ {
		next := (5*uint64(i) + 1) % uint64(nodes)
		b.InitWord(chase+uint64(i)*16, chase+next*16)
	}
	profTbl := b.Alloc("proftbl", tblEntries*8)

	b.J("start")

	// The profiling handler (§4.1.1): hash the return address into a
	// per-site counter. Roughly ten instructions, exactly as the paper
	// describes; its own references are ordinary (non-informing) and
	// the hardware in-handler bit prevents re-entry anyway.
	b.Label("profile")
	b.Mfmhrr(isa.R23)
	b.Srli(isa.R24, isa.R23, 3)
	b.Andi(isa.R24, isa.R24, tblEntries-1)
	b.Slli(isa.R24, isa.R24, 3)
	b.LoadImm(isa.R25, int64(profTbl))
	b.Add(isa.R24, isa.R24, isa.R25)
	b.Ld(isa.R26, isa.R24, 0, false)
	b.Addi(isa.R26, isa.R26, 1)
	b.St(isa.R26, isa.R24, 0, false)
	b.Rfmh()

	b.Label("start")
	b.MtmharLabel("profile")

	// Site 1: streaming sweep (expected ~25% miss rate: one per line).
	b.LoadImm(isa.R1, int64(stream))
	b.LoadImm(isa.R2, 256<<10/8)
	b.Label("sweep")
	b.Label("site_stream")
	b.Ld(isa.R3, isa.R1, 0, true)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Addi(isa.R1, isa.R1, 8)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "sweep")

	// Site 2: resident table (expected ~0% after warmup).
	b.LoadImm(isa.R1, int64(resident))
	b.LoadImm(isa.R2, 20000)
	b.LoadImm(isa.R5, 0)
	b.Label("restbl")
	b.Add(isa.R6, isa.R1, isa.R5)
	b.Label("site_resident")
	b.Ld(isa.R3, isa.R6, 0, true)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Addi(isa.R5, isa.R5, 8)
	b.Andi(isa.R5, isa.R5, 2047)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "restbl")

	// Site 3: pointer chase (expected high miss rate, serial).
	b.LoadImm(isa.R1, int64(chase))
	b.LoadImm(isa.R2, int64(nodes))
	b.Label("chase")
	b.Label("site_chase")
	b.Ld(isa.R1, isa.R1, 0, true)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "chase")

	b.Halt()
	prog, err := b.Finish()
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}

	run, machine, err := core.R10000(core.TrapBranch).RunDetailed(prog)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	fmt.Printf("profiled run: %d cycles, %d refs, %d traps\n\n", run.Cycles, run.MemRefs, run.Traps)
	fmt.Printf("%-14s %-12s %-10s %s\n", "site", "pc", "misses", "instruction")
	var total uint64
	for _, site := range []string{"site_stream", "site_resident", "site_chase"} {
		pc := prog.Symbols[site]
		ret := pc + isa.InstBytes // the MHRR value the handler hashed
		idx := ret / isa.InstBytes % tblEntries
		count := machine.Mem.Load(profTbl + idx*8)
		total += count
		in, _ := prog.Fetch(pc)
		fmt.Printf("%-14s %#-12x %-10d %v\n", site, pc, count, in)
	}
	fmt.Printf("\nper-site total %d vs simulator trap count %d\n", total, run.Traps)
	if total != run.Traps {
		log.Fatalf("profile disagrees with ground truth (hash collision?)")
	}
}
