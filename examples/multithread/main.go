// Multithread reproduces the paper's §4.1.3 software-controlled
// multithreading: a miss handler that context-switches between two user
// threads whenever the running thread takes a cache miss, hiding one
// thread's miss latency under the other's execution — all in software via
// the MHAR/MHRR primitives.
//
// The example applies the register-management optimisation the paper
// proposes ("statically partition the register set amongst threads"): each
// thread owns a disjoint register subset, so the switch handler saves no
// registers at all — it merely exchanges the resume PC in the MHRR with
// the other thread's parked PC, four instructions in total. (Writing the
// MHRR uses the MTMHRR extension, the kind of modest hardware support for
// state handling the paper anticipates.)
//
// Each thread chases its own pseudo-randomly linked list, the worst case
// for a blocking core: long serial chains of misses. Running the identical
// binary with the handler disabled gives the sequential baseline.
//
//	go run ./examples/multithread
package main

import (
	"fmt"
	"log"

	"informing/internal/asm"
	"informing/internal/core"
	"informing/internal/interp"
	"informing/internal/isa"
)

const nodes = 8192 // per list; 128 KB each

// chaseLoop emits one thread's kernel over its private registers:
// ptr = list cursor, acc = accumulator, cnt = countdown, t1/t2 = temps.
// The count covers two passes over the list: the first pass misses to
// memory, the second hits the 2 MB L2 — which is what makes the
// secondary-miss-only switching threshold interesting.
func chaseLoop(b *asm.Builder, tag string, ptr, acc, cnt, t1, t2 isa.Reg) {
	b.Label("loop_" + tag)
	b.Ld(t1, ptr, 0, true) // informing: a miss switches threads
	b.Ld(t2, ptr, 8, false)
	b.Add(acc, acc, t2)
	b.Move(ptr, t1)
	b.Addi(cnt, cnt, -1)
	b.Bne(cnt, isa.R0, "loop_"+tag)
	// Thread done: bank the sum; halt if both finished, else hand the
	// machine to the other thread with switching disabled.
	b.Add(isa.R31, isa.R31, acc)
	b.Addi(isa.R28, isa.R28, 1)
	b.LoadImm(isa.R29, 2)
	b.Beq(isa.R28, isa.R29, "alldone")
	b.MtmharZero()
	b.Jr(isa.R27) // r27 always holds the parked thread's resume PC
}

func build(armed bool) (*isa.Program, error) {
	b := asm.NewBuilder()
	listA := b.Alloc("listA", nodes*16)
	listB := b.Alloc("listB", nodes*16)
	for i := uint64(0); i < nodes; i++ {
		next := (5*i + 1) % nodes
		b.InitWord(listA+i*16, listA+next*16)
		b.InitWord(listA+i*16+8, i)
		b.InitWord(listB+i*16, listB+next*16)
		b.InitWord(listB+i*16+8, 2*i)
	}

	b.J("start")

	// The whole context switch: exchange MHRR with the parked PC.
	b.Label("switch_thread")
	b.Mfmhrr(isa.R23)
	b.MtmhrrReg(isa.R27, 0)
	b.Move(isa.R27, isa.R23)
	b.Rfmh()

	b.Label("start")
	if armed {
		b.MtmharLabel("switch_thread")
	}
	// Thread A: registers r1-r5. Thread B: registers r8-r12, parked at
	// its loop entry.
	b.LoadLabel(isa.R27, "loop_B")
	b.LoadImm(isa.R1, int64(listA))
	b.LoadImm(isa.R3, 2*nodes) // two passes (lists are circular)
	b.LoadImm(isa.R8, int64(listB))
	b.LoadImm(isa.R10, 2*nodes)
	chaseLoop(b, "A", isa.R1, isa.R2, isa.R3, isa.R4, isa.R5)
	chaseLoop(b, "B", isa.R8, isa.R9, isa.R10, isa.R11, isa.R12)
	b.Label("alldone")
	b.Halt()
	return b.Finish()
}

func main() {
	expect := uint64(nodes*(nodes-1)/2) * 3 * 2 // two passes of sum(i) + sum(2i)
	for _, machine := range []struct {
		name string
		mk   func(core.Scheme) core.Config
	}{
		{"out-of-order", core.R10000},
		{"in-order", core.Alpha21164},
	} {
		seqProg, err := build(false)
		if err != nil {
			log.Fatal(err)
		}
		mtProg, err := build(true)
		if err != nil {
			log.Fatal(err)
		}
		cfg := machine.mk(core.TrapBranch).WithMaxInsts(50_000_000)
		seq, seqM, err := cfg.RunDetailed(seqProg)
		if err != nil {
			log.Fatalf("%s sequential: %v", machine.name, err)
		}
		mt, mtM, err := cfg.RunDetailed(mtProg)
		if err != nil {
			log.Fatalf("%s multithreaded: %v", machine.name, err)
		}
		// §4.1.3's refinement: switch only on *secondary* misses — L2
		// hits (the whole second pass) are too short to be worth a
		// switch.
		l2cfg := cfg
		l2cfg.OOO.TrapThreshold = interp.LevelL2
		l2cfg.IO.TrapThreshold = interp.LevelL2
		l2, l2M, err := l2cfg.RunDetailed(mtProg)
		if err != nil {
			log.Fatalf("%s l2-only: %v", machine.name, err)
		}
		for _, m := range []struct {
			tag string
			got uint64
		}{{"sequential", seqM.G[31]}, {"multithreaded", mtM.G[31]}, {"l2-only", l2M.G[31]}} {
			if m.got != expect {
				log.Fatalf("%s %s result %d, want %d", machine.name, m.tag, m.got, expect)
			}
		}
		fmt.Printf("%s machine (all runs computed the correct sums):\n", machine.name)
		fmt.Printf("  sequential:              %8d cycles\n", seq.Cycles)
		fmt.Printf("  switch on any L1 miss:   %8d cycles (%d switches), %.2fx\n",
			mt.Cycles, mt.Traps, float64(seq.Cycles)/float64(mt.Cycles))
		fmt.Printf("  switch on L2 miss only:  %8d cycles (%d switches), %.2fx\n\n",
			l2.Cycles, l2.Traps, float64(seq.Cycles)/float64(l2.Cycles))
	}
}
