// Prefetch reproduces the paper's §4.1.2 idea of adaptive
// software-controlled prefetching: the prefetch instructions live in the
// informing miss handler, so prefetch overhead is only paid while the
// application is actually suffering misses — when the data is resident the
// handler never runs and the loop carries zero overhead.
//
// The kernel streams a large array. With the handler armed, every miss
// launches prefetches a few lines ahead, overlapping the fills with the
// sweep. The example runs the identical binary with the handler disabled
// (MHAR = 0) and enabled, on both machine models, and reports the speedup.
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"log"

	"informing/internal/asm"
	"informing/internal/core"
	"informing/internal/isa"
)

func build(armed bool) *asm.Builder {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", 512<<10)

	b.J("start")

	// Miss handler: fetch the next three lines. The loop's cursor lives
	// in r1 by convention (the paper's "tailor the response to its
	// context" usage pattern), so the handler knows what is coming.
	b.Label("prefetch_ahead")
	b.Prefetch(isa.R1, 32)
	b.Prefetch(isa.R1, 64)
	b.Prefetch(isa.R1, 96)
	b.Rfmh()

	b.Label("start")
	if armed {
		b.MtmharLabel("prefetch_ahead")
	}
	b.LoadImm(isa.R1, int64(arr))
	b.LoadImm(isa.R2, 512<<10/8)
	b.Label("loop")
	b.Ld(isa.R3, isa.R1, 0, true)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Xor(isa.R5, isa.R4, isa.R3)
	b.Add(isa.R6, isa.R6, isa.R5)
	b.Addi(isa.R1, isa.R1, 8)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Halt()
	return b
}

func main() {
	for _, machine := range []struct {
		name string
		mk   func(core.Scheme) core.Config
	}{
		{"out-of-order", core.R10000},
		{"in-order", core.Alpha21164},
	} {
		baseProg, err := build(false).Finish()
		if err != nil {
			log.Fatal(err)
		}
		pfProg, err := build(true).Finish()
		if err != nil {
			log.Fatal(err)
		}
		base, err := machine.mk(core.TrapBranch).Run(baseProg)
		if err != nil {
			log.Fatalf("%s base: %v", machine.name, err)
		}
		pf, err := machine.mk(core.TrapBranch).Run(pfProg)
		if err != nil {
			log.Fatalf("%s prefetch: %v", machine.name, err)
		}
		fmt.Printf("%s machine:\n", machine.name)
		fmt.Printf("  no handler:        %8d cycles (%d L1 misses)\n", base.Cycles, base.L1Misses)
		fmt.Printf("  prefetch handler:  %8d cycles (%d traps, %d handler instructions)\n",
			pf.Cycles, pf.Traps, pf.HandlerInsts)
		fmt.Printf("  speedup:           %.2fx\n\n", float64(base.Cycles)/float64(pf.Cycles))
	}
	fmt.Println("prefetches are launched only when the loop is actually missing —")
	fmt.Println("a resident working set would execute the identical code with zero overhead.")
}
