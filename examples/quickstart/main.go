// Quickstart: build a program with the asm.Builder DSL, attach a
// one-instruction miss-counting handler through the MHAR, and run it on
// the paper's out-of-order (MIPS R10000-like) machine model.
//
// The program sweeps a 64 KB array; every load is an informing memory
// operation. The miss handler increments r20, so at the end the program's
// own count of its cache misses (read from the final architectural state)
// can be compared against the simulator's ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"informing/internal/asm"
	"informing/internal/core"
	"informing/internal/isa"
)

func main() {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", 64<<10)

	b.J("start")

	// Miss handler: one register increment, then return. This is the
	// paper's minimal performance-monitoring handler (§4.1.1).
	b.Label("count_miss")
	b.Addi(isa.R20, isa.R20, 1)
	b.Rfmh()

	b.Label("start")
	b.MtmharLabel("count_miss") // enable informing traps
	b.LoadImm(isa.R1, int64(arr))
	b.LoadImm(isa.R2, 64<<10/8) // words to visit
	b.Label("loop")
	b.Ld(isa.R3, isa.R1, 0, true) // informing load
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Addi(isa.R1, isa.R1, 8)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Halt()

	prog, err := b.Finish()
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}

	cfg := core.R10000(core.TrapBranch)
	run, machine, err := cfg.RunDetailed(prog)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	softwareCount := machine.G[20] // the handler's own tally
	fmt.Printf("machine:                   %v, scheme %v\n", cfg.Machine, cfg.Scheme)
	fmt.Printf("cycles:                    %d (IPC %.2f)\n", run.Cycles, run.IPC())
	fmt.Printf("memory references:         %d\n", run.MemRefs)
	fmt.Printf("L1 misses (simulator):     %d\n", run.L1Misses)
	fmt.Printf("misses counted by handler: %d\n", softwareCount)
	if softwareCount != uint64(run.L1Misses) {
		log.Fatalf("handler count %d disagrees with simulator %d", softwareCount, run.L1Misses)
	}
	fmt.Println("the program observed its own cache misses exactly — that is the informing mechanism.")
}
