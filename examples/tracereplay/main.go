// Trace replay: record a full pipeline trace of a run, then reproduce
// the run's memory behavior from the trace text alone — no ISA program,
// just the schema-v2 (addr/kind) memory references replayed through an
// identically configured cache hierarchy (DESIGN.md §16).
//
// The example self-checks the closed loop: the replayed per-level
// reference and miss counters must reconcile exactly (delta 0) with the
// recording run. It then replays the same trace through a half-sized L1
// to show the question a captured trace answers without re-running the
// program: how would this reference stream behave under different cache
// geometry?
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"informing/internal/asm"
	"informing/internal/core"
	"informing/internal/isa"
	"informing/internal/obs"
	"informing/internal/trace"
)

func main() {
	// Three passes over a 24 KB array, one load per line: the working set
	// fits the R10000's 32 KB L1, so passes two and three hit — but only
	// at the recorded geometry. Halve the L1 below and they miss again.
	const arrBytes = 24 << 10
	b := asm.NewBuilder()
	arr := b.Alloc("arr", arrBytes)
	b.LoadImm(isa.R5, 3) // passes
	b.Label("pass")
	b.LoadImm(isa.R1, int64(arr))
	b.LoadImm(isa.R2, arrBytes/64)
	b.Label("loop")
	b.Ld(isa.R3, isa.R1, 0, false)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Addi(isa.R1, isa.R1, 64)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "pass")
	b.Halt()
	prog := b.MustFinish()

	// Record: attach the JSONL trace sink (sample interval 1 = every
	// instruction) exactly as informsim -trace-out -trace-sample 1 does.
	cfg := core.R10000(core.Off)
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf, 1)
	run, err := cfg.WithTrace(sink.Emit).Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded:  %d events (%d bytes of JSONL)\n", run.DynInsts, buf.Len())

	// Replay through the same geometry and reconcile: the closed loop.
	res, err := trace.Replay(bytes.NewReader(buf.Bytes()), trace.ReplayConfig{Hier: cfg.HierConfig()})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Reconcile(run); err != nil {
		log.Fatalf("closed loop broken: %v", err)
	}
	fmt.Printf("replayed:  %d refs, %d L1 misses, %d L2 misses — reconciled exactly\n",
		res.Total.Refs, res.Total.L1Misses, res.Total.L2Misses)

	// Same trace, half the L1: more misses, no re-simulation.
	small := cfg.HierConfig()
	small.L1.SizeBytes /= 2
	alt, err := trace.Replay(bytes.NewReader(buf.Bytes()), trace.ReplayConfig{Hier: small})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("half L1:   %d L1 misses (%d level drifts from the recording)\n",
		alt.Total.L1Misses, alt.Total.LevelMismatches)
	if alt.Total.L1Misses < res.Total.L1Misses {
		log.Fatalf("halving the L1 reduced misses: %d < %d", alt.Total.L1Misses, res.Total.L1Misses)
	}
}
