package informing

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExamplesRun executes every example end-to-end via `go run`; each
// example self-checks its results (handler counts vs simulator truth,
// computed sums, scheme orderings) and exits non-zero on a mismatch.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under go run")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/missprofiler",
		"./examples/prefetch",
		"./examples/multithread",
		"./examples/coherence",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", ex).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ex)
			}
		})
	}
}

// TestInformdSmoke exercises the service daemon the way an operator would:
// build it, start it on an ephemeral port, scrape the bound address from
// its listening line, round-trip one simulation over real HTTP, and shut
// it down with SIGTERM expecting a clean drain and exit 0.
func TestInformdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon")
	}
	bin := filepath.Join(t.TempDir(), "informd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/informd").CombinedOutput(); err != nil {
		t.Fatalf("build informd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })
	defer killer.Stop()
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The daemon prints "informd: listening on http://ADDR (...)" before
	// serving; that line is the contract for scripts binding port 0.
	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	_, rest, ok := strings.Cut(line, "http://")
	if !ok {
		t.Fatalf("no address in listening line %q", line)
	}
	addr, _, ok := strings.Cut(rest, " ")
	if !ok {
		t.Fatalf("malformed listening line %q", line)
	}
	base := "http://" + addr
	restOut := make(chan string, 1)
	go func() {
		tail, _ := io.ReadAll(reader)
		restOut <- line + string(tail)
	}()

	// One real (tiny) simulation through the full stack.
	body := `{"cells":[{"kind":"program","source":"\taddi r1, r0, 3\nloop:\taddi r1, r1, -1\n\tbne r1, r0, loop\n\thalt\n"}]}`
	resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	var sim struct {
		Results []struct {
			Run   *json.RawMessage `json:"run"`
			Error *json.RawMessage `json:"error"`
		} `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sim)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("simulate: status %d, decode err %v", resp.StatusCode, err)
	}
	if len(sim.Results) != 1 || sim.Results[0].Error != nil || sim.Results[0].Run == nil {
		t.Fatalf("simulate result = %+v, want one successful run", sim.Results)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 || !bytes.Contains(hbody, []byte(`"ok"`)) {
		t.Fatalf("healthz = %d %s", hresp.StatusCode, hbody)
	}

	// Graceful shutdown: SIGTERM → drain → exit 0 with the stop line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("informd exited uncleanly: %v (stderr: %s)", err, stderr.String())
	}
	out := <-restOut
	for _, want := range []string{"informd: listening on http://", "informd: draining (signal received)", "informd: stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}
