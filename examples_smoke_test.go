package informing

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExamplesRun executes every example end-to-end via `go run`; each
// example self-checks its results (handler counts vs simulator truth,
// computed sums, scheme orderings) and exits non-zero on a mismatch.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under go run")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/missprofiler",
		"./examples/prefetch",
		"./examples/multithread",
		"./examples/coherence",
		"./examples/tracereplay",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", ex).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ex)
			}
		})
	}
}

// TestInformdSmoke exercises the service daemon the way an operator would:
// build it, start it on an ephemeral port, scrape the bound address from
// its listening line, round-trip one simulation over real HTTP, and shut
// it down with SIGTERM expecting a clean drain and exit 0.
func TestInformdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon")
	}
	bin := filepath.Join(t.TempDir(), "informd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/informd").CombinedOutput(); err != nil {
		t.Fatalf("build informd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })
	defer killer.Stop()
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The daemon prints "informd: listening on http://ADDR (...)" before
	// serving; that line is the contract for scripts binding port 0.
	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	_, rest, ok := strings.Cut(line, "http://")
	if !ok {
		t.Fatalf("no address in listening line %q", line)
	}
	addr, _, ok := strings.Cut(rest, " ")
	if !ok {
		t.Fatalf("malformed listening line %q", line)
	}
	base := "http://" + addr
	restOut := make(chan string, 1)
	go func() {
		tail, _ := io.ReadAll(reader)
		restOut <- line + string(tail)
	}()

	// One real (tiny) simulation through the full stack.
	body := `{"cells":[{"kind":"program","source":"\taddi r1, r0, 3\nloop:\taddi r1, r1, -1\n\tbne r1, r0, loop\n\thalt\n"}]}`
	resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	var sim struct {
		Results []struct {
			Run   *json.RawMessage `json:"run"`
			Error *json.RawMessage `json:"error"`
		} `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sim)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("simulate: status %d, decode err %v", resp.StatusCode, err)
	}
	if len(sim.Results) != 1 || sim.Results[0].Error != nil || sim.Results[0].Run == nil {
		t.Fatalf("simulate result = %+v, want one successful run", sim.Results)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 || !bytes.Contains(hbody, []byte(`"ok"`)) {
		t.Fatalf("healthz = %d %s", hresp.StatusCode, hbody)
	}

	// Graceful shutdown: SIGTERM → drain → exit 0 with the stop line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("informd exited uncleanly: %v (stderr: %s)", err, stderr.String())
	}
	out := <-restOut
	for _, want := range []string{"informd: listening on http://", "informd: draining (signal received)", "informd: stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// informdProc is one running daemon generation in the restart smoke test.
type informdProc struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
}

func startInformd(t *testing.T, bin string, args ...string) *informdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() }) // no-op after a clean Wait
	time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })

	reader := bufio.NewReader(stdout)
	var line string
	for {
		line, err = reader.ReadString('\n')
		if err != nil {
			t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
		}
		if strings.Contains(line, "listening on http://") {
			break
		}
	}
	go io.Copy(io.Discard, reader) //nolint:errcheck // drain so the child never blocks on stdout
	_, rest, _ := strings.Cut(line, "http://")
	addr, _, ok := strings.Cut(rest, " ")
	if !ok {
		t.Fatalf("malformed listening line %q", line)
	}
	return &informdProc{cmd: cmd, base: "http://" + addr, stderr: &stderr}
}

// stop SIGTERMs the daemon and demands a clean drain and exit 0.
func (p *informdProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("informd exited uncleanly: %v (stderr: %s)", err, p.stderr.String())
	}
}

// simInstrs reads the sim_instrs counter from GET /metrics.
func (p *informdProc) simInstrs(t *testing.T) uint64 {
	t.Helper()
	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters["sim_instrs"]
}

// TestInformdWarmRestart is the operator-level restart contract: a daemon
// started with -store-dir, killed with SIGTERM and started again serves
// the previous generation's grid entirely from the durable store — every
// cell cached, sim_instrs delta exactly zero.
func TestInformdWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon twice")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "informd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/informd").CombinedOutput(); err != nil {
		t.Fatalf("build informd: %v\n%s", err, out)
	}
	storeDir := filepath.Join(tmp, "results")

	// A small real grid: cheap enough for a smoke lane, wide enough to
	// cover both kinds of stored payload shape (cell runs).
	body := `{"cells":[
		{"kind":"cell","benchmark":"compress","plan":"N","machine":"ooo","maxinsts":2000000},
		{"kind":"cell","benchmark":"compress","plan":"S1","machine":"ooo","maxinsts":2000000},
		{"kind":"cell","benchmark":"compress","plan":"N","machine":"inorder","maxinsts":2000000}]}`
	type simResp struct {
		Results []struct {
			Key    string           `json:"key"`
			Cached bool             `json:"cached"`
			Run    *json.RawMessage `json:"run"`
			Error  *json.RawMessage `json:"error"`
		} `json:"results"`
	}
	post := func(p *informdProc) simResp {
		t.Helper()
		resp, err := http.Post(p.base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr simResp
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != 200 {
			t.Fatalf("simulate: status %d, decode err %v", resp.StatusCode, err)
		}
		for i, r := range sr.Results {
			if r.Error != nil || r.Run == nil {
				t.Fatalf("cell %d failed: %s", i, *r.Error)
			}
		}
		return sr
	}

	gen1 := startInformd(t, bin, "-store-dir", storeDir)
	first := post(gen1)
	gen1.stop(t)

	gen2 := startInformd(t, bin, "-store-dir", storeDir)
	before := gen2.simInstrs(t)
	second := post(gen2)
	for i, r := range second.Results {
		if !r.Cached {
			t.Errorf("cell %d not served from the store after restart", i)
		}
		if r.Key != first.Results[i].Key || !bytes.Equal(*r.Run, *first.Results[i].Run) {
			t.Errorf("cell %d payload changed across restart", i)
		}
	}
	if delta := gen2.simInstrs(t) - before; delta != 0 {
		t.Errorf("restarted daemon simulated %d instructions, want exactly 0", delta)
	}
	gen2.stop(t)
}
