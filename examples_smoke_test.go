package informing

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun executes every example end-to-end via `go run`; each
// example self-checks its results (handler counts vs simulator truth,
// computed sums, scheme orderings) and exits non-zero on a mismatch.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under go run")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/missprofiler",
		"./examples/prefetch",
		"./examples/multithread",
		"./examples/coherence",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", ex).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ex)
			}
		})
	}
}
