module informing

go 1.22
