// Package asm provides two front ends that produce isa.Program values: a
// programmatic Builder used by the workload generators, and a small text
// assembler (see Assemble) for hand-written programs and tests.
package asm

import (
	"fmt"
	"math"

	"informing/internal/isa"
)

// Builder incrementally constructs a program. Methods record errors
// internally; Finish reports the first one. This lets generator code emit
// long sequences without per-call error plumbing.
type Builder struct {
	text    []isa.Inst
	base    uint64
	labels  map[string]int // label -> text index
	dataSym map[string]uint64
	fixups  []fixup
	dataCur uint64
	dataBas uint64
	init    map[uint64]uint64
	errs    []error
	nextLbl int
}

type fixupKind uint8

const (
	fixRel fixupKind = iota // PC-relative branch: imm = target - (pc+8)
	fixAbs                  // absolute address in imm (J/Jal/Mtmhar)
)

type fixup struct {
	index int
	label string
	kind  fixupKind
}

// NewBuilder returns an empty Builder using the default segment layout.
func NewBuilder() *Builder {
	return &Builder{
		base:    isa.DefaultTextBase,
		labels:  make(map[string]int),
		dataSym: make(map[string]uint64),
		dataBas: isa.DefaultDataBase,
		init:    make(map[uint64]uint64),
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Pos returns the current text index (the index of the next emitted
// instruction).
func (b *Builder) Pos() int { return len(b.text) }

// PCHere returns the byte address of the next emitted instruction.
func (b *Builder) PCHere() uint64 { return b.base + uint64(len(b.text))*isa.InstBytes }

// Label defines name at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("asm: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.text)
}

// Unique returns a fresh label name with the given prefix.
func (b *Builder) Unique(prefix string) string {
	b.nextLbl++
	return fmt.Sprintf("%s$%d", prefix, b.nextLbl)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.text = append(b.text, in) }

// --- data segment -----------------------------------------------------

// Alloc reserves size bytes (rounded up to 8) in the data segment and
// returns the base address; name may be empty for anonymous blocks.
func (b *Builder) Alloc(name string, size uint64) uint64 {
	addr := b.dataBas + b.dataCur
	b.dataCur += (size + 7) &^ 7
	if name != "" {
		if _, dup := b.dataSym[name]; dup {
			b.errf("asm: duplicate data symbol %q", name)
		}
		b.dataSym[name] = addr
	}
	return addr
}

// AllocAligned reserves size bytes aligned to align bytes (a power of two).
func (b *Builder) AllocAligned(name string, size, align uint64) uint64 {
	if align&(align-1) != 0 || align == 0 {
		b.errf("asm: alignment %d not a power of two", align)
		align = 8
	}
	cur := b.dataBas + b.dataCur
	pad := (align - cur%align) % align
	b.dataCur += pad
	return b.Alloc(name, size)
}

// Words reserves and initialises consecutive 64-bit words, returning the
// base address.
func (b *Builder) Words(name string, vals ...uint64) uint64 {
	addr := b.Alloc(name, uint64(len(vals))*8)
	for k, v := range vals {
		b.init[addr+uint64(k)*8] = v
	}
	return addr
}

// Floats reserves and initialises consecutive float64 words.
func (b *Builder) Floats(name string, vals ...float64) uint64 {
	w := make([]uint64, len(vals))
	for k, v := range vals {
		w[k] = math.Float64bits(v)
	}
	return b.Words(name, w...)
}

// InitWord sets the initial value of an already-allocated word.
func (b *Builder) InitWord(addr, val uint64) { b.init[addr] = val }

// --- instruction helpers ----------------------------------------------

func (b *Builder) rrr(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) rri(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Integer ALU.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Add, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Sub, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Mul, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Div, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Rem, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.And, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg)   { b.rrr(isa.Or, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Xor, rd, rs1, rs2) }
func (b *Builder) Nor(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Nor, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Sll, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Srl, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg)  { b.rrr(isa.Slt, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) { b.rrr(isa.Sltu, rd, rs1, rs2) }

func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.Addi, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.Andi, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64)  { b.rri(isa.Ori, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.Xori, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.Slli, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.Srli, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) { b.rri(isa.Slti, rd, rs1, imm) }
func (b *Builder) Nop()                            { b.Emit(isa.Inst{Op: isa.Nop}) }

// LoadImm materialises a constant that fits in int32 with a single Addi.
// Larger constants are rejected (the simulated address space fits).
func (b *Builder) LoadImm(rd isa.Reg, v int64) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		b.errf("asm: LoadImm %d out of 32-bit range", v)
		return
	}
	b.Addi(rd, isa.R0, v)
}

// Move copies rs1 into rd.
func (b *Builder) Move(rd, rs1 isa.Reg) { b.Add(rd, rs1, isa.R0) }

// Floating point.
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) { b.rrr(isa.Fadd, fd, fs1, fs2) }
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) { b.rrr(isa.Fsub, fd, fs1, fs2) }
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) { b.rrr(isa.Fmul, fd, fs1, fs2) }
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) { b.rrr(isa.Fdiv, fd, fs1, fs2) }
func (b *Builder) Fsqrt(fd, fs1 isa.Reg)     { b.rrr(isa.Fsqrt, fd, fs1, isa.R0) }
func (b *Builder) Fneg(fd, fs1 isa.Reg)      { b.rrr(isa.Fneg, fd, fs1, isa.R0) }
func (b *Builder) Fmov(fd, fs1 isa.Reg)      { b.rrr(isa.Fmov, fd, fs1, isa.R0) }
func (b *Builder) Fcvt(fd, rs1 isa.Reg)      { b.rrr(isa.Fcvt, fd, rs1, isa.R0) }
func (b *Builder) Icvt(rd, fs1 isa.Reg)      { b.rrr(isa.Icvt, rd, fs1, isa.R0) }
func (b *Builder) Fclt(rd, fs1, fs2 isa.Reg) { b.rrr(isa.Fclt, rd, fs1, fs2) }

// Memory. The inf flag marks the reference as informing.
func (b *Builder) Ld(rd, base isa.Reg, off int64, inf bool) {
	b.Emit(isa.Inst{Op: isa.Ld, Rd: rd, Rs1: base, Imm: off, Informing: inf})
}
func (b *Builder) St(val, base isa.Reg, off int64, inf bool) {
	b.Emit(isa.Inst{Op: isa.St, Rs2: val, Rs1: base, Imm: off, Informing: inf})
}
func (b *Builder) Fld(fd, base isa.Reg, off int64, inf bool) {
	b.Emit(isa.Inst{Op: isa.Fld, Rd: fd, Rs1: base, Imm: off, Informing: inf})
}
func (b *Builder) Fst(fv, base isa.Reg, off int64, inf bool) {
	b.Emit(isa.Inst{Op: isa.Fst, Rs2: fv, Rs1: base, Imm: off, Informing: inf})
}
func (b *Builder) Prefetch(base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.Prefetch, Rs1: base, Imm: off})
}

// Control flow (label targets).
func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixRel})
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) { b.branch(isa.Beq, rs1, rs2, label) }
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) { b.branch(isa.Bne, rs1, rs2, label) }
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) { b.branch(isa.Blt, rs1, rs2, label) }
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) { b.branch(isa.Bge, rs1, rs2, label) }

func (b *Builder) J(label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixAbs})
	b.Emit(isa.Inst{Op: isa.J})
}

func (b *Builder) Jal(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixAbs})
	b.Emit(isa.Inst{Op: isa.Jal, Rd: rd})
}

func (b *Builder) Jr(rs1 isa.Reg)       { b.Emit(isa.Inst{Op: isa.Jr, Rs1: rs1}) }
func (b *Builder) Jalr(rd, rs1 isa.Reg) { b.Emit(isa.Inst{Op: isa.Jalr, Rd: rd, Rs1: rs1}) }

// Informing extensions.

// Bmiss emits a branch-and-link-on-miss to label, linking into rd.
func (b *Builder) Bmiss(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixRel})
	b.Emit(isa.Inst{Op: isa.Bmiss, Rd: rd})
}

// MtmharLabel loads the MHAR with the address of a text label.
func (b *Builder) MtmharLabel(label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixAbs})
	b.Emit(isa.Inst{Op: isa.Mtmhar, Rs1: isa.R0})
}

// MtmharReg loads the MHAR from rs1+imm.
func (b *Builder) MtmharReg(rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.Mtmhar, Rs1: rs1, Imm: imm})
}

// MtmharZero disables informing traps.
func (b *Builder) MtmharZero() { b.Emit(isa.Inst{Op: isa.Mtmhar, Rs1: isa.R0}) }

// LoadLabel materialises the address of a text label into rd.
func (b *Builder) LoadLabel(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixAbs})
	b.Emit(isa.Inst{Op: isa.Addi, Rd: rd, Rs1: isa.R0})
}

// MtmhrrReg loads the MHRR from rs1+imm (software context switching).
func (b *Builder) MtmhrrReg(rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.Mtmhrr, Rs1: rs1, Imm: imm})
}

// MtmhrrLabel loads the MHRR with the address of a text label.
func (b *Builder) MtmhrrLabel(label string) {
	b.fixups = append(b.fixups, fixup{len(b.text), label, fixAbs})
	b.Emit(isa.Inst{Op: isa.Mtmhrr, Rs1: isa.R0})
}

func (b *Builder) Mfmhar(rd isa.Reg) { b.Emit(isa.Inst{Op: isa.Mfmhar, Rd: rd}) }

// Mfcnt reads the hardware L1-miss counter (serializing on the
// out-of-order machine, as the paper notes for the R10000).
func (b *Builder) Mfcnt(rd isa.Reg)  { b.Emit(isa.Inst{Op: isa.Mfcnt, Rd: rd}) }
func (b *Builder) Mfmhrr(rd isa.Reg) { b.Emit(isa.Inst{Op: isa.Mfmhrr, Rd: rd}) }
func (b *Builder) Rfmh()             { b.Emit(isa.Inst{Op: isa.Rfmh}) }
func (b *Builder) Halt()             { b.Emit(isa.Inst{Op: isa.Halt}) }

// --- finalisation -------------------------------------------------------

// Finish resolves labels, validates the program and returns it. The
// Builder must not be reused afterwards.
func (b *Builder) Finish() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &isa.Program{
		TextBase: b.base,
		Text:     b.text,
		DataBase: b.dataBas,
		DataSize: b.dataCur,
		Init:     b.init,
		Symbols:  make(map[string]uint64, len(b.labels)+len(b.dataSym)),
	}
	for name, idx := range b.labels {
		p.Symbols[name] = p.PCOf(idx)
	}
	for name, addr := range b.dataSym {
		p.Symbols[name] = addr
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		target := p.PCOf(idx)
		switch f.kind {
		case fixRel:
			pc := p.PCOf(f.index)
			p.Text[f.index].Imm = int64(target) - int64(pc) - isa.InstBytes
		case fixAbs:
			p.Text[f.index].Imm = int64(target)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if _, err := p.EncodeText(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustFinish is Finish that panics on error; for generators whose inputs
// are statically known to be valid.
func (b *Builder) MustFinish() *isa.Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}
