package asm

import (
	"strings"
	"testing"

	"informing/internal/isa"
)

func TestBuilderBranchFixups(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Bne(isa.R1, isa.R2, "top") // backward: target = pc-8
	b.Beq(isa.R1, isa.R2, "end") // forward
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Text[1].Imm; got != -16 {
		t.Errorf("backward branch imm %d, want -16", got)
	}
	if got := p.Text[2].Imm; got != 8 {
		t.Errorf("forward branch imm %d, want 8", got)
	}
}

func TestBuilderJumpAndMtmharAbsolute(t *testing.T) {
	b := NewBuilder()
	b.J("main")
	b.Label("handler")
	b.Rfmh()
	b.Label("main")
	b.MtmharLabel("handler")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	handlerPC := p.Symbols["handler"]
	if uint64(p.Text[0].Imm) != p.Symbols["main"] {
		t.Errorf("jump target %#x, want %#x", p.Text[0].Imm, p.Symbols["main"])
	}
	if uint64(p.Text[2].Imm) != handlerPC {
		t.Errorf("mtmhar imm %#x, want %#x", p.Text[2].Imm, handlerPC)
	}
}

func TestBuilderLoadLabel(t *testing.T) {
	b := NewBuilder()
	b.LoadLabel(isa.R7, "target")
	b.Label("target")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p.Text[0].Imm) != p.Symbols["target"] {
		t.Errorf("LoadLabel imm %#x, want %#x", p.Text[0].Imm, p.Symbols["target"])
	}
	if p.Text[0].Op != isa.Addi || p.Text[0].Rd != isa.R7 {
		t.Errorf("LoadLabel emitted %v", p.Text[0])
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder()
		b.Label("x")
		b.Label("x")
		b.Halt()
		if _, err := b.Finish(); err == nil {
			t.Error("duplicate label accepted")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder()
		b.J("nowhere")
		b.Halt()
		if _, err := b.Finish(); err == nil {
			t.Error("undefined label accepted")
		}
	})
	t.Run("loadimm out of range", func(t *testing.T) {
		b := NewBuilder()
		b.LoadImm(isa.R1, 1<<40)
		b.Halt()
		if _, err := b.Finish(); err == nil {
			t.Error("oversized immediate accepted")
		}
	})
	t.Run("duplicate data symbol", func(t *testing.T) {
		b := NewBuilder()
		b.Alloc("d", 8)
		b.Alloc("d", 8)
		b.Halt()
		if _, err := b.Finish(); err == nil {
			t.Error("duplicate data symbol accepted")
		}
	})
	t.Run("bad alignment", func(t *testing.T) {
		b := NewBuilder()
		b.AllocAligned("d", 8, 3)
		b.Halt()
		if _, err := b.Finish(); err == nil {
			t.Error("non-power-of-two alignment accepted")
		}
	})
}

func TestBuilderDataLayout(t *testing.T) {
	b := NewBuilder()
	a1 := b.Alloc("a1", 10) // rounds to 16
	a2 := b.Alloc("a2", 8)
	a3 := b.AllocAligned("a3", 32, 4096)
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1+16 {
		t.Errorf("a2 at %#x, want %#x (size rounding)", a2, a1+16)
	}
	if a3%4096 != 0 {
		t.Errorf("a3 %#x not 4096-aligned", a3)
	}
	if p.DataSize == 0 || p.DataBase != isa.DefaultDataBase {
		t.Errorf("data segment %#x+%d wrong", p.DataBase, p.DataSize)
	}
	if p.Symbols["a1"] != a1 || p.Symbols["a3"] != a3 {
		t.Error("data symbols not recorded")
	}
}

func TestBuilderWordsAndFloats(t *testing.T) {
	b := NewBuilder()
	w := b.Words("w", 1, 2, 3)
	f := b.Floats("f", 1.5, -2.5)
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var m isa.DataMem
	m.LoadInit(p)
	for k, want := range []uint64{1, 2, 3} {
		if got := m.Load(w + uint64(k)*8); got != want {
			t.Errorf("word %d = %d, want %d", k, got, want)
		}
	}
	if m.LoadF(f) != 1.5 || m.LoadF(f+8) != -2.5 {
		t.Error("float init wrong")
	}
}

func TestBuilderUniqueLabels(t *testing.T) {
	b := NewBuilder()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		l := b.Unique("x")
		if seen[l] {
			t.Fatalf("duplicate unique label %q", l)
		}
		seen[l] = true
		if !strings.HasPrefix(l, "x$") {
			t.Fatalf("unexpected label format %q", l)
		}
	}
}

func TestBuilderValidatesProgram(t *testing.T) {
	b := NewBuilder()
	// A hand-rolled branch to a misaligned target must be caught by
	// Program.Validate during Finish.
	b.Emit(isa.Inst{Op: isa.Beq, Imm: 4})
	b.Halt()
	if _, err := b.Finish(); err == nil {
		t.Error("misaligned branch target accepted")
	}
}

func TestMustFinishPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFinish did not panic")
		}
	}()
	b := NewBuilder()
	b.J("nowhere")
	b.MustFinish()
}
