package asm

import (
	"fmt"
	"sort"
	"strings"

	"informing/internal/isa"
)

// Disassemble renders a program back into assembler text accepted by
// Assemble. Control-transfer targets inside the text segment become
// synthetic labels (L<index>); initialised data is emitted as .word
// directives (with anonymous .data padding for gaps) so that the
// reassembled program has an identical text image and identical initial
// memory. Round-tripping is verified by property tests.
func Disassemble(p *isa.Program) string {
	var sb strings.Builder

	// Pass 1: find text targets needing labels.
	labels := map[int]string{}
	needLabel := func(target uint64) (string, bool) {
		k, ok := p.IndexOf(target)
		if !ok {
			return "", false
		}
		l, seen := labels[k]
		if !seen {
			l = fmt.Sprintf("L%d", k)
			labels[k] = l
		}
		return l, true
	}
	type ref struct {
		label string
		ok    bool
	}
	refs := make([]ref, len(p.Text))
	for k, in := range p.Text {
		switch in.Op {
		case isa.Beq, isa.Bne, isa.Blt, isa.Bge, isa.Bmiss:
			l, ok := needLabel(p.PCOf(k) + isa.InstBytes + uint64(in.Imm))
			refs[k] = ref{l, ok}
		case isa.J, isa.Jal:
			l, ok := needLabel(uint64(in.Imm))
			refs[k] = ref{l, ok}
		case isa.Mtmhar, isa.Mtmhrr:
			// Label form only for absolute text addresses built from r0.
			if in.Rs1 == isa.R0 && in.Imm != 0 {
				if l, ok := needLabel(uint64(in.Imm)); ok {
					refs[k] = ref{l, true}
				}
			}
		}
	}

	// Pass 2: data image. Emit .word runs in address order and .data
	// padding for gaps so addresses reproduce exactly.
	if len(p.Init) > 0 {
		addrs := make([]uint64, 0, len(p.Init))
		for a := range p.Init {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		cursor := p.DataBase
		seg := 0
		i := 0
		for i < len(addrs) {
			if addrs[i] > cursor {
				fmt.Fprintf(&sb, ".data pad%d %d\n", seg, addrs[i]-cursor)
				seg++
				cursor = addrs[i]
			}
			// Collect a contiguous run (bounded per line for readability).
			var vals []string
			for i < len(addrs) && addrs[i] == cursor && len(vals) < 8 {
				vals = append(vals, fmt.Sprintf("%d", int64(p.Init[addrs[i]])))
				cursor += 8
				i++
			}
			fmt.Fprintf(&sb, ".word w%d %s\n", seg, strings.Join(vals, " "))
			seg++
		}
	}

	// Pass 3: instructions.
	for k, in := range p.Text {
		if l, ok := labels[k]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		sb.WriteString("\t")
		switch {
		case in.Op == isa.Prefetch:
			fmt.Fprintf(&sb, "prefetch %d(%s)", in.Imm, in.Rs1)
		case in.IsCondBranch() && refs[k].ok:
			if in.Op == isa.Bmiss {
				fmt.Fprintf(&sb, "bmiss %s, %s", in.Rd, refs[k].label)
			} else {
				fmt.Fprintf(&sb, "%s %s, %s, %s", in.Op, in.Rs1, in.Rs2, refs[k].label)
			}
		case in.Op == isa.J && refs[k].ok:
			fmt.Fprintf(&sb, "j %s", refs[k].label)
		case in.Op == isa.Jal && refs[k].ok:
			fmt.Fprintf(&sb, "jal %s, %s", in.Rd, refs[k].label)
		case (in.Op == isa.Mtmhar || in.Op == isa.Mtmhrr) && refs[k].ok:
			fmt.Fprintf(&sb, "%s %s", in.Op, refs[k].label)
		default:
			sb.WriteString(in.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
