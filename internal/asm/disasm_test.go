package asm

import (
	"strings"
	"testing"

	"informing/internal/isa"
)

// roundTrip disassembles p, reassembles it, and requires an identical
// text image and identical initial memory.
func roundTrip(t *testing.T, p *isa.Program, tag string) {
	t.Helper()
	src := Disassemble(p)
	q, err := Assemble(src)
	if err != nil {
		t.Fatalf("%s: reassemble: %v\nsource:\n%s", tag, err, clip(src))
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("%s: text length %d -> %d", tag, len(p.Text), len(q.Text))
	}
	for k := range p.Text {
		if p.Text[k] != q.Text[k] {
			t.Fatalf("%s: instruction %d: %v -> %v", tag, k, p.Text[k], q.Text[k])
		}
	}
	if len(p.Init) != len(q.Init) {
		t.Fatalf("%s: init words %d -> %d", tag, len(p.Init), len(q.Init))
	}
	for addr, v := range p.Init {
		if q.Init[addr] != v {
			t.Fatalf("%s: init[%#x] %d -> %d", tag, addr, v, q.Init[addr])
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n..."
	}
	return s
}

func TestDisassembleRoundTripHandWritten(t *testing.T) {
	src := `
.word tbl 5 -7 9
.data gap 48
.word more 11
start:	li r1, 10
	la r2, tbl
loop:	ld.i r3, 0(r2)
	bmiss r22, handler
	add r4, r4, r3
	addi r2, r2, 8
	addi r1, r1, -1
	bne r1, r0, loop
	mtmhar handler
	mtmhrr handler
	st.i r4, 16(r2)
	fld f1, 0(r2)
	fadd f2, f1, f1
	fst f2, 8(r2)
	prefetch 64(r2)
	jal r15, fn
	j end
fn:	jr r15
handler: rfmh
end:	halt`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, p, "hand-written")
}

func TestDisassembleRoundTripBuilderPrograms(t *testing.T) {
	b := NewBuilder()
	buf := b.Words("w", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	b.AllocAligned("big", 128, 4096)
	b.Floats("f", 1.5, -2.25)
	b.J("main")
	b.Label("h")
	b.Addi(isa.R20, isa.R20, 1)
	b.Rfmh()
	b.Label("main")
	b.MtmharLabel("h")
	b.LoadImm(isa.R1, int64(buf))
	b.LoadLabel(isa.R9, "main")
	b.Fld(isa.F(3), isa.R1, 0, true)
	b.Fsqrt(isa.F(4), isa.F(3))
	b.Icvt(isa.R5, isa.F(4))
	b.Fcvt(isa.F(5), isa.R5)
	b.Prefetch(isa.R1, 32)
	b.Bmiss(isa.R22, "h")
	b.Jalr(isa.R15, isa.R9)
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Jalr target is main at runtime; statically fine.
	_ = p
	roundTrip(t, p, "builder")
}

func TestDisassembleEveryOpcode(t *testing.T) {
	// Build one instance of every opcode (with in-text targets for
	// control transfers) and round-trip the program.
	b := NewBuilder()
	d := b.Words("d", 42)
	b.Label("top")
	b.Nop()
	b.Add(isa.R1, isa.R2, isa.R3)
	b.Sub(isa.R1, isa.R2, isa.R3)
	b.Mul(isa.R1, isa.R2, isa.R3)
	b.Div(isa.R1, isa.R2, isa.R3)
	b.Rem(isa.R1, isa.R2, isa.R3)
	b.And(isa.R1, isa.R2, isa.R3)
	b.Or(isa.R1, isa.R2, isa.R3)
	b.Xor(isa.R1, isa.R2, isa.R3)
	b.Nor(isa.R1, isa.R2, isa.R3)
	b.Sll(isa.R1, isa.R2, isa.R3)
	b.Srl(isa.R1, isa.R2, isa.R3)
	b.Emit(isa.Inst{Op: isa.Sra, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3})
	b.Slt(isa.R1, isa.R2, isa.R3)
	b.Sltu(isa.R1, isa.R2, isa.R3)
	b.Addi(isa.R1, isa.R2, -5)
	b.Andi(isa.R1, isa.R2, 7)
	b.Ori(isa.R1, isa.R2, 7)
	b.Xori(isa.R1, isa.R2, 7)
	b.Slli(isa.R1, isa.R2, 3)
	b.Srli(isa.R1, isa.R2, 3)
	b.Emit(isa.Inst{Op: isa.Srai, Rd: isa.R1, Rs1: isa.R2, Imm: 3})
	b.Slti(isa.R1, isa.R2, 9)
	b.Emit(isa.Inst{Op: isa.Lui, Rd: isa.R1, Imm: 2})
	b.Fadd(isa.F(1), isa.F(2), isa.F(3))
	b.Fsub(isa.F(1), isa.F(2), isa.F(3))
	b.Fmul(isa.F(1), isa.F(2), isa.F(3))
	b.Fdiv(isa.F(1), isa.F(2), isa.F(3))
	b.Fsqrt(isa.F(1), isa.F(2))
	b.Fneg(isa.F(1), isa.F(2))
	b.Fmov(isa.F(1), isa.F(2))
	b.Fcvt(isa.F(1), isa.R2)
	b.Icvt(isa.R1, isa.F(2))
	b.Fclt(isa.R1, isa.F(2), isa.F(3))
	b.Emit(isa.Inst{Op: isa.Fceq, Rd: isa.R1, Rs1: isa.F(2), Rs2: isa.F(3)})
	b.LoadImm(isa.R4, int64(d))
	b.Ld(isa.R1, isa.R4, 0, false)
	b.Ld(isa.R1, isa.R4, 0, true)
	b.St(isa.R1, isa.R4, 0, true)
	b.Fld(isa.F(1), isa.R4, 0, true)
	b.Fst(isa.F(1), isa.R4, 0, false)
	b.Prefetch(isa.R4, 0)
	b.Beq(isa.R1, isa.R2, "top")
	b.Bne(isa.R1, isa.R2, "top")
	b.Blt(isa.R1, isa.R2, "top")
	b.Bge(isa.R1, isa.R2, "top")
	b.Jal(isa.R15, "fn")
	b.J("end")
	b.Label("fn")
	b.Jr(isa.R15)
	b.Jalr(isa.R14, isa.R15)
	b.Label("h")
	b.Rfmh()
	b.Label("end")
	b.MtmharLabel("h")
	b.MtmharReg(isa.R5, 16)
	b.MtmhrrLabel("h")
	b.MtmhrrReg(isa.R5, 0)
	b.Mfmhar(isa.R6)
	b.Mfmhrr(isa.R7)
	b.Bmiss(isa.R22, "h")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, p, "all-opcodes")
	// Sanity: the disassembly mentions every mnemonic we emitted.
	src := Disassemble(p)
	for _, mnem := range []string{"ld.i", "st.i", "fld.i", "prefetch", "bmiss", "mtmhar", "mtmhrr", "rfmh"} {
		if !strings.Contains(src, mnem) {
			t.Errorf("disassembly missing %q", mnem)
		}
	}
}
