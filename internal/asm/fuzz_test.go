package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"informing/internal/isa"
)

// TestAssembleNeverPanics: the assembler must reject arbitrary garbage
// with an error, never a panic.
func TestAssembleNeverPanics(t *testing.T) {
	chars := []byte("abcdefghijklmnopqrstuvwxyz0123456789 ,():;.$-#\n\tr f.iwldst")
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < 400; i++ {
			sb.WriteByte(chars[r.Intn(len(chars))])
		}
		_, _ = Assemble(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAssembleMutatedValidSource: mutations of a valid program must either
// assemble or fail cleanly.
func TestAssembleMutatedValidSource(t *testing.T) {
	valid := `
start:	li r1, 10
	la r2, buf
loop:	ld.i r3, 0(r2)
	bmiss r22, h
	addi r1, r1, -1
	bne r1, r0, loop
	halt
h:	rfmh
.data buf 64`
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		b := []byte(valid)
		for k := 0; k < 1+r.Intn(5); k++ {
			b[r.Intn(len(b))] = byte(r.Intn(128))
		}
		if p, err := Assemble(string(b)); err == nil {
			// If it assembled, it must also validate and encode.
			if err := p.Validate(); err != nil {
				t.Logf("seed %d: assembled but invalid: %v", seed, err)
				return false
			}
			if _, err := p.EncodeText(); err != nil {
				t.Logf("seed %d: assembled but unencodable: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDisassembleNeverPanicsOnRandomPrograms: any encodable, valid program
// must disassemble without panicking, and the output must reassemble.
func TestDisassembleRandomInstructionSequences(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		b.Words("d", uint64(r.Int63()), uint64(r.Int63()))
		n := 5 + r.Intn(30)
		b.Label("top")
		for i := 0; i < n; i++ {
			switch r.Intn(6) {
			case 0:
				b.Add(isa.R(1+r.Intn(15)), isa.R(r.Intn(16)), isa.R(r.Intn(16)))
			case 1:
				b.Addi(isa.R(1+r.Intn(15)), isa.R(r.Intn(16)), int64(int32(r.Uint32())))
			case 2:
				b.Ld(isa.R(1+r.Intn(15)), isa.R(r.Intn(16)), int64(r.Intn(256))*8, r.Intn(2) == 0)
			case 3:
				b.Fadd(isa.F(r.Intn(16)), isa.F(r.Intn(16)), isa.F(r.Intn(16)))
			case 4:
				b.Beq(isa.R(r.Intn(16)), isa.R(r.Intn(16)), "top")
			case 5:
				b.Fst(isa.F(r.Intn(16)), isa.R(r.Intn(16)), int64(r.Intn(64))*8, r.Intn(2) == 0)
			}
		}
		b.Halt()
		p, err := b.Finish()
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		q, err := Assemble(Disassemble(p))
		if err != nil {
			t.Logf("seed %d: round trip: %v", seed, err)
			return false
		}
		for k := range p.Text {
			if p.Text[k] != q.Text[k] {
				t.Logf("seed %d: inst %d differs", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FuzzAssemble is the native fuzz target CI exercises: arbitrary source
// must assemble or fail cleanly, and anything that assembles must
// validate, encode, and survive a disassembly round trip.
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 10\nhalt\n")
	f.Add(`
start:	li r1, 10
	la r2, buf
loop:	ld.i r3, 0(r2)
	bmiss r22, h
	addi r1, r1, -1
	bne r1, r0, loop
	halt
h:	rfmh
.data buf 64`)
	f.Add(".data x 8\nst r1, 0(r2)\n")
	f.Add("mfmhar r5\nmtmhrr r6\nrfmh\n")
	f.Add("garbage ( ; : $ #")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("assembled but invalid: %v", err)
		}
		if _, err := p.EncodeText(); err != nil {
			t.Fatalf("assembled but unencodable: %v", err)
		}
		if _, err := Assemble(Disassemble(p)); err != nil {
			t.Fatalf("disassembly does not reassemble: %v", err)
		}
	})
}
