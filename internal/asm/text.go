package asm

import (
	"fmt"
	"strconv"
	"strings"

	"informing/internal/isa"
)

// Assemble parses assembler text into a program. The syntax is
// line-oriented:
//
//	; or # start comments
//	label:                     text label (may share a line with an op)
//	.data name SIZE            reserve SIZE bytes of data, symbol name
//	.word name V0 V1 ...       reserve and initialise 64-bit words
//	.float name F0 F1 ...      reserve and initialise float64 words
//	op operands                one instruction
//
// Memory operands use off(reg) form: "ld r2, 8(r1)". Informing memory
// ops take a ".i" suffix: "ld.i", "st.i", "fld.i", "fst.i". Branches name
// label targets. "la rd, sym" is a pseudo-instruction materialising a
// data or text symbol address. "li rd, imm" materialises a constant.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{b: NewBuilder(), dataRefs: map[int]string{}}
	for ln, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	// Resolve data-symbol references (la pseudo-ops) after all symbols
	// are known; text labels were handled through Builder fixups.
	p, err := a.b.Finish()
	if err != nil {
		return nil, err
	}
	for idx, sym := range a.dataRefs {
		addr, ok := p.Symbols[sym]
		if !ok {
			return nil, fmt.Errorf("undefined symbol %q", sym)
		}
		p.Text[idx].Imm = int64(addr)
	}
	return p, nil
}

type assembler struct {
	b *assemblerBuilder
	// dataRefs maps text index -> symbol for "la" pseudo-ops resolved
	// after assembly (symbols may be data labels the Builder fixup
	// machinery does not cover).
	dataRefs map[int]string
}

// assemblerBuilder is a local alias to keep the struct literal above tidy.
type assemblerBuilder = Builder

func (a *assembler) line(raw string) error {
	s := raw
	if k := strings.IndexAny(s, ";#"); k >= 0 {
		s = s[:k]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Leading label(s).
	for {
		k := strings.Index(s, ":")
		if k < 0 {
			break
		}
		name := strings.TrimSpace(s[:k])
		if name == "" || strings.ContainsAny(name, " \t,()") {
			break
		}
		a.b.Label(name)
		s = strings.TrimSpace(s[k+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	return a.inst(s)
}

func (a *assembler) directive(s string) error {
	f := strings.Fields(s)
	switch f[0] {
	case ".data":
		if len(f) != 3 {
			return fmt.Errorf(".data wants: .data name size")
		}
		size, err := strconv.ParseUint(f[2], 0, 64)
		if err != nil {
			return fmt.Errorf(".data size: %v", err)
		}
		a.b.Alloc(f[1], size)
		return nil
	case ".word":
		if len(f) < 3 {
			return fmt.Errorf(".word wants: .word name v...")
		}
		vals := make([]uint64, 0, len(f)-2)
		for _, t := range f[2:] {
			v, err := strconv.ParseInt(t, 0, 64)
			if err != nil {
				return fmt.Errorf(".word value %q: %v", t, err)
			}
			vals = append(vals, uint64(v))
		}
		a.b.Words(f[1], vals...)
		return nil
	case ".float":
		if len(f) < 3 {
			return fmt.Errorf(".float wants: .float name v...")
		}
		vals := make([]float64, 0, len(f)-2)
		for _, t := range f[2:] {
			v, err := strconv.ParseFloat(t, 64)
			if err != nil {
				return fmt.Errorf(".float value %q: %v", t, err)
			}
			vals = append(vals, v)
		}
		a.b.Floats(f[1], vals...)
		return nil
	default:
		return fmt.Errorf("unknown directive %s", f[0])
	}
}

func parseReg(t string) (isa.Reg, error) {
	t = strings.TrimSpace(t)
	if len(t) < 2 {
		return 0, fmt.Errorf("bad register %q", t)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", t)
	}
	switch t[0] {
	case 'r':
		return isa.R(n), nil
	case 'f':
		return isa.F(n), nil
	}
	return 0, fmt.Errorf("bad register %q", t)
}

func parseImm(t string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(t), 0, 64)
}

// parseMem parses "off(reg)".
func parseMem(t string) (isa.Reg, int64, error) {
	t = strings.TrimSpace(t)
	open := strings.Index(t, "(")
	if open < 0 || !strings.HasSuffix(t, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", t)
	}
	off := int64(0)
	if open > 0 {
		v, err := parseImm(t[:open])
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q: %v", t, err)
		}
		off = v
	}
	r, err := parseReg(t[open+1 : len(t)-1])
	return r, off, err
}

func (a *assembler) inst(s string) error {
	sp := strings.IndexAny(s, " \t")
	mnem, rest := s, ""
	if sp >= 0 {
		mnem, rest = s[:sp], strings.TrimSpace(s[sp+1:])
	}
	var ops []string
	if rest != "" {
		ops = strings.Split(rest, ",")
		for k := range ops {
			ops[k] = strings.TrimSpace(ops[k])
		}
	}
	inf := false
	if strings.HasSuffix(mnem, ".i") {
		inf = true
		mnem = strings.TrimSuffix(mnem, ".i")
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	switch mnem {
	case "nop":
		a.b.Nop()
	case "halt":
		a.b.Halt()
	case "rfmh":
		a.b.Rfmh()
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "nor",
		"sll", "srl", "sra", "slt", "sltu",
		"fadd", "fsub", "fmul", "fdiv", "fclt", "fceq":
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		r1, e2 := parseReg(ops[1])
		r2, e3 := parseReg(ops[2])
		op, e4 := opByName(mnem)
		if err := firstErr(e1, e2, e3, e4); err != nil {
			return err
		}
		a.b.rrr(op, rd, r1, r2)
	case "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti":
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		r1, e2 := parseReg(ops[1])
		imm, e3 := parseImm(ops[2])
		op, e4 := opByName(mnem)
		if err := firstErr(e1, e2, e3, e4); err != nil {
			return err
		}
		a.b.rri(op, rd, r1, imm)
	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		imm, e2 := parseImm(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		a.b.rri(isa.Lui, rd, isa.R0, imm)
	case "fsqrt", "fneg", "fmov", "fcvt", "icvt":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		r1, e2 := parseReg(ops[1])
		op, e3 := opByName(mnem)
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		a.b.rrr(op, rd, r1, isa.R0)
	case "ld", "fld", "prefetch":
		if mnem == "prefetch" {
			if err := need(1); err != nil {
				return err
			}
			base, off, err := parseMem(ops[0])
			if err != nil {
				return err
			}
			a.b.Prefetch(base, off)
			return nil
		}
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		base, off, e2 := parseMem(ops[1])
		op, e3 := opByName(mnem)
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off, Informing: inf})
	case "st", "fst":
		if err := need(2); err != nil {
			return err
		}
		rv, e1 := parseReg(ops[0])
		base, off, e2 := parseMem(ops[1])
		op, e3 := opByName(mnem)
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: op, Rs2: rv, Rs1: base, Imm: off, Informing: inf})
	case "beq", "bne", "blt", "bge":
		if err := need(3); err != nil {
			return err
		}
		r1, e1 := parseReg(ops[0])
		r2, e2 := parseReg(ops[1])
		op, e3 := opByName(mnem)
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		a.b.branch(op, r1, r2, ops[2])
	case "j":
		if err := need(1); err != nil {
			return err
		}
		a.b.J(ops[0])
	case "jal":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		a.b.Jal(rd, ops[1])
	case "jr":
		if err := need(1); err != nil {
			return err
		}
		r1, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		a.b.Jr(r1)
	case "jalr":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		r1, e2 := parseReg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		a.b.Jalr(rd, r1)
	case "bmiss":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		a.b.Bmiss(rd, ops[1])
	case "mtmhar":
		switch len(ops) {
		case 1:
			// Label or register form.
			if r, err := parseReg(ops[0]); err == nil {
				a.b.MtmharReg(r, 0)
			} else {
				a.b.MtmharLabel(ops[0])
			}
		case 2:
			r, e1 := parseReg(ops[0])
			imm, e2 := parseImm(ops[1])
			if err := firstErr(e1, e2); err != nil {
				return err
			}
			a.b.MtmharReg(r, imm)
		default:
			return fmt.Errorf("mtmhar wants 1 or 2 operands")
		}
	case "mtmhrr":
		switch len(ops) {
		case 1:
			if r, err := parseReg(ops[0]); err == nil {
				a.b.MtmhrrReg(r, 0)
			} else {
				a.b.MtmhrrLabel(ops[0])
			}
		case 2:
			r, e1 := parseReg(ops[0])
			imm, e2 := parseImm(ops[1])
			if err := firstErr(e1, e2); err != nil {
				return err
			}
			a.b.MtmhrrReg(r, imm)
		default:
			return fmt.Errorf("mtmhrr wants 1 or 2 operands")
		}
	case "mfmhar", "mfmhrr", "mfcnt":
		if err := need(1); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		switch mnem {
		case "mfmhar":
			a.b.Mfmhar(rd)
		case "mfmhrr":
			a.b.Mfmhrr(rd)
		default:
			a.b.Mfcnt(rd)
		}
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := parseReg(ops[0])
		imm, e2 := parseImm(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		a.b.LoadImm(rd, imm)
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		a.dataRefs[a.b.Pos()] = ops[1]
		a.b.Addi(rd, isa.R0, 0) // imm patched after symbol resolution
	default:
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return nil
}

func opByName(name string) (isa.Op, error) {
	for o := isa.Op(0); int(o) < isa.NumOps; o++ {
		if o.String() == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("asm: unknown op name %q", name)
}

// MustOp returns the opcode with the given assembler name, panicking when
// it is unknown; for tests and static tables only (documented Must*
// helper). Library code uses the error-returning lookup.
func MustOp(name string) isa.Op {
	o, err := opByName(name)
	if err != nil {
		panic(err)
	}
	return o
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
