package asm

import (
	"strings"
	"testing"

	"informing/internal/isa"
)

func TestAssembleFullSyntax(t *testing.T) {
	src := `
; comment line
# another comment style
.data buf 64
.word tbl 1 -2 0x10
.float ftbl 1.5 -0.25

start:  addi r1, r0, 100        ; trailing comment
        li   r2, -7
        la   r3, buf
        la   r4, start
        add  r5, r1, r2
        sub  r6, r1, r2
        mul  r7, r1, r2
        and  r8, r1, r2
        slli r9, r1, 3
        lui  r10, 1
        ld   r11, 8(r1)
        ld.i r12, 0(r3)
        st   r11, 16(r3)
        st.i r11, 24(r3)
        fld  f1, 0(r3)
        fld.i f2, 8(r3)
        fst  f1, 0(r3)
        prefetch 32(r3)
        fadd f3, f1, f2
        fsqrt f4, f3
        fcvt f5, r1
        icvt r13, f5
        fclt r14, f1, f2
loop:   beq  r1, r2, done
        bne  r1, r0, loop
        blt  r2, r1, loop
        bge  r1, r2, loop
        jal  r15, sub1
        j    done
sub1:   jr   r15
done:   mtmhar handler
        mtmhar r3, 8
        mtmhrr r3
        mfmhar r20
        mfmhrr r21
        bmiss r22, handler
        nop
        halt
handler: rfmh
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Spot checks.
	get := func(label string, off int) isa.Inst {
		k, ok := p.IndexOf(p.Symbols[label])
		if !ok {
			t.Fatalf("label %q missing", label)
		}
		return p.Text[k+off]
	}
	if in := get("start", 0); in.Op != isa.Addi || in.Imm != 100 {
		t.Errorf("addi parsed as %v", in)
	}
	if in := get("start", 2); uint64(in.Imm) != p.Symbols["buf"] {
		t.Errorf("la buf imm %#x, want %#x", in.Imm, p.Symbols["buf"])
	}
	if in := get("start", 3); uint64(in.Imm) != p.Symbols["start"] {
		t.Errorf("la start imm %#x, want %#x", in.Imm, p.Symbols["start"])
	}
	if in := get("start", 11); !in.Informing || in.Op != isa.Ld {
		t.Errorf("ld.i parsed as %v", in)
	}
	if in := get("start", 10); in.Informing {
		t.Errorf("plain ld marked informing: %v", in)
	}
	if in := get("start", 13); !in.Informing || in.Op != isa.St {
		t.Errorf("st.i parsed as %v", in)
	}
	if in := get("done", 0); in.Op != isa.Mtmhar || uint64(in.Imm) != p.Symbols["handler"] {
		t.Errorf("mtmhar label form parsed as %v", in)
	}
	if in := get("done", 2); in.Op != isa.Mtmhrr || in.Rs1 != isa.R3 {
		t.Errorf("mtmhrr parsed as %v", in)
	}
	if in := get("done", 5); in.Op != isa.Bmiss || in.Rd != isa.R22 {
		t.Errorf("bmiss parsed as %v", in)
	}
	// Data directives.
	var m isa.DataMem
	m.LoadInit(p)
	tbl := p.Symbols["tbl"]
	minusTwo := int64(-2)
	if m.Load(tbl) != 1 || m.Load(tbl+8) != uint64(minusTwo) || m.Load(tbl+16) != 0x10 {
		t.Error(".word init wrong")
	}
	if m.LoadF(p.Symbols["ftbl"]) != 1.5 {
		t.Error(".float init wrong")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "frobnicate r1, r2", "unknown mnemonic"},
		{"bad register", "add r1, r99, r2", "bad register"},
		{"wrong operand count", "add r1, r2", "wants 3 operands"},
		{"bad memory operand", "ld r1, r2", "bad memory operand"},
		{"unknown directive", ".quux x 1", "unknown directive"},
		{"bad word value", ".word t zz", "value"},
		{"undefined branch target", "beq r1, r2, nowhere\nhalt", "undefined label"},
		{"undefined la symbol", "la r1, nowhere\nhalt", "undefined symbol"},
		{"bad data size", ".data b notanumber", "size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestAssembleErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus r1\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v lacks line number", err)
	}
}

func TestAssembleLabelSharingLine(t *testing.T) {
	p, err := Assemble("a: b: nop\nj a\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != p.Symbols["b"] {
		t.Error("stacked labels differ")
	}
}

func TestAssembledProgramRunsOnEncoder(t *testing.T) {
	// Everything the assembler emits must be encodable.
	p, err := Assemble("li r1, 5\nadd r2, r1, r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EncodeText(); err != nil {
		t.Fatal(err)
	}
}
