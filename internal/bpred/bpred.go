// Package bpred implements the branch prediction scheme used by both
// machine models in the paper: a table of 2-bit saturating counters
// indexed by the branch PC. BMISS instructions are statically predicted
// not-taken (the paper optimises the explicit miss check for the common
// cache-hit case), so they bypass the counter table.
package bpred

import "informing/internal/isa"

// Predictor is a PC-indexed table of 2-bit saturating counters.
// Counter values 0-1 predict not-taken, 2-3 predict taken; counters start
// weakly not-taken (1).
type Predictor struct {
	counters []uint8
	mask     uint64

	// Statistics.
	Lookups    uint64
	Mispredict uint64
}

// DefaultEntries is the default table size.
const DefaultEntries = 2048

// New builds a predictor with n counters (n must be a power of two; 0
// selects DefaultEntries).
func New(n int) *Predictor {
	if n == 0 {
		n = DefaultEntries
	}
	if n&(n-1) != 0 {
		panic("bpred: table size must be a power of two")
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &Predictor{counters: c, mask: uint64(n - 1)}
}

func (p *Predictor) index(pc uint64) uint64 {
	return pc / isa.InstBytes & p.mask
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	p.Lookups++
	return p.counters[p.index(pc)] >= 2
}

// Update trains the counter with the resolved direction and records
// whether the earlier prediction (implied by the pre-update counter) was
// wrong.
func (p *Predictor) Update(pc uint64, taken bool) {
	i := p.index(pc)
	c := p.counters[i]
	if (c >= 2) != taken {
		p.Mispredict++
	}
	if taken {
		if c < 3 {
			p.counters[i] = c + 1
		}
	} else {
		if c > 0 {
			p.counters[i] = c - 1
		}
	}
}

// Accuracy returns the fraction of correct predictions so far.
func (p *Predictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.Mispredict)/float64(p.Lookups)
}
