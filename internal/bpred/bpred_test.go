package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"informing/internal/isa"
)

func TestInitialPredictionNotTaken(t *testing.T) {
	p := New(64)
	if p.Predict(0x1000) {
		t.Error("fresh counter predicts taken")
	}
}

func TestCounterSaturationAndTraining(t *testing.T) {
	p := New(64)
	pc := uint64(0x1000)
	// Train taken.
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("trained-taken branch predicted not-taken")
	}
	// A single not-taken outcome must not flip a saturated counter.
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Error("saturated counter flipped by one outcome")
	}
	p.Update(pc, false)
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Error("counter did not retrain to not-taken")
	}
}

func TestMispredictCounting(t *testing.T) {
	p := New(64)
	pc := uint64(0x2000)
	p.Update(pc, true)  // predicted NT (weak), actual T -> mispredict
	p.Update(pc, true)  // counter now 2: predicted T? pre-update counter was 2 -> predict T, correct
	p.Update(pc, false) // counter 3 -> predict T, actual NT -> mispredict
	if p.Mispredict != 2 {
		t.Errorf("mispredicts %d, want 2", p.Mispredict)
	}
}

func TestLoopBranchAccuracy(t *testing.T) {
	// A loop branch (taken N-1 times, then not taken) should reach high
	// accuracy with 2-bit counters.
	p := New(1024)
	pc := uint64(0x3000)
	for iter := 0; iter < 100; iter++ {
		for i := 0; i < 20; i++ {
			if got := p.Predict(pc); true {
				_ = got
			}
			p.Update(pc, i != 19)
		}
	}
	if acc := p.Accuracy(); acc < 0.85 {
		t.Errorf("loop-branch accuracy %.2f, want >= 0.85", acc)
	}
}

func TestAliasingUsesDistinctCounters(t *testing.T) {
	p := New(8)
	a, b := uint64(0), uint64(8*isa.InstBytes) // alias in an 8-entry table
	p.Update(a, true)
	p.Update(a, true)
	if !p.Predict(b) {
		t.Error("aliased PCs should share a counter in a tiny table")
	}
	big := New(2048)
	big.Update(a, true)
	big.Update(a, true)
	if big.Predict(uint64(16 * isa.InstBytes)) {
		t.Error("distinct PCs share state in a large table")
	}
}

func TestPredictorSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size accepted")
		}
	}()
	New(100)
}

func TestDefaultSize(t *testing.T) {
	p := New(0)
	if len(p.counters) != DefaultEntries {
		t.Errorf("default size %d", len(p.counters))
	}
}

// TestBiasedBranchConvergence: for any strongly biased branch, accuracy
// converges above the bias floor.
func TestBiasedBranchConvergence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New(256)
		pc := uint64(r.Intn(1000)) * isa.InstBytes
		correct, total := 0, 0
		for i := 0; i < 2000; i++ {
			taken := r.Float64() < 0.95
			if p.Predict(pc) == taken {
				correct++
			}
			total++
			p.Update(pc, taken)
		}
		return float64(correct)/float64(total) > 0.85
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
