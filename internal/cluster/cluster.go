// Package cluster is informd's coordinator-free cluster substrate: a
// static peer list, rendezvous (HRW) hashing from request fingerprints to
// owner nodes, and a forwarding HTTP client with per-peer health tracking
// and a code-version handshake.
//
// The design is deliberately stateless between nodes: there is no
// membership protocol, no gossip and no leader. Every node is configured
// with the same peer set (-peers) and its own identity (-self), computes
// the same fingerprint→owner mapping (rendezvous.go), and forwards
// non-owned requests to their owner over plain HTTP. A peer that cannot
// be reached is marked down for a cooldown and the caller degrades to
// computing locally — results are deterministic, so serving a non-owned
// fingerprint locally is always correct, merely a duplicated computation.
// A peer running a different simulator build (CodeVersion mismatch,
// discovered by the /healthz handshake) is refused the same way: results
// from a different build must never enter this node's responses.
//
// Everything is testable in-process: peers are URLs, so httptest servers
// are full-fidelity cluster nodes.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"informing/internal/obs"
)

// Cluster metric names. Per-peer gauges are registered as
// cluster_peer_up{peer="<url>"} (1 = reachable and version-verified,
// 0 = down, unverified or incompatible).
const (
	MetricForwards          = "cluster_forwards_total"
	MetricForwardErrors     = "cluster_forward_errors"
	MetricHandshakes        = "cluster_handshakes_total"
	MetricHandshakeFailures = "cluster_handshake_failures"
	MetricPeerUp            = "cluster_peer_up"
)

// PeerUpMetricName returns the per-peer gauge name for url.
func PeerUpMetricName(url string) string {
	return fmt.Sprintf("%s{peer=%q}", MetricPeerUp, url)
}

// Sentinel errors Forward returns without having sent the request.
var (
	// ErrPeerDown: the peer failed recently and its retry cooldown has
	// not elapsed; the caller should compute locally.
	ErrPeerDown = errors.New("cluster: peer down")
	// ErrVersionMismatch: the peer answered the handshake with a
	// different CodeVersion; its results are not valid for this build.
	ErrVersionMismatch = errors.New("cluster: peer code version mismatch")
)

// Config parameterises a Cluster.
type Config struct {
	// Self is this node's own base URL and must appear in Peers.
	Self string

	// Peers is the full static peer list (base URLs, including Self).
	// Order is irrelevant: ownership is rendezvous-hashed over the set.
	Peers []string

	// Version is the simulator code version this node serves
	// (serve.CodeVersion). The handshake refuses peers reporting a
	// different version from GET /healthz.
	Version string

	// Secret is the shared cluster token authenticating forwarded peer
	// hops. The forwarding side attaches it to every peer request
	// (serve.HeaderClusterAuth) and the receiving side refuses the
	// forwarded branch — which bypasses API-key auth and tenant
	// admission, both already performed at the ingress node — unless the
	// token matches. Required whenever the peer list has more than one
	// node: without it any client could forge the forwarded header.
	Secret string

	// MaxConnsPerPeer bounds concurrent connections to one peer
	// (0 = 8). Scatters larger than the bound queue on the pool.
	MaxConnsPerPeer int

	// RetryCooldown is how long a failed peer is skipped before the next
	// forward attempt re-probes it (0 = 2s).
	RetryCooldown time.Duration

	// HandshakeTimeout bounds the /healthz version probe of a fresh or
	// recovering peer (0 = 3s). Deliberately far shorter than a forward:
	// a healthy peer answers /healthz in milliseconds, and the probing
	// caller degrades to local compute on expiry instead of stalling a
	// scatter behind a blackholed peer.
	HandshakeTimeout time.Duration

	// Logf receives peer state transitions (nil = silent). Transitions
	// are logged once per edge, not per failed request.
	Logf func(format string, args ...any)

	// now is the health clock; tests override it.
	now func() time.Time
}

// peerState tracks one remote peer's availability. The mutex guards
// state words only — never network I/O — so Status() and concurrent
// forwards observe it without queueing behind a slow peer: the /healthz
// probe of a fresh peer runs outside the lock, and concurrent forwards
// wait on the probe channel (bounded by the probe's own short timeout)
// rather than on the mutex. The up gauge is stored inside the same
// critical sections that move verified, so gauge transitions are
// ordered with state transitions.
type peerState struct {
	url string

	mu           sync.Mutex
	verified     bool          // /healthz handshake passed since the last failure
	probe        chan struct{} // non-nil while a handshake is in flight; closed when it resolves
	incompatible bool          // last handshake reported a different CodeVersion
	downUntil    time.Time     // zero = available

	up *obs.Counter // gauge: 1 when verified and reachable
}

// Cluster is the immutable peer topology plus mutable per-peer health.
// Safe for concurrent use.
type Cluster struct {
	cfg    Config
	self   string
	peers  []string // sorted, deduplicated, includes self
	remote map[string]*peerState
	client *http.Client

	forwards          *obs.Counter
	forwardErrors     *obs.Counter
	handshakes        *obs.Counter
	handshakeFailures *obs.Counter
}

// New validates and builds a Cluster. Peer URLs are normalised only by
// trimming trailing slashes — the peer list is configuration, and two
// spellings of one node are a configuration error surfaced here (as a
// duplicate) rather than a split ownership space discovered in production.
func New(cfg Config) (*Cluster, error) {
	if cfg.Version == "" {
		return nil, fmt.Errorf("cluster: config needs a code version")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one peer")
	}
	if cfg.MaxConnsPerPeer <= 0 {
		cfg.MaxConnsPerPeer = 8
	}
	if cfg.RetryCooldown <= 0 {
		cfg.RetryCooldown = 2 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 3 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	self := strings.TrimSuffix(cfg.Self, "/")
	seen := map[string]bool{}
	var peers []string
	for _, p := range cfg.Peers {
		p = strings.TrimSuffix(p, "/")
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL")
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) URL", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", self, peers)
	}
	if len(peers) > 1 && cfg.Secret == "" {
		return nil, fmt.Errorf("cluster: config needs a shared secret (forwarded peer hops bypass per-request auth and must be authenticated)")
	}
	sort.Strings(peers)

	c := &Cluster{
		cfg:    cfg,
		self:   self,
		peers:  peers,
		remote: map[string]*peerState{},
		client: &http.Client{
			Transport: &http.Transport{
				MaxConnsPerHost:     cfg.MaxConnsPerPeer,
				MaxIdleConnsPerHost: cfg.MaxConnsPerPeer,
			},
		},
		forwards:          &obs.Counter{},
		forwardErrors:     &obs.Counter{},
		handshakes:        &obs.Counter{},
		handshakeFailures: &obs.Counter{},
	}
	for _, p := range peers {
		if p != self {
			c.remote[p] = &peerState{url: p, up: &obs.Counter{}}
		}
	}
	return c, nil
}

// Bind re-homes the cluster metrics (forward counters, per-peer up
// gauges) into reg. Call once, before serving.
func (c *Cluster) Bind(reg *obs.Registry) {
	c.forwards = reg.Counter(MetricForwards)
	c.forwardErrors = reg.Counter(MetricForwardErrors)
	c.handshakes = reg.Counter(MetricHandshakes)
	c.handshakeFailures = reg.Counter(MetricHandshakeFailures)
	for _, ps := range c.remote {
		ps.up = reg.Counter(PeerUpMetricName(ps.url))
	}
}

// Self returns this node's normalised URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns the sorted peer list (including self).
func (c *Cluster) Peers() []string {
	out := make([]string, len(c.peers))
	copy(out, c.peers)
	return out
}

// Version returns the code version the cluster was configured with.
func (c *Cluster) Version() string { return c.cfg.Version }

// Secret returns the shared cluster token forwarded hops carry.
func (c *Cluster) Secret() string { return c.cfg.Secret }

// Enabled reports whether there is anyone to forward to.
func (c *Cluster) Enabled() bool { return len(c.peers) > 1 }

// Owner returns the rendezvous owner of key among all peers (possibly
// self).
func (c *Cluster) Owner(key string) string { return OwnerOf(c.peers, key) }

// PeerStatus is one remote peer's health snapshot.
type PeerStatus struct {
	State string `json:"state"` // "up", "down", "unverified", "incompatible"
}

// Status snapshots every remote peer's health for operators (/readyz).
func (c *Cluster) Status() map[string]PeerStatus {
	now := c.cfg.now()
	out := make(map[string]PeerStatus, len(c.remote))
	for url, ps := range c.remote {
		ps.mu.Lock()
		st := "up"
		switch {
		case ps.incompatible:
			st = "incompatible"
		case ps.downUntil.After(now):
			st = "down"
		case !ps.verified:
			st = "unverified"
		}
		ps.mu.Unlock()
		out[url] = PeerStatus{State: st}
	}
	return out
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// markDown records a failure edge: the peer is skipped until the cooldown
// elapses and must re-handshake when it comes back. incompatible is true
// when the failure was a CodeVersion mismatch (Status reports the peer
// as such instead of merely down).
func (ps *peerState) markDown(c *Cluster, reason string, incompatible bool) {
	ps.mu.Lock()
	wasUp := ps.verified
	ps.verified = false
	ps.incompatible = incompatible
	ps.downUntil = c.cfg.now().Add(c.cfg.RetryCooldown)
	if ps.probe != nil {
		// Release every forward waiting on the probe; they re-check state
		// and fail fast with ErrPeerDown.
		close(ps.probe)
		ps.probe = nil
	}
	ps.up.Store(0)
	ps.mu.Unlock()
	if wasUp {
		c.logf("cluster: peer %s down: %s", ps.url, reason)
	}
}

// healthzProbe is the part of an informd /healthz body the handshake
// reads.
type healthzProbe struct {
	CodeVersion string `json:"code_version"`
}

// handshake verifies the peer serves the same CodeVersion. Called
// WITHOUT ps.mu held — it performs network I/O, bounded by its own
// HandshakeTimeout rather than the caller's forward budget — and does
// not touch peer state: the caller translates the verdict into a state
// transition under the lock.
func (c *Cluster) handshake(ctx context.Context, ps *peerState) error {
	c.handshakes.Inc()
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HandshakeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.handshakeFailures.Inc()
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		c.handshakeFailures.Inc()
		return err
	}
	if resp.StatusCode != http.StatusOK {
		c.handshakeFailures.Inc()
		return fmt.Errorf("cluster: peer %s healthz status %d", ps.url, resp.StatusCode)
	}
	var hz healthzProbe
	if err := json.Unmarshal(body, &hz); err != nil {
		c.handshakeFailures.Inc()
		return fmt.Errorf("cluster: peer %s healthz: %w", ps.url, err)
	}
	if hz.CodeVersion != c.cfg.Version {
		c.handshakeFailures.Inc()
		c.logf("cluster: peer %s serves code version %q, want %q; refusing its results",
			ps.url, hz.CodeVersion, c.cfg.Version)
		return fmt.Errorf("%w: peer %s serves %q, want %q",
			ErrVersionMismatch, ps.url, hz.CodeVersion, c.cfg.Version)
	}
	return nil
}

// ensureVerified makes sure the peer has a passing version handshake
// before a forward touches it: a peer inside its failure cooldown fails
// fast with ErrPeerDown; a fresh (or recovering) peer is probed by
// exactly one caller while concurrent forwards wait on the probe channel
// — never on the mutex, and bounded by the probe's HandshakeTimeout plus
// their own ctx — then re-check the outcome.
func (c *Cluster) ensureVerified(ctx context.Context, ps *peerState) error {
	for {
		ps.mu.Lock()
		if ps.downUntil.After(c.cfg.now()) {
			ps.mu.Unlock()
			return fmt.Errorf("%w: %s (retry cooldown)", ErrPeerDown, ps.url)
		}
		if ps.verified {
			ps.mu.Unlock()
			return nil
		}
		if ps.probe == nil {
			// Become the prober: pay the /healthz round trip outside the
			// lock, then publish the verdict.
			probe := make(chan struct{})
			ps.probe = probe
			ps.mu.Unlock()
			if err := c.handshake(ctx, ps); err != nil {
				// markDown closes the probe channel, releasing the waiters
				// into their own down-cooldown fast path.
				ps.markDown(c, err.Error(), errors.Is(err, ErrVersionMismatch))
				return err
			}
			ps.mu.Lock()
			ps.verified = true
			ps.incompatible = false
			if ps.probe == probe {
				close(probe)
				ps.probe = nil
			}
			ps.up.Store(1)
			ps.mu.Unlock()
			c.logf("cluster: peer %s up (code version verified)", ps.url)
			return nil
		}
		probe := ps.probe
		ps.mu.Unlock()
		select {
		case <-probe:
			// Probe resolved either way; loop to re-read the state.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Forward POSTs body to peer+path and returns the response status and
// body. It owns peer health: a peer inside its failure cooldown fails
// fast with ErrPeerDown; a fresh (or recovering) peer is version-checked
// against /healthz first (one probe, shared by concurrent forwards); any
// transport failure marks the peer down.
// Non-2xx statuses are returned to the caller, not treated as peer
// failures — the peer is alive and said something meaningful.
func (c *Cluster) Forward(ctx context.Context, peer, path string, body []byte, header http.Header) (int, []byte, error) {
	ps := c.remote[peer]
	if ps == nil {
		return 0, nil, fmt.Errorf("cluster: %q is not a remote peer", peer)
	}
	c.forwards.Inc()

	if err := c.ensureVerified(ctx, ps); err != nil {
		c.forwardErrors.Inc()
		return 0, nil, err
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		c.forwardErrors.Inc()
		return 0, nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		ps.markDown(c, err.Error(), false)
		c.forwardErrors.Inc()
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		ps.markDown(c, err.Error(), false)
		c.forwardErrors.Inc()
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}
