// Package cluster is informd's coordinator-free cluster substrate: a
// static peer list, rendezvous (HRW) hashing from request fingerprints to
// owner nodes, and a forwarding HTTP client with per-peer health tracking
// and a code-version handshake.
//
// The design is deliberately stateless between nodes: there is no
// membership protocol, no gossip and no leader. Every node is configured
// with the same peer set (-peers) and its own identity (-self), computes
// the same fingerprint→owner mapping (rendezvous.go), and forwards
// non-owned requests to their owner over plain HTTP. A peer that cannot
// be reached is marked down for a cooldown and the caller degrades to
// computing locally — results are deterministic, so serving a non-owned
// fingerprint locally is always correct, merely a duplicated computation.
// A peer running a different simulator build (CodeVersion mismatch,
// discovered by the /healthz handshake) is refused the same way: results
// from a different build must never enter this node's responses.
//
// Everything is testable in-process: peers are URLs, so httptest servers
// are full-fidelity cluster nodes.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"informing/internal/obs"
)

// Cluster metric names. Per-peer gauges are registered as
// cluster_peer_up{peer="<url>"} (1 = reachable and version-verified,
// 0 = down, unverified or incompatible).
const (
	MetricForwards          = "cluster_forwards_total"
	MetricForwardErrors     = "cluster_forward_errors"
	MetricHandshakes        = "cluster_handshakes_total"
	MetricHandshakeFailures = "cluster_handshake_failures"
	MetricPeerUp            = "cluster_peer_up"
)

// PeerUpMetricName returns the per-peer gauge name for url.
func PeerUpMetricName(url string) string {
	return fmt.Sprintf("%s{peer=%q}", MetricPeerUp, url)
}

// Sentinel errors Forward returns without having sent the request.
var (
	// ErrPeerDown: the peer failed recently and its retry cooldown has
	// not elapsed; the caller should compute locally.
	ErrPeerDown = errors.New("cluster: peer down")
	// ErrVersionMismatch: the peer answered the handshake with a
	// different CodeVersion; its results are not valid for this build.
	ErrVersionMismatch = errors.New("cluster: peer code version mismatch")
)

// Config parameterises a Cluster.
type Config struct {
	// Self is this node's own base URL and must appear in Peers.
	Self string

	// Peers is the full static peer list (base URLs, including Self).
	// Order is irrelevant: ownership is rendezvous-hashed over the set.
	Peers []string

	// Version is the simulator code version this node serves
	// (serve.CodeVersion). The handshake refuses peers reporting a
	// different version from GET /healthz.
	Version string

	// MaxConnsPerPeer bounds concurrent connections to one peer
	// (0 = 8). Scatters larger than the bound queue on the pool.
	MaxConnsPerPeer int

	// RetryCooldown is how long a failed peer is skipped before the next
	// forward attempt re-probes it (0 = 2s).
	RetryCooldown time.Duration

	// Logf receives peer state transitions (nil = silent). Transitions
	// are logged once per edge, not per failed request.
	Logf func(format string, args ...any)

	// now is the health clock; tests override it.
	now func() time.Time
}

// peerState tracks one remote peer's availability.
type peerState struct {
	url string

	mu           sync.Mutex
	verified     bool      // /healthz handshake passed since the last failure
	incompatible bool      // last handshake reported a different CodeVersion
	downUntil    time.Time // zero = available

	up *obs.Counter // gauge: 1 when verified and reachable
}

// Cluster is the immutable peer topology plus mutable per-peer health.
// Safe for concurrent use.
type Cluster struct {
	cfg    Config
	self   string
	peers  []string // sorted, deduplicated, includes self
	remote map[string]*peerState
	client *http.Client

	forwards          *obs.Counter
	forwardErrors     *obs.Counter
	handshakes        *obs.Counter
	handshakeFailures *obs.Counter
}

// New validates and builds a Cluster. Peer URLs are normalised only by
// trimming trailing slashes — the peer list is configuration, and two
// spellings of one node are a configuration error surfaced here (as a
// duplicate) rather than a split ownership space discovered in production.
func New(cfg Config) (*Cluster, error) {
	if cfg.Version == "" {
		return nil, fmt.Errorf("cluster: config needs a code version")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one peer")
	}
	if cfg.MaxConnsPerPeer <= 0 {
		cfg.MaxConnsPerPeer = 8
	}
	if cfg.RetryCooldown <= 0 {
		cfg.RetryCooldown = 2 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	self := strings.TrimSuffix(cfg.Self, "/")
	seen := map[string]bool{}
	var peers []string
	for _, p := range cfg.Peers {
		p = strings.TrimSuffix(p, "/")
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL")
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) URL", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", self, peers)
	}
	sort.Strings(peers)

	c := &Cluster{
		cfg:    cfg,
		self:   self,
		peers:  peers,
		remote: map[string]*peerState{},
		client: &http.Client{
			Transport: &http.Transport{
				MaxConnsPerHost:     cfg.MaxConnsPerPeer,
				MaxIdleConnsPerHost: cfg.MaxConnsPerPeer,
			},
		},
		forwards:          &obs.Counter{},
		forwardErrors:     &obs.Counter{},
		handshakes:        &obs.Counter{},
		handshakeFailures: &obs.Counter{},
	}
	for _, p := range peers {
		if p != self {
			c.remote[p] = &peerState{url: p, up: &obs.Counter{}}
		}
	}
	return c, nil
}

// Bind re-homes the cluster metrics (forward counters, per-peer up
// gauges) into reg. Call once, before serving.
func (c *Cluster) Bind(reg *obs.Registry) {
	c.forwards = reg.Counter(MetricForwards)
	c.forwardErrors = reg.Counter(MetricForwardErrors)
	c.handshakes = reg.Counter(MetricHandshakes)
	c.handshakeFailures = reg.Counter(MetricHandshakeFailures)
	for _, ps := range c.remote {
		ps.up = reg.Counter(PeerUpMetricName(ps.url))
	}
}

// Self returns this node's normalised URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns the sorted peer list (including self).
func (c *Cluster) Peers() []string {
	out := make([]string, len(c.peers))
	copy(out, c.peers)
	return out
}

// Version returns the code version the cluster was configured with.
func (c *Cluster) Version() string { return c.cfg.Version }

// Enabled reports whether there is anyone to forward to.
func (c *Cluster) Enabled() bool { return len(c.peers) > 1 }

// Owner returns the rendezvous owner of key among all peers (possibly
// self).
func (c *Cluster) Owner(key string) string { return OwnerOf(c.peers, key) }

// PeerStatus is one remote peer's health snapshot.
type PeerStatus struct {
	State string `json:"state"` // "up", "down", "unverified", "incompatible"
}

// Status snapshots every remote peer's health for operators (/readyz).
func (c *Cluster) Status() map[string]PeerStatus {
	now := c.cfg.now()
	out := make(map[string]PeerStatus, len(c.remote))
	for url, ps := range c.remote {
		ps.mu.Lock()
		st := "up"
		switch {
		case ps.incompatible:
			st = "incompatible"
		case ps.downUntil.After(now):
			st = "down"
		case !ps.verified:
			st = "unverified"
		}
		ps.mu.Unlock()
		out[url] = PeerStatus{State: st}
	}
	return out
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// markDown records a failure edge: the peer is skipped until the cooldown
// elapses and must re-handshake when it comes back.
func (ps *peerState) markDown(c *Cluster, reason string) {
	ps.mu.Lock()
	wasUp := ps.verified
	ps.verified = false
	ps.downUntil = c.cfg.now().Add(c.cfg.RetryCooldown)
	ps.mu.Unlock()
	ps.up.Store(0)
	if wasUp {
		c.logf("cluster: peer %s down: %s", ps.url, reason)
	}
}

// healthzProbe is the part of an informd /healthz body the handshake
// reads.
type healthzProbe struct {
	CodeVersion string `json:"code_version"`
}

// handshake verifies the peer serves the same CodeVersion. Called with
// ps.mu held (the first forward after a failure pays the round trip;
// concurrent forwards briefly serialise behind it, then see verified).
func (c *Cluster) handshake(ctx context.Context, ps *peerState) error {
	c.handshakes.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.handshakeFailures.Inc()
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		c.handshakeFailures.Inc()
		return err
	}
	if resp.StatusCode != http.StatusOK {
		c.handshakeFailures.Inc()
		return fmt.Errorf("cluster: peer %s healthz status %d", ps.url, resp.StatusCode)
	}
	var hz healthzProbe
	if err := json.Unmarshal(body, &hz); err != nil {
		c.handshakeFailures.Inc()
		return fmt.Errorf("cluster: peer %s healthz: %w", ps.url, err)
	}
	if hz.CodeVersion != c.cfg.Version {
		c.handshakeFailures.Inc()
		ps.incompatible = true
		c.logf("cluster: peer %s serves code version %q, want %q; refusing its results",
			ps.url, hz.CodeVersion, c.cfg.Version)
		return fmt.Errorf("%w: peer %s serves %q, want %q",
			ErrVersionMismatch, ps.url, hz.CodeVersion, c.cfg.Version)
	}
	ps.incompatible = false
	return nil
}

// Forward POSTs body to peer+path and returns the response status and
// body. It owns peer health: a peer inside its failure cooldown fails
// fast with ErrPeerDown; a fresh (or recovering) peer is version-checked
// against /healthz first; any transport failure marks the peer down.
// Non-2xx statuses are returned to the caller, not treated as peer
// failures — the peer is alive and said something meaningful.
func (c *Cluster) Forward(ctx context.Context, peer, path string, body []byte, header http.Header) (int, []byte, error) {
	ps := c.remote[peer]
	if ps == nil {
		return 0, nil, fmt.Errorf("cluster: %q is not a remote peer", peer)
	}
	c.forwards.Inc()

	ps.mu.Lock()
	if ps.downUntil.After(c.cfg.now()) {
		ps.mu.Unlock()
		c.forwardErrors.Inc()
		return 0, nil, fmt.Errorf("%w: %s (retry cooldown)", ErrPeerDown, peer)
	}
	if !ps.verified {
		if err := c.handshake(ctx, ps); err != nil {
			ps.mu.Unlock()
			ps.markDown(c, err.Error())
			c.forwardErrors.Inc()
			return 0, nil, err
		}
		ps.verified = true
		c.logf("cluster: peer %s up (code version verified)", peer)
	}
	ps.mu.Unlock()
	ps.up.Store(1)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		c.forwardErrors.Inc()
		return 0, nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		ps.markDown(c, err.Error())
		c.forwardErrors.Inc()
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		ps.markDown(c, err.Error())
		c.forwardErrors.Inc()
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}
