package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"informing/internal/obs"
)

// stubPeer is a minimal informd-shaped peer: /healthz reporting a code
// version, and an echo POST endpoint counting hits.
type stubPeer struct {
	ts      *httptest.Server
	version atomic.Value // string
	posts   atomic.Int64
}

func newStubPeer(t *testing.T, version string) *stubPeer {
	t.Helper()
	p := &stubPeer{}
	p.version.Store(version)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","code_version":%q}`, p.version.Load().(string))
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, _ *http.Request) {
		p.posts.Add(1)
		fmt.Fprint(w, `{"results":[]}`)
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

// testCluster builds a 2-node cluster (self is a fake URL that is never
// dialled; peer is the stub) with an injectable clock.
func testCluster(t *testing.T, peerURL, version string) (*Cluster, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := New(Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", peerURL},
		Version:       version,
		Secret:        "test-secret",
		RetryCooldown: 2 * time.Second,
		now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(obs.NewRegistry())
	return c, clk
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNewValidates(t *testing.T) {
	cases := []Config{
		{Version: "v", Self: "http://a:1", Peers: nil},                                                  // no peers
		{Version: "v", Self: "http://a:1", Peers: []string{"http://b:1"}},                               // self missing
		{Version: "v", Self: "http://a:1", Peers: []string{"http://a:1", "http://a:1"}, Secret: "s"},    // duplicate
		{Version: "v", Self: "http://a:1", Peers: []string{"http://a:1", "ftp://b:1"}, Secret: "s"},     // bad scheme
		{Version: "", Self: "http://a:1", Peers: []string{"http://a:1"}},                                // no version
		{Version: "v", Self: "http://a:1/", Peers: []string{"http://a:1", "http://a:1/"}, Secret: "s"},  // dup after trim
		{Version: "v", Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1"}},                 // multi-peer without secret
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) accepted invalid config", i, cfg)
		}
	}
	// Trailing slashes are normalised, not a different identity.
	c, err := New(Config{Version: "v", Self: "http://a:1/", Peers: []string{"http://a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a:1" {
		t.Fatalf("self = %q, want trimmed", c.Self())
	}
}

// TestForwardHandshakeAndPost: the first forward performs the /healthz
// version handshake, then POSTs; later forwards skip the handshake.
func TestForwardHandshakeAndPost(t *testing.T) {
	peer := newStubPeer(t, "v1")
	c, _ := testCluster(t, peer.ts.URL, "v1")

	for i := 0; i < 3; i++ {
		status, body, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", []byte(`{}`), nil)
		if err != nil || status != 200 {
			t.Fatalf("forward %d: status=%d err=%v", i, status, err)
		}
		if string(body) != `{"results":[]}` {
			t.Fatalf("forward %d body = %s", i, body)
		}
	}
	if got := peer.posts.Load(); got != 3 {
		t.Fatalf("peer saw %d posts, want 3", got)
	}
	if got := c.handshakes.Load(); got != 1 {
		t.Fatalf("handshakes = %d, want 1 (cached after the first forward)", got)
	}
	if st := c.Status()[peer.ts.URL]; st.State != "up" {
		t.Fatalf("peer state = %q, want up", st.State)
	}
}

// TestForwardVersionMismatch: a peer on a different simulator build is
// refused — its results must never enter this node's responses — and is
// reported incompatible.
func TestForwardVersionMismatch(t *testing.T) {
	peer := newStubPeer(t, "v2")
	c, clk := testCluster(t, peer.ts.URL, "v1")

	_, _, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", nil, nil)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if got := peer.posts.Load(); got != 0 {
		t.Fatalf("mismatched peer received %d posts, want 0", got)
	}
	if st := c.Status()[peer.ts.URL]; st.State != "incompatible" {
		t.Fatalf("peer state = %q, want incompatible", st.State)
	}

	// The peer restarts on the right build: after the cooldown the next
	// forward re-handshakes and succeeds.
	peer.version.Store("v1")
	clk.Advance(3 * time.Second)
	status, _, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", nil, nil)
	if err != nil || status != 200 {
		t.Fatalf("recovered forward: status=%d err=%v", status, err)
	}
	if st := c.Status()[peer.ts.URL]; st.State != "up" {
		t.Fatalf("peer state after recovery = %q, want up", st.State)
	}
}

// TestForwardPeerDownCooldown: a transport failure marks the peer down;
// until the cooldown elapses forwards fail fast with ErrPeerDown (no
// network round trip), after it the peer is re-probed.
func TestForwardPeerDownCooldown(t *testing.T) {
	peer := newStubPeer(t, "v1")
	c, clk := testCluster(t, peer.ts.URL, "v1")

	// Healthy first.
	if _, _, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", nil, nil); err != nil {
		t.Fatal(err)
	}
	peer.ts.Close() // peer dies

	if _, _, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", nil, nil); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	if st := c.Status()[peer.ts.URL]; st.State != "down" {
		t.Fatalf("peer state = %q, want down", st.State)
	}
	// Inside the cooldown: fail fast.
	if _, _, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", nil, nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	// After the cooldown: a real (failing) probe again, not ErrPeerDown.
	clk.Advance(3 * time.Second)
	if _, _, err := c.Forward(context.Background(), peer.ts.URL, "/v1/simulate", nil, nil); errors.Is(err, ErrPeerDown) {
		t.Fatalf("post-cooldown forward still failing fast: %v", err)
	}
}

// TestForwardHandshakeNonBlocking: a blackholed peer must not stall the
// rest of the node. The probing forward is bounded by HandshakeTimeout
// (not the caller's much larger forward budget), exactly one probe runs
// for any number of concurrent forwards (the rest wait on the probe
// channel, never on the mutex), and Status() — the /readyz path —
// answers from state words without touching the network.
func TestForwardHandshakeNonBlocking(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(started) })
		select { // blackhole: never answer until the probe gives up
		case <-release:
		case <-r.Context().Done():
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer close(release)

	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := New(Config{
		Self:             "http://self.invalid:1",
		Peers:            []string{"http://self.invalid:1", ts.URL},
		Version:          "v1",
		Secret:           "test-secret",
		RetryCooldown:    2 * time.Second,
		HandshakeTimeout: time.Second,
		now:              clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(obs.NewRegistry())

	errc := make(chan error, 2)
	go func() {
		_, _, err := c.Forward(context.Background(), ts.URL, "/v1/simulate", nil, nil)
		errc <- err
	}()
	<-started // the probe is now blocked inside the peer
	go func() { // a concurrent forward shares the probe, it does not start a second one
		_, _, err := c.Forward(context.Background(), ts.URL, "/v1/simulate", nil, nil)
		errc <- err
	}()

	// Status answers immediately while the probe is still in flight: a
	// readiness check never queues behind peer network I/O.
	statusc := make(chan string, 1)
	go func() { statusc <- c.Status()[ts.URL].State }()
	select {
	case st := <-statusc:
		if st != "unverified" {
			t.Errorf("mid-handshake peer state = %q, want unverified", st)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("Status() blocked behind an in-flight handshake")
	}

	// Both forwards are released by HandshakeTimeout — far below the
	// 120s forward budget — with errors, and the peer lands in its down
	// cooldown. Only one probe ever reached the peer.
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err == nil {
				t.Fatal("blackholed handshake reported success")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("forward not bounded by HandshakeTimeout")
		}
	}
	if st := c.Status()[ts.URL]; st.State != "down" {
		t.Errorf("post-timeout peer state = %q, want down", st.State)
	}
	if got := c.handshakes.Load(); got != 1 {
		t.Errorf("handshakes = %d, want 1 (concurrent forwards share one probe)", got)
	}
}

// TestForwardUnknownPeer: only configured remote peers are valid targets.
func TestForwardUnknownPeer(t *testing.T) {
	peer := newStubPeer(t, "v1")
	c, _ := testCluster(t, peer.ts.URL, "v1")
	if _, _, err := c.Forward(context.Background(), "http://stranger:1", "/x", nil, nil); err == nil {
		t.Fatal("forward to unconfigured peer succeeded")
	}
	if _, _, err := c.Forward(context.Background(), c.Self(), "/x", nil, nil); err == nil {
		t.Fatal("forward to self succeeded")
	}
}

// TestNon200Returned: an alive peer answering 429/503 is not a peer
// failure — the status reaches the caller, which decides what to do.
func TestNon200Returned(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"code_version":"v1"}`)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c, _ := testCluster(t, ts.URL, "v1")

	status, _, err := c.Forward(context.Background(), ts.URL, "/v1/simulate", nil, nil)
	if err != nil || status != http.StatusTooManyRequests {
		t.Fatalf("status=%d err=%v, want 429/nil", status, err)
	}
	if st := c.Status()[ts.URL]; st.State != "up" {
		t.Fatalf("peer state = %q, want up (non-200 is not a transport failure)", st.State)
	}
}
