package cluster

// Rendezvous (highest-random-weight, HRW) hashing maps a request
// fingerprint to its owner node without any coordinator or shared state:
// every node scores every (peer, key) pair with the same deterministic
// hash and picks the highest-scoring peer. Two properties make it the
// right fit for informd's fingerprint space:
//
//   - ownership depends only on the *set* of peers, never on list order,
//     so every node computes the same owner from the same peer set no
//     matter how its -peers flag was spelled (pinned by the reorder
//     invariance test);
//   - removing a peer remaps only the keys that peer owned (each
//     surviving peer's scores are untouched), so a node outage never
//     reshuffles the whole cache — the minimal-disruption property
//     consistent hashing is used for, without the ring bookkeeping.
//
// The score function is specified exactly, so owners can be computed
// outside this package (testdata/ownership.json pins keys computed
// independently from this definition):
//
//	score(peer, key) = big-endian uint64 of the first 8 bytes of
//	                   SHA-256(peer || 0x00 || key)
//
// The owner of key is the peer with the highest score; score ties (a
// 2^-64 event, but the spec must be total) go to the lexicographically
// smallest peer URL.

import (
	"crypto/sha256"
	"encoding/binary"
)

// score returns the HRW score of one (peer, key) pair.
func score(peer, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// OwnerOf returns the rendezvous owner of key among peers. It panics on
// an empty peer list — a cluster always contains at least self.
func OwnerOf(peers []string, key string) string {
	if len(peers) == 0 {
		panic("cluster: OwnerOf with no peers")
	}
	best := peers[0]
	bestScore := score(best, key)
	for _, p := range peers[1:] {
		s := score(p, key)
		if s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}
