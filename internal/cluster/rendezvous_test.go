package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

type ownershipFile struct {
	Peers []string `json:"peers"`
	Pins  []struct {
		Key   string `json:"key"`
		Owner string `json:"owner"`
	} `json:"pins"`
}

func loadOwnership(t *testing.T) ownershipFile {
	t.Helper()
	raw, err := os.ReadFile("testdata/ownership.json")
	if err != nil {
		t.Fatal(err)
	}
	var f ownershipFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Peers) == 0 || len(f.Pins) == 0 {
		t.Fatal("testdata/ownership.json has no peers or pins")
	}
	return f
}

// TestOwnershipPinned: fingerprint→owner assignment can never silently
// shift across refactors. The pinned owners were computed outside the Go
// process from the documented score definition, so this test also proves
// the definition in rendezvous.go is the one actually implemented.
func TestOwnershipPinned(t *testing.T) {
	f := loadOwnership(t)
	for _, pin := range f.Pins {
		if got := OwnerOf(f.Peers, pin.Key); got != pin.Owner {
			t.Errorf("OwnerOf(%q) = %q, want pinned %q — the ownership function changed; this remaps every cluster's cache",
				pin.Key, got, pin.Owner)
		}
	}
}

// TestOwnershipPeerOrderInvariant: the owner depends only on the peer
// set. Every permutation of the peer list (and the -peers flag order on
// every node) must agree on every key's owner.
func TestOwnershipPeerOrderInvariant(t *testing.T) {
	f := loadOwnership(t)
	perms := permutations(f.Peers)
	for _, pin := range f.Pins {
		want := OwnerOf(f.Peers, pin.Key)
		for _, perm := range perms {
			if got := OwnerOf(perm, pin.Key); got != want {
				t.Fatalf("OwnerOf(%q) under order %v = %q, want %q", pin.Key, perm, got, want)
			}
		}
	}
}

func permutations(in []string) [][]string {
	if len(in) <= 1 {
		return [][]string{append([]string(nil), in...)}
	}
	var out [][]string
	for i := range in {
		rest := make([]string, 0, len(in)-1)
		rest = append(rest, in[:i]...)
		rest = append(rest, in[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{in[i]}, p...))
		}
	}
	return out
}

// TestOwnershipMinimalDisruption: removing one peer remaps only the keys
// that peer owned — the HRW property the cluster's cache locality relies
// on when a node leaves the configured set.
func TestOwnershipMinimalDisruption(t *testing.T) {
	f := loadOwnership(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 512; i++ {
		key := fmt.Sprintf("%032x", rng.Uint64())
		before := OwnerOf(f.Peers, key)
		for drop := range f.Peers {
			survivors := make([]string, 0, len(f.Peers)-1)
			survivors = append(survivors, f.Peers[:drop]...)
			survivors = append(survivors, f.Peers[drop+1:]...)
			after := OwnerOf(survivors, key)
			if before != f.Peers[drop] && after != before {
				t.Fatalf("key %s: removing non-owner %s moved owner %s -> %s",
					key, f.Peers[drop], before, after)
			}
		}
	}
}

// TestOwnershipBalance: over many uniformly distributed keys each of the
// three peers owns roughly a third (HRW over a cryptographic hash is
// near-uniform; the bounds are loose enough to never flake).
func TestOwnershipBalance(t *testing.T) {
	f := loadOwnership(t)
	const n = 4096
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[OwnerOf(f.Peers, fmt.Sprintf("synthetic-%d", i))]++
	}
	for _, p := range f.Peers {
		frac := float64(counts[p]) / n
		if frac < 0.25 || frac > 0.42 {
			t.Errorf("peer %s owns %.1f%% of %d keys, want roughly a third", p, frac*100, n)
		}
	}
}

// TestOwnerOfSinglePeer: a one-node "cluster" owns everything.
func TestOwnerOfSinglePeer(t *testing.T) {
	if got := OwnerOf([]string{"http://only:1"}, "anything"); got != "http://only:1" {
		t.Fatalf("single-peer owner = %q", got)
	}
}
