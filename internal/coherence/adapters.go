package coherence

import (
	"fmt"
	"strings"

	"informing/internal/multi"
)

// Request→cell adapters for the serving layer (internal/serve): resolve
// the application and access-control-scheme names the Figure 4 tables
// print into the objects multi.Simulate consumes.

// AppNames lists the Figure 4 applications in table order.
func AppNames() []string {
	names := make([]string, 0, 5)
	for _, app := range Apps(1) {
		names = append(names, app.Name)
	}
	return names
}

// AppByName builds the named Figure 4 application for n processors.
func AppByName(name string, n int) (multi.App, error) {
	for _, app := range Apps(n) {
		if app.Name == name {
			return app, nil
		}
	}
	return multi.App{}, fmt.Errorf("coherence: unknown application %q (have %s)",
		name, strings.Join(AppNames(), ", "))
}

// SchemeNames lists the access-control schemes in Figure 4 column order.
func SchemeNames() []string {
	names := make([]string, 0, 3)
	for _, pol := range Schemes() {
		names = append(names, pol.Name())
	}
	return names
}

// SchemeByName resolves an access-control scheme by its table name
// ("reference-checking", "ecc-fault", "informing").
func SchemeByName(name string) (multi.AccessPolicy, error) {
	for _, pol := range Schemes() {
		if pol.Name() == name {
			return pol, nil
		}
	}
	return nil, fmt.Errorf("coherence: unknown access-control scheme %q (have %s)",
		name, strings.Join(SchemeNames(), ", "))
}
