package coherence

import "informing/internal/multi"

// The five parallel applications exercising the classic sharing patterns
// (see DESIGN.md: these substitute for the paper's unnamed TangoLite
// workloads and span read- and write-dominated mixes so the Figure 4
// crossover structure is preserved):
//
//	ocean   nearest-neighbour stencil: owner sweeps + boundary exchange
//	lu      producer→consumers pivot broadcast
//	barnes  read-mostly shared tree with a hot subset
//	water   migratory read-modify-write objects
//	fft     all-to-all transpose
//
// Shared lines are reused many times between ownership changes — the
// regime real parallel programs live in — so the schemes' detection costs
// (per-reference lookup vs fault vs miss handler) are exercised against a
// realistic hit/action mix. All generators are deterministic.

const (
	sharedBase  = 0x4000_0000
	privateBase = 0x8000_0000
	lineBytes   = 32
)

type stream struct {
	refs    []multi.Ref
	privPtr uint64
	proc    int
}

func newStream(proc int) *stream {
	return &stream{proc: proc, privPtr: privateBase + uint64(proc)<<20}
}

// work interleaves compute cycles and a private scratch reference (the
// local stack traffic surrounding each shared access).
func (s *stream) work(cycles int64) {
	s.refs = append(s.refs, multi.Ref{Addr: s.privPtr, Write: s.privPtr%16 == 8, Compute: cycles})
	s.privPtr += 8
	if s.privPtr >= privateBase+uint64(s.proc)<<20+(4<<10) {
		s.privPtr = privateBase + uint64(s.proc)<<20
	}
}

func (s *stream) read(line, word uint64) {
	s.refs = append(s.refs, multi.Ref{
		Addr: sharedBase + line*lineBytes + word%4*8, Shared: true, Compute: 2})
}

func (s *stream) write(line, word uint64) {
	s.refs = append(s.refs, multi.Ref{
		Addr: sharedBase + line*lineBytes + word%4*8, Write: true, Shared: true, Compute: 2})
}

// sweepLine touches every word of a line: reads it, computes, writes part
// of it back — the inner-loop body of an owner-computes phase.
func (s *stream) sweepLine(line uint64, writes int) {
	for w := uint64(0); w < 4; w++ {
		s.read(line, w)
		s.work(2)
	}
	for w := 0; w < writes; w++ {
		s.write(line, uint64(w)*2)
		s.work(2)
	}
}

func phase(procs int, gen func(p int, s *stream)) [][]multi.Ref {
	out := make([][]multi.Ref, procs)
	for p := 0; p < procs; p++ {
		s := newStream(p)
		gen(p, s)
		out[p] = s.refs
	}
	return out
}

// Ocean is a nearest-neighbour stencil: each processor repeatedly sweeps
// its own strip and reads both neighbours' boundary lines each iteration.
// The boundary lines sit at the end of the strip, so after a neighbour
// reads them (downgrading them to READONLY) the ECC scheme write-faults on
// the whole surrounding page during the next sweep.
func Ocean(procs int) multi.App {
	const strip = 256   // lines per processor (8 KB, two pages, L1-resident)
	const boundary = 32 // trailing lines read by neighbours
	var phases [][][]multi.Ref
	for iter := 0; iter < 5; iter++ {
		phases = append(phases, phase(procs, func(p int, s *stream) {
			own := uint64(p) * strip
			for sweep := 0; sweep < 5; sweep++ {
				for l := uint64(0); l < strip; l++ {
					s.sweepLine(own+l, 2)
				}
			}
			for _, nb := range []int{(p + 1) % procs, (p + procs - 1) % procs} {
				nbase := uint64(nb)*strip + strip - boundary
				for l := uint64(0); l < boundary; l++ {
					for w := uint64(0); w < 4; w++ {
						s.read(nbase+l, w)
						s.work(3)
					}
				}
			}
		}))
	}
	return multi.App{Name: "ocean", Phases: phases}
}

// LU is pivot broadcasting: in each phase one producer rewrites the pivot
// block — whose pages are covered with READONLY copies from the previous
// round's consumers — then every processor reads it repeatedly while
// updating its own trailing block.
func LU(procs int) multi.App {
	const pivot = 64
	const trailing = 64
	var phases [][][]multi.Ref
	for k := 0; k < 10; k++ {
		owner := k % procs
		pbase := uint64(procs)*trailing + uint64(k%2)*pivot
		// Factorisation phase: the owner rewrites the pivot block (whose
		// pages are covered with READONLY consumer copies from an earlier
		// round); everyone else runs a short local pass.
		phases = append(phases, phase(procs, func(p int, s *stream) {
			if p == owner {
				for l := uint64(0); l < pivot; l++ {
					s.sweepLine(pbase+l, 2)
				}
				return
			}
			own := uint64(p) * trailing
			for l := uint64(0); l < trailing; l++ {
				s.sweepLine(own+l, 1)
			}
		}))
		// Update phase: every processor reads the pivot repeatedly while
		// updating its own trailing block.
		phases = append(phases, phase(procs, func(p int, s *stream) {
			own := uint64(p) * trailing
			for pass := 0; pass < 5; pass++ {
				for l := uint64(0); l < trailing; l++ {
					s.read(pbase+l%pivot, l)
					s.work(3)
					s.sweepLine(own+l, 1)
				}
			}
		}))
	}
	return multi.App{Name: "lu", Phases: phases}
}

// Barnes is read-mostly: processor 0 builds a shared tree, then everyone
// repeatedly reads pseudo-random tree lines — most hits going to a hot
// L1-resident subset — with only occasional updates to per-processor body
// blocks. The per-reference tax of reference checking dominates here,
// while ECC and informing are both nearly free.
func Barnes(procs int) multi.App {
	const tree = 1024
	const hot = 192 // L1-resident hot subset
	const bodies = 16
	var phases [][][]multi.Ref
	phases = append(phases, phase(procs, func(p int, s *stream) {
		if p != 0 {
			return
		}
		for l := uint64(0); l < tree; l++ {
			s.write(l, 0)
			s.write(l, 2)
			s.work(2)
		}
	}))
	for iter := 0; iter < 4; iter++ {
		phases = append(phases, phase(procs, func(p int, s *stream) {
			x := uint64(p*2654435761) + uint64(iter)*97 + 1
			bbase := uint64(tree) + uint64(p)*bodies
			for n := 0; n < 6000; n++ {
				x = x*6364136223846793005 + 1442695040888963407
				line := (x >> 33) % hot
				if x>>8%8 == 0 { // 1 in 8 reads goes to the cold tree
					line = (x >> 33) % tree
				}
				s.read(line, x>>50)
				s.work(5)
				if n%250 == 0 {
					s.write(bbase+uint64(n/250)%bodies, 0)
				}
			}
		}))
	}
	return multi.App{Name: "barnes", Phases: phases}
}

// Water is migratory sharing: each phase rotates ownership of molecule
// blocks; a molecule is read-modify-written over several passes before it
// moves on, so each migration amortises over many accesses. ECC pays an
// invalid-read fault plus a write fault per migration; informing pays one
// miss handler.
func Water(procs int) multi.App {
	const perProc = 48
	var phases [][][]multi.Ref
	for iter := 0; iter < 8; iter++ {
		phases = append(phases, phase(procs, func(p int, s *stream) {
			base := uint64((p+iter)%procs) * perProc
			for l := uint64(0); l < perProc; l++ {
				for pass := 0; pass < 10; pass++ {
					s.sweepLine(base+l, 2)
				}
			}
		}))
	}
	return multi.App{Name: "water", Phases: phases}
}

// FFT is an all-to-all transpose: each round every processor rewrites its
// own block, synchronises, then reads a slice of every other processor's
// block several times while accumulating locally.
func FFT(procs int) multi.App {
	const block = 128
	var phases [][][]multi.Ref
	for iter := 0; iter < 4; iter++ {
		phases = append(phases, phase(procs, func(p int, s *stream) {
			own := uint64(p) * block
			for l := uint64(0); l < block; l++ {
				s.sweepLine(own+l, 2)
			}
		}))
		phases = append(phases, phase(procs, func(p int, s *stream) {
			slice := uint64(block / procs)
			for q := 0; q < procs; q++ {
				qbase := uint64(q) * block
				off := uint64(p) * slice
				for pass := 0; pass < 6; pass++ {
					for l := uint64(0); l < slice; l++ {
						for w := uint64(0); w < 4; w++ {
							s.read(qbase+off+l, w)
							s.work(3)
						}
					}
				}
			}
		}))
	}
	return multi.App{Name: "fft", Phases: phases}
}

// Apps returns the five applications for n processors.
func Apps(n int) []multi.App {
	return []multi.App{Ocean(n), LU(n), Barnes(n), Water(n), FFT(n)}
}
