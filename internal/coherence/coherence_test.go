package coherence

import (
	"reflect"
	"strings"
	"testing"

	"informing/internal/multi"
)

func TestDefaultCostsMatchTable2(t *testing.T) {
	c := DefaultCosts()
	if c.RefCheckLookup != 18 {
		t.Errorf("ref-check lookup %d, want 18", c.RefCheckLookup)
	}
	if c.ECCReadFault != 250 || c.ECCWriteFault != 230 {
		t.Errorf("ECC faults %d/%d, want 250/230", c.ECCReadFault, c.ECCWriteFault)
	}
	if c.InformingLookup != 33 {
		t.Errorf("informing lookup %d, want 33", c.InformingLookup)
	}
}

func TestDetectCostMatrix(t *testing.T) {
	c := DefaultCosts()
	ref, ecc, inf := RefCheck{c}, ECC{c}, Informing{c}
	cfg := multi.DefaultConfig()

	cases := []struct {
		name          string
		ev            multi.AccessEvent
		ref, ecc, inf int64
	}{
		{
			name: "read hit",
			ev:   multi.AccessEvent{State: multi.ReadOnly, Sufficient: true, L1Hit: true},
			ref:  18, ecc: 0, inf: 0,
		},
		{
			name: "read capacity miss (still permitted)",
			ev:   multi.AccessEvent{State: multi.ReadOnly, Sufficient: true, L1Hit: false},
			ref:  18, ecc: 0, inf: 33,
		},
		{
			name: "read to invalid block",
			ev:   multi.AccessEvent{State: multi.Invalid},
			ref:  18, ecc: 250, inf: 33,
		},
		{
			name: "write hit, clean page",
			ev:   multi.AccessEvent{Write: true, State: multi.ReadWrite, Sufficient: true, L1Hit: true},
			ref:  18, ecc: 0, inf: 0,
		},
		{
			name: "write hit on page with READONLY data",
			ev: multi.AccessEvent{Write: true, State: multi.ReadWrite, Sufficient: true,
				L1Hit: true, PageHasReadonly: true},
			ref: 18, ecc: 230, inf: 0,
		},
		{
			name: "write to READONLY line (upgrade)",
			ev: multi.AccessEvent{Write: true, State: multi.ReadOnly,
				PageHasReadonly: true},
			ref: 18, ecc: 230, inf: 43,
		},
		{
			name: "write to invalid line",
			ev:   multi.AccessEvent{Write: true, State: multi.Invalid},
			ref:  18, ecc: 230, inf: 33,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ref.DetectCost(tc.ev, cfg); got != tc.ref {
				t.Errorf("ref-check: %d, want %d", got, tc.ref)
			}
			if got := ecc.DetectCost(tc.ev, cfg); got != tc.ecc {
				t.Errorf("ecc: %d, want %d", got, tc.ecc)
			}
			if got := inf.DetectCost(tc.ev, cfg); got != tc.inf {
				t.Errorf("informing: %d, want %d", got, tc.inf)
			}
		})
	}
}

func TestAppsWellFormed(t *testing.T) {
	const procs = 8
	for _, app := range Apps(procs) {
		if app.Name == "" {
			t.Error("unnamed app")
		}
		if len(app.Phases) == 0 {
			t.Errorf("%s: no phases", app.Name)
		}
		var shared, private uint64
		for k, phase := range app.Phases {
			if len(phase) != procs {
				t.Fatalf("%s phase %d: %d streams, want %d", app.Name, k, len(phase), procs)
			}
			for _, refs := range phase {
				for _, r := range refs {
					if r.Shared {
						shared++
						if r.Addr < sharedBase || r.Addr >= privateBase {
							t.Fatalf("%s: shared ref at %#x outside shared region", app.Name, r.Addr)
						}
					} else {
						private++
					}
					if r.Compute < 0 {
						t.Fatalf("%s: negative compute", app.Name)
					}
				}
			}
		}
		if shared == 0 {
			t.Errorf("%s: no shared references", app.Name)
		}
		if private == 0 {
			t.Errorf("%s: no private references", app.Name)
		}
	}
}

func TestAppsDeterministic(t *testing.T) {
	a := Water(4)
	b := Water(4)
	for k := range a.Phases {
		for p := range a.Phases[k] {
			if len(a.Phases[k][p]) != len(b.Phases[k][p]) {
				t.Fatal("app generation nondeterministic")
			}
			for i := range a.Phases[k][p] {
				if a.Phases[k][p][i] != b.Phases[k][p][i] {
					t.Fatal("app refs nondeterministic")
				}
			}
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	// Each processor's private scratch must not collide with another's.
	app := Ocean(4)
	seen := map[uint64]int{}
	for _, phase := range app.Phases {
		for p, refs := range phase {
			for _, r := range refs {
				if r.Shared {
					continue
				}
				if prev, ok := seen[r.Addr]; ok && prev != p {
					t.Fatalf("private addr %#x used by procs %d and %d", r.Addr, prev, p)
				}
				seen[r.Addr] = p
			}
		}
	}
}

func TestFigure4InformingAlwaysWins(t *testing.T) {
	cfg := multi.DefaultConfig()
	cfg.Processors = 8 // smaller for test speed
	rows, speedup, err := Figure4(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d apps", len(rows))
	}
	for _, row := range rows {
		inf := row.Norm[Informing{}.Name()]
		if inf != 1.0 {
			t.Errorf("%s: informing not the normalisation base: %f", row.App, inf)
		}
		for _, other := range []string{RefCheck{}.Name(), ECC{}.Name()} {
			if row.Norm[other] < 1.0 {
				t.Errorf("%s: %s beat informing (%.3f) — the paper's headline result is informing always wins",
					row.App, other, row.Norm[other])
			}
		}
	}
	for name, s := range speedup {
		if s <= 0 {
			t.Errorf("average speedup vs %s is %.3f, want positive", name, s)
		}
	}
}

// TestFigure4ParallelMatchesSequential pins the sharded case study to the
// sequential reference: rows, per-scheme results and headline speedups
// must be identical at any worker count.
func TestFigure4ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker-count differential sweep is heavy")
	}
	cfg := multi.DefaultConfig()
	cfg.Processors = 8
	seqRows, seqSpeedup, err := Figure4(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3, 8} {
		rows, speedup, err := Figure4(cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seqRows, rows) {
			t.Errorf("workers=%d: rows differ from sequential", workers)
		}
		if !reflect.DeepEqual(seqSpeedup, speedup) {
			t.Errorf("workers=%d: speedups differ: %v vs %v", workers, speedup, seqSpeedup)
		}
	}
}

func TestFigure4Formatting(t *testing.T) {
	cfg := multi.DefaultConfig()
	cfg.Processors = 4
	rows, speedup, err := Figure4(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFigure4(rows, speedup)
	for _, want := range []string{"ocean", "water", "informing", "ecc-fault", "average slowdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
	detail := FormatFigure4Detail(rows)
	if !strings.Contains(detail, "protocol=") {
		t.Error("detail output missing breakdowns")
	}
}

func TestSchemesList(t *testing.T) {
	s := Schemes()
	if len(s) != 3 {
		t.Fatalf("%d schemes", len(s))
	}
	names := map[string]bool{}
	for _, pol := range s {
		names[pol.Name()] = true
	}
	for _, want := range []string{"reference-checking", "ecc-fault", "informing"} {
		if !names[want] {
			t.Errorf("missing scheme %q", want)
		}
	}
}
