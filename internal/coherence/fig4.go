package coherence

import (
	"fmt"
	"strings"

	"informing/internal/multi"
)

// Fig4Row is one application's result across the three schemes.
type Fig4Row struct {
	App     string
	Results map[string]multi.Result // by scheme name
	Norm    map[string]float64      // execution time / informing execution time
}

// Figure4 runs every application under every access-control scheme and
// returns rows in application order plus the paper's two headline
// averages: how much faster informing is than the ECC and
// reference-checking schemes (paper: 18% and 24%).
//
// On error — including cancellation through cfg.Govern.Ctx — the rows
// completed so far are returned alongside it.
func Figure4(cfg multi.Config) ([]Fig4Row, map[string]float64, error) {
	var rows []Fig4Row
	speedup := map[string]float64{}
	counts := 0
	for _, app := range Apps(cfg.Processors) {
		row := Fig4Row{App: app.Name, Results: map[string]multi.Result{}, Norm: map[string]float64{}}
		for _, pol := range Schemes() {
			r, err := multi.Simulate(app, pol, cfg)
			if err != nil {
				return rows, nil, fmt.Errorf("%s/%s: %w", app.Name, pol.Name(), err)
			}
			row.Results[pol.Name()] = r
		}
		inf := row.Results[Informing{}.Name()]
		if inf.Cycles == 0 {
			return rows, nil, fmt.Errorf("%s: informing run produced zero cycles", app.Name)
		}
		for name, r := range row.Results {
			row.Norm[name] = float64(r.Cycles) / float64(inf.Cycles)
		}
		rows = append(rows, row)
		counts++
		for _, name := range []string{RefCheck{}.Name(), ECC{}.Name()} {
			speedup[name] += row.Norm[name] - 1
		}
	}
	for name := range speedup {
		speedup[name] /= float64(counts)
	}
	return rows, speedup, nil
}

// FormatFigure4 renders the rows as the paper's Figure 4 (execution time
// normalised to the informing scheme).
func FormatFigure4(rows []Fig4Row, speedup map[string]float64) string {
	var sb strings.Builder
	title := "Figure 4: normalized execution times for three access control methods"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	sb.WriteString("(normalized to the informing-memory-operations scheme; lower is better)\n\n")
	names := []string{RefCheck{}.Name(), ECC{}.Name(), Informing{}.Name()}
	fmt.Fprintf(&sb, "%-8s", "app")
	for _, n := range names {
		fmt.Fprintf(&sb, " %20s", n)
	}
	sb.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-8s", row.App)
		for _, n := range names {
			fmt.Fprintf(&sb, " %20.3f", row.Norm[n])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "\naverage slowdown vs informing: reference-checking %+.1f%%, ecc %+.1f%%\n",
		100*speedup[RefCheck{}.Name()], 100*speedup[ECC{}.Name()])
	sb.WriteString("(paper: informing is on average 24% faster than reference-checking and 18% faster than ECC)\n")
	return sb.String()
}

// FormatFigure4Detail prints the per-scheme cycle breakdowns.
func FormatFigure4Detail(rows []Fig4Row) string {
	var sb strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&sb, "%s:\n", row.App)
		for _, name := range []string{RefCheck{}.Name(), ECC{}.Name(), Informing{}.Name()} {
			r := row.Results[name]
			fmt.Fprintf(&sb,
				"  %-20s cycles=%-10d detect=%-9d protocol=%-10d mem=%-8d actions=%d invals=%d\n",
				name, r.Cycles, r.DetectCycles, r.ProtocolCycles, r.MemoryCycles,
				r.CoherenceActions, r.Invalidations)
		}
	}
	return sb.String()
}
