package coherence

import (
	"context"
	"fmt"
	"strings"

	"informing/internal/multi"
	"informing/internal/sched"
)

// Fig4Row is one application's result across the three schemes.
type Fig4Row struct {
	App     string
	Results map[string]multi.Result // by scheme name
	Norm    map[string]float64      // execution time / informing execution time
}

// Figure4 runs every application under every access-control scheme and
// returns rows in application order plus the paper's two headline
// averages: how much faster informing is than the ECC and
// reference-checking schemes (paper: 18% and 24%).
//
// The (application, scheme) cells are independent and run on a
// workers-bounded pool (internal/sched; <= 0 selects GOMAXPROCS, 1 is the
// sequential reference path). Each application's reference streams are
// generated once and shared read-only by its three scheme simulations;
// normalisation against the informing run happens after the join. When a
// fault injector is configured the sweep is forced sequential, because
// the injector's seeded rule state is shared mutable across simulations
// and a parallel sweep would make fault placement nondeterministic.
//
// On error — including cancellation through cfg.Govern.Ctx — the rows of
// the applications completed before the first failing cell are returned
// alongside it.
func Figure4(cfg multi.Config, workers int) ([]Fig4Row, map[string]float64, error) {
	if cfg.Faults != nil {
		workers = 1
	}
	apps := Apps(cfg.Processors)
	pols := Schemes()

	type cell struct {
		app multi.App
		pol multi.AccessPolicy
	}
	var cells []cell
	for _, app := range apps {
		for _, pol := range pols {
			cells = append(cells, cell{app: app, pol: pol})
		}
	}
	jobs := make([]sched.Job[multi.Result], len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func(ctx context.Context) (multi.Result, error) {
			runCfg := cfg
			runCfg.Govern.Ctx = ctx
			r, err := multi.Simulate(c.app, c.pol, runCfg)
			if err != nil {
				return multi.Result{}, fmt.Errorf("%s/%s: %w", c.app.Name, c.pol.Name(), err)
			}
			return r, nil
		}
	}
	results, err := sched.Map(cfg.Govern.Ctx, workers, jobs)

	// Join: group the flat results back into per-application rows and
	// normalise against each row's informing run. On a partial sweep only
	// the applications whose every scheme completed become rows.
	var rows []Fig4Row
	for a := 0; a+len(pols) <= len(results); a += len(pols) {
		row := Fig4Row{App: apps[a/len(pols)].Name,
			Results: map[string]multi.Result{}, Norm: map[string]float64{}}
		for p, pol := range pols {
			row.Results[pol.Name()] = results[a+p]
		}
		inf := row.Results[Informing{}.Name()]
		if inf.Cycles == 0 {
			return rows, nil, fmt.Errorf("%s: informing run produced zero cycles", row.App)
		}
		for name, r := range row.Results {
			row.Norm[name] = float64(r.Cycles) / float64(inf.Cycles)
		}
		rows = append(rows, row)
	}
	if err != nil {
		return rows, nil, err
	}

	speedup := map[string]float64{}
	for _, row := range rows {
		for _, name := range []string{RefCheck{}.Name(), ECC{}.Name()} {
			speedup[name] += row.Norm[name] - 1
		}
	}
	for name := range speedup {
		speedup[name] /= float64(len(rows))
	}
	return rows, speedup, nil
}

// FormatFigure4 renders the rows as the paper's Figure 4 (execution time
// normalised to the informing scheme).
func FormatFigure4(rows []Fig4Row, speedup map[string]float64) string {
	var sb strings.Builder
	title := "Figure 4: normalized execution times for three access control methods"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	sb.WriteString("(normalized to the informing-memory-operations scheme; lower is better)\n\n")
	names := []string{RefCheck{}.Name(), ECC{}.Name(), Informing{}.Name()}
	fmt.Fprintf(&sb, "%-8s", "app")
	for _, n := range names {
		fmt.Fprintf(&sb, " %20s", n)
	}
	sb.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-8s", row.App)
		for _, n := range names {
			fmt.Fprintf(&sb, " %20.3f", row.Norm[n])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "\naverage slowdown vs informing: reference-checking %+.1f%%, ecc %+.1f%%\n",
		100*speedup[RefCheck{}.Name()], 100*speedup[ECC{}.Name()])
	sb.WriteString("(paper: informing is on average 24% faster than reference-checking and 18% faster than ECC)\n")
	return sb.String()
}

// FormatFigure4Detail prints the per-scheme cycle breakdowns.
func FormatFigure4Detail(rows []Fig4Row) string {
	var sb strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&sb, "%s:\n", row.App)
		for _, name := range []string{RefCheck{}.Name(), ECC{}.Name(), Informing{}.Name()} {
			r := row.Results[name]
			fmt.Fprintf(&sb,
				"  %-20s cycles=%-10d detect=%-9d protocol=%-10d mem=%-8d actions=%d invals=%d\n",
				name, r.Cycles, r.DetectCycles, r.ProtocolCycles, r.MemoryCycles,
				r.CoherenceActions, r.Invalidations)
		}
	}
	return sb.String()
}
