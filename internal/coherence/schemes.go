// Package coherence implements the paper's §4.3 case study: enforcing
// cache coherence with fine-grained access control on the internal/multi
// substrate. Three access-control methods are compared with the exact
// per-event costs of Table 2:
//
//   - reference checking (Blizzard-S-like): an 18-cycle protection lookup
//     on every potentially-shared reference;
//   - ECC faults (Blizzard-E-like): no cost on permitted accesses, but 250
//     cycles for a read to an INVALID block and 230 cycles for any write
//     to a block on a page holding READONLY data;
//   - informing memory operations: a 33-cycle lookup (6-cycle pipeline
//     delay + 9 handler cycles to classify the access + 18-cycle table
//     lookup) executed only when the reference misses the primary cache.
//
// All three share the same protocol-action cost (25-cycle state changes,
// 900-cycle one-way messages), charged by the engine.
package coherence

import "informing/internal/multi"

// Costs holds the Table 2 per-scheme detection parameters.
type Costs struct {
	RefCheckLookup   int64 // reference-checking: every shared ref
	ECCReadFault     int64 // ECC: read to an INVALID block
	ECCWriteFault    int64 // ECC: write to a page with READONLY data
	InformingLookup  int64 // informing: handler entry + classification + lookup
	InformingUpgrade int64 // informing: extra L1-miss cost of write-to-READONLY
}

// DefaultCosts returns Table 2's values. InformingUpgrade reflects that a
// READONLY line cannot be held writable, so a store to it takes an L1 miss
// before the handler runs.
func DefaultCosts() Costs {
	return Costs{
		RefCheckLookup:   18,
		ECCReadFault:     250,
		ECCWriteFault:    230,
		InformingLookup:  33,
		InformingUpgrade: 10,
	}
}

// RefCheck is the Blizzard-S-like scheme.
type RefCheck struct{ C Costs }

// Name implements multi.AccessPolicy.
func (RefCheck) Name() string { return "reference-checking" }

// DetectCost implements multi.AccessPolicy: every potentially-shared
// reference pays the software lookup, hit or miss.
func (s RefCheck) DetectCost(multi.AccessEvent, multi.Config) int64 {
	return s.C.RefCheckLookup
}

// ECC is the Blizzard-E-like scheme.
type ECC struct{ C Costs }

// Name implements multi.AccessPolicy.
func (ECC) Name() string { return "ecc-fault" }

// DetectCost implements multi.AccessPolicy. Permitted reads are free (the
// ECC bits are valid); reads to INVALID blocks take an ECC fault; writes
// fault whenever the surrounding page holds any READONLY data, because the
// page must be write-protected to catch stores to those blocks — the
// scheme's characteristic false-sharing cost.
func (s ECC) DetectCost(ev multi.AccessEvent, _ multi.Config) int64 {
	if ev.Write {
		if !ev.Sufficient || ev.PageHasReadonly {
			return s.C.ECCWriteFault
		}
		return 0
	}
	if !ev.Sufficient {
		return s.C.ECCReadFault
	}
	return 0
}

// Informing is the paper's scheme: detection runs in the informing miss
// handler, so it costs nothing on primary-cache hits.
type Informing struct{ C Costs }

// Name implements multi.AccessPolicy.
func (Informing) Name() string { return "informing" }

// DetectCost implements multi.AccessPolicy. The handler runs on every
// primary-cache miss to a potentially-shared line (including plain
// capacity misses, where the lookup concludes the access is fine). Stores
// to READONLY lines additionally pay the forced L1 miss that makes them
// visible to the mechanism.
func (s Informing) DetectCost(ev multi.AccessEvent, _ multi.Config) int64 {
	if ev.Sufficient && ev.L1Hit {
		return 0
	}
	cost := s.C.InformingLookup
	if ev.Write && ev.State == multi.ReadOnly {
		// Write-to-READONLY upgrade surfaces as a store miss.
		cost += s.C.InformingUpgrade
	}
	return cost
}

// Schemes returns the three policies in the paper's presentation order.
func Schemes() []multi.AccessPolicy {
	c := DefaultCosts()
	return []multi.AccessPolicy{RefCheck{c}, ECC{c}, Informing{c}}
}
