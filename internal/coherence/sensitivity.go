package coherence

import (
	"fmt"
	"strings"

	"informing/internal/multi"
)

// SensitivityPoint is one configuration of the §4.3.2 sensitivity study.
type SensitivityPoint struct {
	MsgLatency int64
	L1KB       int
	// Advantage is the average execution-time advantage of the informing
	// scheme over each competitor (competitor/informing - 1, averaged
	// over the applications).
	Advantage map[string]float64
}

// Sensitivity reproduces the paper's §4.3.2 observation: "either smaller
// network latencies or larger primary cache sizes tend to improve the
// relative performance of the informing memory implementation". It sweeps
// one-way message latency and L1 size around the Table 2 operating point
// and reports the informing scheme's average advantage at each point.
//
// The sweep points run in order; workers bounds the (application, scheme)
// fan-out inside each point's Figure4 run, so the worker pool is never
// nested.
func Sensitivity(base multi.Config, msgLatencies []int64, l1KBs []int, workers int) ([]SensitivityPoint, error) {
	var out []SensitivityPoint
	for _, lat := range msgLatencies {
		for _, kb := range l1KBs {
			cfg := base
			cfg.MsgLatency = lat
			cfg.BarrierCost = 2 * lat
			cfg.L1.SizeBytes = kb << 10
			_, speedup, err := Figure4(cfg, workers)
			if err != nil {
				return nil, fmt.Errorf("sensitivity lat=%d l1=%dKB: %w", lat, kb, err)
			}
			out = append(out, SensitivityPoint{
				MsgLatency: lat,
				L1KB:       kb,
				Advantage:  speedup,
			})
		}
	}
	return out, nil
}

// FormatSensitivity renders the sweep as a table.
func FormatSensitivity(points []SensitivityPoint) string {
	var sb strings.Builder
	title := "Sensitivity (§4.3.2): informing advantage vs message latency and L1 size"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "%-10s %-8s %22s %22s\n", "msg-lat", "L1", "vs ref-check", "vs ECC")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-10d %-8s %21.1f%% %21.1f%%\n",
			p.MsgLatency, fmt.Sprintf("%dKB", p.L1KB),
			100*p.Advantage[RefCheck{}.Name()], 100*p.Advantage[ECC{}.Name()])
	}
	return sb.String()
}
