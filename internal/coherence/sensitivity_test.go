package coherence

import (
	"strings"
	"testing"

	"informing/internal/multi"
)

// TestSensitivityTrends pins the paper's §4.3.2 observation: the informing
// scheme's relative advantage grows with smaller network latencies and
// with larger primary caches.
func TestSensitivityTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is slow")
	}
	base := multi.DefaultConfig()
	base.Processors = 8 // keep the sweep quick
	points, err := Sensitivity(base, []int64{300, 1800}, []int{4, 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	idx := map[[2]int64]SensitivityPoint{}
	for _, p := range points {
		idx[[2]int64{p.MsgLatency, int64(p.L1KB)}] = p
	}
	for _, scheme := range []string{RefCheck{}.Name(), ECC{}.Name()} {
		// Smaller latency helps, at both cache sizes.
		for _, kb := range []int64{4, 64} {
			lo := idx[[2]int64{300, kb}].Advantage[scheme]
			hi := idx[[2]int64{1800, kb}].Advantage[scheme]
			if lo <= hi {
				t.Errorf("%s @ %dKB: advantage %.3f at 300cy <= %.3f at 1800cy",
					scheme, kb, lo, hi)
			}
		}
		// Larger L1 helps, at both latencies.
		for _, lat := range []int64{300, 1800} {
			big := idx[[2]int64{lat, 64}].Advantage[scheme]
			small := idx[[2]int64{lat, 4}].Advantage[scheme]
			if big <= small {
				t.Errorf("%s @ %dcy: advantage %.3f at 64KB <= %.3f at 4KB",
					scheme, lat, big, small)
			}
		}
	}
	out := FormatSensitivity(points)
	if !strings.Contains(out, "vs ref-check") || !strings.Contains(out, "64KB") {
		t.Error("sensitivity table malformed")
	}
}
