package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"informing/internal/asm"
	"informing/internal/interp"
	"informing/internal/isa"
)

// Cross-engine differential fuzz (DESIGN.md §14). The block-compiled
// front end must be observationally identical to per-instruction
// stepping: same stats.Run, same final architectural state, for every
// machine model and informing scheme. Seeded random programs cover block
// shapes the curated workloads do not — odd-length blocks, branches into
// block interiors, informing redirects mid-block, back-to-back
// terminators, serializing counter reads.

// fuzzProgram builds a seeded random terminating program: a bounded
// counting loop whose body mixes ALU ops, plain and informing memory
// references, forward conditional branches, BMISS probes and counter
// reads, plus a miss handler armed for the trap schemes.
func fuzzProgram(seed int64) *isa.Program {
	r := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder()
	buf := b.Alloc("buf", 1<<14)

	b.MtmharLabel("handler") // armed; only ModeTrap acts on it
	for i := 1; i <= 8; i++ {
		b.LoadImm(isa.R(i), int64(r.Uint32()>>8)+1)
	}
	b.LoadImm(isa.R(10), int64(30+r.Intn(90))) // loop counter
	b.LoadImm(isa.R(11), int64(buf))

	alu := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem, isa.And,
		isa.Or, isa.Xor, isa.Sll, isa.Srl, isa.Slt, isa.Sltu}
	reg := func() isa.Reg { return isa.R(1 + r.Intn(8)) }
	off := func() int64 { return int64(r.Intn(1<<13) &^ 7) }

	b.Label("loop")
	for j, body := 0, 8+r.Intn(24); j < body; j++ {
		switch r.Intn(12) {
		case 0, 1, 2, 3:
			b.Emit(isa.Inst{Op: alu[r.Intn(len(alu))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 4, 5:
			b.Ld(reg(), isa.R(11), off(), r.Intn(2) == 0)
		case 6:
			b.St(reg(), isa.R(11), off(), r.Intn(2) == 0)
		case 7:
			b.Fld(isa.R(1+r.Intn(8)), isa.R(11), off(), false)
		case 8:
			b.Prefetch(isa.R(11), off())
		case 9: // forward conditional branch over a short run
			skip := b.Unique("skip")
			b.Blt(reg(), reg(), skip)
			for k, n := 0, 1+r.Intn(3); k < n; k++ {
				b.Emit(isa.Inst{Op: alu[r.Intn(len(alu))], Rd: reg(), Rs1: reg(), Rs2: reg()})
			}
			b.Label(skip)
		case 10: // BMISS probe of the preceding reference
			bm := b.Unique("bm")
			b.Ld(reg(), isa.R(11), off(), true)
			b.Bmiss(isa.R(15), bm)
			b.Add(isa.R(16), isa.R(16), isa.R(1))
			b.Label(bm)
		case 11: // serializing miss-counter read
			b.Mfcnt(isa.R(17))
		}
	}
	b.Addi(isa.R(10), isa.R(10), -1)
	b.Bne(isa.R(10), isa.R0, "loop")
	b.Halt()

	b.Label("handler")
	b.Add(isa.R(20), isa.R(20), isa.R(2))
	b.Xor(isa.R(21), isa.R(21), isa.R(20))
	b.Rfmh()
	return b.MustFinish()
}

// TestBlockKernelDifferential: for every machine model × informing
// scheme × seed, a run with the block kernel and a run with the
// per-instruction front end must agree exactly — full stats.Run and the
// final architectural fingerprint.
func TestBlockKernelDifferential(t *testing.T) {
	mkCfg := []func(Scheme) Config{R10000, Alpha21164}
	schemes := []Scheme{Off, CondCode, TrapBranch, TrapException}
	for _, mk := range mkCfg {
		for _, scheme := range schemes {
			for seed := int64(1); seed <= 6; seed++ {
				cfg := mk(scheme)
				name := fmt.Sprintf("%s/%s/seed%d", cfg.Machine, scheme, seed)
				t.Run(name, func(t *testing.T) {
					prog := fuzzProgram(seed)
					base := mk(scheme).WithMaxInsts(5_000_000)
					runOn, mOn, err := base.WithBlockKernel(true).RunDetailed(prog)
					if err != nil {
						t.Fatalf("block kernel run: %v", err)
					}
					runOff, mOff, err := base.WithBlockKernel(false).RunDetailed(prog)
					if err != nil {
						t.Fatalf("per-instruction run: %v", err)
					}
					if !reflect.DeepEqual(runOn, runOff) {
						t.Errorf("stats.Run diverged:\n block: %+v\n perinst: %+v", runOn, runOff)
					}
					if fOn, fOff := machineFingerprint(mOn), machineFingerprint(mOff); fOn != fOff {
						t.Errorf("architectural fingerprint diverged: block %#x vs per-inst %#x", fOn, fOff)
					}
					if mOn.Seq != mOff.Seq {
						t.Errorf("dynamic instruction count diverged: %d vs %d", mOn.Seq, mOff.Seq)
					}
				})
			}
		}
	}
}

// TestBlockKernelSMCPropagates: a store into the text segment surfaces
// interp.ErrTextWrite through both timing cores, on both front ends, so
// the block table can never execute stale predecode.
func TestBlockKernelSMCPropagates(t *testing.T) {
	b := asm.NewBuilder()
	b.LoadImm(isa.R(1), int64(isa.DefaultTextBase))
	b.LoadImm(isa.R(2), 0xbad)
	for i := 0; i < 5; i++ {
		b.Add(isa.R(3), isa.R(1), isa.R(2))
	}
	b.St(isa.R(2), isa.R(1), 0, false)
	b.Halt()
	prog := b.MustFinish()

	for _, mk := range []func(Scheme) Config{R10000, Alpha21164} {
		for _, kernel := range []bool{true, false} {
			cfg := mk(Off).WithMaxInsts(1000).WithBlockKernel(kernel)
			_, err := cfg.Run(prog)
			if !errors.Is(err, interp.ErrTextWrite) {
				t.Errorf("%s kernel=%v: err = %v, want interp.ErrTextWrite", cfg.Machine, kernel, err)
			}
		}
	}
}
