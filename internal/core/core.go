// Package core is the public face of the informing-memory-operations
// library: it ties the paper's two machine models (internal/ooo,
// internal/inorder), the three informing schemes, and the measurement
// types together behind a single configuration/run API.
//
// Typical use:
//
//	cfg := core.R10000(core.TrapBranch)
//	run, err := cfg.Run(prog)
//
// Programs are built with internal/asm (either the Builder DSL or the
// text assembler); miss handlers are ordinary code in the program's text
// segment, entered through the MHAR/MHRR registers (trap schemes) or BMISS
// branches (condition-code scheme).
package core

import (
	"context"
	"fmt"

	"informing/internal/faults"
	"informing/internal/govern"
	"informing/internal/inorder"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/obs"
	"informing/internal/ooo"
	"informing/internal/stats"
)

// Machine selects the processor model.
type Machine uint8

const (
	// OutOfOrder is the MIPS-R10000-like model (Table 1, left column).
	OutOfOrder Machine = iota
	// InOrder is the Alpha-21164-like model (Table 1, right column).
	InOrder
)

func (m Machine) String() string {
	if m == InOrder {
		return "in-order"
	}
	return "out-of-order"
}

// Scheme selects the informing mechanism (§2 of the paper).
type Scheme uint8

const (
	// Off runs the program with informing behaviour disabled.
	Off Scheme = iota
	// CondCode is the cache-outcome condition-code scheme (§2.1).
	CondCode
	// TrapBranch is the low-overhead miss trap handled like a
	// mispredicted branch (§2.2, §3.2).
	TrapBranch
	// TrapException is the low-overhead miss trap handled like an
	// exception at graduation (§3.2); on the in-order machine it is
	// identical to TrapBranch (the replay-trap implementation).
	TrapException
)

func (s Scheme) String() string {
	switch s {
	case Off:
		return "off"
	case CondCode:
		return "condcode"
	case TrapBranch:
		return "trap-branch"
	case TrapException:
		return "trap-exception"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Mode returns the architectural informing mode implied by the scheme.
func (s Scheme) Mode() interp.Mode {
	switch s {
	case CondCode:
		return interp.ModeCondCode
	case TrapBranch, TrapException:
		return interp.ModeTrap
	default:
		return interp.ModeOff
	}
}

// Config is a complete machine configuration. Construct one with R10000
// or Alpha21164 and adjust fields as needed before Run.
type Config struct {
	Machine Machine
	Scheme  Scheme

	// OOO and IO hold the model-specific parameters; only the one
	// matching Machine is used.
	OOO ooo.Config
	IO  inorder.Config
}

// R10000 returns the paper's out-of-order machine running the given
// informing scheme.
func R10000(s Scheme) Config {
	cfg := Config{Machine: OutOfOrder, Scheme: s, OOO: ooo.DefaultConfig(), IO: inorder.DefaultConfig()}
	cfg.apply()
	return cfg
}

// Alpha21164 returns the paper's in-order machine running the given
// informing scheme.
func Alpha21164(s Scheme) Config {
	cfg := Config{Machine: InOrder, Scheme: s, OOO: ooo.DefaultConfig(), IO: inorder.DefaultConfig()}
	cfg.apply()
	return cfg
}

// apply propagates Scheme into the model configs.
func (c *Config) apply() {
	mode := c.Scheme.Mode()
	c.OOO.Mode = mode
	c.IO.Mode = mode
	if c.Scheme == TrapException {
		c.OOO.Trap = ooo.TrapAsException
	} else {
		c.OOO.Trap = ooo.TrapAsBranch
	}
}

// WithMaxInsts bounds the dynamic instruction count of Run.
func (c Config) WithMaxInsts(n uint64) Config {
	c.OOO.MaxInsts = n
	c.IO.MaxInsts = n
	return c
}

// WithTrace attaches a per-instruction pipeline trace callback (invoked in
// graduation order) to whichever machine runs.
// WithBlockKernel enables or disables the block-compiled execution
// kernel (DESIGN.md §14) on both timing cores. The kernel is on by
// default; disabling it forces the historical per-instruction front end,
// which the differential tests use to cross-check the two paths.
func (c Config) WithBlockKernel(enabled bool) Config {
	c.OOO.DisableBlockKernel = !enabled
	c.IO.DisableBlockKernel = !enabled
	return c
}

func (c Config) WithTrace(fn func(stats.TraceEvent)) Config {
	c.OOO.Trace = fn
	c.IO.Trace = fn
	return c
}

// WithContext makes Run respond to ctx cancellation or deadline expiry:
// the simulation stops at the next governor poll and returns an error
// wrapping govern.ErrCanceled that carries a diagnostic govern.Snapshot.
func (c Config) WithContext(ctx context.Context) Config {
	c.OOO.Govern.Ctx = ctx
	c.IO.Govern.Ctx = ctx
	return c
}

// WithGovernor installs a full run-governor policy (context, watchdog,
// budget) on whichever machine runs.
func (c Config) WithGovernor(gc govern.Config) Config {
	c.OOO.Govern = gc
	c.IO.Govern = gc
	return c
}

// WithFaults attaches a fault-injection plan to whichever machine runs.
func (c Config) WithFaults(inj *faults.Injector) Config {
	c.OOO.Faults = inj
	c.IO.Faults = inj
	return c
}

// WithObs attaches a live-metrics sink (counters and histograms; see
// internal/obs) to whichever machine runs. A nil sim is valid and leaves
// the hot path allocation-free (DESIGN.md §11).
func (c Config) WithObs(sim *obs.Sim) Config {
	c.OOO.Obs = sim
	c.IO.Obs = sim
	return c
}

// WithTraceEvery samples the pipeline trace at the source: only every n-th
// instruction (in graduation/retirement order) constructs and emits a
// TraceEvent. 0 or 1 traces every instruction.
func (c Config) WithTraceEvery(n uint64) Config {
	c.OOO.TraceEvery = n
	c.IO.TraceEvery = n
	return c
}

// WithPolicy selects the data-hierarchy replacement policy (both levels,
// both machines): "" or "lru" for the built-in true-LRU path, or one of
// mem.PolicyNames. Invalid names surface as a construction error from
// Run (the library panic-to-error policy).
func (c Config) WithPolicy(name string) Config {
	if name == mem.PolicyLRU {
		name = "" // canonical spelling of the default path
	}
	c.OOO.Hier.L1.Policy = name
	c.OOO.Hier.L2.Policy = name
	c.IO.Hier.L1.Policy = name
	c.IO.Hier.L2.Policy = name
	return c
}

// HierConfig returns the data-hierarchy geometry of whichever machine
// runs: the geometry a recorded trace from this configuration must be
// replayed through (internal/trace) for exact reconciliation.
func (c Config) HierConfig() mem.HierConfig {
	if c.Machine == InOrder {
		return c.IO.Hier
	}
	return c.OOO.Hier
}

// Run simulates prog to completion under the configuration.
func (c Config) Run(prog *isa.Program) (stats.Run, error) {
	r, _, err := c.RunDetailed(prog)
	return r, err
}

// RunDetailed is Run but also returns the functional machine with the
// final architectural state (registers, data memory, MHAR/MHRR).
func (c Config) RunDetailed(prog *isa.Program) (stats.Run, *interp.Machine, error) {
	if err := prog.Validate(); err != nil {
		return stats.Run{}, nil, err
	}
	c.apply()
	switch c.Machine {
	case InOrder:
		return inorder.RunDetailed(prog, c.IO)
	default:
		return ooo.RunDetailed(prog, c.OOO)
	}
}

// RunFunctional executes prog on the functional reference model (perfect
// cache) and returns the final machine state; useful for validating
// program behaviour independent of timing.
func RunFunctional(prog *isa.Program, limit uint64) (*interp.Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	m := interp.New(prog, interp.ModeOff, nil)
	if err := m.Run(limit); err != nil {
		return m, err
	}
	return m, nil
}
