package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"informing/internal/asm"
	"informing/internal/interp"
	"informing/internal/isa"
)

// randStructured generates a random but always-terminating program: a
// few counted loops whose bodies mix ALU work, loads/stores into a masked
// buffer, and forward skip branches. Memory addresses are derived from
// register values masked into the buffer, so runs exercise real hit/miss
// variety.
func randStructured(r *rand.Rand, informing bool) *isa.Program {
	b := asm.NewBuilder()
	buf := b.Alloc("buf", 1<<15) // 32 KB
	if informing {
		b.J("main")
		b.Label("h")
		b.Addi(isa.R20, isa.R20, 1)
		b.Rfmh()
		b.Label("main")
		b.MtmharLabel("h")
	}
	b.LoadImm(isa.R1, int64(buf))
	for i := 2; i <= 9; i++ {
		b.LoadImm(isa.R(i), int64(int32(r.Uint64())))
	}
	aluOps := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.And, isa.Or, isa.Xor,
		isa.Sll, isa.Srl, isa.Slt, isa.Addi, isa.Xori, isa.Slli}
	nLoops := 1 + r.Intn(3)
	for l := 0; l < nLoops; l++ {
		iters := int64(20 + r.Intn(200))
		b.LoadImm(isa.R16, iters)
		top := b.Unique("top")
		b.Label(top)
		bodyLen := 4 + r.Intn(14)
		for k := 0; k < bodyLen; k++ {
			rd := isa.R(2 + r.Intn(10))
			rs1 := isa.R(1 + r.Intn(11))
			rs2 := isa.R(1 + r.Intn(11))
			switch r.Intn(6) {
			case 0: // load
				b.Andi(isa.R13, rs1, 1<<15-8)
				b.Add(isa.R13, isa.R13, isa.R1)
				b.Ld(rd, isa.R13, 0, informing)
			case 1: // store
				b.Andi(isa.R13, rs1, 1<<15-8)
				b.Add(isa.R13, isa.R13, isa.R1)
				b.St(rs2, isa.R13, 0, informing)
			case 2: // forward skip branch
				skip := b.Unique("skip")
				switch r.Intn(3) {
				case 0:
					b.Beq(rs1, rs2, skip)
				case 1:
					b.Bne(rs1, rs2, skip)
				default:
					b.Blt(rs1, rs2, skip)
				}
				b.Emit(isa.Inst{Op: aluOps[r.Intn(len(aluOps))], Rd: rd, Rs1: rs1, Rs2: rs2, Imm: int64(r.Intn(64))})
				b.Label(skip)
			default:
				op := aluOps[r.Intn(len(aluOps))]
				b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: int64(r.Intn(64))})
			}
		}
		b.Addi(isa.R16, isa.R16, -1)
		b.Bne(isa.R16, isa.R0, top)
	}
	b.Halt()
	return b.MustFinish()
}

// TestMachinesAgreeWithFunctionalModel: with informing off, the two
// timing cores must compute exactly the same architectural result as the
// functional reference model, on random programs.
func TestMachinesAgreeWithFunctionalModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randStructured(r, false)

		ref := interp.New(prog, interp.ModeOff, nil)
		if err := ref.Run(5_000_000); err != nil {
			t.Logf("functional: %v", err)
			return false
		}
		for _, cfg := range []Config{R10000(Off), Alpha21164(Off)} {
			_, m, err := cfg.WithMaxInsts(5_000_000).RunDetailed(prog)
			if err != nil {
				t.Logf("%v: %v", cfg.Machine, err)
				return false
			}
			if m.G != ref.G {
				t.Logf("seed %d: %v register file diverges", seed, cfg.Machine)
				return false
			}
			if m.Seq != ref.Seq {
				t.Logf("seed %d: %v executed %d instrs, functional %d",
					seed, cfg.Machine, m.Seq, ref.Seq)
				return false
			}
			// Compare the data segment.
			for addr := prog.DataBase; addr < prog.DataBase+prog.DataSize; addr += 8 {
				if m.Mem.Load(addr) != ref.Mem.Load(addr) {
					t.Logf("seed %d: %v memory diverges at %#x", seed, cfg.Machine, addr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestTrapCountEqualsMissCountOnRandomPrograms: with the trap scheme and a
// counting handler, the software-visible count must equal the simulator's
// miss count on both machines, for random programs.
func TestTrapCountEqualsMissCountOnRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randStructured(r, true)
		for _, cfg := range []Config{R10000(TrapBranch), R10000(TrapException), Alpha21164(TrapBranch)} {
			run, m, err := cfg.WithMaxInsts(5_000_000).RunDetailed(prog)
			if err != nil {
				t.Logf("%v: %v", cfg.Machine, err)
				return false
			}
			if m.G[20] != run.Traps {
				t.Logf("seed %d %v/%v: handler count %d, traps %d",
					seed, cfg.Machine, cfg.Scheme, m.G[20], run.Traps)
				return false
			}
			if run.Traps != run.L1Misses {
				t.Logf("seed %d %v/%v: traps %d, misses %d",
					seed, cfg.Machine, cfg.Scheme, run.Traps, run.L1Misses)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestTrapModesArchitecturallyIdentical: branch- and exception-style trap
// handling differ only in timing, never in architectural outcome.
func TestTrapModesArchitecturallyIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	prog := randStructured(r, true)
	_, mBr, err := R10000(TrapBranch).WithMaxInsts(5_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, mEx, err := R10000(TrapException).WithMaxInsts(5_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}
	if mBr.G != mEx.G || mBr.Seq != mEx.Seq {
		t.Error("trap modes diverge architecturally")
	}
}
