package core

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/isa"
)

func bothMachines(s Scheme) []Config {
	return []Config{R10000(s), Alpha21164(s)}
}

func TestHaltOnlyProgram(t *testing.T) {
	p, err := asm.Assemble("halt")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range bothMachines(Off) {
		run, err := cfg.Run(p)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Machine, err)
		}
		if run.Instrs != 1 {
			t.Errorf("%v: %d instructions", cfg.Machine, run.Instrs)
		}
		if run.Cycles < 1 {
			t.Errorf("%v: %d cycles", cfg.Machine, run.Cycles)
		}
	}
}

func TestJumpOutsideTextFailsCleanly(t *testing.T) {
	p, err := asm.Assemble("li r1, 64\njr r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range bothMachines(Off) {
		if _, err := cfg.Run(p); err == nil {
			t.Errorf("%v: wild jump did not error", cfg.Machine)
		}
	}
}

func TestBadMHARFailsCleanly(t *testing.T) {
	// An MHAR pointing outside the text segment must surface as an error
	// when the trap fires, not hang or panic.
	p, err := asm.Assemble(`
		.data buf 64
		mtmhar r0, 64
		la r1, buf
		ld.i r2, 0(r1)
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range bothMachines(TrapBranch) {
		if _, err := cfg.Run(p); err == nil {
			t.Errorf("%v: wild MHAR did not error", cfg.Machine)
		}
	}
}

func TestInvalidProgramRejectedBeforeRun(t *testing.T) {
	p := &isa.Program{TextBase: 0x1000, Text: []isa.Inst{{Op: isa.J, Imm: 0x9999}}}
	for _, cfg := range bothMachines(Off) {
		if _, err := cfg.Run(p); err == nil {
			t.Errorf("%v: invalid program accepted", cfg.Machine)
		}
	}
}

func TestSchemeAndMachineStrings(t *testing.T) {
	if OutOfOrder.String() != "out-of-order" || InOrder.String() != "in-order" {
		t.Error("machine names wrong")
	}
	names := map[Scheme]string{
		Off: "off", CondCode: "condcode",
		TrapBranch: "trap-branch", TrapException: "trap-exception",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("scheme %d name %q, want %q", s, s.String(), want)
		}
	}
}

func TestRunFunctional(t *testing.T) {
	p, err := asm.Assemble("li r1, 7\nadd r2, r1, r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunFunctional(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.G[2] != 14 {
		t.Errorf("r2 = %d", m.G[2])
	}
}

func TestWithMaxInstsAppliesToBoth(t *testing.T) {
	p, err := asm.Assemble("loop: j loop\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range bothMachines(Off) {
		if _, err := cfg.WithMaxInsts(500).Run(p); err == nil {
			t.Errorf("%v: limit not enforced", cfg.Machine)
		}
	}
}

// TestStoreHeavyProgram exercises the store path (probe-at-issue, write
// buffer retirement) under misses on both machines.
func TestStoreHeavyProgram(t *testing.T) {
	p, err := asm.Assemble(`
		.data buf 262144
		la r1, buf
		li r2, 8192
	loop:
		st r2, 0(r1)
		addi r1, r1, 32
		addi r2, r2, -1
		bne r2, r0, loop
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range bothMachines(Off) {
		run, err := cfg.WithMaxInsts(10_000_000).Run(p)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Machine, err)
		}
		if run.L1Misses != 8192 {
			t.Errorf("%v: store misses %d, want 8192", cfg.Machine, run.L1Misses)
		}
	}
}
