package core

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/interp"
	"informing/internal/isa"
)

// buildStrided builds a sweep whose references hit L2 after the first pass
// but miss L1 every time (stride = one L1-way-conflict apart), so L1-miss
// traps and L2-miss traps differ sharply in count.
func buildStrided() *isa.Program {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", 256<<10)
	b.J("start")
	b.Label("h")
	b.Addi(isa.R20, isa.R20, 1)
	b.Rfmh()
	b.Label("start")
	b.MtmharLabel("h")
	b.LoadImm(isa.R1, int64(arr))
	b.LoadImm(isa.R2, 3) // passes: pass 1 cold (memory), later passes L2
	b.Label("outer")
	b.LoadImm(isa.R3, int64(arr))
	b.LoadImm(isa.R4, 4096)
	b.Label("inner")
	b.Ld(isa.R5, isa.R3, 0, true)
	b.Addi(isa.R3, isa.R3, 64)
	b.Addi(isa.R4, isa.R4, -1)
	b.Bne(isa.R4, isa.R0, "inner")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "outer")
	b.Halt()
	return b.MustFinish()
}

// buildResident builds a loop over an 8 KB working set: after the cold
// pass everything hits L1, so informing traps are rare — unless something
// (a context switch) flushes the cache.
func buildResident() *isa.Program {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", 8<<10)
	b.J("start")
	b.Label("h")
	b.Addi(isa.R20, isa.R20, 1)
	b.Rfmh()
	b.Label("start")
	b.MtmharLabel("h")
	b.LoadImm(isa.R2, 20) // passes
	b.Label("outer")
	b.LoadImm(isa.R3, int64(arr))
	b.LoadImm(isa.R4, 1024)
	b.Label("inner")
	b.Ld(isa.R5, isa.R3, 0, true)
	b.Add(isa.R6, isa.R6, isa.R5)
	b.Addi(isa.R3, isa.R3, 8)
	b.Addi(isa.R4, isa.R4, -1)
	b.Bne(isa.R4, isa.R0, "inner")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "outer")
	b.Halt()
	return b.MustFinish()
}

func TestTrapThresholdSecondaryMissesOnly(t *testing.T) {
	prog := buildStrided()

	all := R10000(TrapBranch)
	runAll, mAll, err := all.WithMaxInsts(10_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}

	l2only := R10000(TrapBranch)
	l2only.OOO.TrapThreshold = interp.LevelL2
	runL2, mL2, err := l2only.WithMaxInsts(10_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}

	if runAll.Traps != runAll.L1Misses {
		t.Errorf("default threshold: traps %d != L1 misses %d", runAll.Traps, runAll.L1Misses)
	}
	if runL2.Traps != runL2.L2Misses {
		t.Errorf("L2 threshold: traps %d != L2 misses %d", runL2.Traps, runL2.L2Misses)
	}
	if runL2.Traps >= runAll.Traps {
		t.Errorf("L2-only traps (%d) should be far fewer than all-miss traps (%d)",
			runL2.Traps, runAll.Traps)
	}
	if mAll.G[20] != runAll.Traps || mL2.G[20] != runL2.Traps {
		t.Error("handler counts disagree with trap counts")
	}
	// The program's non-handler results are identical: total r5 sums etc.
	if mAll.G[5] != mL2.G[5] {
		t.Error("threshold changed program-visible data")
	}
}

func TestCacheStateNondeterminismAcrossContextSwitches(t *testing.T) {
	// §3.3 "Cache as Visible State": trap counts are a property of the
	// machine's transient cache state — flushing the L1 periodically (as
	// context switches would) changes how many traps fire but must not
	// change the program's architectural results.
	prog := buildResident()
	base := R10000(TrapBranch)
	runA, mA, err := base.WithMaxInsts(10_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}

	flushy := R10000(TrapBranch)
	flushy.OOO.FlushEvery = 1000
	runB, mB, err := flushy.WithMaxInsts(10_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}

	if runB.Traps <= runA.Traps {
		t.Errorf("flushing did not increase traps: %d vs %d", runB.Traps, runA.Traps)
	}
	// Architectural results (other than the handler's own tally, which
	// *is* the observed nondeterminism) are unchanged.
	if mA.G[6] != mB.G[6] || mA.G[5] != mB.G[5] {
		t.Error("context-switch flushing changed program results")
	}
	if mB.G[20] != runB.Traps {
		t.Error("handler count inconsistent under flushing")
	}
}

func TestFlushEveryInOrder(t *testing.T) {
	prog := buildResident()
	cfg := Alpha21164(TrapBranch)
	cfg.IO.FlushEvery = 500
	run, m, err := cfg.WithMaxInsts(10_000_000).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}
	if m.G[20] != run.Traps {
		t.Error("in-order flushing broke trap accounting")
	}
}
