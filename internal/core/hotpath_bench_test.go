package core

import (
	"runtime"
	"testing"

	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/workload"
)

// Hot-path micro/macro benchmarks (DESIGN.md §10). Run with
//
//	go test -bench 'Hotpath' -benchmem ./internal/core
//
// cmd/hotpathbench records the same measurements into BENCH_hotpath.json
// for the committed before/after regression baseline; these testing.B
// forms are for interactive work and for the CI allocation assertion
// (TestTimingHotLoopAllocationFree below).

func buildBench(b *testing.B, bench string, plan workload.Plan) *isa.Program {
	b.Helper()
	bm, ok := workload.ByName(bench)
	if !ok {
		b.Fatalf("unknown benchmark %s", bench)
	}
	prog, err := workload.Build(bm, plan, 1)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkHotpathCacheMix measures mem.Hierarchy.ProbeData on the access
// mix the way memo targets: sequential word walks, strided line sweeps,
// and a hot-set random component.
func BenchmarkHotpathCacheMix(b *testing.B) {
	hier, err := mem.NewHierarchy(mem.HierConfig{
		L1: mem.CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
		L2: mem.CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Assoc: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	lcg := uint64(1)
	for i := 0; i < b.N; i++ {
		u := uint64(i)
		var addr uint64
		switch u & 3 {
		case 0, 1:
			addr = (u * 8) & (64<<10 - 1)
		case 2:
			addr = (u * 32) & (256<<10 - 1)
		default:
			lcg = lcg*6364136223846793005 + 1442695040888963407
			addr = (lcg >> 33) & (16<<10 - 1)
		}
		hier.ProbeData(addr, u&7 == 0)
	}
}

// BenchmarkHotpathDataMemWalk measures isa.DataMem Load/Store under the
// sequential and page-hopping patterns the MRU-page memo targets.
func BenchmarkHotpathDataMemWalk(b *testing.B) {
	var m isa.DataMem
	b.ReportAllocs()
	sum := uint64(0)
	for i := 0; i < b.N; i++ {
		u := uint64(i)
		addr := (u * 8) & (1<<20 - 1)
		if u&3 == 3 {
			addr = (u * 4096) & (1<<24 - 1)
		}
		if u&1 == 0 {
			m.Store(addr, u)
		} else {
			sum += m.Load(addr)
		}
	}
	_ = sum
}

// BenchmarkHotpathInterpRun measures the functional machine alone (the
// untimed per-instruction loop shared by both timing cores), reported per
// dynamic instruction.
func BenchmarkHotpathInterpRun(b *testing.B) {
	prog := buildBench(b, "espresso", workload.NewPlanNone())
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		hier, err := mem.NewHierarchy(mem.HierConfig{
			L1: mem.CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
			L2: mem.CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Assoc: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		m := interp.New(prog, interp.ModeOff, hier.ProbeData)
		if err := m.Run(100_000_000); err != nil {
			b.Fatal(err)
		}
		insts += m.Seq
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
}

func benchTimingCell(b *testing.B, cfg Config, bench string, plan workload.Plan) {
	b.Helper()
	prog := buildBench(b, bench, plan)
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		run, err := cfg.WithMaxInsts(100_000_000).Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		insts += run.DynInsts
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
}

// BenchmarkHotpathOOOCell measures one full out-of-order timing cell
// (compress, single-instruction handler, trap-as-branch).
func BenchmarkHotpathOOOCell(b *testing.B) {
	benchTimingCell(b, R10000(TrapBranch), "compress", workload.NewPlanSingle(1))
}

// BenchmarkHotpathInorderCell measures one full in-order timing cell
// (tomcatv, single-instruction handler).
func BenchmarkHotpathInorderCell(b *testing.B) {
	benchTimingCell(b, Alpha21164(TrapBranch), "tomcatv", workload.NewPlanSingle(1))
}

// BenchmarkHotpathFig2Cell measures one cell of the Figure-2 sweep:
// the uninstrumented baseline run plus the instrumented run the figure
// normalises against it.
func BenchmarkHotpathFig2Cell(b *testing.B) {
	base := buildBench(b, "compress", workload.NewPlanNone())
	instr := buildBench(b, "compress", workload.NewPlanSingle(1))
	cfg := R10000(TrapBranch).WithMaxInsts(100_000_000)
	off := R10000(Off).WithMaxInsts(100_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := off.Run(base); err != nil {
			b.Fatal(err)
		}
		if _, err := cfg.Run(instr); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTimingHotLoopAllocationFree is the CI allocation regression gate:
// the per-instruction simulation pipeline (interp.Step plus the ooo and
// inorder schedulers, including the memoized cache and data-memory paths)
// must not allocate per dynamic instruction. The miss taxonomy is always
// enabled on the data hierarchy, so every cell here also gates the
// classifier's hot path (the shadow's preallocated node pool; the seen
// filter's amortized map growth rides inside the budget); the policy
// cells gate the RRIP paths — including TRRIP, whose temperature history
// is bounded at 1024 entries and must not grow with the run. Each cell
// runs twice at different instruction counts; the allocation delta per
// extra instruction must be ~0 (setup allocations cancel out).
func TestTimingHotLoopAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate runs full cells")
	}
	cells := []struct {
		name    string
		machine Machine
		kernel  bool
		policy  string
	}{
		{"ooo", OutOfOrder, true, ""},
		{"inorder", InOrder, true, ""},
		{"ooo-perinst", OutOfOrder, false, ""},
		{"inorder-perinst", InOrder, false, ""},
		{"ooo-srrip", OutOfOrder, true, "srrip"},
		{"inorder-trrip", InOrder, true, "trrip"},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			bm, ok := workload.ByName("compress")
			if !ok {
				t.Fatal("unknown benchmark compress")
			}
			run := func(scale int64) (allocs, insts uint64) {
				prog, err := workload.Build(bm, workload.NewPlanSingle(1), scale)
				if err != nil {
					t.Fatal(err)
				}
				var cfg Config
				if c.machine == InOrder {
					cfg = Alpha21164(TrapBranch)
				} else {
					cfg = R10000(TrapBranch)
				}
				cfg = cfg.WithBlockKernel(c.kernel).WithPolicy(c.policy)
				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				r, err := cfg.WithMaxInsts(100_000_000).Run(prog)
				runtime.ReadMemStats(&m1)
				if err != nil {
					t.Fatal(err)
				}
				return m1.Mallocs - m0.Mallocs, r.DynInsts
			}
			a1, n1 := run(1)
			a2, n2 := run(3)
			if n2 <= n1 {
				t.Fatalf("scaling did not grow the run: %d -> %d insts", n1, n2)
			}
			perInst := (float64(a2) - float64(a1)) / float64(n2-n1)
			t.Logf("%s: %d insts / %d allocs vs %d insts / %d allocs -> %.6f allocs/inst",
				c.name, n1, a1, n2, a2, perInst)
			// The pre-optimization pipeline allocated ~1 per instruction
			// (Inst.Sources); demand at least two orders of magnitude
			// better, with slack for incidental growth (map resizes in
			// DataMem, MSHR bookkeeping).
			if perInst > 0.01 {
				t.Fatalf("per-instruction allocation regression: %.4f allocs/inst (want ~0)", perInst)
			}
		})
	}
}
