package core

import (
	"fmt"
	"math"
	"os"
	"testing"

	"informing/internal/interp"
	"informing/internal/stats"
	"informing/internal/workload"
)

// The hot-path optimisation contract: way/line memoization in mem, the
// MRU-page memo in isa.DataMem and the predecoded dispatch in interp must
// leave every measured statistic and every bit of final architectural
// state unchanged. This file pins stats.Run and a fingerprint of the final
// machine state for a grid of workload × machine × plan cells, captured
// from the pre-optimisation reference implementation (commit e566950).
//
// Regenerate the table (only when intentionally changing simulator
// semantics) with:
//
//	HOTPATH_GOLDEN_PRINT=1 go test -run TestHotpathGolden ./internal/core | grep '^\t'

type goldenCell struct {
	bench   string
	machine Machine
	scheme  Scheme
	plan    func() workload.Plan
}

func goldenCells() []goldenCell {
	var cells []goldenCell
	for _, bench := range []string{"compress", "espresso", "tomcatv"} {
		for _, m := range []Machine{OutOfOrder, InOrder} {
			cells = append(cells,
				goldenCell{bench, m, Off, func() workload.Plan { return workload.NewPlanNone() }},
				goldenCell{bench, m, TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
				goldenCell{bench, m, CondCode, func() workload.Plan { return workload.NewPlanCondCode(1) }},
			)
		}
	}
	return cells
}

func (c goldenCell) key() string {
	return fmt.Sprintf("%s/%s/%s/%s", c.bench, c.machine, c.scheme, c.plan().Name())
}

// machineFingerprint hashes the complete final architectural state:
// control registers, both register files, informing state and the data
// memory image.
func machineFingerprint(m *interp.Machine) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(m.PC)
	mix(m.Seq)
	mix(m.MHAR)
	mix(m.MHRR)
	mix(m.MissCounter)
	mix(m.Traps)
	mix(m.BmissTaken)
	var flags uint64
	if m.CCMiss {
		flags |= 1
	}
	if m.InHandler {
		flags |= 2
	}
	mix(flags)
	for _, g := range m.G {
		mix(g)
	}
	for _, f := range m.FR {
		mix(math.Float64bits(f))
	}
	mix(m.Mem.Fingerprint())
	return h
}

func runGoldenCell(t *testing.T, c goldenCell, blockKernel bool) (stats.Run, uint64) {
	return runGoldenCellPolicy(t, c, "", blockKernel)
}

// runGoldenCellPolicy runs a golden cell under a named replacement policy
// ("" = the default true-LRU path; see TestPolicyGolden).
func runGoldenCellPolicy(t *testing.T, c goldenCell, policy string, blockKernel bool) (stats.Run, uint64) {
	t.Helper()
	bm, ok := workload.ByName(c.bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", c.bench)
	}
	prog, err := workload.Build(bm, c.plan(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	if c.machine == InOrder {
		cfg = Alpha21164(c.scheme)
	} else {
		cfg = R10000(c.scheme)
	}
	run, m, err := cfg.WithPolicy(policy).WithMaxInsts(100_000_000).WithBlockKernel(blockKernel).RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Check(); err != nil {
		t.Fatal(err)
	}
	return run, machineFingerprint(m)
}

// TestHotpathGolden replays every cell — on the block-compiled kernel and
// on the per-instruction front end — and demands byte-identical
// statistics and architectural state versus the recorded reference.
func TestHotpathGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is heavy")
	}
	printMode := os.Getenv("HOTPATH_GOLDEN_PRINT") != ""
	for _, c := range goldenCells() {
		c := c
		for _, kernel := range []bool{true, false} {
			kernel := kernel
			name := c.key() + "/block"
			if !kernel {
				name = c.key() + "/perinst"
			}
			t.Run(name, func(t *testing.T) {
				run, fp := runGoldenCell(t, c, kernel)
				// The taxonomy conservation invariant holds on every
				// golden cell: the per-level classes sum exactly to the
				// per-level miss counters.
				if err := run.CheckTaxonomy(); err != nil {
					t.Error(err)
				}
				if printMode {
					if kernel {
						legacy := run
						legacy.L1Tax, legacy.L2Tax = stats.MissClasses{}, stats.MissClasses{}
						fmt.Printf("\t%q: {%#v, %#x},\n", c.key(), legacy, fp)
						fmt.Printf("\tTAX %q: {%#v, %#v},\n", c.key(), run.L1Tax, run.L2Tax)
					}
					return
				}
				want, ok := hotpathGolden[c.key()]
				if !ok {
					t.Fatalf("no golden entry for %s (regenerate with HOTPATH_GOLDEN_PRINT=1)", c.key())
				}
				// The legacy table predates the miss taxonomy (its
				// entries carry zero classes); compare against it with
				// the taxonomy masked so the pre-PR pin stays untouched,
				// and pin the taxonomy itself in hotpathTaxGolden.
				legacy := run
				legacy.L1Tax, legacy.L2Tax = stats.MissClasses{}, stats.MissClasses{}
				if legacy != want.run {
					t.Errorf("stats.Run diverged from pre-optimization reference:\n got: %+v\nwant: %+v", legacy, want.run)
				}
				if fp != want.fingerprint {
					t.Errorf("final architectural state diverged: fingerprint %#x, want %#x", fp, want.fingerprint)
				}
				wantTax, ok := hotpathTaxGolden[c.key()]
				if !ok {
					t.Fatalf("no taxonomy golden entry for %s (regenerate with HOTPATH_GOLDEN_PRINT=1)", c.key())
				}
				if run.L1Tax != wantTax.l1 || run.L2Tax != wantTax.l2 {
					t.Errorf("miss taxonomy diverged:\n got: L1{%v} L2{%v}\nwant: L1{%v} L2{%v}",
						run.L1Tax, run.L2Tax, wantTax.l1, wantTax.l2)
				}
			})
		}
	}
}

type goldenEntry struct {
	run         stats.Run
	fingerprint uint64
}

// taxEntry pins the per-level miss taxonomy of a golden cell (the legacy
// goldenEntry table predates the taxonomy and is deliberately left
// untouched — matching it under the default policy is the point).
type taxEntry struct {
	l1, l2 stats.MissClasses
}
