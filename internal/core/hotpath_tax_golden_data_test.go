package core

import "informing/internal/stats"

// hotpathTaxGolden pins the per-level miss taxonomy of every golden-grid
// cell under the default (true-LRU) policy. Captured with
// HOTPATH_GOLDEN_PRINT=1 (the TAX lines); the classes of each entry sum
// exactly to the cell's pinned L1Misses/L2Misses — the conservation
// property TestHotpathGolden also checks live.
var hotpathTaxGolden = map[string]taxEntry{
	"compress/out-of-order/off/N":          {stats.MissClasses{Compulsory: 0x800, Capacity: 0x10dc, Conflict: 0x3a9, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x800, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"compress/out-of-order/trap-branch/S1": {stats.MissClasses{Compulsory: 0x800, Capacity: 0x10dc, Conflict: 0x3a9, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x800, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"compress/out-of-order/condcode/CC1":   {stats.MissClasses{Compulsory: 0x800, Capacity: 0x10dc, Conflict: 0x3a9, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x800, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"compress/in-order/off/N":              {stats.MissClasses{Compulsory: 0x800, Capacity: 0x27b5, Conflict: 0x34e, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x800, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"compress/in-order/trap-branch/S1":     {stats.MissClasses{Compulsory: 0x800, Capacity: 0x27b5, Conflict: 0x34e, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x800, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"compress/in-order/condcode/CC1":       {stats.MissClasses{Compulsory: 0x800, Capacity: 0x27b5, Conflict: 0x34e, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x800, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"espresso/out-of-order/off/N":          {stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"espresso/out-of-order/trap-branch/S1": {stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"espresso/out-of-order/condcode/CC1":   {stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"espresso/in-order/off/N":              {stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"espresso/in-order/trap-branch/S1":     {stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"espresso/in-order/condcode/CC1":       {stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0xc0, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"tomcatv/out-of-order/off/N":           {stats.MissClasses{Compulsory: 0x1001, Capacity: 0x5000, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x1001, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"tomcatv/out-of-order/trap-branch/S1":  {stats.MissClasses{Compulsory: 0x1001, Capacity: 0x5000, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x1001, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"tomcatv/out-of-order/condcode/CC1":    {stats.MissClasses{Compulsory: 0x1001, Capacity: 0x5000, Conflict: 0x0, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x1001, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"tomcatv/in-order/off/N":               {stats.MissClasses{Compulsory: 0x1001, Capacity: 0x5000, Conflict: 0x15000, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x1001, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"tomcatv/in-order/trap-branch/S1":      {stats.MissClasses{Compulsory: 0x1001, Capacity: 0x5000, Conflict: 0x15000, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x1001, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
	"tomcatv/in-order/condcode/CC1":        {stats.MissClasses{Compulsory: 0x1001, Capacity: 0x5000, Conflict: 0x15000, Coherence: 0x0}, stats.MissClasses{Compulsory: 0x1001, Capacity: 0x0, Conflict: 0x0, Coherence: 0x0}},
}
