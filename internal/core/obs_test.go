package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"informing/internal/govern"
	"informing/internal/obs"
	"informing/internal/stats"
	"informing/internal/workload"
)

// runObsCell is runGoldenCell with the configuration passed through mod
// before running, so the observability property test can compare enabled
// and disabled runs over the exact golden grid.
func runObsCell(t *testing.T, c goldenCell, mod func(Config) Config) (stats.Run, uint64) {
	t.Helper()
	bm, ok := workload.ByName(c.bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", c.bench)
	}
	prog, err := workload.Build(bm, c.plan(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	if c.machine == InOrder {
		cfg = Alpha21164(c.scheme)
	} else {
		cfg = R10000(c.scheme)
	}
	cfg = mod(cfg.WithMaxInsts(100_000_000))
	run, m, err := cfg.RunDetailed(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Check(); err != nil {
		t.Fatal(err)
	}
	return run, machineFingerprint(m)
}

// TestObsNeverChangesStats is the observability analogue of the hot-path
// golden contract: enabling the metrics registry and sampled tracing must
// not change a single measured statistic or any bit of final architectural
// state, on any cell of the golden grid. Observation, not perturbation.
func TestObsNeverChangesStats(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is heavy")
	}
	for _, c := range goldenCells() {
		c := c
		t.Run(c.key(), func(t *testing.T) {
			plain, plainFP := runObsCell(t, c, func(cfg Config) Config { return cfg })

			sim := obs.NewSim()
			ring, err := obs.NewRing(256, 1)
			if err != nil {
				t.Fatal(err)
			}
			observed, obsFP := runObsCell(t, c, func(cfg Config) Config {
				return cfg.WithObs(sim).WithTrace(ring.Emit).WithTraceEvery(7)
			})

			if plain != observed {
				t.Errorf("stats.Run changed with observability on:\n off: %+v\n  on: %+v", plain, observed)
			}
			if plainFP != obsFP {
				t.Errorf("final architectural state changed with observability on: %#x vs %#x", plainFP, obsFP)
			}
			// The metrics must agree with the run they watched.
			if got := sim.Instrs.Load(); got != observed.Instrs {
				t.Errorf("sim_instrs = %d, run graduated %d", got, observed.Instrs)
			}
			if got := sim.Cycles.Load(); got != uint64(observed.Cycles) {
				t.Errorf("sim_cycles = %d, run took %d", got, observed.Cycles)
			}
			if got := sim.Traps.Load(); got != observed.Traps {
				t.Errorf("sim_traps = %d, run counted %d", got, observed.Traps)
			}
			refs := sim.Levels[1].Load() + sim.Levels[2].Load() + sim.Levels[3].Load()
			if refs != observed.MemRefs {
				t.Errorf("per-level counters total %d refs, run counted %d", refs, observed.MemRefs)
			}
			if total, _ := ring.Stats(); total != observed.Instrs/7 {
				t.Errorf("1-in-7 source sampling offered %d events for %d instrs, want %d",
					total, observed.Instrs, observed.Instrs/7)
			}
		})
	}
}

// TestTraceEmissionParity pins the unified TraceEvent construction point
// (interp.Rec.TraceEvent): with identical memory hierarchies the two
// machines execute identical dynamic instruction streams, so every
// functional field of the trace — sequence, PC, disassembly, satisfying
// level, trap flag — must match event-for-event between the out-of-order
// and in-order cores. Only the timing fields may differ. This is the
// regression test for the historical asymmetry where each core hand-built
// its events at a different pipeline stage.
func TestTraceEmissionParity(t *testing.T) {
	prog := buildResident()

	collect := func(machine Machine) []stats.TraceEvent {
		var cfg Config
		if machine == InOrder {
			cfg = Alpha21164(TrapBranch)
		} else {
			cfg = R10000(TrapBranch)
		}
		// Same hierarchy + same scheme → identical interp streams.
		cfg.OOO.Hier = R10000(TrapBranch).OOO.Hier
		cfg.IO.Hier = cfg.OOO.Hier
		var events []stats.TraceEvent
		if _, err := cfg.WithMaxInsts(10_000_000).
			WithTrace(func(ev stats.TraceEvent) { events = append(events, ev) }).
			Run(prog); err != nil {
			t.Fatalf("%v: %v", machine, err)
		}
		return events
	}

	oooEvents := collect(OutOfOrder)
	ioEvents := collect(InOrder)
	if len(oooEvents) != len(ioEvents) {
		t.Fatalf("event count diverged: ooo=%d inorder=%d", len(oooEvents), len(ioEvents))
	}
	if len(oooEvents) == 0 {
		t.Fatal("no trace events")
	}
	var traps int
	for i := range oooEvents {
		a, b := oooEvents[i], ioEvents[i]
		if a.Seq != b.Seq || a.PC != b.PC || a.Disasm != b.Disasm ||
			a.MemLevel != b.MemLevel || a.Trap != b.Trap {
			t.Fatalf("functional trace fields diverged at %d:\n ooo: %+v\n  io: %+v", i, a, b)
		}
		if a.Trap {
			traps++
		}
	}
	if traps == 0 {
		t.Error("parity run exercised no trap events")
	}
}

// TestTraceSamplingIsEveryNth: the source-sampled stream is exactly every
// n-th element of the full stream, on both machines — sampling selects, it
// never reorders or rewrites.
func TestTraceSamplingIsEveryNth(t *testing.T) {
	prog := buildResident()
	const every = 5
	for _, machine := range []Machine{OutOfOrder, InOrder} {
		var cfg Config
		if machine == InOrder {
			cfg = Alpha21164(TrapBranch)
		} else {
			cfg = R10000(TrapBranch)
		}
		var full []stats.TraceEvent
		if _, err := cfg.WithMaxInsts(10_000_000).
			WithTrace(func(ev stats.TraceEvent) { full = append(full, ev) }).
			Run(prog); err != nil {
			t.Fatal(err)
		}
		var sampled []stats.TraceEvent
		if _, err := cfg.WithMaxInsts(10_000_000).
			WithTrace(func(ev stats.TraceEvent) { sampled = append(sampled, ev) }).
			WithTraceEvery(every).
			Run(prog); err != nil {
			t.Fatal(err)
		}
		if want := len(full) / every; len(sampled) != want {
			t.Fatalf("%v: sampled %d events from %d, want %d", machine, len(sampled), len(full), want)
		}
		for i, ev := range sampled {
			if want := full[(i+1)*every-1]; ev != want {
				t.Fatalf("%v: sampled event %d = %+v, want full stream element %d %+v",
					machine, i, ev, (i+1)*every-1, want)
			}
		}
	}
}

// TestAbortFlushesPartialTrace is the satellite-bug regression: a run
// aborted by the governor (here: budget exhaustion) must leave a
// well-formed partial JSONL trace once the sink is closed — every buffered
// line whole, nothing torn, nothing silently dropped.
func TestAbortFlushesPartialTrace(t *testing.T) {
	prog := buildResident()
	for _, machine := range []Machine{OutOfOrder, InOrder} {
		var cfg Config
		if machine == InOrder {
			cfg = Alpha21164(TrapBranch)
		} else {
			cfg = R10000(TrapBranch)
		}
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf, 1)
		_, err := cfg.WithMaxInsts(5000).WithTrace(sink.Emit).Run(prog)
		if !errors.Is(err, govern.ErrBudget) {
			t.Fatalf("%v: want budget abort, got %v", machine, err)
		}
		// The abort path's contract: close (→ flush) the sink, then the
		// partial trace on disk is valid line-by-line.
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
		if len(lines) < 1000 {
			t.Fatalf("%v: only %d trace lines survived the abort", machine, len(lines))
		}
		for _, line := range lines {
			if !json.Valid([]byte(line)) {
				t.Fatalf("%v: aborted trace has malformed line %q", machine, line)
			}
		}
	}
}
