package core

import (
	"fmt"
	"os"
	"testing"

	"informing/internal/workload"
)

// TestPolicyGolden extends the golden grid along the replacement-policy
// dimension (DESIGN.md §17): a subset of the hot-path cells runs under
// each Policy-seam policy, on both the block-compiled kernel and the
// per-instruction front end, against a pinned table of full statistics —
// miss taxonomy included — and the final-state fingerprint.
//
// Beyond simple regression detection, block-kernel and per-instruction
// runs of the same cell must match the same entry bit for bit — the
// kernel equivalence gate, under every policy. (Cross-policy
// architectural neutrality is TestPolicyArchitecturalNeutrality's job:
// the full fingerprint includes the MissCounter register, which is
// architecturally visible and legitimately policy-dependent.)
//
// Regenerate (only when intentionally changing simulator semantics) with:
//
//	POLICY_GOLDEN_PRINT=1 go test -run TestPolicyGolden ./internal/core -v | grep '^\t'

func policyGoldenCells() []goldenCell {
	return []goldenCell{
		{"compress", OutOfOrder, Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"compress", InOrder, Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"tomcatv", OutOfOrder, Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"compress", OutOfOrder, TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
	}
}

func TestPolicyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is heavy")
	}
	printMode := os.Getenv("POLICY_GOLDEN_PRINT") != ""
	for _, policy := range []string{"srrip", "brrip", "trrip"} {
		policy := policy
		for _, c := range policyGoldenCells() {
			c := c
			key := policy + "/" + c.key()
			for _, kernel := range []bool{true, false} {
				kernel := kernel
				name := key + "/block"
				if !kernel {
					name = key + "/perinst"
				}
				t.Run(name, func(t *testing.T) {
					run, fp := runGoldenCellPolicy(t, c, policy, kernel)
					if err := run.CheckTaxonomy(); err != nil {
						t.Error(err)
					}
					if printMode {
						if kernel {
							fmt.Printf("\t%q: {%#v, %#x},\n", key, run, fp)
						}
						return
					}
					want, ok := policyGolden[key]
					if !ok {
						t.Fatalf("no golden entry for %s (regenerate with POLICY_GOLDEN_PRINT=1)", key)
					}
					if run != want.run {
						t.Errorf("stats.Run diverged from pinned reference:\n got: %+v\nwant: %+v", run, want.run)
					}
					if fp != want.fingerprint {
						t.Errorf("final architectural state diverged: fingerprint %#x, want %#x", fp, want.fingerprint)
					}
				})
			}
		}
	}
}

// TestPolicyArchitecturalNeutrality pins the sense in which replacement
// policy is timing-only: across every policy, a run computes the same
// values — same final PC, instruction count, register files and data
// memory image. The one deliberate exception is the MissCounter register
// (the §1 strawman counter), which is architecturally visible and counts
// L1 misses, so it *must* vary with the policy; the test asserts it
// actually does on at least one non-LRU policy, or the cell would not be
// exercising replacement at all.
func TestPolicyArchitecturalNeutrality(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is heavy")
	}
	cell := goldenCell{"compress", OutOfOrder, Off, func() workload.Plan { return workload.NewPlanNone() }}
	bm, _ := workload.ByName(cell.bench)
	type arch struct {
		pc, seq, memFP uint64
		g              [32]uint64
		fr             [32]float64
		counter        uint64
	}
	var base arch
	varied := false
	for i, policy := range []string{"", "srrip", "brrip", "trrip"} {
		prog, err := workload.Build(bm, cell.plan(), 1)
		if err != nil {
			t.Fatal(err)
		}
		_, m, err := R10000(cell.scheme).WithPolicy(policy).WithMaxInsts(100_000_000).RunDetailed(prog)
		if err != nil {
			t.Fatal(err)
		}
		got := arch{pc: m.PC, seq: m.Seq, memFP: m.Mem.Fingerprint(), g: m.G, fr: m.FR, counter: m.MissCounter}
		if i == 0 {
			base = got
			continue
		}
		if got.pc != base.pc || got.seq != base.seq || got.memFP != base.memFP || got.g != base.g || got.fr != base.fr {
			t.Errorf("policy %q changed computed state: PC=%#x Seq=%d memFP=%#x, LRU PC=%#x Seq=%d memFP=%#x",
				policy, got.pc, got.seq, got.memFP, base.pc, base.seq, base.memFP)
		}
		if got.counter != base.counter {
			varied = true
		}
	}
	if !varied {
		t.Error("MissCounter identical under every policy; the cell does not exercise replacement")
	}
}
