package core

import (
	"context"
	"errors"
	"testing"

	"informing/internal/asm"
	"informing/internal/faults"
	"informing/internal/govern"
	"informing/internal/interp"
	"informing/internal/isa"
)

// buildSpin is an infinite counting loop: it never halts, so only the
// governor (budget, context, watchdog) can end the run.
func buildSpin() *isa.Program {
	b := asm.NewBuilder()
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, 1)
	b.J("loop")
	return b.MustFinish()
}

// buildArrayWalk sums a small array that fits the L1 cache, twice. The
// second pass runs against a warm cache, so its references hit unless a
// fault plan forces them to miss — and a forced miss there cannot merge
// into an in-flight cold-miss fill, so it costs real latency.
func buildArrayWalk() *isa.Program {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", 4<<10)
	b.LoadImm(isa.R5, 2)
	b.Label("pass")
	b.LoadImm(isa.R1, int64(arr))
	b.LoadImm(isa.R2, 4<<10/8)
	b.Label("loop")
	b.Ld(isa.R3, isa.R1, 0, false)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Addi(isa.R1, isa.R1, 8)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "pass")
	b.Halt()
	return b.MustFinish()
}

// TestLivelockDetected wedges the out-of-order pipeline — zero integer
// units, so the first ALU instruction can never issue — and expects the
// watchdog to convert the stall into ErrLivelock with a usable snapshot
// instead of spinning forever.
func TestLivelockDetected(t *testing.T) {
	b := asm.NewBuilder()
	b.Addi(isa.R1, isa.R1, 1)
	b.Halt()
	prog := b.MustFinish()

	cfg := R10000(Off)
	cfg.OOO.Units[isa.FUInt] = 0
	cfg.OOO.Govern.WatchdogCycles = 5000
	_, _, err := cfg.RunDetailed(prog)
	if !errors.Is(err, govern.ErrLivelock) {
		t.Fatalf("wedged pipeline returned %v, want ErrLivelock", err)
	}
	snap, ok := govern.SnapshotIn(err)
	if !ok {
		t.Fatal("livelock abort carries no snapshot")
	}
	if snap.ROBOccupied == 0 || snap.OldestInst == "" {
		t.Errorf("snapshot missing pipeline detail: %v", snap)
	}
	if snap.Cycle <= cfg.OOO.Govern.WatchdogCycles {
		t.Errorf("aborted at cycle %d, before the %d-cycle watchdog",
			snap.Cycle, cfg.OOO.Govern.WatchdogCycles)
	}
}

// TestBudgetErrorsAreTyped: exhausting the instruction budget must report
// both the new govern.ErrBudget and the legacy interp.ErrLimit sentinel,
// on both machines, with partial statistics attached.
func TestBudgetErrorsAreTyped(t *testing.T) {
	prog := buildSpin()
	for _, machine := range []func(Scheme) Config{R10000, Alpha21164} {
		cfg := machine(Off).WithMaxInsts(10_000)
		run, _, err := cfg.RunDetailed(prog)
		if !errors.Is(err, govern.ErrBudget) {
			t.Fatalf("%v: budget exhaustion returned %v, want ErrBudget", cfg.Machine, err)
		}
		if !errors.Is(err, interp.ErrLimit) {
			t.Errorf("%v: budget error does not wrap interp.ErrLimit", cfg.Machine)
		}
		snap, ok := govern.SnapshotIn(err)
		if !ok {
			t.Fatalf("%v: budget abort carries no snapshot", cfg.Machine)
		}
		if snap.Partial.DynInsts < 10_000 || run.Instrs == 0 {
			t.Errorf("%v: partial stats missing: snap=%v run.Instrs=%d",
				cfg.Machine, snap, run.Instrs)
		}
	}
}

// TestContextCancelAborts: a cancelled context ends a non-terminating run
// at the next governor poll on both machines.
func TestContextCancelAborts(t *testing.T) {
	prog := buildSpin()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, machine := range []func(Scheme) Config{R10000, Alpha21164} {
		cfg := machine(Off).WithContext(ctx)
		_, _, err := cfg.RunDetailed(prog)
		if !errors.Is(err, govern.ErrCanceled) {
			t.Fatalf("%v: cancelled run returned %v, want ErrCanceled", cfg.Machine, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: abort does not wrap context.Canceled", cfg.Machine)
		}
		if _, ok := govern.SnapshotIn(err); !ok {
			t.Errorf("%v: cancel abort carries no snapshot", cfg.Machine)
		}
	}
}

// TestForcedMissesPerturbOnlyTiming: a forced-miss plan must raise the
// measured miss count while leaving the architectural results — registers
// and data memory — identical to the clean run. (The miss counter and
// cache condition code legitimately differ: they observe the hierarchy.)
func TestForcedMissesPerturbOnlyTiming(t *testing.T) {
	prog := buildArrayWalk()
	for _, machine := range []func(Scheme) Config{R10000, Alpha21164} {
		cfg := machine(Off)
		clean, cleanM, err := cfg.RunDetailed(prog)
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(faults.Plan{Seed: 42, Rules: []faults.Rule{
			{Kind: faults.ForceMiss, EveryN: 4},
		}})
		forced, forcedM, err := cfg.WithFaults(inj).RunDetailed(prog)
		if err != nil {
			t.Fatal(err)
		}
		if forced.L1Misses <= clean.L1Misses {
			t.Errorf("%v: forced misses did not raise the miss count: %d vs %d",
				cfg.Machine, forced.L1Misses, clean.L1Misses)
		}
		if inj.Stats().ForcedMisses == 0 {
			t.Errorf("%v: no forced misses recorded by the injector", cfg.Machine)
		}
		if forcedM.G != cleanM.G || forcedM.FR != cleanM.FR {
			t.Errorf("%v: forced misses changed register state", cfg.Machine)
		}
		if !forcedM.Mem.Equal(cleanM.Mem) {
			t.Errorf("%v: forced misses changed data memory", cfg.Machine)
		}
		if forced.Cycles <= clean.Cycles {
			t.Errorf("%v: forced misses did not slow the run: %d vs %d cycles",
				cfg.Machine, forced.Cycles, clean.Cycles)
		}
	}
}

// TestJitterPreservesArchitecture is the scheme differential test: latency
// jitter on the memory system must leave every piece of architectural
// state — registers, memory, trap and miss counts, handler linkage —
// identical under both informing schemes on both machines, because timing
// never feeds back into architecture.
func TestJitterPreservesArchitecture(t *testing.T) {
	prog := buildDualScheme()
	for _, machine := range []func(Scheme) Config{R10000, Alpha21164} {
		for _, scheme := range []Scheme{TrapBranch, CondCode} {
			cfg := machine(scheme).WithMaxInsts(10_000_000)
			clean, cleanM, err := cfg.RunDetailed(prog)
			if err != nil {
				t.Fatal(err)
			}
			inj := faults.New(faults.Plan{Seed: 7, Rules: []faults.Rule{
				{Kind: faults.Jitter, EveryN: 2, MaxDelay: 9},
			}})
			jit, jitM, err := cfg.WithFaults(inj).RunDetailed(prog)
			if err != nil {
				t.Fatal(err)
			}
			name := cfg.Machine.String() + "/" + scheme.String()
			if inj.Stats().Jittered == 0 {
				t.Fatalf("%s: jitter plan never fired", name)
			}
			if jitM.G != cleanM.G || jitM.FR != cleanM.FR {
				t.Errorf("%s: jitter changed register state", name)
			}
			if !jitM.Mem.Equal(cleanM.Mem) {
				t.Errorf("%s: jitter changed data memory", name)
			}
			if jitM.Traps != cleanM.Traps || jitM.MissCounter != cleanM.MissCounter ||
				jitM.BmissTaken != cleanM.BmissTaken {
				t.Errorf("%s: jitter changed informing counts: traps %d/%d misses %d/%d",
					name, jitM.Traps, cleanM.Traps, jitM.MissCounter, cleanM.MissCounter)
			}
			if jitM.PC != cleanM.PC || jitM.Seq != cleanM.Seq {
				t.Errorf("%s: jitter changed control flow", name)
			}
			if jit.Traps != clean.Traps || jit.L1Misses != clean.L1Misses {
				t.Errorf("%s: jitter changed measured miss/trap counts", name)
			}
			if jit.Cycles < clean.Cycles {
				t.Errorf("%s: jittered run finished faster: %d vs %d cycles",
					name, jit.Cycles, clean.Cycles)
			}
		}
	}
}
