package core

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/isa"
)

// buildDualScheme creates a program instrumented for BOTH schemes at once:
// every reference is informing (for the trap scheme) and followed by a
// BMISS check (for the condition-code scheme); each path counts into its
// own register. Depending on the machine's configured scheme exactly one
// counter advances — and because both mechanisms observe the same
// architectural hit/miss stream, the two counts must be equal across runs.
func buildDualScheme() *isa.Program {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", 96<<10)
	b.J("start")

	b.Label("traph")
	b.Addi(isa.R20, isa.R20, 1)
	b.Rfmh()
	b.Label("cch")
	b.Addi(isa.R19, isa.R19, 1)
	b.Jr(isa.R22)

	b.Label("start")
	b.MtmharLabel("traph")
	b.LoadImm(isa.R1, int64(arr))
	b.LoadImm(isa.R2, 96<<10/8)
	b.Label("loop")
	b.Ld(isa.R3, isa.R1, 0, true)
	b.Bmiss(isa.R22, "cch")
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Addi(isa.R1, isa.R1, 8)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Halt()
	return b.MustFinish()
}

func TestCondCodeAndTrapObserveSameMisses(t *testing.T) {
	prog := buildDualScheme()
	for _, machine := range []func(Scheme) Config{R10000, Alpha21164} {
		name := machine(Off).Machine
		_, trapM, err := machine(TrapBranch).WithMaxInsts(10_000_000).RunDetailed(prog)
		if err != nil {
			t.Fatal(err)
		}
		ccRun, ccM, err := machine(CondCode).WithMaxInsts(10_000_000).RunDetailed(prog)
		if err != nil {
			t.Fatal(err)
		}
		if trapM.G[20] == 0 {
			t.Fatal("trap scheme counted nothing")
		}
		// In trap mode the BMISS still fires (CC is ordinary user state),
		// so r19 counts there too; in CC mode no traps fire.
		if ccM.G[20] != 0 {
			t.Errorf("%v: condcode scheme fired traps", name)
		}
		if trapM.G[20] != ccM.G[19] {
			t.Errorf("%v: trap count %d != condcode count %d — the two schemes observed different misses",
				name, trapM.G[20], ccM.G[19])
		}
		if ccRun.BmissTaken != ccRun.L1Misses {
			t.Errorf("%v: BMISS taken %d, L1 misses %d", name, ccRun.BmissTaken, ccRun.L1Misses)
		}
	}
}
