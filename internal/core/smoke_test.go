package core

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/isa"
)

// buildSweep returns a program that sums `words` sequential memory words
// `iters` times; every load is informing and a single miss handler (one
// register increment + return) counts misses into r20.
func buildSweep(words, iters int64, withHandler bool) *isa.Program {
	b := asm.NewBuilder()
	arr := b.Alloc("arr", uint64(words*8))

	b.J("start")
	b.Label("handler")
	b.Addi(isa.R20, isa.R20, 1)
	b.Rfmh()

	b.Label("start")
	if withHandler {
		b.MtmharLabel("handler")
	}
	b.LoadImm(isa.R1, int64(arr)) // base
	b.LoadImm(isa.R2, iters)      // outer counter
	b.Label("outer")
	b.Move(isa.R3, isa.R1)
	b.LoadImm(isa.R4, words)
	b.Label("inner")
	b.Ld(isa.R5, isa.R3, 0, true)
	b.Add(isa.R6, isa.R6, isa.R5)
	b.Addi(isa.R3, isa.R3, 8)
	b.Addi(isa.R4, isa.R4, -1)
	b.Bne(isa.R4, isa.R0, "inner")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "outer")
	b.Halt()
	return b.MustFinish()
}

func TestSmokeAllMachines(t *testing.T) {
	prog := buildSweep(4096, 3, true) // 32 KB array: misses on in-order 8KB L1
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"ooo-off", R10000(Off)},
		{"ooo-trap-branch", R10000(TrapBranch)},
		{"ooo-trap-exc", R10000(TrapException)},
		{"ooo-condcode", R10000(CondCode)},
		{"io-off", Alpha21164(Off)},
		{"io-trap", Alpha21164(TrapBranch)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, err := tc.cfg.WithMaxInsts(10_000_000).Run(prog)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if run.Cycles <= 0 || run.Instrs == 0 {
				t.Fatalf("degenerate stats: %+v", run)
			}
			if run.MemRefs == 0 {
				t.Fatal("no memory references recorded")
			}
			if got := run.TotalSlots(); got < run.BusySlots() {
				t.Fatalf("slot accounting broken: total %d < busy %d", got, run.BusySlots())
			}
			t.Logf("%s: %v", tc.name, run)
		})
	}
}

func TestTrapHandlerCountsMisses(t *testing.T) {
	prog := buildSweep(4096, 2, true)
	cfg := R10000(TrapBranch).WithMaxInsts(10_000_000)
	run, err := cfg.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if run.Traps == 0 {
		t.Fatal("expected informing traps on a 32KB sweep")
	}
	// The handler increments r20 once per trap; validate against the
	// functional record by re-running and inspecting final state.
	if run.Traps != run.L1Misses {
		// Every miss of an informing load with MHAR set traps exactly
		// once (handler loads are not informing and traps don't nest).
		t.Fatalf("traps %d != L1 misses %d", run.Traps, run.L1Misses)
	}
}

func TestSchemeOffHasNoTraps(t *testing.T) {
	prog := buildSweep(2048, 2, true)
	run, err := R10000(Off).WithMaxInsts(10_000_000).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if run.Traps != 0 {
		t.Fatalf("informing disabled but %d traps fired", run.Traps)
	}
}
