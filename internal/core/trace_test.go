package core

import (
	"testing"

	"informing/internal/stats"
)

// TestTraceInvariants checks per-instruction pipeline timestamps on both
// machines: one event per graduated instruction, strictly increasing
// sequence numbers, per-instruction stage ordering (fetch ≤ issue <
// complete < graduate), and non-decreasing graduation times.
func TestTraceInvariants(t *testing.T) {
	prog := buildResident()
	for _, cfg := range []Config{R10000(TrapBranch), Alpha21164(TrapBranch)} {
		var events []stats.TraceEvent
		traced := cfg.WithMaxInsts(10_000_000).WithTrace(func(ev stats.TraceEvent) {
			events = append(events, ev)
		})
		run, err := traced.Run(prog)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Machine, err)
		}
		if uint64(len(events)) != run.Instrs {
			t.Fatalf("%v: %d events for %d instructions", cfg.Machine, len(events), run.Instrs)
		}
		var traps uint64
		for i, ev := range events {
			if i > 0 && ev.Seq <= events[i-1].Seq {
				t.Fatalf("%v: seq not increasing at %d", cfg.Machine, i)
			}
			if i > 0 && ev.Graduate < events[i-1].Graduate {
				t.Fatalf("%v: graduation went backwards at seq %d", cfg.Machine, ev.Seq)
			}
			if ev.Issue < ev.Fetch {
				t.Fatalf("%v: seq %d issued (%d) before fetch (%d)", cfg.Machine, ev.Seq, ev.Issue, ev.Fetch)
			}
			if ev.Complete < ev.Issue {
				t.Fatalf("%v: seq %d completed (%d) before issue (%d)", cfg.Machine, ev.Seq, ev.Complete, ev.Issue)
			}
			if ev.Graduate <= ev.Complete && ev.Disasm != "halt" {
				t.Fatalf("%v: seq %d graduated (%d) before completing (%d)",
					cfg.Machine, ev.Seq, ev.Graduate, ev.Complete)
			}
			if ev.Trap {
				traps++
				if ev.MemLevel <= 1 {
					t.Fatalf("%v: seq %d trapped on level %d", cfg.Machine, ev.Seq, ev.MemLevel)
				}
			}
			if ev.Disasm == "" {
				t.Fatalf("%v: seq %d has no disassembly", cfg.Machine, ev.Seq)
			}
		}
		if traps != run.Traps {
			t.Errorf("%v: %d trap events, run counted %d", cfg.Machine, traps, run.Traps)
		}
	}
}
