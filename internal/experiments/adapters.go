package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"informing/internal/core"
	"informing/internal/workload"
)

// This file is the request→cell adapter layer used by internal/serve (and
// cmd/handlerbench): it resolves the wire-level names a client sends —
// plan labels like "S10" or "CC1", experiment names like "fig3" — into
// the PlanSpec / benchmark sets the harness executes. Keeping the parsing
// here means the serving layer and the CLIs agree on one vocabulary.

// maxHandlerK bounds the handler body size a parsed label may request, so
// a remote client cannot ask the assembler for a multi-megabyte epilogue.
// The paper's largest handler is 100 instructions.
const maxHandlerK = 1000

// maxPrefetchDist bounds the byte displacement a PF<d> label may request
// (the useful range is a handful of cache lines; the bound just keeps
// remote input sane).
const maxPrefetchDist = 1 << 16

// PlanByLabel resolves a report-style plan label into the PlanSpec that
// produces it, accepting exactly the labels the experiment tables print:
//
//	N                the uninstrumented baseline
//	CNT              the §1 serializing miss-counter strawman
//	S<k>, U<k>       single/unique K-instruction trap handlers
//	CC<k>            the explicit condition-code check
//	SMP<k>/<p>       sampled single handler (p a power of two)
//	PF<d>            per-site stride-prefetch handler, d bytes ahead (§6)
//	S<k>/exception   trap delivered as a graduation exception (§3.2);
//	                 the "/branch" suffix is accepted and canonicalised
//	                 away, branch delivery being the default
//
// The returned spec's Label is the canonical form of the input ("S1/branch"
// canonicalises to "S1"); use it as the cache-key component.
func PlanByLabel(label string) (PlanSpec, error) {
	bad := func() (PlanSpec, error) {
		return PlanSpec{}, fmt.Errorf("experiments: unknown plan label %q", label)
	}
	switch label {
	case "N":
		return PlanSpec{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }}, nil
	case "CNT":
		return PlanSpec{"CNT", core.Off, func() workload.Plan { return workload.NewPlanCounter() }}, nil
	}

	if rest, ok := strings.CutPrefix(label, "SMP"); ok {
		ks, ps, ok := strings.Cut(rest, "/")
		if !ok {
			return bad()
		}
		k, err := parseK(ks)
		if err != nil {
			return bad()
		}
		p, err := strconv.Atoi(ps)
		if err != nil {
			return bad()
		}
		plan, err := workload.NewPlanSampled(k, p)
		if err != nil {
			return PlanSpec{}, fmt.Errorf("experiments: plan label %q: %w", label, err)
		}
		return PlanSpec{plan.Name(), core.TrapBranch,
			func() workload.Plan { return workload.MustPlanSampled(k, p) }}, nil
	}

	if rest, ok := strings.CutPrefix(label, "PF"); ok {
		d, err := strconv.Atoi(rest)
		if err != nil || d < 1 || d > maxPrefetchDist {
			return bad()
		}
		return PlanSpec{fmt.Sprintf("PF%d", d), core.TrapBranch,
			func() workload.Plan { return workload.NewPlanPrefetch(int64(d)) }}, nil
	}

	if rest, ok := strings.CutPrefix(label, "CC"); ok {
		k, err := parseK(rest)
		if err != nil {
			return bad()
		}
		return PlanSpec{fmt.Sprintf("CC%d", k), core.CondCode,
			func() workload.Plan { return workload.NewPlanCondCode(k) }}, nil
	}

	// S<k> and U<k>, with an optional trap-delivery suffix.
	var unique bool
	rest := label
	switch {
	case strings.HasPrefix(label, "S"):
		rest = label[1:]
	case strings.HasPrefix(label, "U"):
		unique, rest = true, label[1:]
	default:
		return bad()
	}
	scheme := core.TrapBranch
	suffix := ""
	if ks, mode, ok := strings.Cut(rest, "/"); ok {
		switch mode {
		case "branch": // canonical default; suffix dropped
		case "exception":
			scheme, suffix = core.TrapException, "/exception"
		default:
			return bad()
		}
		rest = ks
	}
	k, err := parseK(rest)
	if err != nil {
		return bad()
	}
	if unique {
		return PlanSpec{fmt.Sprintf("U%d%s", k, suffix), scheme,
			func() workload.Plan { return workload.NewPlanUnique(k) }}, nil
	}
	return PlanSpec{fmt.Sprintf("S%d%s", k, suffix), scheme,
		func() workload.Plan { return workload.NewPlanSingle(k) }}, nil
}

func parseK(s string) (int, error) {
	k, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if k < 1 || k > maxHandlerK {
		return 0, fmt.Errorf("handler size %d outside [1,%d]", k, maxHandlerK)
	}
	return k, nil
}

// ConfigFor exposes the machine-configuration choice HandlerOverhead makes
// for each cell (R10000 for out-of-order, Alpha21164 for in-order) to the
// serving layer, so a served cell runs under exactly the configuration the
// harness would use.
func ConfigFor(machine core.Machine, scheme core.Scheme) core.Config {
	return configFor(machine, scheme)
}

// NamedExperiment is one of the table-shaped §4.2 experiments, resolved by
// Named: the benchmark set, the plan bars, the figure title the CLI prints,
// and whether the CLI follows the figure with the overhead summary.
type NamedExperiment struct {
	Name       string
	Title      string
	Benchmarks []workload.Benchmark
	Specs      []PlanSpec
	// Baseline is the Options.Baseline the experiment uses ("" = the "N"
	// bar).
	Baseline string
	// Summary reports whether the CLI appends FormatOverheadSummary after
	// the figure (a blank line between the two).
	Summary bool
}

// Named resolves the table-shaped experiments of cmd/handlerbench by name:
// fig2, fig3, h100, condcode, sampling, counters. (trapmode is not table
// shaped — it reports execution-time ratios — and is not served.) The
// titles here are the single source of truth for the CLI's output, so
// tables served by informd are byte-identical to the CLI's.
func Named(name string) (NamedExperiment, error) {
	mustBench := func(names ...string) []workload.Benchmark {
		bms := make([]workload.Benchmark, 0, len(names))
		for _, n := range names {
			bm, ok := workload.ByName(n)
			if !ok {
				// The name lists below are static; an unknown name is a
				// programming error, caught by TestNamedExperiments.
				panic(fmt.Sprintf("experiments: unknown benchmark %q", n))
			}
			bms = append(bms, bm)
		}
		return bms
	}
	switch name {
	case "fig2":
		return NamedExperiment{
			Name:       name,
			Title:      "Figure 2: performance of generic miss handlers (1 and 10 instructions)",
			Benchmarks: workload.Fig2Set(),
			Specs:      Figure2Plans(),
			Summary:    true,
		}, nil
	case "fig3":
		return NamedExperiment{
			Name:       name,
			Title:      "Figure 3: su2cor with generic miss handlers",
			Benchmarks: mustBench("su2cor"),
			Specs:      Figure2Plans(),
		}, nil
	case "h100":
		return NamedExperiment{
			Name:       name,
			Title:      "100-instruction handlers (paper: compress ~6x, su2cor ~7x, ora ~2%)",
			Benchmarks: mustBench("compress", "su2cor", "ora"),
			Specs:      H100Plans(),
		}, nil
	case "condcode":
		return NamedExperiment{
			Name:       name,
			Title:      "Condition-code checks (CC) vs unique-handler traps (U)",
			Benchmarks: workload.Fig2Set(),
			Specs:      CondCodePlans(),
			Summary:    true,
		}, nil
	case "sampling":
		return NamedExperiment{
			Name:       name,
			Title:      "Sampled 100-instruction handlers (§4.2.2 mitigation)",
			Benchmarks: mustBench("compress", "su2cor", "tomcatv"),
			Specs:      SamplingPlans(),
		}, nil
	case "counters":
		return NamedExperiment{
			Name:       name,
			Title:      "§1 motivation: serializing miss counters (CNT) vs informing mechanisms",
			Benchmarks: mustBench("compress", "espresso", "alvinn", "tomcatv"),
			Specs:      MotivationPlans(),
		}, nil
	case "prefetch":
		return NamedExperiment{
			Name:       name,
			Title:      "§6 case study: stride prefetching written as a miss handler",
			Benchmarks: mustBench("compress", "espresso", "tomcatv"),
			Specs:      PrefetchPlans(),
		}, nil
	}
	return NamedExperiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// NamedExperimentNames lists the experiments Named resolves, in the order
// cmd/handlerbench runs them.
func NamedExperimentNames() []string {
	return []string{"fig2", "fig3", "h100", "condcode", "sampling", "counters", "prefetch"}
}
