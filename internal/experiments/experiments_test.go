package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"informing/internal/core"
	"informing/internal/govern"
	"informing/internal/workload"
)

func tinyOptions() Options {
	return Options{Scale: 1, MaxInsts: 50_000_000,
		Machines: []core.Machine{core.OutOfOrder, core.InOrder}}
}

func pickBench(t *testing.T, name string) []workload.Benchmark {
	t.Helper()
	bm, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return []workload.Benchmark{bm}
}

func TestHandlerOverheadBaselineIsOne(t *testing.T) {
	res, err := HandlerOverhead(pickBench(t, "espresso"), Figure2Plans(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 { // 5 plans x 2 machines
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.Plan == "N" {
			if tot := r.Norm.Total(); tot < 0.999 || tot > 1.001 {
				t.Errorf("%v baseline normalises to %.3f", r.Machine, tot)
			}
		} else if r.Norm.Total() < 0.999 {
			t.Errorf("%v/%s faster than baseline: %.3f", r.Machine, r.Plan, r.Norm.Total())
		}
	}
}

func TestOverheadOrderingS1LeqS10(t *testing.T) {
	// A longer handler can never be cheaper than a shorter one for the
	// same plan shape on the in-order machine (no overlap there).
	res, err := HandlerOverhead(pickBench(t, "tomcatv"), Figure2Plans(),
		Options{Scale: 1, MaxInsts: 50_000_000, Machines: []core.Machine{core.InOrder}})
	if err != nil {
		t.Fatal(err)
	}
	byPlan := map[string]float64{}
	for _, r := range res {
		byPlan[r.Plan] = r.Norm.Total()
	}
	if byPlan["S10"] < byPlan["S1"] {
		t.Errorf("S10 (%.3f) cheaper than S1 (%.3f)", byPlan["S10"], byPlan["S1"])
	}
	if byPlan["U10"] < byPlan["U1"] {
		t.Errorf("U10 (%.3f) cheaper than U1 (%.3f)", byPlan["U10"], byPlan["U1"])
	}
}

func TestFigure3Su2corShape(t *testing.T) {
	res, err := Figure3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var ooS10, ioS10 float64
	for _, r := range res {
		if r.Plan == "S10" {
			if r.Machine == core.OutOfOrder {
				ooS10 = r.Norm.Total()
			} else {
				ioS10 = r.Norm.Total()
			}
		}
	}
	// The paper's Figure 3: su2cor's 10-instruction handler roughly
	// triples in-order execution time while the out-of-order machine
	// stays under ~1.6x.
	if ioS10 < 1.8 {
		t.Errorf("in-order su2cor S10 overhead %.2f, want >= 1.8 (paper ~3x)", ioS10)
	}
	if ooS10 > 1.7 {
		t.Errorf("out-of-order su2cor S10 overhead %.2f, want < 1.7", ooS10)
	}
	if ooS10 >= ioS10 {
		t.Error("out-of-order machine should hide more handler cost than in-order")
	}
}

func TestTrapModeComparisonDirection(t *testing.T) {
	ratios, res, err := TrapModeComparison(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, k := range []string{"S1", "S10"} {
		if ratios[k] <= 1.0 {
			t.Errorf("%s: exception/branch ratio %.3f, want > 1 (paper: +7-9%%)", k, ratios[k])
		}
		if ratios[k] > 3.0 {
			t.Errorf("%s: exception/branch ratio %.3f implausibly large", k, ratios[k])
		}
	}
}

func TestH100KnownPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := H100(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench string, machine core.Machine, plan string) float64 {
		for _, r := range res {
			if r.Benchmark == bench && r.Machine == machine && r.Plan == plan {
				return r.Norm.Total()
			}
		}
		t.Fatalf("missing %s/%v/%s", bench, machine, plan)
		return 0
	}
	// The paper: 100-instruction handlers slow compress ~6x and su2cor
	// ~7x, while ora stays near 1.0 (~2% overhead). Shape check: the
	// miss-heavy benchmarks blow up, ora does not.
	if v := get("ora", core.OutOfOrder, "S100"); v > 1.15 {
		t.Errorf("ora with 100-instr handlers: %.2fx, want ~1.0", v)
	}
	if v := get("compress", core.OutOfOrder, "S100"); v < 2.0 {
		t.Errorf("compress with 100-instr handlers: %.2fx, want large", v)
	}
	if v := get("su2cor", core.InOrder, "S100"); v < 3.0 {
		t.Errorf("su2cor in-order with 100-instr handlers: %.2fx, want very large", v)
	}
}

func TestCondCodeCostsLikeUniqueTrap(t *testing.T) {
	// §2 of the paper: the condition-code scheme performs like the trap
	// scheme with a one-instruction-per-reference cost. Compare CC
	// against U on one benchmark: within a loose band.
	res, err := HandlerOverhead(pickBench(t, "alvinn"), CondCodePlans(),
		Options{Scale: 1, MaxInsts: 50_000_000, Machines: []core.Machine{core.OutOfOrder}})
	if err != nil {
		t.Fatal(err)
	}
	byPlan := map[string]float64{}
	for _, r := range res {
		byPlan[r.Plan] = r.Norm.Total()
	}
	for _, k := range []string{"1", "10"} {
		cc, u := byPlan["CC"+k], byPlan["U"+k]
		if cc == 0 || u == 0 {
			t.Fatalf("missing plan results: %v", byPlan)
		}
		if cc/u > 1.35 || u/cc > 1.35 {
			t.Errorf("CC%s (%.3f) and U%s (%.3f) should perform similarly", k, cc, k, u)
		}
	}
}

func TestReportFormatting(t *testing.T) {
	res, err := HandlerOverhead(pickBench(t, "espresso"), Figure2Plans(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	fig := FormatFigure("Test Figure", res)
	for _, want := range []string{"Test Figure", "out-of-order machine", "in-order machine", "espresso", "S10"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure missing %q", want)
		}
	}
	sum := FormatOverheadSummary(res)
	if !strings.Contains(sum, "mean") || strings.Contains(sum, "N ") && false {
		t.Errorf("summary malformed:\n%s", sum)
	}
	raw := FormatRuns(res)
	if !strings.Contains(raw, "cycles=") {
		t.Error("raw dump missing stats")
	}
}

// TestParallelMatchesSequential is the parallel runner's differential
// gate: a reduced Figure-2 sweep must produce identical []Result — order,
// cycles, Norm, every counter — at every worker count, and the formatted
// tables must be byte-identical. Run it under -race to also shake out
// data races in the pool and the shared program cache.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker-count differential sweep is heavy")
	}
	var bms []workload.Benchmark
	for _, name := range []string{"espresso", "alvinn", "ora"} {
		bms = append(bms, pickBench(t, name)[0])
	}
	seqOpt := tinyOptions()
	seqOpt.Workers = 1
	seq, err := HandlerOverhead(bms, Figure2Plans(), seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(bms)*2*len(Figure2Plans()) {
		t.Fatalf("sequential sweep returned %d results", len(seq))
	}
	for _, workers := range []int{0, 2, 8} {
		parOpt := tinyOptions()
		parOpt.Workers = workers
		par, err := HandlerOverhead(bms, Figure2Plans(), parOpt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			for i := range seq {
				if !reflect.DeepEqual(seq[i], par[i]) {
					t.Fatalf("workers=%d: result %d differs:\nseq: %+v\npar: %+v",
						workers, i, seq[i], par[i])
				}
			}
			t.Fatalf("workers=%d: results differ", workers)
		}
		if FormatFigure("t", seq) != FormatFigure("t", par) {
			t.Errorf("workers=%d: formatted tables differ", workers)
		}
	}
}

// TestHandlerOverheadCancelledPartial shows the pool surfacing partial
// results with govern.ErrCanceled: a trip-wire plan cancels the sweep's
// context partway through, and the completed prefix still comes back.
func TestHandlerOverheadCancelledPartial(t *testing.T) {
	makeSpecs := func(cancel context.CancelFunc) []PlanSpec {
		specs := Figure2Plans()[:3] // N, S1, U1
		tripped := specs[2].Make
		specs[2].Make = func() workload.Plan {
			cancel() // the "Ctrl-C" arrives while cell 2 is being built
			return tripped()
		}
		return specs
	}

	// Sequential path: cells run in order, so exactly the two cells
	// before the trip-wire complete.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{Scale: 1, MaxInsts: 50_000_000,
		Machines: []core.Machine{core.OutOfOrder}, Ctx: ctx, Workers: 1}
	res, err := HandlerOverhead(pickBench(t, "espresso"), makeSpecs(cancel), opt)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("sequential: error %v does not wrap govern.ErrCanceled", err)
	}
	if len(res) != 2 || res[0].Plan != "N" || res[1].Plan != "S1" {
		t.Fatalf("sequential partial results %+v, want the N and S1 cells", res)
	}

	// Parallel path: in-flight earlier cells may also be cancelled, but
	// whatever comes back must be a prefix of the deterministic order and
	// the error must still wrap govern.ErrCanceled.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opt.Ctx = ctx2
	opt.Workers = 4
	res, err = HandlerOverhead(pickBench(t, "espresso"), makeSpecs(cancel2), opt)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("parallel: error %v does not wrap govern.ErrCanceled", err)
	}
	if len(res) > 2 {
		t.Fatalf("parallel returned %d results past the cancellation point", len(res))
	}
	for i, want := range []string{"N", "S1"}[:len(res)] {
		if res[i].Plan != want {
			t.Errorf("parallel partial result %d is %s, want %s", i, res[i].Plan, want)
		}
	}
}

// TestBaselineExplicit pins the satellite bugfix: sweeps without an "N"
// plan must either name their baseline or fail loudly, never silently
// normalise against whatever spec came first.
func TestBaselineExplicit(t *testing.T) {
	noN := []PlanSpec{
		{"S1", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"S10", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(10) }},
	}
	opt := Options{Scale: 1, MaxInsts: 50_000_000, Machines: []core.Machine{core.OutOfOrder}}

	if _, err := HandlerOverhead(pickBench(t, "espresso"), noN, opt); err == nil ||
		!strings.Contains(err.Error(), "Options.Baseline") {
		t.Errorf("missing-N sweep did not demand an explicit baseline: %v", err)
	}

	opt.Baseline = "S99"
	if _, err := HandlerOverhead(pickBench(t, "espresso"), noN, opt); err == nil ||
		!strings.Contains(err.Error(), "S99") {
		t.Errorf("unknown baseline not rejected: %v", err)
	}

	opt.Baseline = "S1"
	res, err := HandlerOverhead(pickBench(t, "espresso"), noN, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Plan == "S1" {
			if tot := r.Norm.Total(); tot < 0.999 || tot > 1.001 {
				t.Errorf("explicit baseline normalises to %.3f, want 1.0", tot)
			}
		}
	}
}

// TestProgCacheShares verifies the workload cache hands every machine the
// same assembled program for a given (benchmark, plan) cell.
func TestProgCacheShares(t *testing.T) {
	bm := pickBench(t, "espresso")[0]
	specs := Figure2Plans()
	cache := newProgCache(1)
	p1, err := cache.get(bm, specs[1])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cache.get(bm, specs[1])
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same (benchmark, plan) built twice")
	}
	p3, err := cache.get(bm, specs[2])
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("distinct plans share a program")
	}
}

// TestCountersMotivation pins the paper's §1 argument: on the out-of-order
// machine, per-reference monitoring through serializing miss counters is
// dramatically slower than either informing mechanism.
func TestCountersMotivation(t *testing.T) {
	res, err := HandlerOverhead(pickBench(t, "alvinn"), MotivationPlans(),
		Options{Scale: 1, MaxInsts: 50_000_000, Machines: []core.Machine{core.OutOfOrder}})
	if err != nil {
		t.Fatal(err)
	}
	byPlan := map[string]float64{}
	for _, r := range res {
		byPlan[r.Plan] = r.Norm.Total()
	}
	if byPlan["CNT"] < 2.0 {
		t.Errorf("counter strawman only %.2fx on out-of-order; serialization not modelled?", byPlan["CNT"])
	}
	for _, k := range []string{"CC1", "S1"} {
		if byPlan[k] >= byPlan["CNT"]/2 {
			t.Errorf("%s (%.2fx) not clearly cheaper than counters (%.2fx)", k, byPlan[k], byPlan["CNT"])
		}
	}
}
