// Package experiments drives the paper's evaluation: the generic
// miss-handler overhead studies of §4.2 (Figures 2 and 3, the
// 100-instruction handler results, and the trap-as-branch vs
// trap-as-exception comparison) over the workload suite, and formats the
// results as the tables/series the paper reports. The coherence case
// study (Figure 4) lives in internal/coherence.
package experiments

import (
	"context"
	"fmt"

	"informing/internal/core"
	"informing/internal/stats"
	"informing/internal/workload"
)

// PlanSpec pairs an instrumentation plan constructor with the machine
// scheme it requires.
type PlanSpec struct {
	Label  string
	Scheme core.Scheme
	Make   func() workload.Plan
}

// Figure2Plans returns the five bars of Figures 2 and 3: no informing
// (N), single and unique handlers with 1- and 10-instruction bodies.
func Figure2Plans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"S1", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"U1", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(1) }},
		{"S10", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(10) }},
		{"U10", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(10) }},
	}
}

// H100Plans returns the 100-instruction handler variants discussed in
// §4.2.2.
func H100Plans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"S100", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(100) }},
		{"U100", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(100) }},
	}
}

// SamplingPlans compares a full 100-instruction handler against sampled
// variants (§4.2.2: "optimizations such as sampling could be used to
// reduce the overhead").
func SamplingPlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"S100", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(100) }},
		{"SMP100/16", core.TrapBranch, func() workload.Plan { return workload.MustPlanSampled(100, 16) }},
		{"SMP100/64", core.TrapBranch, func() workload.Plan { return workload.MustPlanSampled(100, 64) }},
	}
}

// MotivationPlans reproduces the paper's §1 argument: per-reference miss
// detection via serializing hardware counters (the status quo the paper
// improves on) versus the condition-code check and the single-handler
// trap.
func MotivationPlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"CNT", core.Off, func() workload.Plan { return workload.NewPlanCounter() }},
		{"CC1", core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(1) }},
		{"S1", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
	}
}

// CondCodePlans compares the explicit condition-code check (§2.1) against
// the equivalent trap plans.
func CondCodePlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"CC1", core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(1) }},
		{"U1", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(1) }},
		{"CC10", core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(10) }},
		{"U10", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(10) }},
	}
}

// Result is one benchmark × machine × plan measurement.
type Result struct {
	Benchmark string
	Machine   core.Machine
	Plan      string
	Run       stats.Run
	// Norm is the slot breakdown normalised to the same benchmark and
	// machine's "N" run (the paper's y-axis).
	Norm stats.Normalized
}

// Options controls experiment size.
type Options struct {
	Scale    int64  // workload iteration multiplier (1 = paper-shaped default)
	MaxInsts uint64 // per-run dynamic instruction guard
	Machines []core.Machine

	// Ctx, when non-nil, cancels in-flight simulations on expiry or
	// interrupt; the experiment then returns the results completed so
	// far together with the error.
	Ctx context.Context
}

// DefaultOptions returns full-size settings for both machines.
func DefaultOptions() Options {
	return Options{Scale: 1, MaxInsts: 100_000_000,
		Machines: []core.Machine{core.OutOfOrder, core.InOrder}}
}

func configFor(machine core.Machine, scheme core.Scheme) core.Config {
	if machine == core.InOrder {
		return core.Alpha21164(scheme)
	}
	return core.R10000(scheme)
}

// HandlerOverhead runs every benchmark under every plan on the selected
// machines. The first plan in specs is treated as the normalisation
// baseline (by convention "N").
//
// On error — including cancellation through opt.Ctx — the results
// completed so far are returned alongside it, so an interrupted sweep
// still yields a partial report.
func HandlerOverhead(bms []workload.Benchmark, specs []PlanSpec, opt Options) ([]Result, error) {
	var out []Result
	for _, bm := range bms {
		for _, machine := range opt.Machines {
			var base stats.Run
			for i, spec := range specs {
				prog, err := workload.Build(bm, spec.Make(), opt.Scale)
				if err != nil {
					return out, fmt.Errorf("%s/%s: %w", bm.Name, spec.Label, err)
				}
				cfg := configFor(machine, spec.Scheme).WithMaxInsts(opt.MaxInsts)
				if opt.Ctx != nil {
					cfg = cfg.WithContext(opt.Ctx)
				}
				run, err := cfg.Run(prog)
				if err != nil {
					return out, fmt.Errorf("%s/%s/%v: %w", bm.Name, spec.Label, machine, err)
				}
				if i == 0 {
					base = run
				}
				out = append(out, Result{
					Benchmark: bm.Name,
					Machine:   machine,
					Plan:      spec.Label,
					Run:       run,
					Norm:      run.NormalizeTo(base),
				})
			}
		}
	}
	return out, nil
}

// Figure2 reproduces Figure 2 (thirteen benchmarks, 1- and 10-instruction
// handlers, both machines).
func Figure2(opt Options) ([]Result, error) {
	return HandlerOverhead(workload.Fig2Set(), Figure2Plans(), opt)
}

// Figure3 reproduces Figure 3 (the su2cor outlier).
func Figure3(opt Options) ([]Result, error) {
	bm, _ := workload.ByName("su2cor")
	return HandlerOverhead([]workload.Benchmark{bm}, Figure2Plans(), opt)
}

// H100 reproduces the §4.2.2 text results for 100-instruction handlers on
// the three benchmarks the paper names (compress ~6x, su2cor ~7x, ora low
// overhead).
func H100(opt Options) ([]Result, error) {
	var bms []workload.Benchmark
	for _, name := range []string{"compress", "su2cor", "ora"} {
		bm, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		bms = append(bms, bm)
	}
	return HandlerOverhead(bms, H100Plans(), opt)
}

// TrapModeComparison reproduces the §4.2.2 branch-vs-exception result:
// compress with single 1- and 10-instruction handlers on the out-of-order
// machine under both trap implementations. It returns the exception/branch
// execution-time ratios for each handler size.
func TrapModeComparison(opt Options) (map[string]float64, []Result, error) {
	bm, _ := workload.ByName("compress")
	specs := []PlanSpec{
		{"S1/branch", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"S1/exception", core.TrapException, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"S10/branch", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(10) }},
		{"S10/exception", core.TrapException, func() workload.Plan { return workload.NewPlanSingle(10) }},
	}
	o := opt
	o.Machines = []core.Machine{core.OutOfOrder}
	res, err := HandlerOverhead([]workload.Benchmark{bm}, specs, o)
	if err != nil {
		return nil, res, err
	}
	byPlan := map[string]stats.Run{}
	for _, r := range res {
		byPlan[r.Plan] = r.Run
	}
	ratios := map[string]float64{}
	for _, k := range []string{"S1", "S10"} {
		br := byPlan[k+"/branch"]
		ex := byPlan[k+"/exception"]
		if br.Cycles > 0 {
			ratios[k] = float64(ex.Cycles) / float64(br.Cycles)
		}
	}
	return ratios, res, nil
}
