// Package experiments drives the paper's evaluation: the generic
// miss-handler overhead studies of §4.2 (Figures 2 and 3, the
// 100-instruction handler results, and the trap-as-branch vs
// trap-as-exception comparison) over the workload suite, and formats the
// results as the tables/series the paper reports. The coherence case
// study (Figure 4) lives in internal/coherence.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"informing/internal/core"
	"informing/internal/obs"
	"informing/internal/sched"
	"informing/internal/stats"
	"informing/internal/workload"
)

// PlanSpec pairs an instrumentation plan constructor with the machine
// scheme it requires.
type PlanSpec struct {
	Label  string
	Scheme core.Scheme
	Make   func() workload.Plan
}

// Figure2Plans returns the five bars of Figures 2 and 3: no informing
// (N), single and unique handlers with 1- and 10-instruction bodies.
func Figure2Plans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"S1", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"U1", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(1) }},
		{"S10", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(10) }},
		{"U10", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(10) }},
	}
}

// H100Plans returns the 100-instruction handler variants discussed in
// §4.2.2.
func H100Plans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"S100", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(100) }},
		{"U100", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(100) }},
	}
}

// SamplingPlans compares a full 100-instruction handler against sampled
// variants (§4.2.2: "optimizations such as sampling could be used to
// reduce the overhead").
func SamplingPlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"S100", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(100) }},
		{"SMP100/16", core.TrapBranch, func() workload.Plan { return workload.MustPlanSampled(100, 16) }},
		{"SMP100/64", core.TrapBranch, func() workload.Plan { return workload.MustPlanSampled(100, 64) }},
	}
}

// MotivationPlans reproduces the paper's §1 argument: per-reference miss
// detection via serializing hardware counters (the status quo the paper
// improves on) versus the condition-code check and the single-handler
// trap.
func MotivationPlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"CNT", core.Off, func() workload.Plan { return workload.NewPlanCounter() }},
		{"CC1", core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(1) }},
		{"S1", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
	}
}

// CondCodePlans compares the explicit condition-code check (§2.1) against
// the equivalent trap plans.
func CondCodePlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"CC1", core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(1) }},
		{"U1", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(1) }},
		{"CC10", core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(10) }},
		{"U10", core.TrapBranch, func() workload.Plan { return workload.NewPlanUnique(10) }},
	}
}

// Result is one benchmark × machine × plan measurement.
type Result struct {
	Benchmark string
	Machine   core.Machine
	Plan      string
	Run       stats.Run
	// Norm is the slot breakdown normalised to the same benchmark and
	// machine's "N" run (the paper's y-axis).
	Norm stats.Normalized
}

// Options controls experiment size and scheduling.
type Options struct {
	Scale    int64  // workload iteration multiplier (1 = paper-shaped default)
	MaxInsts uint64 // per-run dynamic instruction guard
	Machines []core.Machine

	// Ctx, when non-nil, cancels in-flight simulations on expiry or
	// interrupt; the experiment then returns the results completed so
	// far together with the error.
	Ctx context.Context

	// Workers bounds the worker pool that shards the (benchmark, machine,
	// plan) cells: <= 0 selects runtime.GOMAXPROCS(0), and 1 is the
	// sequential reference path (the CLIs' -j flag). Any value produces
	// bit-identical results — see internal/sched's determinism contract.
	Workers int

	// Policy selects the data-hierarchy replacement policy for every cell
	// ("" or "lru" = the built-in true-LRU path; see mem.PolicyNames).
	// Invalid names surface as the first cell's run error.
	Policy string

	// Baseline names the plan label every result is normalised against
	// (the figures' y-axis). Empty selects the spec labelled "N"; when no
	// such spec exists HandlerOverhead returns an error instead of
	// silently normalising against whatever spec came first, so sweeps
	// with unconventional plan lists (e.g. TrapModeComparison's
	// branch-vs-exception specs) must say which bar is the baseline.
	Baseline string

	// Obs, when non-nil, receives live metrics from every cell. obs.Sim's
	// counters and histograms are atomic, so the one registry is shared
	// across the worker pool; rates and distributions aggregate over the
	// whole sweep. Nil (the default) keeps the hot path allocation-free.
	Obs *obs.Sim

	// Trace, when non-nil, receives sampled TraceEvents from every cell
	// (TraceEvery selects the source-side 1-in-N sampling; 0 or 1 traces
	// every instruction). The callback must be goroutine-safe when
	// Workers != 1 — the obs sinks are.
	Trace      func(stats.TraceEvent)
	TraceEvery uint64
}

// DefaultOptions returns full-size settings for both machines.
func DefaultOptions() Options {
	return Options{Scale: 1, MaxInsts: 100_000_000,
		Machines: []core.Machine{core.OutOfOrder, core.InOrder}}
}

func configFor(machine core.Machine, scheme core.Scheme) core.Config {
	if machine == core.InOrder {
		return core.Alpha21164(scheme)
	}
	return core.R10000(scheme)
}

// baselineIndex resolves which spec the sweep normalises against. An
// explicit Options.Baseline must name one of the specs; otherwise the
// spec labelled "N" is chosen, and its absence is an error (see
// Options.Baseline).
func baselineIndex(specs []PlanSpec, baseline string) (int, error) {
	want := baseline
	if want == "" {
		want = "N"
	}
	for i, spec := range specs {
		if spec.Label == want {
			return i, nil
		}
	}
	if baseline == "" {
		return 0, fmt.Errorf("experiments: no %q plan among %s to normalise against; set Options.Baseline explicitly",
			want, planLabels(specs))
	}
	return 0, fmt.Errorf("experiments: baseline plan %q not among %s", baseline, planLabels(specs))
}

func planLabels(specs []PlanSpec) string {
	labels := make([]string, len(specs))
	for i, spec := range specs {
		labels[i] = spec.Label
	}
	return "[" + strings.Join(labels, " ") + "]"
}

// HandlerOverhead runs every benchmark under every plan on the selected
// machines, sharding the independent (benchmark, machine, plan) cells
// across an Options.Workers-bounded pool (internal/sched). Results come
// back in the deterministic benchmark → machine → plan order regardless
// of worker count; each Result's Norm is computed against the baseline
// plan's run (Options.Baseline, by default "N") after the parallel join,
// never racily inside workers. Workload programs are assembled once per
// (benchmark, plan) and shared across machines and workers.
//
// On error — including cancellation through opt.Ctx, which every
// worker's run governor polls — the contiguous prefix of results
// completed before the first failing cell is returned alongside it, so
// an interrupted sweep still yields a partial report.
func HandlerOverhead(bms []workload.Benchmark, specs []PlanSpec, opt Options) ([]Result, error) {
	baseIdx, err := baselineIndex(specs, opt.Baseline)
	if err != nil {
		return nil, err
	}

	type cell struct {
		bm      workload.Benchmark
		machine core.Machine
		spec    PlanSpec
	}
	var cells []cell
	for _, bm := range bms {
		for _, machine := range opt.Machines {
			for _, spec := range specs {
				cells = append(cells, cell{bm: bm, machine: machine, spec: spec})
			}
		}
	}

	cache := newProgCache(opt.Scale)
	jobs := make([]sched.Job[Result], len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func(ctx context.Context) (Result, error) {
			prog, err := cache.get(c.bm, c.spec)
			if err != nil {
				return Result{}, fmt.Errorf("%s/%s: %w", c.bm.Name, c.spec.Label, err)
			}
			cfg := configFor(c.machine, c.spec.Scheme).WithPolicy(opt.Policy).
				WithMaxInsts(opt.MaxInsts).WithContext(ctx)
			if opt.Obs != nil {
				cfg = cfg.WithObs(opt.Obs)
			}
			if opt.Trace != nil {
				cfg = cfg.WithTrace(opt.Trace).WithTraceEvery(opt.TraceEvery)
			}
			run, err := cfg.Run(prog)
			if err != nil {
				return Result{}, fmt.Errorf("%s/%s/%v: %w", c.bm.Name, c.spec.Label, c.machine, err)
			}
			return Result{
				Benchmark: c.bm.Name,
				Machine:   c.machine,
				Plan:      c.spec.Label,
				Run:       run,
			}, nil
		}
	}

	out, err := sched.Map(opt.Ctx, opt.Workers, jobs)

	// Normalisation happens after the join: each (benchmark, machine)
	// group of len(specs) results is scaled by its baseline run. On a
	// partial (errored) sweep the tail group may be truncated before its
	// baseline; those results keep a zero Norm.
	for i := range out {
		base := i - i%len(specs) + baseIdx
		if base < len(out) {
			out[i].Norm = out[i].Run.NormalizeTo(out[base].Run)
		}
	}
	return out, err
}

// Figure2 reproduces Figure 2 (thirteen benchmarks, 1- and 10-instruction
// handlers, both machines).
func Figure2(opt Options) ([]Result, error) {
	return HandlerOverhead(workload.Fig2Set(), Figure2Plans(), opt)
}

// Figure3 reproduces Figure 3 (the su2cor outlier).
func Figure3(opt Options) ([]Result, error) {
	bm, ok := workload.ByName("su2cor")
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", "su2cor")
	}
	return HandlerOverhead([]workload.Benchmark{bm}, Figure2Plans(), opt)
}

// H100 reproduces the §4.2.2 text results for 100-instruction handlers on
// the three benchmarks the paper names (compress ~6x, su2cor ~7x, ora low
// overhead).
func H100(opt Options) ([]Result, error) {
	var bms []workload.Benchmark
	for _, name := range []string{"compress", "su2cor", "ora"} {
		bm, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		bms = append(bms, bm)
	}
	return HandlerOverhead(bms, H100Plans(), opt)
}

// PrefetchPlans returns the §6 case-study bars: the baseline against
// stride-prefetch miss handlers reaching one and four 32-byte lines
// beyond the missing reference.
func PrefetchPlans() []PlanSpec {
	return []PlanSpec{
		{"N", core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"PF32", core.TrapBranch, func() workload.Plan { return workload.NewPlanPrefetch(32) }},
		{"PF128", core.TrapBranch, func() workload.Plan { return workload.NewPlanPrefetch(128) }},
	}
}

// PrefetchCaseStudy runs the §6 case study — prefetching written as an
// informing miss handler — on the three golden-grid benchmarks. The
// results carry the per-class miss taxonomy in each Run (L1Tax/L2Tax),
// which FormatTaxonomy renders as the case-study table: the point is not
// the handler's overhead but how the prefetch distance moves misses
// between taxonomy classes.
func PrefetchCaseStudy(opt Options) ([]Result, error) {
	var bms []workload.Benchmark
	for _, name := range []string{"compress", "espresso", "tomcatv"} {
		bm, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		bms = append(bms, bm)
	}
	return HandlerOverhead(bms, PrefetchPlans(), opt)
}

// TrapModeComparison reproduces the §4.2.2 branch-vs-exception result:
// compress with single 1- and 10-instruction handlers on the out-of-order
// machine under both trap implementations. It returns the exception/branch
// execution-time ratios for each handler size.
func TrapModeComparison(opt Options) (map[string]float64, []Result, error) {
	bm, ok := workload.ByName("compress")
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown benchmark %q", "compress")
	}
	specs := []PlanSpec{
		{"S1/branch", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"S1/exception", core.TrapException, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"S10/branch", core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(10) }},
		{"S10/exception", core.TrapException, func() workload.Plan { return workload.NewPlanSingle(10) }},
	}
	o := opt
	o.Machines = []core.Machine{core.OutOfOrder}
	// There is no "N" bar in this spec list; the comparison's Norm column
	// is deliberately relative to the branch-mode 1-instruction run.
	o.Baseline = "S1/branch"
	res, err := HandlerOverhead([]workload.Benchmark{bm}, specs, o)
	if err != nil {
		return nil, res, err
	}
	byPlan := map[string]stats.Run{}
	for _, r := range res {
		byPlan[r.Plan] = r.Run
	}
	ratios := map[string]float64{}
	for _, k := range []string{"S1", "S10"} {
		br := byPlan[k+"/branch"]
		ex := byPlan[k+"/exception"]
		if br.Cycles > 0 {
			ratios[k] = float64(ex.Cycles) / float64(br.Cycles)
		}
	}
	return ratios, res, nil
}
