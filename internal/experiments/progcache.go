package experiments

import (
	"sync"

	"informing/internal/isa"
	"informing/internal/workload"
)

// progCache builds each (benchmark, plan) workload program once per sweep
// and shares it across machines and workers: the assembled program depends
// only on the benchmark, the instrumentation plan and the scale, so the
// N/S/U plans of one benchmark need not be re-assembled per machine.
//
// Sharing is safe because a built *isa.Program is immutable from the
// engines' point of view — every run copies the initial data image into a
// private isa.DataMem and only ever reads the text segment. Each entry
// carries its own sync.Once so two workers wanting the same program
// neither build it twice nor serialise unrelated builds behind one lock.
type progCache struct {
	scale int64

	mu      sync.Mutex
	entries map[progKey]*progEntry
}

type progKey struct {
	bench string
	plan  string
}

type progEntry struct {
	once sync.Once
	prog *isa.Program
	err  error
}

func newProgCache(scale int64) *progCache {
	return &progCache{scale: scale, entries: make(map[progKey]*progEntry)}
}

// get returns the assembled program for (bm, spec), building it on first
// use. Concurrent callers for the same key block on the build; callers for
// different keys proceed independently.
func (c *progCache) get(bm workload.Benchmark, spec PlanSpec) (*isa.Program, error) {
	key := progKey{bench: bm.Name, plan: spec.Label}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &progEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.prog, e.err = workload.Build(bm, spec.Make(), c.scale)
	})
	return e.prog, e.err
}
