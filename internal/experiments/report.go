package experiments

import (
	"fmt"
	"sort"
	"strings"

	"informing/internal/core"
)

// FormatFigure renders results as the paper's stacked-bar figures in text
// form: one table per machine, one row per benchmark, one column per plan,
// each cell showing the normalised execution time and its busy/other/cache
// split.
func FormatFigure(title string, results []Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	sb.WriteString("(cells: normalized execution time = busy + other-stall + cache-stall)\n")

	for _, machine := range []core.Machine{core.OutOfOrder, core.InOrder} {
		var plans []string
		var benches []string
		seenPlan := map[string]bool{}
		seenBench := map[string]bool{}
		cell := map[string]Result{}
		for _, r := range results {
			if r.Machine != machine {
				continue
			}
			if !seenPlan[r.Plan] {
				seenPlan[r.Plan] = true
				plans = append(plans, r.Plan)
			}
			if !seenBench[r.Benchmark] {
				seenBench[r.Benchmark] = true
				benches = append(benches, r.Benchmark)
			}
			cell[r.Benchmark+"\x00"+r.Plan] = r
		}
		if len(benches) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\n--- %v machine ---\n", machine)
		fmt.Fprintf(&sb, "%-10s", "benchmark")
		for _, p := range plans {
			fmt.Fprintf(&sb, " %22s", p)
		}
		sb.WriteString("\n")
		for _, bm := range benches {
			fmt.Fprintf(&sb, "%-10s", bm)
			for _, p := range plans {
				r, ok := cell[bm+"\x00"+p]
				if !ok {
					fmt.Fprintf(&sb, " %22s", "-")
					continue
				}
				n := r.Norm
				fmt.Fprintf(&sb, "  %5.2f(%4.2f/%4.2f/%4.2f)",
					n.Total(), n.Busy, n.Other, n.Cache)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// FormatOverheadSummary prints, per machine and plan, the min/mean/max
// overhead versus the baseline plan across benchmarks — the numbers the
// paper's prose quotes ("less than 40%", "only a 2% overhead", ...).
func FormatOverheadSummary(results []Result) string {
	type key struct {
		m core.Machine
		p string
	}
	overheads := map[key][]float64{}
	for _, r := range results {
		if r.Plan == "N" {
			continue
		}
		overheads[key{r.Machine, r.Plan}] = append(overheads[key{r.Machine, r.Plan}], r.Norm.Total()-1)
	}
	var keys []key
	for k := range overheads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].m != keys[j].m {
			return keys[i].m < keys[j].m
		}
		return keys[i].p < keys[j].p
	})
	var sb strings.Builder
	sb.WriteString("overhead vs. N (execution-time increase)\n")
	for _, k := range keys {
		v := overheads[k]
		lo, hi, sum := v[0], v[0], 0.0
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			sum += x
		}
		fmt.Fprintf(&sb, "  %-13v %-5s min %6.1f%%  mean %6.1f%%  max %6.1f%%  (n=%d)\n",
			k.m, k.p, 100*lo, 100*sum/float64(len(v)), 100*hi, len(v))
	}
	return sb.String()
}

// FormatTaxonomy renders the miss-taxonomy companion table of a sweep:
// one row per cell showing the L1 miss count, its compulsory / capacity /
// conflict / coherence split, and the normalised execution time. This is
// the §6 case-study view — a stride-prefetch handler's effect shows up as
// demand misses leaving the capacity/conflict classes, which the overhead
// figures alone cannot distinguish from the handler merely being cheap.
func FormatTaxonomy(title string, results []Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	sb.WriteString("(L1 misses by cause; norm = execution time vs. baseline)\n")
	for _, machine := range []core.Machine{core.OutOfOrder, core.InOrder} {
		first := true
		for _, r := range results {
			if r.Machine != machine {
				continue
			}
			if first {
				fmt.Fprintf(&sb, "\n--- %v machine ---\n", machine)
				fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %10s %10s %7s\n",
					"benchmark", "plan", "l1miss", "compulsory", "capacity", "conflict", "coherence", "norm")
				first = false
			}
			tx := r.Run.L1Tax
			fmt.Fprintf(&sb, "%-10s %-8s %10d %10d %10d %10d %10d %7.2f\n",
				r.Benchmark, r.Plan, r.Run.L1Misses,
				tx.Compulsory, tx.Capacity, tx.Conflict, tx.Coherence, r.Norm.Total())
		}
	}
	return sb.String()
}

// FormatRuns prints the raw per-run statistics (for -v output and
// EXPERIMENTS.md appendices).
func FormatRuns(results []Result) string {
	var sb strings.Builder
	for _, r := range results {
		fmt.Fprintf(&sb, "%-10s %-12v %-14s %v\n", r.Benchmark, r.Machine, r.Plan, r.Run)
	}
	return sb.String()
}
