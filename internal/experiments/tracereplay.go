package experiments

import (
	"context"
	"fmt"
	"strings"

	"informing/internal/mem"
	"informing/internal/sched"
	"informing/internal/trace"
)

// GeometrySpec is one cache geometry a recorded trace is replayed
// through in a TraceSweep.
type GeometrySpec struct {
	Label string
	Hier  mem.HierConfig
}

// TraceGeometries returns the default geometry-sensitivity sweep: the
// paper's Table 1 hierarchy (the recording geometry when the trace came
// from a stock informsim run) plus halved/doubled L1 capacity, a
// direct-mapped L1, and a halved L2 — the classic questions a captured
// trace answers without re-running the program.
func TraceGeometries(base mem.HierConfig) []GeometrySpec {
	half, dbl, dm, l2half := base, base, base, base
	half.L1.SizeBytes = base.L1.SizeBytes / 2
	dbl.L1.SizeBytes = base.L1.SizeBytes * 2
	dm.L1.Assoc = 1
	l2half.L2.SizeBytes = base.L2.SizeBytes / 2
	return []GeometrySpec{
		{"base", base},
		{"L1/2", half},
		{"L1x2", dbl},
		{"L1dm", dm},
		{"L2/2", l2half},
	}
}

// TraceResult is one geometry's replay of the shared trace.
type TraceResult struct {
	Label  string
	Hier   mem.HierConfig
	Replay trace.ReplayResult
}

// L1MissRate returns L1 misses per reference, or 0 on an empty trace.
func (r TraceResult) L1MissRate() float64 {
	if r.Replay.Total.Refs == 0 {
		return 0
	}
	return float64(r.Replay.Total.L1Misses) / float64(r.Replay.Total.Refs)
}

// L2MissRate returns L2 misses per L1 miss, or 0 when L1 never missed.
func (r TraceResult) L2MissRate() float64 {
	if r.Replay.Total.L1Misses == 0 {
		return 0
	}
	return float64(r.Replay.Total.L2Misses) / float64(r.Replay.Total.L1Misses)
}

// TraceSweep replays one loaded trace through every geometry, sharding
// the independent replays across an Options.Workers-bounded pool with
// the same determinism contract as HandlerOverhead: results arrive in
// spec order and are bit-identical at any worker count (the replayer is
// a pure function of the trace and geometry; trace.Data is never
// mutated, so sharing it across workers is safe). Only Workers and Ctx
// are consulted from opt. On error the completed prefix is returned
// with it.
func TraceSweep(d *trace.Data, specs []GeometrySpec, opt Options) ([]TraceResult, error) {
	jobs := make([]sched.Job[TraceResult], len(specs))
	for i, spec := range specs {
		spec := spec
		jobs[i] = func(ctx context.Context) (TraceResult, error) {
			res, err := trace.ReplayData(d, trace.ReplayConfig{Hier: spec.Hier, Ctx: ctx})
			if err != nil {
				return TraceResult{}, fmt.Errorf("replay %s: %w", spec.Label, err)
			}
			return TraceResult{Label: spec.Label, Hier: spec.Hier, Replay: *res}, nil
		}
	}
	return sched.Map(opt.Ctx, opt.Workers, jobs)
}

// FormatTraceSweep renders a geometry sweep as a text table: one row per
// geometry, with absolute counters, miss rates, and the per-event level
// agreement against the recording run (drift > 0 means the replay
// geometry no longer matches what the recorded pipeline saw — the whole
// point of the sweep for every row but the base one).
func FormatTraceSweep(title string, results []TraceResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "%-6s %-22s %10s %10s %10s %8s %8s %10s\n",
		"geom", "L1/L2 (B,line,assoc)", "refs", "l1miss", "l2miss", "l1rate", "l2rate", "drift")
	for _, r := range results {
		geom := fmt.Sprintf("%d,%d,%d/%d,%d,%d",
			r.Hier.L1.SizeBytes, r.Hier.L1.LineBytes, r.Hier.L1.Assoc,
			r.Hier.L2.SizeBytes, r.Hier.L2.LineBytes, r.Hier.L2.Assoc)
		t := r.Replay.Total
		fmt.Fprintf(&sb, "%-6s %-22s %10d %10d %10d %8.4f %8.4f %10d\n",
			r.Label, geom, t.Refs, t.L1Misses, t.L2Misses,
			r.L1MissRate(), r.L2MissRate(), t.LevelMismatches)
	}
	return sb.String()
}
