package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"informing/internal/mem"
	"informing/internal/trace"
)

func syntheticTrace(t *testing.T, events int) *trace.Data {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var sb strings.Builder
	for i := 0; i < events; i++ {
		if rng.Intn(4) == 0 { // non-memory filler
			fmt.Fprintf(&sb, `{"seq":%d,"pc":"0x%x","disasm":"add","fetch":%d,"issue":%d,"complete":%d,"graduate":%d,"level":0,"trap":false}`+"\n",
				i, 0x1000+4*i, i, i+1, i+2, i+3)
			continue
		}
		addr := uint64(rng.Intn(512)) * 32
		kind := "load"
		if rng.Intn(4) == 0 {
			kind = "store"
		}
		fmt.Fprintf(&sb, `{"seq":%d,"pc":"0x%x","disasm":"ld","fetch":%d,"issue":%d,"complete":%d,"graduate":%d,"level":%d,"addr":"0x%x","kind":%q,"trap":false}`+"\n",
			i, 0x1000+4*i, i, i+1, i+2, i+3, 1+rng.Intn(3), addr, kind)
	}
	d, err := trace.Load(strings.NewReader(sb.String()), trace.ReaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sweepBase() mem.HierConfig {
	return mem.HierConfig{
		L1: mem.CacheConfig{SizeBytes: 1024, LineBytes: 32, Assoc: 2},
		L2: mem.CacheConfig{SizeBytes: 4096, LineBytes: 32, Assoc: 4},
	}
}

// The -j determinism contract extends to trace sweeps: any worker count
// must produce byte-identical tables over the shared loaded trace.
func TestTraceSweepParallelParity(t *testing.T) {
	d := syntheticTrace(t, 4000)
	specs := TraceGeometries(sweepBase())

	seq, err := TraceSweep(d, specs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := TraceSweep(d, specs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("-j %d results differ from -j 1", workers)
		}
		if FormatTraceSweep("t", seq) != FormatTraceSweep("t", par) {
			t.Fatalf("-j %d table differs from -j 1", workers)
		}
	}
}

// Shrinking a cache can only hurt: the sweep's halved-L1 and halved-L2
// rows must miss at least as often as the base geometry, and the base
// row must replay the recording geometry's levels with zero drift when
// the trace was recorded through it.
func TestTraceSweepGeometrySensitivity(t *testing.T) {
	// Record the synthetic trace levels through the base geometry so the
	// base row reconciles exactly.
	base := sweepBase()
	hier, err := mem.NewHierarchy(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	for i := 0; i < 6000; i++ {
		addr := uint64(rng.Intn(256)) * 32
		store := rng.Intn(5) == 0
		level := hier.ProbeData(addr, store)
		kind := "load"
		if store {
			kind = "store"
		}
		fmt.Fprintf(&sb, `{"seq":%d,"pc":"0x0","disasm":"ld","fetch":0,"issue":1,"complete":2,"graduate":3,"level":%d,"addr":"0x%x","kind":%q,"trap":false}`+"\n",
			i, level, addr, kind)
	}
	d, err := trace.Load(strings.NewReader(sb.String()), trace.ReaderConfig{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := TraceSweep(d, TraceGeometries(base), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]TraceResult{}
	for _, r := range res {
		byLabel[r.Label] = r
	}
	if got := byLabel["base"].Replay.Total.LevelMismatches; got != 0 {
		t.Errorf("base geometry drifted %d events from the recording", got)
	}
	if byLabel["L1/2"].Replay.Total.L1Misses < byLabel["base"].Replay.Total.L1Misses {
		t.Errorf("halving L1 reduced misses: %d < %d",
			byLabel["L1/2"].Replay.Total.L1Misses, byLabel["base"].Replay.Total.L1Misses)
	}
	if byLabel["L2/2"].Replay.Total.L2Misses < byLabel["base"].Replay.Total.L2Misses {
		t.Errorf("halving L2 reduced misses: %d < %d",
			byLabel["L2/2"].Replay.Total.L2Misses, byLabel["base"].Replay.Total.L2Misses)
	}
	out := FormatTraceSweep("sweep", res)
	for _, want := range []string{"base", "L1/2", "L1x2", "L1dm", "L2/2", "drift"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
