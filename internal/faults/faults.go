// Package faults is a deterministic, seedable fault injector for the
// simulated memory hierarchy and probe path. It exists so the
// informing-operation schemes can be tested under perturbation — the
// paper's case study pits miss-handler schemes against Blizzard-E-style
// access control that deliberately relies on ECC faults, and warns that a
// miss inside a miss handler must degrade gracefully rather than recurse.
//
// The injector evaluates an ordered list of Rules against each reference.
// A rule selects its sites by PC, by address range, by every-Nth matching
// reference, or probabilistically (from a seeded generator — two
// injectors built from the same Plan make identical decisions), and
// perturbs the reference according to its Kind:
//
//   - ForceMiss / ForceHit flip the architecturally reported level
//     (outcome flips; the underlying tag state was already updated by the
//     real probe, which is exactly the "cache outcome is not a function
//     of the program" property §3.3 of the paper discusses);
//   - Jitter adds extra completion latency at the timing layer only and
//     must never change architectural semantics;
//   - Poison marks the referenced line poisoned (ECC-style); every later
//     reference to a poisoned line is forced to memory level until the
//     line is scrubbed;
//   - Reentrant forces misses only on references executed inside a miss
//     handler, bounded by MaxFires — the MHAR re-entrancy hazard;
//   - Protocol decides firing only (see Fire); the multi package's tests
//     use it to corrupt protocol state at injected points.
//
// The injector implements interp.FaultHook (architectural outcomes) and
// is consulted by the timing cores for latency jitter (Delay). A nil
// *Injector is valid and injects nothing.
package faults

import "fmt"

// Kind enumerates fault classes.
type Kind uint8

const (
	// ForceMiss reports the reference as resolving in main memory
	// regardless of the true outcome.
	ForceMiss Kind = iota
	// ForceHit reports the reference as a primary-cache hit regardless
	// of the true outcome (a spurious hit).
	ForceHit
	// Jitter adds deterministic pseudo-random latency to the reference's
	// completion time; timing only, never architectural.
	Jitter
	// Poison poisons the referenced line: this and every subsequent
	// reference to the line resolves at memory level until Scrub.
	Poison
	// Reentrant forces a miss only when the reference executes inside a
	// miss handler (the in-handler bit is set).
	Reentrant
	// Protocol is a generic firing decision with no built-in effect;
	// callers (the multi tests) query it with Fire and apply their own
	// corruption.
	Protocol

	numKinds
)

func (k Kind) String() string {
	switch k {
	case ForceMiss:
		return "force-miss"
	case ForceHit:
		return "force-hit"
	case Jitter:
		return "jitter"
	case Poison:
		return "poison"
	case Reentrant:
		return "reentrant"
	case Protocol:
		return "protocol"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Memory levels as reported to the probe path. These mirror the
// interp.LevelL1..LevelMem constants (plain ints; faults must not import
// the interpreter).
const (
	levelL1  = 1
	levelMem = 3
)

// Rule is one fault with its site selection. All zero-valued selectors
// match every reference; selectors compose conjunctively.
type Rule struct {
	Kind Kind

	// MatchPC restricts the rule to references issued from PC.
	PC      uint64
	MatchPC bool

	// AddrLo/AddrHi restrict the rule to effective addresses in the
	// half-open range [AddrLo, AddrHi); both zero means any address.
	AddrLo, AddrHi uint64

	// EveryN fires the rule on every Nth matching reference (0 or 1 =
	// every matching reference).
	EveryN uint64

	// MaxFires stops the rule after it has fired this many times (0 =
	// unlimited). This is how re-entrancy faults are bounded.
	MaxFires uint64

	// Prob, when in (0, 1), fires the rule independently with this
	// probability per matching reference, drawn from the plan's seeded
	// generator. Zero means deterministic (always fire when selected).
	Prob float64

	// MaxDelay is the jitter bound: Jitter rules add a uniform delay in
	// [1, MaxDelay] cycles (0 = a fixed 1-cycle delay).
	MaxDelay int64
}

// Plan is a reproducible fault schedule: a seed plus ordered rules.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Stats counts what the injector actually did.
type Stats struct {
	ForcedMisses    uint64
	ForcedHits      uint64
	Jittered        uint64
	DelayCycles     int64 // total extra cycles injected by Jitter rules
	PoisonInjected  uint64 // lines newly poisoned by Poison rules
	PoisonFaults    uint64 // references forced to memory by poisoned lines
	ReentrantMisses uint64
	ProtocolFires   uint64
}

type ruleState struct {
	Rule
	matched uint64
	fired   uint64
}

// Injector applies a Plan. It is deterministic and single-threaded, like
// the simulators it perturbs. The zero of *Injector (nil) injects
// nothing and is safe to call.
type Injector struct {
	rules     []ruleState
	rng       uint64
	poisoned  map[uint64]struct{}
	lineBytes uint64
	stats     Stats
}

// New builds an injector for plan. lineBytes controls poisoning
// granularity through Option-free default 32 (the Table 1 line size);
// change it with SetLineBytes before use if the hierarchy differs.
func New(plan Plan) *Injector {
	inj := &Injector{
		rules:     make([]ruleState, len(plan.Rules)),
		rng:       plan.Seed + 0x9e3779b97f4a7c15, // avoid the all-zero state
		poisoned:  make(map[uint64]struct{}),
		lineBytes: 32,
	}
	for i, r := range plan.Rules {
		inj.rules[i] = ruleState{Rule: r}
	}
	return inj
}

// SetLineBytes sets the poisoning granularity (power of two).
func (i *Injector) SetLineBytes(n uint64) {
	if i != nil && n > 0 && n&(n-1) == 0 {
		i.lineBytes = n
	}
}

// next advances the injector's splitmix64 generator.
func (i *Injector) next() uint64 {
	i.rng += 0x9e3779b97f4a7c15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fires evaluates one rule's site selection against a reference and
// advances its counters when it matches.
func (i *Injector) fires(r *ruleState, pc, addr uint64) bool {
	if r.MatchPC && pc != r.PC {
		return false
	}
	if (r.AddrLo != 0 || r.AddrHi != 0) && (addr < r.AddrLo || addr >= r.AddrHi) {
		return false
	}
	if r.MaxFires > 0 && r.fired >= r.MaxFires {
		return false
	}
	r.matched++
	if r.EveryN > 1 && r.matched%r.EveryN != 0 {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 {
		// 53-bit uniform in [0,1).
		if float64(i.next()>>11)/(1<<53) >= r.Prob {
			return false
		}
	}
	r.fired++
	return true
}

func (i *Injector) line(addr uint64) uint64 { return addr &^ (i.lineBytes - 1) }

// Outcome perturbs the architecturally resolved level of one data
// reference; it implements interp.FaultHook. The true probe has already
// run (tag state is updated); only the reported outcome is flipped, so
// timing-visible behaviour changes while the program's loaded values do
// not.
func (i *Injector) Outcome(pc, addr uint64, write, inHandler bool, level int) int {
	if i == nil {
		return level
	}
	if _, bad := i.poisoned[i.line(addr)]; bad {
		i.stats.PoisonFaults++
		return levelMem
	}
	out := level
	for k := range i.rules {
		r := &i.rules[k]
		switch r.Kind {
		case ForceMiss:
			if i.fires(r, pc, addr) {
				i.stats.ForcedMisses++
				out = levelMem
			}
		case ForceHit:
			if i.fires(r, pc, addr) {
				i.stats.ForcedHits++
				out = levelL1
			}
		case Poison:
			if i.fires(r, pc, addr) {
				i.poisoned[i.line(addr)] = struct{}{}
				i.stats.PoisonInjected++
				i.stats.PoisonFaults++
				out = levelMem
			}
		case Reentrant:
			if inHandler && i.fires(r, pc, addr) {
				i.stats.ReentrantMisses++
				out = levelMem
			}
		}
	}
	return out
}

// Delay returns the extra completion latency (in cycles) Jitter rules
// inject for one reference. Timing cores add it to the memory system's
// completion time; it must never feed back into architectural state.
func (i *Injector) Delay(pc, addr uint64) int64 {
	if i == nil {
		return 0
	}
	var d int64
	for k := range i.rules {
		r := &i.rules[k]
		if r.Kind != Jitter || !i.fires(r, pc, addr) {
			continue
		}
		extra := int64(1)
		if r.MaxDelay > 1 {
			extra = 1 + int64(i.next()%uint64(r.MaxDelay))
		}
		d += extra
		i.stats.Jittered++
		i.stats.DelayCycles += extra
	}
	return d
}

// Fire evaluates the site selection of rules of the given kind for one
// reference and reports whether any fired. It is how effects the
// injector cannot apply itself (protocol-state corruption in
// internal/multi) reuse the plan machinery.
func (i *Injector) Fire(kind Kind, pc, addr uint64) bool {
	if i == nil {
		return false
	}
	fired := false
	for k := range i.rules {
		r := &i.rules[k]
		if r.Kind == kind && i.fires(r, pc, addr) {
			fired = true
		}
	}
	if fired && kind == Protocol {
		i.stats.ProtocolFires++
	}
	return fired
}

// PoisonLine marks addr's line poisoned outside any rule (tests and the
// Blizzard-style scheme harnesses seed specific lines).
func (i *Injector) PoisonLine(addr uint64) {
	if i != nil {
		i.poisoned[i.line(addr)] = struct{}{}
	}
}

// Scrub clears addr's line's poison and reports whether it was poisoned.
func (i *Injector) Scrub(addr uint64) bool {
	if i == nil {
		return false
	}
	l := i.line(addr)
	_, ok := i.poisoned[l]
	delete(i.poisoned, l)
	return ok
}

// PoisonedLines returns the number of currently poisoned lines.
func (i *Injector) PoisonedLines() int {
	if i == nil {
		return 0
	}
	return len(i.poisoned)
}

// Stats returns the injection counters accumulated so far.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}
