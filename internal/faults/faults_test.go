package faults

import "testing"

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if got := inj.Outcome(0x10, 0x20, false, false, 2); got != 2 {
		t.Errorf("nil Outcome = %d, want 2", got)
	}
	if got := inj.Delay(0x10, 0x20); got != 0 {
		t.Errorf("nil Delay = %d", got)
	}
	if inj.Fire(Protocol, 0, 0) {
		t.Error("nil Fire fired")
	}
	if inj.Scrub(0) || inj.PoisonedLines() != 0 {
		t.Error("nil poison state non-empty")
	}
	inj.PoisonLine(0x40) // must not panic
}

func TestForceMissEveryN(t *testing.T) {
	inj := New(Plan{Rules: []Rule{{Kind: ForceMiss, EveryN: 4}}})
	misses := 0
	for k := 0; k < 16; k++ {
		if inj.Outcome(0, uint64(k)*8, false, false, 1) == 3 {
			misses++
		}
	}
	if misses != 4 {
		t.Errorf("every-4th rule forced %d misses over 16 refs, want 4", misses)
	}
	if s := inj.Stats(); s.ForcedMisses != 4 {
		t.Errorf("stats %+v", s)
	}
}

func TestAddrRangeAndPCSelection(t *testing.T) {
	inj := New(Plan{Rules: []Rule{
		{Kind: ForceMiss, AddrLo: 0x100, AddrHi: 0x200},
		{Kind: ForceHit, PC: 0x40, MatchPC: true},
	}})
	if inj.Outcome(0, 0x80, false, false, 1) != 1 {
		t.Error("out-of-range address perturbed")
	}
	if inj.Outcome(0, 0x100, false, false, 1) != 3 {
		t.Error("in-range address not forced to miss")
	}
	if inj.Outcome(0, 0x200, false, false, 1) != 1 {
		t.Error("range upper bound should be exclusive")
	}
	if inj.Outcome(0x44, 0x80, false, false, 3) != 3 {
		t.Error("wrong PC perturbed")
	}
	if inj.Outcome(0x40, 0x80, false, false, 3) != 1 {
		t.Error("matching PC not forced to hit")
	}
}

func TestMaxFiresBoundsRule(t *testing.T) {
	inj := New(Plan{Rules: []Rule{{Kind: Reentrant, MaxFires: 2}}})
	forced := 0
	for k := 0; k < 10; k++ {
		if inj.Outcome(0, uint64(k)*8, false, true, 1) == 3 {
			forced++
		}
	}
	if forced != 2 {
		t.Errorf("bounded reentrant rule fired %d times, want 2", forced)
	}
	// Outside a handler the rule never applies.
	if inj2 := New(Plan{Rules: []Rule{{Kind: Reentrant}}}); inj2.Outcome(0, 0, false, false, 1) != 1 {
		t.Error("reentrant rule fired outside a handler")
	}
}

func TestPoisonAndScrub(t *testing.T) {
	inj := New(Plan{Rules: []Rule{{Kind: Poison, EveryN: 3, MaxFires: 1}}})
	inj.SetLineBytes(32)
	levels := make([]int, 0, 6)
	for k := 0; k < 6; k++ {
		levels = append(levels, inj.Outcome(0, 0x1000, false, false, 1))
	}
	// 3rd reference poisons the line; everything after faults.
	want := []int{1, 1, 3, 3, 3, 3}
	for k := range want {
		if levels[k] != want[k] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if inj.PoisonedLines() != 1 {
		t.Errorf("poisoned lines %d", inj.PoisonedLines())
	}
	// Same line, different word offset: still poisoned.
	if inj.Outcome(0, 0x1008, false, false, 1) != 3 {
		t.Error("poison not line-granular")
	}
	if !inj.Scrub(0x1010) {
		t.Error("scrub missed the line")
	}
	if inj.Outcome(0, 0x1000, false, false, 1) != 1 {
		t.Error("scrubbed line still faulting")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	mk := func() *Injector {
		return New(Plan{Seed: 99, Rules: []Rule{{Kind: Jitter, EveryN: 2, MaxDelay: 7}}})
	}
	a, b := mk(), mk()
	var totalA, totalB int64
	for k := 0; k < 100; k++ {
		da := a.Delay(uint64(k), uint64(k)*8)
		db := b.Delay(uint64(k), uint64(k)*8)
		if da != db {
			t.Fatalf("same seed diverged at ref %d: %d vs %d", k, da, db)
		}
		if da < 0 || da > 7 {
			t.Fatalf("delay %d out of [0,7]", da)
		}
		totalA += da
		totalB += db
	}
	if totalA == 0 {
		t.Error("jitter rule never fired")
	}
	if s := a.Stats(); s.Jittered != 50 || s.DelayCycles != totalA {
		t.Errorf("stats %+v, want 50 fires totalling %d", s, totalA)
	}
	// A different seed should (overwhelmingly) produce different delays.
	c := New(Plan{Seed: 1234, Rules: []Rule{{Kind: Jitter, EveryN: 2, MaxDelay: 7}}})
	var totalC int64
	for k := 0; k < 100; k++ {
		totalC += c.Delay(uint64(k), uint64(k)*8)
	}
	if totalC == totalA {
		t.Logf("note: seeds 99 and 1234 coincided (total %d); not failing, but suspicious", totalC)
	}
}

func TestProbabilisticRuleIsSeedDeterministic(t *testing.T) {
	decide := func(seed uint64) []bool {
		inj := New(Plan{Seed: seed, Rules: []Rule{{Kind: ForceMiss, Prob: 0.3}}})
		out := make([]bool, 200)
		for k := range out {
			out[k] = inj.Outcome(0, uint64(k)*8, false, false, 1) == 3
		}
		return out
	}
	a, b := decide(7), decide(7)
	fires := 0
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at ref %d", k)
		}
		if a[k] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("p=0.3 rule fired %d/%d times", fires, len(a))
	}
}

func TestProtocolFire(t *testing.T) {
	inj := New(Plan{Rules: []Rule{{Kind: Protocol, EveryN: 5}}})
	fires := 0
	for k := 0; k < 20; k++ {
		if inj.Fire(Protocol, 0, uint64(k)) {
			fires++
		}
	}
	if fires != 4 {
		t.Errorf("protocol rule fired %d times over 20 refs, want 4", fires)
	}
	if s := inj.Stats(); s.ProtocolFires != 4 {
		t.Errorf("stats %+v", s)
	}
	// Fire of a kind with no rules never fires.
	if inj.Fire(ForceMiss, 0, 0) {
		t.Error("Fire matched a kind with no rules")
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}
