package faults

// Filesystem fault injection. PR 1 built the seeded cache-fault injector
// so the *simulators* could be tested under perturbation; this file lifts
// the same philosophy one layer up, to the durable result store behind
// informd (internal/store). A FaultyFS wraps the real filesystem and,
// driven by a seeded FSPlan, injects the failure modes a production disk
// actually exhibits: ENOSPC, torn (short-but-"successful") writes, bit
// flips that only a checksum can catch, slow I/O, and generic I/O errors.
// Two FaultyFS built from the same plan and presented with the same
// operation sequence make identical decisions, so chaos tests are
// reproducible from a seed.

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is wrapped by every error a FaultyFS fabricates, so tests
// (and the store's degradation logic) can tell an injected fault from a
// real filesystem failure with errors.Is.
var ErrInjected = errors.New("faults: injected I/O error")

// FSOp selects which filesystem operations a rule applies to (bitmask).
type FSOp uint8

const (
	FSRead FSOp = 1 << iota
	FSWrite
	FSRename
	FSRemove

	FSAll = FSRead | FSWrite | FSRename | FSRemove
)

// FSKind enumerates filesystem fault classes.
type FSKind uint8

const (
	// FSNoSpace makes writes and renames fail with an error wrapping
	// syscall.ENOSPC. Writes leave a partial prefix behind, like a real
	// full disk.
	FSNoSpace FSKind = iota
	// FSTorn truncates a write to a prefix but reports success — the
	// crash-between-write-and-sync failure a checksum must catch.
	FSTorn
	// FSFlip flips one deterministic bit in the data written or read —
	// silent media corruption, again checksum territory.
	FSFlip
	// FSSlow injects latency (Delay per firing) without changing the
	// operation's result.
	FSSlow
	// FSError fails the operation with a generic injected I/O error.
	FSError
)

func (k FSKind) String() string {
	switch k {
	case FSNoSpace:
		return "enospc"
	case FSTorn:
		return "torn-write"
	case FSFlip:
		return "bit-flip"
	case FSSlow:
		return "slow-io"
	case FSError:
		return "io-error"
	}
	return fmt.Sprintf("fskind(%d)", uint8(k))
}

// defaultOps returns the operations a kind perturbs when the rule does
// not name any explicitly.
func (k FSKind) defaultOps() FSOp {
	switch k {
	case FSNoSpace:
		return FSWrite | FSRename
	case FSTorn:
		return FSWrite
	case FSFlip:
		return FSRead | FSWrite
	case FSSlow, FSError:
		return FSAll
	}
	return FSAll
}

// FSRule is one filesystem fault with its site selection; selectors
// compose conjunctively, zero values match everything (mirroring Rule).
type FSRule struct {
	Kind FSKind

	// Ops restricts the rule to these operations (0 = the kind's default:
	// ENOSPC → write+rename, torn → write, flip → read+write, slow/error
	// → all).
	Ops FSOp

	// PathContains restricts the rule to paths containing the substring
	// ("" = any path).
	PathContains string

	// EveryN fires on every Nth matching operation (0 or 1 = every one).
	EveryN uint64

	// MaxFires stops the rule after this many firings (0 = unlimited).
	MaxFires uint64

	// SkipFirst exempts the first N matching operations — "the disk fills
	// up after K successful writes" is SkipFirst: K.
	SkipFirst uint64

	// Prob, when in (0, 1), fires the rule with this probability per
	// matching operation, drawn from the plan's seeded generator.
	Prob float64

	// Delay is the latency an FSSlow firing injects (0 = 1ms).
	Delay time.Duration
}

// FSPlan is a reproducible filesystem fault schedule.
type FSPlan struct {
	Seed  uint64
	Rules []FSRule
}

// FSStats counts what the injector actually did.
type FSStats struct {
	Ops     uint64 // operations observed
	NoSpace uint64
	Torn    uint64
	Flipped uint64
	Slowed  uint64
	Errored uint64
}

type fsRuleState struct {
	FSRule
	matched uint64
	fired   uint64
}

// FaultyFS applies an FSPlan to real filesystem operations. It implements
// the internal/store filesystem interface structurally. Unlike Injector
// it is mutex-guarded: the store is called from many worker goroutines.
type FaultyFS struct {
	mu    sync.Mutex
	rules []fsRuleState
	rng   uint64
	stats FSStats

	// sleep is a test seam (FSSlow under test must not slow the tests).
	sleep func(time.Duration)
}

// NewFS builds a filesystem fault injector for plan, delegating real I/O
// to the os package.
func NewFS(plan FSPlan) *FaultyFS {
	f := &FaultyFS{
		rules: make([]fsRuleState, len(plan.Rules)),
		rng:   plan.Seed + 0x9e3779b97f4a7c15,
		sleep: time.Sleep,
	}
	for i, r := range plan.Rules {
		f.rules[i] = fsRuleState{FSRule: r}
	}
	return f
}

// SetSleep replaces the FSSlow sleeper (tests).
func (f *FaultyFS) SetSleep(fn func(time.Duration)) { f.sleep = fn }

// Stats returns the injection counters accumulated so far.
func (f *FaultyFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultyFS) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decision is what the matching pass resolved for one operation: the
// first destructive rule that fired (if any) plus accumulated delay.
type decision struct {
	kind  FSKind
	fired bool
	delay time.Duration
	bit   uint64 // FSFlip: pre-drawn bit index entropy
}

func (f *FaultyFS) decide(op FSOp, path string) decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Ops++
	var d decision
	for i := range f.rules {
		r := &f.rules[i]
		ops := r.Ops
		if ops == 0 {
			ops = r.Kind.defaultOps()
		}
		if ops&op == 0 {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.MaxFires > 0 && r.fired >= r.MaxFires {
			continue
		}
		r.matched++
		if r.matched <= r.SkipFirst {
			continue
		}
		if r.EveryN > 1 && (r.matched-r.SkipFirst)%r.EveryN != 0 {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			if float64(f.next()>>11)/(1<<53) >= r.Prob {
				continue
			}
		}
		r.fired++
		if r.Kind == FSSlow {
			delay := r.Delay
			if delay == 0 {
				delay = time.Millisecond
			}
			d.delay += delay
			f.stats.Slowed++
			continue
		}
		if !d.fired {
			d.kind, d.fired = r.Kind, true
			d.bit = f.next()
			switch r.Kind {
			case FSNoSpace:
				f.stats.NoSpace++
			case FSTorn:
				f.stats.Torn++
			case FSFlip:
				f.stats.Flipped++
			case FSError:
				f.stats.Errored++
			}
		}
	}
	return d
}

func (f *FaultyFS) applyDelay(d decision) {
	if d.delay > 0 {
		f.sleep(d.delay)
	}
}

// flipBit flips one deterministically chosen bit in a copy of data.
func flipBit(data []byte, entropy uint64) []byte {
	if len(data) == 0 {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	bit := entropy % uint64(len(out)*8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// ---- filesystem interface (implements internal/store FS structurally) ----

func (f *FaultyFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (f *FaultyFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}

func (f *FaultyFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}

func (f *FaultyFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

func (f *FaultyFS) ReadFile(name string) ([]byte, error) {
	d := f.decide(FSRead, name)
	f.applyDelay(d)
	if d.fired {
		switch d.kind {
		case FSError, FSNoSpace:
			return nil, fmt.Errorf("%w: read %s", ErrInjected, name)
		}
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if d.fired {
		switch d.kind {
		case FSTorn:
			return data[:len(data)/2], nil
		case FSFlip:
			return flipBit(data, d.bit), nil
		}
	}
	return data, nil
}

func (f *FaultyFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	d := f.decide(FSWrite, name)
	f.applyDelay(d)
	if !d.fired {
		return os.WriteFile(name, data, perm)
	}
	switch d.kind {
	case FSNoSpace:
		// A real full disk persists a prefix and then errors.
		_ = os.WriteFile(name, data[:len(data)/2], perm)
		return fmt.Errorf("%w: write %s: %w", ErrInjected, name, syscall.ENOSPC)
	case FSTorn:
		// The torn write "succeeds": only the checksum can tell.
		return os.WriteFile(name, data[:len(data)/2], perm)
	case FSFlip:
		return os.WriteFile(name, flipBit(data, d.bit), perm)
	case FSError:
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	}
	return os.WriteFile(name, data, perm)
}

func (f *FaultyFS) Rename(oldpath, newpath string) error {
	d := f.decide(FSRename, newpath)
	f.applyDelay(d)
	if d.fired {
		switch d.kind {
		case FSNoSpace:
			return fmt.Errorf("%w: rename %s: %w", ErrInjected, newpath, syscall.ENOSPC)
		case FSError, FSTorn, FSFlip:
			return fmt.Errorf("%w: rename %s", ErrInjected, newpath)
		}
	}
	return os.Rename(oldpath, newpath)
}

func (f *FaultyFS) Remove(name string) error {
	d := f.decide(FSRemove, name)
	f.applyDelay(d)
	if d.fired {
		switch d.kind {
		case FSError, FSNoSpace:
			return fmt.Errorf("%w: remove %s", ErrInjected, name)
		}
	}
	return os.Remove(name)
}
