package faults

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestFSInjectorDeterminism: two injectors built from the same plan and
// driven through the same operation sequence make identical decisions.
func TestFSInjectorDeterminism(t *testing.T) {
	plan := FSPlan{Seed: 1234, Rules: []FSRule{
		{Kind: FSTorn, Prob: 0.3},
		{Kind: FSError, Ops: FSRead, Prob: 0.2},
		{Kind: FSSlow, Prob: 0.5, Delay: time.Nanosecond},
	}}
	runSequence := func() FSStats {
		fs := NewFS(plan)
		fs.SetSleep(func(time.Duration) {})
		dir := t.TempDir()
		for i := 0; i < 200; i++ {
			p := filepath.Join(dir, "f")
			_ = fs.WriteFile(p, []byte("0123456789abcdef"), 0o644)
			_, _ = fs.ReadFile(p)
		}
		return fs.Stats()
	}
	a, b := runSequence(), runSequence()
	if a != b {
		t.Fatalf("same plan, different decisions:\n a: %+v\n b: %+v", a, b)
	}
	if a.Torn == 0 || a.Errored == 0 || a.Slowed == 0 {
		t.Fatalf("probabilistic rules never fired over 400 ops: %+v", a)
	}
}

// TestFSInjectorNoSpace: ENOSPC rules fail the write with an error that
// wraps both ErrInjected and syscall.ENOSPC, leaving a partial prefix.
func TestFSInjectorNoSpace(t *testing.T) {
	fs := NewFS(FSPlan{Rules: []FSRule{{Kind: FSNoSpace}}})
	p := filepath.Join(t.TempDir(), "f")
	err := fs.WriteFile(p, []byte("0123456789"), 0o644)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want injected ENOSPC", err)
	}
	b, rerr := os.ReadFile(p)
	if rerr != nil || len(b) != 5 {
		t.Fatalf("partial prefix = %d bytes (err %v), want 5", len(b), rerr)
	}
	if err := fs.Rename(p, p+"2"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename under ENOSPC = %v", err)
	}
}

// TestFSInjectorTornWrite: torn writes persist a prefix and report
// success — indistinguishable from a good write until verification.
func TestFSInjectorTornWrite(t *testing.T) {
	fs := NewFS(FSPlan{Rules: []FSRule{{Kind: FSTorn}}})
	p := filepath.Join(t.TempDir(), "f")
	if err := fs.WriteFile(p, []byte("0123456789"), 0o644); err != nil {
		t.Fatalf("torn write errored: %v", err)
	}
	b, err := os.ReadFile(p)
	if err != nil || string(b) != "01234" {
		t.Fatalf("on disk: %q (err %v), want the first half", b, err)
	}
}

// TestFSInjectorBitFlip: exactly one bit differs between what was written
// and what lands on disk.
func TestFSInjectorBitFlip(t *testing.T) {
	fs := NewFS(FSPlan{Seed: 5, Rules: []FSRule{{Kind: FSFlip, Ops: FSWrite}}})
	p := filepath.Join(t.TempDir(), "f")
	data := []byte("0123456789")
	if err := fs.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			if (data[i]^got[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
}

// TestFSInjectorSiteSelection: PathContains, SkipFirst and MaxFires
// select sites the same way the cache-fault rules do.
func TestFSInjectorSiteSelection(t *testing.T) {
	fs := NewFS(FSPlan{Rules: []FSRule{
		{Kind: FSError, Ops: FSWrite, PathContains: ".res", SkipFirst: 2, MaxFires: 1},
	}})
	dir := t.TempDir()
	res := filepath.Join(dir, "entry.res")
	other := filepath.Join(dir, "entry.log")
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(other, []byte("x"), 0o644); err != nil {
			t.Fatalf("non-matching path faulted: %v", err)
		}
	}
	var errs int
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(res, []byte("x"), 0o644); err != nil {
			if i < 2 {
				t.Fatalf("SkipFirst ignored: op %d faulted", i)
			}
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("%d faults fired, want exactly 1 (MaxFires)", errs)
	}
}
