// Package govern is the run governor shared by every simulator loop in
// this repository (internal/interp, internal/inorder, internal/ooo,
// internal/multi). It bounds runs three ways:
//
//   - an instruction budget (the single place the 1e9-instruction default
//     sentinel is defined — see DefaultBudget);
//   - a context, polled cheaply every CheckEvery units of work, so runs
//     are cancellable by deadline or signal;
//   - a progress watchdog: when a timing core makes no graduation/issue
//     progress for WatchdogCycles cycles, the run aborts with ErrLivelock
//     instead of spinning toward the instruction budget.
//
// On abort the engines attach a diagnostic Snapshot (architectural PC,
// cycle, pipeline occupancy, partial statistics) to the returned error;
// recover it with SnapshotIn.
package govern

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"informing/internal/stats"
)

// Typed abort causes. Engines wrap these (never return them bare), so
// callers test with errors.Is.
var (
	// ErrBudget reports that the dynamic instruction (or reference)
	// budget was exhausted. The engines additionally wrap their legacy
	// limit errors (interp.ErrLimit) so existing errors.Is checks keep
	// working.
	ErrBudget = errors.New("govern: instruction budget exhausted")

	// ErrLivelock reports that the watchdog saw no forward progress for
	// WatchdogCycles cycles.
	ErrLivelock = errors.New("govern: no forward progress (livelock)")

	// ErrCanceled reports that the run's context was cancelled or its
	// deadline expired.
	ErrCanceled = errors.New("govern: run canceled")
)

const (
	// DefaultBudget is the dynamic-instruction guard applied when a
	// configuration leaves MaxInsts zero. This is the one authoritative
	// definition of the historical "limit = 1e9" sentinel that used to be
	// duplicated in interp, ooo and inorder.
	DefaultBudget uint64 = 1e9

	// DefaultWatchdogCycles is the no-progress threshold after which a
	// timing core declares livelock.
	DefaultWatchdogCycles int64 = 1_000_000

	// DefaultCheckEvery is how many units of work (steps, cycles or
	// references) pass between context polls.
	DefaultCheckEvery uint64 = 4096
)

// Config parameterises a Governor. The zero value is valid and yields the
// package defaults with a background (never-cancelled) context.
type Config struct {
	// Ctx cancels the run when done; nil means context.Background().
	Ctx context.Context

	// MaxInsts is the dynamic instruction budget (0 = DefaultBudget).
	MaxInsts uint64

	// WatchdogCycles is the livelock threshold in cycles (0 =
	// DefaultWatchdogCycles; negative disables the watchdog).
	WatchdogCycles int64

	// CheckEvery is the context poll interval in units of work (0 =
	// DefaultCheckEvery).
	CheckEvery uint64
}

// Governor enforces one run's budget, cancellation and watchdog policy.
// It is not safe for concurrent use; each run builds its own.
type Governor struct {
	ctx          context.Context
	budget       uint64
	watchdog     int64
	checkEvery   uint64
	untilPoll    uint64 // ticks remaining until the next context poll
	lastProgress int64
}

// New builds a Governor from cfg, applying the package defaults.
func New(cfg Config) *Governor {
	g := &Governor{
		ctx:        cfg.Ctx,
		budget:     cfg.MaxInsts,
		watchdog:   cfg.WatchdogCycles,
		checkEvery: cfg.CheckEvery,
	}
	if g.ctx == nil {
		g.ctx = context.Background()
	}
	if g.budget == 0 {
		g.budget = DefaultBudget
	}
	if g.watchdog == 0 {
		g.watchdog = DefaultWatchdogCycles
	}
	if g.checkEvery == 0 {
		g.checkEvery = DefaultCheckEvery
	}
	g.untilPoll = g.checkEvery
	return g
}

// Default returns a Governor with every policy at its package default.
func Default() *Governor { return New(Config{}) }

// Budget returns the resolved instruction budget.
func (g *Governor) Budget() uint64 { return g.budget }

// Watchdog returns the resolved no-progress threshold in cycles
// (negative = disabled).
func (g *Governor) Watchdog() int64 { return g.watchdog }

// Tick counts one unit of work and polls the context every CheckEvery
// ticks. It returns nil, or an error wrapping both ErrCanceled and the
// context's own error. The poll uses ctx.Err(), never blocking.
func (g *Governor) Tick() error {
	// Countdown instead of a modulo on a running counter: the polling
	// schedule is identical (first poll on the CheckEvery-th tick) but the
	// per-tick cost is a decrement and compare, not a 64-bit division —
	// Tick sits on the per-cycle hot path of every engine.
	g.untilPoll--
	if g.untilPoll != 0 {
		return nil
	}
	g.untilPoll = g.checkEvery
	return g.CheckCtx()
}

// CheckCtx polls the context immediately (engines call it at natural
// barriers such as phase boundaries).
func (g *Governor) CheckCtx() error {
	if err := g.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// Progress records that forward progress (graduation, retirement, a
// consumed reference) happened at cycle.
func (g *Governor) Progress(cycle int64) { g.lastProgress = cycle }

// CheckProgress returns an error wrapping ErrLivelock when cycle is more
// than WatchdogCycles past the last recorded progress.
func (g *Governor) CheckProgress(cycle int64) error {
	if g.watchdog < 0 {
		return nil
	}
	if cycle-g.lastProgress > g.watchdog {
		return fmt.Errorf("%w: stalled for %d cycles (last progress at cycle %d)",
			ErrLivelock, g.watchdog, g.lastProgress)
	}
	return nil
}

// Snapshot is the diagnostic state an engine attaches to an abort error:
// enough to see where the run was and what it had measured so far.
type Snapshot struct {
	PC    uint64 // architectural PC at abort
	Cycle int64  // simulation cycle (or clock) at abort
	Seq   uint64 // dynamic instructions (or references) completed

	// Pipeline / machine detail (engine-specific; zero where not
	// applicable).
	ROBOccupied int    // occupied reorder-buffer entries (ooo)
	OldestInst  string // disassembly of the oldest un-retired instruction
	InHandler   bool   // informing miss handler active
	MHAR, MHRR  uint64

	// Partial holds the statistics accumulated up to the abort.
	Partial stats.Run

	// Note carries free-form engine detail (cache occupancy, the
	// processor being advanced, the phase index, ...).
	Note string
}

// String renders the snapshot compactly for CLI diagnostics.
func (s Snapshot) String() string {
	out := fmt.Sprintf("pc=%#x cycle=%d seq=%d", s.PC, s.Cycle, s.Seq)
	if s.ROBOccupied > 0 {
		out += fmt.Sprintf(" rob=%d", s.ROBOccupied)
	}
	if s.OldestInst != "" {
		out += fmt.Sprintf(" oldest=%q", s.OldestInst)
	}
	if s.InHandler {
		out += fmt.Sprintf(" in-handler mhar=%#x mhrr=%#x", s.MHAR, s.MHRR)
	}
	if s.Note != "" {
		out += " " + s.Note
	}
	return out
}

// Abort is an error carrying a diagnostic Snapshot. errors.Is/As see
// through it to the wrapped cause.
type Abort struct {
	Cause error
	Snap  Snapshot
}

// Error implements error.
func (a *Abort) Error() string { return fmt.Sprintf("%v [%v]", a.Cause, a.Snap) }

// Unwrap exposes the cause to errors.Is/As.
func (a *Abort) Unwrap() error { return a.Cause }

// WithSnapshot wraps err with a diagnostic snapshot. A nil err returns
// nil.
func WithSnapshot(err error, snap Snapshot) error {
	if err == nil {
		return nil
	}
	return &Abort{Cause: err, Snap: snap}
}

// SnapshotIn extracts the diagnostic snapshot from an abort error chain.
func SnapshotIn(err error) (*Snapshot, bool) {
	var a *Abort
	if errors.As(err, &a) {
		return &a.Snap, true
	}
	return nil, false
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM; CLIs
// use it so an interrupted simulation still prints its partial report.
// The returned stop function releases the signal handlers (a second
// signal after cancellation kills the process with the default action).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
