package govern

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestDefaults(t *testing.T) {
	g := Default()
	if g.Budget() != DefaultBudget {
		t.Errorf("budget %d, want %d", g.Budget(), DefaultBudget)
	}
	if g.Watchdog() != DefaultWatchdogCycles {
		t.Errorf("watchdog %d, want %d", g.Watchdog(), DefaultWatchdogCycles)
	}
	for i := 0; i < 10_000; i++ {
		if err := g.Tick(); err != nil {
			t.Fatalf("background ctx tick %d: %v", i, err)
		}
	}
}

func TestBudgetOverride(t *testing.T) {
	if got := New(Config{MaxInsts: 42}).Budget(); got != 42 {
		t.Errorf("budget %d, want 42", got)
	}
}

func TestTickCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(Config{Ctx: ctx, CheckEvery: 8})
	for i := 0; i < 7; i++ {
		if err := g.Tick(); err != nil {
			t.Fatalf("premature cancel on tick %d: %v", i, err)
		}
	}
	cancel()
	err := g.Tick() // 8th tick polls the context
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not wrap context.Canceled", err)
	}
}

func TestWatchdog(t *testing.T) {
	g := New(Config{WatchdogCycles: 100})
	g.Progress(50)
	if err := g.CheckProgress(150); err != nil {
		t.Fatalf("within threshold: %v", err)
	}
	err := g.CheckProgress(151)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	g := New(Config{WatchdogCycles: -1})
	if err := g.CheckProgress(1 << 40); err != nil {
		t.Fatalf("disabled watchdog fired: %v", err)
	}
}

func TestAbortSnapshot(t *testing.T) {
	cause := fmt.Errorf("engine: %w", ErrLivelock)
	snap := Snapshot{PC: 0x1000, Cycle: 77, Seq: 12, ROBOccupied: 3, Note: "test"}
	err := WithSnapshot(cause, snap)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("abort does not wrap its cause: %v", err)
	}
	got, ok := SnapshotIn(fmt.Errorf("outer: %w", err))
	if !ok {
		t.Fatal("SnapshotIn found nothing")
	}
	if got.PC != 0x1000 || got.Cycle != 77 || got.Seq != 12 || got.ROBOccupied != 3 {
		t.Errorf("snapshot %+v", got)
	}
	if WithSnapshot(nil, snap) != nil {
		t.Error("WithSnapshot(nil) != nil")
	}
	if _, ok := SnapshotIn(errors.New("plain")); ok {
		t.Error("SnapshotIn matched a plain error")
	}
}
