// Package inorder implements the paper's in-order-issue machine model,
// patterned on the Alpha 21164 (§3.1 and Table 1): a 4-wide in-order
// superscalar with presence-bit operand stalls, 2-bit-counter branch
// prediction, a lockup-free two-level cache hierarchy, and informing
// memory operations realised with the 21164's replay-trap mechanism (the
// pipeline is flushed and the fetcher redirected to the miss handler when
// an informing reference misses).
//
// The model is an execution-driven, dynamic-order scheduler: the
// functional front end (internal/interp) resolves each instruction,
// including informing control flow, and this package assigns fetch, issue,
// completion and retirement times under the machine's structural and data
// constraints.
package inorder

import (
	"fmt"

	"informing/internal/bpred"
	"informing/internal/faults"
	"informing/internal/govern"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/obs"
	"informing/internal/stats"
)

// Config parameterises the machine. DefaultConfig returns the paper's
// Table 1 in-order column.
type Config struct {
	IssueWidth int
	FetchWidth int
	Units      [isa.NumFUClasses]int

	// FrontDepth is the fetch-to-issue depth in cycles; a mispredicted
	// branch costs FrontDepth + MispredictExtra cycles of refetch.
	FrontDepth        int64
	TakenBubble       int64 // bubble after a correctly-predicted taken branch
	MispredictPenalty int64 // fetch restart delay after branch resolution
	ReplayPenalty     int64 // informing-trap (replay) pipeline flush cost

	Lat    isa.LatencyTable
	Hier   mem.HierConfig
	Timing mem.TimingConfig

	// ICache models the primary instruction cache (Table 1); a zero
	// SizeBytes disables it (perfect instruction fetch). Misses stall
	// the fetcher for the L2 latency (program text always fits the
	// unified secondary cache at our scales).
	ICache mem.CacheConfig

	BPredEntries int
	Mode         interp.Mode

	// TrapThreshold selects which misses trap (interp.LevelL1 = any
	// primary miss, the default; interp.LevelL2 = secondary misses only).
	TrapThreshold int

	// FlushEvery, when non-zero, flushes the L1 data cache every N memory
	// references, modelling context switches (§3.3).
	FlushEvery uint64

	// DisableBlockKernel turns off the block-compiled execution kernel
	// (DESIGN.md §14): the functional front end steps one instruction per
	// fetch instead of replaying basic blocks ahead of the core. Results
	// are bit-identical either way (the golden grid and the differential
	// fuzz suite pin this); the switch exists for A/B benchmarking and as
	// a diagnostic lane.
	DisableBlockKernel bool

	// MaxInsts bounds the dynamic instruction count (0 =
	// govern.DefaultBudget). Exhausting it returns an error wrapping
	// govern.ErrBudget (and interp.ErrLimit).
	MaxInsts uint64

	// Govern supplies the run-governor policy: context cancellation, a
	// livelock watchdog for the memory-system retry path, and (when its
	// MaxInsts is set) the instruction budget. The zero value uses the
	// govern package defaults; a zero Govern.MaxInsts falls back to
	// Config.MaxInsts.
	Govern govern.Config

	// Faults, when non-nil, perturbs the run (see internal/faults):
	// architectural outcome flips apply on the probe path, latency
	// jitter at the memory-request site.
	Faults *faults.Injector

	// Trace, when non-nil, receives one TraceEvent per instruction in
	// retirement order (debugging/visualisation; adds overhead).
	Trace func(stats.TraceEvent)

	// TraceEvery samples the trace at the source: one TraceEvent per N
	// retired instructions (0 or 1 = every instruction). Source-side
	// sampling skips event construction — including the disassembly
	// string — entirely (DESIGN.md §11).
	TraceEvery uint64

	// Obs, when non-nil, receives live metrics (instruction/cycle/trap
	// counters, miss- and trap-latency histograms, handler occupancy,
	// per-opcode issue stalls; see obs.Sim). A nil Obs costs only
	// nil-checks: the disabled hot path stays allocation-free.
	Obs *obs.Sim
}

// DefaultConfig returns the Table 1 in-order machine: 4-wide, 2 INT, 2 FP,
// 1 branch unit (plus one memory port), 8 KB direct-mapped L1, 2 MB 4-way
// L2, 11-cycle L2 latency, 50-cycle memory latency.
func DefaultConfig() Config {
	return Config{
		IssueWidth:        4,
		FetchWidth:        4,
		Units:             [isa.NumFUClasses]int{isa.FUInt: 2, isa.FUFP: 2, isa.FUBranch: 1, isa.FUMem: 1},
		FrontDepth:        4,
		TakenBubble:       1,
		MispredictPenalty: 5,
		ReplayPenalty:     5,
		Lat: isa.LatencyTable{
			IntMul: 12, IntDiv: 76, FPDiv: 17, FPSqrt: 20, FPOther: 4,
			IntALU: 1, Branch: 1,
		},
		Hier: mem.HierConfig{
			L1: mem.CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
			L2: mem.CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Assoc: 4},
		},
		ICache: mem.CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
		Timing: mem.TimingConfig{
			L1HitLat: 2, L2Lat: 11, MemLat: 50,
			MSHRs: 8, Banks: 2, FillTime: 4, MemInterval: 20, LineBytes: 32,
		},
		BPredEntries: bpred.DefaultEntries,
		Mode:         interp.ModeOff,
	}
}

const ccReg = isa.NumRegs // pseudo-register index for the cache condition code

// obsFlushEvery is the cadence (in retired instructions, power of two) at
// which batched observability counters are pushed to the shared atomic
// registry. Every exit path flushes too, so totals are exact.
const obsFlushEvery = 4096

// Run simulates prog to completion and returns the measured statistics.
func Run(prog *isa.Program, cfg Config) (stats.Run, error) {
	r, _, err := RunDetailed(prog, cfg)
	return r, err
}

// RunDetailed is Run but also returns the functional machine, giving
// callers access to the final architectural state (registers, data memory,
// MHAR/MHRR) — used by the examples and by differential tests.
func RunDetailed(prog *isa.Program, cfg Config) (stats.Run, *interp.Machine, error) {
	hier, err := mem.NewHierarchy(cfg.Hier)
	if err != nil {
		return stats.Run{}, nil, fmt.Errorf("inorder: %w", err)
	}
	hier.Obs = cfg.Obs
	var icache *mem.Cache
	if cfg.ICache.SizeBytes > 0 {
		if icache, err = mem.NewCache(cfg.ICache); err != nil {
			return stats.Run{}, nil, fmt.Errorf("inorder: icache: %w", err)
		}
	}
	probe := hier.ProbeData
	if cfg.FlushEvery > 0 {
		var refs uint64
		probe = func(addr uint64, write bool) int {
			refs++
			if refs%cfg.FlushEvery == 0 {
				hier.L1.Flush()
			}
			return hier.ProbeData(addr, write)
		}
	}
	m := interp.New(prog, cfg.Mode, probe)
	statics := m.Statics()
	m.TrapThreshold = cfg.TrapThreshold
	if cfg.Faults != nil {
		m.Faults = cfg.Faults
		cfg.Faults.SetLineBytes(uint64(cfg.Hier.L1.LineBytes))
	}
	timing, err := mem.NewTiming(cfg.Timing)
	if err != nil {
		return stats.Run{}, nil, fmt.Errorf("inorder: %w", err)
	}
	bp := bpred.New(cfg.BPredEntries)

	gc := cfg.Govern
	if gc.MaxInsts == 0 {
		gc.MaxInsts = cfg.MaxInsts
	}
	gov := govern.New(gc)

	// Per-opcode execution latencies, resolved once so the issue stage
	// indexes a flat table instead of re-deriving the latency per dynamic
	// instruction.
	var lat [isa.NumOps]int64
	for op := 0; op < isa.NumOps; op++ {
		lat[op] = int64(cfg.Lat.Latency(isa.Op(op)))
	}

	var (
		regReady [isa.NumRegs + 1]int64

		fetchCycle int64 // cycle in which the next instruction is fetched
		fetchSlots int   // instructions already fetched in fetchCycle

		issueCycle int64 // cycle currently being filled by the issue stage
		issuedInC  int
		fuUsed     [isa.NumFUClasses]int
		lastIssue  int64 // in-order issue: next inst may not issue earlier

		retireCycle int64 // cycle of the most recent retirement
		retiredInC  int

		lastILine = ^uint64(0) // current instruction-fetch line

		out       stats.Run
		inHandler bool

		handlerLen int64 // instructions in the current handler episode
	)
	out.IssueWidth = cfg.IssueWidth

	limit := gov.Budget()

	sim := cfg.Obs
	traceEvery := cfg.TraceEvery
	if traceEvery == 0 {
		traceEvery = 1
	}
	traceLeft := traceEvery
	var disasms []string // per-static disassembly, built only when tracing
	if cfg.Trace != nil {
		disasms = m.Disasms()
	}

	// Instruction and cycle counts accumulate in plain locals and reach
	// the shared atomic cells in batches (obsFlushEvery instructions, plus
	// every exit path), bounding the enabled-metrics cost to well under
	// the DESIGN.md §11 budget while live readers stay at most a few
	// thousand instructions behind.
	var obsInstrs, obsCycles uint64
	var obsStalls [isa.NumOps]uint64
	flushObs := func() {
		if sim == nil {
			return
		}
		sim.Instrs.Add(obsInstrs)
		sim.Cycles.Add(obsCycles)
		obsInstrs, obsCycles = 0, 0
		for op, n := range obsStalls {
			if n != 0 {
				sim.IssueStalls[op].Add(n)
				obsStalls[op] = 0
			}
		}
		hier.FlushObs()
	}

	// abort wraps cause with a diagnostic snapshot of where the machine
	// was: the architectural PC, the retirement cycle, and the statistics
	// accumulated so far.
	abort := func(cause error) error {
		flushObs()
		snap := govern.Snapshot{
			PC: m.PC, Cycle: retireCycle, Seq: m.Seq,
			InHandler: m.InHandler, MHAR: m.MHAR, MHRR: m.MHRR,
			Note: fmt.Sprintf("l1-misses=%d mshr-peak=%d", hier.L1Misses, timing.PeakInUse),
		}
		snap.Partial = out
		snap.Partial.Cycles = retireCycle
		snap.Partial.DynInsts = m.Seq
		return govern.WithSnapshot(cause, snap)
	}

	// findIssue returns the first cycle >= earliest with an issue-width
	// slot and a free unit of class fu, honouring in-order issue.
	findIssue := func(earliest int64, fu isa.FUClass) int64 {
		t := earliest
		if t < lastIssue {
			t = lastIssue
		}
		for {
			if t > issueCycle {
				issueCycle = t
				issuedInC = 0
				fuUsed = [isa.NumFUClasses]int{}
			}
			if issuedInC < cfg.IssueWidth && fuUsed[fu] < cfg.Units[fu] {
				issuedInC++
				fuUsed[fu]++
				lastIssue = t
				return t
			}
			t++
		}
	}

	// The functional front end runs ahead of the core through the block
	// feeder: whole basic blocks are executed into a buffer and consumed
	// here one record at a time, preserving the per-instruction path's
	// budget, error and halt ordering exactly (see interp.BlockFeeder).
	fe := interp.NewBlockFeeder(m, limit, cfg.DisableBlockKernel)
loop:
	for {
		rec, stf := fe.Peek()
		switch stf {
		case interp.FeedHalted:
			break loop
		case interp.FeedBudget:
			return out, m, abort(fmt.Errorf("inorder: %w: %w (%d instructions)",
				govern.ErrBudget, interp.ErrLimit, limit))
		case interp.FeedErr:
			flushObs()
			return out, m, fe.Err()
		}
		if err := gov.Tick(); err != nil {
			return out, m, abort(fmt.Errorf("inorder: %w", err))
		}
		wasInHandler := inHandler
		fe.Advance()
		in := rec.Inst
		st := &statics[rec.SIdx]

		// --- fetch ---------------------------------------------------
		if fetchSlots == cfg.FetchWidth {
			fetchCycle++
			fetchSlots = 0
		}
		if icache != nil {
			if line := icache.Line(rec.PC); line != lastILine {
				// Sequential next-line prefetching hides in-line
				// misses; only control transfers to cold lines stall
				// the fetcher.
				sequential := line == lastILine+uint64(cfg.ICache.LineBytes)
				lastILine = line
				if hit, _, _ := icache.Access(rec.PC, false); !hit && !sequential {
					out.IMisses++
					fetchCycle += int64(cfg.Timing.L2Lat)
					fetchSlots = 0
				}
			}
		}
		ft := fetchCycle
		fetchSlots++

		// --- operand readiness ----------------------------------------
		earliest := ft + cfg.FrontDepth
		for s := 0; s < int(st.NSrc); s++ {
			if r := regReady[st.Src[s]]; r > earliest {
				earliest = r
			}
		}
		if in.Op == isa.Bmiss {
			if r := regReady[ccReg]; r > earliest {
				earliest = r
			}
		}

		// --- issue & execute -------------------------------------------
		fu := st.FU
		issueAt := findIssue(earliest, fu)
		var complete int64
		missStart, missEnd := int64(-1), int64(-1)

		if st.Mem() {
			out.MemRefs++
			if rec.Level > interp.LevelL1 {
				out.L1Misses++
			}
			if rec.Level > interp.LevelL2 {
				out.L2Misses++
			}
			done, ok := timing.Request(issueAt, rec.Level, rec.EA)
			// The retry loop advances issueAt monotonically, so the
			// governor's watchdog bounds it: a memory system that never
			// accepts the request (e.g. under injected re-entrancy faults)
			// surfaces as ErrLivelock instead of spinning forever.
			gov.Progress(issueAt)
			for !ok {
				issueAt = findIssue(issueAt+1, fu)
				done, ok = timing.Request(issueAt, rec.Level, rec.EA)
				if err := gov.CheckProgress(issueAt); err != nil {
					return out, m, abort(fmt.Errorf("inorder: memory request at pc %#x ea %#x never accepted: %w",
						rec.PC, rec.EA, err))
				}
			}
			if cfg.Faults != nil {
				done += cfg.Faults.Delay(rec.PC, rec.EA)
			}
			tagKnown := issueAt + int64(cfg.Timing.L1HitLat)
			regReady[ccReg] = tagKnown
			switch {
			case st.Load():
				complete = done
				if st.HasDest {
					regReady[st.Dest] = done
				}
				if rec.Level > interp.LevelL1 {
					missStart, missEnd = tagKnown, done
				}
			default: // stores and prefetches retire from the write buffer
				complete = tagKnown
			}
			if rec.Trap {
				// Replay trap: flush and refetch from the MHAR.
				fetchCycle = tagKnown + cfg.ReplayPenalty
				fetchSlots = 0
			}
		} else {
			complete = issueAt + lat[in.Op]
			if st.HasDest {
				regReady[st.Dest] = complete
			}
		}

		if sim != nil && issueAt > earliest {
			// Cycles this instruction waited past operand readiness,
			// charged to its opcode: FU/issue-width contention plus, for
			// memory ops, the request-retry loop above (which advances
			// issueAt until the memory system accepts).
			obsStalls[in.Op] += uint64(issueAt - earliest)
		}

		// --- control flow ---------------------------------------------
		switch in.Op {
		case isa.Beq, isa.Bne, isa.Blt, isa.Bge:
			pred := bp.Predict(rec.PC)
			bp.Update(rec.PC, rec.Taken)
			if pred != rec.Taken {
				fetchCycle = complete + cfg.MispredictPenalty
				fetchSlots = 0
			} else if rec.Taken {
				fetchCycle = ft + 1 + cfg.TakenBubble
				fetchSlots = 0
			}
		case isa.Bmiss:
			// Statically predicted not-taken (optimised for hits).
			if rec.Taken {
				out.BmissTaken++
				fetchCycle = complete + cfg.MispredictPenalty
				fetchSlots = 0
			}
		case isa.J, isa.Jal, isa.Jr, isa.Jalr, isa.Rfmh:
			// Direct targets and return-style jumps are predicted;
			// only the taken-redirect bubble applies.
			fetchCycle = ft + 1 + cfg.TakenBubble
			fetchSlots = 0
		}

		// --- in-order retirement & slot accounting ---------------------
		rt := complete + 1
		if rt < retireCycle {
			rt = retireCycle
		}
		if rt == retireCycle && retiredInC == cfg.IssueWidth {
			rt++
		}
		if rt > retireCycle {
			// Cycles (retireCycle, rt) exclusive retire nothing; charge
			// those overlapping this instruction's outstanding miss
			// window to the data cache.
			if missStart >= 0 {
				lo, hi := retireCycle+1, rt-1
				if lo < missStart {
					lo = missStart
				}
				if hi > missEnd {
					hi = missEnd
				}
				if hi >= lo {
					out.CacheSlots += int64(cfg.IssueWidth) * (hi - lo + 1)
				}
			}
			obsCycles += uint64(rt - retireCycle)
			retireCycle = rt
			retiredInC = 0
		}
		retiredInC++
		out.Instrs++
		if cfg.Trace != nil {
			if traceLeft--; traceLeft == 0 {
				traceLeft = traceEvery
				cfg.Trace(rec.TraceEvent(disasms[rec.SIdx], ft, issueAt, complete, retireCycle))
			}
		}
		obsInstrs++
		if sim != nil {
			if missStart >= 0 {
				sim.MissLatency.Observe(complete - issueAt)
			}
			if rec.Trap {
				sim.TrapLatency.Observe(retireCycle - issueAt)
			}
			if obsInstrs&(obsFlushEvery-1) == 0 {
				flushObs()
			}
		}

		if rec.Trap {
			inHandler = true
			handlerLen = 0
			out.Traps++
			if sim != nil {
				sim.Traps.Inc()
			}
		}
		if wasInHandler {
			out.HandlerInsts++
			handlerLen++
			if in.Op == isa.Rfmh {
				inHandler = false
				if sim != nil {
					sim.HandlerOcc.Observe(handlerLen)
				}
			}
		}
	}

	flushObs()
	out.Cycles = retireCycle
	if out.Cycles < 1 {
		out.Cycles = 1
	}
	out.DynInsts = m.Seq
	out.OtherSlots = out.TotalSlots() - out.BusySlots() - out.CacheSlots
	if out.OtherSlots < 0 {
		out.OtherSlots = 0
	}
	out.BranchLookups = bp.Lookups
	out.BranchMispredicts = bp.Mispredict
	out.MSHRFullStalls = timing.MSHRFullStalls
	out.MSHRMerges = timing.Merges
	out.MSHRPeak = timing.PeakInUse
	// Per-class miss taxonomy, classified at fill time inside the
	// hierarchy; the classes sum to out.L1Misses/out.L2Misses
	// (stats.Run.CheckTaxonomy).
	out.L1Tax = hier.L1.Taxonomy()
	out.L2Tax = hier.L2.Taxonomy()
	return out, m, nil
}
