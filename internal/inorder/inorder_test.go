package inorder

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/stats"
)

func runSrc(t *testing.T, src string, mode interp.Mode) stats.Run {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.MaxInsts = 10_000_000
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r
}

// chain emits n serially dependent adds.
func chain(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "addi r1, r1, 1\n"
	}
	return s + "halt"
}

func TestSerialChainThroughput(t *testing.T) {
	r := runSrc(t, chain(400), interp.ModeOff)
	// A serial add chain retires one instruction per cycle.
	if r.Cycles < 400 || r.Cycles > 450 {
		t.Errorf("serial chain of 400: %d cycles", r.Cycles)
	}
	if r.IPC() > 1.05 {
		t.Errorf("serial chain IPC %.2f > 1", r.IPC())
	}
}

func TestIndependentALUThroughput(t *testing.T) {
	src := ""
	for i := 0; i < 400; i++ {
		src += "addi r" + itoa(2+i%8) + ", r0, 1\n"
	}
	src += "halt"
	r := runSrc(t, src, interp.ModeOff)
	// Two integer units: about two per cycle.
	if r.IPC() < 1.6 {
		t.Errorf("independent ALU IPC %.2f, want ~2", r.IPC())
	}
	if r.IPC() > 2.2 {
		t.Errorf("independent ALU IPC %.2f exceeds 2 INT units", r.IPC())
	}
}

func TestLoadUseLatency(t *testing.T) {
	// Back-to-back dependent load-use pairs on resident data.
	src := ".data buf 64\nla r1, buf\nld r2, 0(r1)\n" // warm the line
	for i := 0; i < 100; i++ {
		src += "ld r2, 0(r1)\nadd r3, r2, r2\n"
	}
	src += "halt"
	r := runSrc(t, src, interp.ModeOff)
	// Each pair costs >= 2 cycles (load-use) with 1 memory port.
	if r.Cycles < 200 {
		t.Errorf("load-use pairs too fast: %d cycles for 100 pairs", r.Cycles)
	}
}

func TestDependentMissChainSerialises(t *testing.T) {
	// Chase through 64 nodes spread over 128 KB (built via Init words so
	// the chase is cold): every hop is a dependent memory-latency round
	// trip that cannot overlap with the next.
	b := asm.NewBuilder()
	const nodes = 64
	base := b.Alloc("nodes", 160<<10)
	stride := uint64(2048 + 32) // distinct lines and DM sets
	for i := uint64(0); i < nodes; i++ {
		b.InitWord(base+i*stride, base+(i+1)*stride)
	}
	b.LoadImm(isa.R1, int64(base))
	b.LoadImm(isa.R2, nodes)
	b.Label("chase")
	b.Ld(isa.R3, isa.R1, 0, false)
	b.Move(isa.R1, isa.R3)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "chase")
	b.Halt()
	p := b.MustFinish()
	cfg := DefaultConfig()
	cfg.MaxInsts = 1_000_000
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1Misses != nodes {
		t.Errorf("misses %d, want %d", r.L1Misses, nodes)
	}
	// Serial cold misses: at least ~45 cycles each.
	if r.Cycles < nodes*45 {
		t.Errorf("dependent misses overlapped: %d cycles for %d serial misses", r.Cycles, nodes)
	}
	if r.CacheSlots < r.TotalSlots()/2 {
		t.Errorf("cache slots %d of %d: chase should be cache-bound", r.CacheSlots, r.TotalSlots())
	}
}

func TestMSHROverlap(t *testing.T) {
	// Eight independent misses should overlap in the lockup-free cache.
	src := ".data buf 131072\nla r1, buf\n"
	for i := 0; i < 8; i++ {
		src += "ld r" + itoa(2+i) + ", " + itoa(i*4096) + "(r1)\n"
	}
	src += "halt"
	r := runSrc(t, src, interp.ModeOff)
	// Serial misses would cost ~8*50 = 400; overlapped, far less.
	if r.Cycles > 300 {
		t.Errorf("independent misses did not overlap: %d cycles", r.Cycles)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	// A data-dependent 50/50 branch vs an always-taken loop branch.
	biased := runSrc(t, loopWithCond("beq r0, r0"), interp.ModeOff)
	// Alternating branch: flips every iteration, 2-bit counters stay
	// confused at ~50%.
	alt := runSrc(t, loopWithCond("bne r5, r0"), interp.ModeOff)
	if alt.Cycles <= biased.Cycles {
		t.Errorf("mispredictions not penalised: alt=%d biased=%d", alt.Cycles, biased.Cycles)
	}
	if alt.BranchMispredicts < 100 {
		t.Errorf("alternating branch mispredicts %d", alt.BranchMispredicts)
	}
}

// loopWithCond builds a 400-iteration loop whose body contains a
// conditional branch over one instruction; cond is the branch condition
// ("beq r0, r0" is always taken, "bne r5, r0" alternates via r5).
func loopWithCond(cond string) string {
	return `
		li r16, 400
	top:
		xori r5, r5, 1
		` + cond + `, skip
		addi r2, r2, 1
	skip:
		addi r16, r16, -1
		bne r16, r0, top
		halt`
}

func TestInformingReplayTrapCost(t *testing.T) {
	base := runSrc(t, sweep(false), interp.ModeOff)
	inf := runSrc(t, sweep(true), interp.ModeTrap)
	if inf.Traps == 0 {
		t.Fatal("no traps fired")
	}
	if inf.Traps != inf.L1Misses {
		t.Errorf("traps %d != misses %d", inf.Traps, inf.L1Misses)
	}
	if inf.Cycles <= base.Cycles {
		t.Errorf("informing handler was free: %d vs %d", inf.Cycles, base.Cycles)
	}
	if inf.HandlerInsts != inf.Traps*2 {
		t.Errorf("handler instructions %d, want %d", inf.HandlerInsts, inf.Traps*2)
	}
}

func sweep(armed bool) string {
	s := "j start\nhandler:\naddi r20, r20, 1\nrfmh\nstart:\n"
	if armed {
		s += "mtmhar handler\n"
	}
	return s + `
		.data buf 65536
		la r1, buf
		li r2, 8192
	loop:
		ld.i r3, 0(r1)
		addi r1, r1, 8
		addi r2, r2, -1
		bne r2, r0, loop
		halt`
}

func TestSlotAccountingConsistent(t *testing.T) {
	for _, src := range []string{chain(100), sweep(false), loopWithCond("bne r5, r0")} {
		r := runSrc(t, src, interp.ModeOff)
		// Run.Check covers the slot-partition and Instrs==DynInsts
		// invariants in one place (shared with the ooo engine's test).
		if err := r.Check(); err != nil {
			t.Errorf("run fails stats.Check: %v", err)
		}
	}
}

func TestFPLatencies(t *testing.T) {
	// Serial FP adds at 4 cycles each (in-order model).
	src := ".float c 1.0\nla r1, c\nfld f1, 0(r1)\n"
	for i := 0; i < 100; i++ {
		src += "fadd f1, f1, f1\n"
	}
	src += "halt"
	r := runSrc(t, src, interp.ModeOff)
	if r.Cycles < 400 {
		t.Errorf("serial fadd chain too fast: %d cycles", r.Cycles)
	}
	// Serial divides at 17 cycles each.
	src2 := ".float c 1.0\nla r1, c\nfld f1, 0(r1)\n"
	for i := 0; i < 50; i++ {
		src2 += "fdiv f1, f1, f1\n"
	}
	src2 += "halt"
	r2 := runSrc(t, src2, interp.ModeOff)
	if r2.Cycles < 50*17 {
		t.Errorf("serial fdiv chain too fast: %d cycles", r2.Cycles)
	}
}

func TestDeterministicTiming(t *testing.T) {
	a := runSrc(t, sweep(true), interp.ModeTrap)
	b := runSrc(t, sweep(true), interp.ModeTrap)
	if a != b {
		t.Error("in-order model is nondeterministic")
	}
}

func TestInstructionLimit(t *testing.T) {
	p, err := asm.Assemble("loop: j loop\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	if _, err := Run(p, cfg); err == nil {
		t.Error("runaway program did not hit the instruction limit")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
