package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"informing/internal/asm"
	"informing/internal/isa"
)

// Record-stream differential for the block kernel: StepBlockInto must
// produce the byte-identical Rec sequence a StepInto loop produces, for
// every informing mode and any buffer size, including the MHARArmed
// snapshot the out-of-order core's shadow logic consumes.

// diffProgram is a seeded random terminating program; informing loads and
// a trap handler give ModeTrap runs real mid-block redirects.
func diffProgram(seed int64) *isa.Program {
	r := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder()
	buf := b.Alloc("buf", 1<<12)
	b.MtmharLabel("handler")
	for i := 1; i <= 6; i++ {
		b.LoadImm(isa.R(i), int64(r.Uint32()>>10)+1)
	}
	b.LoadImm(isa.R(10), int64(20+r.Intn(40)))
	b.LoadImm(isa.R(11), int64(buf))
	alu := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Xor, isa.Srl, isa.Slt}
	reg := func() isa.Reg { return isa.R(1 + r.Intn(6)) }
	b.Label("loop")
	for j, n := 0, 6+r.Intn(14); j < n; j++ {
		switch r.Intn(8) {
		case 0, 1, 2:
			b.Emit(isa.Inst{Op: alu[r.Intn(len(alu))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 3, 4:
			b.Ld(reg(), isa.R(11), int64(r.Intn(1<<11)&^7), r.Intn(2) == 0)
		case 5:
			b.St(reg(), isa.R(11), int64(r.Intn(1<<11)&^7), r.Intn(2) == 0)
		case 6:
			skip := b.Unique("skip")
			b.Bge(reg(), reg(), skip)
			b.Add(isa.R(7), isa.R(7), isa.R(1))
			b.Label(skip)
		case 7:
			bm := b.Unique("bm")
			b.Ld(reg(), isa.R(11), int64(r.Intn(1<<11)&^7), true)
			b.Bmiss(isa.R(15), bm)
			b.Add(isa.R(16), isa.R(16), isa.R(2))
			b.Label(bm)
		}
	}
	b.Addi(isa.R(10), isa.R(10), -1)
	b.Bne(isa.R(10), isa.R0, "loop")
	b.Halt()
	b.Label("handler")
	b.Add(isa.R(20), isa.R(20), isa.R(3))
	b.Rfmh()
	return b.MustFinish()
}

// fakeProbe returns a deterministic stateful probe: every 5th reference
// misses to L2, every 17th to memory. Each machine gets its own instance;
// since both execute the same reference stream, the probes agree.
func fakeProbe() Probe {
	n := 0
	return func(addr uint64, write bool) int {
		n++
		switch {
		case n%17 == 0:
			return LevelMem
		case n%5 == 0:
			return LevelL2
		default:
			return LevelL1
		}
	}
}

func TestStepBlockIntoMatchesStepInto(t *testing.T) {
	modes := []Mode{ModeOff, ModeCondCode, ModeTrap}
	bufSizes := []int{1, 3, 7, 64}
	for _, mode := range modes {
		for seed := int64(1); seed <= 8; seed++ {
			prog := diffProgram(seed)

			// Reference stream: the per-instruction path.
			ref := New(prog, mode, fakeProbe())
			var want []Rec
			for !ref.Halted {
				var rec Rec
				if err := ref.StepInto(&rec); err != nil {
					t.Fatalf("mode %v seed %d: StepInto: %v", mode, seed, err)
				}
				want = append(want, rec)
				if len(want) > 2_000_000 {
					t.Fatalf("mode %v seed %d: reference run not terminating", mode, seed)
				}
			}

			for _, bs := range bufSizes {
				t.Run(fmt.Sprintf("mode%d/seed%d/buf%d", mode, seed, bs), func(t *testing.T) {
					m := New(prog, mode, fakeProbe())
					buf := make([]Rec, bs)
					var got int
					for !m.Halted {
						n, err := m.StepBlockInto(buf)
						if err != nil {
							t.Fatalf("StepBlockInto: %v", err)
						}
						for i := 0; i < n; i++ {
							if got >= len(want) {
								t.Fatalf("block path produced more than the %d reference records", len(want))
							}
							if buf[i] != want[got] {
								t.Fatalf("record %d diverged:\n block: %+v\n  ref: %+v", got, buf[i], want[got])
							}
							got++
						}
					}
					if got != len(want) {
						t.Fatalf("block path produced %d records, reference %d", got, len(want))
					}
					if m.PC != ref.PC || m.Seq != ref.Seq || m.MHAR != ref.MHAR ||
						m.MHRR != ref.MHRR || m.MissCounter != ref.MissCounter ||
						m.Traps != ref.Traps || m.Mem.Fingerprint() != ref.Mem.Fingerprint() {
						t.Fatal("final architectural state diverged")
					}
					if m.BlockCount() == 0 {
						t.Fatal("block table discovered no blocks — the kernel did not engage")
					}
				})
			}
		}
	}
}
