package interp

// BlockFeeder adapts block-replayed execution (StepBlockInto) to the
// one-record-at-a-time consumption pattern of the timing cores. The cores
// historically called StepInto once per fetched instruction; with the
// block kernel (DESIGN.md §14) the functional machine runs ahead,
// executing whole basic blocks into an internal buffer, and the core
// drains records from the buffer at its own fetch cadence. The consumed
// record stream — including error and budget surfacing order — is
// identical to the per-instruction path:
//
//   - the instruction budget caps how far the machine may run ahead, so
//     a budget abort observes exactly Seq == limit, as before;
//   - a step error (bad PC, text-segment store, unimplemented op) is
//     deferred until the records executed before it have been consumed,
//     which is precisely when the per-instruction path would have
//     surfaced it;
//   - FeedHalted is reported only once the buffer is drained, matching
//     the per-instruction path where m.Halted becomes observable when the
//     HALT instruction is fetched.
//
// The per-instruction fallback (perInst, used when the kernel is disabled
// or when the core interleaves its own probe traffic with execution, as
// the out-of-order core's speculative-injection mode does) fills one
// record per Peek via StepInto, making the fill/consume interleaving
// exactly the historical one.

// FeedStatus reports what Peek found.
type FeedStatus uint8

const (
	// FeedRec: a record is available.
	FeedRec FeedStatus = iota
	// FeedHalted: the machine halted and every record has been consumed.
	FeedHalted
	// FeedBudget: the instruction budget is exhausted before a halt.
	FeedBudget
	// FeedErr: a step error is pending; retrieve it with Err.
	FeedErr
)

// blockFeedLen is the execute-ahead window in instructions. Large enough
// to amortise block dispatch, small enough that the buffer (~100 B per
// record) stays cache-resident.
const blockFeedLen = 64

// BlockFeeder buffers block-replayed records for a timing core. Create
// one per run with NewBlockFeeder.
type BlockFeeder struct {
	m       *Machine
	limit   uint64 // machine never executes past Seq == limit
	perInst bool
	err     error
	head, n int
	buf     [blockFeedLen]Rec
}

// NewBlockFeeder returns a feeder over m that will execute at most limit
// instructions. perInst disables execute-ahead: each Peek fills at most
// one record via StepInto.
func NewBlockFeeder(m *Machine, limit uint64, perInst bool) *BlockFeeder {
	return &BlockFeeder{m: m, limit: limit, perInst: perInst}
}

// Peek returns the next unconsumed record, filling the buffer from the
// machine if it is empty. The returned pointer is valid until the next
// fill (i.e. at least until Advance has consumed the buffer); cores copy
// the record into their own pipeline state.
func (f *BlockFeeder) Peek() (*Rec, FeedStatus) {
	if f.head < f.n {
		return &f.buf[f.head], FeedRec
	}
	if f.err != nil {
		return nil, FeedErr
	}
	if f.m.Halted {
		return nil, FeedHalted
	}
	if f.m.Seq >= f.limit {
		return nil, FeedBudget
	}
	f.head = 0
	if f.perInst {
		if err := f.m.StepInto(&f.buf[0]); err != nil {
			f.n, f.err = 0, err
			return nil, FeedErr
		}
		f.n = 1
		return &f.buf[0], FeedRec
	}
	max := uint64(blockFeedLen)
	if room := f.limit - f.m.Seq; room < max {
		max = room
	}
	f.n, f.err = f.m.StepBlockInto(f.buf[:max])
	if f.n == 0 {
		// !Halted and room > 0 guarantee at least one step unless the
		// very first instruction errored.
		return nil, FeedErr
	}
	return &f.buf[0], FeedRec
}

// Advance consumes the record last returned by Peek.
func (f *BlockFeeder) Advance() { f.head++ }

// Err returns the deferred step error (valid once Peek reports FeedErr).
func (f *BlockFeeder) Err() error { return f.err }

// Drained reports whether every record of a halted machine has been
// consumed — the cores' termination condition (previously m.Halted, which
// with execute-ahead can be true while records are still buffered).
func (f *BlockFeeder) Drained() bool {
	return f.head >= f.n && f.err == nil && f.m.Halted
}
