// Package interp implements the functional (untimed) model of the
// simulated machine, including the architectural semantics of informing
// memory operations. Both timing cores (internal/inorder, internal/ooo)
// drive a Machine as their front end: the Machine executes instructions in
// dynamic order, resolving each memory reference's hit/miss outcome through
// a pluggable probe, and emits one Rec per dynamic instruction for the
// timing back end to schedule. Used stand-alone it is the golden reference
// model for differential tests.
package interp

import (
	"errors"
	"fmt"
	"math"

	"informing/internal/govern"
	"informing/internal/isa"
	"informing/internal/stats"
)

// Mode selects which informing mechanism is architecturally active.
type Mode uint8

const (
	// ModeOff disables informing behaviour entirely: memory ops still
	// record the cache condition code (it is ordinary user state), but
	// no traps fire. BMISS still tests the condition code.
	ModeOff Mode = iota
	// ModeCondCode is the paper's §2.1 scheme: hit/miss is recorded in a
	// condition code tested by explicit BMISS instructions. No traps.
	ModeCondCode
	// ModeTrap is the paper's §2.2 scheme: an informing memory operation
	// that misses in the primary data cache with a non-zero MHAR
	// transfers control to the MHAR, capturing the return address in
	// the MHRR.
	ModeTrap
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeCondCode:
		return "condcode"
	case ModeTrap:
		return "trap"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Memory levels returned by a Probe.
const (
	LevelL1  = 1 // primary data cache hit
	LevelL2  = 2 // secondary cache hit
	LevelMem = 3 // main memory
)

// Probe architecturally resolves a data reference: it looks up (and
// updates, with allocate-on-miss) the cache tag state and reports which
// level of the hierarchy satisfies the access. A nil Probe means a perfect
// cache (every access is an L1 hit).
type Probe func(addr uint64, write bool) int

// FaultHook perturbs the architecturally resolved level of a data
// reference after the probe has run (internal/faults implements it).
// Implementations must be deterministic: differential tests rely on two
// identically configured runs observing identical outcomes.
type FaultHook interface {
	Outcome(pc, addr uint64, write, inHandler bool, level int) int
}

// Rec describes one dynamically executed instruction. The timing cores
// consume these records in order.
type Rec struct {
	Seq    uint64
	PC     uint64
	Inst   isa.Inst
	SIdx   int // static instruction index: Prog.Text[SIdx] == Inst
	NextPC uint64

	// Memory operations only.
	EA    uint64
	Level int // LevelL1..LevelMem; 0 for non-memory instructions

	// Control flow.
	Taken bool // branch taken (conditional branches and BMISS)
	Trap  bool // an informing miss trap fired after this memory op

	// MHARArmed records whether the MHAR was non-zero after this
	// instruction executed. The out-of-order core's fetch stage needs
	// this to decide whether a non-trapping informing reference occupies
	// branch shadow state; with block-replayed execution the machine runs
	// ahead of the timing core, so the live m.MHAR no longer reflects the
	// state at this instruction — the record carries it instead.
	MHARArmed bool
}

// TraceEvent builds the per-instruction pipeline trace record from the
// dynamic record plus the timing core's stage timestamps. Both timing
// cores construct their trace events exclusively through this helper at
// retirement/graduation, so the architectural fields — Seq, PC, Disasm,
// MemLevel and in particular the Trap flag — have a single, shared
// definition; the cores differ only in the four timestamps they supply.
// (Historically each core assembled the event by hand at a different
// pipeline stage, which let the field semantics drift; the differential
// trace test in internal/core pins the parity.)
//
// The disassembly text is supplied by the caller — normally
// Machine.Disasms()[r.SIdx] — rather than derived here: disassembling is
// a handful of fmt.Sprintf calls, far too expensive for a per-event cost
// on the sampled trace path, while the text depends only on the static
// instruction and so is computed once per run.
func (r *Rec) TraceEvent(disasm string, fetch, issue, complete, graduate int64) stats.TraceEvent {
	ev := stats.TraceEvent{
		Seq:      r.Seq,
		PC:       r.PC,
		Disasm:   disasm,
		Fetch:    fetch,
		Issue:    issue,
		Complete: complete,
		Graduate: graduate,
		MemLevel: r.Level,
		Trap:     r.Trap,
	}
	if r.Level > 0 {
		// Schema v2 memory-reference fields: the effective address and
		// access kind recorded at execution make the trace replayable
		// through the hierarchy model on its own (internal/trace).
		ev.Addr = r.EA
		ev.Store = r.Inst.IsStore()
	}
	return ev
}

// ErrPC is returned when execution falls outside the text segment.
var ErrPC = errors.New("interp: PC outside text segment")

// ErrTextWrite is returned when a store's effective address lands inside
// the text segment. The predecoded dispatch tables (isa.Static, the block
// table) are built once from the program text and would silently disagree
// with memory after such a store — fetch reads Prog.Text, data accesses
// read DataMem — so self-modifying code is rejected as a typed error
// instead of diverging (DESIGN.md §14). The faulting store has no
// architectural effect: neither memory nor the cache tag state changes.
var ErrTextWrite = errors.New("interp: store to text segment (self-modifying code is not supported)")

// ErrLimit is returned by Run when the step budget is exhausted.
var ErrLimit = errors.New("interp: instruction limit exceeded")

// Machine is the architectural state plus execution configuration.
type Machine struct {
	Prog *isa.Program
	Mem  *isa.DataMem

	G  [32]uint64  // integer registers; G[0] ignored (reads as 0)
	FR [32]float64 // floating-point registers

	PC     uint64
	MHAR   uint64
	MHRR   uint64
	CCMiss bool // cache-outcome condition code of the last memory op

	// InHandler is the hardware in-handler bit: set on trap entry and
	// cleared by RFMH, it suppresses nested informing traps so the MHRR
	// is not clobbered by misses inside the handler (§5 of DESIGN.md).
	InHandler bool

	// AllowNest permits nested traps (for tests that demonstrate why
	// suppression is needed).
	AllowNest bool

	Mode  Mode
	Probe Probe

	// Faults, when non-nil, perturbs each reference's resolved level
	// after the probe runs (forced misses, spurious hits, poisoned
	// lines; see internal/faults).
	Faults FaultHook

	// TrapThreshold is the hierarchy level a reference must miss past to
	// trigger an informing trap: LevelL1 (default when zero) traps on any
	// primary-cache miss; LevelL2 traps only on secondary-cache misses —
	// the refinement §4.1.3 proposes for software multithreading, where
	// short L2 hits are not worth a context switch.
	TrapThreshold int

	Halted bool
	Seq    uint64 // dynamic instruction count

	// Traps counts informing trap entries; BmissTaken counts taken
	// BMISS branches. MissCounter is the architected hardware miss
	// counter read by MFCNT (the paper's §1 strawman).
	Traps       uint64
	BmissTaken  uint64
	MissCounter uint64

	// Predecoded dispatch state (DESIGN.md §10): the text segment, its
	// base and the per-static-instruction classification are cached here
	// at construction so Step neither re-validates the PC arithmetic nor
	// re-derives instruction invariants per dynamic instance. Built by
	// New; rebuilt lazily when a Machine is constructed as a literal.
	static   []isa.Static
	text     []isa.Inst
	textBase uint64
	textSize uint64          // text-segment length in bytes (store-guard bound)
	blocks   *isa.BlockTable // lazily-built basic-block memo (DESIGN.md §14)
	disasm   []string        // lazily-built per-static-instruction disassembly
}

// New returns a Machine ready to run p from its text base, with memory
// initialised from the program image.
func New(p *isa.Program, mode Mode, probe Probe) *Machine {
	mem := &isa.DataMem{}
	mem.LoadInit(p)
	m := &Machine{Prog: p, Mem: mem, PC: p.TextBase, Mode: mode, Probe: probe}
	m.predecode()
	return m
}

// predecode (re)builds the cached dispatch state from Prog. The block
// memo is dropped too: it indexes the statics rebuilt here.
func (m *Machine) predecode() {
	m.text = m.Prog.Text
	m.textBase = m.Prog.TextBase
	m.textSize = uint64(len(m.text)) * isa.InstBytes
	m.static = isa.PredecodeText(m.text)
	m.blocks = nil
}

// Statics returns the per-static-instruction predecode table, building it
// on first use. The timing cores index it with Rec.SIdx so their
// scheduling loops never re-derive static classification (or allocate;
// Inst.Sources returns a fresh slice, Static.Src does not).
func (m *Machine) Statics() []isa.Static {
	if m.static == nil {
		m.predecode()
	}
	return m.static
}

// Disasms returns the per-static-instruction disassembly table, built on
// first use. Tracing cores index it with Rec.SIdx so a sampled trace
// reuses one string per static instruction instead of re-disassembling
// (several fmt.Sprintf calls, plus allocations) per dynamic instance.
func (m *Machine) Disasms() []string {
	if m.disasm == nil {
		if m.text == nil {
			m.predecode()
		}
		m.disasm = make([]string, len(m.text))
		for k := range m.text {
			m.disasm[k] = m.text[k].String()
		}
	}
	return m.disasm
}

func (m *Machine) g(r isa.Reg) uint64 {
	if r == isa.R0 {
		return 0
	}
	if r.IsFP() {
		// Integer read of an FP register: raw bits. Generators never
		// do this, but keep semantics total for fuzzing.
		return math.Float64bits(m.FR[r.Index()])
	}
	return m.G[r.Index()]
}

func (m *Machine) f(r isa.Reg) float64 {
	if r.IsFP() {
		return m.FR[r.Index()]
	}
	return math.Float64frombits(m.g(r))
}

func (m *Machine) setG(r isa.Reg, v uint64) {
	if r == isa.R0 {
		return
	}
	if r.IsFP() {
		m.FR[r.Index()] = math.Float64frombits(v)
		return
	}
	m.G[r.Index()] = v
}

func (m *Machine) setF(r isa.Reg, v float64) {
	if r.IsFP() {
		m.FR[r.Index()] = v
		return
	}
	m.setG(r, math.Float64bits(v))
}

func (m *Machine) probe(addr uint64, write bool) int {
	if m.Probe == nil {
		return LevelL1
	}
	return m.Probe(addr, write)
}

// Step executes one instruction and returns its dynamic record.
func (m *Machine) Step() (Rec, error) {
	var rec Rec
	err := m.StepInto(&rec)
	return rec, err
}

// StepInto is Step writing the dynamic record into a caller-provided
// buffer. Rec is large enough that the by-value return of Step is a
// measurable fraction of the functional hot loop; the per-instruction
// drivers (Run, the timing cores) hoist one Rec out of their loops and
// step into it.
func (m *Machine) StepInto(rec *Rec) error {
	if m.Halted {
		return errors.New("interp: step on halted machine")
	}
	if m.static == nil {
		m.predecode()
	}
	// Predecoded fetch: the text base, segment and per-instruction
	// classification were cached at construction, so the per-step cost is
	// bounds arithmetic on constants (InstBytes is a power of two).
	off := m.PC - m.textBase
	k := int(off / isa.InstBytes)
	if m.PC < m.textBase || off%isa.InstBytes != 0 || k >= len(m.text) {
		return fmt.Errorf("%w: %#x", ErrPC, m.PC)
	}
	return m.exec(k, rec)
}

// exec executes the (pre-validated) static instruction at index k. It is
// the single definition of the instruction semantics: StepInto reaches it
// after per-instruction PC validation, StepBlockInto after one validation
// per basic block.
func (m *Machine) exec(k int, rec *Rec) error {
	in := &m.text[k]
	st := &m.static[k]
	*rec = Rec{Seq: m.Seq, PC: m.PC, Inst: *in, SIdx: k}
	m.Seq++
	next := m.PC + isa.InstBytes

	switch in.Op {
	case isa.Nop:
	case isa.Halt:
		m.Halted = true

	case isa.Add:
		m.setG(in.Rd, m.g(in.Rs1)+m.g(in.Rs2))
	case isa.Sub:
		m.setG(in.Rd, m.g(in.Rs1)-m.g(in.Rs2))
	case isa.Mul:
		m.setG(in.Rd, m.g(in.Rs1)*m.g(in.Rs2))
	case isa.Div:
		d := m.g(in.Rs2)
		if d == 0 {
			m.setG(in.Rd, 0) // defined: divide by zero yields 0
		} else {
			m.setG(in.Rd, uint64(int64(m.g(in.Rs1))/int64(d)))
		}
	case isa.Rem:
		d := m.g(in.Rs2)
		if d == 0 {
			m.setG(in.Rd, m.g(in.Rs1)) // defined: rem by zero yields rs1
		} else {
			m.setG(in.Rd, uint64(int64(m.g(in.Rs1))%int64(d)))
		}
	case isa.And:
		m.setG(in.Rd, m.g(in.Rs1)&m.g(in.Rs2))
	case isa.Or:
		m.setG(in.Rd, m.g(in.Rs1)|m.g(in.Rs2))
	case isa.Xor:
		m.setG(in.Rd, m.g(in.Rs1)^m.g(in.Rs2))
	case isa.Nor:
		m.setG(in.Rd, ^(m.g(in.Rs1) | m.g(in.Rs2)))
	case isa.Sll:
		m.setG(in.Rd, m.g(in.Rs1)<<(m.g(in.Rs2)&63))
	case isa.Srl:
		m.setG(in.Rd, m.g(in.Rs1)>>(m.g(in.Rs2)&63))
	case isa.Sra:
		m.setG(in.Rd, uint64(int64(m.g(in.Rs1))>>(m.g(in.Rs2)&63)))
	case isa.Slt:
		m.setG(in.Rd, b2u(int64(m.g(in.Rs1)) < int64(m.g(in.Rs2))))
	case isa.Sltu:
		m.setG(in.Rd, b2u(m.g(in.Rs1) < m.g(in.Rs2)))

	case isa.Addi:
		m.setG(in.Rd, m.g(in.Rs1)+uint64(in.Imm))
	case isa.Andi:
		m.setG(in.Rd, m.g(in.Rs1)&uint64(in.Imm))
	case isa.Ori:
		m.setG(in.Rd, m.g(in.Rs1)|uint64(in.Imm))
	case isa.Xori:
		m.setG(in.Rd, m.g(in.Rs1)^uint64(in.Imm))
	case isa.Slli:
		m.setG(in.Rd, m.g(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.Srli:
		m.setG(in.Rd, m.g(in.Rs1)>>(uint64(in.Imm)&63))
	case isa.Srai:
		m.setG(in.Rd, uint64(int64(m.g(in.Rs1))>>(uint64(in.Imm)&63)))
	case isa.Slti:
		m.setG(in.Rd, b2u(int64(m.g(in.Rs1)) < in.Imm))
	case isa.Lui:
		m.setG(in.Rd, uint64(in.Imm)<<32)

	case isa.Fadd:
		m.setF(in.Rd, m.f(in.Rs1)+m.f(in.Rs2))
	case isa.Fsub:
		m.setF(in.Rd, m.f(in.Rs1)-m.f(in.Rs2))
	case isa.Fmul:
		m.setF(in.Rd, m.f(in.Rs1)*m.f(in.Rs2))
	case isa.Fdiv:
		m.setF(in.Rd, m.f(in.Rs1)/m.f(in.Rs2))
	case isa.Fsqrt:
		m.setF(in.Rd, math.Sqrt(m.f(in.Rs1)))
	case isa.Fneg:
		m.setF(in.Rd, -m.f(in.Rs1))
	case isa.Fmov:
		m.setF(in.Rd, m.f(in.Rs1))
	case isa.Fcvt:
		m.setF(in.Rd, float64(int64(m.g(in.Rs1))))
	case isa.Icvt:
		m.setG(in.Rd, uint64(int64(m.f(in.Rs1))))
	case isa.Fclt:
		m.setG(in.Rd, b2u(m.f(in.Rs1) < m.f(in.Rs2)))
	case isa.Fceq:
		m.setG(in.Rd, b2u(m.f(in.Rs1) == m.f(in.Rs2)))

	case isa.Ld, isa.Fld, isa.St, isa.Fst, isa.Prefetch:
		ea := m.g(in.Rs1) + uint64(in.Imm)
		isStore := st.Store()
		if isStore && ea-m.textBase < m.textSize {
			// Self-modifying-code seam (DESIGN.md §14): the predecode and
			// block tables are built once from the program text, so a
			// store into the text segment would leave them stale. Reject
			// it before it takes any effect (no memory write, no cache
			// tag update).
			return fmt.Errorf("%w: pc %#x stores to %#x", ErrTextWrite, rec.PC, ea)
		}
		rec.EA = ea
		rec.Level = m.probe(ea, isStore)
		if m.Faults != nil {
			rec.Level = m.Faults.Outcome(m.PC, ea, isStore, m.InHandler, rec.Level)
		}
		switch in.Op {
		case isa.Ld:
			m.setG(in.Rd, m.Mem.Load(ea))
		case isa.Fld:
			m.setF(in.Rd, m.Mem.LoadF(ea))
		case isa.St:
			m.Mem.Store(ea, m.g(in.Rs2))
		case isa.Fst:
			m.Mem.StoreF(ea, m.f(in.Rs2))
		case isa.Prefetch:
			// Tag update only (done by probe); never informs.
		}
		if in.Op != isa.Prefetch {
			m.CCMiss = rec.Level > LevelL1
			if m.CCMiss {
				m.MissCounter++
			}
			threshold := m.TrapThreshold
			if threshold < LevelL1 {
				threshold = LevelL1
			}
			if m.Mode == ModeTrap && in.Informing && rec.Level > threshold &&
				m.MHAR != 0 && (!m.InHandler || m.AllowNest) {
				// Low-overhead miss trap: the memory operation
				// completes (it is non-blocking) and control
				// transfers to the handler atomically.
				m.MHRR = m.PC + isa.InstBytes
				next = m.MHAR
				m.InHandler = true
				m.Traps++
				rec.Trap = true
			}
		}

	case isa.Beq:
		rec.Taken = m.g(in.Rs1) == m.g(in.Rs2)
	case isa.Bne:
		rec.Taken = m.g(in.Rs1) != m.g(in.Rs2)
	case isa.Blt:
		rec.Taken = int64(m.g(in.Rs1)) < int64(m.g(in.Rs2))
	case isa.Bge:
		rec.Taken = int64(m.g(in.Rs1)) >= int64(m.g(in.Rs2))

	case isa.J:
		next = uint64(in.Imm)
	case isa.Jal:
		m.setG(in.Rd, m.PC+isa.InstBytes)
		next = uint64(in.Imm)
	case isa.Jr:
		next = m.g(in.Rs1)
	case isa.Jalr:
		ret := m.PC + isa.InstBytes
		next = m.g(in.Rs1)
		m.setG(in.Rd, ret)

	case isa.Bmiss:
		if m.CCMiss {
			rec.Taken = true
			m.setG(in.Rd, m.PC+isa.InstBytes)
			m.BmissTaken++
		}

	case isa.Mtmhar:
		m.MHAR = m.g(in.Rs1) + uint64(in.Imm)
	case isa.Mtmhrr:
		m.MHRR = m.g(in.Rs1) + uint64(in.Imm)
	case isa.Mfmhar:
		m.setG(in.Rd, m.MHAR)
	case isa.Mfmhrr:
		m.setG(in.Rd, m.MHRR)
	case isa.Mfcnt:
		m.setG(in.Rd, m.MissCounter)
	case isa.Rfmh:
		next = m.MHRR
		m.InHandler = false

	default:
		return fmt.Errorf("interp: %#x: unimplemented op %v", m.PC, in.Op)
	}

	if rec.Taken && st.CondBranch() {
		next = m.PC + isa.InstBytes + uint64(in.Imm)
	}
	rec.NextPC = next
	m.PC = next
	rec.MHARArmed = m.MHAR != 0
	return nil
}

// StepBlockInto executes instructions block-at-a-time (DESIGN.md §14),
// writing one Rec per dynamic instruction into buf, and returns how many
// it executed. It stops at the end of buf, when the machine halts, or on
// the first error (the n records already written remain valid; the
// failing instruction is not counted). Within a discovered block the PC
// is validated once, so the per-instruction cost is the semantic switch
// alone; informing-trap redirects simply end the current block's replay
// and discovery continues at the handler. The record stream is
// bit-identical to repeated StepInto calls — the differential fuzz suite
// in internal/core pins this.
func (m *Machine) StepBlockInto(buf []Rec) (int, error) {
	if m.Halted {
		return 0, errors.New("interp: step on halted machine")
	}
	if m.static == nil {
		m.predecode()
	}
	if m.blocks == nil {
		m.blocks = isa.NewBlockTable(m.text, m.static)
	}
	n := 0
	for n < len(buf) && !m.Halted {
		off := m.PC - m.textBase
		k := int(off / isa.InstBytes)
		if m.PC < m.textBase || off%isa.InstBytes != 0 || k >= len(m.text) {
			return n, fmt.Errorf("%w: %#x", ErrPC, m.PC)
		}
		end := k + int(m.blocks.At(k).Len)
		for ; k < end && n < len(buf); k++ {
			rec := &buf[n]
			if err := m.exec(k, rec); err != nil {
				return n, err
			}
			n++
			if rec.Trap {
				// Informing redirect mid-block: fall back to discovery
				// at the handler's PC.
				break
			}
			if m.Halted {
				return n, nil
			}
		}
	}
	return n, nil
}

// BlockCount reports how many basic blocks the machine has discovered so
// far (introspection/testing; 0 before the first StepBlockInto).
func (m *Machine) BlockCount() int {
	if m.blocks == nil {
		return 0
	}
	return m.blocks.Blocks()
}

// Run executes until Halt or until limit instructions have run (0 means
// the govern.DefaultBudget guard). On budget exhaustion the error wraps
// both govern.ErrBudget and ErrLimit.
func (m *Machine) Run(limit uint64) error {
	return m.RunGoverned(govern.New(govern.Config{MaxInsts: limit}))
}

// RunGoverned executes until Halt under gov's policy: the instruction
// budget (govern.ErrBudget, wrapping ErrLimit for compatibility) and
// context cancellation (govern.ErrCanceled). Abort errors carry a
// govern.Snapshot of the architectural state.
//
// Execution goes through the block kernel (StepBlockInto): the governor
// is still ticked once per instruction, so budget and cancellation
// granularity are unchanged, but the per-instruction fetch/validate
// overhead is paid once per basic block.
func (m *Machine) RunGoverned(gov *govern.Governor) error {
	limit := gov.Budget()
	abort := func(cause error) error {
		return govern.WithSnapshot(cause, govern.Snapshot{
			PC: m.PC, Seq: m.Seq,
			InHandler: m.InHandler, MHAR: m.MHAR, MHRR: m.MHRR,
		})
	}
	var buf [blockFeedLen]Rec
	for !m.Halted {
		if m.Seq >= limit {
			return abort(fmt.Errorf("interp: %w: %w (%d)", govern.ErrBudget, ErrLimit, limit))
		}
		if err := gov.Tick(); err != nil {
			return abort(fmt.Errorf("interp: %w", err))
		}
		max := uint64(len(buf))
		if room := limit - m.Seq; room < max {
			max = room
		}
		n, err := m.StepBlockInto(buf[:max])
		for i := 1; i < n; i++ {
			if terr := gov.Tick(); terr != nil {
				return abort(fmt.Errorf("interp: %w", terr))
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
