package interp

import (
	"errors"
	"testing"

	"informing/internal/asm"
	"informing/internal/isa"
)

// run assembles src, executes it functionally and returns the machine.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p, ModeOff, nil)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestIntegerALUSemantics(t *testing.T) {
	m := run(t, `
		li r1, 100
		li r2, 7
		add r3, r1, r2
		sub r4, r1, r2
		mul r5, r1, r2
		div r6, r1, r2
		rem r7, r1, r2
		and r8, r1, r2
		or  r9, r1, r2
		xor r10, r1, r2
		nor r11, r1, r2
		sll r12, r1, r2
		srl r13, r1, r2
		slt r14, r2, r1
		sltu r15, r1, r2
		halt`)
	want := map[int]uint64{
		3: 107, 4: 93, 5: 700, 6: 14, 7: 2,
		8: 100 & 7, 9: 100 | 7, 10: 100 ^ 7, 11: ^uint64(100 | 7),
		12: 100 << 7, 13: 100 >> 7, 14: 1, 15: 0,
	}
	for r, v := range want {
		if m.G[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.G[r], v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	m := run(t, `
		li r1, -16
		li r2, 3
		div r3, r1, r2
		rem r4, r1, r2
		sra r5, r1, r2
		srl r6, r1, r2
		slt r7, r1, r2
		sltu r8, r1, r2
		slti r9, r1, -15
		srai r10, r1, 2
		halt`)
	if int64(m.G[3]) != -5 || int64(m.G[4]) != -1 {
		t.Errorf("signed div/rem: %d, %d", int64(m.G[3]), int64(m.G[4]))
	}
	if int64(m.G[5]) != -2 {
		t.Errorf("sra: %d", int64(m.G[5]))
	}
	if int64(m.G[6]) == -2 {
		t.Error("srl behaved like sra")
	}
	if m.G[7] != 1 || m.G[8] != 0 {
		t.Errorf("slt/sltu on negative: %d, %d", m.G[7], m.G[8])
	}
	if m.G[9] != 1 || int64(m.G[10]) != -4 {
		t.Errorf("slti/srai: %d, %d", m.G[9], int64(m.G[10]))
	}
}

func TestDivideByZeroDefined(t *testing.T) {
	m := run(t, `
		li r1, 42
		div r2, r1, r0
		rem r3, r1, r0
		halt`)
	if m.G[2] != 0 {
		t.Errorf("div by zero = %d, want 0", m.G[2])
	}
	if m.G[3] != 42 {
		t.Errorf("rem by zero = %d, want 42", m.G[3])
	}
}

func TestR0HardwiredZero(t *testing.T) {
	m := run(t, `
		li r1, 5
		add r0, r1, r1
		add r2, r0, r0
		halt`)
	if m.G[2] != 0 {
		t.Errorf("write to r0 stuck: r2 = %d", m.G[2])
	}
}

func TestShiftAmountMasked(t *testing.T) {
	m := run(t, `
		li r1, 1
		li r2, 65
		sll r3, r1, r2
		halt`)
	if m.G[3] != 2 {
		t.Errorf("shift by 65 = %d, want 2 (masked to 1)", m.G[3])
	}
}

func TestLui(t *testing.T) {
	m := run(t, "lui r1, 3\nhalt")
	if m.G[1] != 3<<32 {
		t.Errorf("lui = %#x", m.G[1])
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
		.float c 2.25 4.0
		la r1, c
		fld f1, 0(r1)
		fld f2, 8(r1)
		fadd f3, f1, f2
		fsub f4, f1, f2
		fmul f5, f1, f2
		fdiv f6, f2, f1
		fsqrt f7, f2
		fneg f8, f1
		fmov f9, f1
		fclt r2, f1, f2
		fceq r3, f1, f9
		li r4, 7
		fcvt f10, r4
		icvt r5, f10
		halt`)
	checks := map[int]float64{3: 6.25, 4: -1.75, 5: 9.0, 6: 4.0 / 2.25, 7: 2.0, 8: -2.25, 9: 2.25, 10: 7.0}
	for r, v := range checks {
		if m.FR[r] != v {
			t.Errorf("f%d = %g, want %g", r, m.FR[r], v)
		}
	}
	if m.G[2] != 1 || m.G[3] != 1 || m.G[5] != 7 {
		t.Errorf("fclt/fceq/icvt: %d %d %d", m.G[2], m.G[3], m.G[5])
	}
}

func TestMemoryAndControlFlow(t *testing.T) {
	m := run(t, `
		.data buf 64
		la r1, buf
		li r2, 10
		li r3, 0
	loop:
		st r3, 0(r1)
		addi r1, r1, 8
		addi r3, r3, 3
		addi r2, r2, -1
		bne r2, r0, loop
		la r1, buf
		ld r4, 72(r1)
		jal r15, fn
		j end
	fn:
		addi r5, r0, 77
		jr r15
	end:
		halt`)
	if m.G[4] != 27 {
		t.Errorf("stored sequence wrong: %d", m.G[4])
	}
	if m.G[5] != 77 {
		t.Error("call/return failed")
	}
}

func TestTrapSemantics(t *testing.T) {
	p, err := asm.Assemble(`
		j start
	handler:
		addi r20, r20, 1
		mfmhrr r21
		rfmh
	start:
		mtmhar handler
		.data buf 128
		la r1, buf
		ld.i r2, 0(r1)    ; miss -> trap
		addi r3, r0, 1    ; return lands here
		ld.i r4, 0(r1)    ; hit -> no trap
		ld r5, 64(r1)     ; miss, but not informing -> no trap
		mtmhar r0
		ld.i r6, 96(r1)   ; miss, MHAR=0 -> no trap
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	// Probe: miss on first touch of each line.
	seen := map[uint64]bool{}
	probe := func(addr uint64, write bool) int {
		line := addr &^ 31
		if seen[line] {
			return LevelL1
		}
		seen[line] = true
		return LevelMem
	}
	m := New(p, ModeTrap, probe)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[20] != 1 {
		t.Fatalf("handler ran %d times, want 1", m.G[20])
	}
	// The MHRR must hold the address of the instruction after the
	// trapping load.
	retPC := m.G[21]
	k, ok := p.IndexOf(retPC)
	if !ok {
		t.Fatalf("MHRR %#x not in text", retPC)
	}
	if p.Text[k].Op != isa.Addi || p.Text[k].Imm != 1 {
		t.Errorf("MHRR points at %v", p.Text[k])
	}
	if m.G[3] != 1 {
		t.Error("execution did not resume after handler")
	}
	if m.Traps != 1 {
		t.Errorf("trap count %d", m.Traps)
	}
	// The load completed before the trap: r2 holds the loaded value.
	if m.G[2] != 0 {
		t.Errorf("trapping load value %d", m.G[2])
	}
}

func TestTrapNestingSuppressed(t *testing.T) {
	// A handler whose own references miss must not re-trap (it would
	// clobber the MHRR and loop forever).
	p, err := asm.Assemble(`
		j start
	handler:
		addi r20, r20, 1
		ld.i r21, 512(r1)  ; misses, but we are in the handler
		rfmh
	start:
		mtmhar handler
		.data buf 4096
		la r1, buf
		ld.i r2, 0(r1)
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeTrap, func(addr uint64, w bool) int { return LevelMem })
	if err := m.Run(10_000); err != nil {
		t.Fatalf("run (livelock?): %v", err)
	}
	if m.G[20] != 1 {
		t.Errorf("handler entries %d, want 1", m.G[20])
	}
}

func TestTrapNestingAllowedLoopsForever(t *testing.T) {
	p, err := asm.Assemble(`
		j start
	handler:
		ld.i r21, 512(r1)
		rfmh
	start:
		mtmhar handler
		.data buf 4096
		la r1, buf
		ld.i r2, 0(r1)
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeTrap, func(addr uint64, w bool) int { return LevelMem })
	m.AllowNest = true
	err = m.Run(10_000)
	if !errors.Is(err, ErrLimit) {
		t.Errorf("nested traps should livelock into the step limit, got %v", err)
	}
}

func TestCondCodeAndBmiss(t *testing.T) {
	p, err := asm.Assemble(`
		.data buf 128
		la r1, buf
		ld r2, 0(r1)       ; miss -> CC set
		bmiss r15, hit1
		j next
	hit1:
		addi r20, r20, 1   ; taken path
		jr r15
	next:
		ld r3, 0(r1)       ; hit -> CC clear
		bmiss r15, hit2
		addi r21, r0, 5    ; fallthrough expected
		halt
	hit2:
		addi r22, r0, 9
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	probe := func(addr uint64, w bool) int {
		line := addr &^ 31
		if seen[line] {
			return LevelL1
		}
		seen[line] = true
		return LevelL2
	}
	m := New(p, ModeCondCode, probe)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[20] != 1 {
		t.Error("BMISS not taken on miss")
	}
	if m.G[21] != 5 || m.G[22] != 0 {
		t.Error("BMISS taken on hit")
	}
	if m.BmissTaken != 1 {
		t.Errorf("BmissTaken = %d", m.BmissTaken)
	}
}

func TestMtmhrrAndRfmh(t *testing.T) {
	m := run(t, `
		la r1, target      ; la resolves text labels too
		mtmhrr r1
		rfmh
		halt               ; skipped
	target:
		addi r2, r0, 31
		halt`)
	if m.G[2] != 31 {
		t.Error("mtmhrr/rfmh did not transfer control")
	}
}

func TestPrefetchNeverTraps(t *testing.T) {
	p, err := asm.Assemble(`
		j start
	handler:
		addi r20, r20, 1
		rfmh
	start:
		mtmhar handler
		.data buf 64
		la r1, buf
		prefetch 0(r1)
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeTrap, func(addr uint64, w bool) int { return LevelMem })
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[20] != 0 {
		t.Error("prefetch triggered a trap")
	}
	if m.CCMiss {
		t.Error("prefetch set the condition code")
	}
}

func TestPCOutsideTextErrors(t *testing.T) {
	p, err := asm.Assemble("nop\nnop") // falls off the end
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeOff, nil)
	err = m.Run(0)
	if !errors.Is(err, ErrPC) {
		t.Errorf("expected ErrPC, got %v", err)
	}
}

func TestRunLimit(t *testing.T) {
	p, err := asm.Assemble("loop: j loop\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeOff, nil)
	if err := m.Run(100); !errors.Is(err, ErrLimit) {
		t.Errorf("expected ErrLimit, got %v", err)
	}
}

func TestStepOnHaltedMachine(t *testing.T) {
	p, err := asm.Assemble("halt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeOff, nil)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("step on halted machine succeeded")
	}
}

func TestRecFieldsForMemoryOps(t *testing.T) {
	p, err := asm.Assemble(`
		.data buf 64
		la r1, buf
		st r1, 8(r1)
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeOff, func(addr uint64, w bool) int {
		if !w {
			t.Error("store probed as read")
		}
		return LevelL2
	})
	var stRec Rec
	for !m.Halted {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Inst.Op == isa.St {
			stRec = rec
		}
	}
	if stRec.EA != m.G[1]+8 {
		t.Errorf("EA %#x, want %#x", stRec.EA, m.G[1]+8)
	}
	if stRec.Level != LevelL2 {
		t.Errorf("level %d", stRec.Level)
	}
}

func TestFloatBitsPreservedThroughMemory(t *testing.T) {
	m := run(t, `
		.data buf 16
		la r1, buf
		li r2, 1
		fcvt f1, r2
		fdiv f2, f1, f1
		fst f2, 0(r1)
		fld f3, 0(r1)
		halt`)
	if m.FR[3] != 1.0 {
		t.Errorf("float through memory: %g", m.FR[3])
	}
}

func TestMfcntCountsMisses(t *testing.T) {
	p, err := asm.Assemble(`
		.data buf 256
		la r1, buf
		mfcnt r10
		ld r2, 0(r1)      ; miss
		ld r3, 0(r1)      ; hit
		ld r4, 64(r1)     ; miss
		mfcnt r11
		sub r12, r11, r10
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	probe := func(addr uint64, w bool) int {
		line := addr &^ 31
		if seen[line] {
			return LevelL1
		}
		seen[line] = true
		return LevelMem
	}
	m := New(p, ModeOff, probe)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[12] != 2 {
		t.Errorf("counter delta %d, want 2", m.G[12])
	}
	if m.MissCounter != 2 {
		t.Errorf("miss counter %d", m.MissCounter)
	}
}
