package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"informing/internal/asm"
	"informing/internal/isa"
)

// genALUProgram emits a random straight-line integer program and, in
// parallel, computes the expected final register file with a direct Go
// model — an independent implementation of the ALU semantics.
func genALUProgram(r *rand.Rand) (*isa.Program, [32]uint64) {
	b := asm.NewBuilder()
	var g [32]uint64
	// Seed registers with known values.
	for i := 1; i <= 8; i++ {
		v := int64(int32(r.Uint64()))
		b.LoadImm(isa.R(i), v)
		g[i] = uint64(v)
	}
	ops := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem, isa.And,
		isa.Or, isa.Xor, isa.Nor, isa.Sll, isa.Srl, isa.Sra, isa.Slt, isa.Sltu}
	model := func(op isa.Op, a, c uint64) uint64 {
		switch op {
		case isa.Add:
			return a + c
		case isa.Sub:
			return a - c
		case isa.Mul:
			return a * c
		case isa.Div:
			if c == 0 {
				return 0
			}
			return uint64(int64(a) / int64(c))
		case isa.Rem:
			if c == 0 {
				return a
			}
			return uint64(int64(a) % int64(c))
		case isa.And:
			return a & c
		case isa.Or:
			return a | c
		case isa.Xor:
			return a ^ c
		case isa.Nor:
			return ^(a | c)
		case isa.Sll:
			return a << (c & 63)
		case isa.Srl:
			return a >> (c & 63)
		case isa.Sra:
			return uint64(int64(a) >> (c & 63))
		case isa.Slt:
			if int64(a) < int64(c) {
				return 1
			}
			return 0
		case isa.Sltu:
			if a < c {
				return 1
			}
			return 0
		}
		panic("unreachable")
	}
	for k := 0; k < 200; k++ {
		op := ops[r.Intn(len(ops))]
		rd := isa.R(1 + r.Intn(15))
		rs1 := isa.R(r.Intn(16))
		rs2 := isa.R(r.Intn(16))
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		g[rd.Index()] = model(op, g[rs1.Index()], g[rs2.Index()])
	}
	b.Halt()
	return b.MustFinish(), g
}

// TestALUAgainstIndependentModel cross-checks the interpreter's integer
// semantics against a second, independently written evaluator on random
// programs.
func TestALUAgainstIndependentModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog, want := genALUProgram(r)
		m := New(prog, ModeOff, nil)
		if err := m.Run(0); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		for i := 1; i < 16; i++ {
			if m.G[i] != want[i] {
				t.Logf("seed %d: r%d = %#x, want %#x", seed, i, m.G[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: two executions of the same program reach bit-identical
// state.
func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prog, _ := genALUProgram(r)
	run := func() *Machine {
		m := New(prog, ModeOff, nil)
		if err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.G != b.G || a.Seq != b.Seq {
		t.Error("interpreter is nondeterministic")
	}
}

// TestStepCountMatchesSeq: Seq equals the number of Step calls that
// succeeded.
func TestStepCountMatchesSeq(t *testing.T) {
	prog, _ := genALUProgram(rand.New(rand.NewSource(7)))
	m := New(prog, ModeOff, nil)
	var n uint64
	for !m.Halted {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if m.Seq != n {
		t.Errorf("Seq %d != steps %d", m.Seq, n)
	}
}

// TestRecNextPCChains: every record's NextPC equals the next record's PC.
func TestRecNextPCChains(t *testing.T) {
	p, err := asm.Assemble(`
		li r1, 5
	loop:
		addi r1, r1, -1
		bne r1, r0, loop
		jal r15, fn
		halt
	fn:	jr r15`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, ModeOff, nil)
	var prev Rec
	first := true
	for !m.Halted {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !first && prev.NextPC != rec.PC {
			t.Fatalf("seq %d: NextPC %#x but next PC %#x", prev.Seq, prev.NextPC, rec.PC)
		}
		prev, first = rec, false
	}
}
