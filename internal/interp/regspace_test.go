package interp

import (
	"math"
	"testing"

	"informing/internal/isa"
)

// TestCrossSpaceRegisterAccess pins the total semantics of reading and
// writing across the integer/FP register spaces (generators never do this,
// but fuzzed programs can, and Step must stay deterministic).
func TestCrossSpaceRegisterAccess(t *testing.T) {
	p := &isa.Program{TextBase: 0x1000, Text: []isa.Inst{
		// Integer add whose source names an FP register: reads raw bits.
		{Op: isa.Add, Rd: isa.R1, Rs1: isa.F(2), Rs2: isa.R0},
		// Integer write targeting an FP register: bits land in FR.
		{Op: isa.Addi, Rd: isa.F(3), Rs1: isa.R0, Imm: 0x3ff0}, // not a valid double, still defined
		// FP move whose source names an integer register: bit reinterpretation.
		{Op: isa.Fmov, Rd: isa.F(4), Rs1: isa.R5},
		{Op: isa.Halt},
	}}
	m := New(p, ModeOff, nil)
	m.FR[2] = 1.5
	m.G[5] = math.Float64bits(2.25)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[1] != math.Float64bits(1.5) {
		t.Errorf("int read of f2: %#x, want bits of 1.5", m.G[1])
	}
	if math.Float64bits(m.FR[3]) != 0x3ff0 {
		t.Errorf("int write to f3: bits %#x", math.Float64bits(m.FR[3]))
	}
	if m.FR[4] != 2.25 {
		t.Errorf("fp read of r5: %g", m.FR[4])
	}
}

// TestSetFToIntegerRegister covers the setF path when the destination is an
// integer register (e.g. a malformed Fadd writing to G-space).
func TestSetFToIntegerRegister(t *testing.T) {
	p := &isa.Program{TextBase: 0x1000, Text: []isa.Inst{
		{Op: isa.Fadd, Rd: isa.R7, Rs1: isa.F(1), Rs2: isa.F(1)},
		{Op: isa.Halt},
	}}
	m := New(p, ModeOff, nil)
	m.FR[1] = 0.5
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[7] != math.Float64bits(1.0) {
		t.Errorf("fp write to r7: %#x", m.G[7])
	}
}

// TestLuiAndFceq rounds out opcode coverage through the interpreter.
func TestLuiAndFceq(t *testing.T) {
	p := &isa.Program{TextBase: 0x1000, Text: []isa.Inst{
		{Op: isa.Lui, Rd: isa.R1, Imm: 5},
		{Op: isa.Fceq, Rd: isa.R2, Rs1: isa.F(0), Rs2: isa.F(0)},
		{Op: isa.Halt},
	}}
	m := New(p, ModeOff, nil)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.G[1] != 5<<32 {
		t.Errorf("lui: %#x", m.G[1])
	}
	if m.G[2] != 1 {
		t.Errorf("fceq equal regs: %d", m.G[2])
	}
}
