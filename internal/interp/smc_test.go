package interp

import (
	"errors"
	"testing"

	"informing/internal/asm"
	"informing/internal/isa"
)

// Self-modifying-code seam (DESIGN.md §14). The block table memoizes block
// shapes discovered from the text segment, so a store that lands in text
// would silently execute stale predecode/block state. The machine instead
// rejects text-segment stores with the typed ErrTextWrite — on the
// per-instruction path and the block path alike, at the same instruction.

// smcProgram stores R2 to [R1+off] where R1 = DefaultTextBase, after nPad
// padding adds; returns the program and the dynamic index of the store.
func smcProgram(nPad int, off int64) (*isa.Program, uint64) {
	b := asm.NewBuilder()
	b.LoadImm(isa.R(1), int64(isa.DefaultTextBase))
	b.LoadImm(isa.R(2), 0x7777)
	for i := 0; i < nPad; i++ {
		b.Add(isa.R(3), isa.R(1), isa.R(2))
	}
	b.St(isa.R(2), isa.R(1), off, false)
	b.Halt()
	return b.MustFinish(), uint64(2 + nPad)
}

func TestTextWriteRejected(t *testing.T) {
	prog, storeAt := smcProgram(3, 0)
	m := New(prog, ModeOff, nil)
	var rec Rec
	var err error
	for !m.Halted {
		if err = m.StepInto(&rec); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTextWrite) {
		t.Fatalf("step error = %v, want ErrTextWrite", err)
	}
	// Seq counts the faulting store as fetched (incremented before the
	// semantic switch, as for any step error), so it reads storeAt+1.
	if m.Seq != storeAt+1 {
		t.Fatalf("error after %d instructions, want %d (instructions before the store must execute)", m.Seq, storeAt+1)
	}
	if m.Halted {
		t.Fatal("machine halted despite the faulting store")
	}
}

func TestTextWriteRejectedBlockKernel(t *testing.T) {
	prog, storeAt := smcProgram(3, 8) // mid-text store, not just text[0]
	m := New(prog, ModeOff, nil)
	var buf [16]Rec
	n, err := m.StepBlockInto(buf[:])
	if !errors.Is(err, ErrTextWrite) {
		t.Fatalf("block step error = %v, want ErrTextWrite", err)
	}
	if uint64(n) != storeAt {
		t.Fatalf("block replay returned %d records, want %d (records before the fault stay valid)", n, storeAt)
	}
	for i := 0; i < n; i++ {
		if buf[i].Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d; prefix before the fault is corrupt", i, buf[i].Seq)
		}
	}
}

// The guard is writes-only and exact: loads may read text addresses, and
// a store one byte past the segment's end is ordinary data.
func TestTextSegmentBoundary(t *testing.T) {
	run := func(p *isa.Program) error {
		m := New(p, ModeOff, nil)
		return m.Run(1000)
	}

	b := asm.NewBuilder()
	b.LoadImm(isa.R(1), int64(isa.DefaultTextBase))
	b.Ld(isa.R(2), isa.R(1), 0, false)
	b.Halt()
	if err := run(b.MustFinish()); err != nil {
		t.Fatalf("load from text rejected: %v", err)
	}

	// First byte past the last instruction: allowed.
	b = asm.NewBuilder()
	b.LoadImm(isa.R(1), int64(isa.DefaultTextBase))
	b.St(isa.R(1), isa.R(1), 3*isa.InstBytes, false) // program is 3 insts long
	b.Halt()
	if err := run(b.MustFinish()); err != nil {
		t.Fatalf("store past text end rejected: %v", err)
	}

	// Below the text base: allowed (the unsigned subtraction must not
	// wrap into the guard).
	b = asm.NewBuilder()
	b.LoadImm(isa.R(1), int64(isa.DefaultTextBase)-8)
	b.St(isa.R(1), isa.R(1), 0, false)
	b.Halt()
	if err := run(b.MustFinish()); err != nil {
		t.Fatalf("store below text base rejected: %v", err)
	}

	// Last instruction's own slot (the Halt at index 3): rejected.
	prog, _ := smcProgram(0, 3*isa.InstBytes)
	m := New(prog, ModeOff, nil)
	if err := m.Run(1000); !errors.Is(err, ErrTextWrite) {
		t.Fatalf("store to last text word = %v, want ErrTextWrite", err)
	}
}
