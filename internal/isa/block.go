package isa

// Basic-block table (DESIGN.md §14). A block is a maximal straight-line
// region of the text segment: it starts at any static index execution ever
// reaches and extends until the first instruction that can redirect
// control flow (any branch-class instruction, including RFMH) or stop the
// machine (HALT). The block-compiled execution kernel (interp.StepBlockInto)
// replays whole blocks with a single dispatch: the program-counter
// validation, predecode lookup and terminator scan are performed once per
// block at discovery time instead of once per dynamic instruction.
//
// Discovery is lazy and memoized: the first visit to a start index scans
// forward to the terminator and records the block; every later visit is a
// single table load. Blocks may overlap (a branch into the middle of an
// already-discovered block simply starts a new block at that index) — the
// table is indexed by start index, so overlapping entries are independent
// and all of them describe the same underlying statics.
//
// A block's Flags field is the union of its members' StaticFlags, letting
// replay loops skip per-instruction classification when, e.g., a block
// contains no memory operations or no informing operations at all.

// Block is one discovered straight-line region. Len counts instructions
// including the terminator; Len is at least 1 for a discovered block, and
// 0 marks an undiscovered table slot.
type Block struct {
	Len   int32       // instructions in the block, terminator included
	Flags StaticFlags // union of the members' flags
}

// blockEnds reports whether the instruction at static index k terminates a
// straight-line region: control may not fall through a branch (SfBranch
// covers conditional branches, jumps, BMISS and RFMH) or a HALT.
func blockEnds(in *Inst, st *Static) bool {
	return st.Branch() || in.Op == Halt
}

// BlockTable memoizes block discovery over one predecoded text segment.
type BlockTable struct {
	text   []Inst
	static []Static
	blocks []Block // indexed by block start static index; Len 0 = unknown
}

// NewBlockTable returns an empty table over a text segment and its
// predecode (see PredecodeText). The two slices must be the same length
// and must not be mutated while the table is live; the self-modifying-code
// seam in interp guarantees this by rejecting text-segment stores.
func NewBlockTable(text []Inst, static []Static) *BlockTable {
	return &BlockTable{text: text, static: static, blocks: make([]Block, len(text))}
}

// At returns the block starting at static index k, discovering it on first
// visit. k must be a valid static index (the caller validates the PC once
// per block; that is the point of the table).
func (t *BlockTable) At(k int) Block {
	b := t.blocks[k]
	if b.Len != 0 {
		return b
	}
	return t.discover(k)
}

// discover scans forward from k to the terminator and memoizes the result.
// A block that runs off the end of the text segment without a terminator
// simply ends at the last instruction; the next fetch's PC validation
// reports the fall-off as interp.ErrPC exactly as per-instruction
// execution would.
func (t *BlockTable) discover(k int) Block {
	var b Block
	for j := k; j < len(t.text); j++ {
		b.Len++
		b.Flags |= t.static[j].Flags
		if blockEnds(&t.text[j], &t.static[j]) {
			break
		}
	}
	t.blocks[k] = b
	return b
}

// Blocks reports how many distinct block start indices have been
// discovered so far (test/introspection helper).
func (t *BlockTable) Blocks() int {
	n := 0
	for i := range t.blocks {
		if t.blocks[i].Len != 0 {
			n++
		}
	}
	return n
}
