package isa

import "fmt"

// Binary encoding of one instruction in a 64-bit word:
//
//	[63:56] opcode       (8 bits)
//	[55:50] rd           (6 bits, unified register space)
//	[49:44] rs1          (6 bits)
//	[43:38] rs2          (6 bits)
//	[37:32] flags        (6 bits; bit 0 = informing)
//	[31:0]  immediate    (32 bits, sign-extended on decode)
//
// The 32-bit immediate limits encodable branch offsets and absolute jump
// targets to ±2 GiB, which is ample for simulated programs. Immediates
// outside that range are rejected by Encode.

const (
	encFlagInforming = 1 << 0
)

// ErrImmRange is returned by Encode when an immediate does not fit in the
// 32-bit encoding field.
var ErrImmRange = fmt.Errorf("isa: immediate out of 32-bit encodable range")

// Encode packs the instruction into its 64-bit binary form.
func (i Inst) Encode() (uint64, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", uint8(i.Op))
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", i.Op)
	}
	if i.Imm < -(1<<31) || i.Imm > (1<<31)-1 {
		return 0, fmt.Errorf("%w: %d in %v", ErrImmRange, i.Imm, i.Op)
	}
	var flags uint64
	if i.Informing {
		flags |= encFlagInforming
	}
	w := uint64(i.Op)<<56 |
		uint64(i.Rd)<<50 |
		uint64(i.Rs1)<<44 |
		uint64(i.Rs2)<<38 |
		flags<<32 |
		uint64(uint32(int32(i.Imm)))
	return w, nil
}

// MustEncode is like Encode but panics on error; intended for code
// generators that construct instructions from validated inputs.
func (i Inst) MustEncode() uint64 {
	w, err := i.Encode()
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 64-bit instruction word.
func Decode(w uint64) (Inst, error) {
	i := Inst{
		Op:  Op(w >> 56),
		Rd:  Reg(w >> 50 & 0x3f),
		Rs1: Reg(w >> 44 & 0x3f),
		Rs2: Reg(w >> 38 & 0x3f),
		Imm: int64(int32(uint32(w))),
	}
	if w>>32&0x3f&encFlagInforming != 0 {
		i.Informing = true
	}
	if !i.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", uint8(i.Op))
	}
	return i, nil
}
