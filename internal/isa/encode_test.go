package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInst produces a uniformly random *valid* instruction.
func randomInst(r *rand.Rand) Inst {
	return Inst{
		Op:        Op(r.Intn(NumOps)),
		Rd:        Reg(r.Intn(NumRegs)),
		Rs1:       Reg(r.Intn(NumRegs)),
		Rs2:       Reg(r.Intn(NumRegs)),
		Imm:       int64(int32(r.Uint64())),
		Informing: r.Intn(2) == 1,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInst(r)
		w, err := in.Encode()
		if err != nil {
			t.Logf("encode %+v: %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("decode %#x: %v", w, err)
			return false
		}
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadImmediate(t *testing.T) {
	for _, imm := range []int64{math.MaxInt32 + 1, math.MinInt32 - 1, math.MaxInt64, math.MinInt64} {
		in := Inst{Op: Addi, Rd: R1, Imm: imm}
		if _, err := in.Encode(); err == nil {
			t.Errorf("imm %d: expected range error", imm)
		}
	}
	for _, imm := range []int64{0, math.MaxInt32, math.MinInt32, -1} {
		in := Inst{Op: Addi, Rd: R1, Imm: imm}
		if _, err := in.Encode(); err != nil {
			t.Errorf("imm %d: unexpected error %v", imm, err)
		}
	}
}

func TestEncodeRejectsBadOpAndRegs(t *testing.T) {
	if _, err := (Inst{Op: Op(200)}).Encode(); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := (Inst{Op: Add, Rd: Reg(64)}).Encode(); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	w := uint64(220) << 56
	if _, err := Decode(w); err == nil {
		t.Error("invalid opcode decoded without error")
	}
}

func TestInformingFlagSurvivesEncoding(t *testing.T) {
	in := Inst{Op: Ld, Rd: R3, Rs1: R4, Imm: 16, Informing: true}
	out, err := Decode(in.MustEncode())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Informing {
		t.Error("informing flag lost in encoding")
	}
}

func TestMustEncodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on invalid instruction")
		}
	}()
	(Inst{Op: Op(250)}).MustEncode()
}

func TestImmSignExtension(t *testing.T) {
	in := Inst{Op: Addi, Rd: R1, Rs1: R2, Imm: -12345}
	out, err := Decode(in.MustEncode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Imm != -12345 {
		t.Errorf("imm sign extension: got %d", out.Imm)
	}
}
