package isa

// FUClass names the functional-unit class an instruction executes on.
type FUClass uint8

const (
	FUInt FUClass = iota
	FUFP
	FUBranch
	FUMem
	NumFUClasses
)

func (c FUClass) String() string {
	switch c {
	case FUInt:
		return "int"
	case FUFP:
		return "fp"
	case FUBranch:
		return "branch"
	case FUMem:
		return "mem"
	}
	return "fu?"
}

// FU returns the functional-unit class of the instruction. Informing
// special-register moves execute on the integer units; all control
// transfers (including BMISS and RFMH) use the branch unit.
func (i Inst) FU() FUClass {
	switch {
	case i.IsMem():
		return FUMem
	case i.IsBranch():
		return FUBranch
	case i.IsFP():
		return FUFP
	default:
		return FUInt
	}
}

// LatencyTable holds the execution latencies of Table 1; units are fully
// pipelined (one instruction per class per cycle limited only by unit
// count).
type LatencyTable struct {
	IntMul  int
	IntDiv  int
	FPDiv   int
	FPSqrt  int
	FPOther int
	IntALU  int
	Branch  int
}

// Latency returns the execution latency of op under the table.
func (t LatencyTable) Latency(op Op) int {
	switch op {
	case Mul:
		return t.IntMul
	case Div, Rem:
		return t.IntDiv
	case Fdiv:
		return t.FPDiv
	case Fsqrt:
		return t.FPSqrt
	case Fadd, Fsub, Fmul, Fneg, Fmov, Fcvt, Icvt, Fclt, Fceq:
		return t.FPOther
	case Beq, Bne, Blt, Bge, J, Jal, Jr, Jalr, Bmiss, Rfmh:
		return t.Branch
	default:
		return t.IntALU
	}
}
