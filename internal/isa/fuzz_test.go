package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics: arbitrary 64-bit words either decode or error;
// they never panic, and a successful decode re-encodes to a word that
// decodes to the same instruction (encode∘decode is idempotent on the
// decodable subset).
func TestDecodeNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		w := r.Uint64()
		in, err := Decode(w)
		if err != nil {
			return true
		}
		w2, err := in.Encode()
		if err != nil {
			t.Logf("seed %d: decoded %v but cannot re-encode: %v", seed, in, err)
			return false
		}
		in2, err := Decode(w2)
		if err != nil || in2 != in {
			t.Logf("seed %d: re-decode mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestInstMethodsTotal: classification, Sources, Dest, FU, and String are
// total over arbitrary (even nonsensical) register/immediate combinations
// of every opcode.
func TestInstMethodsTotal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for o := Op(0); int(o) < NumOps; o++ {
		for k := 0; k < 50; k++ {
			in := Inst{
				Op:        o,
				Rd:        Reg(r.Intn(NumRegs)),
				Rs1:       Reg(r.Intn(NumRegs)),
				Rs2:       Reg(r.Intn(NumRegs)),
				Imm:       int64(int32(r.Uint64())),
				Informing: r.Intn(2) == 0,
			}
			_ = in.IsMem()
			_ = in.IsLoad()
			_ = in.IsStore()
			_ = in.IsBranch()
			_ = in.IsCondBranch()
			_ = in.IsFP()
			_ = in.FU()
			_ = in.Sources()
			_, _ = in.Dest()
			if in.String() == "" {
				t.Fatalf("%v: empty disassembly", o)
			}
		}
	}
}

// TestSourcesSubsetOfFields: every reported source register equals one of
// the instruction's register fields.
func TestSourcesSubsetOfFields(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for o := Op(0); int(o) < NumOps; o++ {
		in := Inst{Op: o, Rd: Reg(r.Intn(NumRegs)), Rs1: Reg(1 + r.Intn(31)), Rs2: Reg(1 + r.Intn(31))}
		for _, s := range in.Sources() {
			if s != in.Rs1 && s != in.Rs2 && s != in.Rd {
				t.Errorf("%v: source %v not an operand field", o, s)
			}
		}
	}
}

// FuzzDecode is the native fuzz target CI exercises: arbitrary words
// either decode or error (never panic), and encode∘decode is idempotent
// on the decodable subset.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(Inst{Op: Addi, Rd: R1, Rs1: R2, Imm: -9}.MustEncode())
	f.Add(Inst{Op: Ld, Rd: R3, Rs1: R4, Imm: 128, Informing: true}.MustEncode())
	f.Fuzz(func(t *testing.T, w uint64) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := in.Encode()
		if err != nil {
			t.Fatalf("decoded %v but cannot re-encode: %v", in, err)
		}
		in2, err := Decode(w2)
		if err != nil || in2 != in {
			t.Fatalf("re-decode mismatch: %v vs %v (%v)", in, in2, err)
		}
	})
}
