// Package isa defines the instruction set architecture simulated by this
// repository: a 64-bit RISC machine extended with the informing memory
// operations proposed by Horowitz, Martonosi, Mowry and Smith (ISCA 1996).
//
// The ISA is deliberately MIPS-flavoured (the paper's out-of-order model is
// the MIPS R10000). Every instruction occupies one 8-byte word; the program
// counter therefore advances by InstBytes. Two register files exist: 32
// general-purpose integer registers (R0 is hardwired to zero) and 32
// floating-point registers. Informing extensions add three pieces of
// user-visible state:
//
//   - the cache-outcome condition code, written by every memory operation
//     and tested by BMISS (branch-and-link-on-miss);
//   - the Miss Handler Address Register (MHAR), loaded by MTMHAR; a zero
//     MHAR disables miss traps;
//   - the Miss Handler Return Register (MHRR), captured on a miss trap and
//     consumed by RFMH (return from miss handler).
package isa

import "fmt"

// InstBytes is the size of one encoded instruction in bytes. PCs are byte
// addresses and always multiples of InstBytes.
const InstBytes = 8

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// Nop does nothing.
	Nop Op = iota

	// Integer register-register ALU operations: Rd <- Rs1 op Rs2.
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Nor
	Sll
	Srl
	Sra
	Slt  // set if signed less-than
	Sltu // set if unsigned less-than

	// Integer register-immediate ALU operations: Rd <- Rs1 op Imm.
	Addi
	Andi
	Ori
	Xori
	Slli
	Srli
	Srai
	Slti
	Lui // Rd <- Imm << 32 (load upper immediate)

	// Floating point: Fd <- Fs1 op Fs2 (register fields hold F-space regs).
	Fadd
	Fsub
	Fmul
	Fdiv
	Fsqrt // Fd <- sqrt(Fs1)
	Fneg  // Fd <- -Fs1
	Fmov  // Fd <- Fs1
	Fcvt  // Fd <- float64(int64 Rs1); Rs1 is a G-space register
	Icvt  // Rd <- int64(Fs1); Rd is a G-space register
	Fclt  // Rd(G) <- Fs1 < Fs2
	Fceq  // Rd(G) <- Fs1 == Fs2

	// Memory operations. Effective address is Rs1 + Imm (byte address).
	// Ld/St move 8-byte integer words; Fld/Fst move float64 words.
	// Prefetch touches the line without a register destination and never
	// triggers an informing trap.
	Ld
	St // mem <- Rs2
	Fld
	Fst // mem <- Fs2 (register field Rs2 holds an F-space register)
	Prefetch

	// Control transfers. Conditional branches compare Rs1 and Rs2 and add
	// Imm (a byte offset) to the PC of the next instruction when taken.
	Beq
	Bne
	Blt // signed
	Bge // signed
	J   // PC <- Imm (absolute byte address)
	Jal // Rd <- return address; PC <- Imm
	Jr  // PC <- Rs1
	Jalr

	// Informing extensions.
	Bmiss  // if last memory op missed: Rd <- return address; PC += Imm
	Mtmhar // MHAR <- Rs1 + Imm
	Mtmhrr // MHRR <- Rs1 + Imm (extension: enables software context switching)
	Mfmhar // Rd <- MHAR
	Mfmhrr // Rd <- MHRR
	Rfmh   // PC <- MHRR (return from miss handler)
	Mfcnt  // Rd <- hardware L1-miss counter (serializes an OoO pipeline)

	Halt // stop the machine

	numOps
)

// NumOps is the number of defined opcodes (useful for table sizing and
// property tests).
const NumOps = int(numOps)

var opNames = [...]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Nor: "nor",
	Sll: "sll", Srl: "srl", Sra: "sra", Slt: "slt", Sltu: "sltu",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori",
	Slli: "slli", Srli: "srli", Srai: "srai", Slti: "slti", Lui: "lui",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv", Fsqrt: "fsqrt",
	Fneg: "fneg", Fmov: "fmov", Fcvt: "fcvt", Icvt: "icvt",
	Fclt: "fclt", Fceq: "fceq",
	Ld: "ld", St: "st", Fld: "fld", Fst: "fst", Prefetch: "prefetch",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	J: "j", Jal: "jal", Jr: "jr", Jalr: "jalr",
	Bmiss: "bmiss", Mtmhar: "mtmhar", Mtmhrr: "mtmhrr", Mfmhar: "mfmhar", Mfmhrr: "mfmhrr",
	Rfmh: "rfmh", Mfcnt: "mfcnt", Halt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Inst is one decoded instruction. Register fields index the unified
// register space (see Reg); which fields are meaningful depends on Op.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64

	// Informing marks a memory operation as participating in the
	// informing mechanism (the paper's "two sets of memory operations"
	// footnote). Non-memory instructions ignore it.
	Informing bool
}

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool {
	switch i.Op {
	case Ld, St, Fld, Fst, Prefetch:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads data memory into a register.
func (i Inst) IsLoad() bool { return i.Op == Ld || i.Op == Fld }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Op == St || i.Op == Fst }

// IsBranch reports whether the instruction may change control flow.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case Beq, Bne, Blt, Bge, J, Jal, Jr, Jalr, Bmiss, Rfmh:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case Beq, Bne, Blt, Bge, Bmiss:
		return true
	}
	return false
}

// IsFP reports whether the instruction executes on a floating-point unit.
func (i Inst) IsFP() bool {
	switch i.Op {
	case Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fneg, Fmov, Fcvt, Icvt, Fclt, Fceq:
		return true
	}
	return false
}

// Sources returns the registers read by the instruction. The result slice
// is freshly allocated; callers may keep it.
func (i Inst) Sources() []Reg {
	var out []Reg
	add := func(r Reg) {
		if r != R0 {
			out = append(out, r)
		}
	}
	switch i.Op {
	case Nop, J, Lui, Mfmhar, Mfmhrr, Mfcnt, Rfmh, Halt, Jal:
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Nor, Sll, Srl, Sra, Slt, Sltu,
		Fadd, Fsub, Fmul, Fdiv, Fclt, Fceq,
		Beq, Bne, Blt, Bge:
		add(i.Rs1)
		add(i.Rs2)
	case Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
		Fsqrt, Fneg, Fmov, Fcvt, Icvt,
		Jr, Jalr, Mtmhar, Mtmhrr, Ld, Fld, Prefetch:
		add(i.Rs1)
	case St, Fst:
		add(i.Rs1)
		add(i.Rs2)
	case Bmiss:
		// Reads the cache-outcome condition code, which is not a
		// general register; modelled separately by the cores.
	}
	return out
}

// Dest returns the register written by the instruction and whether one is
// written at all. R0 writes are reported as no destination.
func (i Inst) Dest() (Reg, bool) {
	var d Reg
	switch i.Op {
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Nor, Sll, Srl, Sra, Slt, Sltu,
		Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Lui,
		Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fneg, Fmov, Fcvt, Icvt, Fclt, Fceq,
		Ld, Fld, Jal, Jalr, Bmiss, Mfmhar, Mfmhrr, Mfcnt:
		d = i.Rd
	default:
		return 0, false
	}
	if d == R0 {
		return 0, false
	}
	return d, true
}

// String disassembles the instruction.
func (i Inst) String() string {
	suffix := ""
	if i.Informing && i.IsMem() {
		suffix = ".i"
	}
	switch i.Op {
	case Nop, Halt, Rfmh:
		return i.Op.String()
	case Ld, Fld, Prefetch:
		return fmt.Sprintf("%s%s %s, %d(%s)", i.Op, suffix, i.Rd, i.Imm, i.Rs1)
	case St, Fst:
		return fmt.Sprintf("%s%s %s, %d(%s)", i.Op, suffix, i.Rs2, i.Imm, i.Rs1)
	case Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case Lui:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case Beq, Bne, Blt, Bge:
		return fmt.Sprintf("%s %s, %s, %+d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case J:
		return fmt.Sprintf("%s %#x", i.Op, uint64(i.Imm))
	case Jal:
		return fmt.Sprintf("%s %s, %#x", i.Op, i.Rd, uint64(i.Imm))
	case Jr:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case Jalr:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case Bmiss:
		return fmt.Sprintf("%s %s, %+d", i.Op, i.Rd, i.Imm)
	case Mtmhar, Mtmhrr:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case Mfmhar, Mfmhrr, Mfcnt:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case Fsqrt, Fneg, Fmov, Fcvt, Icvt:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}
