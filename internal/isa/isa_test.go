package isa

import (
	"strings"
	"testing"
)

// allOps enumerates every defined opcode.
func allOps() []Op {
	ops := make([]Op, 0, NumOps)
	for o := Op(0); int(o) < NumOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

func TestOpNamesComplete(t *testing.T) {
	for _, o := range allOps() {
		if strings.HasPrefix(o.String(), "op(") {
			t.Errorf("opcode %d has no name", uint8(o))
		}
		if !o.Valid() {
			t.Errorf("opcode %v reported invalid", o)
		}
	}
	if Op(NumOps).Valid() {
		t.Error("numOps sentinel reported valid")
	}
}

func TestClassificationPartition(t *testing.T) {
	for _, o := range allOps() {
		in := Inst{Op: o, Rd: R1, Rs1: R2, Rs2: R3}
		classes := 0
		if in.IsMem() {
			classes++
		}
		if in.IsBranch() {
			classes++
		}
		if in.IsFP() {
			classes++
		}
		if classes > 1 {
			t.Errorf("%v belongs to %d classes", o, classes)
		}
		if in.IsCondBranch() && !in.IsBranch() {
			t.Errorf("%v: conditional branch that is not a branch", o)
		}
		if in.IsLoad() && in.IsStore() {
			t.Errorf("%v: both load and store", o)
		}
		if (in.IsLoad() || in.IsStore()) && !in.IsMem() {
			t.Errorf("%v: load/store that is not mem", o)
		}
	}
}

func TestFUAssignment(t *testing.T) {
	cases := map[Op]FUClass{
		Add: FUInt, Mul: FUInt, Lui: FUInt, Mtmhar: FUInt, Mtmhrr: FUInt, Mfcnt: FUInt,
		Fadd: FUFP, Fdiv: FUFP, Icvt: FUFP,
		Ld: FUMem, St: FUMem, Fld: FUMem, Fst: FUMem, Prefetch: FUMem,
		Beq: FUBranch, J: FUBranch, Bmiss: FUBranch, Rfmh: FUBranch, Jal: FUBranch,
	}
	for op, want := range cases {
		if got := (Inst{Op: op}).FU(); got != want {
			t.Errorf("%v: FU %v, want %v", op, got, want)
		}
	}
}

func TestLatencyTable(t *testing.T) {
	lat := LatencyTable{IntMul: 12, IntDiv: 76, FPDiv: 15, FPSqrt: 20, FPOther: 2, IntALU: 1, Branch: 1}
	cases := map[Op]int{
		Add: 1, Addi: 1, Mul: 12, Div: 76, Rem: 76,
		Fdiv: 15, Fsqrt: 20, Fadd: 2, Fmul: 2, Icvt: 2,
		Beq: 1, J: 1, Bmiss: 1, Rfmh: 1,
		Mtmhar: 1, Mfmhrr: 1,
	}
	for op, want := range cases {
		if got := lat.Latency(op); got != want {
			t.Errorf("%v: latency %d, want %d", op, got, want)
		}
	}
}

func TestSourcesNeverIncludeR0(t *testing.T) {
	for _, o := range allOps() {
		in := Inst{Op: o, Rd: R0, Rs1: R0, Rs2: R0}
		if srcs := in.Sources(); len(srcs) != 0 {
			t.Errorf("%v with all-R0 operands reports sources %v", o, srcs)
		}
	}
}

func TestDestNeverR0(t *testing.T) {
	for _, o := range allOps() {
		in := Inst{Op: o, Rd: R0, Rs1: R1, Rs2: R2}
		if d, ok := in.Dest(); ok && d == R0 {
			t.Errorf("%v reports R0 destination", o)
		}
	}
}

func TestDestMatchesWriters(t *testing.T) {
	writers := map[Op]bool{
		Add: true, Sub: true, Mul: true, Div: true, Rem: true,
		And: true, Or: true, Xor: true, Nor: true,
		Sll: true, Srl: true, Sra: true, Slt: true, Sltu: true,
		Addi: true, Andi: true, Ori: true, Xori: true,
		Slli: true, Srli: true, Srai: true, Slti: true, Lui: true,
		Fadd: true, Fsub: true, Fmul: true, Fdiv: true, Fsqrt: true,
		Fneg: true, Fmov: true, Fcvt: true, Icvt: true, Fclt: true, Fceq: true,
		Ld: true, Fld: true, Jal: true, Jalr: true, Bmiss: true,
		Mfmhar: true, Mfmhrr: true, Mfcnt: true,
	}
	for _, o := range allOps() {
		in := Inst{Op: o, Rd: R5, Rs1: R1, Rs2: R2}
		_, ok := in.Dest()
		if ok != writers[o] {
			t.Errorf("%v: Dest ok=%v, want %v", o, ok, writers[o])
		}
	}
}

func TestRegisterNaming(t *testing.T) {
	if R(7).String() != "r7" {
		t.Errorf("R7 name: %s", R(7))
	}
	if F(3).String() != "f3" {
		t.Errorf("F3 name: %s", F(3))
	}
	if !F(0).IsFP() || R(31).IsFP() {
		t.Error("IsFP misclassifies")
	}
	if F(31).Index() != 31 || R(31).Index() != 31 {
		t.Error("Index wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("F(32) did not panic")
		}
	}()
	F(32)
}

func TestDisassemblyDistinct(t *testing.T) {
	// Every opcode disassembles to something containing its mnemonic.
	for _, o := range allOps() {
		in := Inst{Op: o, Rd: R5, Rs1: R6, Rs2: R7, Imm: 8}
		s := in.String()
		if !strings.Contains(s, o.String()) {
			t.Errorf("%v disassembles to %q", o, s)
		}
	}
	// Informing memory ops carry the .i marker.
	ld := Inst{Op: Ld, Rd: R1, Rs1: R2, Informing: true}
	if !strings.Contains(ld.String(), "ld.i") {
		t.Errorf("informing load disassembles to %q", ld.String())
	}
	add := Inst{Op: Add, Rd: R1, Rs1: R2, Informing: true}
	if strings.Contains(add.String(), ".i") {
		t.Errorf("non-memory op shows informing marker: %q", add.String())
	}
}

func TestProgramPCMapping(t *testing.T) {
	p := &Program{TextBase: 0x1000, Text: make([]Inst, 10)}
	for k := range p.Text {
		pc := p.PCOf(k)
		got, ok := p.IndexOf(pc)
		if !ok || got != k {
			t.Fatalf("IndexOf(PCOf(%d)) = %d, %v", k, got, ok)
		}
	}
	if _, ok := p.IndexOf(0x1000 + 4); ok {
		t.Error("misaligned PC accepted")
	}
	if _, ok := p.IndexOf(0x1000 - 8); ok {
		t.Error("PC below text accepted")
	}
	if _, ok := p.IndexOf(p.End()); ok {
		t.Error("PC past text accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{TextBase: 0x1000, Text: []Inst{
		{Op: Beq, Imm: 8},
		{Op: Nop},
		{Op: J, Imm: 0x1000},
		{Op: Halt},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := &Program{TextBase: 0x1000, Text: []Inst{{Op: Beq, Imm: 8000}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-text branch accepted")
	}
	badJ := &Program{TextBase: 0x1000, Text: []Inst{{Op: J, Imm: 0x1004}}}
	if err := badJ.Validate(); err == nil {
		t.Error("misaligned jump target accepted")
	}
}

func TestEncodeDecodeTextImage(t *testing.T) {
	p := &Program{TextBase: 0x1000, Text: []Inst{
		{Op: Addi, Rd: R1, Rs1: R0, Imm: 42},
		{Op: Ld, Rd: R2, Rs1: R1, Imm: -8, Informing: true},
		{Op: Halt},
	}}
	img, err := p.EncodeText()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeText(p.TextBase, img)
	if err != nil {
		t.Fatal(err)
	}
	for k := range p.Text {
		if p.Text[k] != q.Text[k] {
			t.Errorf("inst %d: %v != %v", k, p.Text[k], q.Text[k])
		}
	}
}
