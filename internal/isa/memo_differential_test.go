package isa

import (
	"math/rand"
	"testing"
)

// TestDataMemMRUMemoMatchesMapModel replays access patterns chosen to
// stress the MRU-page memo (DESIGN.md §10) — long sequential runs inside
// one page, strides that cross page boundaries every few accesses, and
// random jumps that force memo misses — against a plain map of word
// addresses, requiring identical load results and final contents.
func TestDataMemMRUMemoMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m DataMem
	model := map[uint64]uint64{}
	store := func(addr, v uint64) {
		m.Store(addr, v)
		model[addr&^7] = v
	}
	load := func(addr uint64) {
		if got, want := m.Load(addr), model[addr&^7]; got != want {
			t.Fatalf("Load(%#x) = %d, model %d", addr, got, want)
		}
	}
	// Sequential run within and across pages (memo hit until each
	// boundary, then one memo refill).
	for addr := uint64(0x10000); addr < 0x10000+3*pageBytes; addr += 8 {
		store(addr, addr^0xabc)
		load(addr)
	}
	// Strided walk crossing a page every 4 accesses.
	for addr := uint64(0x40000000); addr < 0x40000000+64*pageBytes; addr += pageBytes / 4 {
		store(addr, addr*3)
	}
	// Interleaved loads to two pages: every access retargets the memo.
	for i := 0; i < 1000; i++ {
		load(0x10000 + uint64(i%512)*8)
		load(0x40000000 + uint64(i%256)*16)
	}
	// Random mix, including loads of never-written pages (which must not
	// allocate or poison the memo with a nil page).
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(16))<<20 | uint64(rng.Intn(pageWords))*8
		switch rng.Intn(3) {
		case 0:
			store(addr, rng.Uint64())
		default:
			load(addr)
		}
	}
	for addr, v := range model {
		if m.Load(addr) != v {
			t.Fatalf("final sweep: Load(%#x) = %d, model %d", addr, m.Load(addr), v)
		}
	}
}

// TestDataMemMemoColdLoad: a load of an unmapped address must not
// install a memo entry that a later store could alias, and must not
// allocate the page.
func TestDataMemMemoColdLoad(t *testing.T) {
	var m DataMem
	m.Store(0x1000, 5) // primes the memo with page 1
	if m.Load(0x100000) != 0 {
		t.Fatal("unwritten memory not zero")
	}
	if m.Pages() != 1 {
		t.Fatalf("cold load allocated a page: %d pages", m.Pages())
	}
	// The memo must still resolve page 1, not the absent page.
	if m.Load(0x1000) != 5 {
		t.Fatal("memo poisoned by cold load")
	}
	m.Store(0x100000, 9)
	if m.Load(0x100000) != 9 || m.Load(0x1000) != 5 {
		t.Fatal("store after cold load corrupted state")
	}
}

// TestDataMemFingerprint pins the Fingerprint contract: equal contents
// (under Equal's absent==zero equivalence) fingerprint equally, and any
// observable difference changes the fingerprint.
func TestDataMemFingerprint(t *testing.T) {
	var a, b DataMem
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("empty memories differ")
	}
	a.Store(0x100, 1)
	a.Store(0x2000, 2)
	b.Store(0x2000, 2)
	b.Store(0x100, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("write order changed fingerprint")
	}
	// A page of zeroes is equivalent to an absent page.
	a.Store(0x40000, 0)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("explicit zero page changed fingerprint")
	}
	b.Store(0x100, 3)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("differing contents fingerprint equally")
	}
	b.Store(0x100, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("restored contents fingerprint differently")
	}
	if c := a.Clone(); c.Fingerprint() != a.Fingerprint() {
		t.Fatal("clone fingerprints differently")
	}
}
