package isa

import "math"

// DataMem is the simulated flat data memory: a sparse, page-granular store
// of 64-bit words. All accesses are 8-byte words; addresses are rounded
// down to word boundaries (the simulated ISA has no sub-word accesses).
// The zero value is ready to use.
type DataMem struct {
	pages map[uint64]*dataPage
}

const (
	pageBytes = 4096
	pageWords = pageBytes / 8
)

type dataPage [pageWords]uint64

func (m *DataMem) page(addr uint64, create bool) *dataPage {
	pn := addr / pageBytes
	pg := m.pages[pn]
	if pg == nil && create {
		if m.pages == nil {
			m.pages = make(map[uint64]*dataPage)
		}
		pg = new(dataPage)
		m.pages[pn] = pg
	}
	return pg
}

// Load reads the 64-bit word containing addr. Unwritten memory reads as 0.
func (m *DataMem) Load(addr uint64) uint64 {
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr%pageBytes/8]
}

// Store writes the 64-bit word containing addr.
func (m *DataMem) Store(addr, val uint64) {
	pg := m.page(addr, true)
	pg[addr%pageBytes/8] = val
}

// LoadF reads a float64 word.
func (m *DataMem) LoadF(addr uint64) float64 {
	return math.Float64frombits(m.Load(addr))
}

// StoreF writes a float64 word.
func (m *DataMem) StoreF(addr uint64, v float64) {
	m.Store(addr, math.Float64bits(v))
}

// LoadInit populates memory from a program's initial data image.
func (m *DataMem) LoadInit(p *Program) {
	for addr, val := range p.Init {
		m.Store(addr, val)
	}
}

// Pages returns the number of resident pages (for tests and footprint
// reporting).
func (m *DataMem) Pages() int { return len(m.pages) }

// Equal reports whether two memories hold identical contents. Absent
// pages compare equal to all-zero pages, so structurally different but
// observably identical memories are equal.
func (m *DataMem) Equal(o *DataMem) bool {
	covered := func(a, b *DataMem) bool {
		for pn, pg := range a.pages {
			var want dataPage
			if p := b.pages[pn]; p != nil {
				want = *p
			}
			if *pg != want {
				return false
			}
		}
		return true
	}
	return covered(m, o) && covered(o, m)
}

// Clone returns a deep copy of the memory (used by the multithreading
// example and differential tests).
func (m *DataMem) Clone() *DataMem {
	c := &DataMem{pages: make(map[uint64]*dataPage, len(m.pages))}
	for pn, pg := range m.pages {
		cp := *pg
		c.pages[pn] = &cp
	}
	return c
}
