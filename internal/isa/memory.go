package isa

import (
	"math"
	"sort"
)

// DataMem is the simulated flat data memory: a sparse, page-granular store
// of 64-bit words. All accesses are 8-byte words; addresses are rounded
// down to word boundaries (the simulated ISA has no sub-word accesses).
// The zero value is ready to use.
//
// An MRU-page memo (DESIGN.md §10) caches the last-touched page so the
// dominant sequential and strided access patterns resolve with pointer
// arithmetic instead of a map lookup. The memo is pure acceleration
// state: pages are never removed from the map, so a (mruPN, mruPg) pair
// can only go stale by pointing at a page that is still correct.
type DataMem struct {
	pages map[uint64]*dataPage

	mruPN uint64    // page number of the most recently touched page
	mruPg *dataPage // nil until the first page is touched
}

const (
	pageBytes = 4096
	pageWords = pageBytes / 8
)

type dataPage [pageWords]uint64

func (m *DataMem) page(addr uint64, create bool) *dataPage {
	pn := addr / pageBytes
	pg := m.pages[pn]
	if pg == nil && create {
		if m.pages == nil {
			m.pages = make(map[uint64]*dataPage)
		}
		pg = new(dataPage)
		m.pages[pn] = pg
	}
	if pg != nil {
		m.mruPN, m.mruPg = pn, pg
	}
	return pg
}

// Load reads the 64-bit word containing addr. Unwritten memory reads as 0.
func (m *DataMem) Load(addr uint64) uint64 {
	if pg := m.mruPg; pg != nil && addr/pageBytes == m.mruPN {
		return pg[addr%pageBytes/8]
	}
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr%pageBytes/8]
}

// Store writes the 64-bit word containing addr.
func (m *DataMem) Store(addr, val uint64) {
	if pg := m.mruPg; pg != nil && addr/pageBytes == m.mruPN {
		pg[addr%pageBytes/8] = val
		return
	}
	m.page(addr, true)[addr%pageBytes/8] = val
}

// LoadF reads a float64 word.
func (m *DataMem) LoadF(addr uint64) float64 {
	return math.Float64frombits(m.Load(addr))
}

// StoreF writes a float64 word.
func (m *DataMem) StoreF(addr uint64, v float64) {
	m.Store(addr, math.Float64bits(v))
}

// LoadInit populates memory from a program's initial data image.
func (m *DataMem) LoadInit(p *Program) {
	for addr, val := range p.Init {
		m.Store(addr, val)
	}
}

// Pages returns the number of resident pages (for tests and footprint
// reporting).
func (m *DataMem) Pages() int { return len(m.pages) }

// Equal reports whether two memories hold identical contents. Absent
// pages compare equal to all-zero pages, so structurally different but
// observably identical memories are equal.
func (m *DataMem) Equal(o *DataMem) bool {
	covered := func(a, b *DataMem) bool {
		for pn, pg := range a.pages {
			var want dataPage
			if p := b.pages[pn]; p != nil {
				want = *p
			}
			if *pg != want {
				return false
			}
		}
		return true
	}
	return covered(m, o) && covered(o, m)
}

// Fingerprint returns a deterministic FNV-1a hash of the memory's
// observable contents: non-zero words hashed with their addresses in
// ascending address order. Absent pages and all-zero pages fingerprint
// identically, matching Equal's equivalence. Differential tests use it to
// pin final architectural state across optimisation work.
func (m *DataMem) Fingerprint() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(w uint64) {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= prime64
			w >>= 8
		}
	}
	for _, pn := range pns {
		pg := m.pages[pn]
		for i, w := range pg {
			if w == 0 {
				continue
			}
			word(pn*pageBytes + uint64(i)*8)
			word(w)
		}
	}
	return h
}

// Clone returns a deep copy of the memory (used by the multithreading
// example and differential tests). The MRU-page memo is not carried over:
// the clone must not alias the source's pages.
func (m *DataMem) Clone() *DataMem {
	c := &DataMem{pages: make(map[uint64]*dataPage, len(m.pages))}
	for pn, pg := range m.pages {
		cp := *pg
		c.pages[pn] = &cp
	}
	return c
}
