package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDataMemZeroValue(t *testing.T) {
	var m DataMem
	if m.Load(0x1234) != 0 {
		t.Error("unwritten memory not zero")
	}
	if m.Pages() != 0 {
		t.Error("reads should not allocate pages")
	}
	m.Store(0x1234, 7)
	if m.Pages() != 1 {
		t.Errorf("pages after one store: %d", m.Pages())
	}
}

// TestDataMemMatchesMapModel is the core property: DataMem behaves exactly
// like a map of word addresses to values under random operations.
func TestDataMemMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m DataMem
		model := map[uint64]uint64{}
		for i := 0; i < 500; i++ {
			// Bias addresses into a few pages so collisions happen.
			addr := uint64(r.Intn(4))<<40 | uint64(r.Intn(2048))*8
			if r.Intn(2) == 0 {
				v := r.Uint64()
				m.Store(addr, v)
				model[addr] = v
			} else if m.Load(addr) != model[addr] {
				return false
			}
		}
		for addr, v := range model {
			if m.Load(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDataMemWordRounding(t *testing.T) {
	var m DataMem
	m.Store(0x100, 99)
	for off := uint64(0); off < 8; off++ {
		if m.Load(0x100+off) != 99 {
			t.Errorf("offset %d within word reads %d", off, m.Load(0x100+off))
		}
	}
}

func TestDataMemFloatRoundTrip(t *testing.T) {
	var m DataMem
	for _, v := range []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		m.StoreF(0x40, v)
		if got := m.LoadF(0x40); got != v {
			t.Errorf("float %g round-trips to %g", v, got)
		}
	}
	m.StoreF(0x48, math.NaN())
	if !math.IsNaN(m.LoadF(0x48)) {
		t.Error("NaN lost")
	}
}

func TestDataMemClone(t *testing.T) {
	var m DataMem
	m.Store(0x10, 1)
	m.Store(0x2000, 2)
	c := m.Clone()
	c.Store(0x10, 99)
	if m.Load(0x10) != 1 {
		t.Error("clone aliases original")
	}
	if c.Load(0x2000) != 2 {
		t.Error("clone lost data")
	}
}

func TestDataMemLoadInit(t *testing.T) {
	p := &Program{Init: map[uint64]uint64{0x100: 5, 0x108: 6}}
	var m DataMem
	m.LoadInit(p)
	if m.Load(0x100) != 5 || m.Load(0x108) != 6 {
		t.Error("LoadInit did not apply image")
	}
}
