package isa

// StaticFlags is the predecoded classification bitmask of one static
// instruction (see Static).
type StaticFlags uint8

const (
	// SfMem marks data-memory operations (Ld, St, Fld, Fst, Prefetch).
	SfMem StaticFlags = 1 << iota
	// SfLoad marks register-writing memory reads (Ld, Fld).
	SfLoad
	// SfStore marks memory writes (St, Fst).
	SfStore
	// SfBranch marks every instruction that may redirect control flow.
	SfBranch
	// SfCondBranch marks conditional branches (Beq..Bge, Bmiss).
	SfCondBranch
	// SfFP marks floating-point-unit instructions.
	SfFP
	// SfInforming marks memory operations participating in the informing
	// mechanism (Inst.Informing on a memory op).
	SfInforming
)

// Static is the predecoded, per-static-instruction classification the
// timing cores and the functional machine consult on every dynamic
// instance. It exists so the per-instruction hot loops never re-derive
// invariants of the static instruction (source registers, destination,
// functional unit, memory class) and never allocate: Inst.Sources returns
// a fresh slice per call, Static.Src is a fixed array filled once at
// predecode time.
type Static struct {
	Src     [2]Reg // source registers, R0 excluded (matching Inst.Sources)
	NSrc    uint8  // number of valid Src entries
	Dest    Reg    // destination register; meaningful when HasDest
	HasDest bool
	FU      FUClass
	Flags   StaticFlags
}

// Mem reports whether the instruction accesses data memory.
func (s *Static) Mem() bool { return s.Flags&SfMem != 0 }

// Load reports whether the instruction reads memory into a register.
func (s *Static) Load() bool { return s.Flags&SfLoad != 0 }

// Store reports whether the instruction writes memory.
func (s *Static) Store() bool { return s.Flags&SfStore != 0 }

// Branch reports whether the instruction may change control flow.
func (s *Static) Branch() bool { return s.Flags&SfBranch != 0 }

// CondBranch reports whether the instruction is a conditional branch.
func (s *Static) CondBranch() bool { return s.Flags&SfCondBranch != 0 }

// InformingMem reports whether the instruction is an informing memory
// operation.
func (s *Static) InformingMem() bool { return s.Flags&SfInforming != 0 }

// Static predecodes one instruction. It is definitionally consistent with
// the Inst classification methods (Sources, Dest, FU, IsMem, ...); the
// property test in predecode_test.go pins the equivalence over every
// opcode.
func (i Inst) Static() Static {
	var s Static
	for _, r := range i.Sources() {
		s.Src[s.NSrc] = r
		s.NSrc++
	}
	s.Dest, s.HasDest = i.Dest()
	s.FU = i.FU()
	if i.IsMem() {
		s.Flags |= SfMem
		if i.Informing {
			s.Flags |= SfInforming
		}
	}
	if i.IsLoad() {
		s.Flags |= SfLoad
	}
	if i.IsStore() {
		s.Flags |= SfStore
	}
	if i.IsBranch() {
		s.Flags |= SfBranch
	}
	if i.IsCondBranch() {
		s.Flags |= SfCondBranch
	}
	if i.IsFP() {
		s.Flags |= SfFP
	}
	return s
}

// PredecodeText predecodes a text segment. The result is indexed by
// static instruction index (see Program.IndexOf); it is never nil, so a
// nil check distinguishes "not yet predecoded" from "empty program".
func PredecodeText(text []Inst) []Static {
	out := make([]Static, len(text))
	for k := range text {
		out[k] = text[k].Static()
	}
	return out
}
