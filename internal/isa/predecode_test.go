package isa

import (
	"math/rand"
	"testing"
)

// TestStaticMatchesInstClassification is the property pinned in the
// Static doc comment: for every opcode (with randomized register fields
// and both Informing settings), the predecoded Static agrees with the
// Inst classification methods it caches.
func TestStaticMatchesInstClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for o := Op(0); int(o) < NumOps; o++ {
		for trial := 0; trial < 8; trial++ {
			in := Inst{
				Op:        o,
				Rd:        Reg(rng.Intn(int(NumRegs))),
				Rs1:       Reg(rng.Intn(int(NumRegs))),
				Rs2:       Reg(rng.Intn(int(NumRegs))),
				Imm:       int64(rng.Int31()),
				Informing: trial%2 == 1,
			}
			st := in.Static()
			srcs := in.Sources()
			if int(st.NSrc) != len(srcs) {
				t.Fatalf("%v: NSrc = %d, Sources() has %d", in, st.NSrc, len(srcs))
			}
			for k, r := range srcs {
				if st.Src[k] != r {
					t.Fatalf("%v: Src[%d] = %v, Sources()[%d] = %v", in, k, st.Src[k], k, r)
				}
			}
			d, okd := in.Dest()
			if st.HasDest != okd || (okd && st.Dest != d) {
				t.Fatalf("%v: Dest = (%v,%v), Inst.Dest = (%v,%v)", in, st.Dest, st.HasDest, d, okd)
			}
			if st.FU != in.FU() {
				t.Fatalf("%v: FU = %v, Inst.FU = %v", in, st.FU, in.FU())
			}
			checks := []struct {
				name string
				got  bool
				want bool
			}{
				{"Mem", st.Mem(), in.IsMem()},
				{"Load", st.Load(), in.IsLoad()},
				{"Store", st.Store(), in.IsStore()},
				{"Branch", st.Branch(), in.IsBranch()},
				{"CondBranch", st.CondBranch(), in.IsCondBranch()},
				{"FP", st.Flags&SfFP != 0, in.IsFP()},
				{"InformingMem", st.InformingMem(), in.IsMem() && in.Informing},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Fatalf("%v: %s = %v, Inst method says %v", in, c.name, c.got, c.want)
				}
			}
		}
	}
}

// TestPredecodeText covers the slice-level contract: index alignment
// with the text segment and the never-nil guarantee.
func TestPredecodeText(t *testing.T) {
	if PredecodeText(nil) == nil {
		t.Fatal("PredecodeText(nil) returned nil")
	}
	text := []Inst{
		{Op: Add, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: Ld, Rd: 4, Rs1: 5, Imm: 16, Informing: true},
		{Op: Beq, Rs1: 1, Rs2: 2, Imm: -8},
		{Op: Halt},
	}
	sts := PredecodeText(text)
	if len(sts) != len(text) {
		t.Fatalf("length %d, want %d", len(sts), len(text))
	}
	for k := range text {
		if sts[k] != text[k].Static() {
			t.Fatalf("entry %d: %+v != %+v", k, sts[k], text[k].Static())
		}
	}
	if !sts[1].Mem() || !sts[1].Load() || !sts[1].InformingMem() {
		t.Fatal("informing load misclassified")
	}
	if !sts[2].Branch() || !sts[2].CondBranch() {
		t.Fatal("conditional branch misclassified")
	}
}
