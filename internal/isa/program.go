package isa

import "fmt"

// Default segment layout for assembled programs. The bases are arbitrary
// (the simulated machine has a flat address space) but keeping text and
// data disjoint catches wild references in tests.
const (
	DefaultTextBase = 0x0000_1000
	DefaultDataBase = 0x1000_0000
)

// Program is a loaded simulator program: a text segment of decoded
// instructions plus a description of the initial data segment.
type Program struct {
	// TextBase is the byte address of Text[0]. Instruction k lives at
	// TextBase + k*InstBytes.
	TextBase uint64
	Text     []Inst

	// DataBase/DataSize describe the reserved data segment (bytes).
	// References outside [DataBase, DataBase+DataSize) are legal at the
	// ISA level but Validate flags statically out-of-segment immediates.
	DataBase uint64
	DataSize uint64

	// Init holds initial data words keyed by byte address (8-aligned).
	Init map[uint64]uint64

	// Symbols maps labels to byte addresses (text or data).
	Symbols map[string]uint64
}

// PCOf returns the byte address of instruction index k.
func (p *Program) PCOf(k int) uint64 { return p.TextBase + uint64(k)*InstBytes }

// IndexOf maps a PC to a text index; ok is false when pc is outside the
// text segment or misaligned.
func (p *Program) IndexOf(pc uint64) (int, bool) {
	if pc < p.TextBase || (pc-p.TextBase)%InstBytes != 0 {
		return 0, false
	}
	k := int((pc - p.TextBase) / InstBytes)
	if k >= len(p.Text) {
		return 0, false
	}
	return k, true
}

// Fetch returns the instruction at pc.
func (p *Program) Fetch(pc uint64) (Inst, bool) {
	k, ok := p.IndexOf(pc)
	if !ok {
		return Inst{}, false
	}
	return p.Text[k], true
}

// End returns the first byte address past the text segment.
func (p *Program) End() uint64 { return p.TextBase + uint64(len(p.Text))*InstBytes }

// Validate performs static checks: control-transfer targets must land on
// instruction boundaries inside the text segment (register-indirect jumps
// and MHAR targets are checked at run time instead).
func (p *Program) Validate() error {
	if p.TextBase%InstBytes != 0 {
		return fmt.Errorf("isa: text base %#x misaligned", p.TextBase)
	}
	for k, in := range p.Text {
		pc := p.PCOf(k)
		var target uint64
		switch in.Op {
		case Beq, Bne, Blt, Bge, Bmiss:
			target = pc + InstBytes + uint64(in.Imm)
		case J, Jal:
			target = uint64(in.Imm)
		default:
			continue
		}
		if _, ok := p.IndexOf(target); !ok {
			return fmt.Errorf("isa: %#x: %v: target %#x outside text", pc, in, target)
		}
	}
	return nil
}

// EncodeText returns the binary image of the text segment.
func (p *Program) EncodeText() ([]uint64, error) {
	out := make([]uint64, len(p.Text))
	for k, in := range p.Text {
		w, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("at index %d (pc %#x): %w", k, p.PCOf(k), err)
		}
		out[k] = w
	}
	return out, nil
}

// DecodeText builds a Program text segment from a binary image.
func DecodeText(base uint64, words []uint64) (*Program, error) {
	p := &Program{TextBase: base, Text: make([]Inst, len(words))}
	for k, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at index %d: %w", k, err)
		}
		p.Text[k] = in
	}
	return p, nil
}
