package isa

import "fmt"

// Reg names a register in the unified 6-bit register space: values 0–31
// are the general-purpose integer registers R0–R31 (R0 reads as zero),
// values 32–63 are the floating-point registers F0–F31.
type Reg uint8

// NumRegs is the size of the unified register space.
const NumRegs = 64

// General-purpose integer registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// FPBase is the first floating-point register in the unified space.
const FPBase Reg = 32

// F returns the unified-space name of floating point register n (0–31).
// It is a Must-style constructor: callers pass literal indices, so an
// out-of-range n panics rather than returning an error.
func F(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: F(%d) out of range", n))
	}
	return FPBase + Reg(n)
}

// R returns the unified-space name of integer register n (0–31). It is a
// Must-style constructor: callers pass literal indices, so an
// out-of-range n panics rather than returning an error.
func R(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: R(%d) out of range", n))
	}
	return Reg(n)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase && r < NumRegs }

// Index returns the register's index within its own file (0–31).
func (r Reg) Index() int {
	if r.IsFP() {
		return int(r - FPBase)
	}
	return int(r)
}

// String returns the assembler name of the register ("r7", "f3").
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", r.Index())
	}
	return fmt.Sprintf("r%d", r.Index())
}
