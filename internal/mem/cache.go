// Package mem implements the simulated memory hierarchy: set-associative
// LRU caches, a two-level hierarchy with architectural probe semantics,
// and a timing model with lockup-free MSHRs, cache banks, fill occupancy
// and a main-memory bandwidth limiter (parameters from Table 1 of the
// paper). It also implements the paper's §3.3 mechanism: MSHR lifetime
// extension so that fills performed by squashed speculative informing
// loads can be invalidated from the primary cache.
package mem

import "fmt"

// CacheConfig describes one cache.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Assoc     int
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate checks the configuration.
func (c CacheConfig) Validate() error { return c.validate() }

func (c CacheConfig) validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("mem: associativity %d invalid", c.Assoc)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("mem: size %d not divisible by line*assoc", c.SizeBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("mem: set count %d not a power of two", c.Sets())
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// tag state only (the simulator keeps data in isa.DataMem); a dirty bit is
// maintained so write-back traffic can be accounted.
//
// A way memo (DESIGN.md §10) remembers the most recently hit or filled
// (line, way) so the dominant same-line re-reference takes a single-compare
// fast path instead of the set scan. Invariant: whenever memoOK is set,
// ways[memoIdx] is valid and holds tag memoLine. Every mutation that could
// break the invariant — Invalidate, Flush, victim replacement — clears or
// retargets the memo, so a memoized hit can never survive an invalidation
// and Accesses/Misses/LRU state are bit-identical to the unmemoized cache.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	ways      []way // sets*assoc, set-major

	stamp uint64 // LRU clock

	memoLine uint64 // line address (addr >> lineShift) of the memoized way
	memoIdx  int32  // global way index of the memoized line
	memoOK   bool

	// Statistics.
	Accesses uint64
	Misses   uint64
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64
}

// NewCache builds a cache, rejecting invalid configurations with an
// error (the library panic-to-error policy; see DESIGN.md "Robustness
// model").
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(cfg.Sets() - 1),
		ways:      make([]way, cfg.Sets()*cfg.Assoc),
	}, nil
}

// MustCache is NewCache that panics on error; for tests and static
// literal configurations only (documented Must* helper).
func MustCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Line returns the line address (addr with the offset bits cleared).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) set(addr uint64) []way {
	s := int(addr >> c.lineShift & c.setMask)
	return c.ways[s*c.cfg.Assoc : (s+1)*c.cfg.Assoc]
}

// Access looks up addr, updating LRU state and allocating the line on a
// miss (write-allocate). It reports whether the access hit and, when an
// eviction of a dirty line occurred, the evicted line address.
func (c *Cache) Access(addr uint64, write bool) (hit bool, writeback uint64, wb bool) {
	tag := addr >> c.lineShift
	if c.memoOK && c.memoLine == tag {
		// Way-memo fast path: same line as the previous hit/fill.
		c.Accesses++
		c.stamp++
		w := &c.ways[c.memoIdx]
		w.used = c.stamp
		if write {
			w.dirty = true
		}
		return true, 0, false
	}
	return c.accessSlow(tag, write)
}

// accessSlow is the full set scan; a single pass finds the hit way and, in
// the same loop, the replacement victim (first invalid way, else true LRU
// with lowest-index tie break — the same choice the historical two-scan
// code made).
func (c *Cache) accessSlow(tag uint64, write bool) (hit bool, writeback uint64, wb bool) {
	c.Accesses++
	base := int(tag&c.setMask) * c.cfg.Assoc
	set := c.ways[base : base+c.cfg.Assoc]
	c.stamp++
	victim, invalidFound := 0, false
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.used = c.stamp
			if write {
				w.dirty = true
			}
			c.memoLine, c.memoIdx, c.memoOK = tag, int32(base+i), true
			return true, 0, false
		}
		if !invalidFound {
			if !w.valid {
				victim, invalidFound = i, true
			} else if w.used < set[victim].used {
				victim = i
			}
		}
	}
	c.Misses++
	w := &set[victim]
	if w.valid && w.dirty {
		writeback = w.tag << c.lineShift
		wb = true
	}
	*w = way{tag: tag, valid: true, dirty: write, used: c.stamp}
	// Retarget the memo at the freshly filled line: the replacement may
	// just have evicted the memoized line from this very way, and the new
	// line is the MRU re-reference candidate either way.
	c.memoLine, c.memoIdx, c.memoOK = tag, int32(base+victim), true
	return false, writeback, wb
}

// Contains reports whether addr's line is present, without updating LRU.
// It consults the way memo first; the memo invariant (see Cache) makes
// that answer exact.
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> c.lineShift
	if c.memoOK && c.memoLine == tag {
		return true
	}
	for _, w := range c.set(addr) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if present and reports whether it was.
// The way memo is cleared when it named the invalidated line, so a
// memoized hit can never survive an invalidation.
func (c *Cache) Invalidate(addr uint64) bool {
	tag := addr >> c.lineShift
	if c.memoOK && c.memoLine == tag {
		c.memoOK = false
		c.ways[c.memoIdx] = way{}
		return true
	}
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = way{}
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache (context switch modelling).
func (c *Cache) Flush() {
	c.memoOK = false
	for i := range c.ways {
		c.ways[i] = way{}
	}
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
