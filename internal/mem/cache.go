// Package mem implements the simulated memory hierarchy: set-associative
// LRU caches, a two-level hierarchy with architectural probe semantics,
// and a timing model with lockup-free MSHRs, cache banks, fill occupancy
// and a main-memory bandwidth limiter (parameters from Table 1 of the
// paper). It also implements the paper's §3.3 mechanism: MSHR lifetime
// extension so that fills performed by squashed speculative informing
// loads can be invalidated from the primary cache.
package mem

import "fmt"

// CacheConfig describes one cache. Policy names the replacement policy
// ("" or "lru" for the built-in true-LRU path; "srrip", "brrip", "trrip"
// for the Policy-seam implementations — see NewPolicy). The config stays
// a comparable value type so hierarchy configs remain usable as map keys.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	Policy    string
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate checks the configuration.
func (c CacheConfig) Validate() error { return c.validate() }

func (c CacheConfig) validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("mem: associativity %d invalid", c.Assoc)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("mem: size %d not divisible by line*assoc", c.SizeBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("mem: set count %d not a power of two", c.Sets())
	}
	return ValidPolicy(c.Policy)
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// tag state only (the simulator keeps data in isa.DataMem); a dirty bit is
// maintained so write-back traffic can be accounted.
//
// A way memo (DESIGN.md §10) remembers the most recently hit or filled
// (line, way) so the dominant same-line re-reference takes a single-compare
// fast path instead of the set scan. Invariant: whenever memoOK is set,
// ways[memoIdx] is valid and holds tag memoLine. Every mutation that could
// break the invariant — Invalidate, Flush, victim replacement — clears or
// retargets the memo, so a memoized hit can never survive an invalidation
// and Accesses/Misses/LRU state are bit-identical to the unmemoized cache.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	ways      []way // sets*assoc, set-major

	stamp uint64 // LRU clock

	memoLine uint64 // line address (addr >> lineShift) of the memoized way
	memoIdx  int32  // global way index of the memoized line
	memoOK   bool

	// pol, when non-nil, is the replacement policy the cache was built
	// with; polMeta is its per-way metadata (set-major, parallel to
	// ways). nil pol selects the built-in true-LRU path, which uses
	// way.used/stamp and never consults the seam.
	pol     Policy
	polMeta []uint64

	// tax, when non-nil, classifies every miss online (see Taxonomy).
	tax *Taxonomy

	// Statistics.
	Accesses uint64
	Misses   uint64
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64
}

// NewCache builds a cache, rejecting invalid configurations with an
// error (the library panic-to-error policy; see DESIGN.md "Robustness
// model").
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(cfg.Sets() - 1),
		ways:      make([]way, cfg.Sets()*cfg.Assoc),
		pol:       pol,
	}
	if pol != nil {
		c.polMeta = make([]uint64, cfg.Sets()*cfg.Assoc)
	}
	return c, nil
}

// MustCache is NewCache that panics on error; for tests and static
// literal configurations only (documented Must* helper).
func MustCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Line returns the line address (addr with the offset bits cleared).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) set(addr uint64) []way {
	s := int(addr >> c.lineShift & c.setMask)
	return c.ways[s*c.cfg.Assoc : (s+1)*c.cfg.Assoc]
}

// Access looks up addr, updating LRU state and allocating the line on a
// miss (write-allocate). It reports whether the access hit and, when an
// eviction of a dirty line occurred, the evicted line address.
func (c *Cache) Access(addr uint64, write bool) (hit bool, writeback uint64, wb bool) {
	tag := addr >> c.lineShift
	if c.pol == nil && c.memoOK && c.memoLine == tag {
		// Way-memo fast path: same line as the previous hit/fill.
		c.Accesses++
		c.stamp++
		w := &c.ways[c.memoIdx]
		w.used = c.stamp
		if write {
			w.dirty = true
		}
		if c.tax != nil {
			c.tax.hit(tag, int(c.memoIdx))
		}
		return true, 0, false
	}
	return c.accessSlow(tag, write)
}

// accessSlow is the full set scan; a single pass finds the hit way and, in
// the same loop, the replacement victim (first invalid way, else true LRU
// with lowest-index tie break — the same choice the historical two-scan
// code made). Caches built with a non-LRU policy divert to accessPolicy.
func (c *Cache) accessSlow(tag uint64, write bool) (hit bool, writeback uint64, wb bool) {
	if c.pol != nil {
		return c.accessPolicy(tag, write)
	}
	c.Accesses++
	base := int(tag&c.setMask) * c.cfg.Assoc
	set := c.ways[base : base+c.cfg.Assoc]
	c.stamp++
	victim, invalidFound := 0, false
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.used = c.stamp
			if write {
				w.dirty = true
			}
			c.memoLine, c.memoIdx, c.memoOK = tag, int32(base+i), true
			if c.tax != nil {
				c.tax.hit(tag, base+i)
			}
			return true, 0, false
		}
		if !invalidFound {
			if !w.valid {
				victim, invalidFound = i, true
			} else if w.used < set[victim].used {
				victim = i
			}
		}
	}
	c.Misses++
	if c.tax != nil {
		c.tax.miss(tag, base+victim)
	}
	w := &set[victim]
	if w.valid && w.dirty {
		writeback = w.tag << c.lineShift
		wb = true
	}
	*w = way{tag: tag, valid: true, dirty: write, used: c.stamp}
	// Retarget the memo at the freshly filled line: the replacement may
	// just have evicted the memoized line from this very way, and the new
	// line is the MRU re-reference candidate either way.
	c.memoLine, c.memoIdx, c.memoOK = tag, int32(base+victim), true
	return false, writeback, wb
}

// accessPolicy is the Policy-seam access path: hit detection and the
// first-invalid fill rule stay in the cache; replacement ordering (Touch/
// Fill/Victim/Evict) belongs to the policy. The way memo is maintained
// with the same invariant as the LRU path — the memoized (line, way)
// always names a valid resident line — so Contains' memo consult stays
// exact under every policy.
func (c *Cache) accessPolicy(tag uint64, write bool) (hit bool, writeback uint64, wb bool) {
	c.Accesses++
	base := int(tag&c.setMask) * c.cfg.Assoc
	set := c.ways[base : base+c.cfg.Assoc]
	meta := c.polMeta[base : base+c.cfg.Assoc]
	victim, invalidFound := -1, false
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			c.pol.Touch(meta, i)
			if write {
				w.dirty = true
			}
			c.memoLine, c.memoIdx, c.memoOK = tag, int32(base+i), true
			if c.tax != nil {
				c.tax.hit(tag, base+i)
			}
			return true, 0, false
		}
		if !invalidFound && !w.valid {
			victim, invalidFound = i, true
		}
	}
	c.Misses++
	if !invalidFound {
		victim = c.pol.Victim(meta)
		c.pol.Evict(set[victim].tag, meta[victim])
	}
	if c.tax != nil {
		// After victim selection so the classifier can re-aim the way
		// memo at the filled way; the classifier shares no state with
		// the policy, so the move is observation-order neutral.
		c.tax.miss(tag, base+victim)
	}
	w := &set[victim]
	if w.valid && w.dirty {
		writeback = w.tag << c.lineShift
		wb = true
	}
	*w = way{tag: tag, valid: true, dirty: write}
	c.pol.Fill(meta, victim, tag)
	c.memoLine, c.memoIdx, c.memoOK = tag, int32(base+victim), true
	return false, writeback, wb
}

// Contains reports whether addr's line is present, without updating LRU.
// It consults the way memo first; the memo invariant (see Cache) makes
// that answer exact.
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> c.lineShift
	if c.memoOK && c.memoLine == tag {
		return true
	}
	for _, w := range c.set(addr) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if present and reports whether it was.
// The way memo is cleared when it named the invalidated line, so a
// memoized hit can never survive an invalidation.
func (c *Cache) Invalidate(addr uint64) bool {
	tag := addr >> c.lineShift
	if c.memoOK && c.memoLine == tag {
		c.memoOK = false
		c.ways[c.memoIdx] = way{}
		if c.polMeta != nil {
			c.polMeta[c.memoIdx] = 0
		}
		return true
	}
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = way{}
			if c.polMeta != nil {
				c.polMeta[int(addr>>c.lineShift&c.setMask)*c.cfg.Assoc+i] = 0
			}
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache (context switch modelling). The
// taxonomy's fully-associative shadow is flushed alongside, so post-flush
// re-references classify as capacity misses rather than inheriting
// pre-switch recency.
func (c *Cache) Flush() {
	c.memoOK = false
	for i := range c.ways {
		c.ways[i] = way{}
	}
	if c.polMeta != nil {
		for i := range c.polMeta {
			c.polMeta[i] = 0
		}
	}
	if c.tax != nil {
		c.tax.flush()
	}
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
