package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkCache(size, line, assoc int) *Cache {
	return MustCache(CacheConfig{SizeBytes: size, LineBytes: line, Assoc: assoc})
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := mkCache(1024, 32, 2)
	if hit, _, _ := c.Access(0x100, false); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(0x100, false); !hit {
		t.Error("second access missed")
	}
	if hit, _, _ := c.Access(0x110, false); !hit {
		t.Error("same-line access missed")
	}
	if hit, _, _ := c.Access(0x100+1024, false); hit {
		t.Error("different line hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("counters: %d accesses, %d misses", c.Accesses, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %f", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, one set occupied by lines A and B; touching A then filling C
	// must evict B (the least recently used).
	c := mkCache(64, 32, 2) // a single set of 2 ways
	a, b2, cc := uint64(0), uint64(64), uint64(128)
	c.Access(a, false)
	c.Access(b2, false)
	c.Access(a, false)  // A most recent
	c.Access(cc, false) // evicts B
	if !c.Contains(a) {
		t.Error("A evicted")
	}
	if c.Contains(b2) {
		t.Error("B retained over LRU")
	}
	if !c.Contains(cc) {
		t.Error("C not filled")
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	c := mkCache(8<<10, 32, 1)
	a := uint64(0x1000)
	b := a + 8<<10 // same set, different tag
	c.Access(a, false)
	c.Access(b, false)
	if c.Contains(a) {
		t.Error("DM conflict did not evict")
	}
	if hit, _, _ := c.Access(a, false); hit {
		t.Error("evicted line hit")
	}
}

func TestCacheWritebackSignal(t *testing.T) {
	c := mkCache(64, 32, 1) // two sets, direct mapped
	c.Access(0, true)       // dirty
	_, wbAddr, wb := c.Access(64, false)
	if !wb || wbAddr != 0 {
		t.Errorf("expected writeback of line 0, got wb=%v addr=%#x", wb, wbAddr)
	}
	c.Access(128, false) // clean eviction of line 64
	if _, _, wb2 := c.Access(64, false); wb2 {
		t.Error("clean eviction signalled writeback")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := mkCache(1024, 32, 2)
	c.Access(0x40, false)
	if !c.Invalidate(0x40) {
		t.Error("invalidate missed present line")
	}
	if c.Contains(0x40) {
		t.Error("line present after invalidate")
	}
	if c.Invalidate(0x40) {
		t.Error("invalidate hit absent line")
	}
}

func TestCacheFlush(t *testing.T) {
	c := mkCache(1024, 32, 2)
	for a := uint64(0); a < 1024; a += 32 {
		c.Access(a, false)
	}
	c.Flush()
	for a := uint64(0); a < 1024; a += 32 {
		if c.Contains(a) {
			t.Fatalf("line %#x survived flush", a)
		}
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 1024, LineBytes: 33, Assoc: 1}, // line not pow2
		{SizeBytes: 1024, LineBytes: 32, Assoc: 0}, // assoc 0
		{SizeBytes: 1000, LineBytes: 32, Assoc: 1}, // size not divisible
		{SizeBytes: 96, LineBytes: 32, Assoc: 1},   // sets not pow2
	}
	for _, cfg := range bad {
		if c, err := NewCache(cfg); err == nil || c != nil {
			t.Errorf("config %+v accepted", cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustCache accepted %+v", cfg)
				}
			}()
			MustCache(cfg)
		}()
	}
}

// TestLRUInclusionProperty: with the same number of sets, an LRU cache
// with more ways never misses more than one with fewer ways on any access
// sequence (the classic stack-inclusion property of LRU).
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		small := mkCache(16*32*2, 32, 2) // 16 sets, 2 ways
		big := mkCache(16*32*4, 32, 4)   // 16 sets, 4 ways
		for i := 0; i < 3000; i++ {
			addr := uint64(r.Intn(256)) * 32
			small.Access(addr, false)
			big.Access(addr, false)
		}
		return big.Misses <= small.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheAgainstMapModel: cache hit/miss outcomes match a reference
// model implemented with per-set LRU lists.
func TestCacheAgainstMapModel(t *testing.T) {
	const sets, ways = 8, 2
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := mkCache(sets*32*ways, 32, ways)
		model := make([][]uint64, sets) // MRU-first line lists
		for i := 0; i < 2000; i++ {
			addr := uint64(r.Intn(128)) * 32
			line := addr / 32
			set := int(line % sets)
			// Model lookup.
			wantHit := false
			for k, l := range model[set] {
				if l == line {
					wantHit = true
					model[set] = append(model[set][:k], model[set][k+1:]...)
					break
				}
			}
			model[set] = append([]uint64{line}, model[set]...)
			if len(model[set]) > ways {
				model[set] = model[set][:ways]
			}
			gotHit, _, _ := c.Access(addr, false)
			if gotHit != wantHit {
				t.Logf("seed %d access %d addr %#x: got hit=%v want %v", seed, i, addr, gotHit, wantHit)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
