package mem

import (
	"fmt"

	"informing/internal/obs"
	"informing/internal/stats"
)

// HierConfig describes a two-level data hierarchy (Table 1).
type HierConfig struct {
	L1 CacheConfig
	L2 CacheConfig
}

// Hierarchy is the architectural (tag-state) view of the two-level data
// cache hierarchy. ProbeData implements the interp.Probe contract: look up
// L1 then L2, allocate on miss at both levels, and report the level that
// satisfied the access.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	// Per-level architectural counters.
	L1Misses uint64
	L2Misses uint64
	Refs     uint64

	// Obs, when non-nil, receives the per-level reference distribution
	// (obs.Sim.Levels) via FlushObs: the hierarchy is the single place
	// every architectural probe funnels through (the engines' ordinary
	// references, FlushEvery wrappers and the §3.3 speculative-inject
	// probes alike), so its Refs/L1Misses/L2Misses counters already hold
	// the distribution and ProbeData itself needs no extra work — the
	// engines flush deltas on their coarse observability cadence
	// (DESIGN.md §11 overhead contract).
	Obs *obs.Sim

	// prev* are the counter values at the last FlushObs.
	prevRefs, prevL1M, prevL2M uint64
	prevT1, prevT2             stats.MissClasses
}

// FlushObs pushes the per-level reference counts accumulated since the
// last flush to the attached obs.Sim as deltas (safe for sweeps sharing
// one Sim across hierarchies). A no-op without an attached Sim.
func (h *Hierarchy) FlushObs() {
	if h.Obs == nil {
		return
	}
	refs, l1m, l2m := h.Refs, h.L1Misses, h.L2Misses
	h.Obs.Levels[1].Add((refs - h.prevRefs) - (l1m - h.prevL1M))
	h.Obs.Levels[2].Add((l1m - h.prevL1M) - (l2m - h.prevL2M))
	h.Obs.Levels[3].Add(l2m - h.prevL2M)
	h.prevRefs, h.prevL1M, h.prevL2M = refs, l1m, l2m
	t1, t2 := h.L1.Taxonomy(), h.L2.Taxonomy()
	h.Obs.AddMissClasses(1, t1.Sub(h.prevT1))
	h.Obs.AddMissClasses(2, t2.Sub(h.prevT2))
	h.prevT1, h.prevT2 = t1, t2
}

// NewHierarchy builds the hierarchy, rejecting invalid level
// configurations with an error. The online miss taxonomy (DESIGN.md §17)
// is enabled on both data levels: classification is observation-only, so
// the hierarchy's hit/miss/LRU behaviour stays bit-identical to an
// unclassified one.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	l1, err := NewCache(cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	l1.EnableTaxonomy()
	l2.EnableTaxonomy()
	return &Hierarchy{L1: l1, L2: l2}, nil
}

// ProbeData resolves one data reference and returns the satisfying level
// (1 = L1, 2 = L2, 3 = memory), updating tag/LRU state with
// allocate-on-miss at both levels.
//
// The fast path checks the L1 way memo inline (same package): a reference
// to the last-hit L1 line resolves to LevelL1 after a single compare,
// with the same Accesses/LRU side effects the full lookup would have.
// Direct mutations of L1 (Invalidate, Flush) clear the memo, so the fast
// path can never claim a hit on an absent line.
func (h *Hierarchy) ProbeData(addr uint64, write bool) int {
	l1 := h.L1
	tag := addr >> l1.lineShift
	if l1.pol == nil && l1.memoOK && l1.memoLine == tag {
		h.Refs++
		l1.Accesses++
		l1.stamp++
		w := &l1.ways[l1.memoIdx]
		w.used = l1.stamp
		if write {
			w.dirty = true
		}
		if t := l1.tax; t != nil {
			t.hit(tag, int(l1.memoIdx))
		}
		return 1
	}
	h.Refs++
	if hit, _, _ := l1.accessSlow(tag, write); hit {
		return 1
	}
	h.L1Misses++
	if hit, _, _ := h.L2.Access(addr, write); hit {
		return 2
	}
	h.L2Misses++
	return 3
}

// SpeculativeInvalidate implements the paper's §3.3 squash path: the line
// filled by a squashed speculative informing load is removed from the
// primary cache. The data commonly remains in the secondary cache, so the
// squashed miss acted as an L2 prefetch.
func (h *Hierarchy) SpeculativeInvalidate(addr uint64) bool {
	return h.L1.Invalidate(addr)
}
