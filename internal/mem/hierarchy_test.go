package mem

import "testing"

func mkHier() *Hierarchy {
	h, err := NewHierarchy(HierConfig{
		L1: CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
		L2: CacheConfig{SizeBytes: 256 << 10, LineBytes: 32, Assoc: 4},
	})
	if err != nil {
		panic(err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := mkHier()
	if lvl := h.ProbeData(0x100, false); lvl != 3 {
		t.Errorf("cold access level %d, want 3", lvl)
	}
	if lvl := h.ProbeData(0x100, false); lvl != 1 {
		t.Errorf("warm access level %d, want 1", lvl)
	}
	// Evict from L1 via a DM conflict; L2 still holds it.
	h.ProbeData(0x100+8<<10, false)
	if lvl := h.ProbeData(0x100, false); lvl != 2 {
		t.Errorf("L1-evicted access level %d, want 2", lvl)
	}
	if h.Refs != 4 || h.L1Misses != 3 || h.L2Misses != 2 {
		t.Errorf("counters refs=%d l1=%d l2=%d", h.Refs, h.L1Misses, h.L2Misses)
	}
}

func TestSpeculativeInvalidate(t *testing.T) {
	h := mkHier()
	h.ProbeData(0x200, false) // fills L1 and L2
	if !h.SpeculativeInvalidate(0x200) {
		t.Fatal("invalidate missed the filled line")
	}
	// The paper's point: the line is gone from L1 but the squashed miss
	// effectively prefetched it into L2.
	if lvl := h.ProbeData(0x200, false); lvl != 2 {
		t.Errorf("post-squash access level %d, want 2 (L2 hit)", lvl)
	}
	if h.SpeculativeInvalidate(0x999000) {
		t.Error("invalidate of absent line reported success")
	}
}

func TestHierarchyWriteAllocate(t *testing.T) {
	h := mkHier()
	if lvl := h.ProbeData(0x300, true); lvl != 3 {
		t.Errorf("cold store level %d", lvl)
	}
	if lvl := h.ProbeData(0x300, false); lvl != 1 {
		t.Error("store did not allocate the line")
	}
}
