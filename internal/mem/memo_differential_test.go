package mem

import (
	"math/rand"
	"testing"
)

// refCache is an independent, deliberately naive model of the documented
// Cache semantics: per-set linear scan, true-LRU with first-invalid /
// lowest-index tie-break victim choice, write-allocate, no memoization.
// The differential tests replay identical operation traces through Cache
// and refCache and require identical observable behaviour — hit/miss
// results, writeback signals, LRU victim choices, and statistics — which
// pins the way-memo fast paths (DESIGN.md §10) to the reference
// semantics bit for bit.
type refCache struct {
	lineBytes int
	sets      int
	assoc     int
	stamp     uint64
	lines     [][]refWay // [set][way]
	accesses  uint64
	misses    uint64
}

type refWay struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64
}

func newRefCache(cfg CacheConfig) *refCache {
	r := &refCache{lineBytes: cfg.LineBytes, sets: cfg.Sets(), assoc: cfg.Assoc}
	r.lines = make([][]refWay, r.sets)
	for i := range r.lines {
		r.lines[i] = make([]refWay, r.assoc)
	}
	return r
}

func (r *refCache) tagOf(addr uint64) uint64 { return addr / uint64(r.lineBytes) }

func (r *refCache) access(addr uint64, write bool) (hit bool, writeback uint64, wb bool) {
	r.accesses++
	r.stamp++
	tag := r.tagOf(addr)
	set := r.lines[tag%uint64(r.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = r.stamp
			if write {
				set[i].dirty = true
			}
			return true, 0, false
		}
	}
	r.misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	w := &set[victim]
	if w.valid && w.dirty {
		writeback = w.tag * uint64(r.lineBytes)
		wb = true
	}
	*w = refWay{tag: tag, valid: true, dirty: write, used: r.stamp}
	return false, writeback, wb
}

func (r *refCache) contains(addr uint64) bool {
	tag := r.tagOf(addr)
	for _, w := range r.lines[tag%uint64(r.sets)] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

func (r *refCache) invalidate(addr uint64) bool {
	tag := r.tagOf(addr)
	set := r.lines[tag%uint64(r.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = refWay{}
			return true
		}
	}
	return false
}

func (r *refCache) flush() {
	for _, set := range r.lines {
		for i := range set {
			set[i] = refWay{}
		}
	}
}

// TestMemoizedCacheMatchesReference replays seeded random traces of
// Access / Contains / Invalidate / Flush through the memoized Cache and
// the naive reference model, in several geometries, and requires every
// per-operation result and the final tag/dirty/statistics state to
// agree. The traces are biased toward re-referencing recent addresses so
// the memo fast path, the memo-retarget-on-fill path, and the
// memo-clearing mutations are all exercised heavily.
func TestMemoizedCacheMatchesReference(t *testing.T) {
	geoms := []CacheConfig{
		{SizeBytes: 512, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 2},
		{SizeBytes: 2048, LineBytes: 64, Assoc: 4},
		{SizeBytes: 256, LineBytes: 16, Assoc: 16}, // a single large set
	}
	for gi, cfg := range geoms {
		rng := rand.New(rand.NewSource(int64(1000 + gi)))
		c := MustCache(cfg)
		ref := newRefCache(cfg)
		// Small address pool => frequent re-reference and conflict.
		pool := make([]uint64, 64)
		for i := range pool {
			pool[i] = uint64(rng.Intn(8 * cfg.SizeBytes))
		}
		var last uint64
		for op := 0; op < 20000; op++ {
			var addr uint64
			switch rng.Intn(4) {
			case 0:
				addr = last // maximal memo pressure
			default:
				addr = pool[rng.Intn(len(pool))]
			}
			last = addr
			switch k := rng.Intn(100); {
			case k < 70: // access
				write := rng.Intn(3) == 0
				gh, gwb, gok := c.Access(addr, write)
				wh, wwb, wok := ref.access(addr, write)
				if gh != wh || gwb != wwb || gok != wok {
					t.Fatalf("geom %d op %d: Access(%#x,%v) = (%v,%#x,%v), reference (%v,%#x,%v)",
						gi, op, addr, write, gh, gwb, gok, wh, wwb, wok)
				}
			case k < 85: // contains (no state change)
				if g, w := c.Contains(addr), ref.contains(addr); g != w {
					t.Fatalf("geom %d op %d: Contains(%#x) = %v, reference %v", gi, op, addr, g, w)
				}
			case k < 98: // invalidate
				if g, w := c.Invalidate(addr), ref.invalidate(addr); g != w {
					t.Fatalf("geom %d op %d: Invalidate(%#x) = %v, reference %v", gi, op, addr, g, w)
				}
			default: // flush
				c.Flush()
				ref.flush()
			}
		}
		if c.Accesses != ref.accesses || c.Misses != ref.misses {
			t.Fatalf("geom %d: stats (%d,%d), reference (%d,%d)",
				gi, c.Accesses, c.Misses, ref.accesses, ref.misses)
		}
		// Final state: every line the reference holds must be present (and
		// vice versa), with matching dirty bits observable via writeback
		// on eviction — checked here via Contains both ways.
		for s := 0; s < ref.sets; s++ {
			for _, w := range ref.lines[s] {
				if w.valid {
					addr := w.tag * uint64(cfg.LineBytes)
					if !c.Contains(addr) {
						t.Fatalf("geom %d: line %#x in reference but not in Cache", gi, addr)
					}
				}
			}
		}
	}
}

// TestHierarchyMemoMatchesReference replays random reference streams
// (with interleaved L1 invalidations and flushes, as the FlushEvery and
// §3.3 squash paths produce) through Hierarchy.ProbeData and through an
// un-memoized two-cache reference, requiring identical level outcomes
// and counters.
func TestHierarchyMemoMatchesReference(t *testing.T) {
	cfg := HierConfig{
		L1: CacheConfig{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2},
		L2: CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 4},
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref1 := newRefCache(cfg.L1)
	ref2 := newRefCache(cfg.L2)
	rng := rand.New(rand.NewSource(42))
	var last uint64
	for op := 0; op < 30000; op++ {
		addr := uint64(rng.Intn(64 << 10))
		if rng.Intn(3) == 0 {
			addr = last
		}
		last = addr
		switch k := rng.Intn(100); {
		case k < 90:
			write := rng.Intn(4) == 0
			lvl := h.ProbeData(addr, write)
			want := 3
			if hit, _, _ := ref1.access(addr, write); hit {
				want = 1
			} else if hit, _, _ := ref2.access(addr, write); hit {
				want = 2
			}
			if lvl != want {
				t.Fatalf("op %d: ProbeData(%#x,%v) = %d, reference %d", op, addr, write, lvl, want)
			}
		case k < 98:
			if g, w := h.SpeculativeInvalidate(addr), ref1.invalidate(addr); g != w {
				t.Fatalf("op %d: SpeculativeInvalidate(%#x) = %v, reference %v", op, addr, g, w)
			}
		default:
			h.L1.Flush()
			ref1.flush()
		}
	}
	if h.L1.Accesses != ref1.accesses || h.L1.Misses != ref1.misses {
		t.Fatalf("L1 stats (%d,%d), reference (%d,%d)",
			h.L1.Accesses, h.L1.Misses, ref1.accesses, ref1.misses)
	}
	if h.L2.Accesses != ref2.accesses || h.L2.Misses != ref2.misses {
		t.Fatalf("L2 stats (%d,%d), reference (%d,%d)",
			h.L2.Accesses, h.L2.Misses, ref2.accesses, ref2.misses)
	}
}

// TestMemoStaleAfterInvalidate is the regression test for the memo
// coherence bug class: after an Access primes the way memo, Invalidate
// must both report the line present and clear the memo, so that
// Contains and Access cannot claim a stale hit.
func TestMemoStaleAfterInvalidate(t *testing.T) {
	c := mkCache(1024, 32, 2)
	const addr = 0x1040
	c.Access(addr, false) // miss, fills and primes the memo
	c.Access(addr, false) // memo fast-path hit
	if !c.Contains(addr) {
		t.Fatal("line absent after fill")
	}
	if !c.Invalidate(addr) {
		t.Fatal("Invalidate missed a present line")
	}
	if c.Contains(addr) {
		t.Fatal("stale memo: Contains sees an invalidated line")
	}
	if hit, _, _ := c.Access(addr, false); hit {
		t.Fatal("stale memo: Access hit an invalidated line")
	}
	if c.Accesses != 3 || c.Misses != 2 {
		t.Fatalf("counters: %d accesses, %d misses", c.Accesses, c.Misses)
	}
}

// TestMemoStaleAfterFlush: Flush must drop the memo along with every
// line.
func TestMemoStaleAfterFlush(t *testing.T) {
	c := mkCache(1024, 32, 2)
	const addr = 0x2000
	c.Access(addr, true)
	c.Access(addr, true) // memo fast path, sets dirty (already dirty)
	c.Flush()
	if c.Contains(addr) {
		t.Fatal("stale memo: Contains sees a flushed line")
	}
	if hit, _, _ := c.Access(addr, false); hit {
		t.Fatal("stale memo: Access hit a flushed line")
	}
}

// TestMemoStaleAfterVictimReplacement: when a conflict fill evicts the
// memoized line, the memo must retarget to the new line, never claim the
// evicted one.
func TestMemoStaleAfterVictimReplacement(t *testing.T) {
	c := mkCache(64, 32, 2) // one set, two ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a, false) // fill way 0, memo -> a
	c.Access(b, false) // fill way 1, memo -> b
	c.Access(a, false) // touch a so b becomes LRU... memo -> a
	c.Access(d, false) // evicts b; memo -> d
	if c.Contains(b) {
		t.Fatal("evicted line still visible")
	}
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("resident lines missing")
	}
	if hit, _, _ := c.Access(b, false); hit {
		t.Fatal("stale memo: hit on evicted line")
	}
}

// TestMemoContainsDoesNotTouchLRU: the memoized Contains fast path, like
// the scan it replaces, must not update LRU state.
func TestMemoContainsDoesNotTouchLRU(t *testing.T) {
	c := mkCache(64, 32, 2) // one set, two ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a, false)
	c.Access(b, false) // memo -> b; LRU order: a older than b
	for i := 0; i < 4; i++ {
		if !c.Contains(b) { // memo fast path; must not refresh b's stamp
			t.Fatal("resident line not found")
		}
		if !c.Contains(a) { // scan path; must not refresh a's stamp
			t.Fatal("resident line not found")
		}
	}
	c.Access(d, false) // must evict a (the true LRU), not b
	if c.Contains(a) {
		t.Fatal("Contains refreshed LRU: wrong victim evicted")
	}
	if !c.Contains(b) {
		t.Fatal("Contains refreshed LRU: memoized line evicted")
	}
}
