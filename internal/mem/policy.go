package mem

import "fmt"

// Policy is the replacement-policy seam (DESIGN.md §17). A Cache built
// with a named non-LRU policy routes every hit, fill and victim decision
// through these hooks; the default true-LRU replacement stays on the
// historical inline path (bit-identical to the pre-seam cache) and never
// sees a Policy call.
//
// The hooks operate on a per-set slice of per-way metadata words. The
// cache owns the words and guarantees:
//
//   - meta has exactly Assoc entries, in way order, zero on construction
//     and after any invalidation of the way;
//   - Touch is called on every hit (including memoized hits) with the
//     hitting way — and never from Contains, which must not disturb
//     replacement state;
//   - Fill is called after the victim's way has been loaded with the new
//     tag (the cache fills the first invalid way itself; Victim is
//     consulted only when the set is full);
//   - Evict is called just before a valid victim is overwritten, with the
//     evicted tag and its final metadata word, so history-keeping
//     policies (TRRIP) can record the line's fate.
type Policy interface {
	// Name returns the registry name the policy was built under.
	Name() string
	// Touch records a hit on way w.
	Touch(meta []uint64, w int)
	// Fill initialises way w's metadata for newly filled tag.
	Fill(meta []uint64, w int, tag uint64)
	// Victim picks the way to replace in a full set.
	Victim(meta []uint64) int
	// Evict observes the eviction of tag whose final metadata was m.
	Evict(tag uint64, m uint64)
}

// PolicyLRU is the default replacement policy name; it (and the empty
// string) select the built-in true-LRU fast path rather than a Policy
// implementation.
const PolicyLRU = "lru"

// PolicyNames lists the valid CacheConfig.Policy values, default first.
func PolicyNames() []string { return []string{PolicyLRU, "srrip", "brrip", "trrip"} }

// NewPolicy resolves a replacement-policy name. The empty string and
// "lru" return nil: the built-in true-LRU path needs no Policy object.
// Unknown names are an error (the library panic-to-error policy).
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", PolicyLRU:
		return nil, nil
	case "srrip":
		return &srrip{}, nil
	case "brrip":
		return &brrip{}, nil
	case "trrip":
		return newTRRIP(), nil
	}
	return nil, fmt.Errorf("mem: unknown replacement policy %q (have %v)", name, PolicyNames())
}

// ValidPolicy reports whether name resolves (request validation in
// internal/serve and the CLIs, without constructing state).
func ValidPolicy(name string) error {
	_, err := NewPolicy(name)
	return err
}

// RRIP metadata layout (shared by srrip/brrip/trrip): bits 0..1 hold the
// 2-bit re-reference prediction value (RRPV; 0 = imminent, 3 = distant),
// bit 2 is the reuse bit — set on the first hit after fill, read at
// eviction by the temperature-informed variant.
const (
	rrpvMask   = 0b11
	rrpvMax    = 3
	reuseBit   = 1 << 2
	rrpvLong   = 2 // SRRIP insertion: long re-reference interval
	rrpvDist   = 3 // BRRIP common insertion: distant
	rrpvNear   = 1 // TRRIP hot insertion: near-imminent
	brripEvery = 32
)

// srrip is Static RRIP (SRRIP-HP): insert at RRPV 2, promote to 0 on
// hit, evict the first way (lowest index) at RRPV 3, aging the whole set
// until one exists.
type srrip struct{}

func (*srrip) Name() string { return "srrip" }

func (*srrip) Touch(meta []uint64, w int) { meta[w] = reuseBit } // RRPV 0 + reused

func (*srrip) Fill(meta []uint64, w int, tag uint64) { meta[w] = rrpvLong }

func (*srrip) Victim(meta []uint64) int { return rripVictim(meta) }

func (*srrip) Evict(tag uint64, m uint64) {}

// rripVictim scans for the first way at maximum RRPV, aging every way by
// one until such a way exists. Terminates: each aging pass strictly
// increases the set's maximum RRPV toward rrpvMax.
func rripVictim(meta []uint64) int {
	for {
		for i, m := range meta {
			if m&rrpvMask == rrpvMax {
				return i
			}
		}
		for i := range meta {
			meta[i]++ // low bits only ever reach rrpvMax before returning
		}
	}
}

// brrip is Bimodal RRIP: like SRRIP but inserting at distant RRPV 3,
// except every 32nd fill which inserts at 2. The "bimodal" choice is a
// deterministic fill counter rather than a random draw so runs are
// reproducible (the repository-wide determinism contract).
type brrip struct {
	fills uint64
}

func (*brrip) Name() string { return "brrip" }

func (*brrip) Touch(meta []uint64, w int) { meta[w] = reuseBit }

func (b *brrip) Fill(meta []uint64, w int, tag uint64) {
	b.fills++
	if b.fills%brripEvery == 0 {
		meta[w] = rrpvLong
	} else {
		meta[w] = rrpvDist
	}
}

func (*brrip) Victim(meta []uint64) int { return rripVictim(meta) }

func (*brrip) Evict(tag uint64, m uint64) {}

// trrip is the TRRIP-style temperature-informed RRIP variant (PAPERS.md):
// a bounded filter remembers recently evicted tags together with whether
// the line was reused during its residency. Refills of tags that proved
// hot (reused before eviction) insert near-imminent (RRPV 1); refills of
// tags that proved cold insert distant (RRPV 3); unknown tags take the
// SRRIP default (RRPV 2).
type trrip struct {
	temp map[uint64]uint8 // evicted tag -> tempHot/tempCold
	ring []uint64         // FIFO of remembered tags, bounding temp
	next int
}

const (
	trripHistory = 1024
	tempCold     = 1
	tempHot      = 2
)

func newTRRIP() *trrip {
	return &trrip{
		temp: make(map[uint64]uint8, trripHistory),
		ring: make([]uint64, 0, trripHistory),
	}
}

func (*trrip) Name() string { return "trrip" }

func (*trrip) Touch(meta []uint64, w int) { meta[w] = reuseBit }

func (t *trrip) Fill(meta []uint64, w int, tag uint64) {
	switch t.temp[tag] {
	case tempHot:
		meta[w] = rrpvNear
	case tempCold:
		meta[w] = rrpvDist
	default:
		meta[w] = rrpvLong
	}
}

func (*trrip) Victim(meta []uint64) int { return rripVictim(meta) }

func (t *trrip) Evict(tag uint64, m uint64) {
	temp := uint8(tempCold)
	if m&reuseBit != 0 {
		temp = tempHot
	}
	if _, known := t.temp[tag]; !known {
		if len(t.ring) < trripHistory {
			t.ring = append(t.ring, tag)
		} else {
			delete(t.temp, t.ring[t.next])
			t.ring[t.next] = tag
			t.next = (t.next + 1) % trripHistory
		}
	}
	t.temp[tag] = temp
}
