package mem

import (
	"math/rand"
	"testing"
)

// refPolicyCache is an independent, deliberately naive model of the RRIP
// replacement family (DESIGN.md §17): per-set linear scan, write-allocate,
// first-invalid / lowest-index victim choice, and the documented SRRIP /
// BRRIP / TRRIP insertion, promotion and aging rules implemented directly
// on small per-way records rather than packed metadata words. The
// differential battery replays identical operation traces through Cache
// (built with CacheConfig.Policy) and this model and requires identical
// observable behaviour — hit/miss results, writeback signals, victim
// choices, statistics — pinning the Policy seam to the reference
// semantics bit for bit.
type refPolicyCache struct {
	lineBytes int
	sets      int
	assoc     int
	policy    string
	lines     [][]refPolWay

	fills uint64           // brrip deterministic bimodal counter
	temp  map[uint64]uint8 // trrip: evicted tag -> hot/cold
	ring  []uint64         // trrip FIFO bounding temp
	next  int

	accesses uint64
	misses   uint64
}

type refPolWay struct {
	tag    uint64
	valid  bool
	dirty  bool
	rrpv   int
	reused bool
}

func newRefPolicyCache(cfg CacheConfig) *refPolicyCache {
	r := &refPolicyCache{
		lineBytes: cfg.LineBytes,
		sets:      cfg.Sets(),
		assoc:     cfg.Assoc,
		policy:    cfg.Policy,
		temp:      map[uint64]uint8{},
	}
	r.lines = make([][]refPolWay, r.sets)
	for i := range r.lines {
		r.lines[i] = make([]refPolWay, r.assoc)
	}
	return r
}

func (r *refPolicyCache) tagOf(addr uint64) uint64 { return addr / uint64(r.lineBytes) }

// insertRRPV applies the per-policy insertion rule for a fill of tag.
func (r *refPolicyCache) insertRRPV(tag uint64) int {
	switch r.policy {
	case "srrip":
		return 2
	case "brrip":
		r.fills++
		if r.fills%32 == 0 {
			return 2
		}
		return 3
	case "trrip":
		switch r.temp[tag] {
		case 2: // hot: reused during its last residency
			return 1
		case 1: // cold
			return 3
		default:
			return 2
		}
	}
	panic("refPolicyCache: unknown policy " + r.policy)
}

// recordEvict observes a valid victim's eviction (TRRIP temperature
// history; a no-op for the static policies).
func (r *refPolicyCache) recordEvict(w refPolWay) {
	if r.policy != "trrip" {
		return
	}
	temp := uint8(1) // cold
	if w.reused {
		temp = 2 // hot
	}
	if _, known := r.temp[w.tag]; !known {
		if len(r.ring) < 1024 {
			r.ring = append(r.ring, w.tag)
		} else {
			delete(r.temp, r.ring[r.next])
			r.ring[r.next] = w.tag
			r.next = (r.next + 1) % 1024
		}
	}
	r.temp[w.tag] = temp
}

func (r *refPolicyCache) access(addr uint64, write bool) (hit bool, writeback uint64, wb bool) {
	r.accesses++
	tag := r.tagOf(addr)
	set := r.lines[tag%uint64(r.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].rrpv = 0
			set[i].reused = true
			if write {
				set[i].dirty = true
			}
			return true, 0, false
		}
	}
	r.misses++
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		// RRIP victim search: first way (lowest index) at distant RRPV 3,
		// aging the whole set by one until such a way exists.
	scan:
		for {
			for i := range set {
				if set[i].rrpv == 3 {
					victim = i
					break scan
				}
			}
			for i := range set {
				set[i].rrpv++
			}
		}
		r.recordEvict(set[victim])
	}
	w := &set[victim]
	if w.valid && w.dirty {
		writeback = w.tag * uint64(r.lineBytes)
		wb = true
	}
	*w = refPolWay{tag: tag, valid: true, dirty: write, rrpv: r.insertRRPV(tag)}
	return false, writeback, wb
}

func (r *refPolicyCache) contains(addr uint64) bool {
	tag := r.tagOf(addr)
	for _, w := range r.lines[tag%uint64(r.sets)] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

func (r *refPolicyCache) invalidate(addr uint64) bool {
	tag := r.tagOf(addr)
	set := r.lines[tag%uint64(r.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = refPolWay{}
			return true
		}
	}
	return false
}

// flush clears every line. The brrip fill counter and the trrip
// temperature history survive, mirroring Cache.Flush, which resets
// per-way metadata but not the policy object.
func (r *refPolicyCache) flush() {
	for _, set := range r.lines {
		for i := range set {
			set[i] = refPolWay{}
		}
	}
}

// nonLRUPolicies are the Policy-seam implementations the battery covers
// (the built-in LRU path has its own differential in
// TestMemoizedCacheMatchesReference).
var nonLRUPolicies = []string{"srrip", "brrip", "trrip"}

func mkPolCache(size, line, assoc int, policy string) *Cache {
	return MustCache(CacheConfig{SizeBytes: size, LineBytes: line, Assoc: assoc, Policy: policy})
}

// TestPolicyCacheMatchesReference is the policy differential battery:
// for each non-LRU policy, 8 seeded random traces of Access / Contains /
// Invalidate / Flush in two geometries, replayed through Cache and the
// naive reference with every per-operation result compared. The miss
// taxonomy is enabled on the Cache side throughout — it must be
// observation-only, so its presence cannot perturb any outcome — and its
// four classes must sum exactly to the misses on every trace.
func TestPolicyCacheMatchesReference(t *testing.T) {
	geoms := []CacheConfig{
		{SizeBytes: 1024, LineBytes: 32, Assoc: 2},
		{SizeBytes: 4096, LineBytes: 64, Assoc: 4},
	}
	for _, policy := range nonLRUPolicies {
		t.Run(policy, func(t *testing.T) {
			for gi, geom := range geoms {
				for seed := int64(0); seed < 8; seed++ {
					cfg := geom
					cfg.Policy = policy
					rng := rand.New(rand.NewSource(7000 + 100*int64(gi) + seed))
					c := MustCache(cfg)
					c.EnableTaxonomy()
					ref := newRefPolicyCache(cfg)
					// Small address pool => frequent re-reference, so
					// promotion (Touch), aging and TRRIP's temperature
					// history all engage.
					pool := make([]uint64, 64)
					for i := range pool {
						pool[i] = uint64(rng.Intn(8 * cfg.SizeBytes))
					}
					var last uint64
					for op := 0; op < 12000; op++ {
						var addr uint64
						switch rng.Intn(4) {
						case 0:
							addr = last // memo pressure
						default:
							addr = pool[rng.Intn(len(pool))]
						}
						last = addr
						switch k := rng.Intn(100); {
						case k < 70:
							write := rng.Intn(3) == 0
							gh, gwb, gok := c.Access(addr, write)
							wh, wwb, wok := ref.access(addr, write)
							if gh != wh || gwb != wwb || gok != wok {
								t.Fatalf("geom %d seed %d op %d: Access(%#x,%v) = (%v,%#x,%v), reference (%v,%#x,%v)",
									gi, seed, op, addr, write, gh, gwb, gok, wh, wwb, wok)
							}
						case k < 85:
							if g, w := c.Contains(addr), ref.contains(addr); g != w {
								t.Fatalf("geom %d seed %d op %d: Contains(%#x) = %v, reference %v", gi, seed, op, addr, g, w)
							}
						case k < 98:
							if g, w := c.Invalidate(addr), ref.invalidate(addr); g != w {
								t.Fatalf("geom %d seed %d op %d: Invalidate(%#x) = %v, reference %v", gi, seed, op, addr, g, w)
							}
						default:
							c.Flush()
							ref.flush()
						}
					}
					if c.Accesses != ref.accesses || c.Misses != ref.misses {
						t.Fatalf("geom %d seed %d: stats (%d,%d), reference (%d,%d)",
							gi, seed, c.Accesses, c.Misses, ref.accesses, ref.misses)
					}
					// Residency must agree both ways.
					for s := 0; s < ref.sets; s++ {
						for _, w := range ref.lines[s] {
							if w.valid && !c.Contains(w.tag*uint64(cfg.LineBytes)) {
								t.Fatalf("geom %d seed %d: line %#x in reference but not in Cache", gi, seed, w.tag*uint64(cfg.LineBytes))
							}
						}
					}
					// Taxonomy conservation: the four classes partition the
					// misses exactly.
					tx := c.Taxonomy()
					if sum := tx.Compulsory + tx.Capacity + tx.Conflict + tx.Coherence; sum != c.Misses {
						t.Fatalf("geom %d seed %d: taxonomy classes sum %d, misses %d (%+v)", gi, seed, sum, c.Misses, tx)
					}
				}
			}
		})
	}
}

// TestRRIPNotInclusive documents that the RRIP family, unlike true LRU,
// is not a stack algorithm: with the same set count, a cache with more
// ways does not always hold a superset of the smaller cache's lines —
// insertion at a distant RRPV plus whole-set aging can evict from the
// big cache a line the small one retains. The witness is per-access: an
// access where the small cache hits and the big cache misses, which the
// LRU inclusion property (TestLRUInclusionProperty) makes impossible.
// This is the negative counterpart of that test and the reason the LRU
// golden grids cannot be reused for RRIP policies — each policy needs
// its own reference battery.
func TestRRIPNotInclusive(t *testing.T) {
	const seeds, accesses = 20, 3000
	for _, policy := range nonLRUPolicies {
		t.Run(policy, func(t *testing.T) {
			witnesses := 0
			for seed := int64(0); seed < seeds; seed++ {
				r := rand.New(rand.NewSource(seed))
				small := mkPolCache(16*32*2, 32, 2, policy) // 16 sets, 2 ways
				big := mkPolCache(16*32*4, 32, 4, policy)   // 16 sets, 4 ways
				for i := 0; i < accesses; i++ {
					addr := uint64(r.Intn(256)) * 32
					sh, _, _ := small.Access(addr, false)
					bh, _, _ := big.Access(addr, false)
					if sh && !bh {
						witnesses++
					}
				}
			}
			if witnesses == 0 {
				t.Fatalf("no inclusion violation in %d seeds; %s unexpectedly behaves like a stack algorithm", seeds, policy)
			}
			t.Logf("%s: %d small-hit/big-miss witnesses (expected: RRIP is not a stack algorithm)", policy, witnesses)
		})
	}
	// Contrast: true LRU on the identical traces never produces such a
	// witness — the stack property holds access by access, not just in
	// the aggregate counts TestLRUInclusionProperty checks.
	t.Run("lru-control", func(t *testing.T) {
		for seed := int64(0); seed < seeds; seed++ {
			r := rand.New(rand.NewSource(seed))
			small := mkCache(16*32*2, 32, 2)
			big := mkCache(16*32*4, 32, 4)
			for i := 0; i < accesses; i++ {
				addr := uint64(r.Intn(256)) * 32
				sh, _, _ := small.Access(addr, false)
				bh, _, _ := big.Access(addr, false)
				if sh && !bh {
					t.Fatalf("seed %d access %d: LRU inclusion violated at %#x", seed, i, addr)
				}
			}
		}
	})
}

// TestPolicyMemoStaleAfterVictimReplacement mirrors
// TestMemoStaleAfterVictimReplacement for each Policy-seam policy: when a
// conflict fill evicts a line through Victim/Evict, neither Contains (via
// the way memo) nor a subsequent Access may claim the evicted line. The
// scenario is chosen so every RRIP variant picks the same victim: after
// A is promoted by a hit, B sits at its insertion RRPV and loses.
func TestPolicyMemoStaleAfterVictimReplacement(t *testing.T) {
	for _, policy := range nonLRUPolicies {
		t.Run(policy, func(t *testing.T) {
			c := mkPolCache(64, 32, 2, policy) // one set, two ways
			a, b, d := uint64(0), uint64(64), uint64(128)
			c.Access(a, false) // fill way 0
			c.Access(b, false) // fill way 1, memo -> b
			c.Access(a, false) // hit: A promoted to RRPV 0, memo -> a
			c.Access(d, false) // victim search must evict B; memo -> d
			if c.Contains(b) {
				t.Fatal("evicted line still visible")
			}
			if !c.Contains(a) || !c.Contains(d) {
				t.Fatal("resident lines missing")
			}
			if hit, _, _ := c.Access(b, false); hit {
				t.Fatal("stale memo: hit on evicted line")
			}
		})
	}
}

// TestPolicyMemoStaleAfterInvalidate mirrors TestMemoStaleAfterInvalidate
// per policy: Invalidate must clear both the way and its replacement
// metadata, so a refill starts from the insertion state rather than
// inheriting the dead line's RRPV.
func TestPolicyMemoStaleAfterInvalidate(t *testing.T) {
	for _, policy := range nonLRUPolicies {
		t.Run(policy, func(t *testing.T) {
			c := mkPolCache(1024, 32, 2, policy)
			const addr = 0x1040
			c.Access(addr, false)
			c.Access(addr, false) // memoized hit
			if !c.Invalidate(addr) {
				t.Fatal("Invalidate missed a present line")
			}
			if c.Contains(addr) {
				t.Fatal("stale memo: Contains sees an invalidated line")
			}
			if hit, _, _ := c.Access(addr, false); hit {
				t.Fatal("stale memo: Access hit an invalidated line")
			}
			if c.Accesses != 3 || c.Misses != 2 {
				t.Fatalf("counters: %d accesses, %d misses", c.Accesses, c.Misses)
			}
		})
	}
}

// TestPolicyContainsDoesNotTouchAges mirrors TestMemoContainsDoesNotTouchLRU
// for the Policy seam: Contains — both its memo fast path and its scan —
// must never call Touch. If it refreshed B's RRPV, B would survive the
// conflict fill below and A would be evicted instead.
func TestPolicyContainsDoesNotTouchAges(t *testing.T) {
	for _, policy := range nonLRUPolicies {
		t.Run(policy, func(t *testing.T) {
			c := mkPolCache(64, 32, 2, policy) // one set, two ways
			a, b, d := uint64(0), uint64(64), uint64(128)
			c.Access(a, false)
			c.Access(b, false)
			c.Access(a, false) // A at RRPV 0 (promoted), B at insertion RRPV; memo -> a
			for i := 0; i < 4; i++ {
				if !c.Contains(b) { // scan path; must not promote B
					t.Fatal("resident line not found")
				}
				if !c.Contains(a) { // memo fast path; must not promote A
					t.Fatal("resident line not found")
				}
			}
			c.Access(d, false) // must evict B (still at insertion RRPV), not A
			if c.Contains(b) {
				t.Fatal("Contains refreshed RRIP age: wrong victim evicted")
			}
			if !c.Contains(a) {
				t.Fatal("Contains refreshed RRIP age: promoted line evicted")
			}
		})
	}
}

// TestPolicyRegistry pins the policy name vocabulary: "" and "lru" select
// the built-in path (nil Policy), every other listed name constructs an
// implementation reporting its own name, and unknown names are rejected
// by NewPolicy and by cache construction.
func TestPolicyRegistry(t *testing.T) {
	for _, name := range []string{"", PolicyLRU} {
		p, err := NewPolicy(name)
		if err != nil || p != nil {
			t.Fatalf("NewPolicy(%q) = (%v, %v), want (nil, nil)", name, p, err)
		}
	}
	for _, name := range nonLRUPolicies {
		p, err := NewPolicy(name)
		if err != nil || p == nil {
			t.Fatalf("NewPolicy(%q) = (%v, %v)", name, p, err)
		}
		if p.Name() != name {
			t.Fatalf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("mru"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := ValidPolicy("mru"); err == nil {
		t.Fatal("ValidPolicy accepted unknown name")
	}
	if c, err := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 32, Assoc: 2, Policy: "mru"}); err == nil || c != nil {
		t.Fatal("cache with unknown policy accepted")
	}
	// Every name PolicyNames advertises must construct.
	for _, name := range PolicyNames() {
		if err := ValidPolicy(name); err != nil {
			t.Fatalf("advertised policy %q invalid: %v", name, err)
		}
	}
}
