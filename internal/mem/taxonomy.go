package mem

import "informing/internal/stats"

// Taxonomy is the online miss classifier (DESIGN.md §17): attached to a
// Cache it observes every access and classifies each miss, at fill time,
// as exactly one of compulsory / coherence / conflict / capacity — so the
// four classes always sum to the cache's Misses counter.
//
// Two side models drive the classification:
//
//   - an infinite-tag filter (seen): every line tag the cache has ever
//     referenced. A miss on a never-seen tag is compulsory. The filter
//     also carries the coherence mark: a tag whose resident line was
//     removed by InvalidateCoherence classifies its next miss as a
//     coherence miss.
//   - a fully-associative shadow of the same capacity (line count) as the
//     cache, with true-LRU replacement. A non-compulsory, non-coherence
//     miss that hits in the shadow would have hit in a fully-associative
//     cache — a conflict miss; one that misses even there is a capacity
//     miss.
//
// The shadow is a pure recency model: architectural invalidations do not
// erase recency (a speculatively squashed line re-fetched soon after
// still classifies by how recently it was referenced), and a Flush
// (context switch) empties the shadow alongside the cache, so post-flush
// re-references classify as capacity, not conflict.
//
// The classifier is observation-only — it never influences hit/miss
// outcomes, replacement state or the way memo — so enabling it leaves
// the cache's architectural behaviour bit-identical.
//
// It is also on the simulator's hottest path (the hierarchy enables it
// on both data levels of every run), so it avoids Go maps entirely:
// both side models are open-addressed tables keyed by tag+1 (0 = empty
// slot), and the dominant operation — refreshing shadow recency on a
// cache hit — usually skips even those via wayRef, a per-cache-way memo
// of the shadow node last associated with that way. A wayRef entry is
// validated against the node's current tag before use, so recycling a
// shadow node merely makes the memo miss, never lie. The shadow's node
// pool is preallocated at Enable time; the tables grow by amortized
// doubling (seen) or periodic compaction (the shadow index, whose dead
// slots — left behind when their node is recycled to a new tag — are
// swept out by rehashing the live LRU list), keeping the steady-state
// hot path allocation-free within the allocation gate's budget.
type Taxonomy struct {
	Classes stats.MissClasses

	// Infinite-tag filter: open-addressed, linear probing, keys are
	// tag+1 (0 = empty), values carry cohMark. Entries are never
	// deleted; the table doubles at 3/4 load.
	seenKeys []uint64
	seenVals []uint8
	seenLive int

	// Shadow index: tag -> node, open-addressed, keys are tag+1. A slot
	// whose node no longer holds its key's tag is dead (the node was
	// recycled); dead slots are skipped on lookup, reused by a same-tag
	// reinsert, and swept out by a compacting rehash of the live LRU
	// list once claimed slots reach 3/4 of the table.
	idxKeys  []uint64
	idxNodes []int32
	idxUsed  int

	// Fully-associative shadow: intrusive LRU list over a preallocated
	// node pool.
	nodes      []shadowNode
	head, tail int32 // MRU, LRU (-1 when empty)
	free       int32 // free-list head (-1 when exhausted)
	mru        uint64
	mruOK      bool

	// wayRef[g] is the shadow node last associated with global cache
	// way g; nodes[wayRef[g]].tag is checked before use, so stale refs
	// are safe. Reset to -1 by flush (free-list nodes keep old tags).
	wayRef []int32
}

const cohMark = 1 << 0 // seen-filter bit: evicted by a coherence invalidation

// tagHashC is the multiplicative-hash constant (2^64 / golden ratio);
// tables index with the product's high bits, so power-of-two table sizes
// stay well mixed.
const tagHashC = 0x9E3779B97F4A7C15

type shadowNode struct {
	tag        uint64
	prev, next int32
}

// newTaxonomy builds a classifier whose shadow holds lines total lines
// (the attached cache's capacity in lines) for a cache of ways total
// ways (sets × associativity).
func newTaxonomy(lines, ways int) *Taxonomy {
	idxCap := 2
	for idxCap < 2*lines {
		idxCap <<= 1
	}
	t := &Taxonomy{
		seenKeys: make([]uint64, 1<<13),
		seenVals: make([]uint8, 1<<13),
		idxKeys:  make([]uint64, idxCap),
		idxNodes: make([]int32, idxCap),
		nodes:    make([]shadowNode, lines),
		head:     -1,
		tail:     -1,
		wayRef:   make([]int32, ways),
	}
	// Thread the free list through the pool.
	for i := range t.nodes {
		t.nodes[i].next = int32(i) + 1
	}
	t.nodes[lines-1].next = -1
	t.free = 0
	for i := range t.wayRef {
		t.wayRef[i] = -1
	}
	return t
}

// hit records a cache hit on global way g: the shadow's recency is
// refreshed. The MRU memo makes the dominant same-line re-reference a
// single compare; wayRef makes most other hits a tag check plus a list
// splice, no table probe.
func (t *Taxonomy) hit(tag uint64, g int) {
	if t.mruOK && t.mru == tag {
		return
	}
	if r := t.wayRef[g]; r >= 0 && t.nodes[r].tag == tag {
		t.mru, t.mruOK = tag, true
		if t.head != r {
			t.moveToHead(r)
		}
		return
	}
	n, inShadow := t.idxGet(tag)
	t.touch(tag, n, inShadow, g)
}

// miss classifies and records a cache miss on tag filling global way g,
// then refreshes the shadow with the reference. Classification priority:
// compulsory (never seen) > coherence (marked by InvalidateCoherence) >
// conflict (shadow holds the line) > capacity.
func (t *Taxonomy) miss(tag uint64, g int) {
	n, inShadow := t.idxGet(tag)
	if 4*(t.seenLive+1) > 3*len(t.seenKeys) {
		t.growSeen()
	}
	i := t.seenSlot(tag)
	switch {
	case t.seenKeys[i] == 0:
		t.Classes.Compulsory++
		t.seenKeys[i] = tag + 1
		t.seenVals[i] = 0
		t.seenLive++
	case t.seenVals[i]&cohMark != 0:
		t.Classes.Coherence++
		t.seenVals[i] = 0
	case inShadow:
		t.Classes.Conflict++
	default:
		t.Classes.Capacity++
	}
	t.touch(tag, n, inShadow, g)
}

// markCoherence flags tag so its next miss classifies as a coherence
// miss. Called only for tags whose line a coherence action just removed.
func (t *Taxonomy) markCoherence(tag uint64) {
	if 4*(t.seenLive+1) > 3*len(t.seenKeys) {
		t.growSeen()
	}
	i := t.seenSlot(tag)
	if t.seenKeys[i] == 0 {
		t.seenKeys[i] = tag + 1
		t.seenVals[i] = cohMark
		t.seenLive++
		return
	}
	t.seenVals[i] |= cohMark
}

// seenSlot probes the seen filter for tag, returning the index of its
// slot (occupied by tag) or of the empty slot where it would go.
func (t *Taxonomy) seenSlot(tag uint64) int {
	mask := uint64(len(t.seenKeys) - 1)
	k := tag + 1
	for i := (tag * tagHashC) >> 33 & mask; ; i = (i + 1) & mask {
		if sk := t.seenKeys[i]; sk == k || sk == 0 {
			return int(i)
		}
	}
}

func (t *Taxonomy) growSeen() {
	oldK, oldV := t.seenKeys, t.seenVals
	t.seenKeys = make([]uint64, 2*len(oldK))
	t.seenVals = make([]uint8, 2*len(oldV))
	for i, k := range oldK {
		if k != 0 {
			j := t.seenSlot(k - 1)
			t.seenKeys[j] = k
			t.seenVals[j] = oldV[i]
		}
	}
}

// idxGet looks tag up in the shadow index; a dead slot (node recycled to
// another tag since the slot was written) reads as absent.
func (t *Taxonomy) idxGet(tag uint64) (int32, bool) {
	mask := uint64(len(t.idxKeys) - 1)
	k := tag + 1
	for i := (tag * tagHashC) >> 33 & mask; ; i = (i + 1) & mask {
		switch sk := t.idxKeys[i]; sk {
		case k:
			if n := t.idxNodes[i]; t.nodes[n].tag == tag {
				return n, true
			}
			return -1, false
		case 0:
			return -1, false
		}
	}
}

// idxSet points tag's index slot at node n, reusing tag's dead slot if
// one exists, and compacts the table when claimed slots reach 3/4.
func (t *Taxonomy) idxSet(tag uint64, n int32) {
	if 4*(t.idxUsed+1) > 3*len(t.idxKeys) {
		// Sweep dead slots: rehash the live LRU list. Live entries are
		// bounded by the pool (≤ cap/2), so the sweep always reclaims
		// at least a quarter of the table — amortized O(1) per claim.
		clear(t.idxKeys)
		t.idxUsed = 0
		for m := t.head; m >= 0; m = t.nodes[m].next {
			t.idxSet(t.nodes[m].tag, m)
		}
	}
	mask := uint64(len(t.idxKeys) - 1)
	k := tag + 1
	for i := (tag * tagHashC) >> 33 & mask; ; i = (i + 1) & mask {
		switch sk := t.idxKeys[i]; sk {
		case k:
			t.idxNodes[i] = n
			return
		case 0:
			t.idxKeys[i] = k
			t.idxNodes[i] = n
			t.idxUsed++
			return
		}
	}
}

// touch moves tag to the shadow's MRU position, inserting it (recycling
// the shadow's LRU node if the pool is exhausted) when absent, and
// re-aims way g's memo. n/inShadow carry a prior idxGet's answer.
func (t *Taxonomy) touch(tag uint64, n int32, inShadow bool, g int) {
	t.mru, t.mruOK = tag, true
	if inShadow {
		if t.head != n {
			t.moveToHead(n)
		}
		t.wayRef[g] = n
		return
	}
	n = t.free
	if n < 0 {
		// Shadow full: recycle the LRU node. Its index slot dies in
		// place (idxGet's tag check) — no deletion needed.
		n = t.tail
		t.unlink(n)
	} else {
		t.free = t.nodes[n].next
	}
	t.nodes[n].tag = tag
	t.idxSet(tag, n)
	t.pushHead(n)
	t.wayRef[g] = n
}

// moveToHead splices an in-list, non-head node to the MRU position —
// the recency refresh every classified hit pays, so it exploits what
// the caller established: n has a live predecessor and the list a head.
func (t *Taxonomy) moveToHead(n int32) {
	nd := &t.nodes[n]
	prev, next := nd.prev, nd.next
	t.nodes[prev].next = next
	if next >= 0 {
		t.nodes[next].prev = prev
	} else {
		t.tail = prev
	}
	nd.prev, nd.next = -1, t.head
	t.nodes[t.head].prev = n
	t.head = n
}

func (t *Taxonomy) unlink(n int32) {
	nd := &t.nodes[n]
	if nd.prev >= 0 {
		t.nodes[nd.prev].next = nd.next
	} else {
		t.head = nd.next
	}
	if nd.next >= 0 {
		t.nodes[nd.next].prev = nd.prev
	} else {
		t.tail = nd.prev
	}
}

func (t *Taxonomy) pushHead(n int32) {
	nd := &t.nodes[n]
	nd.prev, nd.next = -1, t.head
	if t.head >= 0 {
		t.nodes[t.head].prev = n
	} else {
		t.tail = n
	}
	t.head = n
}

// flush empties the shadow (mirroring a cache Flush); the seen filter —
// deliberately infinite — survives, so post-flush misses are capacity,
// never compulsory. wayRef must reset too: free-list nodes keep their
// old tags, which would otherwise re-validate a dead memo.
func (t *Taxonomy) flush() {
	t.mruOK = false
	t.head, t.tail = -1, -1
	clear(t.idxKeys)
	t.idxUsed = 0
	for i := range t.nodes {
		t.nodes[i].next = int32(i) + 1
	}
	t.nodes[len(t.nodes)-1].next = -1
	t.free = 0
	for i := range t.wayRef {
		t.wayRef[i] = -1
	}
}

// EnableTaxonomy attaches a fresh miss classifier to the cache (idempotent
// in effect: a second call resets the classifier). The hierarchy enables
// it on both data levels; bare caches (e.g. the instruction cache) stay
// unclassified and pay nothing.
func (c *Cache) EnableTaxonomy() {
	c.tax = newTaxonomy(c.cfg.SizeBytes/c.cfg.LineBytes, c.cfg.Sets()*c.cfg.Assoc)
}

// Taxonomy returns the per-class miss breakdown (zero when the classifier
// is not enabled).
func (c *Cache) Taxonomy() stats.MissClasses {
	if c.tax == nil {
		return stats.MissClasses{}
	}
	return c.tax.Classes
}

// InvalidateCoherence removes addr's line like Invalidate, additionally
// marking the line so the taxonomy classifies its next miss as a
// coherence miss. Use it for protocol-driven invalidations
// (internal/multi downgrades, cross-thread stores in trace replay);
// plain Invalidate remains the right call for the §3.3 speculative
// squash path.
func (c *Cache) InvalidateCoherence(addr uint64) bool {
	inv := c.Invalidate(addr)
	if inv && c.tax != nil {
		c.tax.markCoherence(addr >> c.lineShift)
	}
	return inv
}
