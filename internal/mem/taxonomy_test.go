package mem

import (
	"math/rand"
	"testing"

	"informing/internal/stats"
)

// mkTaxCache builds a cache with the miss classifier attached.
func mkTaxCache(size, line, assoc int, policy string) *Cache {
	c := MustCache(CacheConfig{SizeBytes: size, LineBytes: line, Assoc: assoc, Policy: policy})
	c.EnableTaxonomy()
	return c
}

func wantClasses(t *testing.T, c *Cache, want stats.MissClasses) {
	t.Helper()
	if got := c.Taxonomy(); got != want {
		t.Fatalf("taxonomy = %+v, want %+v", got, want)
	}
}

// TestTaxonomyCompulsory: the first reference to a line is compulsory —
// no finite cache could have held it — and re-references hit, leaving
// the classification untouched.
func TestTaxonomyCompulsory(t *testing.T) {
	c := mkTaxCache(1024, 32, 2, "")
	for a := uint64(0); a < 8*32; a += 32 {
		c.Access(a, false)
	}
	wantClasses(t, c, stats.MissClasses{Compulsory: 8})
	for a := uint64(0); a < 8*32; a += 32 {
		if hit, _, _ := c.Access(a, false); !hit {
			t.Fatalf("warm re-reference of %#x missed", a)
		}
	}
	wantClasses(t, c, stats.MissClasses{Compulsory: 8})
}

// TestTaxonomyConflict: two lines ping-ponging in one set of a
// direct-mapped cache whose total capacity could hold both. The
// fully-associative shadow keeps both resident, so every miss after the
// two compulsory ones is a conflict miss — the associativity's fault,
// not the capacity's.
func TestTaxonomyConflict(t *testing.T) {
	c := mkTaxCache(256, 32, 1, "") // 8 sets, direct mapped; shadow holds 8 lines
	a, b := uint64(0), uint64(256)  // same set, different tags
	c.Access(a, false)
	c.Access(b, false)
	wantClasses(t, c, stats.MissClasses{Compulsory: 2})
	for i := 0; i < 5; i++ {
		c.Access(a, false)
		c.Access(b, false)
	}
	wantClasses(t, c, stats.MissClasses{Compulsory: 2, Conflict: 10})
}

// TestTaxonomyCapacity: a cyclic working set one line larger than the
// whole cache misses every time even fully associative, so after the
// compulsory pass every miss is a capacity miss.
func TestTaxonomyCapacity(t *testing.T) {
	c := mkTaxCache(64, 32, 2, "") // one set, two ways; shadow holds 2 lines
	lines := []uint64{0, 64, 128}  // 3-line cyclic working set, capacity 2
	for _, a := range lines {
		c.Access(a, false)
	}
	wantClasses(t, c, stats.MissClasses{Compulsory: 3})
	for i := 0; i < 4; i++ {
		for _, a := range lines {
			c.Access(a, false)
		}
	}
	wantClasses(t, c, stats.MissClasses{Compulsory: 3, Capacity: 12})
}

// TestTaxonomyCoherence: a line removed by InvalidateCoherence classifies
// its next miss as a coherence miss — with priority over conflict even
// though the shadow still holds the line — and the mark is consumed by
// that one miss, not sticky.
func TestTaxonomyCoherence(t *testing.T) {
	c := mkTaxCache(1024, 32, 2, "")
	const addr = 0x40
	c.Access(addr, false)
	if !c.InvalidateCoherence(addr) {
		t.Fatal("InvalidateCoherence missed a present line")
	}
	c.Access(addr, false) // shadow holds the line, but coherence wins
	wantClasses(t, c, stats.MissClasses{Compulsory: 1, Coherence: 1})
	// The mark was consumed: a plain (speculative-squash) invalidation
	// classifies the refetch by recency — conflict, since the shadow
	// deliberately keeps the line's recency across architectural
	// invalidations.
	if !c.Invalidate(addr) {
		t.Fatal("Invalidate missed a present line")
	}
	c.Access(addr, false)
	wantClasses(t, c, stats.MissClasses{Compulsory: 1, Coherence: 1, Conflict: 1})
}

// TestTaxonomyFlushCapacity: a Flush (context switch) empties the shadow
// alongside the cache, so post-flush re-references are capacity misses —
// but never compulsory, because the infinite seen filter survives.
func TestTaxonomyFlushCapacity(t *testing.T) {
	c := mkTaxCache(256, 32, 2, "")
	for a := uint64(0); a < 4*32; a += 32 {
		c.Access(a, false)
	}
	c.Flush()
	for a := uint64(0); a < 4*32; a += 32 {
		c.Access(a, false)
	}
	wantClasses(t, c, stats.MissClasses{Compulsory: 4, Capacity: 4})
}

// TestTaxonomyShadowRecycling: the shadow's preallocated node pool must
// recycle correctly under sustained pressure far beyond its size — the
// classes keep partitioning the misses and a flush mid-stream resets the
// shadow without leaking or double-freeing nodes.
func TestTaxonomyShadowRecycling(t *testing.T) {
	c := mkTaxCache(128, 32, 2, "") // 4-line shadow
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 5000; op++ {
		c.Access(uint64(rng.Intn(64))*32, rng.Intn(4) == 0)
		if op%977 == 0 {
			c.Flush()
		}
	}
	tx := c.Taxonomy()
	if sum := tx.Compulsory + tx.Capacity + tx.Conflict + tx.Coherence; sum != c.Misses {
		t.Fatalf("classes sum %d, misses %d (%+v)", sum, c.Misses, tx)
	}
	if tx.Compulsory != 64 {
		t.Fatalf("compulsory = %d, want one per distinct line (64)", tx.Compulsory)
	}
}

// TestTaxonomyConservationRandom: on arbitrary operation mixes — including
// coherence invalidations — the four classes always sum exactly to the
// miss counter, for the LRU path and every Policy-seam policy.
func TestTaxonomyConservationRandom(t *testing.T) {
	for _, policy := range append([]string{""}, nonLRUPolicies...) {
		name := policy
		if name == "" {
			name = "lru"
		}
		t.Run(name, func(t *testing.T) {
			c := mkTaxCache(512, 32, 2, policy)
			rng := rand.New(rand.NewSource(23))
			for op := 0; op < 20000; op++ {
				addr := uint64(rng.Intn(128)) * 32
				switch k := rng.Intn(100); {
				case k < 80:
					c.Access(addr, rng.Intn(3) == 0)
				case k < 90:
					c.Invalidate(addr)
				case k < 98:
					c.InvalidateCoherence(addr)
				default:
					c.Flush()
				}
			}
			tx := c.Taxonomy()
			if sum := tx.Compulsory + tx.Capacity + tx.Conflict + tx.Coherence; sum != c.Misses {
				t.Fatalf("classes sum %d, misses %d (%+v)", sum, c.Misses, tx)
			}
			if tx.Coherence == 0 {
				t.Fatal("trace produced no coherence misses; test lost its coverage")
			}
		})
	}
}

// TestTaxonomyObservationOnly: enabling the classifier must not change a
// single architectural outcome. Identical traces through a bare cache
// and a classified one must agree on every result and counter.
func TestTaxonomyObservationOnly(t *testing.T) {
	bare := mkCache(1024, 32, 2)
	taxed := mkTaxCache(1024, 32, 2, "")
	rng := rand.New(rand.NewSource(31))
	for op := 0; op < 10000; op++ {
		addr := uint64(rng.Intn(256)) * 32
		switch k := rng.Intn(100); {
		case k < 80:
			write := rng.Intn(3) == 0
			gh, gwb, gok := taxed.Access(addr, write)
			wh, wwb, wok := bare.Access(addr, write)
			if gh != wh || gwb != wwb || gok != wok {
				t.Fatalf("op %d: Access(%#x,%v) diverged with taxonomy: (%v,%#x,%v) vs (%v,%#x,%v)",
					op, addr, write, gh, gwb, gok, wh, wwb, wok)
			}
		case k < 90:
			if g, w := taxed.Contains(addr), bare.Contains(addr); g != w {
				t.Fatalf("op %d: Contains(%#x) diverged with taxonomy", op, addr)
			}
		case k < 98:
			if g, w := taxed.Invalidate(addr), bare.Invalidate(addr); g != w {
				t.Fatalf("op %d: Invalidate(%#x) diverged with taxonomy", op, addr)
			}
		default:
			taxed.Flush()
			bare.Flush()
		}
	}
	if taxed.Accesses != bare.Accesses || taxed.Misses != bare.Misses {
		t.Fatalf("counters diverged: taxed (%d,%d), bare (%d,%d)",
			taxed.Accesses, taxed.Misses, bare.Accesses, bare.Misses)
	}
}
