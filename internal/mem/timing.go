package mem

import "fmt"

// TimingConfig holds the latency/bandwidth parameters of Table 1.
type TimingConfig struct {
	L1HitLat    int // load-use latency on a primary hit
	L2Lat       int // primary-to-secondary miss latency
	MemLat      int // primary-to-memory miss latency
	MSHRs       int // lockup-free miss status handling registers
	Banks       int // data cache banks
	FillTime    int // cycles a fill occupies its bank
	MemInterval int // main memory accepts one access per MemInterval cycles
	LineBytes   int
}

// Validate checks the configuration.
func (c TimingConfig) Validate() error {
	if c.MSHRs <= 0 || c.Banks <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: timing config has non-positive resource counts: %+v", c)
	}
	return nil
}

// Timing models the time-domain behaviour of the data memory system:
// outstanding misses are tracked in MSHRs (merging requests to an
// in-flight line), main memory admits one access per MemInterval cycles,
// and fills occupy a cache bank for FillTime cycles.
//
// The architectural hit/miss outcome is decided elsewhere (Hierarchy);
// callers pass the level here to obtain a completion time.
type Timing struct {
	cfg       TimingConfig
	lineShift uint

	entries     []mshrEntry
	memNextFree int64
	bankFree    []int64

	// ExtendLifetime keeps an MSHR allocated until the owning memory
	// operation graduates or is squashed (Release/Squash), implementing
	// §3.3. When false, entries expire as soon as their fill completes.
	ExtendLifetime bool

	// Statistics.
	MSHRFullStalls uint64
	Merges         uint64
	FillsStarted   uint64
	PeakInUse      int
}

type mshrEntry struct {
	line     uint64
	fillDone int64
	inUse    bool
	held     bool // lifetime extended past fillDone (ExtendLifetime mode)
}

// NewTiming builds the timing model, rejecting invalid configurations
// with an error (the library panic-to-error policy; see DESIGN.md
// "Robustness model").
func NewTiming(cfg TimingConfig) (*Timing, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Timing{
		cfg:       cfg,
		lineShift: shift,
		entries:   make([]mshrEntry, cfg.MSHRs),
		bankFree:  make([]int64, cfg.Banks),
	}, nil
}

// MustTiming is NewTiming that panics on error; for tests and static
// literal configurations only (documented Must* helper).
func MustTiming(cfg TimingConfig) *Timing {
	t, err := NewTiming(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the timing configuration.
func (t *Timing) Config() TimingConfig { return t.cfg }

func (t *Timing) line(addr uint64) uint64 { return addr >> t.lineShift }

// expire frees entries whose fills have completed (unless held).
func (t *Timing) expire(now int64) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.inUse && !e.held && e.fillDone <= now {
			e.inUse = false
		}
	}
}

// Request asks for a completion time for an access issued at cycle now
// that architecturally resolved at the given level (1..3). For misses it
// allocates or merges into an MSHR; ok is false when all MSHRs are busy,
// in which case the caller must retry on a later cycle (the reference
// could not be accepted by the lockup-free cache).
//
// The returned time is the cycle at which the loaded data is available to
// dependent instructions (critical word forwarded from the MSHR).
func (t *Timing) Request(now int64, level int, addr uint64) (done int64, ok bool) {
	t.expire(now)
	line := t.line(addr)
	if level <= 1 {
		// Architectural tag state says hit, but if the line's fill is
		// still in flight (e.g. started by a prefetch) the data is only
		// available when the MSHR delivers it.
		for i := range t.entries {
			e := &t.entries[i]
			if e.inUse && e.line == line && e.fillDone > now {
				t.Merges++
				return e.fillDone, true
			}
		}
		return now + int64(t.cfg.L1HitLat), true
	}
	// Merge with an in-flight miss to the same line.
	for i := range t.entries {
		e := &t.entries[i]
		if e.inUse && e.line == line && e.fillDone > now {
			t.Merges++
			return e.fillDone, true
		}
	}
	slot := -1
	for i := range t.entries {
		if !t.entries[i].inUse {
			slot = i
			break
		}
	}
	if slot < 0 {
		t.MSHRFullStalls++
		return 0, false
	}
	var arrive int64
	switch level {
	case 2:
		arrive = now + int64(t.cfg.L2Lat)
	default:
		start := now
		if t.memNextFree > start {
			start = t.memNextFree
		}
		t.memNextFree = start + int64(t.cfg.MemInterval)
		arrive = start + int64(t.cfg.MemLat)
	}
	// The fill occupies a bank for FillTime cycles; delay data delivery
	// if the bank is still busy with a previous fill.
	bank := int(line) % t.cfg.Banks
	if t.bankFree[bank] > arrive {
		arrive = t.bankFree[bank]
	}
	t.bankFree[bank] = arrive + int64(t.cfg.FillTime)
	t.FillsStarted++

	t.entries[slot] = mshrEntry{line: line, fillDone: arrive, inUse: true, held: t.ExtendLifetime}
	if n := t.inUseCount(); n > t.PeakInUse {
		t.PeakInUse = n
	}
	return arrive, true
}

func (t *Timing) inUseCount() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].inUse {
			n++
		}
	}
	return n
}

// InUse returns the number of allocated MSHRs (after expiring completed
// fills as of now).
func (t *Timing) InUse(now int64) int {
	t.expire(now)
	return t.inUseCount()
}

// Release frees the MSHR holding line because the owning memory operation
// graduated (ExtendLifetime mode). It is a no-op when no held entry
// matches.
func (t *Timing) Release(addr uint64) {
	line := t.line(addr)
	for i := range t.entries {
		e := &t.entries[i]
		if e.inUse && e.held && e.line == line {
			e.held = false
			return
		}
	}
}

// Squash frees the MSHR holding line because the owning memory operation
// was squashed; it reports whether an entry was found so the caller can
// invalidate the speculatively filled primary-cache line (§3.3).
func (t *Timing) Squash(addr uint64) bool {
	line := t.line(addr)
	for i := range t.entries {
		e := &t.entries[i]
		if e.inUse && e.held && e.line == line {
			e.held = false
			e.inUse = false
			return true
		}
	}
	return false
}
