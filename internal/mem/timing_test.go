package mem

import "testing"

func mkTiming() *Timing {
	return MustTiming(TimingConfig{
		L1HitLat: 2, L2Lat: 12, MemLat: 75,
		MSHRs: 8, Banks: 2, FillTime: 4, MemInterval: 20, LineBytes: 32,
	})
}

func TestTimingHitLatency(t *testing.T) {
	tm := mkTiming()
	done, ok := tm.Request(100, 1, 0x40)
	if !ok || done != 102 {
		t.Errorf("L1 hit: done=%d ok=%v", done, ok)
	}
}

func TestTimingL2AndMemoryLatency(t *testing.T) {
	tm := mkTiming()
	done, ok := tm.Request(0, 2, 0x40)
	if !ok || done != 12 {
		t.Errorf("L2 miss: done=%d ok=%v", done, ok)
	}
	done, ok = tm.Request(0, 3, 0x1040)
	if !ok || done != 75 {
		t.Errorf("memory miss: done=%d ok=%v", done, ok)
	}
}

func TestTimingMSHRMerge(t *testing.T) {
	tm := mkTiming()
	d1, _ := tm.Request(0, 3, 0x40)
	d2, ok := tm.Request(5, 3, 0x48) // same line
	if !ok || d2 != d1 {
		t.Errorf("merge returned %d, want %d", d2, d1)
	}
	if tm.Merges != 1 {
		t.Errorf("merges %d", tm.Merges)
	}
}

func TestTimingMSHRExhaustion(t *testing.T) {
	tm := mkTiming()
	for i := 0; i < 8; i++ {
		if _, ok := tm.Request(0, 2, uint64(i)*64); !ok {
			t.Fatalf("MSHR %d rejected", i)
		}
	}
	if _, ok := tm.Request(0, 2, 9*64); ok {
		t.Error("ninth outstanding miss accepted with 8 MSHRs")
	}
	if tm.MSHRFullStalls != 1 {
		t.Errorf("full stalls %d", tm.MSHRFullStalls)
	}
	// After the fills complete, entries are reusable.
	if _, ok := tm.Request(100, 2, 9*64); !ok {
		t.Error("MSHR not freed after fill")
	}
}

func TestTimingMemoryBandwidth(t *testing.T) {
	tm := mkTiming()
	d1, _ := tm.Request(0, 3, 0*64)
	d2, _ := tm.Request(0, 3, 1*64)
	d3, _ := tm.Request(0, 3, 2*64)
	// One access per 20 cycles: starts at 0, 20, 40.
	if d1 != 75 || d2 < 95 || d3 < 115 {
		t.Errorf("bandwidth limiting: %d %d %d", d1, d2, d3)
	}
}

func TestTimingBankOccupancy(t *testing.T) {
	tm := mkTiming()
	// Two L2 fills to the same bank (even lines -> bank 0).
	d1, _ := tm.Request(0, 2, 0*32)
	d2, _ := tm.Request(0, 2, 2*32)
	if d2 < d1+4 {
		t.Errorf("second fill on busy bank at %d, first at %d", d2, d1)
	}
	// Different bank is unaffected.
	tm2 := mkTiming()
	tm2.Request(0, 2, 0*32)
	d4, _ := tm2.Request(0, 2, 1*32)
	if d4 != 12 {
		t.Errorf("fill on free bank delayed: %d", d4)
	}
}

func TestTimingInFlightHitWaitsForFill(t *testing.T) {
	tm := mkTiming()
	d1, _ := tm.Request(0, 3, 0x40) // prefetch-style fill in flight
	// The architectural tags now say hit; data must still wait.
	d2, ok := tm.Request(10, 1, 0x48)
	if !ok || d2 != d1 {
		t.Errorf("in-flight 'hit' done=%d, want %d", d2, d1)
	}
	// After the fill, hits are fast again.
	d3, _ := tm.Request(d1+1, 1, 0x48)
	if d3 != d1+3 {
		t.Errorf("post-fill hit done=%d", d3)
	}
}

func TestTimingExtendLifetime(t *testing.T) {
	tm := mkTiming()
	tm.ExtendLifetime = true
	for i := 0; i < 8; i++ {
		if _, ok := tm.Request(0, 2, uint64(i)*64); !ok {
			t.Fatalf("MSHR %d rejected", i)
		}
	}
	// Fills complete at 12, but entries are held: still exhausted later.
	if _, ok := tm.Request(100, 2, 9*64); ok {
		t.Error("held MSHR freed without release")
	}
	// Graduation releases one.
	tm.Release(0 * 64)
	if _, ok := tm.Request(100, 2, 9*64); !ok {
		t.Error("released MSHR not reusable")
	}
	// Squash frees another and reports it.
	if !tm.Squash(1 * 64) {
		t.Error("squash did not find held entry")
	}
	if tm.Squash(1 * 64) {
		t.Error("double squash found an entry")
	}
	if _, ok := tm.Request(100, 2, 10*64); !ok {
		t.Error("squashed MSHR not reusable")
	}
}

func TestTimingInUseAndPeak(t *testing.T) {
	tm := mkTiming()
	tm.Request(0, 2, 0)
	tm.Request(0, 2, 64)
	if got := tm.InUse(5); got != 2 {
		t.Errorf("in use at t=5: %d", got)
	}
	if got := tm.InUse(50); got != 0 {
		t.Errorf("in use after fills: %d", got)
	}
	if tm.PeakInUse != 2 {
		t.Errorf("peak %d", tm.PeakInUse)
	}
}

func TestTimingConfigValidation(t *testing.T) {
	if err := (TimingConfig{MSHRs: 0, Banks: 1, LineBytes: 32}).Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
	if tm, err := NewTiming(TimingConfig{}); err == nil || tm != nil {
		t.Error("NewTiming accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTiming accepted invalid config")
		}
	}()
	MustTiming(TimingConfig{})
}
