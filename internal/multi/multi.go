// Package multi is the parallel-system substrate for the paper's §4.3
// case study: a deterministic, discrete-event simulation of a 16-processor
// shared-memory machine in the style of TangoLite (which the paper used).
// Each processor executes a reference stream against private two-level
// caches; an invalidation-based, line-granularity protocol with
// user-visible INVALID/READONLY/READWRITE protection state is maintained
// by handlers at user level, with remote operations performed DMA-style
// (the remote processor is not interrupted). The access-control detection
// cost — the thing the paper's three schemes differ in — is supplied by a
// pluggable AccessPolicy.
package multi

import (
	"fmt"

	"informing/internal/faults"
	"informing/internal/govern"
	"informing/internal/interp"
	"informing/internal/mem"
	"informing/internal/obs"
	"informing/internal/stats"
)

// Config holds the machine parameters of Table 2.
type Config struct {
	Processors int

	L1 mem.CacheConfig
	L2 mem.CacheConfig

	L1MissPenalty int64 // cycles added on an L1 miss
	L2MissPenalty int64 // further cycles added on an L2 miss
	MsgLatency    int64 // one-way network message latency
	BarrierCost   int64 // synchronisation cost at phase boundaries

	StateChangeCost int64 // user-level protocol state-change time
	PageBytes       uint64

	// Govern supplies the run-governor policy: context cancellation and
	// (when its MaxInsts is set) a bound on the total number of
	// references simulated. The zero value uses the govern package
	// defaults. On abort Simulate returns the partial Result accumulated
	// so far alongside the error.
	Govern govern.Config

	// Faults, when non-nil, injects protocol faults (see internal/faults):
	// each firing faults.Protocol rule drops one invalidation message,
	// leaving a stale remote copy for the invariant checker to find.
	Faults *faults.Injector

	// Obs, when non-nil, receives live metrics: one Instrs count per
	// reference, the per-level satisfaction distribution (Levels), one
	// Traps count per coherence/protocol action (the access-control
	// analogue of an informing trap), and the final execution time as a
	// Cycles delta. Nil costs only nil-checks.
	Obs *obs.Sim
}

// DefaultConfig returns the paper's Table 2 machine: 16 processors, 16 KB
// L1 (10-cycle miss penalty), 128 KB L2 (25-cycle penalty), 32-byte
// coherence unit, 900-cycle one-way messages, 25-cycle state changes.
func DefaultConfig() Config {
	return Config{
		Processors:      16,
		L1:              mem.CacheConfig{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 2},
		L2:              mem.CacheConfig{SizeBytes: 128 << 10, LineBytes: 32, Assoc: 2},
		L1MissPenalty:   10,
		L2MissPenalty:   25,
		MsgLatency:      900,
		BarrierCost:     1800,
		StateChangeCost: 25,
		PageBytes:       4096,
	}
}

// Ref is one memory reference in a processor's stream. Compute is the
// number of busy cycles the processor spends before issuing it.
type Ref struct {
	Addr    uint64
	Write   bool
	Shared  bool // subject to access control
	Compute int64
}

// App is a barrier-synchronised parallel application: Phases[k][p] is
// processor p's reference stream in phase k.
type App struct {
	Name   string
	Phases [][][]Ref
}

// ProtState is the user-level protection state of a line on one processor.
type ProtState uint8

const (
	Invalid ProtState = iota
	ReadOnly
	ReadWrite
)

func (s ProtState) String() string {
	switch s {
	case ReadOnly:
		return "READONLY"
	case ReadWrite:
		return "READWRITE"
	}
	return "INVALID"
}

// AccessEvent describes one shared reference to the access-control policy.
type AccessEvent struct {
	Write bool
	// State is the referencing processor's current protection state for
	// the line.
	State ProtState
	// Sufficient reports whether the current protection level already
	// permits the access (READWRITE for stores; READONLY or READWRITE
	// for loads).
	Sufficient bool
	// L1Hit reports whether the access hits the primary cache (always
	// false when protection is insufficient: invalid lines are evicted
	// and non-writable lines cannot satisfy stores).
	L1Hit bool
	// PageHasReadonly reports whether the processor holds any READONLY
	// line on the page (drives the ECC scheme's write faults).
	PageHasReadonly bool
}

// AccessPolicy prices the access-control *detection* work of one shared
// reference; protocol action costs (state change, messages) are charged
// uniformly by the engine.
type AccessPolicy interface {
	Name() string
	DetectCost(ev AccessEvent, cfg Config) int64
}

// Result aggregates one simulation.
type Result struct {
	Cycles  int64 // execution time (max over processors)
	PerProc []int64

	SharedReads, SharedWrites uint64
	PrivateRefs               uint64
	L1Hits, L1Misses          uint64
	CoherenceActions          uint64 // references needing protocol work
	Invalidations             uint64 // remote copies invalidated
	RemoteTransfers           uint64 // actions involving the network

	DetectCycles   int64 // access-control detection
	ProtocolCycles int64 // state changes + messages
	MemoryCycles   int64 // cache-miss stall
	ComputeCycles  int64

	// Miss taxonomy aggregated across the private cache pairs
	// (DESIGN.md §17). Protocol invalidations are attributed through
	// InvalidateCoherence, so re-references to invalidated lines classify
	// as coherence misses. The classes sum to CacheL1Misses/CacheL2Misses
	// — the raw cache-level miss counts — not to Result.L1Misses, which
	// counts only shared sufficient-protection misses and protocol
	// actions (private-reference misses are priced but not broken out).
	L1Tax, L2Tax                 stats.MissClasses
	CacheL1Misses, CacheL2Misses uint64
}

type dirEntry struct {
	sharers uint64 // bitmap
	owner   int    // valid when dirty
	dirty   bool
}

type proc struct {
	clock  int64
	l1, l2 *mem.Cache
	state  map[uint64]ProtState
	pageRO map[uint64]int
}

// machine is the mutable simulation state; it is factored out of Simulate
// so tests can drive individual references and check protocol invariants
// after every step.
type machine struct {
	cfg   Config
	pol   AccessPolicy
	procs []proc
	dir   map[uint64]*dirEntry
	res   Result
}

func newMachine(cfg Config, pol AccessPolicy) (*machine, error) {
	m := &machine{
		cfg:   cfg,
		pol:   pol,
		procs: make([]proc, cfg.Processors),
		dir:   make(map[uint64]*dirEntry),
	}
	for i := range m.procs {
		l1, err := mem.NewCache(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("multi: proc %d L1: %w", i, err)
		}
		l2, err := mem.NewCache(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("multi: proc %d L2: %w", i, err)
		}
		// Observation-only miss classification (DESIGN.md §17); protocol
		// invalidations arrive via InvalidateCoherence so re-references
		// attribute to the coherence class.
		l1.EnableTaxonomy()
		l2.EnableTaxonomy()
		m.procs[i] = proc{
			l1:     l1,
			l2:     l2,
			state:  make(map[uint64]ProtState),
			pageRO: make(map[uint64]int),
		}
	}
	m.res.PerProc = make([]int64, cfg.Processors)
	return m, nil
}

func (m *machine) lineOf(addr uint64) uint64 {
	return addr &^ uint64(m.cfg.L1.LineBytes-1)
}

func (m *machine) home(line uint64) int {
	return int(line/uint64(m.cfg.L1.LineBytes)) % m.cfg.Processors
}

func (m *machine) setState(p int, line uint64, s ProtState) {
	pr := &m.procs[p]
	old := pr.state[line]
	if old == s {
		return
	}
	page := line / m.cfg.PageBytes
	if old == ReadOnly {
		pr.pageRO[page]--
		if pr.pageRO[page] <= 0 {
			delete(pr.pageRO, page)
		}
	}
	if s == ReadOnly {
		pr.pageRO[page]++
	}
	if s == Invalid {
		delete(pr.state, line)
		// Invalid blocks are evicted from the caches (the basis of
		// miss-driven detection); the coherence-marked invalidation makes
		// the taxonomy attribute the line's next miss to the protocol.
		pr.l1.InvalidateCoherence(line)
		pr.l2.InvalidateCoherence(line)
	} else {
		pr.state[line] = s
	}
}

// doRef executes one reference on processor p, advancing its clock.
func (m *machine) doRef(p int, r Ref) {
	cfg := m.cfg
	pr := &m.procs[p]
	pr.clock += r.Compute
	m.res.ComputeCycles += r.Compute

	if !r.Shared {
		m.res.PrivateRefs++
		var miss int64
		level := 1
		if hit, _, _ := pr.l1.Access(r.Addr, r.Write); !hit {
			miss = cfg.L1MissPenalty
			level = 2
			if hit2, _, _ := pr.l2.Access(r.Addr, r.Write); !hit2 {
				miss += cfg.L2MissPenalty
				level = 3
			}
		}
		if sim := cfg.Obs; sim != nil {
			sim.Instrs.Inc()
			sim.Levels[level].Inc()
		}
		pr.clock += miss
		m.res.MemoryCycles += miss
		return
	}

	line := m.lineOf(r.Addr)
	st := pr.state[line]
	sufficient := (!r.Write && st != Invalid) || (r.Write && st == ReadWrite)
	if r.Write {
		m.res.SharedWrites++
	} else {
		m.res.SharedReads++
	}

	l1hit := sufficient && pr.l1.Contains(r.Addr)
	ev := AccessEvent{
		Write:           r.Write,
		State:           st,
		Sufficient:      sufficient,
		L1Hit:           l1hit,
		PageHasReadonly: pr.pageRO[line/cfg.PageBytes] > 0,
	}
	detect := m.pol.DetectCost(ev, cfg)
	pr.clock += detect
	m.res.DetectCycles += detect

	if sufficient {
		var miss int64
		level := 1
		if hit, _, _ := pr.l1.Access(r.Addr, r.Write); hit {
			m.res.L1Hits++
		} else {
			m.res.L1Misses++
			miss = cfg.L1MissPenalty
			level = 2
			if hit2, _, _ := pr.l2.Access(r.Addr, r.Write); !hit2 {
				miss += cfg.L2MissPenalty
				level = 3
			}
		}
		if sim := cfg.Obs; sim != nil {
			sim.Instrs.Inc()
			sim.Levels[level].Inc()
		}
		pr.clock += miss
		m.res.MemoryCycles += miss
		return
	}

	// ---- protocol action ------------------------------------------
	m.res.CoherenceActions++
	m.res.L1Misses++
	if sim := cfg.Obs; sim != nil {
		// A protocol action behaves like an informing trap: detection
		// found insufficient protection and a handler ran. The line is
		// fetched from beyond the local hierarchy.
		sim.Instrs.Inc()
		sim.Traps.Inc()
		sim.Levels[3].Inc()
	}
	d := m.dir[line]
	if d == nil {
		d = &dirEntry{owner: -1}
		m.dir[line] = d
	}
	var proto int64 = cfg.StateChangeCost
	remote := false
	if r.Write {
		// Invalidate all other copies (DMA-style, in parallel).
		for q := 0; q < cfg.Processors; q++ {
			if q == p || d.sharers&(1<<uint(q)) == 0 {
				continue
			}
			if cfg.Faults.Fire(faults.Protocol, uint64(p), line) {
				// Injected protocol fault: the invalidation message to q
				// is dropped, leaving a stale copy behind. invariants()
				// is expected to catch the resulting violation.
				remote = true
				continue
			}
			m.setState(q, line, Invalid)
			m.res.Invalidations++
			remote = true
		}
		if d.dirty && d.owner != p {
			remote = true // fetch modified data from old owner
		}
		if st == Invalid && m.home(line) != p {
			remote = true // data fetched from remote home
		}
		if remote {
			proto += 2 * cfg.MsgLatency
			m.res.RemoteTransfers++
		} else if st == Invalid {
			proto += cfg.L1MissPenalty + cfg.L2MissPenalty // local memory
		}
		d.sharers = 1 << uint(p)
		d.owner = p
		d.dirty = true
		m.setState(p, line, ReadWrite)
	} else {
		if d.dirty && d.owner != p {
			// Downgrade the writer; data comes from its cache.
			m.setState(d.owner, line, ReadOnly)
			d.sharers |= 1 << uint(d.owner)
			d.dirty = false
			remote = true
		} else if m.home(line) != p {
			remote = true
		}
		if remote {
			proto += 2 * cfg.MsgLatency
			m.res.RemoteTransfers++
		} else {
			proto += cfg.L1MissPenalty + cfg.L2MissPenalty
		}
		d.sharers |= 1 << uint(p)
		m.setState(p, line, ReadOnly)
	}
	pr.clock += proto
	m.res.ProtocolCycles += proto

	// Fill the caches with the now-accessible line.
	pr.l1.Access(r.Addr, r.Write)
	pr.l2.Access(r.Addr, r.Write)
}

// barrier synchronises all processors to the slowest plus the barrier cost.
func (m *machine) barrier() {
	var maxClock int64
	for p := range m.procs {
		if m.procs[p].clock > maxClock {
			maxClock = m.procs[p].clock
		}
	}
	for p := range m.procs {
		m.procs[p].clock = maxClock + m.cfg.BarrierCost
	}
}

// invariants checks the protocol's safety properties; tests call it after
// every step:
//
//   - single writer: a dirty line has exactly one holder, in READWRITE
//     state, matching the directory owner;
//   - no stale readers: a processor in READONLY/READWRITE state for a line
//     appears in the directory's sharer set;
//   - page bookkeeping: pageRO counts equal the number of READONLY lines
//     on each page.
func (m *machine) invariants() error {
	holders := map[uint64][]int{}
	for p := range m.procs {
		for line, st := range m.procs[p].state {
			d := m.dir[line]
			if d == nil {
				return fmt.Errorf("proc %d holds %#x (%v) but no directory entry", p, line, st)
			}
			if d.sharers&(1<<uint(p)) == 0 {
				return fmt.Errorf("proc %d holds %#x (%v) but is not a directory sharer", p, line, st)
			}
			if st == ReadWrite {
				holders[line] = append(holders[line], p)
			}
		}
	}
	for line, d := range m.dir {
		if d.dirty {
			h := holders[line]
			if len(h) != 1 || h[0] != d.owner {
				return fmt.Errorf("dirty line %#x: writers %v, owner %d", line, h, d.owner)
			}
			if d.sharers != 1<<uint(d.owner) {
				return fmt.Errorf("dirty line %#x has sharers %b", line, d.sharers)
			}
		} else if len(holders[line]) != 0 {
			return fmt.Errorf("clean line %#x has writer %v", line, holders[line])
		}
	}
	for p := range m.procs {
		want := map[uint64]int{}
		for line, st := range m.procs[p].state {
			if st == ReadOnly {
				want[line/m.cfg.PageBytes]++
			}
		}
		for page, n := range m.procs[p].pageRO {
			if want[page] != n {
				return fmt.Errorf("proc %d page %#x RO count %d, want %d", p, page, n, want[page])
			}
		}
		for page, n := range want {
			if m.procs[p].pageRO[page] != n {
				return fmt.Errorf("proc %d page %#x RO count missing %d", p, page, n)
			}
		}
	}
	return nil
}

func (m *machine) result() Result {
	m.res.L1Tax, m.res.L2Tax = stats.MissClasses{}, stats.MissClasses{}
	m.res.CacheL1Misses, m.res.CacheL2Misses = 0, 0
	for p := range m.procs {
		m.res.PerProc[p] = m.procs[p].clock
		if m.procs[p].clock > m.res.Cycles {
			m.res.Cycles = m.procs[p].clock
		}
		m.res.L1Tax = m.res.L1Tax.Add(m.procs[p].l1.Taxonomy())
		m.res.L2Tax = m.res.L2Tax.Add(m.procs[p].l2.Taxonomy())
		m.res.CacheL1Misses += m.procs[p].l1.Misses
		m.res.CacheL2Misses += m.procs[p].l2.Misses
	}
	return m.res
}

// Simulate runs app under the policy and machine configuration. The
// simulation is deterministic: processors are advanced in minimum-clock
// order (ties broken by processor id) within each barrier phase.
//
// Cancellation and budgeting come from cfg.Govern: when the context is
// cancelled or the reference budget is exhausted, Simulate returns the
// partial Result accumulated so far together with an error carrying a
// govern.Snapshot.
func Simulate(app App, pol AccessPolicy, cfg Config) (Result, error) {
	if cfg.Processors <= 0 || cfg.Processors > 64 {
		return Result{}, fmt.Errorf("multi: processor count %d out of range", cfg.Processors)
	}
	m, err := newMachine(cfg, pol)
	if err != nil {
		return Result{}, err
	}
	gov := govern.New(cfg.Govern)
	var refs uint64
	abort := func(phase int, cause error) (Result, error) {
		res := m.result()
		snap := govern.Snapshot{
			Cycle: res.Cycles, Seq: refs,
			Note: fmt.Sprintf("phase %d of %d, policy %s", phase, len(app.Phases), pol.Name()),
		}
		snap.Partial.Cycles = res.Cycles
		snap.Partial.DynInsts = refs
		return res, govern.WithSnapshot(cause, snap)
	}
	for k, phase := range app.Phases {
		if len(phase) != cfg.Processors {
			return Result{}, fmt.Errorf("multi: app %q phase has %d streams, want %d",
				app.Name, len(phase), cfg.Processors)
		}
		idx := make([]int, cfg.Processors)
		for {
			if err := gov.Tick(); err != nil {
				return abort(k, fmt.Errorf("multi: %w", err))
			}
			if refs >= gov.Budget() {
				return abort(k, fmt.Errorf("multi: %w: %w (%d references)",
					govern.ErrBudget, interp.ErrLimit, gov.Budget()))
			}
			// Advance the processor with the smallest clock that still
			// has work (deterministic tie-break by id).
			sel, selClock := -1, int64(0)
			for p := 0; p < cfg.Processors; p++ {
				if idx[p] >= len(phase[p]) {
					continue
				}
				if sel < 0 || m.procs[p].clock < selClock {
					sel, selClock = p, m.procs[p].clock
				}
			}
			if sel < 0 {
				break
			}
			m.doRef(sel, phase[sel][idx[sel]])
			refs++
			idx[sel]++
		}
		m.barrier()
	}
	res := m.result()
	if cfg.Obs != nil {
		cfg.Obs.Cycles.Add(uint64(res.Cycles))
		cfg.Obs.AddMissClasses(1, res.L1Tax)
		cfg.Obs.AddMissClasses(2, res.L2Tax)
	}
	return res, nil
}
