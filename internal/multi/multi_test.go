package multi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// freePolicy charges nothing, isolating protocol behaviour.
type freePolicy struct{}

func (freePolicy) Name() string                         { return "free" }
func (freePolicy) DetectCost(AccessEvent, Config) int64 { return 0 }

// recordingPolicy captures the event stream.
type recordingPolicy struct{ events []AccessEvent }

func (r *recordingPolicy) Name() string { return "recording" }
func (r *recordingPolicy) DetectCost(ev AccessEvent, _ Config) int64 {
	r.events = append(r.events, ev)
	return 0
}

func smallConfig(procs int) Config {
	cfg := DefaultConfig()
	cfg.Processors = procs
	return cfg
}

func testMachine(t *testing.T, cfg Config, pol AccessPolicy) *machine {
	t.Helper()
	m, err := newMachine(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := testMachine(t, smallConfig(4), freePolicy{})
	line := uint64(0x1000)
	// Everyone reads; then P0 writes.
	for p := 0; p < 4; p++ {
		m.doRef(p, Ref{Addr: line, Shared: true})
	}
	if err := m.invariants(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if m.procs[p].state[line] != ReadOnly {
			t.Fatalf("proc %d state %v after read", p, m.procs[p].state[line])
		}
	}
	m.doRef(0, Ref{Addr: line, Write: true, Shared: true})
	if err := m.invariants(); err != nil {
		t.Fatal(err)
	}
	if m.procs[0].state[line] != ReadWrite {
		t.Error("writer not READWRITE")
	}
	for p := 1; p < 4; p++ {
		if m.procs[p].state[line] != Invalid {
			t.Errorf("proc %d not invalidated", p)
		}
		if m.procs[p].l1.Contains(line) || m.procs[p].l2.Contains(line) {
			t.Errorf("proc %d caches still hold the invalidated line", p)
		}
	}
	if m.res.Invalidations != 3 {
		t.Errorf("invalidations %d, want 3", m.res.Invalidations)
	}
}

func TestReadDowngradesWriter(t *testing.T) {
	m := testMachine(t, smallConfig(2), freePolicy{})
	line := uint64(0x2000)
	m.doRef(0, Ref{Addr: line, Write: true, Shared: true})
	m.doRef(1, Ref{Addr: line, Shared: true})
	if err := m.invariants(); err != nil {
		t.Fatal(err)
	}
	if m.procs[0].state[line] != ReadOnly || m.procs[1].state[line] != ReadOnly {
		t.Errorf("states after downgrade: %v, %v",
			m.procs[0].state[line], m.procs[1].state[line])
	}
	if m.dir[line].dirty {
		t.Error("directory still dirty after downgrade")
	}
}

func TestMigratoryCostsRemoteTransfers(t *testing.T) {
	cfg := smallConfig(2)
	m := testMachine(t, cfg, freePolicy{})
	line := uint64(0x3000)
	m.doRef(0, Ref{Addr: line, Write: true, Shared: true})
	before := m.procs[1].clock
	m.doRef(1, Ref{Addr: line, Shared: true}) // fetch from dirty remote
	if m.procs[1].clock-before < 2*cfg.MsgLatency {
		t.Errorf("remote fetch cost %d, want >= %d", m.procs[1].clock-before, 2*cfg.MsgLatency)
	}
	if m.res.RemoteTransfers == 0 {
		t.Error("no remote transfers recorded")
	}
}

func TestEventFieldsVisibleToPolicy(t *testing.T) {
	rec := &recordingPolicy{}
	m := testMachine(t, smallConfig(2), rec)
	line := uint64(0x4000)
	m.doRef(0, Ref{Addr: line, Shared: true})              // invalid read
	m.doRef(0, Ref{Addr: line, Shared: true})              // RO hit
	m.doRef(0, Ref{Addr: line, Write: true, Shared: true}) // write upgrade
	m.doRef(0, Ref{Addr: line, Write: true, Shared: true}) // RW hit
	want := []AccessEvent{
		{Write: false, State: Invalid, Sufficient: false, L1Hit: false, PageHasReadonly: false},
		{Write: false, State: ReadOnly, Sufficient: true, L1Hit: true, PageHasReadonly: true},
		{Write: true, State: ReadOnly, Sufficient: false, L1Hit: false, PageHasReadonly: true},
		{Write: true, State: ReadWrite, Sufficient: true, L1Hit: true, PageHasReadonly: false},
	}
	if len(rec.events) != len(want) {
		t.Fatalf("%d events, want %d", len(rec.events), len(want))
	}
	for i, ev := range rec.events {
		if ev != want[i] {
			t.Errorf("event %d: %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestPageReadonlyTracking(t *testing.T) {
	m := testMachine(t, smallConfig(2), freePolicy{})
	// Two lines on the same page: P0 reads both (RO), then writes one.
	a, b := uint64(0x5000), uint64(0x5020)
	m.doRef(0, Ref{Addr: a, Shared: true})
	m.doRef(0, Ref{Addr: b, Shared: true})
	page := a / m.cfg.PageBytes
	if m.procs[0].pageRO[page] != 2 {
		t.Errorf("pageRO %d, want 2", m.procs[0].pageRO[page])
	}
	m.doRef(0, Ref{Addr: a, Write: true, Shared: true})
	if m.procs[0].pageRO[page] != 1 {
		t.Errorf("pageRO after upgrade %d, want 1", m.procs[0].pageRO[page])
	}
	if err := m.invariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	cfg := smallConfig(2)
	m := testMachine(t, cfg, freePolicy{})
	m.procs[0].clock = 100
	m.procs[1].clock = 5000
	m.barrier()
	for p := range m.procs {
		if m.procs[p].clock != 5000+cfg.BarrierCost {
			t.Errorf("proc %d clock %d", p, m.procs[p].clock)
		}
	}
}

func TestPrivateRefsBypassProtocol(t *testing.T) {
	rec := &recordingPolicy{}
	m := testMachine(t, smallConfig(2), rec)
	m.doRef(0, Ref{Addr: 0x9000, Write: true})
	m.doRef(1, Ref{Addr: 0x9000})
	if len(rec.events) != 0 {
		t.Error("private refs reached the access policy")
	}
	if len(m.dir) != 0 {
		t.Error("private refs created directory state")
	}
	if m.res.PrivateRefs != 2 {
		t.Errorf("private refs %d", m.res.PrivateRefs)
	}
}

// TestProtocolInvariantsUnderRandomTraffic drives random shared traffic
// from all processors and checks the single-writer and bookkeeping
// invariants after every reference.
func TestProtocolInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := testMachine(t, smallConfig(4), freePolicy{})
		for i := 0; i < 2000; i++ {
			p := r.Intn(4)
			addr := uint64(r.Intn(64)) * 32 // 64 hot lines
			m.doRef(p, Ref{Addr: addr, Write: r.Intn(3) == 0, Shared: true})
			if err := m.invariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(App{}, freePolicy{}, Config{Processors: 0}); err == nil {
		t.Error("zero processors accepted")
	}
	cfg := smallConfig(2)
	app := App{Name: "bad", Phases: [][][]Ref{{{}}}} // 1 stream for 2 procs
	if _, err := Simulate(app, freePolicy{}, cfg); err == nil {
		t.Error("malformed app accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := smallConfig(4)
	app := App{Name: "d", Phases: [][][]Ref{make([][]Ref, 4)}}
	r := rand.New(rand.NewSource(9))
	for p := 0; p < 4; p++ {
		for i := 0; i < 500; i++ {
			app.Phases[0][p] = append(app.Phases[0][p], Ref{
				Addr:    uint64(r.Intn(128)) * 32,
				Write:   r.Intn(4) == 0,
				Shared:  true,
				Compute: int64(r.Intn(5)),
			})
		}
	}
	a, err := Simulate(app, freePolicy{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(app, freePolicy{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.CoherenceActions != b.CoherenceActions {
		t.Error("simulation nondeterministic")
	}
}

func TestResultAccounting(t *testing.T) {
	cfg := smallConfig(2)
	app := App{Name: "acct", Phases: [][][]Ref{{
		{{Addr: 0x100, Shared: true, Compute: 10}, {Addr: 0x100, Shared: true}},
		{{Addr: 0x200, Write: true, Shared: true, Compute: 3}},
	}}}
	res, err := Simulate(app, freePolicy{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedReads != 2 || res.SharedWrites != 1 {
		t.Errorf("read/write counts %d/%d", res.SharedReads, res.SharedWrites)
	}
	if res.ComputeCycles != 13 {
		t.Errorf("compute cycles %d", res.ComputeCycles)
	}
	if res.CoherenceActions != 2 { // first read + first write are actions
		t.Errorf("actions %d", res.CoherenceActions)
	}
	if res.Cycles < cfg.BarrierCost {
		t.Errorf("cycles %d below barrier cost", res.Cycles)
	}
	if len(res.PerProc) != 2 {
		t.Error("per-proc clock missing")
	}
}
