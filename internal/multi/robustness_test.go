package multi

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"informing/internal/faults"
	"informing/internal/govern"
)

// countdownCtx is a context whose Err starts failing after n polls,
// letting tests cancel a simulation at a deterministic point mid-run.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func randomApp(procs, refs int, seed int64) App {
	app := App{Name: "rand", Phases: [][][]Ref{make([][]Ref, procs)}}
	r := rand.New(rand.NewSource(seed))
	for p := 0; p < procs; p++ {
		for i := 0; i < refs; i++ {
			app.Phases[0][p] = append(app.Phases[0][p], Ref{
				Addr:    uint64(r.Intn(128)) * 32,
				Write:   r.Intn(4) == 0,
				Shared:  true,
				Compute: int64(r.Intn(5)),
			})
		}
	}
	return app
}

// TestSimulateCancelReturnsPartialResult: cancelling mid-phase must return
// the partial Result accumulated so far together with an ErrCanceled abort
// carrying a snapshot that locates the cut.
func TestSimulateCancelReturnsPartialResult(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Govern.Ctx = &countdownCtx{Context: context.Background(), left: 100}
	cfg.Govern.CheckEvery = 1
	res, err := Simulate(randomApp(4, 500, 3), freePolicy{}, cfg)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("cancelled simulation returned %v, want ErrCanceled", err)
	}
	snap, ok := govern.SnapshotIn(err)
	if !ok {
		t.Fatal("cancel abort carries no snapshot")
	}
	if snap.Seq == 0 || snap.Seq >= 2000 {
		t.Errorf("snapshot ref count %d, want mid-run", snap.Seq)
	}
	if res.Cycles == 0 || res.SharedReads+res.SharedWrites == 0 {
		t.Errorf("partial result is empty: %+v", res)
	}
	if res.SharedReads+res.SharedWrites != snap.Seq {
		t.Errorf("partial result has %d refs, snapshot says %d",
			res.SharedReads+res.SharedWrites, snap.Seq)
	}
}

// TestSimulateBudgetBoundsReferences: Govern.MaxInsts bounds the total
// reference count with a typed ErrBudget abort and a partial Result.
func TestSimulateBudgetBoundsReferences(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Govern.MaxInsts = 250
	res, err := Simulate(randomApp(4, 500, 5), freePolicy{}, cfg)
	if !errors.Is(err, govern.ErrBudget) {
		t.Fatalf("budget exhaustion returned %v, want ErrBudget", err)
	}
	if got := res.SharedReads + res.SharedWrites; got != 250 {
		t.Errorf("partial result has %d refs, want exactly the 250 budget", got)
	}
}

// TestProtocolFaultViolatesInvariants: a dropped invalidation (injected
// through a faults.Protocol rule) must leave a stale copy that the
// invariant checker catches — demonstrating both that the injector
// perturbs the protocol and that invariants() has teeth.
func TestProtocolFaultViolatesInvariants(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Faults = faults.New(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.Protocol, EveryN: 1},
	}})
	m := testMachine(t, cfg, freePolicy{})
	line := uint64(0x1000)
	for p := 0; p < 4; p++ {
		m.doRef(p, Ref{Addr: line, Shared: true})
	}
	if err := m.invariants(); err != nil {
		t.Fatalf("invariants broken before any write: %v", err)
	}
	m.doRef(0, Ref{Addr: line, Write: true, Shared: true})
	if err := m.invariants(); err == nil {
		t.Fatal("dropped invalidation left the protocol looking consistent")
	}
	if cfg.Faults.Stats().ProtocolFires == 0 {
		t.Error("injector recorded no protocol faults")
	}
}

// TestSimulateInvariantsHoldWithoutFaults: the full Simulate path (with
// governor wiring) preserves the invariants when no faults are injected.
func TestSimulateInvariantsHoldWithoutFaults(t *testing.T) {
	cfg := smallConfig(4)
	m := testMachine(t, cfg, freePolicy{})
	app := randomApp(4, 300, 11)
	for i := 0; i < 300; i++ {
		for p := 0; p < 4; p++ {
			m.doRef(p, app.Phases[0][p][i])
		}
		if err := m.invariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
