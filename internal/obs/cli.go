package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"informing/internal/stats"
)

// Flags is the shared observability flag set of the bench/sim commands
// (internal/prof-style plumbing): register before flag.Parse, Start after.
//
//	-metrics            collect the simulator metrics registry, print it
//	                    as JSON on exit (stderr, so tables stay clean)
//	-trace-out file     stream sampled TraceEvents as JSONL (- = stdout)
//	-trace-sample N     emit one trace event per N graduated instructions
//	-http addr          serve GET /metrics live (":0" = ephemeral port)
//	-progress dur       print a progress line every dur (e.g. 2s)
type Flags struct {
	metrics     *bool
	traceOut    *string
	traceSample *int
	httpAddr    *string
	progress    *time.Duration
}

// RegisterFlags adds the observability flags to the default flag set.
// Call before flag.Parse.
func RegisterFlags() *Flags {
	return &Flags{
		metrics:     flag.Bool("metrics", false, "collect live metrics and print the registry JSON on exit (stderr)"),
		traceOut:    flag.String("trace-out", "", "write sampled per-instruction trace events to `file` as JSONL (- = stdout)"),
		traceSample: flag.Int("trace-sample", 1, "keep one trace event per `N` graduated instructions"),
		httpAddr:    flag.String("http", "", "serve live metrics on `addr` (GET /metrics; \":0\" picks a port)"),
		progress:    flag.Duration("progress", 0, "print a progress line (instrs/sec, IPC, miss rate) every `interval`"),
	}
}

// Session is the running observability state built from the flags. The
// zero-cost contract: when no observability flag is given, Sim is nil and
// Trace returns nil, so the engines keep their fully disabled hot path.
//
// Close is idempotent and must run on EVERY exit path, including error
// exits and govern aborts — it is the single place the trace sink is
// flushed, so skipping it on an abort loses the buffered tail of the
// trace (the bug this layer exists to fix). Use CloseThenExit where the
// command would call os.Exit.
type Session struct {
	// Sim is the live metric bundle, nil when metrics, progress and the
	// HTTP endpoint are all disabled.
	Sim *Sim

	sink         Sink
	traceEvery   uint64
	printMetrics bool
	errw         io.Writer

	httpSrv      *Server
	stopProgress func()

	closeOnce sync.Once
	closeErr  error
}

// Start materialises the session: opens the trace sink, binds the HTTP
// endpoint, and launches the progress reporter. Diagnostics (progress
// lines, the metrics dump, the bound HTTP address) go to errw so the
// commands' stdout tables remain byte-identical with observability on.
func (f *Flags) Start(errw io.Writer) (*Session, error) {
	if errw == nil {
		errw = os.Stderr
	}
	s := &Session{errw: errw, printMetrics: *f.metrics}
	if *f.metrics || *f.httpAddr != "" || *f.progress > 0 {
		s.Sim = NewSim()
	}
	if *f.traceOut != "" {
		var w io.Writer = os.Stdout
		if *f.traceOut != "-" {
			file, err := os.Create(*f.traceOut)
			if err != nil {
				return nil, fmt.Errorf("obs: %w", err)
			}
			w = file
		}
		// Sampling happens at the source (TraceEvery), so the sink keeps
		// everything it is offered; the sink-side sampler stays at 1.
		s.sink = NewJSONL(w, 1)
		s.traceEvery = 1
		if *f.traceSample > 1 {
			s.traceEvery = uint64(*f.traceSample)
		}
	}
	if *f.httpAddr != "" {
		srv, err := Serve(*f.httpAddr, s.Sim.Reg)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.httpSrv = srv
		fmt.Fprintf(errw, "obs: serving /metrics on http://%s\n", srv.Addr())
	}
	if *f.progress > 0 {
		s.stopProgress = StartProgress(errw, s.Sim, *f.progress)
	}
	return s, nil
}

// Trace returns the per-instruction trace callback to install on the
// engine configuration, or nil when tracing is disabled.
func (s *Session) Trace() func(stats.TraceEvent) {
	if s.sink == nil {
		return nil
	}
	return s.sink.Emit
}

// TraceEvery returns the source-side sampling interval for the engines'
// TraceEvery knob (0 when tracing is disabled: the engines then never
// construct an event at all).
func (s *Session) TraceEvery() uint64 { return s.traceEvery }

// Enabled reports whether any observability feature is active.
func (s *Session) Enabled() bool { return s.Sim != nil || s.sink != nil }

// Close stops the progress reporter, shuts the HTTP endpoint, flushes and
// closes the trace sink, and — when -metrics was given — prints the
// registry JSON. Idempotent; always returns the first error observed.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		if s.stopProgress != nil {
			s.stopProgress()
		}
		if s.httpSrv != nil {
			if err := s.httpSrv.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.sink != nil {
			if err := s.sink.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.printMetrics && s.Sim != nil {
			fmt.Fprintln(s.errw, "obs: metrics registry:")
			if err := s.Sim.Reg.WriteJSON(s.errw); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// CloseThenExit closes the session (reporting any close error) and exits
// with code. Commands use it on error paths so a govern abort or SIGINT
// still flushes the partial trace and prints the metrics collected so
// far — the observability analogue of prof.StopThenExit.
func (s *Session) CloseThenExit(code int) {
	if err := s.Close(); err != nil {
		fmt.Fprintf(s.errw, "obs: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
