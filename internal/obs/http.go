package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is the live-introspection HTTP endpoint: GET /metrics returns
// the registry snapshot as JSON (expvar-style, but with deterministic key
// order and typed histogram cells). Because every metric cell is atomic,
// the endpoint reads a running simulation without synchronising with it.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "localhost:6060" or ":0" for an ephemeral port)
// and serves reg until Close. The bound address is available via Addr —
// callers print it so ":0" users can find the port.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: http: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "informing simulator observability endpoint; see /metrics")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
