// Package obs is the observability layer of the simulator: a metrics
// registry with allocation-free counters and fixed-bucket histograms,
// trace sinks layered on stats.TraceEvent (a bounded sampling ring and a
// streaming JSONL writer), an optional HTTP endpoint for live
// introspection, and periodic progress reporting. The paper is about
// *memory performance feedback*; this package is the same idea applied to
// the simulator itself — ask a running simulation "what is the
// miss-latency distribution right now?" without writing ad-hoc code.
//
// The overhead contract (DESIGN.md §11) is strict in one direction: with
// observability disabled (a nil *Sim handle, a nil trace callback) the
// engines' per-instruction hot path must stay allocation-free and within
// noise of the recorded BENCH_hotpath.json numbers. With metrics and
// 1-in-N trace sampling enabled the engines pay a handful of atomic adds
// per instruction — bounded, measured, and proven not to change a single
// measured statistic (see TestObsNeverChangesStats in internal/core).
//
// All counters and histogram cells are updated with atomic operations so
// the HTTP endpoint and the progress reporter can read a live simulation
// from another goroutine, and so parallel experiment sweeps
// (internal/sched) can share one registry across workers and report
// aggregate figures.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or gauge-style, via Store)
// metric cell. The zero value is ready to use; all methods are
// allocation-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value (gauge use, e.g. the current cycle).
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket distribution: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket. Bounds are fixed at construction so Observe is
// allocation-free; cells are atomic for concurrent readers.
type Histogram struct {
	bounds []int64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Uint64
	sum    atomic.Int64
	n      atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. It panics on empty or non-ascending bounds — bucket layouts are
// static program data, not runtime input.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Bucket is one exported histogram cell; Le is math.MaxInt64 for the
// overflow bucket.
type Bucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// Buckets returns a snapshot of the cells in bound order.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = Bucket{Le: le, Count: h.counts[i].Load()}
	}
	return out
}

// Registry is a named collection of counters and histograms. Lookups are
// mutex-guarded and intended for setup/export only; hot loops hold the
// returned *Counter / *Histogram handles directly (see Sim).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with bounds on first
// use. Re-registering an existing name returns the existing histogram
// (the bounds argument is ignored then).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// histExport is the JSON shape of one histogram.
type histExport struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns a stable-ordered, JSON-marshalable view of every
// metric: counter names map to values, histogram names to their cells.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := map[string]uint64{}
	for name, c := range r.counters {
		counters[name] = c.Load()
	}
	hists := map[string]histExport{}
	for name, h := range r.histograms {
		hists[name] = histExport{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Buckets: h.Buckets()}
	}
	return map[string]any{"counters": counters, "histograms": hists}
}

// WriteJSON writes the registry snapshot as indented JSON with
// deterministically ordered keys (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// Names returns every registered metric name, sorted (counters and
// histograms together).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
