package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"informing/internal/isa"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	c.Store(7)
	if got := c.Load(); got != 7 {
		t.Errorf("after Store, counter = %d, want 7", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("concurrent increments lost: %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{2, 8, 32})
	for _, v := range []int64{1, 2, 3, 8, 9, 32, 33, 1000} {
		h.Observe(v)
	}
	// 1,2 -> le=2; 3,8 -> le=8; 9,32 -> le=32; 33,1000 -> overflow.
	b := h.Buckets()
	wantCounts := []uint64{2, 2, 2, 2}
	wantLe := []int64{2, 8, 32, math.MaxInt64}
	if len(b) != len(wantCounts) {
		t.Fatalf("bucket count %d, want %d", len(b), len(wantCounts))
	}
	for i := range b {
		if b[i].Count != wantCounts[i] || b[i].Le != wantLe[i] {
			t.Errorf("bucket %d = {le=%d n=%d}, want {le=%d n=%d}",
				i, b[i].Le, b[i].Count, wantLe[i], wantCounts[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count %d, want 8", h.Count())
	}
	if want := int64(1 + 2 + 3 + 8 + 9 + 32 + 33 + 1000); h.Sum() != want {
		t.Errorf("sum %d, want %d", h.Sum(), want)
	}
	if got, want := h.Mean(), float64(1088)/8; got != want {
		t.Errorf("mean %f, want %f", got, want)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {4, 4}, {8, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryCreateOnFirstUse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Inc()
	if c2 := r.Counter("a"); c2 != c1 {
		t.Error("second Counter lookup returned a different cell")
	}
	h1 := r.Histogram("h", []int64{1, 2})
	if h2 := r.Histogram("h", []int64{99}); h2 != h1 {
		t.Error("second Histogram lookup returned a different cell")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "h" {
		t.Errorf("Names() = %v, want [a h]", names)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("instrs").Add(100)
	r.Histogram("lat", []int64{4, 16}).Observe(5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count   uint64   `json:"count"`
			Sum     int64    `json:"sum"`
			Mean    float64  `json:"mean"`
			Buckets []Bucket `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Counters["instrs"] != 100 {
		t.Errorf("counters[instrs] = %d, want 100", got.Counters["instrs"])
	}
	lat := got.Histograms["lat"]
	if lat.Count != 1 || lat.Sum != 5 || len(lat.Buckets) != 3 {
		t.Errorf("histograms[lat] = %+v", lat)
	}
}

func TestSimMetricsRegistered(t *testing.T) {
	s := NewSim()
	for _, name := range []string{MetricInstrs, MetricCycles, MetricTraps,
		MetricRefsLevel + "1", MetricRefsLevel + "3"} {
		found := false
		for _, n := range s.Reg.Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("metric %q not registered", name)
		}
	}
	// One issue-stall counter per opcode, resolvable by the exported name.
	for op := 0; op < isa.NumOps; op++ {
		if s.IssueStalls[op] == nil {
			t.Fatalf("IssueStalls[%v] is nil", isa.Op(op))
		}
	}

	s.Level(1)
	s.Level(2)
	s.Level(3)
	s.Level(3)
	if got := s.MissRate(); got != 0.75 {
		t.Errorf("miss rate %f, want 0.75", got)
	}
	s.Level(-1)
	s.Level(99)
	if got := s.Levels[0].Load(); got != 2 {
		t.Errorf("out-of-range levels landed in spill cell %d times, want 2", got)
	}
}

func TestProgressReporter(t *testing.T) {
	s := NewSim()
	s.Instrs.Add(4000)
	s.Cycles.Add(2000)
	s.Levels[1].Add(90)
	s.Levels[2].Add(10)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(w, s, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "obs: instrs=") || !strings.Contains(out, "l1-miss=10.00%") {
		t.Errorf("progress line %q missing expected fields", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHTTPEndpoint(t *testing.T) {
	s := NewSim()
	s.Instrs.Add(123)
	srv, err := Serve("127.0.0.1:0", s.Reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics body not JSON: %v", err)
	}
	if !strings.Contains(string(body), `"sim_instrs": 123`) {
		t.Errorf("/metrics missing sim_instrs: %s", body)
	}
}
