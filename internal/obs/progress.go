package obs

import (
	"fmt"
	"io"
	"time"
)

// StartProgress launches a goroutine that prints one progress line to w
// every interval — instructions retired, retirement rate, IPC and the
// primary miss rate, all read live from the engine-updated counters. The
// returned stop function terminates the reporter and waits for it to
// finish; it is safe to call more than once.
//
// Rates are computed over the reporting interval (not since start), so
// phase changes in a long run are visible as they happen.
func StartProgress(w io.Writer, sim *Sim, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		prevInstrs := sim.Instrs.Load()
		prevCycles := sim.Cycles.Load()
		prev := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				instrs := sim.Instrs.Load()
				cycles := sim.Cycles.Load()
				dt := now.Sub(prev).Seconds()
				if dt <= 0 {
					dt = every.Seconds()
				}
				rate := float64(instrs-prevInstrs) / dt
				ipc := 0.0
				if dc := cycles - prevCycles; dc > 0 {
					ipc = float64(instrs-prevInstrs) / float64(dc)
				}
				fmt.Fprintf(w, "obs: instrs=%s (%s/s) ipc=%.2f l1-miss=%.2f%% traps=%d\n",
					human(instrs), human(uint64(rate)), ipc, 100*sim.MissRate(), sim.Traps.Load())
				prevInstrs, prevCycles, prev = instrs, cycles, now
			}
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-finished
	}
}

// human renders a count with a k/M/G suffix for progress lines.
func human(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}
