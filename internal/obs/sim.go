package obs

import (
	"fmt"

	"informing/internal/isa"
	"informing/internal/stats"
)

// Canonical metric names registered by NewSim. The per-opcode issue-stall
// counters are named "sim_issue_stall_cycles:<opcode>".
const (
	MetricInstrs      = "sim_instrs"
	MetricCycles      = "sim_cycles"
	MetricTraps       = "sim_traps"
	MetricRefsLevel   = "sim_refs_level" // + "1".."3"
	MetricMissLatency = "sim_miss_latency_cycles"
	MetricTrapLatency = "sim_trap_latency_cycles"
	MetricHandlerOcc  = "sim_handler_instrs"
	MetricIssueStall  = "sim_issue_stall_cycles"
	MetricMissClass   = "sim_miss_class_l" // + level + ":" + class name
)

// MissClassNames indexes the miss-taxonomy counters (DESIGN.md §17); the
// order matches the TaxL1/TaxL2 arrays and stats.MissClasses' fields.
var MissClassNames = [4]string{"compulsory", "capacity", "conflict", "coherence"}

// latencyBounds covers the cycle latencies the Table 1 machines can
// produce: L1 hits (2), L2 hits (11-12), memory (50-75) and MSHR/bank
// queueing tails beyond that.
var latencyBounds = []int64{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// occupancyBounds covers handler lengths: the experiments use 1-, 10- and
// 100-instruction handler bodies.
var occupancyBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Sim bundles the pre-resolved metric handles the engine loops touch, so
// the per-instruction cost of enabled metrics is a few atomic adds and
// never a registry lookup. A nil *Sim disables everything: the engines
// nil-check the handle once per site, keeping the disabled hot path
// allocation-free and branch-cheap (the PR 3 contract).
//
// Counter semantics (shared across internal/ooo, internal/inorder and
// internal/multi; aggregate across workers in parallel sweeps):
//
//   - Instrs: graduated (retired) instructions, or references in multi;
//   - Cycles: simulated cycles, accumulated as deltas so parallel sweeps
//     aggregate total simulated cycles (IPC = Instrs/Cycles stays a
//     meaningful average);
//   - Traps: informing trap entries;
//   - Levels[1..3]: data references by satisfying hierarchy level,
//     counted where the architectural probe resolves (mem.Hierarchy for
//     the timing cores, the private cache pair in multi);
//   - MissLatency: issue-to-complete cycles of loads that missed L1;
//   - TrapLatency: issue-to-retire cycles of the trapping reference (the
//     pipeline cost of the trap redirect, DESIGN.md §11);
//   - HandlerOcc: dynamic instructions per miss-handler episode (trap
//     entry to RFMH);
//   - IssueStalls[op]: cycles lost waiting to issue, charged to the
//     oldest blocked opcode (ooo) or the stalled instruction (inorder).
type Sim struct {
	Reg *Registry

	Instrs *Counter
	Cycles *Counter
	Traps  *Counter

	Levels      [4]*Counter // [0] unused; [1]=L1 hit, [2]=L2 hit, [3]=memory
	MissLatency *Histogram
	TrapLatency *Histogram
	HandlerOcc  *Histogram
	IssueStalls [isa.NumOps]*Counter

	// TaxL1/TaxL2 are the per-level miss-taxonomy counters, indexed by
	// MissClassNames order (compulsory, capacity, conflict, coherence);
	// fed as deltas by mem.Hierarchy.FlushObs and internal/multi.
	TaxL1 [4]*Counter
	TaxL2 [4]*Counter
}

// NewSim builds a registry pre-populated with every simulator metric and
// returns the resolved handle bundle.
func NewSim() *Sim {
	reg := NewRegistry()
	s := &Sim{
		Reg:         reg,
		Instrs:      reg.Counter(MetricInstrs),
		Cycles:      reg.Counter(MetricCycles),
		Traps:       reg.Counter(MetricTraps),
		MissLatency: reg.Histogram(MetricMissLatency, latencyBounds),
		TrapLatency: reg.Histogram(MetricTrapLatency, latencyBounds),
		HandlerOcc:  reg.Histogram(MetricHandlerOcc, occupancyBounds),
	}
	for lvl := 1; lvl < len(s.Levels); lvl++ {
		s.Levels[lvl] = reg.Counter(fmt.Sprintf("%s%d", MetricRefsLevel, lvl))
	}
	// Level 0 is "non-memory / out of range": a live cell rather than a
	// nil deref if an engine ever feeds an unexpected level.
	s.Levels[0] = reg.Counter(MetricRefsLevel + "0")
	for op := 0; op < isa.NumOps; op++ {
		s.IssueStalls[op] = reg.Counter(fmt.Sprintf("%s:%v", MetricIssueStall, isa.Op(op)))
	}
	for i, name := range MissClassNames {
		s.TaxL1[i] = reg.Counter(fmt.Sprintf("%s1:%s", MetricMissClass, name))
		s.TaxL2[i] = reg.Counter(fmt.Sprintf("%s2:%s", MetricMissClass, name))
	}
	return s
}

// AddMissClasses accumulates a per-class miss delta for hierarchy level
// lvl (1 = L1, 2 = L2); other levels are ignored. The four counts are
// passed in MissClassNames order.
func (s *Sim) AddMissClasses(lvl int, d stats.MissClasses) {
	var tax *[4]*Counter
	switch lvl {
	case 1:
		tax = &s.TaxL1
	case 2:
		tax = &s.TaxL2
	default:
		return
	}
	tax[0].Add(d.Compulsory)
	tax[1].Add(d.Capacity)
	tax[2].Add(d.Conflict)
	tax[3].Add(d.Coherence)
}

// Level counts one data reference resolved at hierarchy level lvl
// (1 = L1, 2 = L2, 3 = memory); out-of-range levels land in the spill
// cell instead of panicking.
func (s *Sim) Level(lvl int) {
	if lvl < 0 || lvl >= len(s.Levels) {
		lvl = 0
	}
	s.Levels[lvl].Inc()
}

// MissRate returns the fraction of counted references that missed the
// primary cache (levels 2 and 3 over all levels).
func (s *Sim) MissRate() float64 {
	l1 := s.Levels[1].Load()
	l2 := s.Levels[2].Load()
	mem := s.Levels[3].Load()
	total := l1 + l2 + mem
	if total == 0 {
		return 0
	}
	return float64(l2+mem) / float64(total)
}
