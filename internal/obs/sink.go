package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"

	"informing/internal/stats"
)

// Sink consumes per-instruction trace events. Emit must be safe for
// concurrent use: parallel experiment sweeps (internal/sched) funnel the
// trace streams of all workers into one sink. Flush forces buffered
// events out so an aborted run (govern.ErrBudget, ErrLivelock, SIGINT)
// still leaves a well-formed partial trace behind; Close implies Flush
// and is idempotent.
type Sink interface {
	Emit(ev stats.TraceEvent)
	Flush() error
	Close() error
}

// sampler implements deterministic 1-in-N keep-every-Nth sampling shared
// by the sinks. every <= 1 keeps everything.
type sampler struct {
	every uint64
	seen  uint64
}

func (s *sampler) keep() bool {
	if s.every <= 1 {
		return true
	}
	s.seen++
	if s.seen == s.every {
		s.seen = 0
		return true
	}
	return false
}

// RingSink keeps the most recent events in a bounded ring buffer with
// optional 1-in-N sampling: cheap enough to leave attached to a long run
// and inspect after the fact (or at abort). The buffer is allocated once
// at construction; Emit never allocates.
type RingSink struct {
	mu      sync.Mutex
	samp    sampler
	buf     []stats.TraceEvent
	next    int
	wrapped bool
	total   uint64 // events offered (pre-sampling)
	kept    uint64 // events written into the ring
}

// NewRing builds a ring sink holding the last capacity sampled events,
// keeping one event in every sampleEvery offered (<= 1 keeps all).
func NewRing(capacity int, sampleEvery int) (*RingSink, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("obs: ring capacity %d, want >= 1", capacity)
	}
	s := &RingSink{buf: make([]stats.TraceEvent, capacity)}
	if sampleEvery > 1 {
		s.samp.every = uint64(sampleEvery)
	}
	return s, nil
}

// Emit implements Sink.
func (r *RingSink) Emit(ev stats.TraceEvent) {
	r.mu.Lock()
	r.total++
	if r.samp.keep() {
		r.buf[r.next] = ev
		if r.next++; r.next == len(r.buf) {
			r.next = 0
			r.wrapped = true
		}
		r.kept++
	}
	r.mu.Unlock()
}

// Flush implements Sink (a ring has nothing buffered downstream).
func (r *RingSink) Flush() error { return nil }

// Close implements Sink.
func (r *RingSink) Close() error { return nil }

// Events returns the buffered events, oldest first.
func (r *RingSink) Events() []stats.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]stats.TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]stats.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Stats reports how many events were offered and how many were kept.
func (r *RingSink) Stats() (total, kept uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.kept
}

// traceJSON is the stable JSONL schema of one trace event
// (EXPERIMENTS.md documents it; cmd/tracecheck validates it).
// appendTraceJSON is the encoder — the struct exists as schema
// documentation and for tests that decode the stream.
//
// Schema v2 (DESIGN.md §16): memory instructions (level > 0) additionally
// carry addr and kind, and multiprocessor traces carry tid; all three are
// omitted otherwise, so v1 consumers keep validating unchanged and v1
// traces remain valid v2 traces (without being replayable).
type traceJSON struct {
	Seq      uint64 `json:"seq"`
	PC       string `json:"pc"` // hex, human-greppable
	Disasm   string `json:"disasm"`
	Fetch    int64  `json:"fetch"`
	Issue    int64  `json:"issue"`
	Complete int64  `json:"complete"`
	Graduate int64  `json:"graduate"`
	Level    int    `json:"level"`
	Addr     string `json:"addr,omitempty"` // hex effective address, memory ops only
	Kind     string `json:"kind,omitempty"` // "load" or "store", memory ops only
	Tid      int    `json:"tid,omitempty"`  // thread/processor id, 0 omitted
	Trap     bool   `json:"trap"`
}

// appendJSONString appends s as a JSON string literal. Disassembly text is
// plain ASCII in practice, so the fast path is a straight copy; quotes,
// backslashes, control characters and invalid UTF-8 get the standard
// escapes so the output always parses.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			b = append(b, c)
			i++
			continue
		}
		switch {
		case c == '"', c == '\\':
			b = append(b, '\\', c)
			i++
		case c < 0x20:
			const hex = "0123456789abcdef"
			switch c {
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			}
			i++
		default: // non-ASCII: validate the rune, re-encode as UTF-8
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, `�`...)
				i++
				continue
			}
			b = append(b, s[i:i+size]...)
			i += size
		}
	}
	return append(b, '"')
}

// appendTraceJSON appends one schema line (without trailing newline),
// field-for-field what encoding/json would produce for traceJSON —
// sink_test.go round-trips the stream through the struct to keep the two
// in agreement.
func appendTraceJSON(b []byte, ev *stats.TraceEvent) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"pc":"0x`...)
	b = strconv.AppendUint(b, ev.PC, 16)
	b = append(b, `","disasm":`...)
	b = appendJSONString(b, ev.Disasm)
	b = append(b, `,"fetch":`...)
	b = strconv.AppendInt(b, ev.Fetch, 10)
	b = append(b, `,"issue":`...)
	b = strconv.AppendInt(b, ev.Issue, 10)
	b = append(b, `,"complete":`...)
	b = strconv.AppendInt(b, ev.Complete, 10)
	b = append(b, `,"graduate":`...)
	b = strconv.AppendInt(b, ev.Graduate, 10)
	b = append(b, `,"level":`...)
	b = strconv.AppendInt(b, int64(ev.MemLevel), 10)
	if ev.MemLevel > 0 {
		b = append(b, `,"addr":"0x`...)
		b = strconv.AppendUint(b, ev.Addr, 16)
		if ev.Store {
			b = append(b, `","kind":"store"`...)
		} else {
			b = append(b, `","kind":"load"`...)
		}
	}
	if ev.Tid > 0 {
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.Tid), 10)
	}
	if ev.Trap {
		b = append(b, `,"trap":true}`...)
	} else {
		b = append(b, `,"trap":false}`...)
	}
	return b
}

// JSONLSink streams sampled trace events as one JSON object per line
// through a buffered writer. Events sit in the buffer until Flush/Close —
// which is exactly why every abort path must route through Flush (the
// satellite bug this layer fixes): without it a govern abort loses the
// tail of the trace.
type JSONLSink struct {
	mu      sync.Mutex
	samp    sampler
	bw      *bufio.Writer
	under   io.Writer
	scratch []byte // reused line-encoding buffer (guarded by mu)
	closed  bool
	err     error // first write error, surfaced by Flush/Close
}

// NewJSONL builds a JSONL sink writing to w, keeping one event in every
// sampleEvery offered (<= 1 keeps all). If w is an io.Closer, Close
// closes it after the final flush.
func NewJSONL(w io.Writer, sampleEvery int) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriterSize(w, 64<<10), under: w}
	if sampleEvery > 1 {
		s.samp.every = uint64(sampleEvery)
	}
	return s
}

// Emit implements Sink. The line is built with the allocation-free append
// encoder into a buffer reused across calls: with tracing enabled the sink
// is on the simulators' per-instruction path, and encoding/json here costs
// more than the whole §11 overhead budget.
func (s *JSONLSink) Emit(ev stats.TraceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil || !s.samp.keep() {
		return
	}
	s.scratch = appendTraceJSON(s.scratch[:0], &ev)
	s.scratch = append(s.scratch, '\n')
	if _, err := s.bw.Write(s.scratch); err != nil {
		s.err = err
	}
}

// Flush implements Sink: buffered lines reach the underlying writer. A
// partial trace flushed mid-run is still well-formed JSONL (events are
// written whole lines at a time through the buffer).
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *JSONLSink) flushLocked() error {
	if s.err != nil {
		return fmt.Errorf("obs: jsonl sink: %w", s.err)
	}
	if err := s.bw.Flush(); err != nil {
		s.err = err
		return fmt.Errorf("obs: jsonl sink: %w", err)
	}
	return nil
}

// Close implements Sink: flush, then close the underlying writer when it
// is an io.Closer. Idempotent.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.flushLocked()
	if c, ok := s.under.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("obs: jsonl sink: %w", cerr)
		}
	}
	return err
}

// Tee fans one trace stream out to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(ev stats.TraceEvent) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// Flush implements Sink, returning the first error.
func (t Tee) Flush() error {
	var first error
	for _, s := range t {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close implements Sink, closing every sink and returning the first
// error.
func (t Tee) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
