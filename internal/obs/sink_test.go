package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"

	"informing/internal/stats"
)

func ev(seq uint64) stats.TraceEvent {
	return stats.TraceEvent{Seq: seq, PC: 0x1000 + 4*seq, Disasm: "nop",
		Fetch: int64(seq), Issue: int64(seq) + 1, Complete: int64(seq) + 2, Graduate: int64(seq) + 3}
}

func TestRingSinkSampling(t *testing.T) {
	r, err := NewRing(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 12; i++ {
		r.Emit(ev(i))
	}
	total, kept := r.Stats()
	if total != 12 || kept != 4 {
		t.Errorf("stats = (%d, %d), want (12, 4)", total, kept)
	}
	// keep-every-3rd keeps seqs 2, 5, 8, 11.
	got := r.Events()
	want := []uint64{2, 5, 8, 11}
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i] {
			t.Errorf("event %d seq = %d, want %d", i, got[i].Seq, want[i])
		}
	}
}

func TestRingSinkWrapOldestFirst(t *testing.T) {
	r, err := NewRing(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		r.Emit(ev(i))
	}
	got := r.Events()
	want := []uint64{2, 3, 4}
	if len(got) != 3 {
		t.Fatalf("%d events, want 3", len(got))
	}
	for i := range got {
		if got[i].Seq != want[i] {
			t.Errorf("event %d seq = %d, want %d (oldest first)", i, got[i].Seq, want[i])
		}
	}
}

func TestRingSinkRejectsBadCapacity(t *testing.T) {
	if _, err := NewRing(0, 1); err == nil {
		t.Error("NewRing(0, 1) did not error")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf, 2)
	for i := uint64(0); i < 6; i++ {
		s.Emit(ev(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Seq uint64 `json:"seq"`
			PC  string `json:"pc"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if !strings.HasPrefix(line.PC, "0x") {
			t.Errorf("pc %q not hex-formatted", line.PC)
		}
		seqs = append(seqs, line.Seq)
	}
	want := []uint64{1, 3, 5}
	if len(seqs) != len(want) {
		t.Fatalf("seqs %v, want %v", seqs, want)
	}
	for i := range seqs {
		if seqs[i] != want[i] {
			t.Fatalf("seqs %v, want %v", seqs, want)
		}
	}
}

// The abort-flush property: events buffered before a mid-run Flush are
// complete lines on the underlying writer — a run killed after Flush
// leaves well-formed partial JSONL behind, never a torn line.
func TestJSONLSinkFlushMidRun(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf, 1)
	for i := uint64(0); i < 100; i++ {
		s.Emit(ev(i))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("partial trace has malformed line: %q", line)
		}
		n++
	}
	if n != 100 {
		t.Errorf("flushed %d lines, want 100", n)
	}
	// Emitting after Flush then Closing appends the rest.
	s.Emit(ev(100))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 101 {
		t.Errorf("final trace has %d lines, want 101", got)
	}
}

type closeCounter struct {
	bytes.Buffer
	closed int
}

func (c *closeCounter) Close() error { c.closed++; return nil }

func TestJSONLSinkCloseIdempotentAndClosesUnder(t *testing.T) {
	var cc closeCounter
	s := NewJSONL(&cc, 1)
	s.Emit(ev(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if cc.closed != 1 {
		t.Errorf("underlying writer closed %d times, want 1", cc.closed)
	}
	before := cc.Len()
	s.Emit(ev(1)) // after Close: dropped, not a panic or a write
	if cc.Len() != before {
		t.Error("Emit after Close wrote data")
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestJSONLSinkStickyWriteError(t *testing.T) {
	werr := errors.New("disk full")
	s := NewJSONL(&failWriter{err: werr}, 1)
	// Overflow the 64 KB buffer so a write actually reaches the writer.
	big := ev(0)
	big.Disasm = strings.Repeat("x", 1<<10)
	for i := 0; i < 100; i++ {
		s.Emit(big)
	}
	if err := s.Flush(); !errors.Is(err, werr) {
		t.Errorf("Flush error = %v, want wrapped %v", err, werr)
	}
}

func TestTee(t *testing.T) {
	r1, _ := NewRing(8, 1)
	r2, _ := NewRing(8, 1)
	tee := Tee{r1, r2}
	tee.Emit(ev(0))
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if len(r1.Events()) != 1 || len(r2.Events()) != 1 {
		t.Error("tee did not fan out to both sinks")
	}
}

// TestAppendTraceJSONMatchesEncodingJSON pins the hand-rolled line encoder
// to the traceJSON schema struct: for every event — including disassembly
// text with quotes, backslashes, control characters and invalid UTF-8 —
// the appended bytes must decode to the same struct encoding/json would
// have produced, and must themselves be what encoding/json emits whenever
// the text needs no escaping beyond the standard set.
func TestAppendTraceJSONMatchesEncodingJSON(t *testing.T) {
	events := []stats.TraceEvent{
		{Seq: 0, PC: 0, Disasm: "nop"},
		{Seq: 7, PC: 0x1030, Disasm: "addi r2, r2, 512",
			Fetch: 34, Issue: 37, Complete: 38, Graduate: 93},
		{Seq: 1 << 40, PC: 0xdeadbeef, Disasm: `say "hi" \ there`,
			Fetch: -1, Issue: 2, Complete: 3, Graduate: 4, MemLevel: 3,
			Addr: 0x20c0ffee, Trap: true},
		{Seq: 2, PC: 4, Disasm: "tab\tnl\nctl\x01end", MemLevel: 1, Addr: 0x2000},
		{Seq: 3, PC: 8, Disasm: "bad\xffutf8 oké"},
		// Schema v2: a store and a multiprocessor (tid > 0) reference.
		{Seq: 4, PC: 0x100c, Disasm: "st r1, 0(r2)",
			Fetch: 1, Issue: 2, Complete: 3, Graduate: 5, MemLevel: 2,
			Addr: 0x3008, Store: true},
		{Seq: 5, PC: 0x1010, Disasm: "ld r3, 8(r4)",
			Fetch: 2, Issue: 3, Complete: 4, Graduate: 6, MemLevel: 1,
			Addr: 0x4010, Tid: 3},
		// Store/Addr on a non-memory event must not leak onto the wire.
		{Seq: 6, PC: 0x1014, Disasm: "add r1, r2, r3", Addr: 0xbad, Store: true},
	}
	for _, e := range events {
		got := string(appendTraceJSON(nil, &e))
		var dec traceJSON
		if err := json.Unmarshal([]byte(got), &dec); err != nil {
			t.Fatalf("seq %d: encoder output does not parse: %v\n%s", e.Seq, err, got)
		}
		want := traceJSON{
			Seq: e.Seq, PC: "0x" + strconv.FormatUint(e.PC, 16),
			Disasm: strings.ToValidUTF8(e.Disasm, "�"),
			Fetch:  e.Fetch, Issue: e.Issue, Complete: e.Complete,
			Graduate: e.Graduate, Level: e.MemLevel, Trap: e.Trap,
		}
		if e.MemLevel > 0 {
			want.Addr = "0x" + strconv.FormatUint(e.Addr, 16)
			want.Kind = "load"
			if e.Store {
				want.Kind = "store"
			}
		}
		if e.Tid > 0 {
			want.Tid = e.Tid
		}
		if dec != want {
			t.Errorf("seq %d: decoded %+v, want %+v", e.Seq, dec, want)
		}
		ref, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.ContainsAny(e.Disasm, "\x01\xff") && got != string(ref) {
			t.Errorf("seq %d: encoder bytes differ from encoding/json:\n got %s\nwant %s", e.Seq, got, ref)
		}
	}
}

func BenchmarkJSONLEmit(b *testing.B) {
	s := NewJSONL(io.Discard, 1)
	e := ev(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(e)
	}
}
