// Package ooo implements the paper's out-of-order-issue machine model,
// patterned on the MIPS R10000 (§3.2 and Table 1): register renaming, a
// 32-entry reorder buffer, 4-wide fetch and graduation, a limited pool of
// branch shadow states, 2-bit-counter branch prediction, and a lockup-free
// two-level memory system.
//
// Informing memory operations are supported in all three architectural
// modes, and for the low-overhead trap the two hardware strategies the
// paper compares are both modelled:
//
//   - TrapAsBranch: the reference is treated as a reference-plus-branch
//     predicted not-taken; on a miss the handler is fetched as soon as the
//     tag check resolves (fast, but informing references consume branch
//     shadow state);
//   - TrapAsException: the trap is deferred until the reference reaches
//     the head of the graduation queue, then the machine is flushed
//     (slower — the paper reports 7–9% on compress — but cheaper hardware).
package ooo

import (
	"fmt"

	"informing/internal/bpred"
	"informing/internal/faults"
	"informing/internal/govern"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/obs"
	"informing/internal/stats"
)

// TrapMode selects how a miss trap is realised in the pipeline (§3.2).
type TrapMode uint8

const (
	TrapAsBranch TrapMode = iota
	TrapAsException
)

func (t TrapMode) String() string {
	if t == TrapAsException {
		return "exception"
	}
	return "branch"
}

// Config parameterises the machine. DefaultConfig returns the paper's
// Table 1 out-of-order column.
type Config struct {
	IssueWidth int // per-cycle issue cap (also fetch and graduation width)
	Units      [isa.NumFUClasses]int
	ROBSize    int

	// ShadowStates bounds the number of unresolved predicted branches in
	// flight (the R10000 allows 4). In TrapAsBranch mode informing
	// memory references also consume shadow state until their tag check
	// resolves; the paper estimates ~3x more shadow state is needed,
	// hence DefaultConfig uses 12 when informing ops are enabled (see
	// the ablation bench).
	ShadowStates int

	FrontDepth      int64 // fetch-to-issue minimum (rename/dispatch depth)
	TakenBubble     int64 // bubble after a correctly-predicted taken branch
	MispredictExtra int64 // extra refetch delay after a branch resolves wrong
	FlushPenalty    int64 // pipeline refill after an exception-style flush

	Lat    isa.LatencyTable
	Hier   mem.HierConfig
	Timing mem.TimingConfig

	// ICache models the primary instruction cache (Table 1); a zero
	// SizeBytes disables it. Misses stall the fetcher for the L2
	// latency.
	ICache mem.CacheConfig

	BPredEntries int
	Mode         interp.Mode
	Trap         TrapMode

	// TrapThreshold selects which misses trap (interp.LevelL1 = any
	// primary miss, the default; interp.LevelL2 = secondary misses only,
	// the §4.1.3 refinement).
	TrapThreshold int

	// FlushEvery, when non-zero, flushes the L1 data cache every N
	// memory references, modelling context switches: the paper's §3.3
	// point that cache state — and therefore trap counts — is not a
	// deterministic function of the program, while architectural results
	// are unaffected.
	FlushEvery uint64

	// ExtendMSHRLifetime enables the §3.3 mechanism: MSHRs persist until
	// the owning memory operation graduates or is squashed.
	ExtendMSHRLifetime bool

	// SpecInjectEvery, when non-zero, injects one squashed speculative
	// informing load per N committed memory references, exercising the
	// §3.3 invalidation path (the scheduler itself never runs wrong-path
	// instructions; see DESIGN.md §6). The injected load targets the
	// reference's address plus SpecInjectStride. Injection interleaves
	// core-driven probe traffic with the functional machine's own, so it
	// forces the per-instruction front end (no block execute-ahead).
	SpecInjectEvery  int
	SpecInjectStride uint64

	// DisableBlockKernel turns off the block-compiled execution kernel
	// (DESIGN.md §14): the functional front end steps one instruction per
	// fetch instead of replaying basic blocks ahead of the core. Results
	// are bit-identical either way (the golden grid and the differential
	// fuzz suite pin this); the switch exists for A/B benchmarking and as
	// a diagnostic lane.
	DisableBlockKernel bool

	// MaxInsts bounds the dynamic instruction count (0 =
	// govern.DefaultBudget). Exhausting it returns an error wrapping
	// govern.ErrBudget (and interp.ErrLimit).
	MaxInsts uint64

	// Govern supplies the run-governor policy: context cancellation, a
	// livelock watchdog, and (when its MaxInsts is set) the instruction
	// budget. The zero value uses the govern package defaults; a zero
	// Govern.MaxInsts falls back to Config.MaxInsts.
	Govern govern.Config

	// Faults, when non-nil, perturbs the run (see internal/faults):
	// architectural outcome flips apply on the probe path, latency
	// jitter at the memory-request site.
	Faults *faults.Injector

	// Trace, when non-nil, receives one TraceEvent per instruction in
	// graduation order (debugging/visualisation; adds overhead).
	Trace func(stats.TraceEvent)

	// TraceEvery samples the trace at the source: one TraceEvent per N
	// graduated instructions (0 or 1 = every instruction). Source-side
	// sampling skips event construction entirely — including the
	// disassembly string — so a 1-in-64 sampled trace costs a counter
	// decrement per instruction, not an allocation (DESIGN.md §11).
	TraceEvery uint64

	// Obs, when non-nil, receives live metrics (instruction/cycle/trap
	// counters, miss- and trap-latency histograms, handler occupancy,
	// per-opcode issue stalls; see obs.Sim). A nil Obs costs only
	// nil-checks: the disabled hot path stays allocation-free.
	Obs *obs.Sim
}

// DefaultConfig returns the Table 1 out-of-order machine: 4-wide, 32-entry
// reorder buffer, 2 INT / 2 FP / 1 branch / 1 memory unit, 32 KB 2-way L1,
// 2 MB 2-way L2, 12-cycle L2 latency, 75-cycle memory latency.
func DefaultConfig() Config {
	return Config{
		IssueWidth:      4,
		Units:           [isa.NumFUClasses]int{isa.FUInt: 2, isa.FUFP: 2, isa.FUBranch: 1, isa.FUMem: 1},
		ROBSize:         32,
		ShadowStates:    12,
		FrontDepth:      3,
		TakenBubble:     1,
		MispredictExtra: 1,
		FlushPenalty:    2,
		Lat: isa.LatencyTable{
			IntMul: 12, IntDiv: 76, FPDiv: 15, FPSqrt: 20, FPOther: 2,
			IntALU: 1, Branch: 1,
		},
		Hier: mem.HierConfig{
			L1: mem.CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
			L2: mem.CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Assoc: 2},
		},
		ICache: mem.CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
		Timing: mem.TimingConfig{
			L1HitLat: 2, L2Lat: 12, MemLat: 75,
			MSHRs: 8, Banks: 2, FillTime: 4, MemInterval: 20, LineBytes: 32,
		},
		BPredEntries: bpred.DefaultEntries,
		Mode:         interp.ModeOff,
		Trap:         TrapAsBranch,
	}
}

type producer struct {
	idx int
	seq uint64
	set bool
}

type robEntry struct {
	rec     interp.Rec
	st      *isa.Static // predecoded classification of rec.Inst (never nil)
	fu      isa.FUClass
	srcs    [3]producer // register producers (up to 2) + CC producer for BMISS
	nsrc    int
	fetchC  int64
	issueC  int64
	tagC    int64 // memory tag-check resolution time
	compC   int64 // data/result available
	gradC   int64
	issued  bool
	grad    bool
	shadow  bool // currently consumes branch shadow state
	isMiss  bool // memory op that missed in L1
	memAddr uint64

	// Doubly-linked list of unissued entries in dispatch (age) order, so
	// the issue stage scans only candidates instead of walking the whole
	// reorder buffer past already-issued entries. -1 terminates.
	nextUn, prevUn int32
}

type fetchStallKind uint8

const (
	stallNone fetchStallKind = iota
	stallExec                // resume after entry completes (+MispredictExtra)
	stallTag                 // resume after entry's tag check (+MispredictExtra)
	stallGrad                // resume after entry graduates (+FlushPenalty)
)

// obsFlushEvery is the cadence (in cycles, power of two) at which batched
// observability counters are pushed to the shared atomic registry. Every
// exit path flushes too, so totals are exact; between flushes live readers
// lag by at most this many cycles of work.
const obsFlushEvery = 4096

// Run simulates prog to completion and returns the measured statistics.
func Run(prog *isa.Program, cfg Config) (stats.Run, error) {
	r, _, err := RunDetailed(prog, cfg)
	return r, err
}

// RunDetailed is Run but also returns the functional machine, giving
// callers access to the final architectural state (registers, data memory,
// MHAR/MHRR) — used by the examples and by differential tests.
func RunDetailed(prog *isa.Program, cfg Config) (stats.Run, *interp.Machine, error) {
	hier, err := mem.NewHierarchy(cfg.Hier)
	if err != nil {
		return stats.Run{}, nil, fmt.Errorf("ooo: %w", err)
	}
	hier.Obs = cfg.Obs
	var icache *mem.Cache
	if cfg.ICache.SizeBytes > 0 {
		if icache, err = mem.NewCache(cfg.ICache); err != nil {
			return stats.Run{}, nil, fmt.Errorf("ooo: icache: %w", err)
		}
	}
	lastILine := ^uint64(0)
	probe := hier.ProbeData
	if cfg.FlushEvery > 0 {
		var refs uint64
		probe = func(addr uint64, write bool) int {
			refs++
			if refs%cfg.FlushEvery == 0 {
				hier.L1.Flush()
			}
			return hier.ProbeData(addr, write)
		}
	}
	m := interp.New(prog, cfg.Mode, probe)
	statics := m.Statics()
	m.TrapThreshold = cfg.TrapThreshold
	if cfg.Faults != nil {
		m.Faults = cfg.Faults
		cfg.Faults.SetLineBytes(uint64(cfg.Hier.L1.LineBytes))
	}
	timing, err := mem.NewTiming(cfg.Timing)
	if err != nil {
		return stats.Run{}, nil, fmt.Errorf("ooo: %w", err)
	}
	timing.ExtendLifetime = cfg.ExtendMSHRLifetime
	bp := bpred.New(cfg.BPredEntries)

	gc := cfg.Govern
	if gc.MaxInsts == 0 {
		gc.MaxInsts = cfg.MaxInsts
	}
	gov := govern.New(gc)

	// Per-opcode execution latencies, resolved once so the issue stage
	// indexes a flat table instead of re-deriving the latency per dynamic
	// instruction.
	var lat [isa.NumOps]int64
	for op := 0; op < isa.NumOps; op++ {
		lat[op] = int64(cfg.Lat.Latency(isa.Op(op)))
	}

	// Shadow-state occupancy is maintained incrementally instead of
	// rescanning the reorder buffer every fetch stage. A shadow entry is
	// live from dispatch until its resolve time passes: tag check for
	// memory operations, completion for branches. At issue the resolve
	// time becomes known and is at most max(lat) ∪ L1HitLat cycles ahead,
	// so the pending decrements fit a small power-of-two time wheel
	// advanced as the cycle counter increments. Resolve precedes
	// graduation (res ≤ compC < gradC), so reorder-buffer slot reuse can
	// never double-count: every decrement lands before its entry leaves.
	maxRes := int64(cfg.Timing.L1HitLat)
	for _, l := range lat {
		if l > maxRes {
			maxRes = l
		}
	}
	wheelLen := int64(1)
	for wheelLen <= maxRes+1 {
		wheelLen <<= 1
	}
	wheelMask := wheelLen - 1
	shadowWheel := make([]int32, wheelLen)
	shadowLive := 0

	rob := make([]robEntry, cfg.ROBSize)
	head, tail, count := 0, 0, 0

	// Unissued-entry list (age order): the issue stage walks this instead
	// of the whole reorder buffer. Entries join at dispatch and leave when
	// they issue; graduation only ever removes issued entries, so the list
	// needs no maintenance there.
	unHead, unTail := int32(-1), int32(-1)
	unlink := func(at int32) {
		e := &rob[at]
		if e.prevUn >= 0 {
			rob[e.prevUn].nextUn = e.nextUn
		} else {
			unHead = e.nextUn
		}
		if e.nextUn >= 0 {
			rob[e.nextUn].prevUn = e.prevUn
		} else {
			unTail = e.prevUn
		}
	}

	var regProd [isa.NumRegs]producer
	var ccProd producer

	var (
		cycle        int64
		fetchBlocked int64 // fetch may not run before this cycle
		stallKind    fetchStallKind
		stallIdx     int
		stallSeq     uint64

		out       stats.Run
		inHandler bool
		memSeen   int // committed memory refs, for SpecInjectEvery

		handlerLen int64 // instructions in the current handler episode
	)
	out.IssueWidth = cfg.IssueWidth

	limit := gov.Budget()

	sim := cfg.Obs
	traceEvery := cfg.TraceEvery
	if traceEvery == 0 {
		traceEvery = 1
	}
	traceLeft := traceEvery
	var disasms []string // per-static disassembly, built only when tracing
	if cfg.Trace != nil {
		disasms = m.Disasms()
	}

	// Instruction and cycle counts accumulate in plain locals and reach
	// the shared atomic cells in batches (obsFlushEvery cycles, plus every
	// exit path), bounding the enabled-metrics cost to well under the
	// DESIGN.md §11 budget while live readers stay at most a few thousand
	// cycles behind.
	var obsInstrs, obsCycles uint64
	var obsStalls [isa.NumOps]uint64
	flushObs := func() {
		if sim == nil {
			return
		}
		sim.Instrs.Add(obsInstrs)
		sim.Cycles.Add(obsCycles)
		obsInstrs, obsCycles = 0, 0
		for op, n := range obsStalls {
			if n != 0 {
				sim.IssueStalls[op].Add(n)
				obsStalls[op] = 0
			}
		}
		hier.FlushObs()
	}

	// abort wraps cause with a diagnostic snapshot of where the machine
	// was: the architectural PC, the cycle, reorder-buffer occupancy, the
	// oldest un-graduated instruction, and the statistics so far.
	abort := func(cause error) error {
		flushObs()
		snap := govern.Snapshot{
			PC: m.PC, Cycle: cycle, Seq: m.Seq,
			ROBOccupied: count,
			InHandler:   m.InHandler, MHAR: m.MHAR, MHRR: m.MHRR,
			Note: fmt.Sprintf("l1-misses=%d mshr-peak=%d", hier.L1Misses, timing.PeakInUse),
		}
		if count > 0 {
			snap.OldestInst = rob[head].rec.Inst.String()
		}
		snap.Partial = out
		snap.Partial.Cycles = cycle
		snap.Partial.DynInsts = m.Seq
		return govern.WithSnapshot(cause, snap)
	}

	// The functional front end runs ahead of the core through the block
	// feeder (see interp.BlockFeeder). Speculative injection interleaves
	// core-driven probe traffic with execution, so it forces the
	// per-instruction fill path, as does the explicit kernel switch.
	fe := interp.NewBlockFeeder(m, limit, cfg.DisableBlockKernel || cfg.SpecInjectEvery > 0)

	ready := func(p producer) bool {
		if !p.set {
			return true
		}
		e := &rob[p.idx]
		if e.rec.Seq != p.seq || e.grad {
			return true // producer already graduated; value long available
		}
		return e.issued && e.compC <= cycle
	}
	ccReady := func(p producer) bool {
		if !p.set {
			return true
		}
		e := &rob[p.idx]
		if e.rec.Seq != p.seq || e.grad {
			return true
		}
		return e.issued && e.tagC <= cycle
	}

	stallResolved := func() bool {
		switch stallKind {
		case stallNone:
			return true
		case stallExec:
			e := &rob[stallIdx]
			if e.rec.Seq != stallSeq {
				return true
			}
			return e.issued && cycle >= e.compC+1+cfg.MispredictExtra
		case stallTag:
			e := &rob[stallIdx]
			if e.rec.Seq != stallSeq {
				return true
			}
			return e.issued && cycle >= e.tagC+1+cfg.MispredictExtra
		case stallGrad:
			e := &rob[stallIdx]
			if e.rec.Seq != stallSeq {
				return true
			}
			return e.grad && cycle >= e.gradC+cfg.FlushPenalty
		}
		return true
	}

	for {
		// ---- graduation (uses results from previous cycles) ----------
		gradN := 0
		for count > 0 && gradN < cfg.IssueWidth {
			e := &rob[head]
			if !e.issued || e.compC > cycle-1 {
				break
			}
			e.grad = true
			e.gradC = cycle
			if cfg.Trace != nil {
				// Unified emission point (see interp.Rec.TraceEvent):
				// events are built at graduation, sampled at the source.
				if traceLeft--; traceLeft == 0 {
					traceLeft = traceEvery
					cfg.Trace(e.rec.TraceEvent(disasms[e.rec.SIdx], e.fetchC, e.issueC, e.compC, e.gradC))
				}
			}
			if sim != nil {
				if e.isMiss && e.st.Load() {
					sim.MissLatency.Observe(e.compC - e.issueC)
				}
				if e.rec.Trap {
					sim.TrapLatency.Observe(e.gradC - e.issueC)
				}
			}
			// isMiss is only ever set on memory operations, so the
			// explicit IsMem() conjunct is redundant.
			if cfg.ExtendMSHRLifetime && e.isMiss {
				timing.Release(e.memAddr)
			}
			if head++; head == cfg.ROBSize {
				head = 0
			}
			count--
			gradN++
			out.Instrs++
		}
		if gradN < cfg.IssueWidth && count > 0 {
			e := &rob[head]
			if e.isMiss && e.issued && e.compC > cycle-1 {
				out.CacheSlots += int64(cfg.IssueWidth - gradN)
			}
		}
		obsInstrs += uint64(gradN)

		// ---- issue ----------------------------------------------------
		// Candidates come from the unissued list (age order from the
		// reorder-buffer head); issued entries are never revisited.
		issuedN := 0
		stallCharged := false // one issue-stall charge per cycle (oldest blocked)
		var fuUsed [isa.NumFUClasses]int
		for at := unHead; at >= 0 && issuedN < cfg.IssueWidth; {
			e := &rob[at]
			next := e.nextUn
			if e.fetchC+cfg.FrontDepth > cycle {
				at = next
				continue
			}
			if fuUsed[e.fu] >= cfg.Units[e.fu] {
				if sim != nil && !stallCharged {
					stallCharged = true
					obsStalls[e.rec.Inst.Op]++
				}
				at = next
				continue
			}
			ok := true
			// Counter reads serialize the pipeline (§1): MFCNT issues
			// only from the head of the reorder buffer.
			if e.rec.Inst.Op == isa.Mfcnt && int(at) != head {
				ok = false
			}
			for s := 0; s < e.nsrc; s++ {
				if !ready(e.srcs[s]) {
					ok = false
					break
				}
			}
			if ok && e.rec.Inst.Op == isa.Bmiss && !ccReady(e.srcs[2]) {
				ok = false
			}
			if !ok {
				if sim != nil && !stallCharged {
					stallCharged = true
					obsStalls[e.rec.Inst.Op]++
				}
				at = next
				continue
			}
			if e.st.Mem() {
				done, accepted := timing.Request(cycle, e.rec.Level, e.rec.EA)
				if accepted && cfg.Faults != nil {
					done += cfg.Faults.Delay(e.rec.PC, e.rec.EA)
				}
				if !accepted {
					// Lockup-free cache full: retry next cycle.
					fuUsed[e.fu]++ // the port was occupied by the attempt
					issuedN++
					if sim != nil && !stallCharged {
						stallCharged = true
						obsStalls[e.rec.Inst.Op]++
					}
					at = next
					continue
				}
				e.tagC = cycle + int64(cfg.Timing.L1HitLat)
				if e.st.Load() {
					e.compC = done
				} else {
					e.compC = e.tagC
				}
			} else {
				e.compC = cycle + lat[e.rec.Inst.Op]
				e.tagC = e.compC
			}
			e.issueC = cycle
			e.issued = true
			unlink(at)
			if e.shadow {
				// The resolve time is now known; schedule the live-count
				// decrement (or apply it, if already resolved this cycle).
				res := e.compC
				if e.st.Mem() {
					res = e.tagC
				}
				if res <= cycle {
					shadowLive--
				} else {
					shadowWheel[res&wheelMask]++
				}
			}
			fuUsed[e.fu]++
			issuedN++
			at = next
		}

		// ---- fetch/dispatch -------------------------------------------
		if cycle >= fetchBlocked && stallResolved() {
			stallKind = stallNone
			fetched := 0
			for fetched < cfg.IssueWidth && count < cfg.ROBSize {
				rec, stf := fe.Peek()
				if stf == interp.FeedHalted {
					break
				}
				// Shadow-state limit gates fetch past unresolved
				// speculation. shadowLive is maintained incrementally:
				// the cycle does not advance mid-stage, so no shadow can
				// resolve while fetching — the count only grows, by
				// exactly the shadow entries dispatched below.
				if shadowLive >= cfg.ShadowStates {
					break
				}
				if stf == interp.FeedBudget {
					return out, m, abort(fmt.Errorf("ooo: %w: %w (%d instructions)",
						govern.ErrBudget, interp.ErrLimit, limit))
				}
				if stf == interp.FeedErr {
					flushObs()
					return out, m, fe.Err()
				}
				wasInHandler := inHandler
				fe.Advance()
				op := rec.Inst.Op
				fetchAt := cycle
				if icache != nil {
					if line := icache.Line(rec.PC); line != lastILine {
						// Sequential next-line prefetching hides
						// in-line misses; only control transfers to
						// cold lines stall the fetcher.
						sequential := line == lastILine+uint64(cfg.ICache.LineBytes)
						lastILine = line
						if hit, _, _ := icache.Access(rec.PC, false); !hit && !sequential {
							out.IMisses++
							fetchAt = cycle + int64(cfg.Timing.L2Lat)
							fetchBlocked = fetchAt
						}
					}
				}
				st := &statics[rec.SIdx]
				idx := tail
				e := &rob[idx]
				e.rec = *rec
				e.st = st
				e.fu = st.FU
				e.fetchC = fetchAt
				e.nsrc = 0
				e.issued, e.grad, e.shadow, e.isMiss = false, false, false, false
				// Append to the unissued list (dispatch order == age order).
				idx32 := int32(idx)
				e.prevUn, e.nextUn = unTail, -1
				if unTail >= 0 {
					rob[unTail].nextUn = idx32
				} else {
					unHead = idx32
				}
				unTail = idx32
				for s := 0; s < int(st.NSrc); s++ {
					e.srcs[e.nsrc] = regProd[st.Src[s]]
					e.nsrc++
				}
				if op == isa.Bmiss {
					e.srcs[2] = ccProd
				}
				if st.HasDest {
					regProd[st.Dest] = producer{idx: idx, seq: rec.Seq, set: true}
				}
				if st.Mem() {
					e.memAddr = rec.EA
					e.isMiss = rec.Level > interp.LevelL1
					if op != isa.Prefetch {
						ccProd = producer{idx: idx, seq: rec.Seq, set: true}
					}
					out.MemRefs++
					if rec.Level > interp.LevelL1 {
						out.L1Misses++
					}
					if rec.Level > interp.LevelL2 {
						out.L2Misses++
					}
				}
				if tail++; tail == cfg.ROBSize {
					tail = 0
				}
				count++
				fetched++

				if rec.Trap {
					out.Traps++
					inHandler = true
					if sim != nil {
						sim.Traps.Inc()
						handlerLen = 0
					}
				}
				if wasInHandler {
					out.HandlerInsts++
					if sim != nil {
						handlerLen++
						if op == isa.Rfmh {
							sim.HandlerOcc.Observe(handlerLen)
						}
					}
					if op == isa.Rfmh {
						inHandler = false
					}
				}

				// Control-flow consequences for the fetcher. Redirect
				// blocks extend (never shorten) an existing block such
				// as an instruction-cache miss stall.
				blockUntil := func(t int64) {
					if t > fetchBlocked {
						fetchBlocked = t
					}
				}
				switch {
				case op == isa.Bmiss:
					// Statically predicted not-taken.
					e.shadow = true
					if rec.Taken {
						out.BmissTaken++
						stallKind, stallIdx, stallSeq = stallExec, idx, rec.Seq
					}
				case st.CondBranch():
					pred := bp.Predict(rec.PC)
					bp.Update(rec.PC, rec.Taken)
					e.shadow = true
					if pred != rec.Taken {
						stallKind, stallIdx, stallSeq = stallExec, idx, rec.Seq
					} else if rec.Taken {
						blockUntil(fetchAt + 1 + cfg.TakenBubble)
					}
				case op == isa.Mfcnt:
					// The serializing counter read also stops fetch
					// until it graduates.
					stallKind, stallIdx, stallSeq = stallGrad, idx, rec.Seq
				case st.Branch():
					// Unconditional and return-style transfers are
					// predicted via BTB/return hardware.
					blockUntil(fetchAt + 1 + cfg.TakenBubble)
				case rec.Trap:
					switch cfg.Trap {
					case TrapAsBranch:
						e.shadow = true
						stallKind, stallIdx, stallSeq = stallTag, idx, rec.Seq
					case TrapAsException:
						stallKind, stallIdx, stallSeq = stallGrad, idx, rec.Seq
					}
				case st.InformingMem() && cfg.Mode == interp.ModeTrap && cfg.Trap == TrapAsBranch &&
					op != isa.Prefetch && rec.MHARArmed:
					// A non-trapping informing reference still occupies
					// shadow state until its tag check resolves.
					// (SfInforming is only ever set on memory operations,
					// so the explicit IsMem conjunct is subsumed. The
					// record's MHARArmed snapshot replaces a live m.MHAR
					// read: the machine may have run ahead of the core.)
					e.shadow = true
				}
				if e.shadow {
					shadowLive++
				}

				// §3.3 exercise: inject a squashed speculative
				// informing load.
				if cfg.SpecInjectEvery > 0 && st.Mem() {
					memSeen++
					if memSeen%cfg.SpecInjectEvery == 0 {
						specEA := rec.EA + cfg.SpecInjectStride
						lvl := hier.ProbeData(specEA, false)
						if lvl > interp.LevelL1 {
							if _, acc := timing.Request(cycle, lvl, specEA); acc {
								timing.Squash(specEA)
							}
							if hier.SpeculativeInvalidate(specEA) {
								out.SpecInvalidates++
							}
						}
					}
				}

				if stallKind != stallNone || fetchBlocked > cycle {
					break
				}
			}
		}

		// ---- termination / progress guard ------------------------------
		if count == 0 && fe.Drained() {
			break
		}
		if gradN > 0 || issuedN > 0 {
			gov.Progress(cycle)
		}
		if err := gov.CheckProgress(cycle); err != nil {
			return out, m, abort(fmt.Errorf("ooo: %w", err))
		}
		if err := gov.Tick(); err != nil {
			return out, m, abort(fmt.Errorf("ooo: %w", err))
		}
		cycle++
		// Shadows whose resolve time is this new cycle stop occupying
		// shadow state before the coming fetch stage evaluates the gate.
		if w := shadowWheel[cycle&wheelMask]; w != 0 {
			shadowLive -= int(w)
			shadowWheel[cycle&wheelMask] = 0
		}
		obsCycles++
		if sim != nil && cycle&(obsFlushEvery-1) == 0 {
			flushObs()
		}
	}

	flushObs()
	out.Cycles = cycle
	if out.Cycles < 1 {
		out.Cycles = 1
	}
	out.DynInsts = m.Seq
	out.OtherSlots = out.TotalSlots() - out.BusySlots() - out.CacheSlots
	if out.OtherSlots < 0 {
		out.OtherSlots = 0
	}
	out.BranchLookups = bp.Lookups
	out.BranchMispredicts = bp.Mispredict
	out.MSHRFullStalls = timing.MSHRFullStalls
	out.MSHRMerges = timing.Merges
	out.MSHRPeak = timing.PeakInUse
	// Per-class miss taxonomy, classified at fill time inside the
	// hierarchy. With SpecInjectEvery off the hierarchy sees exactly the
	// architectural reference stream, so the classes sum to
	// out.L1Misses/out.L2Misses (stats.Run.CheckTaxonomy); injected §3.3
	// probes additionally classify their own misses.
	out.L1Tax = hier.L1.Taxonomy()
	out.L2Tax = hier.L2.Taxonomy()
	return out, m, nil
}
