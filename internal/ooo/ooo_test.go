package ooo

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/stats"
)

func runCfg(t *testing.T, src string, mutate func(*Config)) stats.Run {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := DefaultConfig()
	cfg.MaxInsts = 10_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestSerialChainOneIPC(t *testing.T) {
	src := ""
	for i := 0; i < 400; i++ {
		src += "addi r1, r1, 1\n"
	}
	src += "halt"
	r := runCfg(t, src, nil)
	if r.Cycles < 400 || r.Cycles > 450 {
		t.Errorf("serial chain: %d cycles", r.Cycles)
	}
}

func TestIndependentALUWideIssue(t *testing.T) {
	src := ""
	for i := 0; i < 400; i++ {
		src += "addi r" + itoa(2+i%8) + ", r0, 1\n"
	}
	src += "halt"
	r := runCfg(t, src, nil)
	// 2 INT units bound throughput even with a 32-entry window.
	if r.IPC() < 1.7 || r.IPC() > 2.2 {
		t.Errorf("independent ALU IPC %.2f, want ~2", r.IPC())
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	b := asm.NewBuilder()
	base := b.Alloc("buf", 256<<10)
	b.LoadImm(isa.R1, int64(base))
	for i := 0; i < 8; i++ {
		b.Ld(isa.R(2+i), isa.R1, int64(i*8192), false)
	}
	b.Halt()
	cfg := DefaultConfig()
	r, err := Run(b.MustFinish(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Eight serial misses would be ~600 cycles; overlapped under the
	// bandwidth limit they finish in well under half that.
	if r.Cycles > 300 {
		t.Errorf("independent misses not overlapped: %d cycles", r.Cycles)
	}
	if r.MSHRPeak < 4 {
		t.Errorf("MSHR peak %d: no memory parallelism", r.MSHRPeak)
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// A long miss at the head plus >32 subsequent instructions: a bigger
	// reorder buffer allows more of them to complete under the miss.
	src := `
		.data buf 262144
		la r1, buf
		li r16, 50
	top:
		ld r2, 0(r1)
		addi r1, r1, 8192
	`
	for i := 0; i < 40; i++ {
		src += "addi r" + itoa(3+i%6) + ", r0, 1\n"
	}
	src += `
		addi r16, r16, -1
		bne r16, r0, top
		halt`
	small := runCfg(t, src, func(c *Config) { c.ROBSize = 8 })
	big := runCfg(t, src, func(c *Config) { c.ROBSize = 64 })
	if big.Cycles >= small.Cycles {
		t.Errorf("larger ROB did not help: %d vs %d", big.Cycles, small.Cycles)
	}
}

func TestShadowStateLimitThrottlesBranches(t *testing.T) {
	// Dense data-dependent branches: with one shadow state, fetch must
	// serialise on every unresolved branch.
	src := "li r16, 2000\ntop:\n"
	src += `
		xori r5, r5, 1
		bne r5, r0, s1
	s1:	xori r6, r6, 1
		bne r6, r0, s2
	s2:	xori r7, r7, 1
		bne r7, r0, s3
	s3:
		addi r16, r16, -1
		bne r16, r0, top
		halt`
	tight := runCfg(t, src, func(c *Config) { c.ShadowStates = 1 })
	loose := runCfg(t, src, func(c *Config) { c.ShadowStates = 12 })
	if tight.Cycles <= loose.Cycles {
		t.Errorf("shadow limit had no effect: %d vs %d", tight.Cycles, loose.Cycles)
	}
}

func sweepSrc(k int) string {
	s := "j start\nhandler:\n"
	for i := 0; i < k; i++ {
		s += "addi r20, r20, 1\n"
	}
	s += "rfmh\nstart:\nmtmhar handler\n"
	return s + `
		.data buf 131072
		la r1, buf
		li r2, 16384
	loop:
		ld.i r3, 0(r1)
		addi r1, r1, 8
		addi r2, r2, -1
		bne r2, r0, loop
		halt`
}

func TestTrapAsBranchBeatsException(t *testing.T) {
	br := runCfg(t, sweepSrc(1), func(c *Config) { c.Mode = interp.ModeTrap; c.Trap = TrapAsBranch })
	ex := runCfg(t, sweepSrc(1), func(c *Config) { c.Mode = interp.ModeTrap; c.Trap = TrapAsException })
	if br.Traps == 0 || br.Traps != ex.Traps {
		t.Fatalf("trap counts differ: %d vs %d", br.Traps, ex.Traps)
	}
	if ex.Cycles <= br.Cycles {
		t.Errorf("exception handling not slower: branch=%d exception=%d", br.Cycles, ex.Cycles)
	}
}

func TestTrapCountsMatchMisses(t *testing.T) {
	r := runCfg(t, sweepSrc(1), func(c *Config) { c.Mode = interp.ModeTrap })
	if r.Traps != r.L1Misses {
		t.Errorf("traps %d != L1 misses %d", r.Traps, r.L1Misses)
	}
	if r.HandlerInsts != r.Traps*2 {
		t.Errorf("handler instrs %d, want %d", r.HandlerInsts, r.Traps*2)
	}
}

func TestHandlerOverlapsUnderMiss(t *testing.T) {
	// The out-of-order core should hide much of a 10-instruction handler
	// under the miss: the marginal cost per trap must be far below 10
	// cycles + redirect.
	base := runCfg(t, sweepSrc(1), func(c *Config) { c.Mode = interp.ModeTrap })
	ten := runCfg(t, sweepSrc(10), func(c *Config) { c.Mode = interp.ModeTrap })
	perTrap := float64(ten.Cycles-base.Cycles) / float64(ten.Traps)
	if perTrap > 9 {
		t.Errorf("10-vs-1 instruction handler costs %.1f cycles/trap; no overlap", perTrap)
	}
}

func TestSpeculativeInvalidation(t *testing.T) {
	r := runCfg(t, sweepSrc(1), func(c *Config) {
		c.Mode = interp.ModeTrap
		c.ExtendMSHRLifetime = true
		c.SpecInjectEvery = 16
		c.SpecInjectStride = 4096
	})
	if r.SpecInvalidates == 0 {
		t.Error("no speculative invalidations recorded")
	}
	// The paper's observation: extending MSHR lifetimes does not require
	// more than the 8 registers.
	if r.MSHRPeak > 8 {
		t.Errorf("MSHR peak %d exceeds the 8 provisioned", r.MSHRPeak)
	}
}

func TestExtendLifetimeAloneIsHarmless(t *testing.T) {
	plain := runCfg(t, sweepSrc(1), func(c *Config) { c.Mode = interp.ModeTrap })
	ext := runCfg(t, sweepSrc(1), func(c *Config) {
		c.Mode = interp.ModeTrap
		c.ExtendMSHRLifetime = true
	})
	if ext.Traps != plain.Traps || ext.DynInsts != plain.DynInsts {
		t.Error("extend-lifetime changed architectural behaviour")
	}
	// Timing may differ slightly (MSHR pressure) but must stay sane.
	ratio := float64(ext.Cycles) / float64(plain.Cycles)
	if ratio > 1.5 {
		t.Errorf("extend-lifetime cost ratio %.2f", ratio)
	}
}

func TestCondCodeScheme(t *testing.T) {
	src := `
		.data buf 131072
		la r1, buf
		li r2, 16384
	loop:
		ld r3, 0(r1)
		bmiss r22, count
	back:
		addi r1, r1, 8
		addi r2, r2, -1
		bne r2, r0, loop
		halt
	count:
		addi r20, r20, 1
		jr r22`
	r := runCfg(t, src, func(c *Config) { c.Mode = interp.ModeCondCode })
	if r.BmissTaken != r.L1Misses {
		t.Errorf("BMISS taken %d != misses %d", r.BmissTaken, r.L1Misses)
	}
	if r.Traps != 0 {
		t.Error("condition-code mode fired traps")
	}
}

func TestSlotAccountingConsistent(t *testing.T) {
	for _, src := range []string{sweepSrc(1), sweepSrc(10)} {
		r := runCfg(t, src, func(c *Config) { c.Mode = interp.ModeTrap })
		// Run.Check covers the slot-partition and Instrs==DynInsts
		// invariants in one place (shared with the inorder engine's test).
		if err := r.Check(); err != nil {
			t.Errorf("run fails stats.Check: %v", err)
		}
	}
}

func TestDeterministicTiming(t *testing.T) {
	a := runCfg(t, sweepSrc(10), func(c *Config) { c.Mode = interp.ModeTrap })
	b := runCfg(t, sweepSrc(10), func(c *Config) { c.Mode = interp.ModeTrap })
	if a != b {
		t.Error("out-of-order model is nondeterministic")
	}
}

func TestInstructionLimit(t *testing.T) {
	p, err := asm.Assemble("loop: j loop\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	if _, err := Run(p, cfg); err == nil {
		t.Error("runaway program did not hit the instruction limit")
	}
}

func TestICacheMissesOnHandlerEntry(t *testing.T) {
	// A single tight handler stays I-resident; a large body of unique
	// handler code (the U100 plan shape) does not fit the 32 KB I-cache
	// and pays fetch stalls on handler entry.
	small := runCfg(t, sweepSrc(1), func(c *Config) { c.Mode = interp.ModeTrap })
	if small.IMisses > 50 {
		t.Errorf("tight loop + single handler took %d I-misses", small.IMisses)
	}
	off := runCfg(t, sweepSrc(1), func(c *Config) {
		c.Mode = interp.ModeTrap
		c.ICache = mem.CacheConfig{}
	})
	if off.IMisses != 0 {
		t.Errorf("disabled I-cache recorded %d misses", off.IMisses)
	}
	if off.Cycles > small.Cycles {
		t.Errorf("perfect I-fetch slower than modelled: %d vs %d", off.Cycles, small.Cycles)
	}
}

func TestMispredictBlocksFetch(t *testing.T) {
	biased := runCfg(t, loopSrc("beq r0, r0"), nil)
	alt := runCfg(t, loopSrc("bne r5, r0"), nil)
	if alt.Cycles <= biased.Cycles {
		t.Errorf("mispredicts free: %d vs %d", alt.Cycles, biased.Cycles)
	}
}

func loopSrc(cond string) string {
	return `
		li r16, 400
	top:
		xori r5, r5, 1
		` + cond + `, skip
		addi r2, r2, 1
	skip:
		addi r16, r16, -1
		bne r16, r0, top
		halt`
}
