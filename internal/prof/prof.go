// Package prof wires the standard runtime/pprof CPU and heap profiles
// into the bench commands. The perf methodology (EXPERIMENTS.md "Hot-path
// benchmarks") is: profile a bench command with -cpuprofile, read the
// flat list with `go tool pprof`, and attack the top entries — the way
// memos and predecoded dispatch of DESIGN.md §10 came out of exactly
// this loop.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by Register.
type Flags struct {
	cpu *string
	mem *string
}

// Register adds -cpuprofile and -memprofile to the default flag set.
// Call before flag.Parse.
func Register() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a pprof CPU profile to `file`"),
		mem: flag.String("memprofile", "", "write a pprof heap profile to `file` on exit"),
	}
}

// Start begins CPU profiling when requested. The returned stop function
// finishes the CPU profile and writes the heap profile; it must run
// before the process exits (including error exits — see StopThenExit).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
	}, nil
}

// StopThenExit runs stop and exits with code: error paths in commands
// must not lose a partially collected profile to os.Exit.
func StopThenExit(stop func(), code int) {
	stop()
	os.Exit(code)
}
