// Package progen generates seeded random — but always-terminating —
// assembler programs, richer than any hand-written kernel: counted
// (optionally nested) loops over ALU and floating-point work, masked and
// strided buffer loads/stores, prefetches, forward skip branches,
// per-seed informing schemes (off, miss traps with a counting handler —
// or, for half the Trap seeds, a §6-style handler that also prefetches a
// stride ahead of the miss — condition-code BMISS chains), and a
// per-seed replacement policy drawn from mem.PolicyNames so the Policy
// seam is fuzzed alongside the default LRU path. Paired with CrossCheck
// it is the
// cross-engine differential fuzzer from ROADMAP item 1: the functional
// interpreter (driven by a real cache hierarchy), the in-order core and
// the out-of-order core must agree on every bit of architectural state
// for every seed, so scenario coverage grows without hand-writing
// kernels.
package progen

import (
	"fmt"
	"math"
	"math/rand"

	"informing/internal/asm"
	"informing/internal/interp"
	"informing/internal/isa"
	"informing/internal/mem"
	"informing/internal/stats"
)

// Mode is the informing scheme a generated program exercises.
type Mode uint8

const (
	// Off generates plain memory operations.
	Off Mode = iota
	// Trap generates informing operations with a counting miss handler
	// installed through MHAR.
	Trap
	// CondCode generates informing operations followed by BMISS chains.
	CondCode
)

func (m Mode) String() string {
	switch m {
	case Trap:
		return "trap"
	case CondCode:
		return "condcode"
	default:
		return "off"
	}
}

// InterpMode maps the generator mode to the architectural mode.
func (m Mode) InterpMode() interp.Mode {
	switch m {
	case Trap:
		return interp.ModeTrap
	case CondCode:
		return interp.ModeCondCode
	default:
		return interp.ModeOff
	}
}

// Program is one generated workload.
type Program struct {
	Seed int64
	Mode Mode
	// Policy is the seed-derived data-hierarchy replacement policy every
	// engine must run under (one of mem.PolicyNames), so the differential
	// fuzzer covers the Policy seam as well as the default LRU path.
	Policy string
	// Prefetch reports that a Trap-mode program's miss handler issues a
	// stride-ahead software prefetch (the §6 case-study handler shape)
	// in addition to counting.
	Prefetch bool
	Prog     *isa.Program
}

// Register conventions inside generated code. General-purpose picks stay
// clear of these.
const (
	regBuf     = isa.R1  // data buffer base
	regAddr    = isa.R13 // address scratch
	regStride  = isa.R14 // strided-walk cursor
	regCntIn   = isa.R16 // inner loop counter
	regCntOut  = isa.R17 // outer loop counter
	regHandler = isa.R20 // handler / bmiss hit counter
	regLink    = isa.R21 // bmiss shadow destination
)

const bufBytes = 1 << 15 // 32 KB buffer: larger than L1, smaller than L2

// Generate builds the program for a seed. The same seed always yields
// the identical program (the generator is the only consumer of its rand
// stream), so fuzz findings reproduce from the seed alone.
func Generate(seed int64) *Program {
	r := rand.New(rand.NewSource(seed))
	mode := Mode(r.Intn(3))
	policy := mem.PolicyNames()[r.Intn(len(mem.PolicyNames()))]
	b := asm.NewBuilder()
	buf := b.Alloc("buf", bufBytes)

	prefetch := false
	if mode == Trap {
		// Counting miss handler: the paper's simplest profiling client.
		// Half the seeds grow it into the §6 case-study shape — the
		// handler also prefetches a fixed stride ahead of the miss. The
		// ISA has no miss-address register, so the handler reads the
		// reference's address from regAddr, which every informing access
		// below computes immediately before the access and which the
		// handler itself never clobbers (the PlanPrefetch technique:
		// base registers stay live into the handler).
		prefetch = r.Intn(2) == 1
		dist := int64(32 * (1 + r.Intn(8)))
		b.J("main")
		b.Label("h")
		if prefetch {
			b.Prefetch(regAddr, dist)
		}
		b.Addi(regHandler, regHandler, 1)
		b.Rfmh()
		b.Label("main")
		b.MtmharLabel("h")
	}

	b.LoadImm(regBuf, int64(buf))
	b.LoadImm(regStride, 0)
	for i := 2; i <= 9; i++ {
		b.LoadImm(isa.R(i), int64(int32(r.Uint64())))
	}
	for i := 1; i <= 6; i++ {
		b.Fcvt(isa.F(i), isa.R(1+i))
	}

	nLoops := 1 + r.Intn(3)
	for l := 0; l < nLoops; l++ {
		if r.Intn(3) == 0 {
			g := &gen{r: r, b: b, mode: mode, informing: mode != Off}
			// Nested pair: few outer iterations, busier inner body.
			outIters := int64(3 + r.Intn(6))
			b.LoadImm(regCntOut, outIters)
			outer := b.Unique("outer")
			b.Label(outer)
			g.countedLoop(regCntIn, int64(10+r.Intn(60)), 3+r.Intn(8))
			b.Addi(regCntOut, regCntOut, -1)
			b.Bne(regCntOut, isa.R0, outer)
		} else {
			g := &gen{r: r, b: b, mode: mode, informing: mode != Off}
			g.countedLoop(regCntIn, int64(20+r.Intn(180)), 4+r.Intn(12))
		}
	}
	b.Halt()
	return &Program{Seed: seed, Mode: mode, Policy: policy, Prefetch: prefetch, Prog: b.MustFinish()}
}

// gen holds the per-program generation state.
type gen struct {
	r         *rand.Rand
	b         *asm.Builder
	mode      Mode
	informing bool
}

var aluOps = []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.And, isa.Or, isa.Xor,
	isa.Nor, isa.Sll, isa.Srl, isa.Sra, isa.Slt, isa.Sltu,
	isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Slli, isa.Srli, isa.Slti}

var fpOps = []isa.Op{isa.Fadd, isa.Fsub, isa.Fmul, isa.Fdiv, isa.Fmov, isa.Fneg}

func (g *gen) gpr() isa.Reg { return isa.R(2 + g.r.Intn(8)) }
func (g *gen) fpr() isa.Reg { return isa.F(1 + g.r.Intn(6)) }

// countedLoop emits one loop with cnt iterations and bodyLen body items.
func (g *gen) countedLoop(cntReg isa.Reg, cnt int64, bodyLen int) {
	b := g.b
	b.LoadImm(cntReg, cnt)
	top := b.Unique("top")
	b.Label(top)
	for k := 0; k < bodyLen; k++ {
		g.bodyItem()
	}
	b.Addi(cntReg, cntReg, -1)
	b.Bne(cntReg, isa.R0, top)
}

// maskedAddr computes a legal buffer address into regAddr from a random
// register (hashed access pattern) or the strided cursor.
func (g *gen) maskedAddr() {
	b := g.b
	if g.r.Intn(3) == 0 {
		// Strided walk: sequential lines with occasional jumps.
		b.Addi(regStride, regStride, int64(8*(1+g.r.Intn(16))))
		b.Andi(regAddr, regStride, bufBytes-8)
	} else {
		b.Andi(regAddr, g.gpr(), bufBytes-8)
	}
	b.Add(regAddr, regAddr, regBuf)
}

// bodyItem emits one random body construct.
func (g *gen) bodyItem() {
	b, r := g.b, g.r
	switch r.Intn(10) {
	case 0, 1: // integer load (+ optional condcode consumer)
		g.maskedAddr()
		b.Ld(g.gpr(), regAddr, 0, g.informing)
		g.maybeBmiss()
	case 2: // integer store
		g.maskedAddr()
		b.St(g.gpr(), regAddr, 0, g.informing)
		g.maybeBmiss()
	case 3: // FP load/store pair exercise
		g.maskedAddr()
		if r.Intn(2) == 0 {
			b.Fld(g.fpr(), regAddr, 0, g.informing)
			g.maybeBmiss()
		} else {
			b.Fst(g.fpr(), regAddr, 0, g.informing)
		}
	case 4: // software prefetch (never informs, still probes the caches)
		g.maskedAddr()
		b.Prefetch(regAddr, 0)
	case 5: // forward skip branch over a short straight-line stretch
		skip := b.Unique("skip")
		rs1, rs2 := g.gpr(), g.gpr()
		switch r.Intn(4) {
		case 0:
			b.Beq(rs1, rs2, skip)
		case 1:
			b.Bne(rs1, rs2, skip)
		case 2:
			b.Blt(rs1, rs2, skip)
		default:
			b.Bge(rs1, rs2, skip)
		}
		for n := 1 + r.Intn(3); n > 0; n-- {
			g.alu()
		}
		b.Label(skip)
	case 6: // FP arithmetic
		op := fpOps[r.Intn(len(fpOps))]
		b.Emit(isa.Inst{Op: op, Rd: g.fpr(), Rs1: g.fpr(), Rs2: g.fpr()})
		if r.Intn(4) == 0 {
			b.Fclt(g.gpr(), g.fpr(), g.fpr())
		}
	case 7: // read the miss counter into the dataflow
		if g.informing {
			b.Mfcnt(g.gpr())
		} else {
			g.alu()
		}
	default:
		g.alu()
	}
}

func (g *gen) alu() {
	op := aluOps[g.r.Intn(len(aluOps))]
	g.b.Emit(isa.Inst{Op: op, Rd: g.gpr(), Rs1: g.gpr(), Rs2: g.gpr(), Imm: int64(g.r.Intn(64))})
}

// maybeBmiss emits the condition-code consumer pattern after an
// informing reference: branch-on-miss to a counting block.
func (g *gen) maybeBmiss() {
	if g.mode != CondCode || g.r.Intn(2) == 0 {
		return
	}
	b := g.b
	miss := b.Unique("miss")
	join := b.Unique("join")
	b.Bmiss(regLink, miss)
	b.J(join)
	b.Label(miss)
	b.Addi(regHandler, regHandler, 1)
	b.Label(join)
}

// Engines runs p on all three engines with an identical Table 1 L1/L2
// geometry and returns their final functional machines plus the timing
// cores' runs; CrossCheck compares them. The functional interpreter is
// driven by a real mem.Hierarchy probe so its informing behavior (miss
// traps, BMISS, MFCNT) sees the same levels the cores do.
type Engines struct {
	Interp  *interp.Machine
	Hier    *mem.Hierarchy
	InOrder *interp.Machine
	OOO     *interp.Machine

	InOrderRun stats.Run
	OOORun     stats.Run
}

// CrossCheck generates-and-compares: any architectural divergence
// between the three engines (or an internal inconsistency in either
// run's statistics) is returned as an error naming the seed.
func CrossCheck(p *Program, runner Runner, maxInsts uint64) error {
	eng, err := runner(p, maxInsts)
	if err != nil {
		return fmt.Errorf("seed %d (%s): %w", p.Seed, p.Mode, err)
	}
	for name, m := range map[string]*interp.Machine{"inorder": eng.InOrder, "ooo": eng.OOO} {
		if err := diverges(eng.Interp, m); err != nil {
			return fmt.Errorf("seed %d (%s): interp vs %s: %w", p.Seed, p.Mode, name, err)
		}
	}
	for name, run := range map[string]stats.Run{"inorder": eng.InOrderRun, "ooo": eng.OOORun} {
		if err := run.Check(); err != nil {
			return fmt.Errorf("seed %d (%s): %s stats: %w", p.Seed, p.Mode, name, err)
		}
		if run.DynInsts != eng.Interp.Seq {
			return fmt.Errorf("seed %d (%s): %s graduated %d instrs, functional executed %d",
				p.Seed, p.Mode, name, run.DynInsts, eng.Interp.Seq)
		}
		if run.MemRefs != eng.Hier.Refs || run.L1Misses != eng.Hier.L1Misses || run.L2Misses != eng.Hier.L2Misses {
			return fmt.Errorf("seed %d (%s): %s cache counters (refs %d, l1m %d, l2m %d) != functional hierarchy (refs %d, l1m %d, l2m %d)",
				p.Seed, p.Mode, name, run.MemRefs, run.L1Misses, run.L2Misses,
				eng.Hier.Refs, eng.Hier.L1Misses, eng.Hier.L2Misses)
		}
		if run.Traps != eng.Interp.Traps {
			return fmt.Errorf("seed %d (%s): %s counted %d traps, functional %d",
				p.Seed, p.Mode, name, run.Traps, eng.Interp.Traps)
		}
		// Miss-taxonomy conservation: on every engine the four classes
		// partition the misses exactly (CheckTaxonomy compares against the
		// classifier-side totals, which on the out-of-order core include
		// speculative wrong-path probes).
		if err := run.CheckTaxonomy(); err != nil {
			return fmt.Errorf("seed %d (%s): %s taxonomy: %w", p.Seed, p.Mode, name, err)
		}
	}
	// The in-order core probes the hierarchy in exactly the architectural
	// reference order the functional interpreter does, so its taxonomy must
	// reproduce the functional hierarchy's class for class. (The
	// out-of-order core's wrong-path probes perturb the classifiers, so
	// only conservation is required of it.)
	if l1, l2 := eng.Hier.L1.Taxonomy(), eng.Hier.L2.Taxonomy(); eng.InOrderRun.L1Tax != l1 || eng.InOrderRun.L2Tax != l2 {
		return fmt.Errorf("seed %d (%s): inorder taxonomy L1{%v} L2{%v} != functional hierarchy L1{%v} L2{%v}",
			p.Seed, p.Mode, eng.InOrderRun.L1Tax, eng.InOrderRun.L2Tax, l1, l2)
	}
	return nil
}

// Runner executes a generated program on all three engines. It lives in
// internal/core (which owns the machine configurations); progen only
// defines the contract to stay import-cycle-free.
type Runner func(p *Program, maxInsts uint64) (*Engines, error)

// diverges compares two final functional machines bit-for-bit.
func diverges(ref, m *interp.Machine) error {
	if m.Seq != ref.Seq {
		return fmt.Errorf("executed %d instructions, reference %d", m.Seq, ref.Seq)
	}
	if m.G != ref.G {
		for i := range m.G {
			if m.G[i] != ref.G[i] {
				return fmt.Errorf("G[%d] = %#x, reference %#x", i, m.G[i], ref.G[i])
			}
		}
	}
	for i := range m.FR {
		if math.Float64bits(m.FR[i]) != math.Float64bits(ref.FR[i]) {
			return fmt.Errorf("F[%d] = %v, reference %v", i, m.FR[i], ref.FR[i])
		}
	}
	if m.MissCounter != ref.MissCounter {
		return fmt.Errorf("MissCounter %d, reference %d", m.MissCounter, ref.MissCounter)
	}
	if m.Traps != ref.Traps {
		return fmt.Errorf("traps %d, reference %d", m.Traps, ref.Traps)
	}
	if m.BmissTaken != ref.BmissTaken {
		return fmt.Errorf("bmiss taken %d, reference %d", m.BmissTaken, ref.BmissTaken)
	}
	if got, want := m.Mem.Fingerprint(), ref.Mem.Fingerprint(); got != want {
		return fmt.Errorf("memory fingerprint %#x, reference %#x", got, want)
	}
	return nil
}
