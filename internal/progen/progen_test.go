package progen_test

import (
	"testing"

	"informing/internal/core"
	"informing/internal/interp"
	"informing/internal/mem"
	"informing/internal/progen"
)

// runEngines is the concrete progen.Runner: the functional interpreter
// driven by a real hierarchy probe, plus both timing cores, all forced
// onto the same cache geometry so their informing decisions (trap or
// not, BMISS taken or not) must coincide reference-for-reference.
func runEngines(p *progen.Program, maxInsts uint64) (*progen.Engines, error) {
	var scheme core.Scheme
	switch p.Mode {
	case progen.Trap:
		scheme = core.TrapBranch
	case progen.CondCode:
		scheme = core.CondCode
	default:
		scheme = core.Off
	}
	ooo := core.R10000(scheme).WithPolicy(p.Policy)
	io := core.Alpha21164(scheme).WithPolicy(p.Policy)
	io.IO.Hier = ooo.OOO.Hier // common geometry (and policy) for cross-engine equality

	hier, err := mem.NewHierarchy(ooo.HierConfig())
	if err != nil {
		return nil, err
	}
	ref := interp.New(p.Prog, p.Mode.InterpMode(), hier.ProbeData)
	if err := ref.Run(maxInsts); err != nil {
		return nil, err
	}

	eng := &progen.Engines{Interp: ref, Hier: hier}
	eng.OOORun, eng.OOO, err = ooo.WithMaxInsts(maxInsts).RunDetailed(p.Prog)
	if err != nil {
		return nil, err
	}
	eng.InOrderRun, eng.InOrder, err = io.WithMaxInsts(maxInsts).RunDetailed(p.Prog)
	if err != nil {
		return nil, err
	}
	return eng, nil
}

const maxInsts = 2_000_000

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a, b := progen.Generate(seed), progen.Generate(seed)
		if a.Mode != b.Mode {
			t.Fatalf("seed %d: mode %v vs %v", seed, a.Mode, b.Mode)
		}
		if len(a.Prog.Text) != len(b.Prog.Text) {
			t.Fatalf("seed %d: %d vs %d instructions", seed, len(a.Prog.Text), len(b.Prog.Text))
		}
		for i := range a.Prog.Text {
			if a.Prog.Text[i] != b.Prog.Text[i] {
				t.Fatalf("seed %d: instruction %d differs", seed, i)
			}
		}
	}
}

// All three informing modes, all four replacement policies, and both
// Trap-handler shapes (counting-only and counting+prefetch) must appear
// across a small seed range, or the fuzzer silently loses coverage of a
// whole dimension.
func TestGenerateCoversModes(t *testing.T) {
	modes := map[progen.Mode]bool{}
	policies := map[string]bool{}
	prefetch := map[bool]bool{}
	for seed := int64(0); seed < 64; seed++ {
		p := progen.Generate(seed)
		modes[p.Mode] = true
		policies[p.Policy] = true
		if p.Mode == progen.Trap {
			prefetch[p.Prefetch] = true
		}
	}
	for _, m := range []progen.Mode{progen.Off, progen.Trap, progen.CondCode} {
		if !modes[m] {
			t.Errorf("mode %v never generated in seeds 0..63", m)
		}
	}
	for _, pol := range mem.PolicyNames() {
		if !policies[pol] {
			t.Errorf("policy %q never generated in seeds 0..63", pol)
		}
	}
	for _, pf := range []bool{false, true} {
		if !prefetch[pf] {
			t.Errorf("trap handler shape prefetch=%v never generated in seeds 0..63", pf)
		}
	}
}

// TestCrossEngineSeeds is the deterministic slice of the differential
// fuzzer: every seed must agree across interp, in-order and out-of-order.
func TestCrossEngineSeeds(t *testing.T) {
	n := int64(24)
	if testing.Short() {
		n = 6
	}
	for seed := int64(0); seed < n; seed++ {
		if err := progen.CrossCheck(progen.Generate(seed), runEngines, maxInsts); err != nil {
			t.Error(err)
		}
	}
}

// FuzzCrossEngine feeds arbitrary seeds through the generator and demands
// cross-engine agreement. The committed corpus under testdata/fuzz covers
// all three modes plus negative and large seeds; the explicit seeds below
// additionally pin prefetch-handler programs (4: lru, 13: srrip, 47:
// trrip) and a non-LRU policy without traps (43: srrip) so the Policy
// seam and the §6 handler shape stay in the deterministic corpus.
func FuzzCrossEngine(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 3, 7, -1, 1 << 40, 4, 13, 43, 47} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := progen.CrossCheck(progen.Generate(seed), runEngines, maxInsts); err != nil {
			t.Fatal(err)
		}
	})
}
