// Package sched is the deterministic worker-pool scheduler behind the
// experiment harnesses (internal/experiments, internal/coherence). A
// sweep is a flat list of independent jobs — one per (benchmark, machine,
// plan) or (application, scheme) cell — and Map shards them across a
// bounded number of workers while preserving the exact output the
// sequential code produces.
//
// Determinism contract:
//
//   - Results are returned in job order, never in completion order.
//   - Each job must be a pure function of its inputs (the simulators are
//     deterministic), so the value computed for job i is identical at any
//     worker count.
//   - On error, Map returns the error of the lowest-indexed failing job
//     together with the contiguous prefix of results before that index —
//     exactly the partial output the sequential loop would have produced,
//     because jobs are never cancelled by a sibling's failure. The only
//     sources of cancellation are the caller's context (typically a
//     govern.SignalContext threaded into every job's run governor) and
//     the jobs' own budgets.
//
// Together these make `-j N` and `-j 1` bit-for-bit comparable, which the
// differential tests pin.
package sched

import (
	"context"
	"runtime"
	"sync"
)

// Job computes one cell of a sweep. The context is the caller's
// cancellation context; jobs are expected to thread it into their run
// governors so Ctrl-C aborts in-flight simulations promptly.
type Job[T any] func(ctx context.Context) (T, error)

// Workers resolves a -j style worker-count request: n <= 0 selects
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs jobs on at most Workers(workers) goroutines and returns their
// results in job order. workers == 1 is the sequential reference path:
// jobs run in order on the calling goroutine and execution stops at the
// first error. At higher worker counts every job runs to completion and
// the merge discards results at and past the lowest failing index, so
// both paths return identical ([]T, error) pairs (see the package
// determinism contract).
func Map[T any](ctx context.Context, workers int, jobs []Job[T]) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}

	if workers == 1 {
		var out []T
		for _, job := range jobs {
			v, err := job(ctx)
			if err != nil {
				return out, err
			}
			out = append(out, v)
		}
		return out, nil
	}

	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = jobs[i](ctx)
			}
		}()
	}
	// Indices are handed out in increasing order, so when job e is the
	// lowest-indexed failure, every job below e has already been started
	// and run to completion: the prefix results[:e] is fully populated.
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results[:i:i], err
		}
	}
	return results, nil
}
