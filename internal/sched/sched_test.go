package sched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"informing/internal/govern"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map[int](nil, 4, nil)
	if out != nil || err != nil {
		t.Errorf("empty map: %v, %v", out, err)
	}
}

// TestMapOrderDeterministic checks that results come back in job order
// regardless of completion order (later jobs finish first here).
func TestMapOrderDeterministic(t *testing.T) {
	const n = 32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			// Earlier jobs sleep longer, inverting completion order.
			time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
			return i * i, nil
		}
	}
	for _, workers := range []int{1, 3, 8, n} {
		out, err := Map(context.Background(), workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapErrorPrefix pins the determinism contract's error clause: the
// lowest-indexed failure is returned with exactly the results before it,
// identically at every worker count.
func TestMapErrorPrefix(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[string], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (string, error) {
			if i == 4 || i == 7 {
				return "", fmt.Errorf("job %d: %w", i, boom)
			}
			return fmt.Sprintf("v%d", i), nil
		}
	}
	seq, seqErr := Map(context.Background(), 1, jobs)
	for _, workers := range []int{2, 5, 10} {
		par, parErr := Map(context.Background(), workers, jobs)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: partial results %v != sequential %v", workers, par, seq)
		}
		if !errors.Is(parErr, boom) || parErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d: error %v != sequential %v", workers, parErr, seqErr)
		}
	}
	if len(seq) != 4 {
		t.Errorf("prefix length %d, want 4", len(seq))
	}
}

// TestMapCancelledPartial models an interrupted sweep: jobs poll the
// context the way the run governor does and return errors wrapping
// govern.ErrCanceled. The pool must surface the partial prefix completed
// before the cancellation together with that error.
func TestMapCancelledPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			ran.Add(1)
			if i == 4 {
				cancel() // the "Ctrl-C" arrives while the sweep is mid-flight
			}
			if i >= 4 {
				// Governed runs poll the context and wrap ErrCanceled.
				if err := ctx.Err(); err != nil {
					return 0, fmt.Errorf("%w: %w", govern.ErrCanceled, err)
				}
			}
			return i, nil
		}
	}
	out, err := Map(ctx, 8, jobs)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("error %v does not wrap govern.ErrCanceled", err)
	}
	// Jobs 0..3 never observe the cancellation; job 4 always fails after
	// cancelling, so the deterministic prefix is exactly [0 1 2 3].
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("partial results %v, want %v", out, want)
	}
	if ran.Load() == 0 {
		t.Error("no jobs ran")
	}
}

// TestMapBoundsConcurrency verifies no more than `workers` jobs run at
// once.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = func(context.Context) (struct{}, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		}
	}
	if _, err := Map(context.Background(), workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}
