package serve

import (
	"container/list"
	"sync"
)

// lruCache is the fingerprint-keyed result cache: a plain mutex-guarded
// LRU over completed outcomes. Simulation results are small (a stats.Run
// or multi.Result struct), so the cache is bounded by entry count, not
// bytes. Only successful outcomes are inserted — errors, including
// cancellation and budget aborts, always recompute.
type lruCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type lruEntry struct {
	key string
	out outcome
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, m: make(map[string]*list.Element, capacity), ll: list.New()}
}

// get returns the cached outcome for key, promoting it to most recently
// used.
func (c *lruCache) get(key string) (outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return outcome{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).out, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (c *lruCache) add(key string, out outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, out: out})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
