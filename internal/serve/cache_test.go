package serve

import (
	"fmt"
	"testing"

	"informing/internal/stats"
)

func out(n int64) outcome {
	r := stats.Run{}
	r.IssueWidth = 4
	r.Cycles = n
	return outcome{run: &r}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.add("a", out(1))
	c.add("b", out(2))
	c.add("c", out(3)) // evicts a

	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for key, want := range map[string]int64{"b": 2, "c": 3} {
		got, ok := c.get(key)
		if !ok || got.run.Cycles != want {
			t.Fatalf("get(%q) = (%+v, %v), want cycles %d", key, got, ok, want)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRU(2)
	c.add("a", out(1))
	c.add("b", out(2))
	c.get("a")         // a is now most-recent
	c.add("c", out(3)) // evicts b, not a

	if _, ok := c.get("a"); !ok {
		t.Fatal("promoted entry was evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
}

func TestLRUOverwriteSameKey(t *testing.T) {
	c := newLRU(2)
	c.add("a", out(1))
	c.add("a", out(9))
	got, ok := c.get("a")
	if !ok || got.run.Cycles != 9 {
		t.Fatalf("get(a) = (%+v, %v), want overwritten value", got, ok)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (same key must not duplicate)", c.len())
	}
}

func TestLRUCapacityStaysBounded(t *testing.T) {
	c := newLRU(8)
	for i := 0; i < 100; i++ {
		c.add(fmt.Sprintf("k%d", i), out(int64(i)))
		if c.len() > 8 {
			t.Fatalf("cache grew to %d entries, cap 8", c.len())
		}
	}
	if c.len() != 8 {
		t.Fatalf("len = %d, want 8", c.len())
	}
}
