package serve

// The chaos lane: informd under a failing filesystem, restarts, and
// hostile tenants. The contracts pinned here are the ones §13 of
// DESIGN.md promises: a store fault demotes the daemon to RAM-only but
// never wrong answers; a corrupt entry is quarantined and recomputed; a
// restarted daemon serves its old results without re-simulating; and one
// tenant's backlog cannot starve another's request.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"informing/internal/faults"
	"informing/internal/store"
)

// openTestStore opens a serve-compatible store in a fresh directory.
func openTestStore(t *testing.T, dir string, fs store.FS) *store.Store {
	t.Helper()
	opts := store.Options{Dir: dir, Version: CodeVersion, Logf: t.Logf}
	if fs != nil {
		opts.FS = fs
	}
	st, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func postCells(t *testing.T, url string, cells ...Request) SimulateResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/simulate", SimulateRequest{Cells: cells})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	for i, cr := range sr.Results {
		if cr.Error != nil {
			t.Fatalf("cell %d failed: %+v", i, cr.Error)
		}
	}
	return sr
}

// TestStoreWarmRestart is the in-process restart contract: a second
// server generation opening the same store directory serves the first
// generation's results as cache hits, calling the runner zero times.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cells := []Request{
		cellReq("compress", "N", MachineOOO),
		cellReq("compress", "S1", MachineInOrder),
		cellReq("espresso", "CC1", MachineOOO),
	}

	gen1 := newFakeRunner(false)
	s1 := New(Config{runCell: gen1.run, Store: openTestStore(t, dir, nil)})
	ts1 := httptest.NewServer(s1.Handler())
	first := postCells(t, ts1.URL, cells...)
	ts1.Close()
	s1.Close()
	if gen1.total() != len(cells) {
		t.Fatalf("gen1 computed %d cells, want %d", gen1.total(), len(cells))
	}

	// Generation 2: fresh process state, same directory. Every repeat is
	// a hit (read-through warms the LRU) and nothing is computed.
	gen2 := newFakeRunner(false)
	s2, ts2 := newTestServer(t, Config{runCell: gen2.run, Store: openTestStore(t, dir, nil)})
	second := postCells(t, ts2.URL, cells...)
	for i, cr := range second.Results {
		if !cr.Cached {
			t.Errorf("cell %d not served from store after restart", i)
		}
		if cr.Key != first.Results[i].Key || *cr.Run != *first.Results[i].Run {
			t.Errorf("cell %d payload changed across restart:\n gen1: %+v\n gen2: %+v",
				i, *first.Results[i].Run, *cr.Run)
		}
	}
	if gen2.total() != 0 {
		t.Errorf("gen2 computed %d cells, want 0 (warm restart)", gen2.total())
	}
	if hits := s2.met.StoreHits.Load(); hits != uint64(len(cells)) {
		t.Errorf("serve_store_hits = %d, want %d", hits, len(cells))
	}
}

// TestStoreDegradeToRAM injects ENOSPC on every entry write: the daemon
// must keep answering correctly from RAM, latch the degraded state
// exactly once, and report it on /healthz.
func TestStoreDegradeToRAM(t *testing.T) {
	ffs := faults.NewFS(faults.FSPlan{Seed: 1, Rules: []faults.FSRule{
		{Kind: faults.FSNoSpace, Ops: faults.FSWrite, PathContains: ".res", EveryN: 1},
	}})
	runner := newFakeRunner(false)
	s, ts := newTestServer(t, Config{runCell: runner.run, Store: openTestStore(t, t.TempDir(), ffs)})

	a := cellReq("compress", "N", MachineOOO)
	b := cellReq("espresso", "N", MachineOOO)
	postCells(t, ts.URL, a) // first write fails -> degrade
	if !s.storeDegraded.Load() {
		t.Fatal("store write fault did not degrade the server")
	}
	if got := s.met.StoreDegraded.Load(); got != 1 {
		t.Errorf("serve_store_degraded = %d, want 1", got)
	}

	// Degraded, not broken: new cells compute, repeats hit the RAM cache,
	// and the degrade latch fires only once.
	postCells(t, ts.URL, b)
	sr := postCells(t, ts.URL, a)
	if !sr.Results[0].Cached {
		t.Error("repeat cell not served from RAM cache while degraded")
	}
	if got := s.met.StoreDegraded.Load(); got != 1 {
		t.Errorf("serve_store_degraded = %d after more traffic, want still 1", got)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
		Store  struct {
			State string `json:"state"`
		} `json:"store"`
	}
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	decodeTo(t, buf[:n], &hz)
	if hz.Status != "ok" || hz.Store.State != "degraded" {
		t.Errorf("healthz = status %q store %q, want ok/degraded", hz.Status, hz.Store.State)
	}
}

// TestStoreCorruptionRecompute flips bits in a stored entry on disk: the
// next generation must detect the bad checksum, quarantine the file,
// recompute — and must NOT degrade (the filesystem works; the data lied).
func TestStoreCorruptionRecompute(t *testing.T) {
	dir := t.TempDir()
	cell := cellReq("compress", "N", MachineOOO)

	gen1 := newFakeRunner(false)
	s1 := New(Config{runCell: gen1.run, Store: openTestStore(t, dir, nil)})
	ts1 := httptest.NewServer(s1.Handler())
	first := postCells(t, ts1.URL, cell)
	ts1.Close()
	s1.Close()

	// Corrupt the payload's last byte (the header's checksum now lies).
	path := filepath.Join(dir, first.Results[0].Key+".res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	gen2 := newFakeRunner(false)
	s2, ts2 := newTestServer(t, Config{runCell: gen2.run, Store: openTestStore(t, dir, nil)})
	second := postCells(t, ts2.URL, cell)
	if second.Results[0].Cached {
		t.Error("corrupt entry served as a cache hit")
	}
	if *second.Results[0].Run != *first.Results[0].Run {
		t.Error("recomputed payload differs from original")
	}
	if gen2.total() != 1 {
		t.Errorf("gen2 computed %d cells, want 1 (recompute)", gen2.total())
	}
	if s2.storeDegraded.Load() {
		t.Error("corruption degraded the server; policy is quarantine+recompute")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Errorf("quarantine dir has %d entries (err %v), want 1", len(q), err)
	}
}

// TestCacheStoreRace hammers the submit path with a tiny LRU over a live
// store, so read-through, write-behind, eviction and coalescing all
// interleave. Run with -race; the correctness assertion is that every
// response carries its own request's fingerprint and payload.
func TestCacheStoreRace(t *testing.T) {
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{
		runCell:      runner.run,
		CacheEntries: 2, // constant eviction pressure
		Store:        openTestStore(t, t.TempDir(), nil),
	})

	cells := []Request{
		cellReq("compress", "N", MachineOOO),
		cellReq("compress", "S1", MachineOOO),
		cellReq("compress", "CC1", MachineOOO),
		cellReq("espresso", "N", MachineInOrder),
		cellReq("espresso", "S1", MachineInOrder),
		cellReq("tomcatv", "N", MachineOOO),
	}
	wants := make([]Request, len(cells))
	for i, c := range cells {
		wants[i] = mustCanon(t, c)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c := cells[(g+i)%len(cells)]
				want := wants[(g+i)%len(cells)]
				resp, body, err := tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{c}})
				if err != nil || resp.StatusCode != 200 {
					errs <- "request failed: " + string(body)
					return
				}
				var sr SimulateResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					errs <- err.Error()
					return
				}
				cr := sr.Results[0]
				if cr.Error != nil {
					errs <- cr.Error.Message
					return
				}
				if cr.Key != Fingerprint(want) {
					errs <- "response keyed to a different request's fingerprint"
					return
				}
				if cr.Run.Cycles != int64(len(canonicalString(want))) {
					errs <- "response carries another cell's payload"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// ---- tenants ----

func testTenants(t *testing.T, file TenantsFile) *TenantSet {
	t.Helper()
	ts, err := NewTenantSet(file)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestTenantRateLimit: a tenant above its admission rate gets 429 with
// code rate-limited and an honest Retry-After; the anonymous tier is
// unaffected; per-tenant metrics record the rejection.
func TestTenantRateLimit(t *testing.T) {
	tenants := testTenants(t, TenantsFile{Tenants: []TenantSpec{
		{Name: "alice", Key: "k-alice", RatePerSec: 1, Burst: 2},
	}})
	now := time.Unix(1000, 0)
	tenants.now = func() time.Time { return now }

	runner := newFakeRunner(false)
	s, ts := newTestServer(t, Config{runCell: runner.run, Tenants: tenants})

	post := func(key string, cells ...Request) (*http.Response, []byte) {
		t.Helper()
		req := SimulateRequest{Cells: cells}
		buf, _ := json.Marshal(req)
		hr, err := http.NewRequest("POST", ts.URL+"/v1/simulate", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			hr.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	// Burst of 2 admits two cells, then the bucket is empty.
	resp, body := post("k-alice", cellReq("compress", "N", MachineOOO), cellReq("compress", "S1", MachineOOO))
	if resp.StatusCode != 200 {
		t.Fatalf("within-burst request: status %d\n%s", resp.StatusCode, body)
	}
	resp, body = post("k-alice", cellReq("compress", "CC1", MachineOOO), cellReq("espresso", "N", MachineOOO))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429\n%s", resp.StatusCode, body)
	}
	var eb errorBody
	decodeTo(t, body, &eb)
	if eb.Error.Code != CodeRateLimited {
		t.Errorf("error code %q, want %q", eb.Error.Code, CodeRateLimited)
	}
	// Deficit is 2 cells at 1/s -> honest Retry-After of 2s.
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (2-cell deficit at 1 cell/s)", ra)
	}
	if n := s.sim.Reg.Counter(TenantMetricName(MetricRateLimited, "alice")).Load(); n != 1 {
		t.Errorf("per-tenant rate-limited counter = %d, want 1", n)
	}

	// Anonymous rides its own (unlimited) bucket.
	resp, body = post("", cellReq("tomcatv", "N", MachineOOO))
	if resp.StatusCode != 200 {
		t.Fatalf("anonymous request: status %d\n%s", resp.StatusCode, body)
	}

	// The clock advances 2s: alice's deficit has refilled, as promised.
	now = now.Add(2 * time.Second)
	resp, body = post("k-alice", cellReq("compress", "CC1", MachineOOO), cellReq("espresso", "N", MachineOOO))
	if resp.StatusCode != 200 {
		t.Fatalf("post-wait request: status %d, Retry-After lied\n%s", resp.StatusCode, body)
	}
}

// TestTenantAuth: unknown keys are 401 unauthorized; with DenyAnonymous,
// keyless requests are too.
func TestTenantAuth(t *testing.T) {
	tenants := testTenants(t, TenantsFile{
		Tenants:       []TenantSpec{{Name: "alice", Key: "k-alice"}},
		DenyAnonymous: true,
	})
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run, Tenants: tenants})

	for name, hdr := range map[string]func(*http.Request){
		"unknown key": func(r *http.Request) { r.Header.Set("X-API-Key", "wrong") },
		"keyless":     func(*http.Request) {},
		"bad bearer":  func(r *http.Request) { r.Header.Set("Authorization", "Bearer nope") },
	} {
		buf, _ := json.Marshal(SimulateRequest{Cells: []Request{cellReq("compress", "N", MachineOOO)}})
		hr, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", bytes.NewReader(buf))
		hdr(hr)
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401", name, resp.StatusCode)
			continue
		}
		var eb errorBody
		decodeTo(t, out.Bytes(), &eb)
		if eb.Error.Code != CodeUnauthorized {
			t.Errorf("%s: code %q, want %q", name, eb.Error.Code, CodeUnauthorized)
		}
	}
	if runner.total() != 0 {
		t.Errorf("unauthorized requests reached the runner (%d calls)", runner.total())
	}

	// Auth precedes validation: an unknown key with a garbage body is 401,
	// not 400 — an unauthenticated client learns nothing about the schema.
	hr, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", strings.NewReader("{not json"))
	hr.Header.Set("X-API-Key", "wrong")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown key + invalid body: status %d, want 401", resp.StatusCode)
	}

	// Bearer form of a valid key works.
	buf, _ := json.Marshal(SimulateRequest{Cells: []Request{cellReq("compress", "N", MachineOOO)}})
	hr, _ = http.NewRequest("POST", ts.URL+"/v1/simulate", bytes.NewReader(buf))
	hr.Header.Set("Authorization", "Bearer k-alice")
	resp, err = http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("bearer auth: status %d, want 200", resp.StatusCode)
	}
}

// TestWeightedFairDequeue: with three of alice's cells queued ahead of
// bob's one, the weighted-fair dispatcher starts bob's within two pops —
// a plain FIFO would start it last.
func TestWeightedFairDequeue(t *testing.T) {
	tenants := testTenants(t, TenantsFile{Tenants: []TenantSpec{
		{Name: "alice", Key: "k-alice"},
		{Name: "bob", Key: "k-bob"},
	}})
	runner := newFakeRunner(true)
	s, ts := newTestServer(t, Config{
		runCell: runner.run, Tenants: tenants,
		MaxBatch: 1, Workers: 1, QueueSize: 16,
	})

	post := func(key string, c Request) {
		buf, _ := json.Marshal(SimulateRequest{Cells: []Request{c}})
		hr, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", bytes.NewReader(buf))
		hr.Header.Set("X-API-Key", key)
		go http.DefaultClient.Do(hr) //nolint:errcheck // resolved via runner.started
	}

	// Occupy the dispatcher so everything after queues up.
	post("k-alice", cellReq("tomcatv", "N", MachineOOO))
	<-runner.started

	aliceCells := []Request{
		cellReq("compress", "N", MachineOOO),
		cellReq("compress", "S1", MachineOOO),
		cellReq("compress", "CC1", MachineOOO),
	}
	for _, c := range aliceCells {
		post("k-alice", c)
	}
	waitForQueued(t, s, 3)
	bobCell := cellReq("espresso", "N", MachineOOO)
	post("k-bob", bobCell)
	waitForQueued(t, s, 4)

	close(runner.release) // drain: pops now complete immediately
	bobKey := canonicalString(mustCanon(t, bobCell))
	for i := 0; i < 4; i++ {
		select {
		case key := <-runner.started:
			if key == bobKey {
				if i > 1 {
					t.Errorf("bob's cell started at position %d behind alice's backlog, want within first 2", i)
				}
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued cells never started")
		}
	}
	t.Fatal("bob's cell never started")
}

// TestOverloadRetryAfterComputed pins the satellite fix: a queue-overflow
// 429 carries a Retry-After computed from queue depth and batch latency
// (here: 1 queued / MaxBatch 1 + 1 = 2 rounds at the 1s prior = "2"),
// not the old hardcoded "1".
func TestOverloadRetryAfterComputed(t *testing.T) {
	runner := newFakeRunner(true)
	s, ts := newTestServer(t, Config{runCell: runner.run, QueueSize: 1, MaxBatch: 1, Workers: 1})
	defer close(runner.release)

	// One cell occupies the single-worker dispatcher, a second fills the
	// one-slot queue; the third overflows.
	go tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "N", MachineOOO)}})  //nolint:errcheck
	<-runner.started
	go tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "S1", MachineOOO)}}) //nolint:errcheck
	waitForQueued(t, s, 1)

	over, body, err := tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "CC1", MachineOOO)}})
	if err != nil {
		t.Fatal(err)
	}
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429\n%s", over.StatusCode, body)
	}
	var eb errorBody
	decodeTo(t, body, &eb)
	if eb.Error.Code != CodeOverload {
		t.Errorf("code %q, want %q", eb.Error.Code, CodeOverload)
	}
	ra, err := strconv.Atoi(over.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %q outside [1,30]", over.Header.Get("Retry-After"))
	}
	if ra != 2 {
		t.Errorf("Retry-After = %d, want 2 (2 dispatcher rounds at the 1s prior)", ra)
	}
}

// TestReadyz: /readyz turns ready once the dispatcher runs, and turns
// not-ready again on drain while /healthz stays 200 (liveness).
func TestReadyz(t *testing.T) {
	runner := newFakeRunner(false)
	s, ts := newTestServer(t, Config{runCell: runner.run})

	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("/readyz never became ready")
		case <-time.After(time.Millisecond):
		}
	}

	s.Drain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/healthz while draining: status %d, want 200 (liveness)", resp.StatusCode)
	}
}

// TestDifferentialWarmRestartGrid is the heavyweight restart proof on the
// 18-cell golden grid with the REAL simulators: generation 2 serves the
// whole grid byte-identically with a sim_instrs delta of exactly zero.
func TestDifferentialWarmRestartGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid simulation is heavy")
	}
	dir := t.TempDir()
	cells := diffGrid()

	s1 := New(Config{Store: openTestStore(t, dir, nil)})
	ts1 := httptest.NewServer(s1.Handler())
	resp, body := postJSON(t, ts1.URL+"/v1/simulate", SimulateRequest{Cells: cells})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	first := decodeSim(t, body)
	for i, cr := range first.Results {
		if cr.Error != nil {
			t.Fatalf("cell %+v failed: %+v", cells[i], cr.Error)
		}
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir, nil)})
	instrsBefore := s2.Sim().Instrs.Load()
	_, body2 := postJSON(t, ts2.URL+"/v1/simulate", SimulateRequest{Cells: cells})
	second := decodeSim(t, body2)
	for i, cr := range second.Results {
		if cr.Error != nil || !cr.Cached {
			t.Fatalf("restarted cell %+v not served from store: %+v", cells[i], cr)
		}
		if *cr.Run != *first.Results[i].Run {
			t.Errorf("cell %+v payload changed across restart", cells[i])
		}
	}
	if delta := s2.Sim().Instrs.Load() - instrsBefore; delta != 0 {
		t.Errorf("warm restart simulated %d instructions, want exactly 0", delta)
	}
}
