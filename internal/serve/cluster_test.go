package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"informing/internal/cluster"
	"informing/internal/experiments"
	"informing/internal/workload"
)

// In-process cluster harness. Each node is a full Server behind a real
// httptest listener; peer URLs are only known after the listeners exist,
// so the listeners start on an indirection that resolves the node's
// Server at request time (under a mutex — requests never arrive before
// setup finishes, but -race rightly demands the synchronisation).
type clusterNode struct {
	mu  sync.Mutex
	srv *Server
	ts  *httptest.Server
}

// testClusterSecret is the shared cluster token every in-process test
// node is configured with; requests forging the forwarded headers
// without it must be refused.
const testClusterSecret = "test-cluster-secret"

func (n *clusterNode) server() *Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// newTestClusterNodes boots size informd nodes sharing one static peer
// list. mkCfg supplies each node's Config (Cluster is filled in here).
func newTestClusterNodes(t *testing.T, size int, mkCfg func(i int) Config) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, size)
	urls := make([]string, size)
	for i := range nodes {
		node := &clusterNode{}
		node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			node.server().Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(node.ts.Close)
		nodes[i] = node
		urls[i] = node.ts.URL
	}
	for i, node := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:    urls[i],
			Peers:   urls,
			Version: CodeVersion,
			Secret:  testClusterSecret,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := mkCfg(i)
		cfg.Cluster = cl
		node.mu.Lock()
		node.srv = New(cfg)
		node.mu.Unlock()
		t.Cleanup(node.srv.Close)
	}
	return nodes
}

// clusterInstrs sums sim_instrs across every node: the cluster-wide
// "how much simulation actually ran" ledger.
func clusterInstrs(nodes []*clusterNode) uint64 {
	var total uint64
	for _, n := range nodes {
		total += n.server().Sim().Instrs.Load()
	}
	return total
}

// postJSONHeaders is postJSON with caller-controlled headers (API keys,
// forged cluster-hop headers).
func postJSONHeaders(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// fakeCell builds a distinct canonical-ready cell: MaxInsts participates
// in the fingerprint, so varying it yields arbitrarily many distinct keys
// over one real benchmark.
func fakeCell(maxInsts uint64) Request {
	return Request{Kind: KindCell, Benchmark: "compress", Plan: "N", Machine: MachineOOO, MaxInsts: maxInsts}
}

// ownerIndex resolves which node owns a (non-canonicalized) cell.
func ownerIndex(t *testing.T, nodes []*clusterNode, c Request) int {
	t.Helper()
	s := nodes[0].server()
	canon, err := Canonicalize(c, s.cfg.MaxInstsCap)
	if err != nil {
		t.Fatal(err)
	}
	owner := s.cluster.Owner(Fingerprint(canon))
	for i, n := range nodes {
		if n.server().cluster.Self() == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a cluster node", owner)
	return -1
}

// TestClusterGoldenGrid is the tentpole acceptance test: a 3-node
// cluster serves the 18-cell golden grid through one ingress node
// bit-identically to the sequential reference, with the non-owned cells
// actually forwarded; the identical grid repeated against a DIFFERENT
// node resolves entirely from caches — cluster-wide sim_instrs delta
// exactly zero, the obs layer proving no node re-simulated anything.
func TestClusterGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid simulation is heavy")
	}
	nodes := newTestClusterNodes(t, 3, func(int) Config { return Config{} })
	ingress := nodes[0].server()

	cells := diffGrid()
	notOwned := 0
	for _, c := range cells {
		if ownerIndex(t, nodes, c) != 0 {
			notOwned++
		}
	}
	if notOwned == 0 {
		t.Fatal("rendezvous hash left every grid cell on the ingress node; the test would not exercise forwarding")
	}

	resp, body := postJSON(t, nodes[0].ts.URL+"/v1/simulate", SimulateRequest{Cells: cells})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	if len(sr.Results) != len(cells) {
		t.Fatalf("got %d results, want %d", len(sr.Results), len(cells))
	}
	for i, cr := range sr.Results {
		if cr.Error != nil {
			t.Fatalf("cell %+v failed: %+v", cells[i], cr.Error)
		}
		want := directRun(t, cells[i])
		if *cr.Run != want {
			t.Errorf("cell %+v diverged from sequential reference:\n got: %+v\nwant: %+v", cells[i], *cr.Run, want)
		}
	}
	if got := ingress.met.Forwarded.Load(); got != uint64(notOwned) {
		t.Errorf("ingress forwarded %d cells, want %d (every non-owned cell)", got, notOwned)
	}

	// Round 2 against a different node: every cell cached somewhere in the
	// cluster, zero instructions simulated anywhere.
	instrsBefore := clusterInstrs(nodes)
	resp2, body2 := postJSON(t, nodes[1].ts.URL+"/v1/simulate", SimulateRequest{Cells: cells})
	if resp2.StatusCode != 200 {
		t.Fatalf("repeat status = %d\n%s", resp2.StatusCode, body2)
	}
	sr2 := decodeSim(t, body2)
	for i, cr := range sr2.Results {
		if cr.Error != nil || !cr.Cached {
			t.Fatalf("repeat cell %+v not served from a cluster cache: %+v", cells[i], cr)
		}
		if *cr.Run != *sr.Results[i].Run {
			t.Errorf("repeat payload for %+v differs between ingress nodes", cells[i])
		}
	}
	if delta := clusterInstrs(nodes) - instrsBefore; delta != 0 {
		t.Errorf("repeat grid simulated %d instructions cluster-wide, want exactly 0", delta)
	}
}

// TestClusterExperimentScatterGather: POST /v1/experiment against one
// cluster node scatters the grid's cells to their owners and gathers in
// submission order — the formatted table must be byte-identical to the
// sequential (-j 1) reference.
func TestClusterExperimentScatterGather(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid simulation is heavy")
	}
	nodes := newTestClusterNodes(t, 3, func(int) Config { return Config{} })

	req := ExperimentRequest{
		Title:      "cluster scatter/gather",
		Benchmarks: []string{"compress", "espresso", "tomcatv"},
		Plans:      []string{"N", "S1", "CC1"},
	}
	resp, body := postJSON(t, nodes[0].ts.URL+"/v1/experiment", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	var er ExperimentResponse
	decodeTo(t, body, &er)

	benchmarks, specs := resolveGrid(t, req.Benchmarks, req.Plans)
	opt := experiments.DefaultOptions()
	opt.Workers = 1 // the sequential reference path
	res, err := experiments.HandlerOverhead(benchmarks, specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := experiments.FormatFigure(req.Title, res)
	if er.Table != want {
		t.Errorf("cluster-served table differs from sequential reference:\n--- served ---\n%s--- sequential ---\n%s", er.Table, want)
	}
	if er.Cells != len(res) {
		t.Errorf("cells = %d, want %d", er.Cells, len(res))
	}

	// The same experiment against a different ingress node: no node
	// simulates anything.
	instrsBefore := clusterInstrs(nodes)
	_, body2 := postJSON(t, nodes[2].ts.URL+"/v1/experiment", req)
	var er2 ExperimentResponse
	decodeTo(t, body2, &er2)
	if er2.Table != want {
		t.Error("repeat cluster experiment table differs from sequential reference")
	}
	if delta := clusterInstrs(nodes) - instrsBefore; delta != 0 {
		t.Errorf("repeat experiment simulated %d instructions cluster-wide, want exactly 0", delta)
	}
}

// resolveGrid maps wire names to harness types for the reference path.
func resolveGrid(t *testing.T, benchNames, planLabels []string) ([]workload.Benchmark, []experiments.PlanSpec) {
	t.Helper()
	var bms []workload.Benchmark
	for _, name := range benchNames {
		bm, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		bms = append(bms, bm)
	}
	var specs []experiments.PlanSpec
	for _, label := range planLabels {
		spec, err := experiments.PlanByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	return bms, specs
}

// TestClusterPeerDownDegradesToLocal is the chaos lane: an owner node
// dying mid-workload costs the ingress node local recomputation, never an
// error and never a wrong answer.
func TestClusterPeerDownDegradesToLocal(t *testing.T) {
	runners := make([]*fakeRunner, 3)
	nodes := newTestClusterNodes(t, 3, func(i int) Config {
		runners[i] = newFakeRunner(false)
		return Config{runCell: runners[i].run}
	})
	ingress := nodes[0].server()

	// A workload of distinct cells spread across all three owners.
	var cells []Request
	victimOwned := 0
	for i := uint64(0); len(cells) < 24; i++ {
		c := fakeCell(10_000 + i)
		cells = append(cells, c)
		if ownerIndex(t, nodes, c) == 2 {
			victimOwned++
		}
	}
	if victimOwned == 0 {
		t.Fatal("no cell owned by the victim node; the test would not exercise failure")
	}

	// Healthy cluster: every cell computes exactly once, on its owner.
	resp, body := postJSON(t, nodes[0].ts.URL+"/v1/simulate", SimulateRequest{Cells: cells[:12]})
	if resp.StatusCode != 200 {
		t.Fatalf("warm-up status = %d\n%s", resp.StatusCode, body)
	}
	for i, cr := range decodeSim(t, body).Results {
		if cr.Error != nil {
			t.Fatalf("warm-up cell %d failed: %+v", i, cr.Error)
		}
	}
	for i, c := range cells[:12] {
		canon := mustCanon(t, c)
		owner := ownerIndex(t, nodes, c)
		if got := runners[owner].count(canon); got != 1 {
			t.Errorf("cell %d: owner node %d ran it %d times, want 1", i, owner, got)
		}
	}

	// The victim dies with fresh work outstanding.
	nodes[2].ts.CloseClientConnections()
	nodes[2].ts.Close()

	fresh := cells[12:]
	resp, body = postJSON(t, nodes[0].ts.URL+"/v1/simulate", SimulateRequest{Cells: fresh})
	if resp.StatusCode != 200 {
		t.Fatalf("degraded status = %d\n%s", resp.StatusCode, body)
	}
	for i, cr := range decodeSim(t, body).Results {
		if cr.Error != nil {
			t.Fatalf("degraded cell %d failed (peer loss must degrade, not error): %+v", i, cr.Error)
		}
		// fakeRunner's payload is a pure function of the canonical request,
		// so local fallback must produce the same answer the owner would.
		want := canonicalString(mustCanon(t, fresh[i]))
		if cr.Run == nil || cr.Run.Cycles != int64(len(want)) {
			t.Errorf("degraded cell %d: wrong payload %+v", i, cr.Run)
		}
	}
	// Every fresh victim-owned cell was computed by the ingress node.
	for i, c := range fresh {
		if ownerIndex(t, nodes, c) != 2 {
			continue
		}
		if got := runners[0].count(mustCanon(t, c)); got != 1 {
			t.Errorf("fresh victim-owned cell %d ran %d times on ingress, want 1 (local fallback)", i, got)
		}
	}
	if got := ingress.met.ForwardFallbacks.Load(); got == 0 {
		t.Error("serve_forward_fallbacks = 0, want > 0 after a peer died")
	}
	if st := ingress.cluster.Status()[nodes[2].ts.URL]; st.State != "down" {
		t.Errorf("victim peer state = %q, want down", st.State)
	}
}

// TestForwardedTenantNotDoubleCharged: a cluster-routed cell is charged
// against its tenant's token bucket exactly once, at the ingress node.
func TestForwardedTenantNotDoubleCharged(t *testing.T) {
	const burst = 20
	runners := make([]*fakeRunner, 2)
	nodes := newTestClusterNodes(t, 2, func(i int) Config {
		runners[i] = newFakeRunner(false)
		tenants, err := NewTenantSet(TenantsFile{Tenants: []TenantSpec{
			{Name: "alice", Key: "k-alice", RatePerSec: 0.0001, Burst: burst},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return Config{runCell: runners[i].run, Tenants: tenants}
	})
	auth := map[string]string{"X-API-Key": "k-alice"}

	// Exactly one burst of distinct cells through node 0; some forward to
	// node 1.
	var cells []Request
	for i := uint64(0); i < burst; i++ {
		cells = append(cells, fakeCell(20_000+i))
	}
	forwardedCount := 0
	for _, c := range cells {
		if ownerIndex(t, nodes, c) == 1 {
			forwardedCount++
		}
	}
	if forwardedCount == 0 {
		t.Fatal("no cell owned by the peer; the test would not exercise the forwarded hop")
	}
	resp, body := postJSONHeaders(t, nodes[0].ts.URL+"/v1/simulate", SimulateRequest{Cells: cells}, auth)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}

	// Node 0's bucket is now empty: one more cell there is rate-limited.
	resp, _ = postJSONHeaders(t, nodes[0].ts.URL+"/v1/simulate",
		SimulateRequest{Cells: []Request{fakeCell(30_000)}}, auth)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingress after full burst: status = %d, want 429", resp.StatusCode)
	}

	// Node 1's bucket must be untouched by the forwarded hops: a full
	// fresh burst directly against it is admitted. Before the fix (owner
	// re-charging forwarded cells) this request would 429.
	var fresh []Request
	for i := uint64(0); i < burst; i++ {
		fresh = append(fresh, fakeCell(40_000+i))
	}
	resp, body = postJSONHeaders(t, nodes[1].ts.URL+"/v1/simulate", SimulateRequest{Cells: fresh}, auth)
	if resp.StatusCode != 200 {
		t.Fatalf("peer bucket was drained by forwarded hops: status = %d\n%s", resp.StatusCode, body)
	}
}

// TestForwardedRequestNeverReForwarded is the loop guard: a request that
// already took its one peer hop is computed where it lands, even when the
// receiving node does not own it.
func TestForwardedRequestNeverReForwarded(t *testing.T) {
	runners := make([]*fakeRunner, 2)
	nodes := newTestClusterNodes(t, 2, func(i int) Config {
		runners[i] = newFakeRunner(false)
		return Config{runCell: runners[i].run}
	})

	// A cell owned by node 1, delivered to node 0 already marked as
	// forwarded (as a confused peer with a divergent peer list would —
	// a real peer, so it holds the cluster secret).
	var c Request
	for i := uint64(0); ; i++ {
		c = fakeCell(50_000 + i)
		if ownerIndex(t, nodes, c) == 1 {
			break
		}
	}
	resp, body := postJSONHeaders(t, nodes[0].ts.URL+"/v1/simulate",
		SimulateRequest{Cells: []Request{c}},
		map[string]string{HeaderForwarded: CodeVersion, HeaderClusterAuth: testClusterSecret})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	if cr := decodeSim(t, body).Results[0]; cr.Error != nil {
		t.Fatalf("forwarded cell failed: %+v", cr.Error)
	}
	if got := runners[0].count(mustCanon(t, c)); got != 1 {
		t.Errorf("receiving node ran the cell %d times, want 1 (computed where it landed)", got)
	}
	if got := runners[1].count(mustCanon(t, c)); got != 0 {
		t.Errorf("owner node ran the cell %d times, want 0 (no second hop)", got)
	}
	if got := nodes[0].server().met.Forwarded.Load(); got != 0 {
		t.Errorf("serve_forwarded_total = %d, want 0 (loop guard)", got)
	}
}

// TestForwardedVersionMismatch409: the per-request half of the version
// handshake — a correctly authenticated hop from a peer on a different
// simulator build is refused with 409 before any simulation.
func TestForwardedVersionMismatch409(t *testing.T) {
	runners := make([]*fakeRunner, 2)
	nodes := newTestClusterNodes(t, 2, func(i int) Config {
		runners[i] = newFakeRunner(false)
		return Config{runCell: runners[i].run}
	})
	resp, body := postJSONHeaders(t, nodes[0].ts.URL+"/v1/simulate",
		SimulateRequest{Cells: []Request{fakeCell(60_000)}},
		map[string]string{HeaderForwarded: "informing-sim/0-stale", HeaderClusterAuth: testClusterSecret})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409\n%s", resp.StatusCode, body)
	}
	if runners[0].total()+runners[1].total() != 0 {
		t.Error("mismatched hop reached the simulator")
	}
}

// TestForwardedHopRequiresClusterSecret: the forwarded branch bypasses
// API-key auth and tenant admission, so it must be unforgeable. A client
// that types the forwarded headers without the shared cluster secret is
// refused with 403 — it gets neither anonymous-bypass on a DenyAnonymous
// node nor a free pass around its token bucket — and a node that is not
// a cluster member refuses the header outright.
func TestForwardedHopRequiresClusterSecret(t *testing.T) {
	// Not a cluster member: the header is rejected no matter what.
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run})
	resp, body := postJSONHeaders(t, ts.URL+"/v1/simulate",
		SimulateRequest{Cells: []Request{fakeCell(61_000)}},
		map[string]string{HeaderForwarded: CodeVersion})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("single node: status = %d, want 403\n%s", resp.StatusCode, body)
	}
	if runner.total() != 0 {
		t.Error("forged hop reached the simulator on a non-cluster node")
	}

	// Cluster member with keyed-only tenants: forging the forwarded
	// headers (with a tenant name, without the secret or with a wrong
	// one) must not bypass authentication.
	runners := make([]*fakeRunner, 2)
	nodes := newTestClusterNodes(t, 2, func(i int) Config {
		runners[i] = newFakeRunner(false)
		tenants, err := NewTenantSet(TenantsFile{
			DenyAnonymous: true,
			Tenants:       []TenantSpec{{Name: "alice", Key: "k-alice", RatePerSec: 1, Burst: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Config{runCell: runners[i].run, Tenants: tenants}
	})
	for _, hdr := range []map[string]string{
		{HeaderForwarded: CodeVersion, HeaderForwardedTenant: "alice"},
		{HeaderForwarded: CodeVersion, HeaderForwardedTenant: "alice", HeaderClusterAuth: "wrong-secret"},
	} {
		resp, body := postJSONHeaders(t, nodes[0].ts.URL+"/v1/simulate",
			SimulateRequest{Cells: []Request{fakeCell(62_000)}}, hdr)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("forged hop %v: status = %d, want 403\n%s", hdr, resp.StatusCode, body)
		}
	}
	if runners[0].total()+runners[1].total() != 0 {
		t.Error("forged hop reached the simulator")
	}
}

// TestForwardFallbackLifecycleRetry: a remote flight that ended in the
// first caller's drain/shutdown race (remoteFlight.retry) must not hand
// that verdict to coalesced waiters — each waiter re-runs the local path
// under its own admission and gets a real answer.
func TestForwardFallbackLifecycleRetry(t *testing.T) {
	runner := newFakeRunner(false)
	s, _ := newTestServer(t, Config{runCell: runner.run})
	c := mustCanon(t, fakeCell(63_000))
	key := Fingerprint(c)

	rf := &remoteFlight{done: make(chan struct{}), out: outcome{err: errShutdown}, retry: true}
	close(rf.done)
	tn := s.tenants.resolveForwarded("")
	res := s.await(context.Background(), ticket{key: key, req: c, tn: tn, remote: rf})
	if res.Error != nil {
		t.Fatalf("waiter inherited the first caller's shutdown verdict: %+v", res.Error)
	}
	if got := runner.count(c); got != 1 {
		t.Errorf("retry computed the cell %d times locally, want 1", got)
	}

	// Sanity: the classifier separates lifecycle races from verdicts.
	if !lifecycleReject(errShutdown) || !lifecycleReject(&WireError{Code: CodeCanceled, Message: "server draining"}) {
		t.Error("lifecycle rejections not classified as retryable")
	}
	if lifecycleReject(nil) || lifecycleReject(&WireError{Code: CodeBudget, Message: "budget exhausted"}) {
		t.Error("deterministic verdicts classified as retryable")
	}
}

// TestReadyzSubsystemDetail: /readyz carries per-subsystem JSON detail —
// dispatcher, store, cluster — and cluster peers being down never makes
// the node unready.
func TestReadyzSubsystemDetail(t *testing.T) {
	// Single node: cluster subsystem reports single-node mode.
	_, ts := newTestServer(t, Config{runCell: newFakeRunner(false).run})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rb struct {
		Status     string `json:"status"`
		Subsystems struct {
			Dispatcher struct {
				Ready    bool `json:"ready"`
				Running  bool `json:"running"`
				Draining bool `json:"draining"`
			} `json:"dispatcher"`
			Store struct {
				Ready bool   `json:"ready"`
				State string `json:"state"`
			} `json:"store"`
			Cluster struct {
				Ready      bool                          `json:"ready"`
				Mode       string                        `json:"mode"`
				PeersTotal int                           `json:"peers_total"`
				PeersUp    int                           `json:"peers_up"`
				Peers      map[string]cluster.PeerStatus `json:"peers"`
			} `json:"cluster"`
		} `json:"subsystems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || rb.Status != "ready" {
		t.Fatalf("single node: status %d/%q, want 200/ready", resp.StatusCode, rb.Status)
	}
	if !rb.Subsystems.Dispatcher.Ready || !rb.Subsystems.Dispatcher.Running {
		t.Errorf("dispatcher detail = %+v, want ready+running", rb.Subsystems.Dispatcher)
	}
	if rb.Subsystems.Store.State != "disabled" || !rb.Subsystems.Store.Ready {
		t.Errorf("store detail = %+v, want ready+disabled", rb.Subsystems.Store)
	}
	if rb.Subsystems.Cluster.Mode != "single-node" {
		t.Errorf("cluster mode = %q, want single-node", rb.Subsystems.Cluster.Mode)
	}

	// Cluster node with a dead peer: detail shows the outage, status stays
	// ready (peer loss degrades to local compute, it does not break the
	// node).
	runners := make([]*fakeRunner, 2)
	nodes := newTestClusterNodes(t, 2, func(i int) Config {
		runners[i] = newFakeRunner(false)
		return Config{runCell: runners[i].run}
	})
	var c Request
	for i := uint64(0); ; i++ {
		c = fakeCell(70_000 + i)
		if ownerIndex(t, nodes, c) == 1 {
			break
		}
	}
	nodes[1].ts.CloseClientConnections()
	nodes[1].ts.Close()
	if resp, body := postJSON(t, nodes[0].ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{c}}); resp.StatusCode != 200 {
		t.Fatalf("degraded simulate status = %d\n%s", resp.StatusCode, body)
	}

	resp, err = http.Get(nodes[0].ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || rb.Status != "ready" {
		t.Fatalf("cluster node with dead peer: status %d/%q, want 200/ready", resp.StatusCode, rb.Status)
	}
	cs := rb.Subsystems.Cluster
	if cs.Mode != "cluster" || cs.PeersTotal != 1 || cs.PeersUp != 0 {
		t.Errorf("cluster detail = %+v, want cluster/1 peer/0 up", cs)
	}
	if st := cs.Peers[nodes[1].ts.URL]; st.State != "down" {
		t.Errorf("dead peer state = %q, want down", st.State)
	}
}
