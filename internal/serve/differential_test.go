package serve

import (
	"net/http/httptest"
	"testing"

	"informing/internal/experiments"
	"informing/internal/stats"
	"informing/internal/workload"
)

// The differential contract: informd is a transport in front of the same
// pure simulations the CLI runs, so its results must be bit-identical to
// the sequential reference path — and a repeated request must be served
// from the cache without simulating a single instruction.

// diffGrid is the 18-cell golden grid of internal/core's hot-path tests:
// three benchmarks × both machines × {no instrumentation, 1-instr trap
// handler, 1-instr condition-code check}.
func diffGrid() []Request {
	var cells []Request
	for _, bench := range []string{"compress", "espresso", "tomcatv"} {
		for _, machine := range []string{MachineOOO, MachineInOrder} {
			for _, plan := range []string{"N", "S1", "CC1"} {
				cells = append(cells, Request{Kind: KindCell, Benchmark: bench, Plan: plan, Machine: machine})
			}
		}
	}
	return cells
}

// directRun is the sequential reference: the same workload/config path the
// CLI's -j 1 lane uses, no serving layer involved.
func directRun(t *testing.T, c Request) stats.Run {
	t.Helper()
	canon, err := Canonicalize(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := workload.ByName(canon.Benchmark)
	if !ok {
		t.Fatalf("unknown benchmark %s", canon.Benchmark)
	}
	spec, err := experiments.PlanByLabel(canon.Plan)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(bm, spec.Make(), canon.Scale)
	if err != nil {
		t.Fatal(err)
	}
	machine, _, err := machineByName(canon.Machine)
	if err != nil {
		t.Fatal(err)
	}
	run, err := experiments.ConfigFor(machine, spec.Scheme).WithMaxInsts(canon.MaxInsts).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestDifferentialGoldenGrid runs the 18-cell grid through a real server
// (full HTTP round trip, real simulations) and demands:
//
//  1. every served stats.Run equals the sequential reference bit for bit;
//  2. an identical second batch is served entirely from the cache, with a
//     sim_instrs delta of exactly zero — the obs layer proving no cell was
//     re-simulated.
func TestDifferentialGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid simulation is heavy")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	cells := diffGrid()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: cells})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	if len(sr.Results) != len(cells) {
		t.Fatalf("got %d results, want %d", len(sr.Results), len(cells))
	}
	for i, cr := range sr.Results {
		if cr.Error != nil {
			t.Fatalf("cell %+v failed: %+v", cells[i], cr.Error)
		}
		want := directRun(t, cells[i])
		if *cr.Run != want {
			t.Errorf("cell %+v diverged from sequential reference:\n got: %+v\nwant: %+v", cells[i], *cr.Run, want)
		}
	}

	// Round 2: identical batch. Every cell cached, zero instructions
	// simulated, and the payloads unchanged.
	instrsBefore := s.Sim().Instrs.Load()
	_, body2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: cells})
	sr2 := decodeSim(t, body2)
	for i, cr := range sr2.Results {
		if cr.Error != nil || !cr.Cached {
			t.Fatalf("repeat cell %+v not served from cache: %+v", cells[i], cr)
		}
		if *cr.Run != *sr.Results[i].Run {
			t.Errorf("cached payload for %+v differs from computed payload", cells[i])
		}
	}
	if delta := s.Sim().Instrs.Load() - instrsBefore; delta != 0 {
		t.Errorf("repeat batch simulated %d instructions, want 0", delta)
	}
	if misses := s.met.Misses.Load(); misses != uint64(len(cells)) {
		t.Errorf("serve_cache_misses = %d, want %d (one per unique cell)", misses, len(cells))
	}
}

// TestDifferentialExperimentTable: POST /v1/experiment fig3 returns the
// exact bytes the sequential CLI prints for the same experiment — the
// served tables and the paper-reproduction tables cannot drift apart.
func TestDifferentialExperimentTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig3 sweep is heavy")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, body := postJSON(t, ts.URL+"/v1/experiment", ExperimentRequest{Name: "fig3"})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	var er ExperimentResponse
	decodeTo(t, body, &er)

	ne, err := experiments.Named("fig3")
	if err != nil {
		t.Fatal(err)
	}
	opt := experiments.DefaultOptions()
	opt.Workers = 1 // the sequential reference path
	opt.Baseline = ne.Baseline
	res, err := experiments.HandlerOverhead(ne.Benchmarks, ne.Specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := experiments.FormatFigure(ne.Title, res)
	if er.Table != want {
		t.Errorf("served table differs from sequential CLI table:\n--- served ---\n%s--- sequential ---\n%s", er.Table, want)
	}
	if er.Cells != len(res) {
		t.Errorf("cells = %d, want %d", er.Cells, len(res))
	}
	if er.Computed != len(res) || er.CacheHits != 0 {
		t.Errorf("first run: computed=%d hits=%d, want %d/0", er.Computed, er.CacheHits, len(res))
	}

	// Served again: the whole experiment resolves from the cache and the
	// table is still byte-identical.
	instrsBefore := s.Sim().Instrs.Load()
	_, body2 := postJSON(t, ts.URL+"/v1/experiment", ExperimentRequest{Name: "fig3"})
	var er2 ExperimentResponse
	decodeTo(t, body2, &er2)
	if er2.Table != want {
		t.Error("cached experiment table differs from sequential CLI table")
	}
	if er2.CacheHits != len(res) || er2.Computed != 0 {
		t.Errorf("repeat run: computed=%d hits=%d, want 0/%d", er2.Computed, er2.CacheHits, len(res))
	}
	if delta := s.Sim().Instrs.Load() - instrsBefore; delta != 0 {
		t.Errorf("repeat experiment simulated %d instructions, want 0", delta)
	}
}
