package serve

// POST /v1/explain: the miss-taxonomy view of the simulation service.
//
// An explain request is a batch of cells exactly like POST /v1/simulate —
// the same Request wire type, the same canonicalization, the same cache
// fingerprints — but the response answers a different question: not "how
// fast was it" but "why did it miss". Each result carries the per-level
// Hill taxonomy (DESIGN.md §17) of the simulated run: compulsory /
// capacity / conflict / coherence counts plus each class's fraction of
// the level's misses.
//
// Because explain rides the ordinary submit/await machinery, everything
// the simulate path earned comes for free: repeats are served from the
// RAM LRU / durable store without re-simulating (the differential tests
// prove a zero sim_instrs delta), identical concurrent requests coalesce
// onto one flight, and in cluster mode non-owned fingerprints forward to
// their rendezvous owner — an explain and a simulate of the same cell
// share one cache entry, because the taxonomy is part of every stored
// outcome, not a separate computation.

import (
	"fmt"
	"net/http"
	"time"

	"informing/internal/stats"
)

// ExplainRequest is the body of POST /v1/explain: a batch of cells whose
// miss taxonomy the caller wants. Any simulate-able kind is accepted —
// cell and program kinds explain the run's data hierarchy, fig4 the
// per-processor hierarchies summed, trace the replayed hierarchies.
type ExplainRequest struct {
	Cells []Request `json:"cells"`
}

// ClassBreakdown is one cache level's miss taxonomy on the wire: the
// class counts (which sum to Misses by construction) and each class's
// fraction of the level's misses (all zero when the level never missed).
type ClassBreakdown struct {
	Misses     uint64 `json:"misses"`
	Compulsory uint64 `json:"compulsory"`
	Capacity   uint64 `json:"capacity"`
	Conflict   uint64 `json:"conflict"`
	Coherence  uint64 `json:"coherence"`

	CompulsoryFrac float64 `json:"compulsory_frac"`
	CapacityFrac   float64 `json:"capacity_frac"`
	ConflictFrac   float64 `json:"conflict_frac"`
	CoherenceFrac  float64 `json:"coherence_frac"`
}

func breakdown(t stats.MissClasses) ClassBreakdown {
	b := ClassBreakdown{
		Misses:     t.Total(),
		Compulsory: t.Compulsory,
		Capacity:   t.Capacity,
		Conflict:   t.Conflict,
		Coherence:  t.Coherence,
	}
	if b.Misses > 0 {
		inv := 1 / float64(b.Misses)
		b.CompulsoryFrac = float64(t.Compulsory) * inv
		b.CapacityFrac = float64(t.Capacity) * inv
		b.ConflictFrac = float64(t.Conflict) * inv
		b.CoherenceFrac = float64(t.Coherence) * inv
	}
	return b
}

// ExplainResult is the per-cell answer: the cache key and cached flag
// (identical to what /v1/simulate would report for the same cell), the
// canonical replacement policy the cell ran under (cell kinds only), and
// the two per-level breakdowns.
type ExplainResult struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Policy string          `json:"policy,omitempty"`
	L1     *ClassBreakdown `json:"l1,omitempty"`
	L2     *ClassBreakdown `json:"l2,omitempty"`
	Error  *WireError      `json:"error,omitempty"`
}

// ExplainResponse mirrors ExplainRequest: Results[i] answers Cells[i].
type ExplainResponse struct {
	Results []ExplainResult `json:"results"`
}

// explainResult projects one completed cell onto its taxonomy view.
func explainResult(cr CellResult, policy string) ExplainResult {
	er := ExplainResult{Key: cr.Key, Cached: cr.Cached, Policy: policy, Error: cr.Error}
	var l1, l2 stats.MissClasses
	switch {
	case cr.Run != nil:
		l1, l2 = cr.Run.L1Tax, cr.Run.L2Tax
	case cr.Multi != nil:
		l1, l2 = cr.Multi.L1Tax, cr.Multi.L2Tax
	case cr.Replay != nil:
		l1, l2 = cr.Replay.Total.L1Tax, cr.Replay.Total.L2Tax
	default:
		return er
	}
	b1, b2 := breakdown(l1), breakdown(l2)
	er.L1, er.L2 = &b1, &b2
	return er
}

// handleExplain is handleSimulate with a taxonomy-shaped response: same
// validation, same admission, same submit-all-then-await-all batching.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observeLatency(start)
	s.met.Requests.Inc()
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, &WireError{Code: CodeCanceled, Message: "server draining"})
		return
	}

	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	forwarded := isForwarded(r)
	var req ExplainRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: "no cells in request"})
		return
	}
	if len(req.Cells) > s.cfg.MaxCellsPerRequest {
		writeError(w, http.StatusBadRequest, &WireError{
			Code: CodeInvalid, Message: fmt.Sprintf("%d cells above per-request limit %d", len(req.Cells), s.cfg.MaxCellsPerRequest)})
		return
	}
	if !s.admitTenant(w, tn, len(req.Cells), forwarded) {
		return
	}
	s.met.Cells.Add(uint64(len(req.Cells)))
	if forwarded {
		s.met.ForwardedServed.Add(uint64(len(req.Cells)))
	}

	results := make([]ExplainResult, len(req.Cells))
	tickets := make([]*ticket, len(req.Cells))
	policies := make([]string, len(req.Cells))
	for i, cell := range req.Cells {
		canon, err := Canonicalize(cell, s.cfg.MaxInstsCap)
		if err != nil {
			results[i] = ExplainResult{Error: &WireError{Code: CodeInvalid, Message: err.Error()}}
			s.met.CellErrors.Inc()
			continue
		}
		policies[i] = canon.Policy
		t, we := s.submit(r.Context(), canon, tn, false, forwarded)
		if we != nil {
			for _, prev := range tickets {
				if prev != nil && prev.f != nil {
					s.leave(prev.f)
				}
			}
			if we.Code == CodeCanceled {
				writeError(w, http.StatusServiceUnavailable, we)
				return
			}
			writeErrorRetry(w, http.StatusTooManyRequests, we, s.overloadRetryAfter())
			return
		}
		t2 := t
		tickets[i] = &t2
	}

	for i, t := range tickets {
		if t == nil {
			continue // per-cell validation error already recorded
		}
		results[i] = explainResult(s.await(r.Context(), *t), policies[i])
		if results[i].Error != nil && results[i].Error.Code != CodeCanceled {
			s.met.CellErrors.Inc()
		}
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Results: results})
}
