package serve

import (
	"math"
	"net/http/httptest"
	"testing"
)

// explainCell is the light explain-test cell: one golden-grid point,
// small enough to simulate in tens of milliseconds.
func explainCell(policy string) Request {
	return Request{Kind: KindCell, Benchmark: "compress", Plan: "N", Machine: MachineOOO, Policy: policy}
}

func checkBreakdown(t *testing.T, name string, b *ClassBreakdown) {
	t.Helper()
	if b == nil {
		t.Fatalf("%s: no breakdown", name)
	}
	if sum := b.Compulsory + b.Capacity + b.Conflict + b.Coherence; sum != b.Misses {
		t.Errorf("%s: classes sum to %d, misses %d", name, sum, b.Misses)
	}
	fsum := b.CompulsoryFrac + b.CapacityFrac + b.ConflictFrac + b.CoherenceFrac
	switch {
	case b.Misses == 0:
		if fsum != 0 {
			t.Errorf("%s: zero misses but fractions sum to %g", name, fsum)
		}
	case math.Abs(fsum-1) > 1e-9:
		t.Errorf("%s: fractions sum to %g, want 1", name, fsum)
	}
}

// TestExplainRoundTrip: POST /v1/explain answers with the taxonomy of the
// same simulation /v1/simulate runs — one cache entry serves both views.
// The repeat (and the cross-endpoint repeat) must be served from the
// cache with a sim_instrs delta of exactly zero.
func TestExplainRoundTrip(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Simulate first: the explain of the same cell below must be a cache
	// hit — taxonomy is part of every stored outcome, not a re-simulation.
	cell := explainCell("")
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cell}})
	if resp.StatusCode != 200 {
		t.Fatalf("simulate status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	if sr.Results[0].Error != nil {
		t.Fatalf("simulate failed: %+v", sr.Results[0].Error)
	}
	run := sr.Results[0].Run

	instrsBefore := s.Sim().Instrs.Load()
	resp, body = postJSON(t, ts.URL+"/v1/explain", ExplainRequest{Cells: []Request{cell}})
	if resp.StatusCode != 200 {
		t.Fatalf("explain status = %d\n%s", resp.StatusCode, body)
	}
	var er ExplainResponse
	decodeTo(t, body, &er)
	if len(er.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(er.Results))
	}
	res := er.Results[0]
	if res.Error != nil {
		t.Fatalf("explain failed: %+v", res.Error)
	}
	if !res.Cached {
		t.Error("explain after simulate of the same cell was not a cache hit")
	}
	if delta := s.Sim().Instrs.Load() - instrsBefore; delta != 0 {
		t.Errorf("explain of a cached cell simulated %d instructions, want 0", delta)
	}
	if res.Key != sr.Results[0].Key {
		t.Errorf("explain key %s != simulate key %s (must share one cache entry)", res.Key, sr.Results[0].Key)
	}
	if res.Policy != "lru" {
		t.Errorf("default policy echoed as %q, want %q", res.Policy, "lru")
	}
	checkBreakdown(t, "L1", res.L1)
	checkBreakdown(t, "L2", res.L2)
	// The breakdown is exactly the run's taxonomy, and the taxonomy
	// conserves against the run's architectural miss counters.
	if res.L1.Compulsory != run.L1Tax.Compulsory || res.L1.Capacity != run.L1Tax.Capacity ||
		res.L1.Conflict != run.L1Tax.Conflict || res.L1.Coherence != run.L1Tax.Coherence {
		t.Errorf("L1 breakdown %+v does not match run taxonomy %+v", *res.L1, run.L1Tax)
	}
	if res.L1.Misses != run.L1Misses {
		t.Errorf("L1 breakdown misses %d, run L1Misses %d", res.L1.Misses, run.L1Misses)
	}
	if res.L2.Misses != run.L2Misses {
		t.Errorf("L2 breakdown misses %d, run L2Misses %d", res.L2.Misses, run.L2Misses)
	}

	// A different policy is a different fingerprint: fresh computation,
	// its own taxonomy, its own cache entry.
	resp, body = postJSON(t, ts.URL+"/v1/explain", ExplainRequest{Cells: []Request{explainCell("srrip")}})
	if resp.StatusCode != 200 {
		t.Fatalf("srrip explain status = %d\n%s", resp.StatusCode, body)
	}
	var er2 ExplainResponse
	decodeTo(t, body, &er2)
	res2 := er2.Results[0]
	if res2.Error != nil {
		t.Fatalf("srrip explain failed: %+v", res2.Error)
	}
	if res2.Cached {
		t.Error("srrip cell was served from the lru cell's cache entry")
	}
	if res2.Key == res.Key {
		t.Error("policy dimension did not change the cache key")
	}
	if res2.Policy != "srrip" {
		t.Errorf("policy echoed as %q, want %q", res2.Policy, "srrip")
	}
	checkBreakdown(t, "srrip L1", res2.L1)
	checkBreakdown(t, "srrip L2", res2.L2)

	// Unknown policies are per-cell validation errors, like any other
	// canonicalization failure.
	_, body = postJSON(t, ts.URL+"/v1/explain", ExplainRequest{Cells: []Request{explainCell("mru")}})
	var er3 ExplainResponse
	decodeTo(t, body, &er3)
	if er3.Results[0].Error == nil || er3.Results[0].Error.Code != CodeInvalid {
		t.Errorf("unknown policy accepted: %+v", er3.Results[0])
	}
}

// TestClusterExplain: /v1/explain participates in cluster routing like
// /v1/simulate — a non-owned cell forwards to its rendezvous owner, and
// the repeat through a DIFFERENT non-owner node is served from caches
// with a cluster-wide sim_instrs delta of exactly zero.
func TestClusterExplain(t *testing.T) {
	nodes := newTestClusterNodes(t, 3, func(int) Config { return Config{} })

	// Find a cell the ingress node does not own, so the first request
	// actually takes the forwarding path.
	cell := explainCell("")
	owner := ownerIndex(t, nodes, cell)
	ingress := (owner + 1) % len(nodes)
	other := (owner + 2) % len(nodes)

	resp, body := postJSON(t, nodes[ingress].ts.URL+"/v1/explain", ExplainRequest{Cells: []Request{cell}})
	if resp.StatusCode != 200 {
		t.Fatalf("explain via node %d: status = %d\n%s", ingress, resp.StatusCode, body)
	}
	var er ExplainResponse
	decodeTo(t, body, &er)
	if er.Results[0].Error != nil {
		t.Fatalf("explain failed: %+v", er.Results[0].Error)
	}
	checkBreakdown(t, "L1", er.Results[0].L1)
	checkBreakdown(t, "L2", er.Results[0].L2)
	if fwd := nodes[ingress].server().met.Forwarded.Load(); fwd == 0 {
		t.Error("non-owned explain cell was not forwarded")
	}

	// Repeat through the third node (neither previous ingress nor owner):
	// its forward reaches the owner's cache; nothing re-simulates anywhere.
	instrsBefore := clusterInstrs(nodes)
	resp, body = postJSON(t, nodes[other].ts.URL+"/v1/explain", ExplainRequest{Cells: []Request{cell}})
	if resp.StatusCode != 200 {
		t.Fatalf("explain via node %d: status = %d\n%s", other, resp.StatusCode, body)
	}
	var er2 ExplainResponse
	decodeTo(t, body, &er2)
	res := er2.Results[0]
	if res.Error != nil {
		t.Fatalf("repeat explain failed: %+v", res.Error)
	}
	if !res.Cached {
		t.Error("repeat explain via a non-owner node was not served from cache")
	}
	if delta := clusterInstrs(nodes) - instrsBefore; delta != 0 {
		t.Errorf("repeat explain simulated %d instructions cluster-wide, want 0", delta)
	}
	if *res.L1 != *er.Results[0].L1 || *res.L2 != *er.Results[0].L2 {
		t.Error("cached explain breakdown differs from the computed one")
	}
}
