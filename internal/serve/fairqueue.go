package serve

// fairQueue replaces the serving layer's plain bounded channel with a
// weighted-fair queue: flights are held in per-tenant FIFOs and the
// dispatcher drains them weighted-round-robin, so a tenant that floods
// the queue with a large experiment only delays its own cells — another
// tenant's interactive request entering behind the flood is dequeued
// after at most (sum of active weights) pops, not after the whole flood.
//
// Within a tenant, order stays strict FIFO (the deterministic-merge
// contracts downstream rely on submission order per request, which the
// handler preserves by awaiting tickets in order — the queue only decides
// *when* a flight reaches the pool, never what it computes).
//
// Capacity is global (QueueSize): the queue overflowing is still the
// server's backpressure signal. The ready/space channels carry
// level-triggered wakeups (capacity 1, non-blocking sends): consumers
// re-check state after every wakeup, so coalesced signals are safe.

import (
	"sync"

	"informing/internal/obs"
)

type tenantFIFO struct {
	t     *tenant
	items []*flight
	head  int
}

func (f *tenantFIFO) empty() bool { return f.head == len(f.items) }

// fifoCompactMin is the consumed-prefix length below which pop skips
// compaction: small queues never pay the copy, and a queue that empties is
// reset wholesale anyway.
const fifoCompactMin = 32

func (f *tenantFIFO) pop() *flight {
	fl := f.items[f.head]
	f.items[f.head] = nil // release for GC
	f.head++
	switch {
	case f.head == len(f.items):
		// Fully drained: drop the backing array instead of keeping it at
		// its high-water size. (The queue also deletes a drained FIFO from
		// the tenant map, but closeAndDrain and any future reuse go
		// through here too, and a tenant that is re-added a moment later
		// must not resurrect a flood-sized array.)
		f.items, f.head = nil, 0
	case f.head >= fifoCompactMin && f.head >= len(f.items)/2:
		// A continuously-busy tenant never drains, so without compaction
		// its slice grows by every flight it ever queued: append sees a
		// full backing array and reallocates, while the consumed prefix
		// keeps the old capacity live. Copying the tail into a right-sized
		// allocation caps memory at O(live flights) and costs amortized
		// O(1) per pop (each element moves at most once per doubling).
		live := make([]*flight, len(f.items)-f.head)
		copy(live, f.items[f.head:])
		f.items, f.head = live, 0
	}
	return fl
}

type fairQueue struct {
	mu     sync.Mutex
	cap    int
	size   int
	closed bool

	fifos  map[string]*tenantFIFO
	ring   []*tenantFIFO // active tenants, weighted-round-robin order
	cursor int
	credit int // pops left for ring[cursor] this round

	ready chan struct{} // signalled on push: work may be available
	space chan struct{} // signalled on pop: a slot may be free

	depthGauge *obs.Counter
}

func newFairQueue(capacity int, depthGauge *obs.Counter) *fairQueue {
	return &fairQueue{
		cap:        capacity,
		fifos:      map[string]*tenantFIFO{},
		ready:      make(chan struct{}, 1),
		space:      make(chan struct{}, 1),
		depthGauge: depthGauge,
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// tryPush enqueues f under its tenant's FIFO. ok=false with closed=false
// means the queue is full (the 429 path); closed=true means the server is
// shutting down and nothing will ever drain the queue again.
func (q *fairQueue) tryPush(f *flight) (ok, closed bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false, true
	}
	if q.size >= q.cap {
		q.mu.Unlock()
		return false, false
	}
	fifo, have := q.fifos[f.tn.name]
	if !have {
		fifo = &tenantFIFO{t: f.tn}
		q.fifos[f.tn.name] = fifo
		q.ring = append(q.ring, fifo)
	}
	fifo.items = append(fifo.items, f)
	q.size++
	q.depthGauge.Store(uint64(q.size))
	q.mu.Unlock()
	signal(q.ready)
	return true, false
}

// pop removes the next flight under weighted round robin, or nil when the
// queue is empty. The caller waits on q.ready before retrying.
func (q *fairQueue) pop() *flight {
	q.mu.Lock()
	if q.size == 0 {
		q.mu.Unlock()
		return nil
	}
	if q.cursor >= len(q.ring) {
		q.cursor = 0
	}
	fifo := q.ring[q.cursor]
	if q.credit <= 0 {
		q.credit = fifo.t.weight
		if q.credit < 1 {
			q.credit = 1
		}
	}
	f := fifo.pop()
	q.credit--
	q.size--
	if fifo.empty() {
		delete(q.fifos, fifo.t.name)
		q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
		q.credit = 0 // cursor now points at the next tenant
	} else if q.credit == 0 {
		q.cursor++
	}
	q.depthGauge.Store(uint64(q.size))
	q.mu.Unlock()
	signal(q.space)
	return f
}

func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// closeAndDrain marks the queue closed (tryPush fails with closed=true
// from now on) and returns everything still queued, in per-tenant order,
// for the caller to fail with the shutdown error.
func (q *fairQueue) closeAndDrain() []*flight {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var rest []*flight
	for _, fifo := range q.ring {
		for !fifo.empty() {
			rest = append(rest, fifo.pop())
		}
	}
	q.ring, q.fifos = nil, map[string]*tenantFIFO{}
	q.size = 0
	q.depthGauge.Store(0)
	return rest
}
