package serve

import (
	"testing"

	"informing/internal/obs"
)

// A tenant that always has at least one flight queued never fully drains
// its FIFO, so pop's full-drain reset never fires for it. Before the
// compaction path was added, such a tenant's backing array grew by every
// flight it ever queued (pop only nils and advances head; append sees a
// full array and keeps doubling), an unbounded leak across the life of
// the server. The regression test pushes and pops in steady state and
// asserts the backing array stays proportional to the live queue depth.
func TestFairQueueBusyTenantArrayBounded(t *testing.T) {
	q := newFairQueue(1<<20, &obs.Counter{})
	tn := &tenant{name: "busy", weight: 1}

	const live = 40
	for i := 0; i < live; i++ {
		if ok, _ := q.tryPush(&flight{tn: tn}); !ok {
			t.Fatalf("push %d refused", i)
		}
	}
	for i := 0; i < 50_000; i++ {
		if ok, _ := q.tryPush(&flight{tn: tn}); !ok {
			t.Fatalf("push refused at iteration %d", i)
		}
		if q.pop() == nil {
			t.Fatalf("pop returned nil at iteration %d", i)
		}
	}

	fifo := q.fifos["busy"]
	if fifo == nil {
		t.Fatal("busy tenant FIFO missing")
	}
	if got := len(fifo.items) - fifo.head; got != live {
		t.Fatalf("live flights = %d, want %d", got, live)
	}
	// 4×live is generous slack for append doubling plus the pre-compaction
	// consumed prefix; the pre-fix behavior is cap ≥ 50 000.
	if cap(fifo.items) > 4*live {
		t.Fatalf("backing array grew to cap %d for %d live flights; compaction is not releasing the consumed prefix",
			cap(fifo.items), live)
	}
}

// Draining a FIFO completely must drop the backing array, not retain it at
// its high-water size: closeAndDrain pops through the same path, and a
// flood-sized array must not stay reachable from a retained tenantFIFO.
func TestFairQueueDrainReleasesArray(t *testing.T) {
	q := newFairQueue(1<<20, &obs.Counter{})
	tn := &tenant{name: "burst", weight: 1}

	const burst = 1000
	for i := 0; i < burst; i++ {
		if ok, _ := q.tryPush(&flight{tn: tn}); !ok {
			t.Fatalf("push %d refused", i)
		}
	}
	fifo := q.fifos["burst"]
	for i := 0; i < burst; i++ {
		if q.pop() == nil {
			t.Fatalf("pop %d returned nil", i)
		}
	}
	if fifo.items != nil || fifo.head != 0 {
		t.Fatalf("drained FIFO retains backing array: len %d cap %d head %d",
			len(fifo.items), cap(fifo.items), fifo.head)
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue returned a flight")
	}
}

// Compaction must not disturb FIFO order or weighted round robin across
// tenants.
func TestFairQueueOrderSurvivesCompaction(t *testing.T) {
	q := newFairQueue(1<<20, &obs.Counter{})
	tn := &tenant{name: "t", weight: 1}

	next := 0 // next key expected out
	seq := 0  // next key pushed
	push := func() {
		t.Helper()
		if ok, _ := q.tryPush(&flight{tn: tn, key: string(rune('A' + seq%26))}); !ok {
			t.Fatal("push refused")
		}
		seq++
	}
	for i := 0; i < 48; i++ {
		push()
	}
	for i := 0; i < 10_000; i++ {
		push()
		fl := q.pop()
		if fl == nil {
			t.Fatalf("pop returned nil at iteration %d", i)
		}
		if want := string(rune('A' + next%26)); fl.key != want {
			t.Fatalf("iteration %d: popped key %q, want %q (FIFO order broken)", i, fl.key, want)
		}
		next++
	}
}
