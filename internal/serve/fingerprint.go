package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CodeVersion names the simulator semantics the cache keys are valid for.
// It participates in every fingerprint, so results computed by one build
// of the simulator are never served for a build whose measured statistics
// could differ. Bump it whenever a change would re-record the hot-path
// golden grid (internal/core TestHotpathGolden) — the two pins guard the
// same property from opposite directions.
const CodeVersion = "informing-sim/6"

// Fingerprint returns the cache key of a canonical request: the first 16
// bytes of the SHA-256 of its canonical string, hex-encoded (32
// characters). Keys are stable across processes and architectures — the
// canonical string is built from struct fields in a fixed order, never
// from map iteration or wire field order — and the fingerprint-determinism
// tests regression-pin known keys in testdata/fingerprints.json.
//
// Call only with a request Canonicalize has produced; fingerprinting a
// non-canonical request would let two spellings of the same simulation
// occupy two cache slots (correct but wasteful) — or worse, let a
// non-validated field into the key.
func Fingerprint(c Request) string {
	sum := sha256.Sum256([]byte(canonicalString(c)))
	return hex.EncodeToString(sum[:16])
}

// canonicalString serialises a canonical request field by field in a
// fixed order. Program sources are folded in as their own SHA-256 so the
// canonical string stays bounded and printable.
func canonicalString(c Request) string {
	switch c.Kind {
	case KindCell:
		return fmt.Sprintf("%s|cell|bench=%s|plan=%s|machine=%s|scale=%d|maxinsts=%d|policy=%s",
			CodeVersion, c.Benchmark, c.Plan, c.Machine, c.Scale, c.MaxInsts, c.Policy)
	case KindFig4:
		return fmt.Sprintf("%s|fig4|app=%s|scheme=%s|procs=%d|maxrefs=%d",
			CodeVersion, c.App, c.Scheme, c.Processors, c.MaxRefs)
	case KindProgram:
		src := sha256.Sum256([]byte(c.Source))
		return fmt.Sprintf("%s|program|machine=%s|scheme=%s|maxinsts=%d|src=%s",
			CodeVersion, c.Machine, c.Scheme, c.MaxInsts, hex.EncodeToString(src[:]))
	case KindTrace:
		// Like program sources, the trace content folds in as its own
		// SHA-256 so multi-megabyte traces keep the canonical string
		// bounded.
		tr := sha256.Sum256([]byte(c.Trace))
		return fmt.Sprintf("%s|trace|machine=%s|maxrefs=%d|sampled=%t|trace=%s",
			CodeVersion, c.Machine, c.MaxRefs, c.AllowSampled, hex.EncodeToString(tr[:]))
	}
	// Canonicalize never emits another kind; keep unknown kinds from
	// colliding with anything real.
	return fmt.Sprintf("%s|unknown|%q", CodeVersion, c.Kind)
}
