package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestFingerprintSpellingInvariance: every wire spelling of the same
// simulation canonicalizes to the same struct and therefore the same
// fingerprint — machine aliases, omitted defaults, plan-suffix noise and
// JSON field order must all be invisible to the cache key.
func TestFingerprintSpellingInvariance(t *testing.T) {
	groups := [][]Request{
		{
			{Kind: KindCell, Benchmark: "compress", Plan: "S1"},
			{Kind: KindCell, Benchmark: "compress", Plan: "S1", Machine: "ooo"},
			{Kind: KindCell, Benchmark: "compress", Plan: "S1", Machine: "out-of-order"},
			{Kind: KindCell, Benchmark: "compress", Plan: "S1/branch", Scale: 1},
			{Kind: KindCell, Benchmark: "compress", Plan: "S1", MaxInsts: DefaultMaxInsts},
			{Kind: KindCell, Benchmark: "compress", Plan: "S1", Policy: "lru"},
		},
		{
			{Kind: KindCell, Benchmark: "tomcatv", Plan: "CC1", Machine: "inorder"},
			{Kind: KindCell, Benchmark: "tomcatv", Plan: "CC1", Machine: "in-order"},
		},
		{
			{Kind: KindFig4, App: "lu", Scheme: "informing"},
			{Kind: KindFig4, App: "lu", Scheme: "informing", Processors: DefaultProcessors},
		},
		{
			{Kind: KindProgram, Source: "\thalt\n"},
			{Kind: KindProgram, Source: "\thalt\n", Machine: "ooo", Scheme: "off"},
		},
	}
	for gi, group := range groups {
		want := ""
		for si, req := range group {
			canon, err := Canonicalize(req, 0)
			if err != nil {
				t.Fatalf("group %d spelling %d: %v", gi, si, err)
			}
			key := Fingerprint(canon)
			if si == 0 {
				want = key
				continue
			}
			if key != want {
				t.Errorf("group %d spelling %d: key %s, want %s (spellings of one simulation must share a key)",
					gi, si, key, want)
			}
		}
	}
}

// TestFingerprintFieldOrderInvariance: the key is computed from struct
// fields in a fixed order, so the JSON wire order cannot matter.
func TestFingerprintFieldOrderInvariance(t *testing.T) {
	docs := []string{
		`{"kind":"cell","benchmark":"compress","plan":"S1","machine":"ooo","scale":2}`,
		`{"scale":2,"machine":"ooo","plan":"S1","benchmark":"compress","kind":"cell"}`,
		`{"plan":"S1","kind":"cell","scale":2,"benchmark":"compress","machine":"ooo"}`,
	}
	want := ""
	for i, doc := range docs {
		var req Request
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatal(err)
		}
		canon, err := Canonicalize(req, 0)
		if err != nil {
			t.Fatal(err)
		}
		key := Fingerprint(canon)
		if i == 0 {
			want = key
		} else if key != want {
			t.Errorf("field order %d changed the key: %s vs %s", i, key, want)
		}
	}
}

// TestFingerprintSensitivity: any change to what would be simulated — the
// plan, the workload, the machine, the budget, the scale, the program
// text, the processor count — must change the key.
func TestFingerprintSensitivity(t *testing.T) {
	base := Request{Kind: KindCell, Benchmark: "compress", Plan: "S1"}
	variants := []Request{
		{Kind: KindCell, Benchmark: "compress", Plan: "S2"},
		{Kind: KindCell, Benchmark: "compress", Plan: "U1"},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1/exception"},
		{Kind: KindCell, Benchmark: "espresso", Plan: "S1"},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1", Machine: MachineInOrder},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1", Scale: 2},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1", MaxInsts: 1_000_000},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1", Policy: "srrip"},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1", Policy: "brrip"},
		{Kind: KindCell, Benchmark: "compress", Plan: "S1", Policy: "trrip"},
	}
	seen := map[string]string{}
	record := func(r Request) string {
		canon, err := Canonicalize(r, 0)
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		return Fingerprint(canon)
	}
	baseKey := record(base)
	seen[baseKey] = "base"
	for _, v := range variants {
		key := record(v)
		if prev, dup := seen[key]; dup {
			t.Errorf("key collision: %+v and %s share %s", v, prev, key)
		}
		seen[key] = fmt.Sprintf("%+v", v)
	}

	// Program text and fig4 topology are part of the key too.
	p1 := record(Request{Kind: KindProgram, Source: "\thalt\n"})
	p2 := record(Request{Kind: KindProgram, Source: "\tnop\n\thalt\n"})
	if p1 == p2 {
		t.Error("program source change did not change the key")
	}
	f1 := record(Request{Kind: KindFig4, App: "lu", Scheme: "informing"})
	f2 := record(Request{Kind: KindFig4, App: "lu", Scheme: "informing", Processors: 8})
	f3 := record(Request{Kind: KindFig4, App: "lu", Scheme: "ecc-fault"})
	if f1 == f2 || f1 == f3 || f2 == f3 {
		t.Error("fig4 topology/scheme change did not change the key")
	}
}

type fingerprintPins struct {
	CodeVersion string `json:"code_version"`
	Pins        []struct {
		Name    string          `json:"name"`
		Request json.RawMessage `json:"request"`
		Key     string          `json:"key"`
	} `json:"pins"`
}

// TestFingerprintPinned replays the regression pins of
// testdata/fingerprints.json. The pinned keys were computed outside this
// process (sha256sum of the documented canonical strings), so agreement
// here is the cross-process determinism proof: the same request produces
// the same cache key in every informd instance of this code version.
//
// Regenerate after an intentional format/CodeVersion change with
// FINGERPRINT_PINS_PRINT=1.
func TestFingerprintPinned(t *testing.T) {
	raw, err := os.ReadFile("testdata/fingerprints.json")
	if err != nil {
		t.Fatal(err)
	}
	var pins fingerprintPins
	if err := json.Unmarshal(raw, &pins); err != nil {
		t.Fatal(err)
	}
	if pins.CodeVersion != CodeVersion {
		t.Fatalf("pins recorded for %q, code is %q — regenerate testdata/fingerprints.json",
			pins.CodeVersion, CodeVersion)
	}
	printMode := os.Getenv("FINGERPRINT_PINS_PRINT") != ""
	for _, pin := range pins.Pins {
		t.Run(pin.Name, func(t *testing.T) {
			dec := json.NewDecoder(bytes.NewReader(pin.Request))
			dec.DisallowUnknownFields()
			var req Request
			if err := dec.Decode(&req); err != nil {
				t.Fatal(err)
			}
			canon, err := Canonicalize(req, 0)
			if err != nil {
				t.Fatal(err)
			}
			key := Fingerprint(canon)
			if printMode {
				fmt.Printf("\t%s: %s\n", pin.Name, key)
				return
			}
			if key != pin.Key {
				t.Errorf("key %s, want pinned %s (canonical %q)", key, pin.Key, canonicalString(canon))
			}
		})
	}
}
