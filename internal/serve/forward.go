package serve

// Cluster forwarding: the ingress side of distributed informd.
//
// Every canonical request fingerprint has exactly one rendezvous owner
// node (internal/cluster). A node receiving a request it does not own
// forwards it to the owner as a one-cell POST /v1/simulate with the
// X-Informd-Forwarded header set — the owner computes (or serves its
// cache/store) under ITS single-flight, which is what makes coalescing
// cluster-wide: every node routes an identical fingerprint to the same
// owner, so at most one simulation of it runs anywhere in the cluster.
//
// Concurrent identical requests at the ingress share one forward (the
// remotes map, single-flight for the network hop), and a successful
// remote outcome warms the ingress RAM cache so repeats are served with
// zero hops. The durable store stays owner-only: exactly one node is
// responsible for a fingerprint's durability, and a warm restart of any
// node re-fills the rest of the cluster through normal forwarding.
//
// Failure policy (DESIGN.md §15): a peer that cannot be reached, is on a
// different code version, or answers anything other than a well-formed
// 200 costs the ingress node a local computation, never an error and
// never a wrong answer — results are deterministic, so computing a
// non-owned fingerprint locally is always correct, merely duplicated
// work. Only a *simulation* error from the owner (invalid, budget,
// livelock — deterministic verdicts that would reproduce locally) is
// authoritative; owner-side cancellations are transient and fall back.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"informing/internal/cluster"
	"informing/internal/govern"
)

// Cluster-hop headers. The forwarded branch bypasses API-key auth and
// tenant admission (both already performed at the ingress node), so it
// is itself authenticated: every hop carries the shared cluster secret
// and the receiver refuses the branch without it — a client forging the
// forwarded headers gets 403, not a free pass (resolveTenant).
const (
	// HeaderForwarded marks a request that already took its one allowed
	// peer hop (the loop guard). Its value is the forwarding node's
	// CodeVersion, double-checking the handshake per request: the
	// receiver answers 409 on mismatch.
	HeaderForwarded = "X-Informd-Forwarded"
	// HeaderForwardedTenant carries the tenant resolved (and admitted)
	// at the ingress node, by name, so the owner node attributes the
	// work without re-charging the tenant's token bucket.
	HeaderForwardedTenant = "X-Informd-Tenant"
	// HeaderClusterAuth carries the shared cluster secret
	// (cluster.Config.Secret) proving the hop originates from a cluster
	// member. Compared in constant time; required before HeaderForwarded
	// is honored.
	HeaderClusterAuth = "X-Informd-Cluster-Auth"
)

// remoteFlight is one in-flight forward to an owner peer, shared by every
// ingress request that asked for the same fingerprint while it ran. out,
// cached and retry are written before done is closed.
type remoteFlight struct {
	done   chan struct{}
	out    outcome
	cached bool // the owner (or the ingress fallback path) served it from cache
	// retry: the flight ended in this node's own drain/shutdown rejection
	// rather than an authoritative answer. Coalesced waiters from other
	// requests were admitted in their own right, so they re-run the local
	// path themselves (await) instead of inheriting the first caller's
	// race with the lifecycle.
	retry bool
}

// submitRemote coalesces onto an existing forward for key or starts a
// fresh one. Returns nil while draining — the caller's local path owns
// that rejection.
func (s *Server) submitRemote(key string, c Request, tn *tenant, owner string) *remoteFlight {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	if rf, ok := s.remotes[key]; ok {
		s.mu.Unlock()
		s.met.ForwardCoalesced.Inc()
		return rf
	}
	rf := &remoteFlight{done: make(chan struct{})}
	s.remotes[key] = rf
	s.mu.Unlock()
	s.met.Forwarded.Inc()
	go s.runForward(rf, key, c, tn, owner)
	return rf
}

// runForward drives one forward to completion: try the owner, fall back
// to local compute on any peer-level failure, publish, and retire the
// flight from the coalescing index.
func (s *Server) runForward(rf *remoteFlight, key string, c Request, tn *tenant, owner string) {
	out, cached, ok := s.forwardToOwner(key, c, tn, owner)
	if !ok {
		s.met.ForwardFallbacks.Inc()
		out, cached = s.localFallback(key, c, tn)
	}
	s.mu.Lock()
	if s.remotes[key] == rf {
		delete(s.remotes, key)
	}
	s.mu.Unlock()
	rf.out, rf.cached = out, cached
	rf.retry = !ok && lifecycleReject(out.err)
	close(rf.done)
}

// lifecycleReject reports whether err is a this-node drain/shutdown
// rejection (a race with the server lifecycle, different per waiter)
// rather than a deterministic simulation verdict that any waiter would
// reproduce.
func lifecycleReject(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, govern.ErrCanceled) {
		return true
	}
	var we *WireError
	return errors.As(err, &we) && we.Code == CodeCanceled
}

// forwardToOwner performs the peer hop. ok=false means "the peer did not
// give an authoritative answer" and the caller must compute locally; it
// is never an error the client sees.
func (s *Server) forwardToOwner(key string, c Request, tn *tenant, owner string) (out outcome, cached, ok bool) {
	body, err := json.Marshal(SimulateRequest{Cells: []Request{c}})
	if err != nil {
		return outcome{}, false, false
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	hdr.Set(HeaderForwarded, CodeVersion)
	hdr.Set(HeaderForwardedTenant, tn.name)
	hdr.Set(HeaderClusterAuth, s.cluster.Secret())

	// The forward rides the server context, not any single waiter's:
	// coalesced waiters come and go, and a completed forward warms the
	// ingress cache regardless.
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ForwardTimeout)
	defer cancel()
	status, respBody, err := s.cluster.Forward(ctx, owner, "/v1/simulate", body, hdr)
	if err != nil {
		// ErrPeerDown is the fast-fail inside the cooldown — the edge was
		// already logged; anything else is a fresh transport failure.
		if !errors.Is(err, cluster.ErrPeerDown) {
			s.cfg.Logf("serve: forward %s to %s failed, computing locally: %v", key, owner, err)
		}
		return outcome{}, false, false
	}
	if status != http.StatusOK {
		// Owner overloaded (429), draining (503), version conflict (409),
		// or anything else: alive but not answering this cell. Local
		// compute absorbs it.
		s.cfg.Logf("serve: forward %s to %s answered %d, computing locally", key, owner, status)
		return outcome{}, false, false
	}
	var sr SimulateResponse
	if err := json.Unmarshal(respBody, &sr); err != nil || len(sr.Results) != 1 {
		s.cfg.Logf("serve: forward %s to %s returned an undecodable body, computing locally", key, owner)
		return outcome{}, false, false
	}
	cr := sr.Results[0]
	if cr.Error != nil {
		if cr.Error.Code == CodeCanceled {
			// Transient owner-side cancellation (e.g. the owner began
			// draining mid-batch) — not a verdict about the simulation.
			return outcome{}, false, false
		}
		// Deterministic simulation verdict (invalid, budget, livelock):
		// recomputing locally would reproduce it. Authoritative.
		return outcome{err: cr.Error}, false, true
	}
	if exactlyOne(cr.Run != nil, cr.Multi != nil, cr.Replay != nil) != 1 {
		return outcome{}, false, false
	}
	out = outcome{run: cr.Run, multiRes: cr.Multi, replay: cr.Replay}
	// Warm the ingress LRU: repeats at this node are then zero-hop. The
	// durable store is NOT written — durability is the owner's job.
	s.cache.add(key, out)
	return out, cr.Cached, true
}

// localFallback computes a non-owned fingerprint on this node after its
// owner failed to answer: a blocking submit onto the local queue (the
// forward already absorbed the admission decision at ingress), bounded by
// server shutdown. Identical concurrent fallbacks coalesce on the local
// single-flight like any other cells.
func (s *Server) localFallback(key string, c Request, tn *tenant) (outcome, bool) {
	if out, ok := s.cache.get(key); ok {
		return out, true
	}
	t, we := s.submitLocal(s.baseCtx, key, c, tn, true)
	if we != nil {
		return outcome{err: we}, false
	}
	if t.cached != nil {
		return *t.cached, true
	}
	select {
	case <-t.f.done:
		return t.f.out, false
	case <-s.baseCtx.Done():
		s.leave(t.f)
		return outcome{err: errShutdown}, false
	}
}
