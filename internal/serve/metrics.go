package serve

import "informing/internal/obs"

// Canonical serving-layer metric names, registered next to the sim_*
// metrics in the same obs.Registry so GET /metrics exposes one coherent
// snapshot: how much the server is being asked, how much of it the cache
// absorbs, and how much simulation actually ran (sim_instrs et al.).
const (
	MetricRequests   = "serve_requests_total"
	MetricCells      = "serve_cells_total"
	MetricHits       = "serve_cache_hits"
	MetricMisses     = "serve_cache_misses"
	MetricCoalesced  = "serve_coalesced"
	MetricRejected   = "serve_rejected_total"
	MetricCellErrors = "serve_cell_errors"
	MetricInflight   = "serve_inflight"    // gauge: flights not yet completed
	MetricQueueDepth = "serve_queue_depth" // gauge: flights waiting for the pool
	MetricLatencyMs  = "serve_request_latency_ms"
	MetricBatchSize  = "serve_batch_size"

	// Durable-store metrics (PR 6). serve_store_degraded counts
	// degradation events: it moves 0 → 1 when a store I/O failure demotes
	// the daemon to RAM-only operation for the rest of its life.
	MetricStoreHits     = "serve_store_hits"
	MetricStoreMisses   = "serve_store_misses"
	MetricStoreWrites   = "serve_store_writes"
	MetricStoreErrors   = "serve_store_errors"
	MetricStoreDegraded = "serve_store_degraded"

	// Admission-control metrics. Per-tenant variants of Requests, Cells,
	// Hits and RateLimited are registered as name{tenant="..."} (see
	// TenantMetricName).
	MetricRateLimited    = "serve_rate_limited_total"
	MetricBatchLatencyMs = "serve_batch_latency_ms" // one observation per dispatcher round

	// Cluster-forwarding metrics (DESIGN.md §15). Transport-level peer
	// counters (cluster_forwards_total, cluster_peer_up{peer=...}) live
	// in internal/cluster and share this registry via Cluster.Bind.
	MetricForwarded        = "serve_forwarded_total"   // cells routed to their owner peer
	MetricForwardCoalesced = "serve_forward_coalesced" // waiters joining an in-flight forward
	MetricForwardFallbacks = "serve_forward_fallbacks" // forwards degraded to local compute
	MetricForwardedServed  = "serve_forwarded_served"  // cells this node served for peers
)

// latencyMsBounds spans a cached hit (sub-millisecond) to a full
// 100M-instruction cell (tens of seconds).
var latencyMsBounds = []int64{1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 60_000}

// batchBounds covers the dispatcher's batch sizes up to the default
// MaxBatch and beyond.
var batchBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// metrics bundles the pre-resolved serving-layer handles (the obs.Sim
// pattern: the request path touches handles, never the registry).
type metrics struct {
	Requests   *obs.Counter
	Cells      *obs.Counter
	Hits       *obs.Counter
	Misses     *obs.Counter
	Coalesced  *obs.Counter
	Rejected   *obs.Counter
	CellErrors *obs.Counter
	Inflight   *obs.Counter
	QueueDepth *obs.Counter
	LatencyMs  *obs.Histogram
	BatchSize  *obs.Histogram

	StoreHits     *obs.Counter
	StoreMisses   *obs.Counter
	StoreWrites   *obs.Counter
	StoreErrors   *obs.Counter
	StoreDegraded *obs.Counter

	RateLimited    *obs.Counter
	BatchLatencyMs *obs.Histogram

	Forwarded        *obs.Counter
	ForwardCoalesced *obs.Counter
	ForwardFallbacks *obs.Counter
	ForwardedServed  *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		Requests:   reg.Counter(MetricRequests),
		Cells:      reg.Counter(MetricCells),
		Hits:       reg.Counter(MetricHits),
		Misses:     reg.Counter(MetricMisses),
		Coalesced:  reg.Counter(MetricCoalesced),
		Rejected:   reg.Counter(MetricRejected),
		CellErrors: reg.Counter(MetricCellErrors),
		Inflight:   reg.Counter(MetricInflight),
		QueueDepth: reg.Counter(MetricQueueDepth),
		LatencyMs:  reg.Histogram(MetricLatencyMs, latencyMsBounds),
		BatchSize:  reg.Histogram(MetricBatchSize, batchBounds),

		StoreHits:     reg.Counter(MetricStoreHits),
		StoreMisses:   reg.Counter(MetricStoreMisses),
		StoreWrites:   reg.Counter(MetricStoreWrites),
		StoreErrors:   reg.Counter(MetricStoreErrors),
		StoreDegraded: reg.Counter(MetricStoreDegraded),

		RateLimited:    reg.Counter(MetricRateLimited),
		BatchLatencyMs: reg.Histogram(MetricBatchLatencyMs, latencyMsBounds),

		Forwarded:        reg.Counter(MetricForwarded),
		ForwardCoalesced: reg.Counter(MetricForwardCoalesced),
		ForwardFallbacks: reg.Counter(MetricForwardFallbacks),
		ForwardedServed:  reg.Counter(MetricForwardedServed),
	}
}
