package serve

import (
	"errors"
	"fmt"

	"informing/internal/coherence"
	"informing/internal/core"
	"informing/internal/experiments"
	"informing/internal/govern"
	"informing/internal/mem"
	"informing/internal/multi"
	"informing/internal/stats"
	"informing/internal/trace"
	"informing/internal/workload"
)

// Request kinds. A cell is one (benchmark, machine, plan) point of the
// §4.2 handler-overhead studies; a fig4 point is one (application, scheme)
// point of the §4.3 coherence case study; a program is an arbitrary
// assembler source run on one machine/scheme (informsim as a service); a
// trace is a recorded schema-v2 JSONL trace replayed through a machine's
// cache hierarchy with no ISA program (internal/trace, DESIGN.md §16).
const (
	KindCell    = "cell"
	KindFig4    = "fig4"
	KindProgram = "program"
	KindTrace   = "trace"
)

// Wire machine names (canonical forms first).
const (
	MachineOOO     = "ooo"
	MachineInOrder = "inorder"
)

// Limits on what a single request may ask for; validation rejects
// anything larger with a per-cell "invalid" error rather than letting a
// client queue unbounded work.
const (
	// MaxScale bounds the workload iteration multiplier.
	MaxScale = 10_000
	// MaxSourceBytes bounds a program request's assembler source.
	MaxSourceBytes = 1 << 20
	// MaxTraceBytes bounds a trace request's JSONL text. Full
	// (-trace-sample 1) traces of the paper-shaped workloads run tens of
	// megabytes — tomcatv under CondCode is ~60 MB — so the bound is far
	// above MaxSourceBytes, and maxBodyBytes accommodates one such trace.
	MaxTraceBytes = 48 << 20
)

// Request is one simulation request on the wire. Kind selects which field
// group applies; Canonicalize validates the request and fills defaults so
// that semantically identical requests become structurally identical (and
// therefore share one cache fingerprint).
type Request struct {
	Kind string `json:"kind"`

	// Cell fields (KindCell). Policy selects the data-hierarchy
	// replacement policy ("lru" when empty; see mem.PolicyNames) and is a
	// fingerprint dimension: the same cell under two policies is two
	// cache entries.
	Benchmark string `json:"benchmark,omitempty"`
	Plan      string `json:"plan,omitempty"`
	Policy    string `json:"policy,omitempty"`

	// Shared by cell and program kinds: which timing core, and the
	// dynamic-instruction budget (0 = the server default).
	Machine  string `json:"machine,omitempty"`
	Scale    int64  `json:"scale,omitempty"`
	MaxInsts uint64 `json:"maxinsts,omitempty"`

	// Fig4 fields (KindFig4). Scheme doubles as the informing scheme of a
	// program request ("off", "condcode", "trap-branch", "trap-exception").
	App        string `json:"app,omitempty"`
	Scheme     string `json:"scheme,omitempty"`
	Processors int    `json:"processors,omitempty"`
	MaxRefs    uint64 `json:"maxrefs,omitempty"`

	// Program fields (KindProgram): assembler source text (internal/asm
	// syntax).
	Source string `json:"source,omitempty"`

	// Trace fields (KindTrace): schema-v2 JSONL trace text, replayed
	// through the Machine's cache geometry. MaxRefs doubles as the replay
	// reference budget; AllowSampled admits traces with seq gaps
	// (reconciliation is then impossible, but miss-rate estimates still
	// come back).
	Trace        string `json:"trace,omitempty"`
	AllowSampled bool   `json:"allowsampled,omitempty"`
}

// Defaults the canonicalizer applies; exported so clients and tests can
// predict canonical forms.
const (
	// DefaultMaxInsts matches experiments.DefaultOptions: served cells are
	// budgeted exactly like the CLI harness cells.
	DefaultMaxInsts uint64 = 100_000_000
	// DefaultProcessors matches multi.DefaultConfig (Table 2).
	DefaultProcessors = 16
)

func machineByName(name string) (core.Machine, string, error) {
	switch name {
	case MachineOOO, "out-of-order", "":
		return core.OutOfOrder, MachineOOO, nil
	case MachineInOrder, "in-order":
		return core.InOrder, MachineInOrder, nil
	}
	return 0, "", fmt.Errorf("unknown machine %q (want %q or %q)", name, MachineOOO, MachineInOrder)
}

func schemeByName(name string) (core.Scheme, error) {
	for _, s := range []core.Scheme{core.Off, core.CondCode, core.TrapBranch, core.TrapException} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown informing scheme %q", name)
}

// Canonicalize validates req against the server limits and returns the
// canonical form: defaults filled, aliases resolved ("out-of-order" →
// "ooo", "S1/branch" → "S1"), irrelevant fields zeroed. Two requests that
// mean the same simulation canonicalize to identical structs — the
// property the cache fingerprint is computed over.
func Canonicalize(req Request, maxInstsCap uint64) (Request, error) {
	if maxInstsCap == 0 {
		maxInstsCap = govern.DefaultBudget
	}
	c := Request{Kind: req.Kind}
	switch req.Kind {
	case KindCell:
		bm, ok := workload.ByName(req.Benchmark)
		if !ok {
			return Request{}, fmt.Errorf("unknown benchmark %q", req.Benchmark)
		}
		spec, err := experiments.PlanByLabel(req.Plan)
		if err != nil {
			return Request{}, err
		}
		_, machine, err := machineByName(req.Machine)
		if err != nil {
			return Request{}, err
		}
		c.Benchmark, c.Plan, c.Machine = bm.Name, spec.Label, machine
		c.Policy = req.Policy
		if c.Policy == "" {
			c.Policy = mem.PolicyLRU
		}
		if err := mem.ValidPolicy(c.Policy); err != nil {
			return Request{}, err
		}
		c.Scale = req.Scale
		if c.Scale == 0 {
			c.Scale = 1
		}
		if c.Scale < 1 || c.Scale > MaxScale {
			return Request{}, fmt.Errorf("scale %d outside [1,%d]", c.Scale, MaxScale)
		}
		c.MaxInsts = req.MaxInsts
		if c.MaxInsts == 0 {
			c.MaxInsts = DefaultMaxInsts
		}
		if c.MaxInsts > maxInstsCap {
			return Request{}, fmt.Errorf("maxinsts %d above server cap %d", c.MaxInsts, maxInstsCap)
		}
		return c, nil

	case KindFig4:
		if req.App == "" {
			return Request{}, fmt.Errorf("fig4 request needs an app")
		}
		c.Processors = req.Processors
		if c.Processors == 0 {
			c.Processors = DefaultProcessors
		}
		if c.Processors < 1 || c.Processors > 64 {
			return Request{}, fmt.Errorf("processor count %d outside [1,64]", c.Processors)
		}
		if _, err := coherence.AppByName(req.App, 1); err != nil {
			return Request{}, err
		}
		if _, err := coherence.SchemeByName(req.Scheme); err != nil {
			return Request{}, err
		}
		c.App, c.Scheme = req.App, req.Scheme
		c.MaxRefs = req.MaxRefs
		if c.MaxRefs > maxInstsCap {
			return Request{}, fmt.Errorf("maxrefs %d above server cap %d", c.MaxRefs, maxInstsCap)
		}
		return c, nil

	case KindProgram:
		if req.Source == "" {
			return Request{}, fmt.Errorf("program request needs source")
		}
		if len(req.Source) > MaxSourceBytes {
			return Request{}, fmt.Errorf("source %d bytes above limit %d", len(req.Source), MaxSourceBytes)
		}
		_, machine, err := machineByName(req.Machine)
		if err != nil {
			return Request{}, err
		}
		scheme := req.Scheme
		if scheme == "" {
			scheme = core.Off.String()
		}
		if _, err := schemeByName(scheme); err != nil {
			return Request{}, err
		}
		c.Machine, c.Scheme, c.Source = machine, scheme, req.Source
		c.MaxInsts = req.MaxInsts
		if c.MaxInsts == 0 {
			c.MaxInsts = DefaultMaxInsts
		}
		if c.MaxInsts > maxInstsCap {
			return Request{}, fmt.Errorf("maxinsts %d above server cap %d", c.MaxInsts, maxInstsCap)
		}
		return c, nil

	case KindTrace:
		if req.Trace == "" {
			return Request{}, fmt.Errorf("trace request needs trace text")
		}
		if len(req.Trace) > MaxTraceBytes {
			return Request{}, fmt.Errorf("trace %d bytes above limit %d", len(req.Trace), MaxTraceBytes)
		}
		_, machine, err := machineByName(req.Machine)
		if err != nil {
			return Request{}, err
		}
		c.Machine, c.Trace, c.AllowSampled = machine, req.Trace, req.AllowSampled
		c.MaxRefs = req.MaxRefs
		if c.MaxRefs > maxInstsCap {
			return Request{}, fmt.Errorf("maxrefs %d above server cap %d", c.MaxRefs, maxInstsCap)
		}
		return c, nil
	}
	return Request{}, fmt.Errorf("unknown request kind %q (want %q, %q, %q or %q)",
		req.Kind, KindCell, KindFig4, KindProgram, KindTrace)
}

// Error codes a cell result may carry; clients switch on these rather
// than parsing messages.
const (
	CodeInvalid      = "invalid"      // request failed validation
	CodeBudget       = "budget"       // govern instruction/reference budget exhausted
	CodeCanceled     = "canceled"     // request context cancelled or server shutdown
	CodeLivelock     = "livelock"     // govern watchdog abort
	CodeOverload     = "overload"     // queue full (whole-request 429)
	CodeRateLimited  = "rate-limited" // tenant above its admission rate (429)
	CodeUnauthorized = "unauthorized" // unknown API key, or anonymous tier disabled (401)
	CodeInternal     = "internal"     // anything else
)

// WireError is the JSON error body attached to a failed cell (and, for
// whole-request failures, the top-level response body).
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Snapshot carries the govern diagnostic snapshot of an aborted
	// simulation, when one exists.
	Snapshot string `json:"snapshot,omitempty"`
}

func (e *WireError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// wireErr classifies err into a WireError.
func wireErr(err error) *WireError {
	if err == nil {
		return nil
	}
	if we, ok := err.(*WireError); ok {
		return we
	}
	we := &WireError{Code: CodeInternal, Message: err.Error()}
	switch {
	case errors.Is(err, govern.ErrBudget):
		we.Code = CodeBudget
	case errors.Is(err, govern.ErrCanceled):
		we.Code = CodeCanceled
	case errors.Is(err, govern.ErrLivelock):
		we.Code = CodeLivelock
	}
	if snap, ok := govern.SnapshotIn(err); ok {
		we.Snapshot = snap.String()
	}
	return we
}

// CellResult is the per-cell response: exactly one of Run (cell/program
// kinds), Multi (fig4 kind), Replay (trace kind) or Error is set. Key is
// the cache fingerprint of the canonical request; Cached reports whether
// the result was served from the LRU without touching the simulator.
type CellResult struct {
	Key    string              `json:"key"`
	Cached bool                `json:"cached"`
	Run    *stats.Run          `json:"run,omitempty"`
	Multi  *multi.Result       `json:"multi,omitempty"`
	Replay *trace.ReplayResult `json:"replay,omitempty"`
	Error  *WireError          `json:"error,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: a batch of cells
// evaluated concurrently on the server's worker pool.
type SimulateRequest struct {
	Cells []Request `json:"cells"`
}

// SimulateResponse mirrors SimulateRequest: Results[i] answers Cells[i].
type SimulateResponse struct {
	Results []CellResult `json:"results"`
}

// ExperimentRequest is the body of POST /v1/experiment: either a named
// §4.2 experiment (Name, see experiments.Named) or a custom grid of
// benchmarks × plans over both machines. The response's Table is
// byte-identical to what cmd/handlerbench prints for the same cells.
type ExperimentRequest struct {
	Name string `json:"name,omitempty"`

	// Custom grid (used when Name is empty).
	Benchmarks []string `json:"benchmarks,omitempty"`
	Plans      []string `json:"plans,omitempty"`
	Title      string   `json:"title,omitempty"`
	Baseline   string   `json:"baseline,omitempty"`

	Scale    int64  `json:"scale,omitempty"`
	MaxInsts uint64 `json:"maxinsts,omitempty"`
}

// ExperimentResponse carries the rendered tables plus cache accounting
// for the cells this request touched.
type ExperimentResponse struct {
	Name    string `json:"name,omitempty"`
	Table   string `json:"table"`
	Summary string `json:"summary,omitempty"`

	Cells     int `json:"cells"`
	CacheHits int `json:"cache_hits"`
	Computed  int `json:"computed"`
}
