package serve

import (
	"testing"
	"time"
)

// Retry-After audit (both 429 paths): a fractional wait must round UP to
// the next whole second. Truncation would tell a client to come back one
// second early, guaranteeing a second 429 for every sub-second remainder
// — the header's contract is "retry then and you will be admitted".

// admitTenants builds a TenantSet with one rate-limited tenant and a
// frozen clock, returning the set and the resolved tenant.
func admitTenants(t *testing.T, rate, burst float64) (*TenantSet, *tenant) {
	t.Helper()
	ts, err := NewTenantSet(TenantsFile{Tenants: []TenantSpec{
		{Name: "alice", Key: "k", RatePerSec: rate, Burst: burst},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts.now = func() time.Time { return time.Unix(1_000_000, 0) }
	return ts, ts.byKey["k"]
}

func TestAdmitRetryAfterRoundsUp(t *testing.T) {
	cases := []struct {
		name        string
		rate, burst float64
		take        int
		want        int
	}{
		// 2 cells against 1 token at 5/s: 0.2 s deficit. Truncation would
		// produce 0 (masked to 1 by the clamp here, but honest code must
		// not rely on the clamp to fix rounding).
		{"sub-second deficit", 5, 1, 2, 1},
		// 10 cells against 5 tokens at 2/s: 2.5 s -> 3, not 2.
		{"fractional seconds", 2, 5, 10, 3},
		// 3 cells against 1 token at 1/s: exactly 2.0 s stays 2 — ceil
		// must not over-round an exact boundary.
		{"exact boundary", 1, 1, 3, 2},
		// 9-token deficit at 0.5/s: 18 s, within the clamp, preserved.
		{"long honest wait", 0.5, 1, 10, 18},
		// 29-token deficit at 0.25/s: 116 s, clamped to the 30 s ceiling.
		{"clamped ceiling", 0.25, 1, 30, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, tn := admitTenants(t, tc.rate, tc.burst)
			ra, we := ts.admit(tn, tc.take)
			if we == nil {
				t.Fatalf("admit(%d) at rate %v burst %v: admitted, want 429", tc.take, tc.rate, tc.burst)
			}
			if we.Code != CodeRateLimited {
				t.Fatalf("code %q, want %q", we.Code, CodeRateLimited)
			}
			if ra != tc.want {
				t.Errorf("Retry-After = %d, want %d", ra, tc.want)
			}
		})
	}
}

// TestAdmitRetryAfterHonest: waiting exactly the advertised Retry-After
// must be sufficient — the property that fails if rounding ever truncates.
func TestAdmitRetryAfterHonest(t *testing.T) {
	ts, tn := admitTenants(t, 2, 5)
	now := time.Unix(1_000_000, 0)
	ts.now = func() time.Time { return now }

	if _, we := ts.admit(tn, 5); we != nil {
		t.Fatal("draining the full burst should be admitted")
	}
	ra, we := ts.admit(tn, 5) // empty bucket, 5-token deficit at 2/s: 2.5 s -> 3
	if we == nil {
		t.Fatal("want denial on the drained bucket")
	}
	now = now.Add(time.Duration(ra) * time.Second)
	if _, we := ts.admit(tn, 5); we != nil {
		t.Fatalf("denied after waiting the advertised %d s", ra)
	}
}

func TestOverloadRetryAfterRoundsUp(t *testing.T) {
	s := New(Config{MaxBatch: 4})
	defer s.Close()

	// No completed dispatcher round yet: the estimate assumes one second
	// per round; empty queue = one round.
	if got := s.overloadRetryAfter(); got != 1 {
		t.Fatalf("cold-start Retry-After = %d, want 1", got)
	}

	// Mean round latency 1.5 s, empty queue (1 round): 1.5 -> 2.
	// Truncation would answer 1.
	s.met.BatchLatencyMs.Observe(1000)
	s.met.BatchLatencyMs.Observe(2000)
	if got := s.overloadRetryAfter(); got != 2 {
		t.Fatalf("Retry-After = %d, want 2 (1.5 s mean round must round up)", got)
	}
}

func TestClampRetryAfter(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {17, 17}, {30, 30}, {31, 30}, {1000, 30},
	} {
		if got := clampRetryAfter(tc.in); got != tc.want {
			t.Errorf("clampRetryAfter(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
