package serve

import (
	"net/http/httptest"
	"testing"
)

// Round trips of the two non-cell request kinds through the real runner:
// an assembled program on the out-of-order core, and a Figure 4 coherence
// point on the multiprocessor model.
func TestProgramAndFig4RoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	src := `
	addi r1, r0, 64
loop:
	ld r2, 0(r1)
	addi r1, r1, -8
	bne r1, r0, loop
	halt
`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{
		{Kind: KindProgram, Source: src, Machine: MachineOOO, Scheme: "off"},
		{Kind: KindFig4, App: "lu", Scheme: "informing", Processors: 4},
	}})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)

	prog := sr.Results[0]
	if prog.Error != nil || prog.Run == nil {
		t.Fatalf("program cell = %+v, want success", prog)
	}
	if prog.Run.Instrs == 0 || prog.Run.Cycles == 0 {
		t.Errorf("program ran %d instrs in %d cycles, want non-zero", prog.Run.Instrs, prog.Run.Cycles)
	}

	fig4 := sr.Results[1]
	if fig4.Error != nil || fig4.Multi == nil {
		t.Fatalf("fig4 cell = %+v, want success", fig4)
	}
	if fig4.Multi.Cycles == 0 || len(fig4.Multi.PerProc) != 4 {
		t.Errorf("fig4 result = %+v, want 4-processor run with non-zero cycles", fig4.Multi)
	}

	// Both kinds participate in the fingerprint cache.
	_, body2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{
		{Kind: KindProgram, Source: src, Machine: MachineOOO, Scheme: "off"},
		{Kind: KindFig4, App: "lu", Scheme: "informing", Processors: 4},
	}})
	sr2 := decodeSim(t, body2)
	for i, cr := range sr2.Results {
		if !cr.Cached {
			t.Errorf("repeat of kind %q not served from cache", sr.Results[i].Key)
		}
	}
}
