// Package serve is the simulation-as-a-service layer: a long-running
// HTTP/JSON front end over the experiment harnesses (internal/experiments,
// internal/coherence) and the timing cores. The paper's experiments are
// pure functions of (workload, plan, machine configuration), which is what
// makes this layer sound:
//
//   - every request is validated and canonicalized (Canonicalize), then
//     keyed by a deterministic fingerprint of the canonical request plus
//     the simulator code version (Fingerprint);
//   - repeats are served from a bounded in-memory LRU without touching
//     the simulator; on an LRU miss, a durable on-disk store
//     (internal/store) is consulted read-through and populated
//     write-behind, so a restarted daemon starts warm — and any store
//     malfunction demotes the daemon to RAM-only operation rather than
//     ever serving an unverified result;
//   - identical requests racing each other coalesce onto one in-flight
//     computation (single-flight), whose run governor is cancelled only
//     when every interested request has gone away;
//   - requests carry a tenant (API key; keyless = anonymous tier), pass
//     per-tenant token-bucket admission, and distinct requests are queued
//     (bounded — the queue overflowing is the server's backpressure
//     signal, surfaced as HTTP 429 with an honest computed Retry-After)
//     in per-tenant FIFOs drained weighted-fair by a dispatcher batching
//     onto the shared internal/sched worker pool;
//   - per-request budgets and cancellation ride the existing govern
//     layer: a cell's MaxInsts becomes its governor budget and the flight
//     context is threaded into the engines, so a cancelled batch aborts
//     at the next governor poll with a diagnostic snapshot.
//
// Observability reuses internal/obs: one registry holds the serving
// metrics (serve_*, including per-tenant labelled variants), the store
// metrics and the simulator metrics (sim_*), served on GET /metrics — the
// differential tests use exactly this to prove a cache hit re-simulates
// nothing (sim_instrs delta zero).
package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"informing/internal/asm"
	"informing/internal/cluster"
	"informing/internal/coherence"
	"informing/internal/core"
	"informing/internal/experiments"
	"informing/internal/govern"
	"informing/internal/multi"
	"informing/internal/obs"
	"informing/internal/sched"
	"informing/internal/stats"
	"informing/internal/store"
	"informing/internal/trace"
	"informing/internal/workload"
)

// maxBodyBytes bounds request bodies. Sized for one full-trace replay
// request (MaxTraceBytes of JSONL plus JSON string-escaping overhead);
// program sources stay capped far lower at MaxSourceBytes each.
const maxBodyBytes = 64 << 20

// Config parameterises a Server. The zero value is valid: every field
// falls back to the defaults documented on it.
type Config struct {
	// Workers bounds the simulation worker pool (internal/sched
	// semantics: <= 0 selects GOMAXPROCS).
	Workers int

	// QueueSize bounds the number of flights waiting for the pool; an
	// arriving cell that finds the queue full is rejected with HTTP 429
	// (0 = 256).
	QueueSize int

	// MaxBatch bounds how many queued flights one dispatcher round hands
	// to sched.Map (0 = 32).
	MaxBatch int

	// CacheEntries bounds the result LRU (0 = 4096).
	CacheEntries int

	// MaxCellsPerRequest bounds the batch size of one POST /v1/simulate
	// (0 = 64).
	MaxCellsPerRequest int

	// MaxExperimentCells bounds the benchmarks × machines × plans grid of
	// one POST /v1/experiment (0 = 1024). Without it a small request body
	// could enumerate a cross product large enough to exhaust memory
	// before any simulation runs.
	MaxExperimentCells int

	// MaxInstsCap rejects requests whose budget exceeds it
	// (0 = govern.DefaultBudget).
	MaxInstsCap uint64

	// Cluster, when non-nil and enabled (more than one peer), turns this
	// node into a cluster member: canonical request fingerprints are
	// rendezvous-hashed to an owner node and non-owned requests are
	// forwarded to their owner (serve/forward.go). The cluster must have
	// been built with Version == CodeVersion; New panics on a mismatch —
	// that is a boot-time configuration error, and serving with it would
	// mix results from different simulator builds.
	Cluster *cluster.Cluster

	// ForwardTimeout bounds one forwarded request to a peer, handshake
	// included (0 = 120s — a default-budget cell can legitimately
	// simulate for tens of seconds).
	ForwardTimeout time.Duration

	// Store, when non-nil, is the opened durable result store consulted
	// read-through under the LRU and populated write-behind. The store
	// must have been opened with Version == CodeVersion. nil = RAM-only.
	Store *store.Store

	// Tenants is the admission-control index (nil = anonymous-only,
	// unlimited — the pre-tenant behaviour).
	Tenants *TenantSet

	// Logf receives operational notices (store degradation, recovery).
	// nil = the standard library logger.
	Logf func(format string, args ...any)

	// runCell, when non-nil, replaces the real simulation runner — test
	// seam for exercising the concurrency machinery without simulating.
	runCell func(ctx context.Context, c Request) outcome
}

func (c Config) withDefaults() Config {
	if c.QueueSize == 0 {
		c.QueueSize = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.MaxCellsPerRequest == 0 {
		c.MaxCellsPerRequest = 64
	}
	if c.MaxExperimentCells == 0 {
		c.MaxExperimentCells = 1024
	}
	if c.MaxInstsCap == 0 {
		c.MaxInstsCap = govern.DefaultBudget
	}
	if c.ForwardTimeout == 0 {
		c.ForwardTimeout = 120 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// outcome is one completed computation: exactly one of run/multiRes/replay
// set on success, err on failure. Only successful outcomes enter the cache.
type outcome struct {
	run      *stats.Run
	multiRes *multi.Result
	replay   *trace.ReplayResult
	err      error
}

// flight is one in-flight computation, shared by every request that asked
// for the same fingerprint while it ran. Its context is a child of the
// server context, cancelled early when the last interested request leaves
// — that cancellation reaches the simulation through its run governor.
// The tenant is the flight creator's: joiners of other tenants share the
// result but the queue slot is billed to whoever caused the work.
type flight struct {
	key string
	req Request
	tn  *tenant

	ctx    context.Context
	cancel context.CancelFunc

	done chan struct{} // closed after out is written
	out  outcome

	waiters int // guarded by Server.mu
}

// Server is the simulation service. Create with New, expose via Handler,
// stop with Drain (graceful) and Close.
type Server struct {
	cfg     Config
	sim     *obs.Sim
	met     *metrics
	cache   *lruCache
	store   *store.Store
	tenants *TenantSet
	cluster *cluster.Cluster // nil = single node
	mux     *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc
	queue   *fairQueue
	wg      sync.WaitGroup
	readyCh chan struct{} // closed when the first dispatcher loop runs

	// storeDegraded latches true on the first store I/O failure; from
	// then on the daemon is RAM-only (healthz reports it).
	storeDegraded atomic.Bool

	mu       sync.Mutex
	flights  map[string]*flight
	remotes  map[string]*remoteFlight // in-flight forwards, coalesced by key
	draining bool
}

// New builds a Server and starts its dispatcher.
func New(cfg Config) *Server {
	sim := obs.NewSim()
	s := &Server{
		cfg:     cfg.withDefaults(),
		sim:     sim,
		met:     newMetrics(sim.Reg),
		flights: map[string]*flight{},
		remotes: map[string]*remoteFlight{},
		readyCh: make(chan struct{}),
	}
	s.store = s.cfg.Store
	s.tenants = s.cfg.Tenants
	if c := s.cfg.Cluster; c != nil && c.Enabled() {
		if c.Version() != CodeVersion {
			// Boot-time misconfiguration: this node would route by one
			// version and serve another. Fail fast, loudly.
			panic(fmt.Sprintf("serve: cluster built for code version %q, server is %q", c.Version(), CodeVersion))
		}
		s.cluster = c
		s.cluster.Bind(sim.Reg)
	}
	if s.tenants == nil {
		// Back-compat default: one anonymous tier, unlimited rate,
		// weight 1.
		s.tenants, _ = NewTenantSet(TenantsFile{})
	}
	s.tenants.bind(sim.Reg)
	s.cache = newLRU(s.cfg.CacheEntries)
	s.queue = newFairQueue(s.cfg.QueueSize, s.met.QueueDepth)
	s.baseCtx, s.stop = context.WithCancel(context.Background())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "informd simulation service; see POST /v1/simulate, POST /v1/explain, POST /v1/experiment, GET /metrics")
	})

	s.wg.Add(1)
	go s.dispatch()
	return s
}

// Sim exposes the shared simulator-metrics bundle (tests read sim_instrs
// deltas from it; every served simulation counts into it).
func (s *Server) Sim() *obs.Sim { return s.sim }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: new simulation requests are
// rejected with 503 while in-flight work completes. /healthz and /readyz
// report the state so load balancers can rotate the instance out.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close cancels every in-flight computation (their governors abort at the
// next poll), fails everything still queued, and waits for the dispatcher
// to exit. Idempotent.
func (s *Server) Close() {
	s.Drain()
	s.stop()
	s.wg.Wait()
}

// errShutdown is the outcome error of flights interrupted by Close.
var errShutdown = fmt.Errorf("%w: server shutting down", govern.ErrCanceled)

// ---- durable store plumbing ----

// storeUsable reports whether the durable store should be consulted.
func (s *Server) storeUsable() bool {
	return s.store != nil && !s.storeDegraded.Load()
}

// degradeStore latches the daemon into RAM-only operation after a store
// I/O failure. Verification failures (corruption) never reach here — the
// store handles those internally as quarantine+miss; only a filesystem
// that is actually failing demotes the daemon.
func (s *Server) degradeStore(op string, err error) {
	s.met.StoreErrors.Inc()
	if s.storeDegraded.CompareAndSwap(false, true) {
		s.met.StoreDegraded.Inc()
		s.cfg.Logf("serve: store %s failed; degrading to RAM-only operation: %v", op, err)
	}
}

// storeGet is the read-through path under an LRU miss. Any failure mode
// ends in (outcome{}, false) — the caller computes; corrupt payloads were
// already quarantined by the store, undecodable ones are dropped here.
func (s *Server) storeGet(key string) (outcome, bool) {
	if !s.storeUsable() {
		return outcome{}, false
	}
	b, ok, err := s.store.Get(key)
	if err != nil {
		s.degradeStore("read", err)
		return outcome{}, false
	}
	if !ok {
		s.met.StoreMisses.Inc()
		return outcome{}, false
	}
	out, err := decodeOutcome(b)
	if err != nil {
		s.cfg.Logf("serve: dropping undecodable store entry %s: %v", key, err)
		s.met.StoreErrors.Inc()
		_ = s.store.Delete(key)
		return outcome{}, false
	}
	s.met.StoreHits.Inc()
	return out, true
}

// storePut is the write-behind path after a successful computation. It
// runs on the worker goroutine before waiters wake, so once a client has
// its response the result is durable (the warm-restart contract).
func (s *Server) storePut(key string, out outcome) {
	if !s.storeUsable() {
		return
	}
	b, err := encodeOutcome(out)
	if err != nil {
		s.met.StoreErrors.Inc()
		return
	}
	if err := s.store.Put(key, b); err != nil {
		s.degradeStore("write", err)
		return
	}
	s.met.StoreWrites.Inc()
}

// ---- submission / single-flight ----

// ticket is the submit result for one cell: an immediate cached outcome,
// a local flight to await, or a remote (forwarded) flight to await.
// Remote tickets also carry what this waiter submitted (req, tn, block)
// so await can re-run the local path under the waiter's own admission
// when the shared forward ends in a lifecycle race (remoteFlight.retry).
type ticket struct {
	key    string
	req    Request
	tn     *tenant
	block  bool
	cached *outcome
	f      *flight
	remote *remoteFlight
}

// submit resolves one canonical cell: RAM-cache hit, durable-store hit
// (read-through), a forward to the cell's rendezvous owner node (cluster
// mode, when the key is not self-owned — serve/forward.go), join of an
// identical in-flight computation, or a fresh flight pushed onto the fair
// queue under tn. With block=false a full queue fails fast (the 429
// path); with block=true the caller waits for a slot (the experiment
// path, where the client's open request is the backpressure). forwarded
// marks a request that already took one peer hop: it is always computed
// locally (the loop guard — peer lists that disagree must converge on a
// node that does the work, never bounce a request around the ring).
func (s *Server) submit(reqCtx context.Context, c Request, tn *tenant, block, forwarded bool) (ticket, *WireError) {
	key := Fingerprint(c)
	if out, ok := s.cache.get(key); ok {
		s.met.Hits.Inc()
		tn.hits.Inc()
		return ticket{key: key, cached: &out}, nil
	}
	if out, ok := s.storeGet(key); ok {
		// Warm the LRU so repeats skip the disk.
		s.cache.add(key, out)
		s.met.Hits.Inc()
		tn.hits.Inc()
		return ticket{key: key, cached: &out}, nil
	}
	if !forwarded && s.cluster != nil {
		if owner := s.cluster.Owner(key); owner != s.cluster.Self() {
			if rf := s.submitRemote(key, c, tn, owner); rf != nil {
				return ticket{key: key, req: c, tn: tn, block: block, remote: rf}, nil
			}
			// Draining: fall through — the local path answers it.
		}
	}
	return s.submitLocal(reqCtx, key, c, tn, block)
}

// submitLocal is the owner-side (and single-node) path: join or create a
// local single-flight computation for key.
func (s *Server) submitLocal(reqCtx context.Context, key string, c Request, tn *tenant, block bool) (ticket, *WireError) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ticket{}, &WireError{Code: CodeCanceled, Message: "server draining"}
	}
	// Join an identical in-flight computation — but never one whose
	// context is already dead (e.g. during shutdown): joining it would
	// serve this request a cancellation it had nothing to do with.
	if f, ok := s.flights[key]; ok && f.ctx.Err() == nil {
		f.waiters++
		s.mu.Unlock()
		s.met.Coalesced.Inc()
		return ticket{key: key, f: f}, nil
	}
	fctx, fcancel := context.WithCancel(s.baseCtx)
	f := &flight{key: key, req: c, tn: tn, ctx: fctx, cancel: fcancel, done: make(chan struct{}), waiters: 1}
	s.flights[key] = f
	s.met.Inflight.Store(uint64(len(s.flights)))
	s.met.Misses.Inc()

	if !block {
		// Enqueue under mu: either the flight is queued before anyone can
		// observe it, or it is removed before anyone could have joined.
		ok, closed := s.queue.tryPush(f)
		if ok {
			s.mu.Unlock()
			return ticket{key: key, f: f}, nil
		}
		delete(s.flights, key)
		s.met.Inflight.Store(uint64(len(s.flights)))
		s.mu.Unlock()
		fcancel()
		if closed {
			return ticket{}, &WireError{Code: CodeCanceled, Message: "server shutting down"}
		}
		s.met.Rejected.Inc()
		return ticket{}, &WireError{Code: CodeOverload, Message: "simulation queue full"}
	}
	s.mu.Unlock()

	for {
		ok, closed := s.queue.tryPush(f)
		if ok {
			return ticket{key: key, f: f}, nil
		}
		if closed {
			s.complete(f, outcome{err: errShutdown})
			return ticket{}, &WireError{Code: CodeCanceled, Message: "server shutting down"}
		}
		select {
		case <-s.queue.space:
		case <-reqCtx.Done():
			s.abandonUnqueued(f)
			return ticket{}, &WireError{Code: CodeCanceled, Message: "request canceled while queueing"}
		case <-s.baseCtx.Done():
			s.complete(f, outcome{err: errShutdown})
			return ticket{}, &WireError{Code: CodeCanceled, Message: "server shutting down"}
		}
	}
}

// abandonUnqueued handles a creator giving up on a flight it registered
// but never managed to enqueue. If identical requests joined the flight
// in the meantime, they must not inherit this client's cancellation, so
// enqueue duty moves to a background goroutine; otherwise the flight is
// torn down like any last-waiter departure.
func (s *Server) abandonUnqueued(f *flight) {
	s.mu.Lock()
	f.waiters--
	joined := f.waiters > 0
	if !joined && s.flights[f.key] == f {
		delete(s.flights, f.key)
		s.met.Inflight.Store(uint64(len(s.flights)))
	}
	s.mu.Unlock()
	if !joined {
		f.cancel()
		return
	}
	go func() {
		for {
			ok, closed := s.queue.tryPush(f)
			if ok {
				return
			}
			if closed {
				s.complete(f, outcome{err: errShutdown})
				return
			}
			select {
			case <-s.queue.space:
			case <-f.ctx.Done():
				// Every joiner left too; leave() already tore the flight down.
				return
			case <-s.baseCtx.Done():
				s.complete(f, outcome{err: errShutdown})
				return
			}
		}
	}()
}

// await blocks until the ticket's result is available or the request
// context is cancelled. A cancelled waiter leaves the flight; the flight
// itself is cancelled only when its last waiter leaves, so duplicate
// requests keep a shared computation alive.
func (s *Server) await(reqCtx context.Context, t ticket) CellResult {
	if t.cached != nil {
		return cellResult(t.key, *t.cached, true)
	}
	if t.remote != nil {
		// Remote flights have no per-waiter accounting: the forward is
		// already bounded by ForwardTimeout and its result warms the
		// ingress cache even if this waiter leaves.
		select {
		case <-t.remote.done:
			if t.remote.retry {
				// The shared forward ended in the first caller's race with
				// the server lifecycle (drain/shutdown), not an
				// authoritative verdict. This waiter was admitted in its
				// own right: re-run the local path under its own context —
				// a genuinely draining server rejects it there, honestly.
				if out, ok := s.cache.get(t.key); ok {
					return cellResult(t.key, out, true)
				}
				lt, we := s.submitLocal(reqCtx, t.key, t.req, t.tn, t.block)
				if we != nil {
					return CellResult{Key: t.key, Error: we}
				}
				return s.await(reqCtx, lt) // lt is never remote: depth ≤ 2
			}
			return cellResult(t.key, t.remote.out, t.remote.cached)
		case <-reqCtx.Done():
			return CellResult{Key: t.key, Error: &WireError{
				Code: CodeCanceled, Message: "request canceled: " + reqCtx.Err().Error()}}
		}
	}
	select {
	case <-t.f.done:
		return cellResult(t.key, t.f.out, false)
	case <-reqCtx.Done():
		s.leave(t.f)
		return CellResult{Key: t.key, Error: &WireError{
			Code: CodeCanceled, Message: "request canceled: " + reqCtx.Err().Error()}}
	}
}

// leave drops one waiter; the last one out cancels the computation and
// removes the flight from the index, so a later identical request starts
// a fresh computation instead of joining a doomed one and inheriting a
// cancellation caused by some earlier client's disconnect.
func (s *Server) leave(f *flight) {
	s.mu.Lock()
	f.waiters--
	last := f.waiters <= 0
	if last && s.flights[f.key] == f {
		delete(s.flights, f.key)
		s.met.Inflight.Store(uint64(len(s.flights)))
	}
	s.mu.Unlock()
	if last {
		f.cancel()
	}
}

// complete publishes a flight's outcome: successful results enter the RAM
// cache and the durable store (write-behind, before waiters wake — once a
// client holds a response, the result survives a restart), the flight
// leaves the index (so later identical requests hit the cache instead),
// and every waiter wakes.
func (s *Server) complete(f *flight, out outcome) {
	if out.err == nil {
		s.cache.add(f.key, out)
		s.storePut(f.key, out)
	} else {
		s.met.CellErrors.Inc()
	}
	s.mu.Lock()
	// Guarded delete: an abandoned flight may already have left the index
	// (leave), and the key may since be owned by a fresh flight.
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.met.Inflight.Store(uint64(len(s.flights)))
	f.out = out
	s.mu.Unlock()
	close(f.done)
	f.cancel()
}

// dispatch is the single batching loop: it takes the next queued flight
// (weighted-fair across tenants), drains whatever else is already waiting
// (up to MaxBatch) so concurrent requests land in one batch, and runs the
// batch on the shared sched pool. While a batch runs nothing reads the
// queue — the bounded queue filling up is the backpressure signal.
func (s *Server) dispatch() {
	defer s.wg.Done()
	close(s.readyCh) // the first dispatcher loop is running: /readyz turns ready
	for {
		first := s.queue.pop()
		if first == nil {
			select {
			case <-s.queue.ready:
				continue
			case <-s.baseCtx.Done():
				s.failPending()
				return
			}
		}
		batch := []*flight{first}
		for len(batch) < s.cfg.MaxBatch {
			f := s.queue.pop()
			if f == nil {
				break
			}
			batch = append(batch, f)
		}
		s.met.BatchSize.Observe(int64(len(batch)))

		start := time.Now()
		jobs := make([]sched.Job[struct{}], len(batch))
		for i, f := range batch {
			f := f
			jobs[i] = func(context.Context) (struct{}, error) {
				s.complete(f, s.compute(f))
				return struct{}{}, nil
			}
		}
		// Jobs report their errors through the flight, never to the pool,
		// so the batch always runs to completion.
		_, _ = sched.Map(s.baseCtx, s.cfg.Workers, jobs)
		s.met.BatchLatencyMs.Observe(time.Since(start).Milliseconds())

		if s.baseCtx.Err() != nil {
			s.failPending()
			return
		}
	}
}

// failPending closes the queue and completes everything still in it with
// the shutdown error. After this, blocked enqueuers observe the closed
// queue and fail their own flights — nothing is ever parked forever.
func (s *Server) failPending() {
	for _, f := range s.queue.closeAndDrain() {
		s.complete(f, outcome{err: errShutdown})
	}
}

// compute runs one flight's simulation (or the test seam). A flight whose
// every waiter left while it was queued is not simulated at all.
func (s *Server) compute(f *flight) outcome {
	if err := f.ctx.Err(); err != nil {
		return outcome{err: fmt.Errorf("%w: %w", govern.ErrCanceled, err)}
	}
	if s.cfg.runCell != nil {
		return s.cfg.runCell(f.ctx, f.req)
	}
	return runRequest(f.ctx, f.req, s.sim)
}

// runRequest executes one canonical request against the real simulators,
// threading the flight context and the request budget into the engines'
// run governors and the shared obs.Sim into their metric hooks.
func runRequest(ctx context.Context, c Request, sim *obs.Sim) outcome {
	switch c.Kind {
	case KindCell:
		bm, ok := workload.ByName(c.Benchmark)
		if !ok {
			return outcome{err: &WireError{Code: CodeInvalid, Message: fmt.Sprintf("unknown benchmark %q", c.Benchmark)}}
		}
		spec, err := experiments.PlanByLabel(c.Plan)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		prog, err := workload.Build(bm, spec.Make(), c.Scale)
		if err != nil {
			return outcome{err: err}
		}
		machine, _, err := machineByName(c.Machine)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		cfg := experiments.ConfigFor(machine, spec.Scheme).WithPolicy(c.Policy).
			WithMaxInsts(c.MaxInsts).WithContext(ctx).WithObs(sim)
		run, err := cfg.Run(prog)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{run: &run}

	case KindProgram:
		prog, err := asm.Assemble(c.Source)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		machine, _, err := machineByName(c.Machine)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		scheme, err := schemeByName(c.Scheme)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		var cfg core.Config
		if machine == core.InOrder {
			cfg = core.Alpha21164(scheme)
		} else {
			cfg = core.R10000(scheme)
		}
		run, err := cfg.WithMaxInsts(c.MaxInsts).WithContext(ctx).WithObs(sim).Run(prog)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{run: &run}

	case KindFig4:
		app, err := coherence.AppByName(c.App, c.Processors)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		pol, err := coherence.SchemeByName(c.Scheme)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		mcfg := multi.DefaultConfig()
		mcfg.Processors = c.Processors
		mcfg.Govern = govern.Config{Ctx: ctx, MaxInsts: c.MaxRefs}
		mcfg.Obs = sim
		res, err := multi.Simulate(app, pol, mcfg)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{multiRes: &res}

	case KindTrace:
		machine, _, err := machineByName(c.Machine)
		if err != nil {
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		var cfg core.Config
		if machine == core.InOrder {
			cfg = core.Alpha21164(core.Off)
		} else {
			cfg = core.R10000(core.Off)
		}
		res, err := trace.Replay(strings.NewReader(c.Trace), trace.ReplayConfig{
			Hier:    cfg.HierConfig(),
			Reader:  trace.ReaderConfig{AllowSampled: c.AllowSampled},
			Ctx:     ctx,
			MaxRefs: c.MaxRefs,
		})
		if err != nil {
			// Budget/cancel flow through wireErr's classification; every
			// other replay failure (parse, validation, sampled-without-
			// opt-in, missing addr, tid bound) is the client's trace text.
			if errors.Is(err, govern.ErrBudget) || errors.Is(err, govern.ErrCanceled) || errors.Is(err, govern.ErrLivelock) {
				return outcome{err: err}
			}
			return outcome{err: &WireError{Code: CodeInvalid, Message: err.Error()}}
		}
		return outcome{replay: res}
	}
	return outcome{err: &WireError{Code: CodeInvalid, Message: fmt.Sprintf("unknown kind %q", c.Kind)}}
}

func cellResult(key string, out outcome, cached bool) CellResult {
	if out.err != nil {
		return CellResult{Key: key, Error: wireErr(out.err)}
	}
	return CellResult{Key: key, Cached: cached, Run: out.run, Multi: out.multiRes, Replay: out.replay}
}

// ---- HTTP handlers ----

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the top-level body of whole-request failures.
type errorBody struct {
	Error *WireError `json:"error"`
}

func writeError(w http.ResponseWriter, status int, we *WireError) {
	writeJSON(w, status, errorBody{Error: we})
}

// writeErrorRetry is writeError plus an honest Retry-After header — every
// 429 goes through here with a retry the server actually computed, never
// a hardcoded guess.
func writeErrorRetry(w http.ResponseWriter, status int, we *WireError, retryAfterSecs int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	writeJSON(w, status, errorBody{Error: we})
}

// overloadRetryAfter computes the Retry-After of a queue-overflow 429
// from the live queue depth and the recent mean dispatcher-round latency:
// the backlog is depth/MaxBatch rounds deep, each round historically
// takes BatchLatencyMs. Clamped to [1, 30]; before any round has
// completed the estimate assumes one second per round.
func (s *Server) overloadRetryAfter() int {
	rounds := s.queue.depth()/s.cfg.MaxBatch + 1
	meanMs := s.met.BatchLatencyMs.Mean()
	if meanMs <= 0 {
		meanMs = 1000
	}
	return clampRetryAfter(int(math.Ceil(float64(rounds) * meanMs / 1000)))
}

func (s *Server) observeLatency(start time.Time) {
	s.met.LatencyMs.Observe(time.Since(start).Milliseconds())
}

// readJSON decodes a request body into v, distinguishing an oversized
// body (413, so clients learn the actual problem) from malformed JSON
// (400). On failure the error response has been written.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, &WireError{
				Code: CodeInvalid, Message: fmt.Sprintf("request body above limit %d bytes", mbe.Limit)})
			return false
		}
		writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// isForwarded reports whether the request already took one cluster hop.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(HeaderForwarded) != ""
}

// resolveTenant authenticates the request (before any body validation:
// an unauthenticated client learns nothing beyond 401). On failure the
// response has been written.
//
// A forwarded request (X-Informd-Forwarded) is handled differently: the
// tenant was already resolved AND admitted at the ingress node — it is
// carried by name (X-Informd-Tenant) so the owner attributes metrics and
// fair-queue weight to the right tenant without charging its token
// bucket a second time. Because that branch skips both the API-key check
// and the bucket, it is only honored when the hop proves it originates
// from a cluster member: the shared cluster secret must match
// (X-Informd-Cluster-Auth, constant-time compare), and a node that is
// not a cluster member refuses the header outright — any client can
// type the header, only peers hold the secret. The HeaderForwarded value
// itself is the forwarding node's CodeVersion (rejected with 409 on
// mismatch, the per-request half of the cluster handshake).
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	if v := r.Header.Get(HeaderForwarded); v != "" {
		if s.cluster == nil {
			writeError(w, http.StatusForbidden, &WireError{
				Code:    CodeUnauthorized,
				Message: "forwarded cluster hop refused: this node is not a cluster member",
			})
			return nil, false
		}
		auth := r.Header.Get(HeaderClusterAuth)
		if subtle.ConstantTimeCompare([]byte(auth), []byte(s.cluster.Secret())) != 1 {
			writeError(w, http.StatusForbidden, &WireError{
				Code:    CodeUnauthorized,
				Message: "forwarded cluster hop refused: bad or missing cluster secret",
			})
			return nil, false
		}
		if v != CodeVersion {
			writeError(w, http.StatusConflict, &WireError{
				Code:    CodeInvalid,
				Message: fmt.Sprintf("forwarding peer runs code version %q, this node runs %q", v, CodeVersion),
			})
			return nil, false
		}
		tn := s.tenants.resolveForwarded(r.Header.Get(HeaderForwardedTenant))
		tn.reqs.Inc()
		return tn, true
	}
	tn, we := s.tenants.resolve(r)
	if we != nil {
		writeError(w, http.StatusUnauthorized, we)
		return nil, false
	}
	tn.reqs.Inc()
	return tn, true
}

// admitTenant rate-admits n cells for an already-resolved tenant — after
// validation, so an invalid request never drains the bucket. Forwarded
// requests are never re-admitted: the ingress node already charged the
// tenant's bucket, and charging both hops would bill every cluster-routed
// cell twice (the cell counter still moves — it counts cells served by
// this node). On failure the response has been written.
func (s *Server) admitTenant(w http.ResponseWriter, tn *tenant, n int, forwarded bool) bool {
	tn.cells.Add(uint64(n))
	if forwarded {
		return true
	}
	if retry, we := s.tenants.admit(tn, n); we != nil {
		s.met.RateLimited.Inc()
		tn.limited.Inc()
		writeErrorRetry(w, http.StatusTooManyRequests, we, retry)
		return false
	}
	return true
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observeLatency(start)
	s.met.Requests.Inc()
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, &WireError{Code: CodeCanceled, Message: "server draining"})
		return
	}

	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	forwarded := isForwarded(r)
	var req SimulateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: "no cells in request"})
		return
	}
	if len(req.Cells) > s.cfg.MaxCellsPerRequest {
		writeError(w, http.StatusBadRequest, &WireError{
			Code: CodeInvalid, Message: fmt.Sprintf("%d cells above per-request limit %d", len(req.Cells), s.cfg.MaxCellsPerRequest)})
		return
	}
	if !s.admitTenant(w, tn, len(req.Cells), forwarded) {
		return
	}
	s.met.Cells.Add(uint64(len(req.Cells)))
	if forwarded {
		s.met.ForwardedServed.Add(uint64(len(req.Cells)))
	}

	// Submit every valid cell before awaiting any, so the whole batch
	// lands in the dispatcher's current round and runs concurrently.
	results := make([]CellResult, len(req.Cells))
	tickets := make([]*ticket, len(req.Cells))
	for i, cell := range req.Cells {
		canon, err := Canonicalize(cell, s.cfg.MaxInstsCap)
		if err != nil {
			results[i] = CellResult{Error: &WireError{Code: CodeInvalid, Message: err.Error()}}
			s.met.CellErrors.Inc()
			continue
		}
		t, we := s.submit(r.Context(), canon, tn, false, forwarded)
		if we != nil {
			// Queue overflow rejects the whole request: drop the waiters
			// we already registered and tell the client to back off.
			for _, prev := range tickets {
				if prev != nil && prev.f != nil {
					s.leave(prev.f)
				}
			}
			if we.Code == CodeCanceled {
				writeError(w, http.StatusServiceUnavailable, we)
				return
			}
			writeErrorRetry(w, http.StatusTooManyRequests, we, s.overloadRetryAfter())
			return
		}
		t2 := t
		tickets[i] = &t2
	}

	for i, t := range tickets {
		if t == nil {
			continue // per-cell validation error already recorded
		}
		results[i] = s.await(r.Context(), *t)
		if results[i].Error != nil && results[i].Error.Code != CodeCanceled {
			s.met.CellErrors.Inc()
		}
	}
	writeJSON(w, http.StatusOK, SimulateResponse{Results: results})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observeLatency(start)
	s.met.Requests.Inc()
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, &WireError{Code: CodeCanceled, Message: "server draining"})
		return
	}

	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	forwarded := isForwarded(r)
	var req ExperimentRequest
	if !readJSON(w, r, &req) {
		return
	}

	var (
		title    string
		bms      []workload.Benchmark
		specs    []experiments.PlanSpec
		baseline string
		summary  bool
	)
	if req.Name != "" {
		ne, err := experiments.Named(req.Name)
		if err != nil {
			writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: err.Error()})
			return
		}
		title, bms, specs, baseline, summary = ne.Title, ne.Benchmarks, ne.Specs, ne.Baseline, ne.Summary
	} else {
		if len(req.Benchmarks) == 0 || len(req.Plans) == 0 {
			writeError(w, http.StatusBadRequest, &WireError{
				Code: CodeInvalid, Message: "experiment needs a name or benchmarks+plans"})
			return
		}
		seenBm := make(map[string]bool, len(req.Benchmarks))
		for _, name := range req.Benchmarks {
			bm, ok := workload.ByName(name)
			if !ok {
				writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: fmt.Sprintf("unknown benchmark %q", name)})
				return
			}
			if seenBm[bm.Name] {
				writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: fmt.Sprintf("duplicate benchmark %q", bm.Name)})
				return
			}
			seenBm[bm.Name] = true
			bms = append(bms, bm)
		}
		seenPlan := make(map[string]bool, len(req.Plans))
		for _, label := range req.Plans {
			spec, err := experiments.PlanByLabel(label)
			if err != nil {
				writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: err.Error()})
				return
			}
			if seenPlan[spec.Label] {
				writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: fmt.Sprintf("duplicate plan %q", spec.Label)})
				return
			}
			seenPlan[spec.Label] = true
			specs = append(specs, spec)
		}
		title = req.Title
		if title == "" {
			title = "custom experiment"
		}
		baseline = req.Baseline
	}

	// Resolve the normalisation baseline exactly like
	// experiments.HandlerOverhead ("" selects the "N" bar; its absence is
	// an error rather than a silent default).
	want := baseline
	if want == "" {
		want = "N"
	}
	baseIdx := -1
	for i, spec := range specs {
		if spec.Label == want {
			baseIdx = i
			break
		}
	}
	if baseIdx < 0 {
		writeError(w, http.StatusBadRequest, &WireError{
			Code: CodeInvalid, Message: fmt.Sprintf("no %q plan to normalise against", want)})
		return
	}

	// Enumerate cells in the harness's benchmark → machine → plan order;
	// the served tables must be byte-identical to the sequential CLI's.
	machines := []core.Machine{core.OutOfOrder, core.InOrder}
	if total := len(bms) * len(machines) * len(specs); total > s.cfg.MaxExperimentCells {
		writeError(w, http.StatusBadRequest, &WireError{
			Code: CodeInvalid, Message: fmt.Sprintf("experiment grid of %d cells above limit %d", total, s.cfg.MaxExperimentCells)})
		return
	}
	machineNames := map[core.Machine]string{core.OutOfOrder: MachineOOO, core.InOrder: MachineInOrder}
	type cellRef struct {
		bm      string
		machine core.Machine
		plan    string
	}
	var cells []cellRef
	for _, bm := range bms {
		for _, m := range machines {
			for _, spec := range specs {
				cells = append(cells, cellRef{bm.Name, m, spec.Label})
			}
		}
	}

	if !s.admitTenant(w, tn, len(cells), forwarded) {
		return
	}

	resp := ExperimentResponse{Name: req.Name, Cells: len(cells)}
	tickets := make([]ticket, len(cells))
	for i, c := range cells {
		canon, err := Canonicalize(Request{
			Kind: KindCell, Benchmark: c.bm, Plan: c.plan,
			Machine: machineNames[c.machine], Scale: req.Scale, MaxInsts: req.MaxInsts,
		}, s.cfg.MaxInstsCap)
		if err != nil {
			writeError(w, http.StatusBadRequest, &WireError{Code: CodeInvalid, Message: err.Error()})
			return
		}
		// Blocking submit: an experiment larger than the queue trickles in
		// as the pool drains; the open request is the backpressure. In
		// cluster mode this loop IS the scatter: non-owned cells return
		// remote tickets immediately (the forwards run concurrently,
		// bounded by the per-peer connection pool) while self-owned cells
		// flow through the local queue — and the in-order await below is
		// the gather, reusing sched's deterministic-merge contract.
		t, we := s.submit(r.Context(), canon, tn, true, forwarded)
		if we != nil {
			for _, prev := range tickets[:i] {
				if prev.f != nil {
					s.leave(prev.f)
				}
			}
			writeError(w, http.StatusServiceUnavailable, we)
			return
		}
		if t.cached != nil {
			resp.CacheHits++
		} else {
			resp.Computed++
		}
		tickets[i] = t
	}

	results := make([]experiments.Result, len(cells))
	for i, t := range tickets {
		cr := s.await(r.Context(), t)
		if cr.Error != nil {
			// The experiment fails as a whole: drop our waiter count on
			// every ticket not yet awaited, so abandoned flights are
			// cancelled instead of simulating for nobody.
			for _, rest := range tickets[i+1:] {
				if rest.f != nil {
					s.leave(rest.f)
				}
			}
			status := http.StatusInternalServerError
			switch cr.Error.Code {
			case CodeCanceled:
				status = http.StatusServiceUnavailable
			case CodeBudget, CodeLivelock:
				status = http.StatusUnprocessableEntity
			}
			s.met.CellErrors.Inc()
			writeError(w, status, cr.Error)
			return
		}
		results[i] = experiments.Result{
			Benchmark: cells[i].bm,
			Machine:   cells[i].machine,
			Plan:      cells[i].plan,
			Run:       *cr.Run,
		}
	}
	// Post-join normalisation, identical to HandlerOverhead's.
	for i := range results {
		base := i - i%len(specs) + baseIdx
		results[i].Norm = results[i].Run.NormalizeTo(results[base].Run)
	}

	resp.Table = experiments.FormatFigure(title, results)
	if summary {
		resp.Summary = experiments.FormatOverheadSummary(results)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.sim.Reg.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// storeStatus summarises the durable store for /healthz.
func (s *Server) storeStatus() map[string]any {
	switch {
	case s.store == nil:
		return map[string]any{"state": "disabled"}
	case s.storeDegraded.Load():
		return map[string]any{"state": "degraded"}
	default:
		return map[string]any{
			"state":   "ok",
			"entries": s.store.Len(),
			"bytes":   s.store.Bytes(),
		}
	}
}

// handleHealthz is liveness: it answers 200 whenever the process can
// serve HTTP at all, and reports operational detail (draining, store
// degradation, cache occupancy). Routing decisions belong on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.isDraining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        status,
		"code_version":  CodeVersion,
		"cache_entries": s.cache.len(),
		"store":         s.storeStatus(),
	})
}

// clusterStatus summarises cluster membership and peer health for
// /readyz. Peers being down never makes the node unready — non-owned
// fingerprints degrade to local compute, which is correct, just
// duplicated work — but the detail tells an operator *why* forwards are
// not happening.
func (s *Server) clusterStatus() map[string]any {
	if s.cluster == nil {
		return map[string]any{"ready": true, "mode": "single-node"}
	}
	peers := s.cluster.Status()
	up := 0
	for _, st := range peers {
		if st.State == "up" {
			up++
		}
	}
	return map[string]any{
		"ready":       true,
		"mode":        "cluster",
		"self":        s.cluster.Self(),
		"peers_total": len(peers),
		"peers_up":    up,
		"peers":       peers,
	}
}

// handleReadyz is readiness: 200 only once the store has been opened and
// recovered (a *Server is only constructible with an opened store) and
// the first dispatcher loop is running, and never while draining — so a
// rotation never routes traffic to a cold or recovering daemon.
//
// The body carries per-subsystem detail so an operator can tell WHY a
// node is not ready (dispatcher not started? draining?) and what state
// the degradable subsystems are in (store demoted to RAM-only? peers
// unreachable?). Only the dispatcher and draining gates decide the
// status code: store degradation and peer outages degrade service
// quality, never correctness, so they must not rotate the node out.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	started := false
	select {
	case <-s.readyCh:
		started = true
	default:
	}
	draining := s.isDraining()

	status, httpStatus := "ready", http.StatusOK
	switch {
	case !started:
		status, httpStatus = "starting", http.StatusServiceUnavailable
	case draining:
		status, httpStatus = "draining", http.StatusServiceUnavailable
	}

	storeSub := s.storeStatus()
	storeSub["ready"] = true // degraded = RAM-only, still serving correct answers
	writeJSON(w, httpStatus, map[string]any{
		"status": status,
		"subsystems": map[string]any{
			"dispatcher": map[string]any{"ready": started && !draining, "running": started, "draining": draining},
			"store":      storeSub,
			"cluster":    s.clusterStatus(),
		},
	})
}
