package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"informing/internal/govern"
	"informing/internal/stats"
)

// newTestServer builds a Server (closed at test end) and an httptest
// front end for it — the full end-to-end path: real router, real JSON
// codecs, real TCP.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// fakeRunner is a controllable runCell hook: it counts invocations per
// canonical request and can hold computations until released.
type fakeRunner struct {
	mu      sync.Mutex
	calls   map[string]int
	started chan string   // receives the canonical string of each started call
	release chan struct{} // when non-nil, computations block here (or on ctx)
}

func newFakeRunner(blocking bool) *fakeRunner {
	f := &fakeRunner{calls: map[string]int{}, started: make(chan string, 64)}
	if blocking {
		f.release = make(chan struct{})
	}
	return f
}

func (f *fakeRunner) run(ctx context.Context, c Request) outcome {
	key := canonicalString(c)
	f.mu.Lock()
	f.calls[key]++
	f.mu.Unlock()
	f.started <- key
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return outcome{err: fmt.Errorf("%w: %w", govern.ErrCanceled, ctx.Err())}
		}
	}
	// A distinguishable, deterministic payload per request.
	run := stats.Run{}
	run.IssueWidth = 4
	run.Cycles = int64(len(key))
	return outcome{run: &run}
}

func (f *fakeRunner) count(c Request) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[canonicalString(c)]
}

func (f *fakeRunner) total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c
	}
	return n
}

func cellReq(bench, plan, machine string) Request {
	return Request{Kind: KindCell, Benchmark: bench, Plan: plan, Machine: machine}
}

// tryPostJSON is the goroutine-safe POST helper (no *testing.T calls, so
// it may run off the test goroutine).
func tryPostJSON(url string, body any) (*http.Response, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, out.Bytes(), nil
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	resp, body2, err := tryPostJSON(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body2
}

func decodeSim(t *testing.T, body []byte) SimulateResponse {
	t.Helper()
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("response not well-formed JSON: %v\n%s", err, body)
	}
	return sr
}

func decodeTo(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("response not well-formed JSON: %v\n%s", err, body)
	}
}

// TestSimulateBadRequests is the table-driven 400 lane: malformed JSON,
// unknown fields, empty and oversized batches all produce a well-formed
// error body with code "invalid".
func TestSimulateBadRequests(t *testing.T) {
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run, MaxCellsPerRequest: 2})

	cases := []struct {
		name string
		body string
	}{
		{"malformed-json", `{"cells": [`},
		{"not-json", `this is not json`},
		{"unknown-field", `{"cellz": []}`},
		{"empty-batch", `{"cells": []}`},
		{"too-many-cells", `{"cells": [{"kind":"cell"},{"kind":"cell"},{"kind":"cell"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if eb.Error == nil || eb.Error.Code != CodeInvalid {
				t.Fatalf("error body = %+v, want code %q", eb.Error, CodeInvalid)
			}
		})
	}
	if runner.total() != 0 {
		t.Fatalf("invalid requests reached the runner %d times", runner.total())
	}
}

// TestSimulatePerCellValidation: a batch mixing valid and invalid cells
// returns 200 with a well-formed partial body — results for the good
// cells, typed errors for the bad ones, in request order.
func TestSimulatePerCellValidation(t *testing.T) {
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run})

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{
		cellReq("compress", "S1", "ooo"),
		cellReq("no-such-benchmark", "S1", "ooo"),
		cellReq("compress", "BOGUS", "ooo"),
		cellReq("espresso", "N", "inorder"),
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	if len(sr.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(sr.Results))
	}
	for _, i := range []int{0, 3} {
		if sr.Results[i].Error != nil || sr.Results[i].Run == nil {
			t.Errorf("result %d = %+v, want success", i, sr.Results[i])
		}
	}
	for _, i := range []int{1, 2} {
		if sr.Results[i].Error == nil || sr.Results[i].Error.Code != CodeInvalid {
			t.Errorf("result %d = %+v, want invalid error", i, sr.Results[i])
		}
	}
}

// TestCacheHitVsRecompute: the second identical request is served from
// the LRU (Cached=true, runner untouched); a different request computes.
func TestCacheHitVsRecompute(t *testing.T) {
	runner := newFakeRunner(false)
	s, ts := newTestServer(t, Config{runCell: runner.run})

	first := cellReq("compress", "S1", "ooo")
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{first}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	if sr.Results[0].Cached || sr.Results[0].Run == nil {
		t.Fatalf("first request: %+v, want computed result", sr.Results[0])
	}

	// Identical request, spelled differently (machine alias, default
	// scale made explicit): must hit the same cache entry.
	alias := first
	alias.Machine = "out-of-order"
	alias.Scale = 1
	_, body = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{alias}})
	sr = decodeSim(t, body)
	if !sr.Results[0].Cached {
		t.Fatalf("second identical request not served from cache: %+v", sr.Results[0])
	}
	canon, err := Canonicalize(first, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.count(canon); got != 1 {
		t.Fatalf("runner invoked %d times for identical requests, want 1", got)
	}
	if hits := s.met.Hits.Load(); hits != 1 {
		t.Fatalf("serve_cache_hits = %d, want 1", hits)
	}

	// A different plan is a different fingerprint: recompute.
	_, body = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "S10", "ooo")}})
	sr = decodeSim(t, body)
	if sr.Results[0].Cached {
		t.Fatalf("different request served from cache: %+v", sr.Results[0])
	}
	if runner.total() != 2 {
		t.Fatalf("runner invoked %d times, want 2", runner.total())
	}
}

// TestDuplicateRequestsCoalesce: identical requests racing each other
// share one computation (single-flight) — the runner fires once, both
// clients get the result, and the coalesced counter proves the join.
func TestDuplicateRequestsCoalesce(t *testing.T) {
	runner := newFakeRunner(true)
	s, ts := newTestServer(t, Config{runCell: runner.run})

	req := SimulateRequest{Cells: []Request{cellReq("compress", "U10", "inorder")}}
	type reply struct {
		body []byte
		code int
		err  error
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, body, err := tryPostJSON(ts.URL+"/v1/simulate", req)
			if err != nil {
				replies <- reply{err: err}
				return
			}
			replies <- reply{body, resp.StatusCode, nil}
		}()
	}

	// Exactly one computation starts; release it once both requests are
	// in (the second either joined the flight or will hit the cache).
	select {
	case <-runner.started:
	case <-time.After(5 * time.Second):
		t.Fatal("no computation started")
	}
	deadline := time.After(5 * time.Second)
	for s.met.Coalesced.Load()+s.met.Hits.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("second request neither coalesced nor cache-hit")
		case <-time.After(time.Millisecond):
		}
	}
	close(runner.release)

	for i := 0; i < 2; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("status = %d, want 200", r.code)
		}
		sr := decodeSim(t, r.body)
		if sr.Results[0].Error != nil || sr.Results[0].Run == nil {
			t.Fatalf("result = %+v, want success", sr.Results[0])
		}
	}
	if runner.total() != 1 {
		t.Fatalf("runner invoked %d times for racing identical requests, want 1", runner.total())
	}
}

// TestQueueOverflow429: when the bounded queue is full, a new distinct
// cell is rejected whole-request with 429 and a Retry-After header — the
// server's backpressure contract.
func TestQueueOverflow429(t *testing.T) {
	runner := newFakeRunner(true)
	defer close(runner.release)
	s, ts := newTestServer(t, Config{runCell: runner.run, Workers: 1, QueueSize: 1, MaxBatch: 1})

	// First cell: dequeued by the dispatcher, blocks inside the runner.
	go tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "S1", "ooo")}})
	select {
	case <-runner.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first computation never started")
	}

	// Second cell: occupies the queue's single slot.
	go tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("espresso", "S1", "ooo")}})
	waitForQueued(t, s, 1)

	// Third distinct cell: queue full → 429.
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("tomcatv", "S1", "ooo")}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeOverload {
		t.Fatalf("overflow body = %s, want code %q", body, CodeOverload)
	}
}

// TestBudgetAbortErrorBody: a real simulation whose per-request budget
// expires returns a well-formed error body with code "budget" and the
// govern diagnostic snapshot.
func TestBudgetAbortErrorBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := cellReq("compress", "N", "ooo")
	req.MaxInsts = 1000 // far below what compress needs
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{req}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (per-cell error)\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	we := sr.Results[0].Error
	if we == nil || we.Code != CodeBudget {
		t.Fatalf("result = %+v, want budget error", sr.Results[0])
	}
	if we.Snapshot == "" {
		t.Fatal("budget abort carried no diagnostic snapshot")
	}

	// Failed runs must not be cached: the same request computes again
	// (and fails again) rather than serving the error from the LRU.
	_, body = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{req}})
	sr = decodeSim(t, body)
	if sr.Results[0].Cached {
		t.Fatal("errored run was served from cache")
	}
}

// TestClientCancellationCancelsFlight: when every request interested in a
// flight goes away, the flight's context is cancelled so the simulation
// aborts mid-batch instead of running to completion for nobody.
func TestClientCancellationCancelsFlight(t *testing.T) {
	runner := newFakeRunner(true) // blocks until ctx cancellation (never released)
	s, ts := newTestServer(t, Config{runCell: runner.run})

	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(SimulateRequest{Cells: []Request{cellReq("ear", "S1", "ooo")}})
	httpReq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-runner.started:
	case <-time.After(5 * time.Second):
		t.Fatal("computation never started")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request unexpectedly succeeded")
	}
	// The flight must observe the cancellation and unwind (the runner
	// returns on ctx.Done, complete() publishes a canceled outcome).
	deadline := time.After(5 * time.Second)
	for s.met.Inflight.Load() != 0 {
		select {
		case <-deadline:
			t.Fatal("flight never unwound after its last waiter left")
		case <-time.After(time.Millisecond):
		}
	}
	if s.cache.len() != 0 {
		t.Fatal("cancelled computation entered the cache")
	}
}

// TestDrainRejectsNewWork: a draining server 503s simulation requests
// and reports the state on /healthz.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{runCell: newFakeRunner(false).run})
	s.Drain()

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "N", "ooo")}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\n%s", resp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "draining" {
		t.Fatalf("healthz status = %v, want draining", hz["status"])
	}
}

// TestMetricsEndpoint: GET /metrics serves the shared registry with both
// serving-layer and simulator metrics present.
func TestMetricsEndpoint(t *testing.T) {
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run})
	postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "N", "ooo")}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MetricRequests, MetricCells, MetricMisses, "sim_instrs"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metric %q missing from /metrics", name)
		}
	}
	if snap.Counters[MetricRequests] == 0 {
		t.Error("serve_requests_total did not count")
	}
}

// TestBatchedCellsRunInOneRound: one request's cells are all submitted
// before any is awaited, so a multi-cell batch lands in the dispatcher's
// round and runs under the pool concurrently (not serially per cell).
func TestBatchedCellsRunInOneRound(t *testing.T) {
	runner := newFakeRunner(true)
	s, ts := newTestServer(t, Config{runCell: runner.run, Workers: 4, MaxBatch: 8})

	done := make(chan []byte, 1)
	go func() {
		_, body, _ := tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{
			cellReq("compress", "S1", "ooo"),
			cellReq("espresso", "S1", "ooo"),
			cellReq("tomcatv", "S1", "ooo"),
		}})
		done <- body
	}()

	// All three computations start before any completes — they are in
	// flight together on the pool.
	for i := 0; i < 3; i++ {
		select {
		case <-runner.started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 3 batched cells started concurrently", i)
		}
	}
	close(runner.release)
	sr := decodeSim(t, <-done)
	if len(sr.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(sr.Results))
	}
	seen := map[string]bool{}
	for i, r := range sr.Results {
		if r.Error != nil || r.Run == nil {
			t.Fatalf("result %d = %+v, want success", i, r)
		}
		if seen[r.Key] {
			t.Fatalf("duplicate key %q across distinct cells", r.Key)
		}
		seen[r.Key] = true
	}
	if got := s.sim.Instrs.Load(); got != 0 {
		t.Fatalf("fake runner leaked sim metrics: sim_instrs = %d", got)
	}
}

// TestShutdownFailsQueuedFlights: Close while work is queued completes
// every queued flight with a canceled outcome instead of leaking waiters.
func TestShutdownFailsQueuedFlights(t *testing.T) {
	runner := newFakeRunner(true)
	s := New(Config{runCell: runner.run, Workers: 1, QueueSize: 4, MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "S1", "ooo")}})
	<-runner.started // dispatcher busy; everything else will queue

	queued := make(chan []byte, 1)
	go func() {
		_, body, _ := tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("espresso", "S1", "ooo")}})
		queued <- body
	}()
	waitForQueued(t, s, 1)

	go s.Close() // cancels the blocked runner (ctx) and fails the queue
	sr := decodeSim(t, <-queued)
	we := sr.Results[0].Error
	if we == nil || we.Code != CodeCanceled {
		t.Fatalf("queued flight outcome = %+v, want canceled", sr.Results[0])
	}
	if !errors.Is(errShutdown, govern.ErrCanceled) {
		t.Fatal("errShutdown must wrap govern.ErrCanceled")
	}
}

// TestOversizedBodyIs413: a body above maxBodyBytes is reported as 413
// (entity too large), not mislabelled as a 400 JSON syntax error.
func TestOversizedBodyIs413(t *testing.T) {
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run})

	big := `{"cells": [{"kind":"cell","benchmark":"` + strings.Repeat("x", maxBodyBytes) + `"}]}`
	for _, path := range []string{"/v1/simulate", "/v1/experiment"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status = %d, want 413", path, resp.StatusCode)
		}
	}
	if runner.total() != 0 {
		t.Fatalf("oversized requests reached the runner %d times", runner.total())
	}
}

// TestExperimentGridBounds: custom /v1/experiment grids are bounded —
// a cross product above MaxExperimentCells and duplicated benchmark or
// plan names are rejected with 400 before any work is queued.
func TestExperimentGridBounds(t *testing.T) {
	runner := newFakeRunner(false)
	_, ts := newTestServer(t, Config{runCell: runner.run, MaxExperimentCells: 8})

	cases := []struct {
		name string
		req  ExperimentRequest
		want string
	}{
		{
			// 3 benchmarks × 2 machines × 2 plans = 12 > 8.
			"grid-too-large",
			ExperimentRequest{Benchmarks: []string{"compress", "espresso", "tomcatv"}, Plans: []string{"N", "S1"}},
			"above limit",
		},
		{
			"duplicate-benchmark",
			ExperimentRequest{Benchmarks: []string{"compress", "compress"}, Plans: []string{"N", "S1"}},
			"duplicate benchmark",
		},
		{
			// "S1/branch" canonicalizes to the "S1" label: a duplicate
			// even though the spellings differ.
			"duplicate-plan-alias",
			ExperimentRequest{Benchmarks: []string{"compress"}, Plans: []string{"N", "S1", "S1/branch"}},
			"duplicate plan",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/experiment", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, body)
			}
			var eb errorBody
			decodeTo(t, body, &eb)
			if eb.Error == nil || eb.Error.Code != CodeInvalid || !strings.Contains(eb.Error.Message, tc.want) {
				t.Fatalf("error = %+v, want code %q containing %q", eb.Error, CodeInvalid, tc.want)
			}
		})
	}
	if runner.total() != 0 {
		t.Fatalf("rejected experiments reached the runner %d times", runner.total())
	}
}

// TestStaleCancelledFlightNotJoined: once the last waiter of a queued
// flight leaves, the flight leaves the index too — a later identical
// request starts a fresh computation instead of joining the dead flight
// and being served a cancellation caused by another client's disconnect.
func TestStaleCancelledFlightNotJoined(t *testing.T) {
	runner := newFakeRunner(true)
	s, ts := newTestServer(t, Config{runCell: runner.run, Workers: 1, QueueSize: 4, MaxBatch: 1})

	// Cell A: dequeued by the dispatcher, blocks inside the runner.
	go tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("compress", "S1", "ooo")}})
	select {
	case <-runner.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first computation never started")
	}

	// Cell B: queued behind A; its only client disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(SimulateRequest{Cells: []Request{cellReq("espresso", "S1", "ooo")}})
	httpReq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitForQueued(t, s, 1)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request unexpectedly succeeded")
	}
	// The abandoned flight must leave the index even though it is still
	// sitting in the queue (the dispatcher is busy with A).
	deadline := time.After(5 * time.Second)
	for s.met.Inflight.Load() != 1 {
		select {
		case <-deadline:
			t.Fatalf("abandoned flight still indexed (inflight = %d)", s.met.Inflight.Load())
		case <-time.After(time.Millisecond):
		}
	}

	// A fresh request for B must recompute, not inherit the cancellation.
	done := make(chan []byte, 1)
	go func() {
		_, body, _ := tryPostJSON(ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{cellReq("espresso", "S1", "ooo")}})
		done <- body
	}()
	// Wait until the retry's flight is registered, then unblock the pool.
	deadline = time.After(5 * time.Second)
	for s.met.Inflight.Load() != 2 {
		select {
		case <-deadline:
			t.Fatal("retry never registered a fresh flight")
		case <-time.After(time.Millisecond):
		}
	}
	close(runner.release)
	sr := decodeSim(t, <-done)
	if sr.Results[0].Error != nil || sr.Results[0].Run == nil {
		t.Fatalf("retry after stale flight = %+v, want success", sr.Results[0])
	}
	if got := runner.count(mustCanon(t, cellReq("espresso", "S1", "ooo"))); got != 1 {
		t.Fatalf("cell B simulated %d times, want 1 (stale flight skipped, retry computed)", got)
	}
}

// TestExperimentFailureReleasesRemainingFlights: when one experiment
// cell fails, the handler leaves every not-yet-awaited flight so the
// abandoned simulations are cancelled instead of running for nobody.
func TestExperimentFailureReleasesRemainingFlights(t *testing.T) {
	failCell := mustCanon(t, cellReq("compress", "N", "ooo"))
	runner := newFakeRunner(true)
	bad := canonicalString(failCell)
	cfg := Config{Workers: 4, MaxBatch: 16, runCell: func(ctx context.Context, c Request) outcome {
		if canonicalString(c) == bad {
			return outcome{err: fmt.Errorf("synthetic cell failure")}
		}
		return runner.run(ctx, c)
	}}
	s, ts := newTestServer(t, cfg)

	resp, body := postJSON(t, ts.URL+"/v1/experiment", ExperimentRequest{
		Benchmarks: []string{"compress", "espresso"}, Plans: []string{"N", "S1"}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500\n%s", resp.StatusCode, body)
	}
	// Every remaining flight was left by the handler: their governors are
	// cancelled, the blocked runners return, and the index drains to zero
	// — without the release channel ever opening.
	deadline := time.After(5 * time.Second)
	for s.met.Inflight.Load() != 0 {
		select {
		case <-deadline:
			t.Fatalf("abandoned flights never unwound (inflight = %d)", s.met.Inflight.Load())
		case <-time.After(time.Millisecond):
		}
	}
}

func mustCanon(t *testing.T, req Request) Request {
	t.Helper()
	canon, err := Canonicalize(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

func waitForQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for s.queue.depth() < n {
		select {
		case <-deadline:
			t.Fatalf("queue never reached depth %d", n)
		case <-time.After(time.Millisecond):
		}
	}
}
