package serve

// The durable store holds opaque payloads; this file is the codec between
// a completed outcome and those bytes. JSON is safe here because every
// field of stats.Run and multi.Result is integral — the round trip is
// exact, so a store-served response is byte-identical to the computed one
// (the warm-restart differential pins this).

import (
	"encoding/json"
	"fmt"

	"informing/internal/multi"
	"informing/internal/stats"
)

type storedOutcome struct {
	Run   *stats.Run    `json:"run,omitempty"`
	Multi *multi.Result `json:"multi,omitempty"`
}

// encodeOutcome serialises a successful outcome for the store. Errored
// outcomes are never stored (same policy as the RAM cache).
func encodeOutcome(out outcome) ([]byte, error) {
	if out.err != nil {
		return nil, fmt.Errorf("serve: errored outcomes are not stored")
	}
	return json.Marshal(storedOutcome{Run: out.run, Multi: out.multiRes})
}

// decodeOutcome parses a store payload back into an outcome. The payload
// already passed the store's checksum, so a decode failure means a codec
// or version bug — the caller drops the entry and recomputes.
func decodeOutcome(b []byte) (outcome, error) {
	var so storedOutcome
	if err := json.Unmarshal(b, &so); err != nil {
		return outcome{}, fmt.Errorf("serve: stored outcome: %w", err)
	}
	if (so.Run == nil) == (so.Multi == nil) {
		return outcome{}, fmt.Errorf("serve: stored outcome needs exactly one of run/multi")
	}
	return outcome{run: so.Run, multiRes: so.Multi}, nil
}
