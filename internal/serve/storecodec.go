package serve

// The durable store holds opaque payloads; this file is the codec between
// a completed outcome and those bytes. JSON is safe here because every
// field of stats.Run and multi.Result is integral — the round trip is
// exact, so a store-served response is byte-identical to the computed one
// (the warm-restart differential pins this).

import (
	"encoding/json"
	"fmt"

	"informing/internal/multi"
	"informing/internal/stats"
	"informing/internal/trace"
)

type storedOutcome struct {
	Run    *stats.Run          `json:"run,omitempty"`
	Multi  *multi.Result       `json:"multi,omitempty"`
	Replay *trace.ReplayResult `json:"replay,omitempty"`
}

// encodeOutcome serialises a successful outcome for the store. Errored
// outcomes are never stored (same policy as the RAM cache).
func encodeOutcome(out outcome) ([]byte, error) {
	if out.err != nil {
		return nil, fmt.Errorf("serve: errored outcomes are not stored")
	}
	return json.Marshal(storedOutcome{Run: out.run, Multi: out.multiRes, Replay: out.replay})
}

// decodeOutcome parses a store payload back into an outcome. The payload
// already passed the store's checksum, so a decode failure means a codec
// or version bug — the caller drops the entry and recomputes.
func decodeOutcome(b []byte) (outcome, error) {
	var so storedOutcome
	if err := json.Unmarshal(b, &so); err != nil {
		return outcome{}, fmt.Errorf("serve: stored outcome: %w", err)
	}
	if exactlyOne(so.Run != nil, so.Multi != nil, so.Replay != nil) != 1 {
		return outcome{}, fmt.Errorf("serve: stored outcome needs exactly one of run/multi/replay")
	}
	return outcome{run: so.Run, multiRes: so.Multi, replay: so.Replay}, nil
}

// exactlyOne counts set flags; callers compare against 1.
func exactlyOne(flags ...bool) int {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n
}
