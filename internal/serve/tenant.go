package serve

// Per-tenant admission control. Production informd serves many clients;
// treating them identically lets one tenant's 1024-cell experiment starve
// another's interactive /v1/simulate. Tenants are identified by static API
// keys (a keyfile the operator maintains — no auth service dependency),
// admitted through per-tenant token buckets (rate) and scheduled through
// the weighted-fair queue (share), with an anonymous tier preserving the
// keyless back-compat path.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"informing/internal/obs"
)

// AnonymousTenant is the tenant name of keyless requests.
const AnonymousTenant = "anonymous"

// TenantSpec is one tenant's admission policy as written in the keyfile.
type TenantSpec struct {
	// Name labels the tenant in metrics and logs. Required, unique.
	Name string `json:"name"`

	// Key is the API key clients present (X-API-Key header or
	// Authorization: Bearer). Required for named tenants, ignored for the
	// anonymous tier.
	Key string `json:"key,omitempty"`

	// RatePerSec is the sustained admission rate in cells per second
	// (every submitted cell costs one token). 0 = unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`

	// Burst is the token-bucket depth (0 = max(2×rate, 1)); it bounds how
	// many cells a tenant can land instantaneously.
	Burst float64 `json:"burst,omitempty"`

	// Weight is the tenant's share in the weighted-fair dispatcher queue
	// (0 = 1). A weight-4 tenant drains four queued cells for every one a
	// weight-1 tenant drains while both have work pending.
	Weight int `json:"weight,omitempty"`
}

// TenantsFile is the keyfile schema: a JSON object, documented in README
// "Operating informd".
type TenantsFile struct {
	Tenants []TenantSpec `json:"tenants"`

	// Anonymous, when set, applies rate/weight policy to keyless requests
	// (its Key is ignored). When absent, keyless requests are admitted
	// unlimited — the pre-tenant behaviour.
	Anonymous *TenantSpec `json:"anonymous,omitempty"`

	// DenyAnonymous rejects keyless requests with 401 instead.
	DenyAnonymous bool `json:"deny_anonymous,omitempty"`
}

// tokenBucket is a standard continuous-refill token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take withdraws n tokens. When the bucket cannot cover n it reports the
// honest wait until the deficit refills — the Retry-After a client that
// actually waits that long will find satisfiable.
func (b *tokenBucket) take(n float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// tenant is the resolved runtime form of a TenantSpec, carrying its
// pre-bound per-tenant metric handles (serve_*{tenant="name"}).
type tenant struct {
	name   string
	weight int
	bucket *tokenBucket // nil = unlimited

	reqs    *obs.Counter
	cells   *obs.Counter
	hits    *obs.Counter
	limited *obs.Counter
}

// TenantMetricName returns the per-tenant variant of a serve_* metric
// name, e.g. serve_cells_total{tenant="alice"}.
func TenantMetricName(base, tenantName string) string {
	return fmt.Sprintf("%s{tenant=%q}", base, tenantName)
}

// TenantSet is the server's immutable tenant index. The zero value is not
// usable; build with NewTenantSet or LoadTenantsFile. A nil *TenantSet is
// valid in Config and means "anonymous only, unlimited" (back-compat).
type TenantSet struct {
	byKey  map[string]*tenant
	byName map[string]*tenant
	anon   *tenant // nil = keyless requests rejected
	fwd    *tenant // attribution of forwarded hops whose tenant is unknown here
	all    []*tenant

	// now is the clock the buckets read; tests override it.
	now func() time.Time
}

func tenantFromSpec(spec TenantSpec, name string) *tenant {
	t := &tenant{name: name, weight: spec.Weight}
	if t.weight < 1 {
		t.weight = 1
	}
	if spec.RatePerSec > 0 {
		burst := spec.Burst
		if burst <= 0 {
			burst = math.Max(2*spec.RatePerSec, 1)
		}
		t.bucket = newBucket(spec.RatePerSec, burst)
	}
	return t
}

// ForwardedTenant is the attribution tenant of cluster-forwarded
// requests whose ingress tenant name is not in this node's keyfile
// (cluster nodes with divergent keyfiles). It has no token bucket —
// admission already happened at the ingress node.
const ForwardedTenant = "forwarded"

// NewTenantSet validates and indexes a keyfile's contents.
func NewTenantSet(file TenantsFile) (*TenantSet, error) {
	ts := &TenantSet{byKey: map[string]*tenant{}, byName: map[string]*tenant{}, now: time.Now}
	seenName := map[string]bool{AnonymousTenant: true, ForwardedTenant: true}
	for i, spec := range file.Tenants {
		if spec.Name == "" {
			return nil, fmt.Errorf("tenant %d: no name", i)
		}
		if spec.Key == "" {
			return nil, fmt.Errorf("tenant %q: no key", spec.Name)
		}
		if seenName[spec.Name] {
			return nil, fmt.Errorf("duplicate or reserved tenant name %q", spec.Name)
		}
		if _, dup := ts.byKey[spec.Key]; dup {
			return nil, fmt.Errorf("tenant %q: key already in use", spec.Name)
		}
		seenName[spec.Name] = true
		t := tenantFromSpec(spec, spec.Name)
		ts.byKey[spec.Key] = t
		ts.byName[spec.Name] = t
		ts.all = append(ts.all, t)
	}
	if !file.DenyAnonymous {
		spec := TenantSpec{}
		if file.Anonymous != nil {
			spec = *file.Anonymous
		}
		ts.anon = tenantFromSpec(spec, AnonymousTenant)
		ts.all = append(ts.all, ts.anon)
	}
	ts.fwd = tenantFromSpec(TenantSpec{}, ForwardedTenant)
	ts.all = append(ts.all, ts.fwd)
	return ts, nil
}

// LoadTenantsFile reads and validates a JSON keyfile.
func LoadTenantsFile(path string) (*TenantSet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var file TenantsFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	ts, err := NewTenantSet(file)
	if err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	return ts, nil
}

// bind resolves every tenant's per-tenant metric handles in reg.
func (ts *TenantSet) bind(reg *obs.Registry) {
	for _, t := range ts.all {
		t.reqs = reg.Counter(TenantMetricName(MetricRequests, t.name))
		t.cells = reg.Counter(TenantMetricName(MetricCells, t.name))
		t.hits = reg.Counter(TenantMetricName(MetricHits, t.name))
		t.limited = reg.Counter(TenantMetricName(MetricRateLimited, t.name))
	}
}

// resolve maps a request to its tenant: X-API-Key or Authorization:
// Bearer name a tenant, no key selects the anonymous tier. An unknown key
// (or a keyless request with the tier denied) is unauthorized.
func (ts *TenantSet) resolve(r *http.Request) (*tenant, *WireError) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		if ts.anon == nil {
			return nil, &WireError{Code: CodeUnauthorized, Message: "API key required (anonymous tier disabled)"}
		}
		return ts.anon, nil
	}
	t, ok := ts.byKey[key]
	if !ok {
		return nil, &WireError{Code: CodeUnauthorized, Message: "unknown API key"}
	}
	return t, nil
}

// resolveForwarded maps a cluster-forwarded request's carried tenant
// name to a local tenant for attribution (metrics, fair-queue weight).
// The bucket is NOT consulted here or later — the ingress node already
// admitted the work; charging again would double-bill every
// cluster-routed cell. An unknown name (divergent keyfiles across the
// cluster) attributes to the anonymous tier when it exists, else to the
// reserved "forwarded" tenant — never a rejection: the ingress node
// vouched for the request.
func (ts *TenantSet) resolveForwarded(name string) *tenant {
	if t, ok := ts.byName[name]; ok {
		return t
	}
	if ts.anon != nil {
		return ts.anon
	}
	return ts.fwd
}

// admit charges n cells against the tenant's token bucket. On denial it
// returns the honest Retry-After in whole seconds, clamped to [1, 30].
func (ts *TenantSet) admit(t *tenant, n int) (retryAfter int, we *WireError) {
	if t.bucket == nil {
		return 0, nil
	}
	ok, wait := t.bucket.take(float64(n), ts.now())
	if ok {
		return 0, nil
	}
	return clampRetryAfter(int(math.Ceil(wait.Seconds()))), &WireError{
		Code:    CodeRateLimited,
		Message: fmt.Sprintf("tenant %q above admission rate (%d cells requested)", t.name, n),
	}
}

// clampRetryAfter bounds a computed Retry-After to [1, 30] seconds: never
// 0 (a thundering immediate retry), never so long a client gives up on a
// transient backlog.
func clampRetryAfter(secs int) int {
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}
