package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"informing/internal/core"
	"informing/internal/obs"
	"informing/internal/trace"
	"informing/internal/workload"
)

// TestTraceUploadValidation covers the request-shape rules without
// touching the simulator.
func TestTraceUploadValidation(t *testing.T) {
	good := `{"seq":0,"pc":"0x1000","disasm":"ld","fetch":0,"issue":1,"complete":2,"graduate":3,"level":1,"addr":"0x40","kind":"load","trap":false}` + "\n"
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"good", Request{Kind: KindTrace, Trace: good}, true},
		{"machine alias", Request{Kind: KindTrace, Trace: good, Machine: "in-order"}, true},
		{"empty trace", Request{Kind: KindTrace}, false},
		{"bad machine", Request{Kind: KindTrace, Trace: good, Machine: "vax"}, false},
		{"oversized", Request{Kind: KindTrace, Trace: strings.Repeat("x", MaxTraceBytes+1)}, false},
	}
	for _, c := range cases {
		canon, err := Canonicalize(c.req, 0)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%t", c.name, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if canon.Machine == "" {
			t.Errorf("%s: canonical machine empty", c.name)
		}
		// Fingerprints must differ by machine and content.
		other := canon
		other.Trace += good
		if Fingerprint(canon) == Fingerprint(other) {
			t.Errorf("%s: different traces share a fingerprint", c.name)
		}
	}
}

// TestTraceUploadClosedLoop is the serve half of the tentpole acceptance
// test: a golden-grid cell is recorded in-process and its trace uploaded
// through POST /v1/simulate; the served replay must reconcile the run's
// cache counters exactly, and the repeat upload must be a cache hit.
func TestTraceUploadClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("records and replays a full benchmark trace")
	}
	bm, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("unknown benchmark compress")
	}
	prog, err := workload.Build(bm, workload.NewPlanNone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.R10000(core.Off)
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf, 1)
	run, err := cfg.WithMaxInsts(100_000_000).WithTrace(sink.Emit).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded %d bytes of trace", buf.Len())

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	req := SimulateRequest{Cells: []Request{{Kind: KindTrace, Trace: buf.String(), Machine: MachineOOO}}}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%.400s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	cr := sr.Results[0]
	if cr.Error != nil || cr.Replay == nil {
		t.Fatalf("trace cell = %+v, want a replay result", cr)
	}
	if err := cr.Replay.Reconcile(run); err != nil {
		t.Fatalf("served replay does not reconcile with the recording run: %v", err)
	}
	if cr.Replay.Total.Events != run.DynInsts {
		t.Errorf("served replay consumed %d events, run graduated %d", cr.Replay.Total.Events, run.DynInsts)
	}

	_, body2 := postJSON(t, ts.URL+"/v1/simulate", req)
	cr2 := decodeSim(t, body2).Results[0]
	if !cr2.Cached {
		t.Error("repeat trace upload not served from cache")
	}
	if cr2.Replay == nil || cr2.Replay.Total != cr.Replay.Total {
		t.Errorf("cached replay differs from computed: %+v vs %+v", cr2.Replay, cr.Replay)
	}
}

// Malformed, sampled and v1 (addr-less) traces come back as per-cell
// "invalid" errors, not 500s; sampled traces pass with the opt-in.
func TestTraceUploadRejections(t *testing.T) {
	s := New(Config{runCell: nil})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	mk := func(seq int) string {
		return fmt.Sprintf(`{"seq":%d,"pc":"0x0","disasm":"ld","fetch":0,"issue":1,"complete":2,"graduate":3,"level":1,"addr":"0x40","kind":"load","trap":false}`+"\n", seq)
	}
	v1 := `{"seq":0,"pc":"0x0","disasm":"ld","fetch":0,"issue":1,"complete":2,"graduate":3,"level":1,"trap":false}` + "\n"

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Cells: []Request{
		{Kind: KindTrace, Trace: "not json\n"},
		{Kind: KindTrace, Trace: mk(63)},                     // sampled, no opt-in
		{Kind: KindTrace, Trace: v1},                         // memory event without addr
		{Kind: KindTrace, Trace: mk(63), AllowSampled: true}, // sampled, opted in
	}})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	sr := decodeSim(t, body)
	for i, wantCode := range []string{CodeInvalid, CodeInvalid, CodeInvalid, ""} {
		cr := sr.Results[i]
		if wantCode == "" {
			if cr.Error != nil || cr.Replay == nil {
				t.Errorf("cell %d = %+v, want sampled replay success", i, cr)
			} else if cr.Replay.Total.Refs != 1 {
				t.Errorf("cell %d replayed %d refs, want 1", i, cr.Replay.Total.Refs)
			}
			continue
		}
		if cr.Error == nil || cr.Error.Code != wantCode {
			t.Errorf("cell %d error = %+v, want code %q", i, cr.Error, wantCode)
		}
	}
}

// A trace outcome survives the durable-store codec byte-for-byte.
func TestStoreCodecTraceOutcome(t *testing.T) {
	res := &trace.ReplayResult{
		Total:    trace.SegmentResult{Events: 10, Refs: 6, Loads: 5, Stores: 1, L1Misses: 2, L2Misses: 1, Tids: 1},
		Segments: []trace.SegmentResult{{Events: 10, Refs: 6, Loads: 5, Stores: 1, L1Misses: 2, L2Misses: 1, Tids: 1}},
	}
	b, err := encodeOutcome(outcome{replay: res})
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.replay == nil || back.run != nil || back.multiRes != nil {
		t.Fatalf("decoded outcome = %+v, want replay only", back)
	}
	if back.replay.Total != res.Total || len(back.replay.Segments) != 1 || back.replay.Segments[0] != res.Segments[0] {
		t.Errorf("round trip changed the result: %+v vs %+v", back.replay, res)
	}
}
