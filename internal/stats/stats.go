// Package stats defines the measurement types shared by the timing cores
// and the experiment harnesses, most importantly the graduation-slot
// breakdown used by Figures 2 and 3 of the paper: total graduation slots
// are the issue width times the cycle count, and each slot is classified
// as busy (an instruction graduated), cache stall (no graduation and the
// oldest not-yet-graduated instruction is a data-cache miss), or other.
package stats

import (
	"fmt"
	"math"
)

// Breakdown is the per-run graduation-slot accounting.
type Breakdown struct {
	IssueWidth int

	Cycles int64
	// Instrs counts graduated instructions (equals busy slots). It is
	// unsigned like every other dynamic-instruction counter in Run —
	// Run.Check enforces Instrs == DynInsts, the "graduated == executed"
	// invariant the engines' tests pin.
	Instrs     uint64
	CacheSlots int64 // lost slots charged to data-cache misses
	OtherSlots int64 // all other lost slots
}

// TotalSlots returns issue width × cycles, saturating at math.MaxInt64
// instead of silently wrapping when the product overflows (a 4-wide
// machine overflows past ~2.3e18 cycles — unreachable in a governed run,
// but hand-built Breakdowns in tests and tools must not produce negative
// slot totals). Check reports the overflow explicitly.
func (b Breakdown) TotalSlots() int64 {
	if b.IssueWidth > 0 && b.Cycles > math.MaxInt64/int64(b.IssueWidth) {
		return math.MaxInt64
	}
	return b.Cycles * int64(b.IssueWidth)
}

// BusySlots returns the number of slots in which an instruction graduated
// (as an int64, for arithmetic against the other slot categories). The
// unsigned Instrs counter saturates at math.MaxInt64 rather than
// converting to a negative count; Check reports the overflow explicitly.
func (b Breakdown) BusySlots() int64 {
	if b.Instrs > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(b.Instrs)
}

// IPC returns graduated instructions per cycle.
func (b Breakdown) IPC() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(b.Instrs) / float64(b.Cycles)
}

// Fractions returns the busy/other/cache fractions of all slots.
func (b Breakdown) Fractions() (busy, other, cache float64) {
	t := float64(b.TotalSlots())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.BusySlots()) / t, float64(b.OtherSlots) / t, float64(b.CacheSlots) / t
}

// MissClasses is the online miss taxonomy (DESIGN.md §17): every data
// cache miss is classified at fill time as exactly one of the classic
// four classes, so the classes always sum to the cache's miss count.
//
//   - Compulsory: the line's tag has never been referenced by this cache
//     (the per-cache infinite-tag filter misses);
//   - Coherence: the line was invalidated by a coherence action since it
//     last resided (internal/multi invalidations, cross-thread stores in
//     trace replay);
//   - Conflict: a fully-associative cache of the same capacity would have
//     hit (the shadow model holds the line) — the miss is an artifact of
//     set mapping;
//   - Capacity: everything else — the line fell out of even the
//     fully-associative shadow.
type MissClasses struct {
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
	Coherence  uint64
}

// Total returns the number of classified misses (the four classes are
// exhaustive and mutually exclusive, so this equals the cache's miss
// count whenever the taxonomy was live for the whole run).
func (m MissClasses) Total() uint64 {
	return m.Compulsory + m.Capacity + m.Conflict + m.Coherence
}

// Add returns the element-wise sum (aggregation across processors or
// trace segments).
func (m MissClasses) Add(o MissClasses) MissClasses {
	return MissClasses{
		Compulsory: m.Compulsory + o.Compulsory,
		Capacity:   m.Capacity + o.Capacity,
		Conflict:   m.Conflict + o.Conflict,
		Coherence:  m.Coherence + o.Coherence,
	}
}

// Sub returns the element-wise difference (delta accounting in
// observability flushes and trace segments).
func (m MissClasses) Sub(o MissClasses) MissClasses {
	return MissClasses{
		Compulsory: m.Compulsory - o.Compulsory,
		Capacity:   m.Capacity - o.Capacity,
		Conflict:   m.Conflict - o.Conflict,
		Coherence:  m.Coherence - o.Coherence,
	}
}

func (m MissClasses) String() string {
	return fmt.Sprintf("compulsory=%d capacity=%d conflict=%d coherence=%d",
		m.Compulsory, m.Capacity, m.Conflict, m.Coherence)
}

// Run aggregates everything measured during one simulation.
type Run struct {
	Breakdown

	DynInsts     uint64 // dynamic instructions executed (== Instrs; see Check)
	MemRefs      uint64
	L1Misses     uint64
	L2Misses     uint64
	IMisses      uint64 // instruction-cache misses (fetch-line transitions)
	Traps        uint64 // informing trap entries
	BmissTaken   uint64 // taken BMISS branches
	HandlerInsts uint64 // dynamic instructions executed inside miss handlers

	BranchLookups     uint64
	BranchMispredicts uint64

	MSHRFullStalls  uint64
	MSHRMerges      uint64
	MSHRPeak        int
	SpecInvalidates uint64 // §3.3 squash-path L1 invalidations

	// L1Tax and L2Tax break the per-level data misses down by cause
	// (see MissClasses). Populated from the hierarchy's taxonomy at run
	// end; all-zero on hand-built Runs from before the taxonomy existed.
	L1Tax MissClasses
	L2Tax MissClasses
}

// CheckTaxonomy validates the miss-taxonomy conservation property: the
// per-level classes sum exactly to the per-level miss counters. It is a
// separate check from Run.Check because two legitimate cases break it:
// hand-built Runs with no taxonomy recorded, and §3.3 speculative-inject
// runs whose injected probes miss in the hierarchy without appearing in
// the architectural L1Misses/L2Misses counters.
func (r Run) CheckTaxonomy() error {
	if got, want := r.L1Tax.Total(), r.L1Misses; got != want {
		return fmt.Errorf("stats: L1 taxonomy classes sum to %d, want %d misses (%v)", got, want, r.L1Tax)
	}
	if got, want := r.L2Tax.Total(), r.L2Misses; got != want {
		return fmt.Errorf("stats: L2 taxonomy classes sum to %d, want %d misses (%v)", got, want, r.L2Tax)
	}
	return nil
}

// Check validates the counter invariants of a completed run. The engines'
// tests call it after every simulation so drift between the slot
// accounting and the dynamic-instruction counters cannot creep back in:
//
//   - Instrs == DynInsts (every executed instruction graduates exactly
//     once — the two counters are maintained by different pipeline stages
//     and historically had different signedness, hiding mismatches);
//   - the slot categories partition the total (busy + other + cache ==
//     issue width × cycles);
//   - no slot category is negative and the issue width is sane.
//
// Check is meaningful only for runs that completed normally; partial
// statistics attached to an abort Snapshot may legitimately fail it.
func (r Run) Check() error {
	if r.IssueWidth <= 0 {
		return fmt.Errorf("stats: issue width %d, want >= 1", r.IssueWidth)
	}
	if r.Cycles < 0 {
		return fmt.Errorf("stats: negative cycle count %d", r.Cycles)
	}
	// Saturation guards: BusySlots/TotalSlots clamp instead of wrapping,
	// so a run whose counters exceed int64 arithmetic is reported here
	// rather than passing (or failing) the partition check on clamped
	// values.
	if r.Instrs > math.MaxInt64 {
		return fmt.Errorf("stats: instruction count %d exceeds int64 slot arithmetic", r.Instrs)
	}
	if r.Cycles > math.MaxInt64/int64(r.IssueWidth) {
		return fmt.Errorf("stats: total slots overflow (cycles=%d × width=%d)", r.Cycles, r.IssueWidth)
	}
	if r.Instrs != r.DynInsts {
		return fmt.Errorf("stats: graduated %d != executed %d (counter drift)", r.Instrs, r.DynInsts)
	}
	if r.OtherSlots < 0 || r.CacheSlots < 0 {
		return fmt.Errorf("stats: negative slot category (other=%d cache=%d)", r.OtherSlots, r.CacheSlots)
	}
	if got, want := r.BusySlots()+r.OtherSlots+r.CacheSlots, r.TotalSlots(); got != want {
		return fmt.Errorf("stats: slot categories sum to %d, want %d total slots", got, want)
	}
	return nil
}

// L1MissRate returns primary data cache misses per reference.
func (r Run) L1MissRate() float64 {
	if r.MemRefs == 0 {
		return 0
	}
	return float64(r.L1Misses) / float64(r.MemRefs)
}

// String summarises the run in one line.
func (r Run) String() string {
	busy, other, cache := r.Fractions()
	return fmt.Sprintf(
		"cycles=%d instrs=%d ipc=%.2f refs=%d l1miss=%.2f%% traps=%d slots[busy=%.1f%% other=%.1f%% cache=%.1f%%]",
		r.Cycles, r.Instrs, r.IPC(), r.MemRefs, 100*r.L1MissRate(), r.Traps,
		100*busy, 100*other, 100*cache)
}

// Normalized expresses a run's slot categories relative to a baseline
// run's total slots, the normalisation used by Figures 2 and 3 (the
// baseline bar is defined to total 1.0).
type Normalized struct {
	Busy  float64
	Other float64
	Cache float64
}

// Total returns the bar height (normalised execution time).
func (n Normalized) Total() float64 { return n.Busy + n.Other + n.Cache }

// NormalizeTo scales r's slot breakdown by base's total slots.
func (r Run) NormalizeTo(base Run) Normalized {
	t := float64(base.TotalSlots())
	if t == 0 {
		return Normalized{}
	}
	return Normalized{
		Busy:  float64(r.BusySlots()) / t,
		Other: float64(r.OtherSlots) / t,
		Cache: float64(r.CacheSlots) / t,
	}
}

// TraceEvent reports one instruction's pipeline timing; cores emit these
// through Config.Trace (when set) in graduation order. Disasm is the
// instruction's assembler form; cycles are absolute simulation cycles.
//
// Schema v2 (DESIGN.md §16) added the memory-reference fields Addr, Store
// and Tid so a recorded trace can drive the hierarchy model by itself:
// they are meaningful only when MemLevel > 0 and are omitted from the
// JSONL wire form for non-memory instructions, keeping v1 consumers
// working unchanged.
type TraceEvent struct {
	Seq      uint64
	PC       uint64
	Disasm   string
	Fetch    int64
	Issue    int64
	Complete int64
	Graduate int64
	MemLevel int    // 0 non-memory, 1 L1 hit, 2 L2, 3 memory
	Addr     uint64 // effective address; meaningful iff MemLevel > 0
	Store    bool   // memory ops only: true for stores, false for loads/prefetches
	Tid      int    // originating thread/processor id (0 on uniprocessor runs)
	Trap     bool   // informing trap fired after this memory op
}
