package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() Run {
	return Run{
		Breakdown: Breakdown{
			IssueWidth: 4,
			Cycles:     1000,
			Instrs:     1600,
			CacheSlots: 1200,
			OtherSlots: 1200,
		},
		MemRefs:  400,
		L1Misses: 100,
	}
}

func TestSlotArithmetic(t *testing.T) {
	r := sample()
	if r.TotalSlots() != 4000 {
		t.Errorf("total slots %d", r.TotalSlots())
	}
	if r.BusySlots() != 1600 {
		t.Errorf("busy slots %d", r.BusySlots())
	}
	if r.IPC() != 1.6 {
		t.Errorf("IPC %f", r.IPC())
	}
	busy, other, cache := r.Fractions()
	if busy != 0.4 || other != 0.3 || cache != 0.3 {
		t.Errorf("fractions %f %f %f", busy, other, cache)
	}
	if r.L1MissRate() != 0.25 {
		t.Errorf("miss rate %f", r.L1MissRate())
	}
}

func TestZeroRunsAreSafe(t *testing.T) {
	var r Run
	if r.IPC() != 0 || r.L1MissRate() != 0 {
		t.Error("zero run divides by zero")
	}
	b, o, c := r.Fractions()
	if b != 0 || o != 0 || c != 0 {
		t.Error("zero run fractions nonzero")
	}
	if n := r.NormalizeTo(Run{}); n.Total() != 0 {
		t.Error("normalising to empty base nonzero")
	}
}

func TestNormalizeToBaseline(t *testing.T) {
	base := sample()
	// The baseline normalised to itself totals exactly 1.
	n := base.NormalizeTo(base)
	if tot := n.Total(); tot < 0.999 || tot > 1.001 {
		t.Errorf("self-normalisation totals %f", tot)
	}
	// A run with 2x the cycles and the same work totals 2.
	slow := base
	slow.Cycles = 2000
	slow.OtherSlots = slow.TotalSlots() - slow.BusySlots() - slow.CacheSlots
	n = slow.NormalizeTo(base)
	if tot := n.Total(); tot < 1.999 || tot > 2.001 {
		t.Errorf("2x run normalises to %f", tot)
	}
}

// Property: for any internally consistent run (slots partition), the
// normalised segments against any baseline sum to cycles ratio.
func TestNormalizationProperty(t *testing.T) {
	f := func(cyc, instr uint16) bool {
		cycles := int64(cyc%5000) + 100
		instrs := int64(instr) % (cycles * 4)
		r := Run{Breakdown: Breakdown{IssueWidth: 4, Cycles: cycles, Instrs: uint64(instrs)}}
		r.CacheSlots = (r.TotalSlots() - instrs) / 2
		r.OtherSlots = r.TotalSlots() - instrs - r.CacheSlots
		base := sample()
		n := r.NormalizeTo(base)
		want := float64(r.TotalSlots()) / float64(base.TotalSlots())
		got := n.Total()
		return got > want-1e-9 && got < want+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariants(t *testing.T) {
	ok := sample()
	ok.OtherSlots = ok.TotalSlots() - ok.BusySlots() - ok.CacheSlots
	ok.DynInsts = ok.Instrs
	if err := ok.Check(); err != nil {
		t.Errorf("consistent run fails Check: %v", err)
	}

	drift := ok
	drift.DynInsts++
	if err := drift.Check(); err == nil || !strings.Contains(err.Error(), "counter drift") {
		t.Errorf("Instrs/DynInsts drift not caught: %v", err)
	}

	hole := ok
	hole.CacheSlots += 3 // slots no longer partition the total
	if err := hole.Check(); err == nil {
		t.Error("slot partition violation not caught")
	}

	neg := ok
	neg.OtherSlots = -1
	neg.CacheSlots += 1 + ok.OtherSlots // keep the sum intact
	if err := neg.Check(); err == nil {
		t.Error("negative slot category not caught")
	}

	var zero Run
	if err := zero.Check(); err == nil {
		t.Error("zero run (issue width 0) passes Check")
	}
}

// Regression: BusySlots converted the unsigned Instrs counter straight to
// int64 (an Instrs above math.MaxInt64 became a negative busy-slot count)
// and TotalSlots multiplied width×cycles with silent wrap. Both must
// saturate, and Check must report the overflow explicitly instead of
// comparing clamped values.
func TestBreakdownOverflow(t *testing.T) {
	big := Breakdown{IssueWidth: 4, Cycles: 1000, Instrs: math.MaxInt64 + 1}
	if got := big.BusySlots(); got != math.MaxInt64 {
		t.Errorf("BusySlots with Instrs > MaxInt64 = %d, want saturation at MaxInt64", got)
	}

	wide := Breakdown{IssueWidth: 4, Cycles: math.MaxInt64 / 2}
	if got := wide.TotalSlots(); got != math.MaxInt64 {
		t.Errorf("TotalSlots with overflowing product = %d, want saturation at MaxInt64", got)
	}
	if got := wide.TotalSlots(); got < 0 {
		t.Errorf("TotalSlots wrapped negative: %d", got)
	}

	// Exactly at the boundary the product is still representable.
	edge := Breakdown{IssueWidth: 4, Cycles: math.MaxInt64 / 4}
	if got, want := edge.TotalSlots(), int64(math.MaxInt64/4)*4; got != want {
		t.Errorf("TotalSlots at boundary = %d, want %d", got, want)
	}

	r := Run{Breakdown: big}
	r.DynInsts = r.Instrs
	if err := r.Check(); err == nil || !strings.Contains(err.Error(), "exceeds int64") {
		t.Errorf("Check with Instrs > MaxInt64: got %v, want instruction-count overflow error", err)
	}

	r = Run{Breakdown: wide}
	if err := r.Check(); err == nil || !strings.Contains(err.Error(), "total slots overflow") {
		t.Errorf("Check with overflowing slot product: got %v, want total-slots overflow error", err)
	}
}

func TestRunString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"cycles=1000", "ipc=1.60", "busy=40.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
